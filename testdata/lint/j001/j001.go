// Package j001 seeds violations and compliant forms for the J001
// journal-before-execute analyzer. Engine.Do (config: EnqueueFuncs)
// submits recoverable work; Journal.Begin (config: BeginFuncs) is the
// write-ahead intent that must structurally dominate every enqueue;
// "prepare/" keys (config: NonJournaledKeyPrefixes) are exempt.
package j001

import "context"

// Engine is a miniature jobs.Engine.
type Engine struct{}

// Do enqueues work under a key.
func (e *Engine) Do(ctx context.Context, key string, fn func()) {}

// Journal is a miniature write-ahead journal.
type Journal struct{}

// Begin appends a durable intent record.
func (j *Journal) Begin(kind, key string) error { return nil }

type server struct {
	eng *Engine
	jrn *Journal
}

// journaled begins before enqueueing: silent.
func (s *server) journaled(ctx context.Context) {
	s.jrn.Begin("sim", "k1")
	s.eng.Do(ctx, "sim/k1", func() {})
}

// unjournaled enqueues with no intent record: a crash between the
// enqueue and the first journal append loses the job.
func (s *server) unjournaled(ctx context.Context) {
	s.eng.Do(ctx, "sim/k2", func() {}) // want J001 "not dominated by a journal begin"
}

// branchOnly begins on only one path: a begin inside an if-branch does
// not dominate the enqueue after it.
func (s *server) branchOnly(ctx context.Context, ok bool) {
	if ok {
		s.jrn.Begin("sim", "k3")
	}
	s.eng.Do(ctx, "sim/k3", func() {}) // want J001 "not dominated by a journal begin"
}

// prepare enqueues idempotent re-derivable work under the exempt
// prefix: silent.
func (s *server) prepare(ctx context.Context, key string) {
	s.eng.Do(ctx, "prepare/"+key, func() {})
}

// nested proves dominance is found across nesting levels: the begin on
// the function spine dominates an enqueue inside a loop body. Silent.
func (s *server) nested(ctx context.Context, keys []string) {
	s.jrn.Begin("sim", "batch")
	for _, k := range keys {
		s.eng.Do(ctx, "sim/"+k, func() {})
	}
}
