// Package fixable holds the one seeded violation whose diagnostic
// carries a mechanical fix: the -fix golden test copies this package to
// a scratch module, applies the fix, compares the rewritten file to
// fixable.go.golden, and re-lints it clean.
package fixable

import "strconv"

// Render concatenates in map-iteration order: string += is
// order-observable, and the key is a plain string identifier over a
// pure map expression, so the sorted-keys rewrite is mechanical.
func Render(m map[string]int) string {
	s := ""
	for k, v := range m { // want D001 "order-escaping body"
		s += k + ":" + strconv.Itoa(v) + "\n"
	}
	return s
}
