// Package k001 seeds violations and compliant forms for the K001
// key-purity analyzer. Key (listed in the fixture config as a store-key
// struct) must have every field explicitly tagged, no unexported
// fields, and its `json:"-"` fields must never be read inside an
// artifact-content producer.
package k001

import "encoding/json"

// Key stands in for core.Config: its JSON feeds store keys.
type Key struct {
	Name    string `json:"name"`
	Seed    int64  `json:"seed"`
	Workers int    `json:"-"` // wall-clock knob, key-excluded

	Comment string // want K001 "no explicit json tag"
	stamp   int64  // want K001 "unexported field"
}

// ArtifactBytes is an artifact-content producer (it calls
// json.Marshal) that leaks the key-excluded Workers field into the
// bytes the key addresses.
func ArtifactBytes(k Key) []byte {
	payload := struct {
		Name    string
		Workers int
	}{k.Name, k.Workers} // want K001 "key-excluded field Key.Workers"
	b, _ := json.Marshal(payload)
	return b
}

// CleanBytes reads only key-included fields: silent.
func CleanBytes(k Key) []byte {
	payload := struct {
		Name string
		Seed int64
	}{k.Name, k.Seed}
	b, _ := json.Marshal(payload)
	return b
}

// Tune reads Workers OUTSIDE any marshal path (scheduling, not
// artifact content): silent.
func Tune(k Key) int {
	if k.Workers > 0 {
		return k.Workers
	}
	return 1
}
