// Package suppression exercises the //lint:ignore machinery: a real
// finding suppressed with a reason (silent), an unused suppression
// (I001), and a reason-less suppression (I001). `// wantbelow` marks a
// diagnostic expected on the line after the comment — needed because a
// //lint:ignore directive consumes its whole line.
package suppression

// suppressed contains a genuine D001 winner-selection finding that the
// directive on the line above the range suppresses.
func suppressed(m map[string]int) string {
	best := ""
	//lint:ignore D001 fixture: tie-free by construction in this test corpus, winner is order-independent
	for k := range m {
		if len(k) > len(best) {
			best = k
		}
	}
	return best
}

// unused carries a suppression for a rule that never fires here: the
// directive itself becomes the finding.
func unused(m map[string]bool) int {
	n := 0
	// wantbelow I001 "unused suppression: no L001 finding"
	//lint:ignore L001 nothing here ever held a lock
	for range m {
		n++
	}
	return n
}

// malformed omits the mandatory reason.
func malformed(m map[int]int) int {
	total := 0
	// wantbelow I001 "malformed suppression"
	//lint:ignore D001
	for _, v := range m {
		total += v
	}
	return total
}
