// seam.go IS the seam implementation (a miniature of store.OS): the
// fixture config lists it in SkipFiles, so its direct os calls are the
// one sanctioned place — all silent.
package s001

import "os"

// FS is the package's fault seam.
type FS interface {
	WriteFile(path string, data []byte) error
	ReadFile(path string) ([]byte, error)
}

// OS is the production implementation.
var OS FS = osFS{}

type osFS struct{}

func (osFS) WriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func (osFS) ReadFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}
