// Package s001 seeds violations and compliant forms for the S001
// seam-bypass analyzer: this package "owns" an FS fault seam (seam.go,
// config-exempted, is the implementation), so direct os.* filesystem
// calls elsewhere in it dodge fault injection.
package s001

import "os"

// Persist bypasses the seam: an injected write error or a simulated
// crash between write and rename can never reach this call.
func Persist(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want S001 "direct os.WriteFile"
}

// Load bypasses the seam on the read side.
func Load(path string) ([]byte, error) {
	return os.ReadFile(path) // want S001 "direct os.ReadFile"
}

// PersistSeamed routes the same write through the package's seam:
// silent.
func PersistSeamed(fsys FS, path string, data []byte) error {
	return fsys.WriteFile(path, data)
}

// Probe calls an os function that is not a filesystem mutation entry
// point (not in the configured list): silent.
func Probe(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
