// Package d001 seeds violations and compliant forms for the D001
// determinism analyzer. A want comment (rule ID plus a quoted message
// substring) marks a line where exactly one diagnostic of that rule
// must be reported; unmarked lines must stay silent.
package d001

import (
	"math/rand"
	"sort"
	"time"
)

// winner re-introduces the sim.staleRead bug class the rule exists
// for: a two-variable select-a-winner over a map, where the compared
// value is not a total order — which (key, value) wins a tie depends
// on iteration order.
func winner(m map[int]int) (int, int) {
	bestK, bestV := -1, -1
	for k, v := range m { // want D001 "order-escaping body"
		if v > bestV {
			bestK, bestV = k, v
		}
	}
	return bestK, bestV
}

// stamp reads the wall clock inside a determinism-contract package.
func stamp() int64 {
	return time.Now().UnixNano() // want D001 "call to time.Now"
}

// globalRand draws from the process-global PRNG.
func globalRand() int {
	return rand.Int() // want D001 "process-wide PRNG state"
}

// keysUnsorted collects keys but never sorts them: iteration order
// becomes slice order.
func keysUnsorted(m map[string]bool) []string {
	var ks []string
	for k := range m { // want D001 "never sorted"
		ks = append(ks, k)
	}
	return ks
}

// ---------------------------------------------------------------------------
// Compliant forms: all silent.

// keysSorted is the canonical collect-then-sort idiom.
func keysSorted(m map[string]bool) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// total accumulates commutatively (integer +=).
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// transfer writes into another map: final state is order-free.
func transfer(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// largest is a true max: compared and assigned expressions coincide.
func largest(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// hasZero is an order-free existence scan returning constants.
func hasZero(m map[string]int) bool {
	for _, v := range m {
		if v == 0 {
			return true
		}
	}
	return false
}

// markDirty assigns a constant: idempotent regardless of which
// iteration writes it.
func markDirty(m map[string]int, dirty map[string]bool) bool {
	changed := false
	for k := range m {
		if !dirty[k] {
			changed = true
		}
	}
	return changed
}

// prune deletes while ranging (legal Go, order-free final state).
func prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// size uses the key-less form: iteration count only.
func size(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// jitter uses a seeded *rand.Rand method, not the global PRNG.
func jitter(r *rand.Rand) int {
	return r.Intn(10)
}
