// Package l001 seeds violations and compliant forms for the L001
// lock-hygiene analyzer: fsyncAll stands in for the configured slow
// calls (fsync, journal append, network I/O) that must not run while a
// mutex is held.
package l001

import "sync"

type cache struct {
	mu   sync.Mutex
	data map[string][]byte
}

// fsyncAll is the fixture's slow call (config: SlowCallFuncs).
func fsyncAll() error { return nil }

// badFlush holds the lock across the slow call (explicit unlock).
func (c *cache) badFlush() {
	c.mu.Lock()
	fsyncAll() // want L001 "called while holding c.mu"
	c.mu.Unlock()
}

// badDeferred holds the lock across the slow call (deferred unlock
// extends the span to the end of the block).
func (c *cache) badDeferred(key string, v []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data[key] = v
	fsyncAll() // want L001 "called while holding c.mu"
}

// goodFlush snapshots under the lock and does the slow work outside
// it — the repo-wide discipline. Silent.
func (c *cache) goodFlush(key string, v []byte) {
	c.mu.Lock()
	c.data[key] = v
	c.mu.Unlock()
	fsyncAll()
}

// goodAsync starts the slow work in a function literal (it runs later,
// off the critical section): silent.
func (c *cache) goodAsync() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		fsyncAll()
	}()
}
