package tlssync

import (
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	"tlssync/internal/report"
)

// Worker-count invariance at the benchmark level: NewRunWithWorkers must
// produce byte-identical baselines, simulation results, bars and store
// keys at every -j. This is the contract that lets tlsbench/tlsd hand
// out cached artifacts without knowing which worker count produced them.

// runFingerprint captures everything a Run feeds into figures and the
// artifact store.
func runFingerprint(t *testing.T, w *Workload, workers int) string {
	t.Helper()
	r, err := NewRunWithWorkers(w, workers)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	out := fmt.Sprintf("seq region=%d program=%d outside=%d\n",
		r.SeqRegion, r.SeqProgram, r.SeqOutside)
	for _, label := range []string{"U", "T", "C", "E"} {
		res, err := r.Simulate(label)
		if err != nil {
			t.Fatalf("workers=%d: %s: %v", workers, label, err)
		}
		rj, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		bj, err := json.Marshal(r.Bar(label, res))
		if err != nil {
			t.Fatal(err)
		}
		out += fmt.Sprintf("%s result %s\n%s bar %s\n", label, rj, label, bj)
	}
	for _, label := range []string{"U", "C"} {
		key := r.ArtifactKey("simulate", label)
		if want := WorkloadArtifactKey("simulate", w, label); key != want {
			t.Fatalf("workers=%d: run key %q != workload key %q (Workers leaked into the content address)",
				workers, key, want)
		}
		out += fmt.Sprintf("key %s %s\n", label, key)
	}
	return out
}

func TestParallelDiffBenchmarks(t *testing.T) {
	ws := Benchmarks()
	if testing.Short() {
		ws = ws[:3]
	}
	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			want := runFingerprint(t, w, 1)
			for _, workers := range []int{2, 8} {
				if got := runFingerprint(t, w, workers); got != want {
					t.Errorf("workers=%d: fingerprint diverged from -j1:\n-j1:\n%s\n-j%d:\n%s",
						workers, want, workers, got)
				}
			}
		})
	}
}

// TestParallelDiffMatrix asserts the determinism contract across the
// scheduler dimension too: byte-identical fingerprints at every point
// of GOMAXPROCS {1,8} x -j {1,8}. Worker-count invariance alone could
// mask bugs that only appear when goroutines actually run concurrently
// (GOMAXPROCS>1) or are forcibly serialized (GOMAXPROCS=1) — e.g. a
// pooled object handed to two builds, which only one schedule
// interleaving would expose. GOMAXPROCS is process-global, so the sweep
// is strictly serial (no t.Run parallelism) and restores the previous
// value even on failure.
func TestParallelDiffMatrix(t *testing.T) {
	ws := Benchmarks()[:2]
	if testing.Short() {
		ws = ws[:1]
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, w := range ws {
		want := runFingerprint(t, w, 1) // at the ambient GOMAXPROCS
		for _, g := range []int{1, 8} {
			runtime.GOMAXPROCS(g)
			for _, workers := range []int{1, 8} {
				if got := runFingerprint(t, w, workers); got != want {
					t.Errorf("%s: GOMAXPROCS=%d -j%d: fingerprint diverged from baseline",
						w.Name, g, workers)
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestParallelDiffFigures renders whole figures at -j1 and -j8 over a
// 3-benchmark subset and compares the rendered text and row JSON — the
// actual end artifacts tlsbench emits.
func TestParallelDiffFigures(t *testing.T) {
	prepare := func(workers int) []*Run {
		runs := make([]*Run, 3)
		for i, w := range Benchmarks()[:3] {
			r, err := NewRunWithWorkers(w, workers)
			if err != nil {
				t.Fatal(err)
			}
			runs[i] = r
		}
		return runs
	}
	serial, parallel8 := prepare(1), prepare(8)
	for _, id := range []string{"8", "10", "T2"} {
		fs, err := Experiments[id](serial)
		if err != nil {
			t.Fatalf("fig %s (j1): %v", id, err)
		}
		fp, err := Experiments[id](parallel8)
		if err != nil {
			t.Fatalf("fig %s (j8): %v", id, err)
		}
		if fs.Text != fp.Text {
			t.Errorf("figure %s text differs between -j1 and -j8", id)
		}
		sj, err := report.JSON(fs.Rows)
		if err != nil {
			t.Fatal(err)
		}
		pj, err := report.JSON(fp.Rows)
		if err != nil {
			t.Fatal(err)
		}
		if string(sj) != string(pj) {
			t.Errorf("figure %s rows differ between -j1 and -j8:\n%s\n%s", id, sj, pj)
		}
	}
}
