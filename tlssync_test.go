package tlssync

// Reproduction regression tests: each benchmark must exhibit the
// qualitative outcome the paper reports for it (who wins, roughly by how
// much, and why). These are the executable form of EXPERIMENTS.md.

import (
	"testing"

	"tlssync/internal/sim"
)

// runOf compiles and baselines one benchmark (cached per test process via
// the bench harness would be overkill here; compilation is a few seconds).
func runOf(t *testing.T, name string) *Run {
	t.Helper()
	w, err := Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRun(w)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func barOf(t *testing.T, r *Run, policy string) Bar {
	t.Helper()
	res, err := r.Simulate(policy)
	if err != nil {
		t.Fatal(err)
	}
	return r.Bar(policy, res)
}

func TestReproCompilerWinners(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction run")
	}
	// Paper: compiler-inserted synchronization is the clear winner for
	// GO, GZIP_DECOMP, PERLBMK, GAP (§4.2) and also lifts PARSER and GCC
	// (Fig 8, Table 2).
	for _, name := range []string{"go", "gzip_decomp", "perlbmk", "gap", "parser", "gcc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			r := runOf(t, name)
			u, c, h := barOf(t, r, "U"), barOf(t, r, "C"), barOf(t, r, "H")
			if c.Total() >= u.Total()*0.8 {
				t.Errorf("C (%.1f) should clearly beat U (%.1f)", c.Total(), u.Total())
			}
			if c.Total() >= h.Total() {
				t.Errorf("C (%.1f) should beat H (%.1f)", c.Total(), h.Total())
			}
			if c.Fail >= u.Fail*0.5 {
				t.Errorf("C fail (%.1f) should cut U fail (%.1f) by more than half", c.Fail, u.Fail)
			}
		})
	}
}

func TestReproHardwareWinsFalseSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction run")
	}
	// Paper: M88KSIM's violations are false sharing; the compiler,
	// synchronizing true word-level dependences, cannot help, while
	// line-granularity hardware synchronization fixes it.
	r := runOf(t, "m88ksim")
	u, c, h, b := barOf(t, r, "U"), barOf(t, r, "C"), barOf(t, r, "H"), barOf(t, r, "B")
	if h.Total() >= u.Total()*0.6 {
		t.Errorf("H (%.1f) should clearly beat U (%.1f)", h.Total(), u.Total())
	}
	if c.Total() < u.Total()*0.9 {
		t.Errorf("C (%.1f) should NOT meaningfully improve on U (%.1f): false sharing", c.Total(), u.Total())
	}
	// The hybrid must track the hardware's win (paper: "M88KSIM benefits
	// from hardware-inserted synchronization" under the hybrid).
	if b.Total() >= u.Total()*0.6 {
		t.Errorf("B (%.1f) should track H's win (H=%.1f, U=%.1f)", b.Total(), h.Total(), u.Total())
	}
}

func TestReproProfileInputSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction run")
	}
	// Paper: GZIP_COMP is the one benchmark where the train-input profile
	// leads the compiler to synchronize different load/store pairs, so T
	// clearly underperforms C; for a control benchmark T ≈ C.
	r := runOf(t, "gzip_comp")
	tt, c := barOf(t, r, "T"), barOf(t, r, "C")
	if tt.Total() <= c.Total()*1.15 {
		t.Errorf("gzip_comp: T (%.1f) should clearly underperform C (%.1f)", tt.Total(), c.Total())
	}

	ctrl := runOf(t, "parser")
	tc, cc := barOf(t, ctrl, "T"), barOf(t, ctrl, "C")
	ratio := tc.Total() / cc.Total()
	if ratio > 1.1 || ratio < 0.9 {
		t.Errorf("parser: T (%.1f) and C (%.1f) should be insensitive to profiling input",
			tc.Total(), cc.Total())
	}
}

func TestReproNoProblemBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction run")
	}
	// Paper: BZIP2_DECOMP (and friends): failed speculation was not a
	// problem to begin with, so no technique changes much.
	for _, name := range []string{"bzip2_decomp", "crafty", "ijpeg"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			r := runOf(t, name)
			u := barOf(t, r, "U")
			if u.Fail > 3 {
				t.Errorf("U fail segment (%.1f) should be negligible", u.Fail)
			}
			for _, p := range []string{"C", "H", "B", "P"} {
				bar := barOf(t, r, p)
				if bar.Total() > u.Total()*1.1 || bar.Total() < u.Total()*0.9 {
					t.Errorf("%s (%.1f) should be within 10%% of U (%.1f)", p, bar.Total(), u.Total())
				}
			}
		})
	}
}

func TestReproTwolfOverSynchronization(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction run")
	}
	// Paper: TWOLF's profiled dependence rarely causes violations at
	// runtime, so compiler synchronization is (slightly) pure overhead.
	r := runOf(t, "twolf")
	u, c := barOf(t, r, "U"), barOf(t, r, "C")
	if u.Fail > 3 {
		t.Errorf("twolf U fail (%.1f) should be small", u.Fail)
	}
	if c.Total() < u.Total() {
		t.Errorf("C (%.1f) should not beat U (%.1f): nothing to fix", c.Total(), u.Total())
	}
	if c.Total() > u.Total()*1.15 {
		t.Errorf("C (%.1f) should only slightly degrade U (%.1f)", c.Total(), u.Total())
	}
	// The dependence must actually be synchronized for this to be the
	// over-synchronization case rather than a no-op.
	if len(r.CompilerMarks()) == 0 {
		t.Error("twolf should have synchronized loads")
	}
}

func TestReproPredictionInsignificant(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction run")
	}
	// Paper: hardware value prediction has insignificant effect —
	// forwarded memory-resident values are unpredictable.
	for _, name := range []string{"gap", "parser", "gzip_comp", "mcf"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			r := runOf(t, name)
			u, p := barOf(t, r, "U"), barOf(t, r, "P")
			ratio := p.Total() / u.Total()
			if ratio < 0.85 || ratio > 1.2 {
				t.Errorf("P (%.1f) should be close to U (%.1f)", p.Total(), u.Total())
			}
		})
	}
}

func TestReproSyncCostBrackets(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction run")
	}
	// Paper Fig 9: E (free forwarding) lower-bounds C; L (stall until the
	// previous epoch completes) over-serializes benchmarks whose values
	// could be forwarded early.
	for _, name := range []string{"gap", "gzip_decomp"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			r := runOf(t, name)
			c, e, l := barOf(t, r, "C"), barOf(t, r, "E"), barOf(t, r, "L")
			if e.Total() > c.Total()*1.05 {
				t.Errorf("E (%.1f) should not exceed C (%.1f)", e.Total(), c.Total())
			}
			if l.Total() < c.Total()*1.5 {
				t.Errorf("L (%.1f) should heavily over-serialize vs C (%.1f)", l.Total(), c.Total())
			}
		})
	}
}

func TestReproHybridTracksBest(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction run")
	}
	// Paper: the hybrid "did a better job of tracking the best
	// performance overall than either approach individually".
	var hybridExcess, compilerExcess, hardwareExcess float64
	names := []string{"go", "m88ksim", "gzip_comp", "gzip_decomp", "parser", "gap", "mcf"}
	for _, name := range names {
		r := runOf(t, name)
		c, h, b := barOf(t, r, "C"), barOf(t, r, "H"), barOf(t, r, "B")
		best := c.Total()
		if h.Total() < best {
			best = h.Total()
		}
		hybridExcess += b.Total() / best
		compilerExcess += c.Total() / best
		hardwareExcess += h.Total() / best
	}
	n := float64(len(names))
	if hybridExcess/n > compilerExcess/n && hybridExcess/n > hardwareExcess/n {
		t.Errorf("hybrid tracks best worse (%.2f) than both C (%.2f) and H (%.2f)",
			hybridExcess/n, compilerExcess/n, hardwareExcess/n)
	}
}

func TestReproFig11Complementary(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction run")
	}
	// Paper Fig 11: a significant number of violating loads would be
	// synchronized by only one of the two schemes.
	runs := []*Run{runOf(t, "go"), runOf(t, "m88ksim"), runOf(t, "mcf")}
	fig, err := Fig11(runs)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Text == "" {
		t.Fatal("empty figure")
	}
	// At least one benchmark should show compiler-only and hardware-only
	// violations under the U (no stall) mode.
	compOnly, hwOnly := false, false
	for _, r := range runs {
		res, err := r.simulateOn("base", "fig11-U",
			sim.Policy{Name: "U", CompilerMarks: r.CompilerMarks()})
		if err != nil {
			t.Fatal(err)
		}
		if res.ViolBuckets[1] > 0 {
			compOnly = true
		}
		if res.ViolBuckets[2] > 0 {
			hwOnly = true
		}
	}
	if !compOnly || !hwOnly {
		t.Errorf("expected both compiler-only and hardware-only violating loads (comp=%v hw=%v)",
			compOnly, hwOnly)
	}
}

func TestMachineTable1(t *testing.T) {
	s := MachineTable1()
	if len(s) == 0 {
		t.Fatal("empty table")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	for _, id := range ExperimentIDs() {
		if _, ok := Experiments[id]; !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
}

// TestExperimentsOnSubset exercises every experiment runner end-to-end on
// a two-benchmark subset (the full suite is the benchmark harness's job).
func TestExperimentsOnSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction run")
	}
	runs := []*Run{runOf(t, "gap"), runOf(t, "m88ksim")}
	for _, id := range ExperimentIDs() {
		id := id
		t.Run("exp"+id, func(t *testing.T) {
			fig, err := Experiments[id](runs)
			if err != nil {
				t.Fatal(err)
			}
			if fig.Text == "" {
				t.Fatal("empty figure text")
			}
			if fig.ID == "" || fig.Title == "" {
				t.Error("figure metadata missing")
			}
		})
	}
}

// TestBarNormalization pins the Bar conversion arithmetic.
func TestBarNormalization(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction run")
	}
	r := runOf(t, "crafty")
	res, err := r.Simulate("U")
	if err != nil {
		t.Fatal(err)
	}
	bar := r.Bar("U", res)
	wantTotal := 100 * float64(res.RegionCycles()) / float64(r.SeqRegion)
	got := bar.Total()
	if got < wantTotal*0.999 || got > wantTotal*1.001 {
		t.Errorf("bar total %.3f, want %.3f", got, wantTotal)
	}
	slots := res.RegionSlots()
	if slots.Total() > 0 {
		wantBusy := wantTotal * float64(slots.Busy) / float64(slots.Total())
		if bar.Busy < wantBusy*0.999 || bar.Busy > wantBusy*1.001 {
			t.Errorf("bar busy %.3f, want %.3f", bar.Busy, wantBusy)
		}
	}
}

// TestTimelineAPI smoke-tests the facade-level timeline path.
func TestTimelineAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction run")
	}
	r := runOf(t, "crafty")
	res, err := r.SimulateTimeline("U")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Spans) == 0 {
		t.Fatal("no spans collected")
	}
}

// TestSeedStability: the qualitative outcome must not depend on the PRNG
// seed baked into NewRun. Recompile parser under different seeds and
// check the headline result (C clearly beats U) each time.
func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction run")
	}
	w, err := Benchmark("parser")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{7, 99, 12345} {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			b, err := Compile(Config{Source: w.Source, TrainInput: w.Train, RefInput: w.Ref, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			uTr, err := b.Trace(b.Base, w.Ref)
			if err != nil {
				t.Fatal(err)
			}
			cTr, err := b.Trace(b.Ref, w.Ref)
			if err != nil {
				t.Fatal(err)
			}
			u := sim.Simulate(sim.Input{Trace: uTr, Policy: sim.PolicyU()})
			c := sim.Simulate(sim.Input{Trace: cTr, Policy: sim.PolicyC("C")})
			if c.RegionCycles()*2 > u.RegionCycles() {
				t.Errorf("seed %d: C (%d cycles) should halve U (%d)",
					seed, c.RegionCycles(), u.RegionCycles())
			}
		})
	}
}

// TestSeqSlowdownHelper pins the artifact-composition arithmetic.
func TestSeqSlowdownHelper(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction run")
	}
	r := runOf(t, "crafty")
	res, err := r.Simulate("U")
	if err != nil {
		t.Fatal(err)
	}
	plain := r.ProgramSpeedup(res)
	slowed := r.ProgramSpeedupWithSeqSlowdown(res, 0.8)
	if slowed >= plain {
		t.Errorf("slowdown artifact should reduce program speedup: %.3f vs %.3f", slowed, plain)
	}
	same := r.ProgramSpeedupWithSeqSlowdown(res, 1.0)
	if same < plain*0.999 || same > plain*1.001 {
		t.Errorf("factor 1.0 should be identity: %.3f vs %.3f", same, plain)
	}
	if got := r.ProgramSpeedupWithSeqSlowdown(res, 0); got < plain*0.999 {
		t.Errorf("factor 0 should clamp to identity, got %.3f", got)
	}
}
