//go:build race

// Package racedetect reports whether the binary was built with the race
// detector. Allocation-budget tests skip under -race: the detector
// instruments every allocation and makes testing.AllocsPerRun counts
// meaningless against budgets calibrated for ordinary builds.
package racedetect

// Enabled is true when the race detector is compiled in.
const Enabled = true
