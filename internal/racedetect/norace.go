//go:build !race

package racedetect

// Enabled is true when the race detector is compiled in.
const Enabled = false
