package interp

// memory is the interpreter's simulated address space: a two-level page
// table over 64-bit byte addresses, replacing a flat map (the single
// hottest structure in the pipeline — every dynamic load and store walks
// it). Pages are allocated lazily and zero-filled, which also gives heap
// and frame memory their zero-initialized semantics for free; explicit
// frame zeroing clears words individually (frames are small).
type memory struct {
	pages map[int64]*page
	// Single-entry lookup cache: consecutive accesses cluster heavily
	// (array sweeps, frame slots).
	lastIdx  int64
	lastPage *page
}

// pageBits chooses 4 KiB pages (512 words).
const (
	pageBits  = 12
	pageWords = 1 << (pageBits - 3)
)

type page [pageWords]int64

func newMemory() *memory {
	return &memory{pages: make(map[int64]*page), lastIdx: -1}
}

func (m *memory) load(addr int64) int64 {
	idx := addr >> pageBits
	if idx == m.lastIdx {
		return m.lastPage[(addr>>3)&(pageWords-1)]
	}
	p, ok := m.pages[idx]
	if !ok {
		return 0
	}
	m.lastIdx, m.lastPage = idx, p
	return p[(addr>>3)&(pageWords-1)]
}

func (m *memory) store(addr, v int64) {
	idx := addr >> pageBits
	if idx != m.lastIdx {
		p, ok := m.pages[idx]
		if !ok {
			p = new(page)
			m.pages[idx] = p
		}
		m.lastIdx, m.lastPage = idx, p
	}
	m.lastPage[(addr>>3)&(pageWords-1)] = v
}

// zero clears the word at addr (used for frame re-initialization).
func (m *memory) zero(addr int64) {
	idx := addr >> pageBits
	if idx == m.lastIdx {
		m.lastPage[(addr>>3)&(pageWords-1)] = 0
		return
	}
	if p, ok := m.pages[idx]; ok {
		p[(addr>>3)&(pageWords-1)] = 0
		m.lastIdx, m.lastPage = idx, p
	}
}
