package interp

import "sync"

// memory is the interpreter's simulated address space: a two-level page
// table over 64-bit byte addresses, replacing a flat map (the single
// hottest structure in the pipeline — every dynamic load and store walks
// it). Pages are allocated lazily and zero-filled, which also gives heap
// and frame memory their zero-initialized semantics for free; explicit
// frame zeroing clears words individually (frames are small).
type memory struct {
	pages map[int64]*page
	// Single-entry lookup cache: consecutive accesses cluster heavily
	// (array sweeps, frame slots).
	lastIdx  int64
	lastPage *page
}

// pageBits chooses 4 KiB pages (512 words).
const (
	pageBits  = 12
	pageWords = 1 << (pageBits - 3)
)

type page [pageWords]int64

// Memories (the struct + its page table map) and 4 KiB pages are pooled
// across runs: a figure sweep interprets the same programs hundreds of
// times, and without reuse each run re-faults its whole working set.
// Pages are zeroed on release, so a pooled page is indistinguishable
// from a fresh one — the lazily-zero-filled contract above still holds.
var (
	memoryPool sync.Pool
	pagePool   sync.Pool
)

func newMemory() *memory {
	if v := memoryPool.Get(); v != nil {
		m := v.(*memory)
		m.lastIdx, m.lastPage = -1, nil
		return m
	}
	return &memory{pages: make(map[int64]*page), lastIdx: -1}
}

func getPage() *page {
	if v := pagePool.Get(); v != nil {
		return v.(*page)
	}
	return new(page)
}

// release zeroes every mapped page, returns it to the page pool, and
// returns the (emptied) memory itself to the memory pool. The memory
// must not be used afterwards.
func (m *memory) release() {
	// Iteration order escapes only into sync.Pool stacking order, and
	// pooled pages are zeroed — interchangeable by construction.
	//lint:ignore D001 order escapes only into pool stacking of zeroed, interchangeable pages
	for idx, p := range m.pages {
		*p = page{}
		pagePool.Put(p)
		delete(m.pages, idx)
	}
	m.lastIdx, m.lastPage = -1, nil
	memoryPool.Put(m)
}

func (m *memory) load(addr int64) int64 {
	idx := addr >> pageBits
	if idx == m.lastIdx {
		return m.lastPage[(addr>>3)&(pageWords-1)]
	}
	p, ok := m.pages[idx]
	if !ok {
		return 0
	}
	m.lastIdx, m.lastPage = idx, p
	return p[(addr>>3)&(pageWords-1)]
}

func (m *memory) store(addr, v int64) {
	idx := addr >> pageBits
	if idx != m.lastIdx {
		p, ok := m.pages[idx]
		if !ok {
			p = getPage()
			m.pages[idx] = p
		}
		m.lastIdx, m.lastPage = idx, p
	}
	m.lastPage[(addr>>3)&(pageWords-1)] = v
}

// zero clears the word at addr (used for frame re-initialization).
func (m *memory) zero(addr int64) {
	idx := addr >> pageBits
	if idx == m.lastIdx {
		m.lastPage[(addr>>3)&(pageWords-1)] = 0
		return
	}
	if p, ok := m.pages[idx]; ok {
		p[(addr>>3)&(pageWords-1)] = 0
		m.lastIdx, m.lastPage = idx, p
	}
}
