package interp

import (
	"testing"

	"tlssync/internal/racedetect"
)

// TestMemoryPoolNoContamination pins the zero-on-release invariant of
// the interpreter's memory pool: a released memory's pages are zeroed
// before pooling, so a recycled memory must be indistinguishable from a
// fresh one — reads of never-written addresses return 0 even when the
// backing page previously held another run's data.
func TestMemoryPoolNoContamination(t *testing.T) {
	const addr = 0x42000 // heap-ish address, same page likely reused
	m := newMemory()
	for a := int64(0); a < 64; a++ {
		m.store(addr+a*8, 0xDEAD+a)
	}
	if m.load(addr) != 0xDEAD {
		t.Fatal("store/load sanity check failed")
	}
	m.release()

	// The next memory reuses the pooled struct and pages.
	m2 := newMemory()
	for a := int64(0); a < 64; a++ {
		if got := m2.load(addr + a*8); got != 0 {
			t.Fatalf("recycled memory leaked value %#x at %#x: pages not zeroed on release", got, addr+a*8)
		}
	}
	// Faulting the same page back in must also observe zeroes.
	m2.store(addr+8, 1)
	if got := m2.load(addr); got != 0 {
		t.Fatalf("recycled page leaked value %#x next to a fresh store", got)
	}
	m2.release()
}

// TestInterpStepAllocBudget is the allocation-budget regression test
// for the interpreter's step loop: with the event-buffer, memory-page
// and frame pools warm, re-interpreting the same program must cost a
// small bounded number of allocations per run — NOT per dynamic
// instruction. The budget is per-run and deliberately loose (pools can
// be emptied by GC mid-measurement); what it catches is a regression to
// per-event or per-page allocation, which overshoots it by orders of
// magnitude. See docs/perf.md.
func TestInterpStepAllocBudget(t *testing.T) {
	if racedetect.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	p := compile(t, poolSrc)
	regs := regionsOf(p)
	run := func() {
		tr, err := Run(p, Options{Input: []int64{3, 1, 4}, Seed: 7, Regions: regs})
		if err != nil {
			t.Fatal(err)
		}
		tr.Release()
	}
	run() // warm every pool
	steps := func() int {
		tr, err := Run(p, Options{Input: []int64{3, 1, 4}, Seed: 7, Regions: regs})
		if err != nil {
			t.Fatal(err)
		}
		n := tr.Events()
		tr.Release()
		return n
	}()

	const budget = 200 // per run: trace skeleton, epochs, stray pool misses
	allocs := testing.AllocsPerRun(50, run)
	if allocs > budget {
		t.Errorf("interpreting %d events allocates %.0f objects/run, budget %d — a pooled path (events, pages, frames) regressed (see docs/perf.md)", steps, allocs, budget)
	}
}
