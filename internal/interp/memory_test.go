package interp

import (
	"testing"
	"testing/quick"

	"tlssync/internal/ir"
)

func TestMemoryBasics(t *testing.T) {
	m := newMemory()
	if m.load(ir.GlobalBase) != 0 {
		t.Error("fresh memory not zero")
	}
	m.store(ir.GlobalBase, 42)
	if m.load(ir.GlobalBase) != 42 {
		t.Error("store/load failed")
	}
	// Neighbors unaffected.
	if m.load(ir.GlobalBase+8) != 0 {
		t.Error("neighbor clobbered")
	}
	m.zero(ir.GlobalBase)
	if m.load(ir.GlobalBase) != 0 {
		t.Error("zero failed")
	}
	// Zeroing an unmapped address is a no-op.
	m.zero(ir.HeapBase + 1<<30)
	if m.load(ir.HeapBase+1<<30) != 0 {
		t.Error("unmapped zero created value")
	}
}

func TestMemoryPageBoundaries(t *testing.T) {
	m := newMemory()
	// Addresses straddling page boundaries must not alias.
	base := int64(ir.HeapBase)
	pageSize := int64(1) << pageBits
	addrs := []int64{base, base + pageSize - 8, base + pageSize, base + 2*pageSize + 16}
	for i, a := range addrs {
		m.store(a, int64(1000+i))
	}
	for i, a := range addrs {
		if got := m.load(a); got != int64(1000+i) {
			t.Errorf("mem[%#x] = %d, want %d", a, got, 1000+i)
		}
	}
}

func TestMemoryMatchesMapModel(t *testing.T) {
	// Property: the paged memory agrees with a reference map under random
	// word-aligned traffic (including the lookup-cache paths).
	f := func(ops []struct {
		Addr  uint16
		Val   int64
		Store bool
	}) bool {
		m := newMemory()
		ref := make(map[int64]int64)
		for _, op := range ops {
			addr := ir.GlobalBase + int64(op.Addr)*8
			if op.Store {
				m.store(addr, op.Val)
				ref[addr] = op.Val
			} else if m.load(addr) != ref[addr] {
				return false
			}
		}
		for a, v := range ref {
			if m.load(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
