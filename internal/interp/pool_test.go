package interp

import (
	"testing"

	"tlssync/internal/trace"
)

// poolSrc exercises both trace shapes: sequential segments and region
// epochs (the parallel loop becomes a region below).
const poolSrc = `
var arr [256]int;
func main() {
	var i int;
	var s int;
	parallel for i = 0; i < 40; i = i + 1 {
		arr[i % 256] = arr[i % 256] + input(i);
		s = s + arr[i % 256];
	}
	print(s);
}
`

// traceOf runs poolSrc with its parallel loop as a region and returns
// the trace.
func traceOf(t *testing.T, input []int64) *trace.ProgramTrace {
	t.Helper()
	p := compile(t, poolSrc)
	regs := regionsOf(p)
	if len(regs) == 0 {
		t.Fatal("no parallel loops found")
	}
	tr, err := Run(p, Options{Input: input, Seed: 7, Regions: regs})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// snapshot deep-copies a trace's events so later mutation of the
// originals is detectable.
func snapshot(tr *trace.ProgramTrace) [][]trace.Event {
	var out [][]trace.Event
	cp := func(evs []trace.Event) {
		out = append(out, append([]trace.Event(nil), evs...))
	}
	for _, s := range tr.Segments {
		if s.Seq != nil {
			cp(s.Seq)
		}
		if s.Region != nil {
			for _, e := range s.Region.Epochs {
				cp(e.Events)
			}
		}
	}
	return out
}

// sameEvents compares snapshots of the same run exactly, pointers
// included — used to detect in-place corruption of a live trace.
func sameEvents(a, b [][]trace.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// equivEvents compares snapshots of two independent runs: each run
// compiles its own ir.Program, but instruction numbering is
// deterministic, so identical dynamic streams carry identical static
// indices and payloads.
func equivEvents(a, b [][]trace.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			x, y := a[i][j], b[i][j]
			if x.SI != y.SI || x.Addr != y.Addr || x.Val != y.Val || x.Flags != y.Flags {
				return false
			}
		}
	}
	return true
}

// TestPooledBuffersNoCrossRunContamination is the classic sync.Pool
// aliasing regression test: a released trace's buffers are reused by
// the next run, and that reuse must never corrupt a trace that is
// still live.
func TestPooledBuffersNoCrossRunContamination(t *testing.T) {
	// Run A and keep it live (NOT released); snapshot its contents.
	trA := traceOf(t, []int64{1, 2, 3})
	wantA := snapshot(trA)

	// Run B on a different input, then release B's buffers to the pool.
	trB := traceOf(t, []int64{9, 8, 7, 6})
	wantB := snapshot(trB)
	trB.Release()

	// Run C reuses B's pooled buffers. A must be untouched throughout.
	trC := traceOf(t, []int64{5, 5, 5})
	wantC := snapshot(trC)
	if !sameEvents(snapshot(trA), wantA) {
		t.Fatal("live trace A was corrupted by pooled-buffer reuse")
	}

	// C itself must be exactly what an un-pooled run produces: rerun
	// the same configuration and compare event-for-event.
	trC2 := traceOf(t, []int64{5, 5, 5})
	if !equivEvents(wantC, snapshot(trC2)) {
		t.Fatal("trace built from recycled buffers differs from a fresh run")
	}

	// Double rotation: release C and A, then two more runs; outputs
	// must still be input-determined, not buffer-determined.
	trC.Release()
	trA.Release()
	trD := traceOf(t, []int64{9, 8, 7, 6})
	if !equivEvents(snapshot(trD), wantB) {
		t.Fatal("trace D (same input as B) differs after buffer recycling")
	}
}

// TestReleaseKeepsOutput documents that Release drops only the event
// buffers: the functional output survives for equivalence checks.
func TestReleaseKeepsOutput(t *testing.T) {
	tr := traceOf(t, []int64{1, 2, 3})
	if len(tr.Output) == 0 {
		t.Fatal("program printed nothing")
	}
	want := append([]int64(nil), tr.Output...)
	tr.Release()
	if tr.Segments != nil {
		t.Fatal("Release left segments behind")
	}
	for i, v := range want {
		if tr.Output[i] != v {
			t.Fatal("Release corrupted Output")
		}
	}
}
