// Package interp is the functional execution engine: a sequential IR
// interpreter that produces the per-epoch instruction traces consumed by
// the dependence profiler and the TLS timing simulator.
//
// Because execution is sequential, every load observes the sequentially
// correct value — including through the TLS synchronization operations,
// whose full runtime protocol (mailboxes, signal address buffer,
// use-forwarded-value flag) is modeled here so that (a) transformed
// programs remain semantically identical to their originals, and (b) the
// protocol outcomes (address match, stale forwarding, local overwrite) are
// recorded on the trace for the timing simulator.
package interp

import (
	"fmt"
	"math"

	"tlssync/internal/cfg"
	"tlssync/internal/ir"
	"tlssync/internal/lang"
	"tlssync/internal/trace"
)

// Region identifies a selected speculative region: a natural loop whose
// iterations become epochs.
type Region struct {
	ID   int
	Func *ir.Func
	Loop *cfg.Loop
}

// Options configure a functional run.
type Options struct {
	// Input is the program's input vector, read by the input(i) builtin
	// (index taken modulo its length). Distinct inputs model the paper's
	// train vs ref data sets.
	Input []int64

	// Seed seeds the deterministic PRNG behind the rnd(n) builtin.
	Seed uint64

	// MaxSteps bounds dynamic instructions (0 means the default of 50M).
	MaxSteps int64

	// Regions are the selected speculative regions. Arrivals at a region's
	// loop header delimit epochs in the trace. An empty list produces a
	// fully sequential trace.
	Regions []*Region
}

// DefaultMaxSteps bounds interpretation when Options.MaxSteps is zero.
const DefaultMaxSteps = int64(50_000_000)

// memMsg is a forwarded (address, value) pair in a memory-sync mailbox.
type memMsg struct {
	addr  int64
	val   int64
	valid bool
	null  bool
	stale bool // producer overwrote addr after signaling (signal-address-buffer hit)
}

type frame struct {
	fn    *ir.Func
	regs  []int64
	base  int64 // frame base address in the stack segment
	block *ir.Block
	idx   int
	// Where to deposit the return value in the caller.
	retDst ir.Reg
}

type interp struct {
	prog *ir.Program
	opts Options

	mem     *memory
	heapPtr int64
	frames  []*frame
	rng     uint64
	steps   int64
	maxStep int64

	// Trace assembly.
	tr        *trace.ProgramTrace
	seq       []trace.Event
	regionIns *trace.RegionInstance
	epoch     *trace.Epoch
	epochOrd  int // ordinal of the current epoch within the region instance
	// epochImpure tracks whether the current epoch performed any
	// side effect (store, call, print, signal, allocation); exitRegion
	// folds a side-effect-free final header visit into the previous
	// epoch without rescanning its events.
	epochImpure bool

	// freeFrames recycles popped call frames (and their register
	// slices): call-heavy programs would otherwise allocate one frame +
	// one register file per dynamic call.
	freeFrames []*frame

	// Region state.
	headerMap   map[*ir.Block]*Region
	curRegion   *Region
	regionDepth int

	// TLS protocol state (reset per region instance).
	scalarCur  map[int64]int64
	scalarNext map[int64]int64
	scalarSet  map[int64]bool // validity of scalarCur entries
	memCur     map[int64]memMsg
	memNext    map[int64]memMsg
	uff        map[int64]bool
	// sigAddrs maps forwarded address -> sync ids signaled this epoch
	// (the signal address buffer).
	sigAddrs map[int64][]int64
	// lastStoreEpoch tracks, per address, the epoch ordinal of the last
	// store in the current region instance (for LoadSync local-overwrite
	// detection).
	lastStoreEpoch map[int64]int

	// scalarNextPending buffers scalar signals executed outside any region
	// (loop preheaders signal initial values for epoch 0).
	scalarNextPending map[int64]int64

	// globalsEnd is the exclusive end of the globals segment.
	globalsEnd int64
}

// Run interprets the program from main and returns its trace.
func Run(p *ir.Program, opts Options) (*trace.ProgramTrace, error) {
	it := &interp{
		prog:      p,
		opts:      opts,
		mem:       newMemory(),
		heapPtr:   ir.HeapBase,
		rng:       opts.Seed*2862933555777941757 + 3037000493,
		maxStep:   opts.MaxSteps,
		tr:        &trace.ProgramTrace{},
		headerMap: make(map[*ir.Block]*Region),
		// TLS protocol state exists even outside regions so transformed
		// programs also run correctly with no regions selected (plain
		// sequential semantics); enterRegion resets it.
		scalarCur:      make(map[int64]int64),
		scalarNext:     make(map[int64]int64),
		scalarSet:      make(map[int64]bool),
		memCur:         make(map[int64]memMsg),
		memNext:        make(map[int64]memMsg),
		uff:            make(map[int64]bool),
		sigAddrs:       make(map[int64][]int64),
		lastStoreEpoch: make(map[int64]int),
	}
	if it.maxStep == 0 {
		it.maxStep = DefaultMaxSteps
	}
	it.globalsEnd = ir.GlobalBase
	for _, g := range p.Globals {
		if g.Init != 0 {
			it.mem.store(g.Addr, g.Init)
		}
		if end := g.Addr + g.Size; end > it.globalsEnd {
			it.globalsEnd = end
		}
	}
	for _, r := range opts.Regions {
		it.headerMap[r.Loop.Header] = r
	}
	main, ok := p.FuncMap["main"]
	if !ok {
		return nil, fmt.Errorf("interp: program has no main")
	}
	if main.NParams != 0 {
		return nil, fmt.Errorf("interp: main must take no parameters")
	}
	if id := p.MaxInstrID(); id > math.MaxInt32 {
		return nil, fmt.Errorf("interp: program has %d instruction IDs; trace encoding caps at %d", id, math.MaxInt32)
	}
	it.tr.Code = p.Code()
	it.pushFrame(main, ir.None)
	err := it.run()
	// Simulation memory is private to this run; hand its pages back to
	// the pool whether or not the run succeeded.
	it.mem.release()
	if err != nil {
		return nil, err
	}
	it.flushSeq()
	return it.tr, nil
}

func (it *interp) rnd(n int64) int64 {
	// xorshift64* — deterministic, seedable, stdlib-free.
	it.rng ^= it.rng >> 12
	it.rng ^= it.rng << 25
	it.rng ^= it.rng >> 27
	v := int64((it.rng * 2685821657736338717) >> 1)
	if n <= 0 {
		return 0
	}
	return v % n
}

// pushFrame activates a new frame for fn and returns it with all
// registers zeroed; the caller deposits arguments directly into
// f.regs[0:NParams]. Popped frames are recycled through it.freeFrames.
func (it *interp) pushFrame(fn *ir.Func, retDst ir.Reg) *frame {
	base := ir.StackBase
	if n := len(it.frames); n > 0 {
		prev := it.frames[n-1]
		base = prev.base + prev.fn.FrameSize
	}
	if base+fn.FrameSize > ir.StackLimit {
		panic(interpError{fmt.Errorf("interp: stack overflow in %s", fn.Name)})
	}
	var f *frame
	if n := len(it.freeFrames); n > 0 {
		f = it.freeFrames[n-1]
		it.freeFrames = it.freeFrames[:n-1]
		if cap(f.regs) < fn.NumRegs {
			f.regs = make([]int64, fn.NumRegs)
		} else {
			f.regs = f.regs[:fn.NumRegs]
			clear(f.regs)
		}
		f.fn, f.base, f.block, f.idx, f.retDst = fn, base, fn.Entry, 0, retDst
	} else {
		f = &frame{
			fn:     fn,
			regs:   make([]int64, fn.NumRegs),
			base:   base,
			block:  fn.Entry,
			retDst: retDst,
		}
	}
	// Frame memory is zeroed on entry (MiniC locals are zero-initialized;
	// stack addresses are reused across calls).
	for off := int64(0); off < fn.FrameSize; off += lang.WordSize {
		it.mem.zero(base + off)
	}
	it.frames = append(it.frames, f)
	return f
}

type interpError struct{ err error }

func (it *interp) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ie, ok := r.(interpError); ok {
				err = ie.err
				return
			}
			panic(r)
		}
	}()
	for len(it.frames) > 0 {
		f := it.frames[len(it.frames)-1]
		if f.idx == 0 {
			it.blockBoundary(f)
			f = it.frames[len(it.frames)-1]
		}
		// Flat dispatch: run the current block's straight-line suffix in
		// one tight loop. exec returns false on any control transfer
		// (branch, call, return), which invalidates the cached block.
		instrs := f.block.Instrs
		for f.idx < len(instrs) {
			it.steps++
			if it.steps > it.maxStep {
				return fmt.Errorf("interp: exceeded %d steps (infinite loop?)", it.maxStep)
			}
			if !it.exec(f, instrs[f.idx]) {
				break
			}
		}
	}
	return nil
}

// blockBoundary handles region enter/exit and epoch boundaries when control
// reaches the start of a block.
func (it *interp) blockBoundary(f *frame) {
	depth := len(it.frames)
	if it.curRegion != nil && depth == it.regionDepth {
		if f.block == it.curRegion.Loop.Header {
			it.nextEpoch()
		} else if !it.curRegion.Loop.Contains(f.block) {
			it.exitRegion()
		}
	}
	if it.curRegion == nil {
		if r, ok := it.headerMap[f.block]; ok && r.Func == f.fn {
			it.enterRegion(r, depth)
		}
	}
}

func (it *interp) enterRegion(r *Region, depth int) {
	it.flushSeq()
	it.curRegion = r
	it.regionDepth = depth
	it.regionIns = &trace.RegionInstance{RegionID: r.ID}
	it.epochOrd = -1
	// Protocol state is cleared in place, not reallocated: region entry
	// is a hot boundary in loop-nest-heavy programs.
	clear(it.scalarCur)
	if it.scalarNextPending != nil {
		it.scalarNext = it.scalarNextPending // signals from the preheader
		it.scalarNextPending = nil
	} else {
		clear(it.scalarNext)
	}
	clear(it.scalarSet)
	clear(it.memCur)
	clear(it.memNext)
	clear(it.uff)
	clear(it.sigAddrs)
	clear(it.lastStoreEpoch)
	it.nextEpoch()
}

func (it *interp) nextEpoch() {
	if it.epoch != nil {
		it.regionIns.Epochs = append(it.regionIns.Epochs, it.epoch)
	}
	it.epochOrd++
	it.epoch = &trace.Epoch{Index: it.epochOrd, Events: trace.GetEvents()}
	it.epochImpure = false
	// Mailbox handover: what was signaled during the previous epoch is now
	// available to this epoch. The consumed generation's maps are cleared
	// and swapped back in as the next producer side, so an epoch boundary
	// allocates nothing but the Epoch header.
	oldScalar := it.scalarCur
	clear(oldScalar)
	it.scalarCur, it.scalarNext = it.scalarNext, oldScalar
	clear(it.scalarSet)
	for k := range it.scalarCur {
		it.scalarSet[k] = true
	}
	oldMem := it.memCur
	clear(oldMem)
	it.memCur, it.memNext = it.memNext, oldMem
	clear(it.sigAddrs)
	for k := range it.uff {
		it.uff[k] = false
	}
}

func (it *interp) exitRegion() {
	if it.epoch != nil {
		// The final header arrival usually just evaluates the exit
		// condition and leaves the loop; those few side-effect-free events
		// belong to the last real epoch (the thread that discovers
		// termination), not to an epoch of their own. An epoch that did
		// real work before leaving (e.g. via break) stays separate.
		// Purity is tracked incrementally (epochImpure, set by exec on any
		// store, call, print, signal or allocation) instead of rescanning
		// the epoch's events here.
		if n := len(it.regionIns.Epochs); !it.epochImpure && n > 0 {
			last := it.regionIns.Epochs[n-1]
			last.Events = append(last.Events, it.epoch.Events...)
			trace.PutEvents(it.epoch.Events) // merged by copy; recycle the source
		} else {
			it.regionIns.Epochs = append(it.regionIns.Epochs, it.epoch)
		}
		it.epoch = nil
	}
	it.tr.Segments = append(it.tr.Segments, trace.Segment{Region: it.regionIns})
	it.regionIns = nil
	it.curRegion = nil
}

func (it *interp) flushSeq() {
	if len(it.seq) > 0 {
		it.tr.Segments = append(it.tr.Segments, trace.Segment{Seq: it.seq})
		it.seq = nil
	}
}

func (it *interp) emit(ev trace.Event) {
	if it.curRegion != nil {
		it.epoch.Events = append(it.epoch.Events, ev)
	} else {
		if it.seq == nil {
			it.seq = trace.GetEvents()
		}
		it.seq = append(it.seq, ev)
	}
}

// exec executes one instruction and reports whether execution stayed
// inside the current block (so run's flat dispatch loop can keep
// iterating its cached instruction slice). Control-transfer cases (Call,
// Ret, Br, CondBr) emit their event and return false; every other case
// falls through to the shared emit-and-advance tail.
func (it *interp) exec(f *frame, in *ir.Instr) bool {
	r := f.regs
	ev := trace.Event{SI: int32(in.ID)}
	switch in.Op {
	case ir.Const:
		r[in.Dst] = in.Imm
	case ir.Bin:
		r[in.Dst] = in.Alu.Eval(r[in.A], r[in.B])
	case ir.Neg:
		r[in.Dst] = -r[in.A]
	case ir.Not:
		if r[in.A] == 0 {
			r[in.Dst] = 1
		} else {
			r[in.Dst] = 0
		}
	case ir.Mov:
		r[in.Dst] = r[in.A]
	case ir.Load:
		addr := r[in.A]
		it.checkAddr(addr, in)
		r[in.Dst] = it.mem.load(addr)
		ev.Addr, ev.Val = addr, r[in.Dst]
	case ir.Store:
		addr := r[in.A]
		it.checkAddr(addr, in)
		it.mem.store(addr, r[in.B])
		ev.Addr, ev.Val = addr, r[in.B]
		it.epochImpure = true
		it.noteStore(addr, ev.Val)
	case ir.AddrGlobal:
		g := it.prog.GlobalMap[in.Sym]
		r[in.Dst] = g.Addr + in.Imm
	case ir.AddrLocal:
		r[in.Dst] = f.base + in.Imm
	case ir.NewObj:
		size := (in.Imm + lang.WordSize - 1) / lang.WordSize * lang.WordSize
		r[in.Dst] = it.heapPtr
		it.heapPtr += size
		ev.Addr = r[in.Dst]
		it.epochImpure = true
	case ir.Rnd:
		r[in.Dst] = it.rnd(r[in.A])
	case ir.Input:
		if len(it.opts.Input) == 0 {
			r[in.Dst] = 0
		} else {
			i := r[in.A] % int64(len(it.opts.Input))
			if i < 0 {
				i += int64(len(it.opts.Input))
			}
			r[in.Dst] = it.opts.Input[i]
		}
	case ir.Print:
		it.tr.Output = append(it.tr.Output, r[in.A])
		ev.Val = r[in.A]
		it.epochImpure = true
	case ir.Call:
		callee := it.prog.FuncMap[in.Sym]
		it.epochImpure = true
		it.emit(ev)
		f.idx++ // resume after the call on return
		nf := it.pushFrame(callee, in.Dst)
		for i, a := range in.Args {
			nf.regs[i] = r[a]
		}
		return false
	case ir.Ret:
		var v int64
		if in.A != ir.None {
			v = r[in.A]
		}
		it.emit(ev)
		it.frames = it.frames[:len(it.frames)-1]
		// Returning out of the region function ends the region.
		if it.curRegion != nil && len(it.frames) < it.regionDepth {
			it.exitRegion()
		}
		if len(it.frames) > 0 {
			caller := it.frames[len(it.frames)-1]
			if f.retDst != ir.None {
				caller.regs[f.retDst] = v
			}
		}
		// f is dead (popped, nothing aliases it): recycle it.
		it.freeFrames = append(it.freeFrames, f)
		return false
	case ir.Br:
		it.emit(ev)
		f.block = f.block.Succs[0]
		f.idx = 0
		return false
	case ir.CondBr:
		it.emit(ev)
		if r[in.A] != 0 {
			f.block = f.block.Succs[0]
		} else {
			f.block = f.block.Succs[1]
		}
		f.idx = 0
		return false

	case ir.WaitScalar:
		if it.scalarSet != nil && it.scalarSet[in.Imm] {
			r[in.Dst] = it.scalarCur[in.Imm]
		}
		// If no signal was pending (epoch 0 with no preheader signal),
		// the register keeps its current value: sequentially correct.
		ev.Val = r[in.Dst]
	case ir.SignalScalar:
		if it.curRegion != nil {
			it.scalarNext[in.Imm] = r[in.A]
		} else {
			if it.scalarNextPending == nil {
				it.scalarNextPending = make(map[int64]int64)
			}
			it.scalarNextPending[in.Imm] = r[in.A]
		}
		ev.Val = r[in.A]
		it.epochImpure = true
	case ir.WaitMemAddr:
		m := it.memCur[in.Imm]
		switch {
		case !m.valid || m.null:
			r[in.Dst] = 0
			ev.Flags |= trace.FlagNullSignal
		case m.stale:
			r[in.Dst] = m.addr
			ev.Flags |= trace.FlagStale
		default:
			r[in.Dst] = m.addr
		}
		ev.Addr, ev.Val = r[in.Dst], 0
	case ir.WaitMemVal:
		m := it.memCur[in.Imm]
		r[in.Dst] = m.val
		ev.Val = m.val
	case ir.CheckFwd:
		m := it.memCur[in.Imm]
		faddr, actual := r[in.A], r[in.B]
		it.uff[in.Imm] = faddr != 0 && faddr == actual && m.valid && !m.stale && !m.null
	case ir.LoadSync:
		addr := r[in.A]
		it.checkAddr(addr, in)
		if it.uff[in.Imm] && it.lastStoreEpoch != nil {
			if e, ok := it.lastStoreEpoch[addr]; ok && e == it.epochOrd {
				it.uff[in.Imm] = false // locally overwritten: memory is right
			}
		}
		r[in.Dst] = it.mem.load(addr)
		ev.Addr, ev.Val = addr, r[in.Dst]
		if it.uff[in.Imm] {
			ev.Flags |= trace.FlagUFF
		}
	case ir.SelectFwd:
		if it.uff[in.Imm] {
			r[in.Dst] = r[in.A]
			ev.Flags |= trace.FlagUFF
		} else {
			r[in.Dst] = r[in.B]
		}
		it.uff[in.Imm] = false
		ev.Val = r[in.Dst]
	case ir.SignalMem:
		addr, val := r[in.A], r[in.B]
		it.memNext[in.Imm] = memMsg{addr: addr, val: val, valid: true}
		if it.sigAddrs != nil {
			it.sigAddrs[addr] = append(it.sigAddrs[addr], in.Imm)
		}
		ev.Addr, ev.Val = addr, val
		it.epochImpure = true
	case ir.SignalMemNull:
		// Conditional: only the first signal of an epoch wins, so NULL
		// signals placed on storeless paths never clobber a real one.
		if _, already := it.memNext[in.Imm]; !already {
			it.memNext[in.Imm] = memMsg{valid: true, null: true}
		}
		it.epochImpure = true
	default:
		panic(interpError{fmt.Errorf("interp: unknown op %v", in.Op)})
	}
	it.emit(ev)
	f.idx++
	return true
}

// noteStore updates TLS bookkeeping for a store: the per-region
// last-store-epoch map and the signal address buffer (stale marking).
func (it *interp) noteStore(addr, _ int64) {
	if it.curRegion == nil {
		return
	}
	it.lastStoreEpoch[addr] = it.epochOrd
	if syncs, hit := it.sigAddrs[addr]; hit {
		for _, s := range syncs {
			m := it.memNext[s]
			if m.valid && m.addr == addr {
				m.stale = true
				it.memNext[s] = m
			}
		}
		delete(it.sigAddrs, addr)
	}
}

func (it *interp) checkAddr(addr int64, in *ir.Instr) {
	valid := (addr >= ir.GlobalBase && addr < it.globalsEnd) ||
		(addr >= ir.HeapBase && addr < it.heapPtr) ||
		(addr >= ir.StackBase && addr < ir.StackLimit)
	if addr == 0 {
		panic(interpError{fmt.Errorf("interp: nil dereference at %s (instr %d)", in.Pos, in.ID)})
	}
	if !valid {
		panic(interpError{fmt.Errorf("interp: wild address %#x at %s (instr %d)", addr, in.Pos, in.ID)})
	}
}
