package interp

import (
	"testing"

	"tlssync/internal/cfg"
	"tlssync/internal/ir"
	"tlssync/internal/lang"
	"tlssync/internal/lower"
	"tlssync/internal/trace"
)

// compile parses, checks and lowers src.
func compile(t testing.TB, src string) *ir.Program {
	t.Helper()
	c, err := lang.Check(lang.MustParse(src))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := lower.Lower(c)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

// run interprets with no regions and returns printed output.
func run(t testing.TB, src string, opts Options) []int64 {
	t.Helper()
	p := compile(t, src)
	tr, err := Run(p, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return tr.Output
}

func wantOutput(t *testing.T, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestArithmetic(t *testing.T) {
	out := run(t, `
func main() {
	print(2 + 3 * 4);
	print((2 + 3) * 4);
	print(10 / 3);
	print(10 % 3);
	print(1 << 5);
	print(-7);
	print(!0);
	print(!5);
	print(6 & 3);
	print(6 | 3);
	print(6 ^ 3);
	print(100 >> 2);
}`, Options{})
	wantOutput(t, out, []int64{14, 20, 3, 1, 32, -7, 1, 0, 2, 7, 5, 25})
}

func TestComparisonsAndLogic(t *testing.T) {
	out := run(t, `
func main() {
	print(1 < 2);
	print(2 <= 1);
	print(3 == 3);
	print(3 != 3);
	print(1 && 2);
	print(1 && 0);
	print(0 || 0);
	print(0 || 7);
}`, Options{})
	wantOutput(t, out, []int64{1, 0, 1, 0, 1, 0, 0, 1})
}

func TestShortCircuitSideEffects(t *testing.T) {
	// g() must not run when the left side already decides.
	out := run(t, `
var calls int;
func g() int { calls = calls + 1; return 1; }
func main() {
	var x int;
	x = 0 && g();
	x = 1 || g();
	print(calls);
	x = 1 && g();
	x = 0 || g();
	print(calls);
	print(x);
}`, Options{})
	wantOutput(t, out, []int64{0, 2, 1})
}

func TestControlFlow(t *testing.T) {
	out := run(t, `
func main() {
	var i int;
	var sum int;
	for i = 0; i < 10; i = i + 1 {
		if i % 2 == 0 {
			sum = sum + i;
		}
	}
	print(sum);
	var j int = 0;
	while j < 5 {
		j = j + 1;
		if j == 3 {
			continue;
		}
		if j == 5 {
			break;
		}
		sum = sum + 100;
	}
	print(sum);
	print(j);
}`, Options{})
	wantOutput(t, out, []int64{20, 320, 5})
}

func TestFunctionsAndRecursion(t *testing.T) {
	out := run(t, `
func fib(n int) int {
	if n < 2 {
		return n;
	}
	return fib(n - 1) + fib(n - 2);
}
func main() {
	print(fib(10));
}`, Options{})
	wantOutput(t, out, []int64{55})
}

func TestPointersAndHeap(t *testing.T) {
	out := run(t, `
type Node struct {
	next *Node;
	val  int;
}
var head *Node;
func push(v int) {
	var n *Node = new(Node);
	n->val = v;
	n->next = head;
	head = n;
}
func main() {
	var i int;
	for i = 1; i <= 4; i = i + 1 {
		push(i * i);
	}
	var p *Node = head;
	while p != nil {
		print(p->val);
		p = p->next;
	}
}`, Options{})
	wantOutput(t, out, []int64{16, 9, 4, 1})
}

func TestArraysAndStructs(t *testing.T) {
	out := run(t, `
type Pt struct { x int; y int; }
var grid [8]Pt;
func main() {
	var i int;
	for i = 0; i < 8; i = i + 1 {
		grid[i].x = i;
		grid[i].y = i * 10;
	}
	print(grid[3].x + grid[5].y);
	var p *Pt = &grid[2];
	p->y = 999;
	print(grid[2].y);
}`, Options{})
	wantOutput(t, out, []int64{53, 999})
}

func TestAddressOfLocal(t *testing.T) {
	out := run(t, `
func bump(p *int) { *p = *p + 1; }
func main() {
	var x int = 41;
	bump(&x);
	print(x);
}`, Options{})
	wantOutput(t, out, []int64{42})
}

func TestLocalZeroInit(t *testing.T) {
	// Frame reuse across calls must not leak values: locals are zeroed.
	out := run(t, `
type Buf struct { a int; b int; }
func writeJunk() {
	var b Buf;
	b.a = 12345;
	b.b = 67890;
}
func readFresh() int {
	var b Buf;
	return b.a + b.b;
}
func main() {
	writeJunk();
	print(readFresh());
}`, Options{})
	wantOutput(t, out, []int64{0})
}

func TestPointerIndexing(t *testing.T) {
	out := run(t, `
var arr [10]int;
func main() {
	var p *int = &arr[0];
	var i int;
	for i = 0; i < 10; i = i + 1 {
		p[i] = i * 2;
	}
	print(arr[7]);
	print(p[3]);
}`, Options{})
	wantOutput(t, out, []int64{14, 6})
}

func TestInputBuiltin(t *testing.T) {
	out := run(t, `
func main() {
	print(input(0));
	print(input(1));
	print(input(5));
}`, Options{Input: []int64{10, 20, 30}})
	wantOutput(t, out, []int64{10, 20, 30}) // index 5 wraps to 2
}

func TestRndDeterminism(t *testing.T) {
	src := `
func main() {
	var i int;
	var sum int;
	for i = 0; i < 100; i = i + 1 {
		sum = sum + rnd(10);
	}
	print(sum);
}`
	a := run(t, src, Options{Seed: 7})
	b := run(t, src, Options{Seed: 7})
	c := run(t, src, Options{Seed: 8})
	if a[0] != b[0] {
		t.Errorf("same seed gave %d vs %d", a[0], b[0])
	}
	if a[0] == c[0] {
		t.Errorf("different seeds both gave %d", a[0])
	}
	for _, v := range a {
		if v < 0 || v >= 1000 {
			t.Errorf("rnd sum out of range: %d", v)
		}
	}
}

func TestNilDereferenceFaults(t *testing.T) {
	p := compile(t, `
func main() {
	var p *int;
	print(*p);
}`)
	if _, err := Run(p, Options{}); err == nil {
		t.Fatal("expected nil-dereference error")
	}
}

func TestInfiniteLoopGuard(t *testing.T) {
	p := compile(t, `func main() { while 1 { } }`)
	if _, err := Run(p, Options{MaxSteps: 1000}); err == nil {
		t.Fatal("expected step-limit error")
	}
}

func TestGlobalInit(t *testing.T) {
	out := run(t, `
var g int = 42;
var h *int = nil;
func main() {
	print(g);
	if h == nil { print(1); } else { print(0); }
}`, Options{})
	wantOutput(t, out, []int64{42, 1})
}

// regionsOf builds Region values for all parallel loops in the program.
func regionsOf(p *ir.Program) []*Region {
	var regs []*Region
	id := 0
	for _, f := range p.Funcs {
		for _, l := range cfg.ParallelLoops(f) {
			regs = append(regs, &Region{ID: id, Func: f, Loop: l})
			id++
		}
	}
	return regs
}

func TestEpochTrace(t *testing.T) {
	p := compile(t, `
var acc int;
func main() {
	var i int;
	parallel for i = 0; i < 10; i = i + 1 {
		acc = acc + i;
	}
	print(acc);
}`)
	regs := regionsOf(p)
	if len(regs) != 1 {
		t.Fatalf("found %d parallel loops, want 1", len(regs))
	}
	tr, err := Run(p, Options{Regions: regs})
	if err != nil {
		t.Fatal(err)
	}
	wantOutput(t, tr.Output, []int64{45})
	if got := tr.EpochCount(); got != 10 {
		// 10 body iterations; the final header evaluation that exits is
		// folded into epoch 9.
		t.Errorf("epochs = %d, want 10", got)
	}
	var regionInstances int
	for _, s := range tr.Segments {
		if s.Region != nil {
			regionInstances++
		}
	}
	if regionInstances != 1 {
		t.Errorf("region instances = %d, want 1", regionInstances)
	}
}

func TestEpochTraceMemoryEvents(t *testing.T) {
	p := compile(t, `
var g int;
func main() {
	var i int;
	parallel for i = 0; i < 4; i = i + 1 {
		g = g + 1;
	}
}`)
	tr, err := Run(p, Options{Regions: regionsOf(p)})
	if err != nil {
		t.Fatal(err)
	}
	// Every full epoch must contain exactly one load and one store of g.
	gAddr := p.GlobalMap["g"].Addr
	for _, s := range tr.Segments {
		if s.Region == nil {
			continue
		}
		for _, e := range s.Region.Epochs[:4] {
			loads, stores := 0, 0
			for _, ev := range e.Events {
				switch tr.Code[ev.SI].Op {
				case ir.Load:
					if ev.Addr == gAddr {
						loads++
					}
				case ir.Store:
					if ev.Addr == gAddr {
						stores++
					}
				}
			}
			if loads != 1 || stores != 1 {
				t.Errorf("epoch %d: loads=%d stores=%d of g, want 1/1", e.Index, loads, stores)
			}
		}
	}
}

func TestRegionInstanceBoundaries(t *testing.T) {
	// A parallel loop entered twice produces two region instances.
	p := compile(t, `
var g int;
func body() {
	var i int;
	parallel for i = 0; i < 3; i = i + 1 {
		g = g + 1;
	}
}
func main() {
	body();
	body();
	print(g);
}`)
	tr, err := Run(p, Options{Regions: regionsOf(p)})
	if err != nil {
		t.Fatal(err)
	}
	wantOutput(t, tr.Output, []int64{6})
	instances := 0
	for _, s := range tr.Segments {
		if s.Region != nil {
			instances++
		}
	}
	if instances != 2 {
		t.Errorf("region instances = %d, want 2", instances)
	}
}

func TestBreakExitsRegion(t *testing.T) {
	p := compile(t, `
var g int;
func main() {
	var i int;
	parallel for i = 0; i < 100; i = i + 1 {
		g = g + 1;
		if i == 4 {
			break;
		}
	}
	print(g);
}`)
	tr, err := Run(p, Options{Regions: regionsOf(p)})
	if err != nil {
		t.Fatal(err)
	}
	wantOutput(t, tr.Output, []int64{5})
	if tr.EpochCount() != 5 {
		t.Errorf("epochs = %d, want 5", tr.EpochCount())
	}
}

func TestCallRetBalancedInEpochs(t *testing.T) {
	p := compile(t, `
var g int;
func f(x int) int { return x * 2; }
func main() {
	var i int;
	parallel for i = 0; i < 5; i = i + 1 {
		g = g + f(i);
	}
	print(g);
}`)
	tr, err := Run(p, Options{Regions: regionsOf(p)})
	if err != nil {
		t.Fatal(err)
	}
	wantOutput(t, tr.Output, []int64{20})
	for _, s := range tr.Segments {
		if s.Region == nil {
			continue
		}
		for _, e := range s.Region.Epochs {
			depth := 0
			for _, ev := range e.Events {
				switch tr.Code[ev.SI].Op {
				case ir.Call:
					depth++
				case ir.Ret:
					depth--
				}
			}
			if depth != 0 {
				t.Errorf("epoch %d: unbalanced call depth %d", e.Index, depth)
			}
		}
	}
}

func TestStackAddressesExcluded(t *testing.T) {
	// Address-taken locals land in the stack segment, which dependence
	// tracking ignores.
	p := compile(t, `
func bump(p *int) { *p = *p + 1; }
func main() {
	var i int;
	parallel for i = 0; i < 3; i = i + 1 {
		var x int = i;
		bump(&x);
		print(x);
	}
}`)
	tr, err := Run(p, Options{Regions: regionsOf(p)})
	if err != nil {
		t.Fatal(err)
	}
	wantOutput(t, tr.Output, []int64{1, 2, 3})
	sawStack := false
	for _, s := range tr.Segments {
		if s.Region == nil {
			continue
		}
		for _, e := range s.Region.Epochs {
			for _, ev := range e.Events {
				if tr.Code[ev.SI].Op.IsMemAccess() && ir.IsStackAddr(ev.Addr) {
					sawStack = true
				}
			}
		}
	}
	if !sawStack {
		t.Error("expected some stack-segment accesses in the trace")
	}
}

func TestTraceEventCountsMatchSteps(t *testing.T) {
	p := compile(t, `
func main() {
	var i int;
	var s int;
	for i = 0; i < 50; i = i + 1 {
		s = s + i;
	}
	print(s);
}`)
	tr, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Events() == 0 {
		t.Fatal("empty trace")
	}
	// All events are sequential (no regions).
	if tr.RegionEvents() != 0 || tr.EpochCount() != 0 {
		t.Error("unexpected region events in sequential run")
	}
}

var sinkTrace *trace.ProgramTrace

func BenchmarkInterpFib(b *testing.B) {
	p := compile(b, `
func fib(n int) int {
	if n < 2 { return n; }
	return fib(n-1) + fib(n-2);
}
func main() { print(fib(15)); }`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := Run(p, Options{})
		if err != nil {
			b.Fatal(err)
		}
		sinkTrace = tr
	}
}
