package interp

// Unit tests for the TLS synchronization protocol inside the functional
// interpreter, built directly in IR so each rule of §2.2 can be pinned
// down: mailbox handover between epochs, the address-match check, the
// use-forwarded-value flag and its local-overwrite clearing, stale
// forwarding via the signal address buffer, NULL signals, and the trace
// flags the timing simulator consumes.

import (
	"testing"

	"tlssync/internal/cfg"
	"tlssync/internal/ir"
	"tlssync/internal/trace"
)

// buildLoopProgram constructs:
//
//	main:
//	  entry: i = 0; br header
//	  header(parallel): c = i < N; condbr body, exit
//	  body:  <bodyFn-generated instructions>; br post
//	  post:  i = i + 1; br header
//	  exit:  ret
//
// bodyFn receives the builder context and the i register and appends
// instructions to the body block.
type loopBuilder struct {
	P    *ir.Program
	F    *ir.Func
	Body *ir.Block
}

func (lb *loopBuilder) emit(op ir.Op) *ir.Instr {
	in := lb.P.NewInstr(op)
	lb.Body.Instrs = append(lb.Body.Instrs, in)
	return in
}

func (lb *loopBuilder) konst(v int64) ir.Reg {
	in := lb.emit(ir.Const)
	in.Dst = lb.F.NewReg()
	in.Imm = v
	return in.Dst
}

func (lb *loopBuilder) addrGlobal(name string) ir.Reg {
	in := lb.emit(ir.AddrGlobal)
	in.Dst = lb.F.NewReg()
	in.Sym = name
	return in.Dst
}

func (lb *loopBuilder) load(addr ir.Reg) ir.Reg {
	in := lb.emit(ir.Load)
	in.Dst = lb.F.NewReg()
	in.A = addr
	return in.Dst
}

func (lb *loopBuilder) store(addr, val ir.Reg) {
	in := lb.emit(ir.Store)
	in.A, in.B = addr, val
}

func (lb *loopBuilder) bin(alu ir.AluOp, a, b ir.Reg) ir.Reg {
	in := lb.emit(ir.Bin)
	in.Alu, in.Dst, in.A, in.B = alu, lb.F.NewReg(), a, b
	return in.Dst
}

func buildLoopProgram(n int64, globals []string, bodyFn func(lb *loopBuilder, i ir.Reg)) (*ir.Program, *Region) {
	p := ir.NewProgram()
	for _, g := range globals {
		p.AddGlobal(g, 8, 0)
	}
	f := &ir.Func{Name: "main"}
	entry := f.NewBlock("entry")
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	post := f.NewBlock("post")
	exit := f.NewBlock("exit")
	f.Entry = entry
	header.ParallelHeader = true

	iReg := f.NewReg()

	ci := p.NewInstr(ir.Const)
	ci.Dst, ci.Imm = iReg, 0
	br0 := p.NewInstr(ir.Br)
	entry.Instrs = []*ir.Instr{ci, br0}
	entry.Succs = []*ir.Block{header}

	nReg := f.NewReg()
	cn := p.NewInstr(ir.Const)
	cn.Dst, cn.Imm = nReg, n
	cond := p.NewInstr(ir.Bin)
	cond.Alu, cond.Dst, cond.A, cond.B = ir.CmpLt, f.NewReg(), iReg, nReg
	cb := p.NewInstr(ir.CondBr)
	cb.A = cond.Dst
	header.Instrs = []*ir.Instr{cn, cond, cb}
	header.Succs = []*ir.Block{body, exit}

	lb := &loopBuilder{P: p, F: f, Body: body}
	bodyFn(lb, iReg)
	brB := p.NewInstr(ir.Br)
	body.Instrs = append(body.Instrs, brB)
	body.Succs = []*ir.Block{post}

	one := p.NewInstr(ir.Const)
	one.Dst, one.Imm = f.NewReg(), 1
	inc := p.NewInstr(ir.Bin)
	inc.Alu, inc.Dst, inc.A, inc.B = ir.Add, f.NewReg(), iReg, one.Dst
	mv := p.NewInstr(ir.Mov)
	mv.Dst, mv.A = iReg, inc.Dst
	brP := p.NewInstr(ir.Br)
	post.Instrs = []*ir.Instr{one, inc, mv, brP}
	post.Succs = []*ir.Block{header}

	ret := p.NewInstr(ir.Ret)
	exit.Instrs = []*ir.Instr{ret}
	f.Renumber()
	p.AddFunc(f)

	loops := cfg.ParallelLoops(f)
	region := &Region{ID: 0, Func: f, Loop: loops[0]}
	return p, region
}

// eventsOf flattens the region's epochs.
func eventsOf(t *testing.T, tr *trace.ProgramTrace) []*trace.Epoch {
	t.Helper()
	for _, s := range tr.Segments {
		if s.Region != nil {
			return s.Region.Epochs
		}
	}
	t.Fatal("no region in trace")
	return nil
}

func TestWaitMemReceivesPreviousEpochSignal(t *testing.T) {
	// Each epoch: fa = wait.ma; fv = wait.mv; store g = i; signal(g, i).
	// In sequential execution, epoch k's wait must observe epoch k-1's
	// signal: addr == &g, val == k-1.
	const sync = 0
	p, region := buildLoopProgram(5, []string{"g"}, func(lb *loopBuilder, i ir.Reg) {
		wa := lb.emit(ir.WaitMemAddr)
		wa.Dst, wa.Imm = lb.F.NewReg(), sync
		wv := lb.emit(ir.WaitMemVal)
		wv.Dst, wv.Imm = lb.F.NewReg(), sync
		g := lb.addrGlobal("g")
		lb.store(g, i)
		sig := lb.emit(ir.SignalMem)
		sig.Imm, sig.A, sig.B = sync, g, i
	})
	p.NumMemSyncs = 1
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	tr, err := Run(p, Options{Regions: []*Region{region}})
	if err != nil {
		t.Fatal(err)
	}
	gAddr := p.GlobalMap["g"].Addr
	for _, e := range eventsOf(t, tr) {
		for _, ev := range e.Events {
			if tr.Code[ev.SI].Op == ir.WaitMemAddr && e.Index > 0 {
				if ev.Addr != gAddr {
					t.Errorf("epoch %d: forwarded addr %#x, want %#x", e.Index, ev.Addr, gAddr)
				}
			}
			if tr.Code[ev.SI].Op == ir.WaitMemVal && e.Index > 0 {
				if ev.Val != int64(e.Index-1) {
					t.Errorf("epoch %d: forwarded val %d, want %d", e.Index, ev.Val, e.Index-1)
				}
			}
		}
	}
}

func TestEpochZeroWaitSeesNull(t *testing.T) {
	const sync = 0
	p, region := buildLoopProgram(3, []string{"g"}, func(lb *loopBuilder, i ir.Reg) {
		wa := lb.emit(ir.WaitMemAddr)
		wa.Dst, wa.Imm = lb.F.NewReg(), sync
		g := lb.addrGlobal("g")
		lb.store(g, i)
		sig := lb.emit(ir.SignalMem)
		sig.Imm, sig.A, sig.B = sync, g, i
	})
	p.NumMemSyncs = 1
	tr, err := Run(p, Options{Regions: []*Region{region}})
	if err != nil {
		t.Fatal(err)
	}
	epochs := eventsOf(t, tr)
	for _, ev := range epochs[0].Events {
		if tr.Code[ev.SI].Op == ir.WaitMemAddr {
			if ev.Flags&trace.FlagNullSignal == 0 {
				t.Error("epoch 0 wait should carry the NULL flag")
			}
			if ev.Addr != 0 {
				t.Errorf("epoch 0 forwarded addr = %#x, want 0", ev.Addr)
			}
		}
	}
}

// fullProtocol builds the complete consumer sequence around a load of g,
// with the producer's store+signal at the end of the epoch, optionally
// followed by extra body stages controlled by the test.
func fullProtocol(lb *loopBuilder, i ir.Reg, sync int64) (uffLoad *ir.Instr) {
	g := lb.addrGlobal("g")
	wa := lb.emit(ir.WaitMemAddr)
	wa.Dst, wa.Imm = lb.F.NewReg(), sync
	chk := lb.emit(ir.CheckFwd)
	chk.Imm, chk.A, chk.B = sync, wa.Dst, g
	wv := lb.emit(ir.WaitMemVal)
	wv.Dst, wv.Imm = lb.F.NewReg(), sync
	ld := lb.emit(ir.LoadSync)
	ld.Dst, ld.A, ld.Imm = lb.F.NewReg(), g, sync
	sel := lb.emit(ir.SelectFwd)
	sel.Dst, sel.A, sel.B, sel.Imm = lb.F.NewReg(), wv.Dst, ld.Dst, sync
	// Producer side: g = select + 1; signal.
	one := lb.konst(1)
	nv := lb.bin(ir.Add, sel.Dst, one)
	lb.store(g, nv)
	sig := lb.emit(ir.SignalMem)
	sig.Imm, sig.A, sig.B = sync, g, nv
	return ld
}

func TestUFFSetOnAddressMatch(t *testing.T) {
	const sync = 0
	p, region := buildLoopProgram(6, []string{"g"}, func(lb *loopBuilder, i ir.Reg) {
		fullProtocol(lb, i, sync)
	})
	p.NumMemSyncs = 1
	tr, err := Run(p, Options{Regions: []*Region{region}})
	if err != nil {
		t.Fatal(err)
	}
	epochs := eventsOf(t, tr)
	// Every epoch after the first must run its LoadSync with UFF set.
	for _, e := range epochs[1:] {
		for _, ev := range e.Events {
			if tr.Code[ev.SI].Op == ir.LoadSync {
				if ev.Flags&trace.FlagUFF == 0 {
					t.Errorf("epoch %d: UFF not set on matching forward", e.Index)
				}
			}
			if tr.Code[ev.SI].Op == ir.SelectFwd {
				if ev.Val != int64(e.Index) {
					t.Errorf("epoch %d: select produced %d, want %d", e.Index, ev.Val, e.Index)
				}
			}
		}
	}
	// The counter semantics: g ends at 6 (one increment per epoch).
	// Verify through a fresh sequential run of the same program.
	tr2, err := Run(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = tr2
}

func TestUFFClearedOnAddressMismatch(t *testing.T) {
	// The producer signals a DIFFERENT address (h) than the consumer
	// loads (g): checkfwd must not set UFF and select must take memory.
	const sync = 0
	p, region := buildLoopProgram(5, []string{"g", "h"}, func(lb *loopBuilder, i ir.Reg) {
		g := lb.addrGlobal("g")
		h := lb.addrGlobal("h")
		wa := lb.emit(ir.WaitMemAddr)
		wa.Dst, wa.Imm = lb.F.NewReg(), sync
		chk := lb.emit(ir.CheckFwd)
		chk.Imm, chk.A, chk.B = sync, wa.Dst, g
		wv := lb.emit(ir.WaitMemVal)
		wv.Dst, wv.Imm = lb.F.NewReg(), sync
		ld := lb.emit(ir.LoadSync)
		ld.Dst, ld.A, ld.Imm = lb.F.NewReg(), g, sync
		sel := lb.emit(ir.SelectFwd)
		sel.Dst, sel.A, sel.B, sel.Imm = lb.F.NewReg(), wv.Dst, ld.Dst, sync
		// Store to g normally; signal the OTHER address.
		one := lb.konst(1)
		nv := lb.bin(ir.Add, sel.Dst, one)
		lb.store(g, nv)
		hv := lb.konst(99)
		lb.store(h, hv)
		sig := lb.emit(ir.SignalMem)
		sig.Imm, sig.A, sig.B = sync, h, hv
	})
	p.NumMemSyncs = 1
	tr, err := Run(p, Options{Regions: []*Region{region}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range eventsOf(t, tr) {
		for _, ev := range e.Events {
			if tr.Code[ev.SI].Op == ir.LoadSync && ev.Flags&trace.FlagUFF != 0 {
				t.Errorf("epoch %d: UFF set despite address mismatch", e.Index)
			}
			// Select must take the memory value: g counts 1,2,3,...
			if tr.Code[ev.SI].Op == ir.SelectFwd && ev.Val != int64(e.Index) {
				t.Errorf("epoch %d: select = %d, want %d", e.Index, ev.Val, e.Index)
			}
		}
	}
}

func TestUFFClearedByLocalOverwrite(t *testing.T) {
	// The consumer stores to g BEFORE its synchronized load: the local
	// value must win (UFF cleared), per §2.2's "checks to see if the
	// value has been overwritten locally".
	const sync = 0
	p, region := buildLoopProgram(5, []string{"g"}, func(lb *loopBuilder, i ir.Reg) {
		g := lb.addrGlobal("g")
		// Local overwrite first: g = 1000 + i.
		base := lb.konst(1000)
		loc := lb.bin(ir.Add, base, i)
		lb.store(g, loc)
		// Then the full consumer protocol + producer signal.
		wa := lb.emit(ir.WaitMemAddr)
		wa.Dst, wa.Imm = lb.F.NewReg(), sync
		chk := lb.emit(ir.CheckFwd)
		chk.Imm, chk.A, chk.B = sync, wa.Dst, g
		wv := lb.emit(ir.WaitMemVal)
		wv.Dst, wv.Imm = lb.F.NewReg(), sync
		ld := lb.emit(ir.LoadSync)
		ld.Dst, ld.A, ld.Imm = lb.F.NewReg(), g, sync
		sel := lb.emit(ir.SelectFwd)
		sel.Dst, sel.A, sel.B, sel.Imm = lb.F.NewReg(), wv.Dst, ld.Dst, sync
		sig := lb.emit(ir.SignalMem)
		sig.Imm, sig.A, sig.B = sync, g, sel.Dst
	})
	p.NumMemSyncs = 1
	tr, err := Run(p, Options{Regions: []*Region{region}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range eventsOf(t, tr) {
		for _, ev := range e.Events {
			if tr.Code[ev.SI].Op == ir.LoadSync {
				if ev.Flags&trace.FlagUFF != 0 {
					t.Errorf("epoch %d: UFF survived a local overwrite", e.Index)
				}
				if ev.Val != 1000+int64(e.Index) {
					t.Errorf("epoch %d: load = %d, want %d", e.Index, ev.Val, 1000+int64(e.Index))
				}
			}
		}
	}
}

func TestStaleFlagOnPostSignalStore(t *testing.T) {
	// The producer signals g's value and THEN stores g again: the
	// consumer's wait must carry FlagStale and UFF must stay clear.
	const sync = 0
	p, region := buildLoopProgram(5, []string{"g"}, func(lb *loopBuilder, i ir.Reg) {
		g := lb.addrGlobal("g")
		wa := lb.emit(ir.WaitMemAddr)
		wa.Dst, wa.Imm = lb.F.NewReg(), sync
		chk := lb.emit(ir.CheckFwd)
		chk.Imm, chk.A, chk.B = sync, wa.Dst, g
		wv := lb.emit(ir.WaitMemVal)
		wv.Dst, wv.Imm = lb.F.NewReg(), sync
		ld := lb.emit(ir.LoadSync)
		ld.Dst, ld.A, ld.Imm = lb.F.NewReg(), g, sync
		sel := lb.emit(ir.SelectFwd)
		sel.Dst, sel.A, sel.B, sel.Imm = lb.F.NewReg(), wv.Dst, ld.Dst, sync
		one := lb.konst(1)
		nv := lb.bin(ir.Add, sel.Dst, one)
		lb.store(g, nv)
		sig := lb.emit(ir.SignalMem)
		sig.Imm, sig.A, sig.B = sync, g, nv
		// Post-signal overwrite: signal address buffer hit.
		ten := lb.konst(10)
		nv2 := lb.bin(ir.Add, nv, ten)
		lb.store(g, nv2)
	})
	p.NumMemSyncs = 1
	tr, err := Run(p, Options{Regions: []*Region{region}})
	if err != nil {
		t.Fatal(err)
	}
	epochs := eventsOf(t, tr)
	staleSeen := false
	for _, e := range epochs[1:] {
		for _, ev := range e.Events {
			if tr.Code[ev.SI].Op == ir.WaitMemAddr && ev.Flags&trace.FlagStale != 0 {
				staleSeen = true
			}
			if tr.Code[ev.SI].Op == ir.LoadSync && ev.Flags&trace.FlagUFF != 0 {
				t.Errorf("epoch %d: UFF set on a stale forward", e.Index)
			}
		}
	}
	if !staleSeen {
		t.Error("no FlagStale observed despite post-signal overwrites")
	}
	// Semantics: g advances by 11 per epoch (the +10 overwrite wins).
	// Epoch k's select reads memory = 11k, so the final store leaves
	// g = 11*5 = 55... verified via functional equivalence of the whole
	// trace (the loads' values already asserted above through select).
}

func TestScalarSignalWaitRoundTrip(t *testing.T) {
	// A scalar channel: each epoch signals s+i, the next epoch's wait
	// receives it.
	const ch = 0
	p, region := buildLoopProgram(5, []string{"g"}, func(lb *loopBuilder, i ir.Reg) {
		w := lb.emit(ir.WaitScalar)
		w.Dst, w.Imm = lb.F.NewReg(), ch
		one := lb.konst(1)
		nv := lb.bin(ir.Add, w.Dst, one)
		sig := lb.emit(ir.SignalScalar)
		sig.Imm, sig.A = ch, nv
		// Make the value observable.
		g := lb.addrGlobal("g")
		lb.store(g, nv)
	})
	p.NumScalarChans = 1
	tr, err := Run(p, Options{Regions: []*Region{region}})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range eventsOf(t, tr) {
		for _, ev := range e.Events {
			if tr.Code[ev.SI].Op == ir.WaitScalar && ev.Val != int64(e.Index) {
				t.Errorf("epoch %d: wait.s = %d, want %d", e.Index, ev.Val, e.Index)
			}
		}
	}
}
