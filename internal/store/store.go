// Package store is a content-addressed artifact cache for the
// compile→profile→simulate pipeline. Artifacts — serialized sim.Results,
// dependence profiles, rendered figures — are keyed by the SHA-256 of
// everything that determines their content: the MiniC source, the
// compiler options, the policy label, and the machine configuration.
// Because the whole pipeline is deterministic (fixed seed, trace-driven
// timing), a key hit is guaranteed to be byte-identical to a fresh
// recomputation, so cached artifacts can be served to clients directly.
//
// The store is a two-level cache: a bounded in-memory LRU layer in front
// of an optional on-disk layer under a cache directory. Disk entries are
// written with a payload checksum and atomically (write-to-temp +
// rename); a corrupt or truncated entry is detected on read, counted,
// quarantined (moved into a quarantine/ subdirectory, preserving the
// forensic evidence), and treated as a miss so the caller falls back to
// recomputing. Opening a store scans the disk tier, so artifacts
// written by previous processes are counted and visible through Stats
// and Keys immediately, and a periodic Scrub verifies every disk
// entry's checksum in the background. All methods are safe for
// concurrent use.
package store

import (
	"bufio"
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Marshal renders an artifact payload as deterministic JSON: Go's
// encoding/json sorts map keys and the pipeline is seeded, so equal
// artifacts always serialize to equal bytes — the property that makes
// content-addressed caching sound.
func Marshal(v any) ([]byte, error) { return json.Marshal(v) }

// Key returns the content address for an artifact: a hex SHA-256 over
// the kind tag and every identifying part. Parts are length-prefixed so
// distinct part lists can never collide by concatenation.
func Key(kind string, parts ...string) string {
	h := sha256.New()
	writePart(h, kind)
	for _, p := range parts {
		writePart(h, p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writePart(h io.Writer, p string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
	h.Write(n[:])
	io.WriteString(h, p)
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Entries    int   `json:"entries"`     // in-memory entries
	Capacity   int   `json:"capacity"`    // in-memory LRU capacity
	Hits       int64 `json:"hits"`        // Get served (memory or disk)
	MemHits    int64 `json:"mem_hits"`    // ... of which from memory
	DiskHits   int64 `json:"disk_hits"`   // ... of which from disk
	Misses     int64 `json:"misses"`      // Get found nothing usable
	Evictions  int64 `json:"evictions"`   // memory entries evicted by LRU
	Puts       int64 `json:"puts"`        // artifacts stored
	DiskErrors int64 `json:"disk_errors"` // corrupt/unreadable/unwritable disk entries
	DiskBytes  int64 `json:"disk_bytes"`  // payload bytes written to disk

	// Crash-recovery visibility (populated when a cache dir is set).
	DiskEntries        int   `json:"disk_entries"`        // known disk-tier entries (scan + puts)
	CorruptQuarantined int64 `json:"corrupt_quarantined"` // corrupt entries moved to quarantine/
	ScanSkipped        int64 `json:"scan_skipped"`        // malformed names skipped by the open scan
	ScanTempsRemoved   int64 `json:"scan_temps_removed"`  // crashed writers' temp files reaped at open
	ScrubChecked       int64 `json:"scrub_checked"`       // entries verified by Scrub
}

// Store is the two-level content-addressed cache.
type Store struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	dir   string              // "" = memory only
	fs    FS                  // filesystem seam for the disk layer
	known map[string]struct{} // keys believed present in the disk tier
	stats Stats
}

// entry is one in-memory artifact.
type entry struct {
	key string
	val []byte
}

// DefaultCapacity bounds the in-memory layer when the caller passes a
// non-positive capacity.
const DefaultCapacity = 256

// New returns a store holding at most capacity artifacts in memory
// (<= 0 selects DefaultCapacity). If dir is non-empty, artifacts are
// also persisted under it (created if missing) and survive restarts.
func New(capacity int, dir string) (*Store, error) {
	return NewWithFS(capacity, dir, OS)
}

// NewWithFS is New with an explicit filesystem for the disk layer —
// the fault-injection seam used by the chaos and crash tests (fsys ==
// nil selects the real filesystem). When dir is non-empty the disk
// tier is scanned at open: artifacts written by previous processes are
// counted and reported through Stats and Keys before they are ever
// touched, malformed filenames are skipped with a counted warning
// (never a failed open), and temp files abandoned by a crashed writer
// are reaped.
func NewWithFS(capacity int, dir string, fsys FS) (*Store, error) {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if fsys == nil {
		fsys = OS
	}
	if dir != "" {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: cache dir: %w", err)
		}
	}
	s := &Store{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		dir:   dir,
		fs:    fsys,
		known: make(map[string]struct{}),
	}
	s.stats.Capacity = capacity
	if dir != "" {
		s.scanDisk()
	}
	return s, nil
}

// reservedDirs are cache-dir subdirectories that are not shards:
// quarantined corrupt artifacts, the write-ahead journal, and the
// cluster layer's epoch file (cmd/tlsd).
func reservedDir(name string) bool {
	return name == "quarantine" || name == "journal" || name == "cluster"
}

// scanDisk walks the disk tier once at open, registering every
// well-formed entry so Stats and Keys reflect prior processes' work.
// It is deliberately lenient: a directory it cannot read or a filename
// it does not recognize degrades a counter, never the open.
func (s *Store) scanDisk() {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		s.stats.DiskErrors++
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || reservedDir(name) {
			if !e.IsDir() {
				s.stats.ScanSkipped++
			}
			continue
		}
		if len(name) != 2 {
			s.stats.ScanSkipped++
			continue
		}
		files, err := s.fs.ReadDir(filepath.Join(s.dir, name))
		if err != nil {
			s.stats.DiskErrors++
			continue
		}
		for _, f := range files {
			fn := f.Name()
			switch {
			case f.IsDir():
				s.stats.ScanSkipped++
			case strings.HasPrefix(fn, "."):
				// A temp file here means a writer died between CreateTemp
				// and rename; its entry was never linked, so reap it.
				s.fs.Remove(filepath.Join(s.dir, name, fn))
				s.stats.ScanTempsRemoved++
			case len(fn) < 2 || fn[:2] != name:
				s.stats.ScanSkipped++
			default:
				s.known[fn] = struct{}{}
			}
		}
	}
}

// Dir returns the on-disk cache directory ("" when memory-only).
func (s *Store) Dir() string { return s.dir }

// Get returns the artifact stored under key. It consults the in-memory
// LRU first and falls back to the disk layer; a disk hit is promoted
// into memory. The returned slice must not be modified by the caller.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		s.stats.MemHits++
		val := el.Value.(*entry).val
		s.mu.Unlock()
		return val, true
	}
	s.mu.Unlock()

	if s.dir == "" {
		s.miss()
		return nil, false
	}
	val, err := s.readDisk(key)
	if err != nil {
		if os.IsNotExist(err) {
			s.mu.Lock()
			delete(s.known, key)
			s.mu.Unlock()
		} else {
			s.mu.Lock()
			s.stats.DiskErrors++
			s.mu.Unlock()
			// Quarantine only on verified corruption (bad format/checksum).
			// A transient error — EACCES, EMFILE under fd pressure — must
			// keep the entry: it may read fine next time.
			if errors.Is(err, errCorrupt) {
				s.quarantine(key)
			}
		}
		s.miss()
		return nil, false
	}
	s.mu.Lock()
	s.stats.Hits++
	s.stats.DiskHits++
	s.insertLocked(key, val)
	s.mu.Unlock()
	return val, true
}

func (s *Store) miss() {
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
}

// Put stores the artifact under key in memory and, when a cache dir is
// configured, on disk. Disk failures are counted but do not fail the
// put: the in-memory layer still serves the artifact.
func (s *Store) Put(key string, val []byte) {
	s.mu.Lock()
	s.stats.Puts++
	s.insertLocked(key, val)
	s.mu.Unlock()

	if s.dir == "" {
		return
	}
	if err := s.writeDisk(key, val); err != nil {
		s.mu.Lock()
		s.stats.DiskErrors++
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.stats.DiskBytes += int64(len(val))
	s.known[key] = struct{}{}
	s.mu.Unlock()
}

// quarantine moves a verifiably corrupt disk entry into the
// quarantine/ subdirectory instead of deleting it: the bytes are the
// forensic evidence (what got torn, how far the write progressed) that
// the scrubber's counters point operators at. A quarantine that itself
// fails falls back to counting only; the entry stays and will be
// re-detected.
func (s *Store) quarantine(key string) {
	qdir := filepath.Join(s.dir, "quarantine")
	if err := s.fs.MkdirAll(qdir, 0o755); err != nil {
		s.mu.Lock()
		s.stats.DiskErrors++
		s.mu.Unlock()
		return
	}
	if err := s.fs.Rename(s.path(key), filepath.Join(qdir, key)); err != nil {
		s.mu.Lock()
		s.stats.DiskErrors++
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.stats.CorruptQuarantined++
	delete(s.known, key)
	s.mu.Unlock()
}

// Scrub verifies the checksum of every known disk entry, quarantining
// the corrupt ones. It is the proactive half of the corruption story:
// Get catches bad entries on demand; Scrub catches the ones nobody has
// asked for yet, so /readyz can report bit rot before a client finds
// it. Returns how many entries were checked and how many quarantined.
// ctx bounds the walk (the daemon runs Scrub on a ticker).
func (s *Store) Scrub(ctx context.Context) (checked int, quarantined int) {
	if s.dir == "" {
		return 0, 0
	}
	s.mu.Lock()
	keys := make([]string, 0, len(s.known))
	for k := range s.known {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Strings(keys)
	for _, key := range keys {
		if ctx.Err() != nil {
			return checked, quarantined
		}
		_, err := s.readDisk(key)
		switch {
		case err == nil:
			checked++
		case os.IsNotExist(err):
			s.mu.Lock()
			delete(s.known, key)
			s.mu.Unlock()
		case errors.Is(err, errCorrupt):
			checked++
			s.mu.Lock()
			s.stats.DiskErrors++
			s.mu.Unlock()
			s.quarantine(key)
			quarantined++
		default:
			// Transient read failure: count it, keep the entry.
			checked++
			s.mu.Lock()
			s.stats.DiskErrors++
			s.mu.Unlock()
		}
	}
	s.mu.Lock()
	s.stats.ScrubChecked += int64(checked)
	s.mu.Unlock()
	return checked, quarantined
}

// insertLocked adds or refreshes a memory entry and evicts past cap.
func (s *Store) insertLocked(key string, val []byte) {
	if el, ok := s.items[key]; ok {
		el.Value.(*entry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&entry{key: key, val: val})
	for s.ll.Len() > s.cap {
		last := s.ll.Back()
		s.ll.Remove(last)
		delete(s.items, last.Value.(*entry).key)
		s.stats.Evictions++
	}
}

// Len returns the number of in-memory entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Keys returns every key the store can serve: the in-memory keys from
// most to least recently used, followed by disk-only keys (including
// entries inherited from previous processes via the open scan) in
// sorted order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, s.ll.Len()+len(s.known))
	inMem := make(map[string]bool, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		k := el.Value.(*entry).key
		inMem[k] = true
		out = append(out, k)
	}
	var disk []string
	for k := range s.known {
		if !inMem[k] {
			disk = append(disk, k)
		}
	}
	sort.Strings(disk)
	return append(out, disk...)
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.ll.Len()
	st.DiskEntries = len(s.known)
	return st
}

// --- disk layer ---

// diskMagic heads every on-disk entry; bump on format change.
const diskMagic = "tlsstore1"

// path maps a key to its cache file, sharded by the first key byte to
// keep directories small.
func (s *Store) path(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, shard, key)
}

// writeDisk persists one entry atomically with a payload checksum:
//
//	tlsstore1 <hex sha256 of payload>\n<payload>
//
// Durability protocol: fsync the temp file before the rename, then
// fsync the parent directory after it. Renaming an unsynced file can
// persist the rename's metadata without the data — a crash then leaves
// a zero-length entry that costs a DiskErrors+delete on every restart
// until rewritten; the directory sync makes the rename itself durable.
func (s *Store) writeDisk(key string, val []byte) error {
	p := s.path(key)
	dir := filepath.Dir(p)
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sum := sha256.Sum256(val)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %s\n", diskMagic, hex.EncodeToString(sum[:]))
	buf.Write(val)
	tmp, err := s.fs.CreateTemp(dir, ".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		s.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		s.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		s.fs.Remove(tmp.Name())
		return err
	}
	if err := s.fs.Rename(tmp.Name(), p); err != nil {
		s.fs.Remove(tmp.Name())
		return err
	}
	d, err := s.fs.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	return err
}

// errCorrupt marks an entry whose on-disk format or checksum is
// verifiably wrong, so deleting it is safe. Transient I/O errors are
// returned without this mark and must leave the entry in place.
var errCorrupt = errors.New("corrupt entry")

// readDisk loads and verifies one entry. A missing file returns an
// os.IsNotExist error; verified corruption (bad format or checksum)
// returns an error wrapping errCorrupt; anything else is a transient
// read failure.
func (s *Store) readDisk(key string) ([]byte, error) {
	f, err := s.fs.Open(s.path(key))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	header, err := r.ReadString('\n')
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("store: %s: truncated header: %w", key, errCorrupt)
		}
		return nil, fmt.Errorf("store: %s: %w", key, err)
	}
	fields := strings.Fields(strings.TrimSpace(header))
	if len(fields) != 2 || fields[0] != diskMagic {
		return nil, fmt.Errorf("store: %s: bad header: %w", key, errCorrupt)
	}
	val, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", key, err)
	}
	sum := sha256.Sum256(val)
	if hex.EncodeToString(sum[:]) != fields[1] {
		return nil, fmt.Errorf("store: %s: checksum mismatch: %w", key, errCorrupt)
	}
	return val, nil
}
