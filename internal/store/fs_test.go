package store

import (
	"os"
	"strings"
	"sync"
	"testing"
)

// recordFS wraps OS and logs every disk-layer operation in order, so
// tests can assert the durable-write protocol (fsync file → rename →
// fsync dir) rather than just the end state.
type recordFS struct {
	mu  sync.Mutex
	ops []string
}

func (r *recordFS) log(op string) {
	r.mu.Lock()
	r.ops = append(r.ops, op)
	r.mu.Unlock()
}

func (r *recordFS) Ops() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.ops...)
}

func (r *recordFS) MkdirAll(path string, perm os.FileMode) error {
	r.log("mkdir")
	return OS.MkdirAll(path, perm)
}

func (r *recordFS) Open(name string) (File, error) {
	fi, err := os.Stat(name)
	kind := "open-file"
	if err == nil && fi.IsDir() {
		kind = "open-dir"
	}
	r.log(kind)
	f, err := OS.Open(name)
	if err != nil {
		return nil, err
	}
	return &recordFile{fs: r, File: f, kind: strings.TrimPrefix(kind, "open-")}, nil
}

func (r *recordFS) OpenAppend(name string) (File, error) {
	r.log("open-append")
	f, err := OS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &recordFile{fs: r, File: f, kind: "append"}, nil
}

func (r *recordFS) ReadDir(name string) ([]os.DirEntry, error) {
	r.log("readdir")
	return OS.ReadDir(name)
}

func (r *recordFS) CreateTemp(dir, pattern string) (File, error) {
	r.log("create-temp")
	f, err := OS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &recordFile{fs: r, File: f, kind: "temp"}, nil
}

func (r *recordFS) Rename(oldpath, newpath string) error {
	r.log("rename")
	return OS.Rename(oldpath, newpath)
}

func (r *recordFS) Remove(name string) error {
	r.log("remove")
	return OS.Remove(name)
}

type recordFile struct {
	fs *recordFS
	File
	kind string
}

func (f *recordFile) Sync() error {
	f.fs.log("sync-" + f.kind)
	return f.File.Sync()
}

// TestWriteDiskDurabilityOrder: writeDisk must fsync the temp file
// before renaming it into place and fsync the parent directory after —
// the protocol that keeps a crash from persisting a zero-length entry.
func TestWriteDiskDurabilityOrder(t *testing.T) {
	rec := &recordFS{}
	s, err := NewWithFS(4, t.TempDir(), rec)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("test", "durability")
	s.Put(key, []byte("payload"))

	ops := rec.Ops()
	idx := func(op string) int {
		for i, o := range ops {
			if o == op {
				return i
			}
		}
		t.Fatalf("op %q never happened (ops = %v)", op, ops)
		return -1
	}
	syncTemp, rename, syncDir := idx("sync-temp"), idx("rename"), idx("sync-dir")
	if !(syncTemp < rename && rename < syncDir) {
		t.Fatalf("durability order violated: sync-temp@%d rename@%d sync-dir@%d (ops = %v)",
			syncTemp, rename, syncDir, ops)
	}

	// And the entry reads back through the same seam.
	s2, err := NewWithFS(4, s.Dir(), rec)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key)
	if !ok || string(got) != "payload" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}
