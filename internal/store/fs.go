package store

import (
	"io"
	"os"
	"path/filepath"
)

// FS abstracts the filesystem operations the disk layer performs. It
// exists as a seam: production code uses OS, while chaos tests inject a
// wrapper (internal/fault.FS) that fires fault hooks — errors, panics,
// latency, simulated crashes — around each operation. The journal
// (internal/journal) shares the seam: OpenAppend backs its write-ahead
// log and ReadDir backs the store's startup scan and scrubber.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	Open(name string) (File, error)
	OpenAppend(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadDir(name string) ([]os.DirEntry, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// File is the subset of *os.File the disk layer uses. Open on a
// directory must return a File whose Sync flushes the directory entry
// metadata (the durable-rename protocol in writeDisk relies on it).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Name() string
	Sync() error
}

// ReadFile reads the named file through the seam (os.ReadFile would
// bypass fault injection). Not-found errors satisfy os.IsNotExist.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// WriteFileAtomic writes data to path through the seam via a
// same-directory temp file + rename, creating parent directories as
// needed: a concurrent reader sees either nothing or the complete
// content, and a chaos FS can inject a failure (or a simulated crash)
// at every step.
func WriteFileAtomic(fsys FS, path string, data []byte, dirPerm os.FileMode) error {
	dir := filepath.Dir(path)
	if err := fsys.MkdirAll(dir, dirPerm); err != nil {
		return err
	}
	tmp, err := fsys.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		fsys.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(name)
		return err
	}
	if err := fsys.Rename(name, path); err != nil {
		fsys.Remove(name)
		return err
	}
	return nil
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }
