package store_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"tlssync/internal/core"
	"tlssync/internal/sim"
	"tlssync/internal/store"
)

func TestKeyDistinctAndStable(t *testing.T) {
	k1 := store.Key("result", "src", "opts", "C", "machine")
	if k2 := store.Key("result", "src", "opts", "C", "machine"); k2 != k1 {
		t.Fatalf("same parts hashed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key length = %d, want 64 hex chars", len(k1))
	}
	distinct := map[string]bool{k1: true}
	for _, k := range []string{
		store.Key("figure", "src", "opts", "C", "machine"), // kind matters
		store.Key("result", "src", "opts", "U", "machine"), // policy matters
		store.Key("result", "srco", "pts", "C", "machine"), // no concat ambiguity
	} {
		if distinct[k] {
			t.Fatalf("key collision: %s", k)
		}
		distinct[k] = true
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	s, err := store.New(3, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"k1", "k2", "k3"} {
		s.Put(k, []byte(k))
	}
	// Refresh k1, then push two more: eviction order must be k2, k3.
	if _, ok := s.Get("k1"); !ok {
		t.Fatal("k1 missing")
	}
	s.Put("k4", []byte("k4"))
	if _, ok := s.Get("k2"); ok {
		t.Fatal("k2 should be the first eviction (least recently used)")
	}
	s.Put("k5", []byte("k5"))
	if _, ok := s.Get("k3"); ok {
		t.Fatal("k3 should be the second eviction")
	}
	for _, k := range []string{"k1", "k4", "k5"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	if got, want := s.Keys(), []string{"k5", "k4", "k1"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("LRU order = %v, want %v", got, want)
	}
	st := s.Stats()
	if st.Evictions != 2 || st.Entries != 3 || st.Puts != 5 {
		t.Fatalf("stats = %+v, want evictions=2 entries=3 puts=5", st)
	}
}

func TestCounters(t *testing.T) {
	s, _ := store.New(4, "")
	s.Put("a", []byte("1"))
	s.Get("a")
	s.Get("b")
	st := s.Stats()
	if st.Hits != 1 || st.MemHits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want hits=1 mem_hits=1 misses=1", st)
	}
}

func TestDiskPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := store.New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	s1.Put("deadbeef", []byte("artifact-bytes"))

	// A fresh store over the same dir (a daemon restart) must serve the
	// artifact from disk and promote it into memory.
	s2, err := store.New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	val, ok := s2.Get("deadbeef")
	if !ok || string(val) != "artifact-bytes" {
		t.Fatalf("disk get = %q, %v", val, ok)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want disk_hits=1", st)
	}
	// Second read is a memory hit.
	if _, ok := s2.Get("deadbeef"); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("stats = %+v, want mem_hits=1 after promotion", st)
	}
}

func TestCorruptDiskEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	s1, _ := store.New(4, dir)
	s1.Put("cafebabe", []byte("good-bytes"))

	// Corrupt the payload on disk.
	path := filepath.Join(dir, "ca", "cafebabe")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, _ := store.New(4, dir)
	if _, ok := s2.Get("cafebabe"); ok {
		t.Fatal("corrupt entry served")
	}
	st := s2.Stats()
	if st.DiskErrors != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want disk_errors=1 misses=1", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not removed")
	}
	// The key is recomputable and storable again.
	s2.Put("cafebabe", []byte("recomputed"))
	if val, ok := s2.Get("cafebabe"); !ok || string(val) != "recomputed" {
		t.Fatalf("after recompute: %q, %v", val, ok)
	}
}

func TestTruncatedDiskEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	s1, _ := store.New(4, dir)
	s1.Put("feedface", []byte("payload"))
	path := filepath.Join(dir, "fe", "feedface")
	if err := os.WriteFile(path, []byte("tlsstore1"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, _ := store.New(4, dir)
	if _, ok := s2.Get("feedface"); ok {
		t.Fatal("truncated entry served")
	}
	if st := s2.Stats(); st.DiskErrors != 1 {
		t.Fatalf("stats = %+v, want disk_errors=1", st)
	}
}

// TestTransientDiskErrorKeepsEntry: a read failure that is not verified
// corruption (here: the entry path is unreadable as a flat file because
// it is a directory) is counted as a miss but must NOT delete the entry.
func TestTransientDiskErrorKeepsEntry(t *testing.T) {
	dir := t.TempDir()
	s, _ := store.New(4, dir)
	// Plant a directory where the cache file would live: os.Open succeeds
	// but reading fails with EISDIR — an I/O error, not corruption.
	path := filepath.Join(dir, "ab", "abad1dea")
	if err := os.MkdirAll(path, 0o755); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("abad1dea"); ok {
		t.Fatal("unreadable entry served")
	}
	st := s.Stats()
	if st.DiskErrors != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want disk_errors=1 misses=1", st)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("transient read error deleted the entry: %v", err)
	}
}

func TestMissingDiskEntryIsMiss(t *testing.T) {
	s, _ := store.New(4, t.TempDir())
	if _, ok := s.Get("0000000000000000"); ok {
		t.Fatal("phantom hit")
	}
	st := s.Stats()
	if st.Misses != 1 || st.DiskErrors != 0 {
		t.Fatalf("stats = %+v, want misses=1 disk_errors=0", st)
	}
}

// detSource carries one hot inter-epoch dependence; small enough that a
// full compile+simulate runs in well under a second.
const detSource = `
var total int;
var out [256]int;

func main() {
	var i int;
	parallel for i = 0; i < 100; i = i + 1 {
		total = total + (i * 7) % 13;
		out[i % 256] = total;
	}
	print(total);
}
`

// simulateOnce compiles detSource and runs policy U, returning the
// canonical serialized artifact.
func simulateOnce(t *testing.T) []byte {
	t.Helper()
	b, err := core.Compile(core.Config{Source: detSource, RefInput: []int64{1, 2, 3}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := b.Trace(b.Base, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Simulate(sim.Input{Trace: tr, Policy: sim.PolicyU()})
	data, err := store.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDeterminism: an artifact served under a key is byte-identical to a
// fresh simulation of the same inputs — through memory and through disk.
func TestDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and simulates")
	}
	dir := t.TempDir()
	s, _ := store.New(4, dir)
	key := store.Key("result", detSource, "seed=42", "U", "default-machine")

	first := simulateOnce(t)
	s.Put(key, first)

	cached, ok := s.Get(key)
	if !ok {
		t.Fatal("stored artifact missing")
	}
	fresh := simulateOnce(t)
	if !bytes.Equal(cached, fresh) {
		t.Fatalf("cached artifact differs from fresh simulation:\n%s\nvs\n%s", cached, fresh)
	}

	// And through the disk layer alone (fresh store, same dir).
	s2, _ := store.New(4, dir)
	fromDisk, ok := s2.Get(key)
	if !ok {
		t.Fatal("disk artifact missing")
	}
	if !bytes.Equal(fromDisk, fresh) {
		t.Fatal("disk artifact differs from fresh simulation")
	}
}

// TestConcurrentAccess exercises the store under the race detector.
func TestConcurrentAccess(t *testing.T) {
	s, _ := store.New(8, t.TempDir())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (g+i)%12)
				if i%2 == 0 {
					s.Put(key, []byte(key))
				} else {
					s.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() > 8 {
		t.Fatalf("len = %d exceeds capacity", s.Len())
	}
}

// TestCorruptEntryQuarantinedNotDeleted: verified corruption moves the
// bytes into quarantine/ (forensic evidence) rather than unlinking
// them, and the move is counted for /readyz.
func TestCorruptEntryQuarantinedNotDeleted(t *testing.T) {
	dir := t.TempDir()
	s1, _ := store.New(4, dir)
	s1.Put("cafebabe", []byte("good-bytes"))

	path := filepath.Join(dir, "ca", "cafebabe")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, _ := store.New(4, dir)
	if _, ok := s2.Get("cafebabe"); ok {
		t.Fatal("corrupt entry served")
	}
	if st := s2.Stats(); st.CorruptQuarantined != 1 {
		t.Fatalf("stats = %+v, want corrupt_quarantined=1", st)
	}
	// The corrupt bytes moved, byte-for-byte, into quarantine/.
	moved, err := os.ReadFile(filepath.Join(dir, "quarantine", "cafebabe"))
	if err != nil {
		t.Fatalf("quarantined bytes missing: %v", err)
	}
	if !bytes.Equal(moved, data) {
		t.Fatal("quarantine altered the evidence")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry still at its shard path")
	}
}

// TestScanAtOpen: a fresh store over an existing cache dir knows the
// prior process's entries without reading them, skips malformed names,
// and reaps temp files left by crashed writers.
func TestScanAtOpen(t *testing.T) {
	dir := t.TempDir()
	s1, _ := store.New(4, dir)
	s1.Put("cafebabe", []byte("one"))
	s1.Put("deadbeef", []byte("two"))

	// Debris: a crashed writer's temp, a foreign file, a misfiled entry.
	if err := os.WriteFile(filepath.Join(dir, "ca", ".tmp123"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ca", "notinshard"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, _ := store.New(4, dir)
	st := s2.Stats()
	if st.DiskEntries != 2 {
		t.Fatalf("disk_entries = %d, want 2 (stats must reflect prior process)", st.DiskEntries)
	}
	if st.ScanTempsRemoved != 1 {
		t.Fatalf("scan_temps_removed = %d, want 1", st.ScanTempsRemoved)
	}
	if st.ScanSkipped != 2 {
		t.Fatalf("scan_skipped = %d, want 2 (misfiled + stray)", st.ScanSkipped)
	}
	if _, err := os.Stat(filepath.Join(dir, "ca", ".tmp123")); !os.IsNotExist(err) {
		t.Fatal("crashed writer's temp not reaped")
	}
	keys := s2.Keys()
	if !reflect.DeepEqual(keys, []string{"cafebabe", "deadbeef"}) {
		t.Fatalf("keys = %v, want scanned disk keys", keys)
	}
}

// TestScanIgnoresReservedDirs: quarantine/ and journal/ live inside the
// cache dir but are not shards; their contents must not surface as
// entries.
func TestScanIgnoresReservedDirs(t *testing.T) {
	dir := t.TempDir()
	s1, _ := store.New(4, dir)
	s1.Put("cafebabe", []byte("one"))
	for _, sub := range []string{"quarantine", "journal"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, sub, "cadecade"), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, _ := store.New(4, dir)
	if st := s2.Stats(); st.DiskEntries != 1 {
		t.Fatalf("disk_entries = %d, want 1 (reserved dirs leaked into scan)", st.DiskEntries)
	}
}

// TestScrubQuarantinesBitRot: the proactive pass finds corruption
// nobody has asked for yet and moves it aside.
func TestScrubQuarantinesBitRot(t *testing.T) {
	dir := t.TempDir()
	s, _ := store.New(1, dir) // capacity 1: "cafebabe" falls out of memory
	s.Put("cafebabe", []byte("rotting"))
	s.Put("deadbeef", []byte("healthy"))

	path := filepath.Join(dir, "ca", "cafebabe")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	checked, quarantined := s.Scrub(context.Background())
	if checked != 2 || quarantined != 1 {
		t.Fatalf("scrub = (%d checked, %d quarantined), want (2, 1)", checked, quarantined)
	}
	st := s.Stats()
	if st.CorruptQuarantined != 1 || st.ScrubChecked != 2 {
		t.Fatalf("stats = %+v, want corrupt_quarantined=1 scrub_checked=2", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", "cafebabe")); err != nil {
		t.Fatalf("scrub did not quarantine: %v", err)
	}
	// The healthy entry is untouched and still served.
	if val, ok := s.Get("deadbeef"); !ok || string(val) != "healthy" {
		t.Fatalf("healthy entry after scrub: %q, %v", val, ok)
	}
	// A second pass over the now-clean tier finds nothing.
	if checked, quarantined := s.Scrub(context.Background()); checked != 1 || quarantined != 0 {
		t.Fatalf("second scrub = (%d, %d), want (1, 0)", checked, quarantined)
	}
}
