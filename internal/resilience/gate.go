// Package resilience is the service layer's runtime safety net:
// admission control (Gate), per-key circuit breaking (BreakerSet), and
// per-request deadlines (WithTimeout).
//
// The design translates the paper's core bet to the systems level. The
// compiler inserts synchronization on *probable* dependences and a
// cheap runtime check recovers when speculation was wrong, instead of
// squashing the whole epoch (PAPER.md §5). The service likewise
// optimistically admits work — no reservation, no global lock — and
// cheap local checks recover from the failure modes: a deadline bounds
// a hung job, the gate sheds a traffic burst before it queues
// unboundedly, and a breaker stops a benchmark whose compile always
// fails from burning workers on every request, restarting (half-open
// probe) instead of giving up on the key forever.
package resilience

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"time"
)

// ErrShed is returned by Gate.Acquire when the wait queue is full: the
// caller should be answered with 429 Too Many Requests + Retry-After.
var ErrShed = errors.New("resilience: admission queue full")

// ErrDraining is returned by Gate.Acquire once Drain was called: the
// caller should be answered with 503 Service Unavailable.
var ErrDraining = errors.New("resilience: draining")

// Gate is the admission controller in front of the job path: at most
// capacity requests compute concurrently, at most queue more wait, and
// everything beyond that is shed immediately instead of queuing
// unboundedly. Drain flips the gate into shutdown mode: new arrivals
// and queued waiters are rejected while admitted work finishes.
type Gate struct {
	capacity int
	queue    int
	slots    chan struct{}

	mu       sync.Mutex
	active   int
	waiting  int
	draining bool
	drainCh  chan struct{}
	admitted int64
	shed     int64
	drained  int64
}

// GateStats is a snapshot of the gate's counters.
type GateStats struct {
	Capacity int   `json:"capacity"` // concurrent admissions
	Queue    int   `json:"queue"`    // wait-queue bound
	Active   int   `json:"active"`   // currently admitted
	Waiting  int   `json:"waiting"`  // currently queued
	Admitted int64 `json:"admitted"` // total admissions
	Shed     int64 `json:"shed"`     // rejected: queue full (429)
	Drained  int64 `json:"drained"`  // rejected: draining (503)
	Draining bool  `json:"draining"`
}

// NewGate returns a gate admitting capacity concurrent requests with a
// wait queue of queue more (capacity <= 0 selects 1; queue < 0 selects
// 0: shed as soon as all slots are busy).
func NewGate(capacity, queue int) *Gate {
	if capacity <= 0 {
		capacity = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Gate{
		capacity: capacity,
		queue:    queue,
		slots:    make(chan struct{}, capacity),
		drainCh:  make(chan struct{}),
	}
}

// Acquire admits the caller or rejects it: ErrShed when the wait queue
// is full, ErrDraining during shutdown, or ctx's error if the caller's
// context ends while queued. On success the returned release func MUST
// be called exactly once when the work is done.
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	g.mu.Lock()
	if g.draining {
		g.drained++
		g.mu.Unlock()
		return nil, ErrDraining
	}
	select {
	case g.slots <- struct{}{}:
		g.active++
		g.admitted++
		g.mu.Unlock()
		return g.release, nil
	default:
	}
	if g.waiting >= g.queue {
		g.shed++
		g.mu.Unlock()
		return nil, ErrShed
	}
	g.waiting++
	drainCh := g.drainCh
	g.mu.Unlock()

	select {
	case g.slots <- struct{}{}:
		g.mu.Lock()
		g.waiting--
		g.active++
		g.admitted++
		g.mu.Unlock()
		return g.release, nil
	case <-drainCh:
		g.mu.Lock()
		g.waiting--
		g.drained++
		g.mu.Unlock()
		return nil, ErrDraining
	case <-ctx.Done():
		g.mu.Lock()
		g.waiting--
		g.mu.Unlock()
		return nil, ctx.Err()
	}
}

func (g *Gate) release() {
	<-g.slots
	g.mu.Lock()
	g.active--
	g.mu.Unlock()
}

// Drain rejects all future (and currently queued) acquisitions with
// ErrDraining while already-admitted work runs to completion. It is
// idempotent and never blocks.
func (g *Gate) Drain() {
	g.mu.Lock()
	if !g.draining {
		g.draining = true
		close(g.drainCh)
	}
	g.mu.Unlock()
}

// Draining reports whether Drain was called.
func (g *Gate) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// RetryAfter suggests how long a shed caller should back off: one
// second per queued request, clamped to [1s, 30s] — rough, but
// monotone in load, which is what Retry-After needs to be useful.
func (g *Gate) RetryAfter() time.Duration {
	g.mu.Lock()
	waiting := g.waiting
	g.mu.Unlock()
	d := time.Duration(1+waiting) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// Stats returns a snapshot of the counters.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GateStats{
		Capacity: g.capacity,
		Queue:    g.queue,
		Active:   g.active,
		Waiting:  g.waiting,
		Admitted: g.admitted,
		Shed:     g.shed,
		Drained:  g.drained,
		Draining: g.draining,
	}
}

// WithTimeout wraps h so every request carries a deadline: the
// per-request safety net that keeps one hung job from holding its
// handler (and the client's connection) forever. d <= 0 returns h
// unchanged.
func WithTimeout(d time.Duration, h http.Handler) http.Handler {
	if d <= 0 {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}
