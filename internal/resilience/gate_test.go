package resilience

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestGateAdmitQueueShed(t *testing.T) {
	g := NewGate(1, 1)

	rel1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Second caller queues.
	type res struct {
		rel func()
		err error
	}
	queued := make(chan res, 1)
	go func() {
		rel, err := g.Acquire(context.Background())
		queued <- res{rel, err}
	}()
	deadline := time.After(5 * time.Second)
	for g.Stats().Waiting != 1 {
		select {
		case <-deadline:
			t.Fatal("second caller never queued")
		case <-time.After(time.Millisecond):
		}
	}

	// Third caller is shed immediately.
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("third Acquire = %v, want ErrShed", err)
	}
	if st := g.Stats(); st.Shed != 1 || st.Active != 1 || st.Waiting != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Releasing the first admits the queued one.
	rel1()
	r := <-queued
	if r.err != nil {
		t.Fatalf("queued Acquire = %v", r.err)
	}
	r.rel()
	if st := g.Stats(); st.Active != 0 || st.Waiting != 0 || st.Admitted != 2 {
		t.Fatalf("stats after release = %+v", st)
	}
}

func TestGateContextCancelWhileQueued(t *testing.T) {
	g := NewGate(1, 4)
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		errc <- err
	}()
	deadline := time.After(5 * time.Second)
	for g.Stats().Waiting != 1 {
		select {
		case <-deadline:
			t.Fatal("caller never queued")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued Acquire after cancel = %v", err)
	}
	if st := g.Stats(); st.Waiting != 0 {
		t.Fatalf("waiting leaked: %+v", st)
	}
}

func TestGateDrain(t *testing.T) {
	g := NewGate(1, 4)
	rel, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// A queued waiter is kicked out by Drain.
	errc := make(chan error, 1)
	go func() {
		_, err := g.Acquire(context.Background())
		errc <- err
	}()
	deadline := time.After(5 * time.Second)
	for g.Stats().Waiting != 1 {
		select {
		case <-deadline:
			t.Fatal("caller never queued")
		case <-time.After(time.Millisecond):
		}
	}
	g.Drain()
	g.Drain() // idempotent
	if err := <-errc; !errors.Is(err, ErrDraining) {
		t.Fatalf("queued Acquire after Drain = %v", err)
	}
	// New arrivals are rejected; admitted work still releases cleanly.
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrDraining) {
		t.Fatalf("Acquire while draining = %v", err)
	}
	rel()
	st := g.Stats()
	if !st.Draining || st.Active != 0 || st.Drained != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGateRetryAfterMonotone(t *testing.T) {
	g := NewGate(1, 10)
	base := g.RetryAfter()
	if base < time.Second {
		t.Fatalf("RetryAfter floor = %v, want >= 1s", base)
	}
	rel, _ := g.Acquire(context.Background())
	defer rel()
	done := make(chan struct{})
	defer close(done)
	for i := 0; i < 3; i++ {
		go func() {
			if rel, err := g.Acquire(context.Background()); err == nil {
				<-done
				rel()
			}
		}()
	}
	deadline := time.After(5 * time.Second)
	for g.Stats().Waiting != 3 {
		select {
		case <-deadline:
			t.Fatal("callers never queued")
		case <-time.After(time.Millisecond):
		}
	}
	if got := g.RetryAfter(); got <= base {
		t.Fatalf("RetryAfter under load = %v, want > %v", got, base)
	}
}

func TestWithTimeout(t *testing.T) {
	var sawDeadline bool
	h := WithTimeout(20*time.Millisecond, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sawDeadline = r.Context().Deadline()
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !sawDeadline {
		t.Fatal("request context carried no deadline")
	}
	// d <= 0 is the identity.
	inner := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {})
	if got := WithTimeout(0, inner); got == nil {
		t.Fatal("WithTimeout(0) = nil")
	}
}
