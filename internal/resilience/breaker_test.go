package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// testClock is a hand-advanced clock so breaker timing is deterministic.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestSet(threshold int, cooldown time.Duration) (*BreakerSet, *testClock) {
	b := NewBreakerSet(threshold, cooldown, 8*cooldown)
	c := &testClock{t: time.Unix(1000, 0)}
	b.now = c.now
	b.jitter = func() float64 { return 1 } // deterministic: full cooldown
	return b, c
}

var errBoom = errors.New("boom")

func fail(t *testing.T, b *BreakerSet, key string) error {
	t.Helper()
	done, err := b.Allow(key)
	if err != nil {
		return err
	}
	done(errBoom)
	return nil
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b, _ := newTestSet(3, time.Second)

	for i := 0; i < 3; i++ {
		if err := fail(t, b, "k"); err != nil {
			t.Fatalf("call %d rejected early: %v", i, err)
		}
	}
	// Open now: rejected with state and retry hint.
	_, err := b.Allow("k")
	var oe *OpenError
	if !errors.As(err, &oe) {
		t.Fatalf("after %d failures Allow = %v, want OpenError", 3, err)
	}
	if oe.Key != "k" || oe.State != Open || oe.RetryAfter <= 0 {
		t.Fatalf("OpenError = %+v", oe)
	}
	if st := b.Stats(); st.Tripped != 1 || st.Open != 1 || st.Rejected != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Other keys are unaffected.
	if done, err := b.Allow("other"); err != nil {
		t.Fatalf("unrelated key rejected: %v", err)
	} else {
		done(nil)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, clk := newTestSet(2, time.Second)
	fail(t, b, "k")
	fail(t, b, "k")
	if _, err := b.Allow("k"); err == nil {
		t.Fatal("breaker did not open")
	}

	clk.advance(1100 * time.Millisecond)
	// One probe is admitted; a concurrent second caller is rejected.
	done, err := b.Allow("k")
	if err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if _, err := b.Allow("k"); err == nil {
		t.Fatal("second caller admitted during probe")
	} else {
		var oe *OpenError
		if !errors.As(err, &oe) || oe.State != HalfOpen {
			t.Fatalf("concurrent probe rejection = %v", err)
		}
	}
	done(nil) // probe succeeds → closed
	if d2, err := b.Allow("k"); err != nil {
		t.Fatalf("closed breaker rejecting: %v", err)
	} else {
		d2(nil)
	}
	if st := b.Stats(); st.Open != 0 {
		t.Fatalf("stats after recovery = %+v", st)
	}
}

func TestBreakerFailedProbeBacksOff(t *testing.T) {
	b, clk := newTestSet(2, time.Second)
	fail(t, b, "k")
	fail(t, b, "k")

	// First open period: 1s (jitter pinned to the full cooldown).
	clk.advance(1100 * time.Millisecond)
	done, err := b.Allow("k")
	if err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	done(errBoom) // failed probe → open again, doubled cooldown

	clk.advance(1100 * time.Millisecond) // not enough for the 2s period
	_, err = b.Allow("k")
	var oe *OpenError
	if !errors.As(err, &oe) || oe.State != Open {
		t.Fatalf("after failed probe Allow = %v, want still open", err)
	}
	clk.advance(1000 * time.Millisecond) // 2.1s total > 2s
	done, err = b.Allow("k")
	if err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	done(nil)
	if st := b.Stats(); st.Tripped != 2 || st.Open != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBreakerContextErrorsAreNeutral(t *testing.T) {
	b, clk := newTestSet(2, time.Second)
	for i := 0; i < 5; i++ {
		done, err := b.Allow("k")
		if err != nil {
			t.Fatalf("cancelled callers tripped the breaker at %d: %v", i, err)
		}
		done(context.DeadlineExceeded)
	}
	// A cancelled half-open probe leaves the breaker probing-ready.
	fail(t, b, "k")
	fail(t, b, "k")
	clk.advance(1100 * time.Millisecond)
	done, err := b.Allow("k")
	if err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	done(context.Canceled) // inconclusive
	done2, err := b.Allow("k")
	if err != nil {
		t.Fatalf("re-probe after neutral outcome rejected: %v", err)
	}
	done2(nil)
	if st := b.Stats(); st.Open != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b, _ := newTestSet(3, time.Second)
	fail(t, b, "k")
	fail(t, b, "k")
	done, _ := b.Allow("k")
	done(nil) // streak broken
	fail(t, b, "k")
	fail(t, b, "k")
	if done, err := b.Allow("k"); err != nil {
		t.Fatalf("breaker tripped on a broken streak: %v", err)
	} else {
		done(nil)
	}
}

// TestForceOpenPreOpensKey: the startup-recovery path pre-opens a
// poisoned key's breaker with no failure history, it stays open for at
// least the requested duration, and afterwards the ordinary half-open
// probe decides readmission.
func TestForceOpenPreOpensKey(t *testing.T) {
	b, c := newTestSet(3, time.Second)

	b.ForceOpen("poisoned", time.Hour)
	_, err := b.Allow("poisoned")
	var oe *OpenError
	if !errors.As(err, &oe) || oe.State != Open {
		t.Fatalf("Allow after ForceOpen = %v, want open rejection", err)
	}
	if oe.RetryAfter <= 59*time.Minute {
		t.Fatalf("retry_after = %v, want ~1h (the requested hold, not the default cooldown)", oe.RetryAfter)
	}
	if st := b.Stats(); st.Tripped != 1 || st.Open != 1 {
		t.Fatalf("stats = %+v, want tripped=1 open=1", st)
	}
	// Other keys serve normally.
	if done, err := b.Allow("healthy"); err != nil {
		t.Fatalf("unrelated key rejected: %v", err)
	} else {
		done(nil)
	}

	// After the hold: exactly one probe, and success closes the breaker.
	c.advance(time.Hour + time.Second)
	done, err := b.Allow("poisoned")
	if err != nil {
		t.Fatalf("probe after hold rejected: %v", err)
	}
	done(nil)
	if done, err := b.Allow("poisoned"); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	} else {
		done(nil)
	}
}
