package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// State is a circuit breaker's position.
type State int

const (
	// Closed: calls flow; consecutive failures are counted.
	Closed State = iota
	// Open: calls are rejected until the cooldown elapses.
	Open
	// HalfOpen: one probe call is allowed through; its outcome decides
	// between Closed and another (longer) Open period.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// OpenError reports a call rejected by an open (or probing half-open)
// breaker. The service layer maps it to 502 with the breaker state in
// the body.
type OpenError struct {
	Key        string
	State      State
	RetryAfter time.Duration
}

func (e *OpenError) Error() string {
	return fmt.Sprintf("resilience: breaker %s is %s (retry in %s)",
		e.Key, e.State, e.RetryAfter.Round(time.Millisecond))
}

// BreakerSet is a family of circuit breakers, one per key, sharing one
// configuration. A key's breaker opens after threshold consecutive
// failures; while open it rejects calls until a jittered cooldown
// elapses, then admits exactly one half-open probe. A successful probe
// closes the breaker; a failed one re-opens it with exponentially
// longer cooldown (capped at maxCooldown). Context cancellation and
// deadline expiry are neutral: they say the caller gave up, not that
// the key is broken.
type BreakerSet struct {
	threshold   int
	cooldown    time.Duration
	maxCooldown time.Duration

	now    func() time.Time // test seam
	jitter func() float64   // in [0,1); test seam

	mu       sync.Mutex
	m        map[string]*breaker
	tripped  int64
	rejected int64
}

type breaker struct {
	state    State
	fails    int       // consecutive failures while closed
	opens    int       // consecutive open cycles (backoff exponent)
	until    time.Time // open → when the half-open probe is allowed
	probing  bool      // a half-open probe is in flight
	rejected int64
}

// BreakerInfo describes one key's breaker for /stats and /readyz.
type BreakerInfo struct {
	Key               string  `json:"key"`
	State             string  `json:"state"`
	ConsecutiveFails  int     `json:"consecutive_fails"`
	RetryAfterSeconds float64 `json:"retry_after_seconds,omitempty"`
	Rejected          int64   `json:"rejected"`
}

// BreakerStats is a snapshot of the set. Breakers lists only keys that
// are currently interesting — not closed, or closed with recent
// failures — so the snapshot stays bounded under many healthy keys.
type BreakerStats struct {
	Threshold int           `json:"threshold"`
	Tripped   int64         `json:"tripped"`  // total closed→open transitions
	Rejected  int64         `json:"rejected"` // total calls rejected
	Open      int           `json:"open"`     // keys currently open or probing
	Breakers  []BreakerInfo `json:"breakers,omitempty"`
}

// NewBreakerSet returns a set that opens a key after threshold
// consecutive failures (<= 0 selects 3) and keeps it open for a
// jittered cooldown starting at cooldown (<= 0 selects 5s), doubling
// per consecutive open up to maxCooldown (< cooldown selects
// 10×cooldown).
func NewBreakerSet(threshold int, cooldown, maxCooldown time.Duration) *BreakerSet {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if maxCooldown < cooldown {
		maxCooldown = 10 * cooldown
	}
	return &BreakerSet{
		threshold:   threshold,
		cooldown:    cooldown,
		maxCooldown: maxCooldown,
		now:         time.Now,
		jitter:      rand.Float64,
		m:           make(map[string]*breaker),
	}
}

// Allow asks whether a call under key may proceed. On success the
// returned done func MUST be called exactly once with the call's error
// (nil on success); on rejection it returns a *OpenError and done is
// nil.
func (b *BreakerSet) Allow(key string) (done func(err error), err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[key]
	if br == nil {
		br = &breaker{}
		b.m[key] = br
	}
	switch br.state {
	case Open:
		if wait := br.until.Sub(b.now()); wait > 0 {
			br.rejected++
			b.rejected++
			return nil, &OpenError{Key: key, State: Open, RetryAfter: wait}
		}
		br.state = HalfOpen
		br.probing = false
		fallthrough
	case HalfOpen:
		if br.probing {
			br.rejected++
			b.rejected++
			return nil, &OpenError{Key: key, State: HalfOpen, RetryAfter: b.cooldown}
		}
		br.probing = true
		return b.doneFunc(key, br, true), nil
	default: // Closed
		return b.doneFunc(key, br, false), nil
	}
}

func (b *BreakerSet) doneFunc(key string, br *breaker, probe bool) func(error) {
	return func(err error) {
		b.mu.Lock()
		defer b.mu.Unlock()
		if probe {
			br.probing = false
		}
		switch {
		case err == nil:
			br.state = Closed
			br.fails = 0
			br.opens = 0
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			// The caller gave up; that is no evidence against the key.
			// A half-open breaker stays half-open and the next Allow
			// probes again.
		default:
			br.fails++
			if probe || br.fails >= b.threshold {
				b.trip(br)
			}
		}
	}
}

// trip moves br to Open with an exponentially backed-off, jittered
// cooldown: base<<opens scaled by a factor in [0.5, 1.0) so a fleet of
// breakers opened by one incident does not probe in lockstep.
func (b *BreakerSet) trip(br *breaker) {
	br.state = Open
	br.fails = 0
	d := b.cooldown << uint(br.opens)
	if d > b.maxCooldown || d <= 0 { // <= 0: shift overflow
		d = b.maxCooldown
	}
	d = d/2 + time.Duration(b.jitter()*float64(d/2))
	br.until = b.now().Add(d)
	br.opens++
	b.tripped++
}

// ForceOpen trips the breaker for key immediately and keeps it open
// for at least d, regardless of failure history. The startup-recovery
// path uses it to pre-open poisoned keys — jobs that crashed the
// process repeatedly — so the daemon boots serving 502 for exactly
// those keys instead of crash-looping. After d the normal half-open
// probe path applies: one probe is let through, and its outcome
// decides whether the key rejoins service.
func (b *BreakerSet) ForceOpen(key string, d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.m[key]
	if br == nil {
		br = &breaker{}
		b.m[key] = br
	}
	br.state = Open
	br.fails = 0
	br.probing = false
	br.until = b.now().Add(d)
	br.opens++
	b.tripped++
}

// Stats returns a snapshot. Only non-closed or recently-failing keys
// are listed individually.
func (b *BreakerSet) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStats{Threshold: b.threshold, Tripped: b.tripped, Rejected: b.rejected}
	for key, br := range b.m {
		if br.state != Closed {
			st.Open++
		}
		if br.state == Closed && br.fails == 0 {
			continue
		}
		info := BreakerInfo{
			Key:              key,
			State:            br.state.String(),
			ConsecutiveFails: br.fails,
			Rejected:         br.rejected,
		}
		if br.state == Open {
			if wait := br.until.Sub(b.now()); wait > 0 {
				info.RetryAfterSeconds = wait.Seconds()
			}
		}
		st.Breakers = append(st.Breakers, info)
	}
	sort.Slice(st.Breakers, func(i, j int) bool { return st.Breakers[i].Key < st.Breakers[j].Key })
	return st
}
