// Package report renders the paper's figures and tables as text: stacked
// execution-time-breakdown bars (busy/fail/sync/other, normalized to
// sequential execution = 100) and aligned tables.
package report

import (
	"fmt"
	"sort"
	"strings"
)

// Bar is one normalized execution-time bar: segment heights are percent
// of the sequential execution time of the same code, so a total below 100
// is a speedup.
type Bar struct {
	Label string
	Busy  float64
	Fail  float64
	Sync  float64
	Other float64
}

// Total returns the bar's height (normalized execution time).
func (b Bar) Total() float64 { return b.Busy + b.Fail + b.Sync + b.Other }

// Row is one benchmark's set of bars in a figure.
type Row struct {
	Bench string
	Bars  []Bar
}

// segment glyphs: busy, fail, sync, other.
const (
	glyphBusy  = '#'
	glyphFail  = 'X'
	glyphSync  = '~'
	glyphOther = '.'
)

// RenderBars renders a figure: for every benchmark, one line per bar,
// scaled so that 100 (sequential time) occupies `width` characters.
func RenderBars(title string, rows []Row, width int) string {
	if width <= 0 {
		width = 50
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "(bars: %c busy  %c fail  %c sync  %c other; 100 = sequential execution, | marks 100)\n\n",
		glyphBusy, glyphFail, glyphSync, glyphOther)

	maxTotal := 100.0
	for _, r := range rows {
		for _, b := range r.Bars {
			if t := b.Total(); t > maxTotal {
				maxTotal = t
			}
		}
	}
	scale := float64(width) / 100.0
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s\n", r.Bench)
		for _, b := range r.Bars {
			sb.WriteString("  ")
			fmt.Fprintf(&sb, "%-4s", b.Label)
			bar := renderOne(b, scale, width)
			fmt.Fprintf(&sb, "%s %6.1f  (busy %.1f, fail %.1f, sync %.1f, other %.1f)\n",
				bar, b.Total(), b.Busy, b.Fail, b.Sync, b.Other)
		}
	}
	return sb.String()
}

func renderOne(b Bar, scale float64, width int) string {
	glyphs := []struct {
		v float64
		g rune
	}{
		{b.Busy, glyphBusy}, {b.Fail, glyphFail}, {b.Sync, glyphSync}, {b.Other, glyphOther},
	}
	var cells []rune
	for _, s := range glyphs {
		n := int(s.v*scale + 0.5)
		for i := 0; i < n; i++ {
			cells = append(cells, s.g)
		}
	}
	// Mark the 100% line.
	out := make([]rune, 0, len(cells)+2)
	for i, c := range cells {
		if i == width {
			out = append(out, '|')
		}
		out = append(out, c)
	}
	if len(cells) <= width {
		for i := len(cells); i < width; i++ {
			out = append(out, ' ')
		}
		out = append(out, '|')
	}
	return string(out)
}

// Table renders rows of columns with the first row as a header.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	for ri, r := range rows {
		for i, c := range r {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					sb.WriteString("  ")
				}
				sb.WriteString(strings.Repeat("-", w))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Histogram renders an integer-keyed histogram sorted by key, with
// percentage shares.
func Histogram(title string, h map[int]int, width int) string {
	if width <= 0 {
		width = 40
	}
	var keys []int
	total := 0
	maxV := 0
	for k, v := range h {
		keys = append(keys, k)
		total += v
		if v > maxV {
			maxV = v
		}
	}
	sort.Ints(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (total %d)\n", title, total)
	for _, k := range keys {
		v := h[k]
		n := 0
		if maxV > 0 {
			n = v * width / maxV
		}
		fmt.Fprintf(&sb, "  %4d  %-*s %6.1f%% (%d)\n", k, width,
			strings.Repeat("*", n), 100*float64(v)/float64(total), v)
	}
	return sb.String()
}

// Pct formats a fraction as a percentage string.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// F2 formats a float with two decimals.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }

// CSV renders figure rows as comma-separated values with a header,
// one line per (benchmark, bar): benchmark,label,busy,fail,sync,other,total.
func CSV(rows []Row) string {
	var sb strings.Builder
	sb.WriteString("benchmark,label,busy,fail,sync,other,total\n")
	for _, r := range rows {
		for _, b := range r.Bars {
			fmt.Fprintf(&sb, "%s,%s,%.2f,%.2f,%.2f,%.2f,%.2f\n",
				r.Bench, b.Label, b.Busy, b.Fail, b.Sync, b.Other, b.Total())
		}
	}
	return sb.String()
}
