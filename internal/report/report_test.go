package report

import (
	"strings"
	"testing"
)

func TestRenderBarsBasics(t *testing.T) {
	rows := []Row{
		{Bench: "ALPHA", Bars: []Bar{
			{Label: "U", Busy: 10, Fail: 60, Sync: 5, Other: 25},
			{Label: "C", Busy: 10, Fail: 0, Sync: 10, Other: 10},
		}},
	}
	s := RenderBars("Test figure", rows, 50)
	if !strings.Contains(s, "Test figure") {
		t.Error("title missing")
	}
	if !strings.Contains(s, "ALPHA") {
		t.Error("benchmark label missing")
	}
	if !strings.Contains(s, "100.0") {
		t.Error("U bar total missing")
	}
	if !strings.Contains(s, "30.0") {
		t.Error("C bar total missing")
	}
	// The U bar fills the full width; the C bar stops before the 100 mark.
	lines := strings.Split(s, "\n")
	var uLine, cLine string
	for _, l := range lines {
		if strings.Contains(l, "U ") && strings.Contains(l, "#") {
			uLine = l
		}
		if strings.Contains(l, "C ") && strings.Contains(l, "#") {
			cLine = l
		}
	}
	if uLine == "" || cLine == "" {
		t.Fatalf("bars missing:\n%s", s)
	}
	if !strings.Contains(cLine, "|") {
		t.Error("C bar lacks the 100% marker")
	}
	if strings.Count(uLine, "X") == 0 {
		t.Error("fail segment not rendered")
	}
}

func TestRenderBarsSegmentsProportional(t *testing.T) {
	rows := []Row{{Bench: "B", Bars: []Bar{{Label: "x", Busy: 50, Fail: 50}}}}
	s := RenderBars("t", rows, 100)
	line := ""
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, "x ") && strings.Contains(l, "#") {
			line = l
		}
	}
	busy := strings.Count(line, "#")
	fail := strings.Count(line, "X")
	if busy < 45 || busy > 55 || fail < 45 || fail > 55 {
		t.Errorf("segments not proportional: busy=%d fail=%d", busy, fail)
	}
}

func TestBarTotal(t *testing.T) {
	b := Bar{Busy: 1, Fail: 2, Sync: 3, Other: 4}
	if b.Total() != 10 {
		t.Errorf("total = %f", b.Total())
	}
}

func TestTable(t *testing.T) {
	s := Table([][]string{
		{"name", "value"},
		{"alpha", "1"},
		{"betagamma", "22"},
	})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[1], "---") {
		t.Error("missing header rule")
	}
	// Columns aligned: "value" starts at the same offset in each line.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1") {
		t.Errorf("misaligned columns:\n%s", s)
	}
	if Table(nil) != "" {
		t.Error("empty table should render empty")
	}
}

func TestHistogram(t *testing.T) {
	s := Histogram("dist", map[int]int{1: 90, 3: 10}, 30)
	if !strings.Contains(s, "dist (total 100)") {
		t.Errorf("header wrong:\n%s", s)
	}
	if !strings.Contains(s, "90.0%") || !strings.Contains(s, "10.0%") {
		t.Errorf("percentages wrong:\n%s", s)
	}
	// Keys sorted ascending.
	if strings.Index(s, "   1 ") > strings.Index(s, "   3 ") {
		t.Error("keys not sorted")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.125) != "12.5%" {
		t.Errorf("Pct = %s", Pct(0.125))
	}
	if F2(1.005) != "1.00" && F2(1.005) != "1.01" {
		t.Errorf("F2 = %s", F2(1.005))
	}
}

func TestRenderBarsZeroWidthDefaults(t *testing.T) {
	s := RenderBars("t", []Row{{Bench: "B", Bars: []Bar{{Label: "x", Busy: 1}}}}, 0)
	if s == "" {
		t.Error("zero width should default, not crash")
	}
}

func TestCSV(t *testing.T) {
	s := CSV([]Row{
		{Bench: "A", Bars: []Bar{{Label: "U", Busy: 1, Fail: 2, Sync: 3, Other: 4}}},
	})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	if lines[0] != "benchmark,label,busy,fail,sync,other,total" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "A,U,1.00,2.00,3.00,4.00,10.00" {
		t.Errorf("row = %q", lines[1])
	}
}
