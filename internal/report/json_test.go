package report

import (
	"encoding/json"
	"testing"
)

func TestRowsJSONRoundTrip(t *testing.T) {
	rows := []Row{
		{Bench: "GZIP_COMP", Bars: []Bar{
			{Label: "U", Busy: 30, Fail: 40, Sync: 0, Other: 20},
			{Label: "C", Busy: 30, Fail: 5, Sync: 10, Other: 15},
		}},
		{Bench: "MCF", Bars: []Bar{{Label: "U", Busy: 25}}},
	}
	data, err := JSON(rows)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []RowJSON
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[0].Bench != "GZIP_COMP" || len(decoded[0].Bars) != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if got := decoded[0].Bars[0]; got.Label != "U" || got.Total != 90 {
		t.Fatalf("bar = %+v, want label U total 90", got)
	}
	if decoded[1].Bars[0].Total != 25 {
		t.Fatalf("bar total = %v, want 25", decoded[1].Bars[0].Total)
	}
}

func TestJSONDeterministic(t *testing.T) {
	rows := []Row{{Bench: "X", Bars: []Bar{{Label: "U", Busy: 1.5}}}}
	a, _ := JSON(rows)
	b, _ := JSON(rows)
	if string(a) != string(b) {
		t.Fatalf("non-deterministic JSON: %s vs %s", a, b)
	}
}
