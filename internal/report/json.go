package report

import "encoding/json"

// JSON rendering of figures, for the HTTP service layer (cmd/tlsd) and
// any tooling that post-processes figures programmatically. The schema
// mirrors the text rendering: one object per (benchmark, bar) with the
// normalized busy/fail/sync/other breakdown.

// BarJSON is the wire form of one normalized execution-time bar.
type BarJSON struct {
	Label string  `json:"label"`
	Busy  float64 `json:"busy"`
	Fail  float64 `json:"fail"`
	Sync  float64 `json:"sync"`
	Other float64 `json:"other"`
	Total float64 `json:"total"`
}

// RowJSON is the wire form of one benchmark's bars in a figure.
type RowJSON struct {
	Bench string    `json:"bench"`
	Bars  []BarJSON `json:"bars"`
}

// RowsJSON converts figure rows to their wire form.
func RowsJSON(rows []Row) []RowJSON {
	out := make([]RowJSON, 0, len(rows))
	for _, r := range rows {
		jr := RowJSON{Bench: r.Bench, Bars: make([]BarJSON, 0, len(r.Bars))}
		for _, b := range r.Bars {
			jr.Bars = append(jr.Bars, BarJSON{
				Label: b.Label,
				Busy:  b.Busy, Fail: b.Fail, Sync: b.Sync, Other: b.Other,
				Total: b.Total(),
			})
		}
		out = append(out, jr)
	}
	return out
}

// JSON renders figure rows as a JSON array (deterministic: field order
// is fixed by the struct definitions).
func JSON(rows []Row) ([]byte, error) {
	return json.Marshal(RowsJSON(rows))
}
