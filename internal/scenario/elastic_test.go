package scenario

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tlssync/internal/cluster"
)

// elasticScenario exercises the elastic-membership DSL surface: the
// sweep knob, the three membership actions, and the replication
// assertions with a settle window.
const elasticScenario = `
name: elastic-demo
duration: 20s
seed: 7
daemons:
  nodes: 3
  ring_replicas: 1
  heartbeat: 100ms
  dead_after: 500ms
  sweep: 500ms
  benchmarks: [gzip_comp]
fleet:
  clients: 3
  startup:
    pattern: instant
  templates:
    - name: simmers
      weight: 1.0
      bench: [gzip_comp]
      policy: [C]
      think: {dist: fixed, mean: 100ms}
faults:
  - {at: 2s, kind: rolling_restart, delay: 200ms}
  - {at: 8s, kind: join_node, target: 3}
  - {at: 12s, kind: decommission_node, target: 1}
assertions:
  max_recovery: 10s
  replication_converged: true
  no_orphaned_artifacts: true
  settle: 5s
`

func TestParseElasticScenario(t *testing.T) {
	sc, err := Parse("elastic.yaml", []byte(elasticScenario))
	if err != nil {
		t.Fatalf("valid elastic scenario rejected: %v", err)
	}
	if sc.Daemons.Sweep != 500*time.Millisecond {
		t.Errorf("sweep parsed wrong: %v", sc.Daemons.Sweep)
	}
	kinds := []string{sc.Faults[0].Kind, sc.Faults[1].Kind, sc.Faults[2].Kind}
	if kinds[0] != "rolling_restart" || kinds[1] != "join_node" || kinds[2] != "decommission_node" {
		t.Errorf("fault kinds parsed wrong: %v", kinds)
	}
	if sc.Faults[1].Target != 3 || sc.Faults[2].Target != 1 {
		t.Errorf("fault targets parsed wrong: %+v", sc.Faults)
	}
	a := sc.Assert
	if a.RepConverged == nil || !*a.RepConverged || a.NoOrphans == nil || !*a.NoOrphans {
		t.Errorf("replication assertions parsed wrong: %+v", a)
	}
	if a.Settle != 5*time.Second {
		t.Errorf("settle parsed wrong: %v", a.Settle)
	}
}

// swapElastic mutates one fragment of the elastic scenario.
func swapElastic(t *testing.T, old, new string) string {
	t.Helper()
	if !strings.Contains(elasticScenario, old) {
		t.Fatalf("test bug: %q not in the elastic scenario", old)
	}
	return strings.Replace(elasticScenario, old, new, 1)
}

func TestValidateElasticErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "join target not the next free index",
			src:  swapElastic(t, "kind: join_node, target: 3", "kind: join_node, target: 5"),
			want: "must be the next free daemon index 3",
		},
		{
			name: "rolling restart with a target",
			src:  swapElastic(t, "kind: rolling_restart, delay: 200ms", "kind: rolling_restart, target: 1, delay: 200ms"),
			want: "rolling_restart walks every live node",
		},
		{
			name: "decommission target out of range",
			src:  swapElastic(t, "kind: decommission_node, target: 1", "kind: decommission_node, target: 4"),
			want: "target 4 out of range",
		},
		{
			name: "sweep without cluster mode",
			src: `
name: solo-sweep
duration: 5s
daemons:
  count: 1
  sweep: 500ms
  benchmarks: [gzip_comp]
fleet:
  clients: 1
  startup: {pattern: instant}
  templates:
    - name: simmers
      weight: 1.0
      think: {dist: fixed, mean: 100ms}
`,
			want: "need daemons.nodes >= 2",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("elastic.yaml", []byte(tc.src))
			if err == nil {
				t.Fatal("scenario accepted, want an error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestValidateElasticNeedsCluster: the membership fault kinds and the
// new assertions are rejected outside cluster mode.
func TestValidateElasticNeedsCluster(t *testing.T) {
	base := `
name: solo
duration: 5s
daemons:
  count: 1
  benchmarks: [gzip_comp]
fleet:
  clients: 1
  startup: {pattern: instant}
  templates:
    - name: simmers
      weight: 1.0
      think: {dist: fixed, mean: 100ms}
%s
`
	for _, frag := range []string{
		"faults:\n  - {at: 1s, kind: join_node, target: 1}",
		"faults:\n  - {at: 1s, kind: decommission_node, target: 0}",
		"faults:\n  - {at: 1s, kind: rolling_restart}",
		"assertions:\n  replication_converged: true",
		"assertions:\n  no_orphaned_artifacts: true",
		"assertions:\n  settle: 5s",
	} {
		_, err := Parse("solo.yaml", []byte(fmt.Sprintf(base, frag)))
		if err == nil || !strings.Contains(err.Error(), "needs daemons.nodes >= 2") {
			t.Errorf("%q on a solo daemon: err = %v, want a nodes>=2 error", frag, err)
		}
	}
}

// elasticNode is a fake cluster daemon whose /cluster scrape carries
// the full elastic shape (member epoch, ring parameters, store keys)
// and which accepts POST /cluster/decommission.
type elasticNode struct {
	self string

	mu             sync.Mutex
	nodes          []string
	epoch          uint64
	keys           []string
	replicas       int
	decommissioned bool
	srv            *httptest.Server
}

func newElasticNode(t *testing.T, self string, nodes []string, epoch uint64, replicas int, keys []string) *elasticNode {
	t.Helper()
	d := &elasticNode{self: self, nodes: nodes, epoch: epoch, replicas: replicas, keys: keys}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("GET /cluster", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		defer d.mu.Unlock()
		writeJSON(w, map[string]any{
			"cluster": map[string]any{
				"self": d.self, "nodes": d.nodes, "member_epoch": d.epoch,
				"vnodes": 0, "replicas": d.replicas,
				"quorum": true, "alive": len(d.nodes),
			},
			"executions":      map[string]int64{},
			"journal_pending": 0,
			"store_keys":      d.keys,
		})
	})
	mux.HandleFunc("POST /cluster/decommission", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		d.decommissioned = true
		d.mu.Unlock()
		writeJSON(w, map[string]any{"status": "decommissioned"})
	})
	d.srv = httptest.NewServer(mux)
	t.Cleanup(d.srv.Close)
	return d
}

func (d *elasticNode) URL() string                     { return d.srv.URL }
func (d *elasticNode) Kill() error                     { return nil }
func (d *elasticNode) Restart() error                  { return nil }
func (d *elasticNode) WaitReady(context.Context) error { return nil }
func (d *elasticNode) Close()                          {}
func (d *elasticNode) wasDecommissioned() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.decommissioned
}

// TestScrapeClusterReplicationAudit: a missing replica copy is a hole
// (not converged); once both nodes hold both keys, the audit passes.
func TestScrapeClusterReplicationAudit(t *testing.T) {
	nodes := []string{"n0", "n1"}
	// 2 nodes, 1 replica: every key's chain is both nodes. n1 lacks "b".
	a := newElasticNode(t, "n0", nodes, 3, 1, []string{"a", "b"})
	b := newElasticNode(t, "n1", nodes, 3, 1, []string{"a"})
	o := &Outcome{}
	var notes syncNotes
	scrapeCluster([]Daemon{a, b}, http.DefaultClient, o, &notes)
	if o.ReplicationConverged || o.ReplicaHoles != 1 {
		t.Errorf("converged=%v holes=%d, want false/1 (n1 lacks b)", o.ReplicationConverged, o.ReplicaHoles)
	}
	if o.OrphanedArtifacts != 0 {
		t.Errorf("orphans=%d, want 0 (n0 still holds b)", o.OrphanedArtifacts)
	}
	if !o.ClusterConverged {
		t.Errorf("membership should agree: %v", o.FinalCluster)
	}

	b.mu.Lock()
	b.keys = []string{"a", "b"}
	b.mu.Unlock()
	o = &Outcome{}
	scrapeCluster([]Daemon{a, b}, http.DefaultClient, o, &notes)
	if !o.ReplicationConverged || o.ReplicaHoles != 0 {
		t.Errorf("healed fleet: converged=%v holes=%d, want true/0", o.ReplicationConverged, o.ReplicaHoles)
	}
}

// TestScrapeClusterOrphan: an artifact whose entire replica chain
// lacks it is an orphan — routing would never find it again.
func TestScrapeClusterOrphan(t *testing.T) {
	nodes := []string{"n0", "n1", "n2"}
	// 3 nodes, 0 replicas: each key's chain is just its owner. Find a
	// key owned by some node other than n0 and park it only on n0.
	ring := cluster.NewRing(nodes, 0)
	key := ""
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("stray-%d", i)
		if ring.Owner(k) != "n0" {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key owned away from n0 in 10000 tries")
	}
	a := newElasticNode(t, "n0", nodes, 1, 0, []string{key})
	b := newElasticNode(t, "n1", nodes, 1, 0, nil)
	c := newElasticNode(t, "n2", nodes, 1, 0, nil)
	o := &Outcome{}
	var notes syncNotes
	scrapeCluster([]Daemon{a, b, c}, http.DefaultClient, o, &notes)
	if o.OrphanedArtifacts != 1 || o.ReplicationConverged {
		t.Errorf("orphans=%d converged=%v, want 1/false", o.OrphanedArtifacts, o.ReplicationConverged)
	}
}

// TestScrapeClusterMembershipDisagreement: nodes reporting different
// member epochs never converged, and no replication verdict is issued.
func TestScrapeClusterMembershipDisagreement(t *testing.T) {
	a := newElasticNode(t, "n0", []string{"n0", "n1"}, 2, 1, nil)
	b := newElasticNode(t, "n1", []string{"n0", "n1", "n2"}, 3, 1, nil)
	o := &Outcome{}
	var notes syncNotes
	scrapeCluster([]Daemon{a, b}, http.DefaultClient, o, &notes)
	if o.ClusterConverged {
		t.Error("converged despite disagreeing member views")
	}
	if o.ReplicationConverged {
		t.Error("replication verdict issued without an agreed member set")
	}
	found := false
	for _, n := range notes.take() {
		found = found || strings.Contains(n, "disagrees on membership")
	}
	if !found {
		t.Error("membership disagreement not noted")
	}
}

// TestRunnerElasticMembership: the runner executes join_node and
// decommission_node — the joiner starts from a live seed URL, the
// decommissioned node receives the POST and leaves the final scrape.
func TestRunnerElasticMembership(t *testing.T) {
	src := `
name: elastic-runner
duration: 900ms
seed: 3
daemons:
  nodes: 2
  benchmarks: [gzip_comp]
fleet:
  clients: 2
  startup:
    pattern: instant
  templates:
    - name: simmers
      weight: 1.0
      bench: [gzip_comp]
      policy: [C]
      think: {dist: fixed, mean: 80ms}
faults:
  - {at: 150ms, kind: join_node, target: 2}
  - {at: 450ms, kind: decommission_node, target: 2}
assertions:
  cluster_converged: true
`
	sc, err := Parse("elastic-runner.yaml", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	nodes := []string{"n0", "n1"}
	fakes := make([]*elasticNode, 2)
	var joiner *elasticNode
	var joinSeed string
	rep, err := Run(sc, 3, RunOptions{
		StartDaemon: func(i int) (Daemon, error) {
			fakes[i] = newElasticNode(t, nodes[i], nodes, 1, 0, nil)
			return fakes[i], nil
		},
		StartJoiner: func(i int, seedURL string) (Daemon, error) {
			joinSeed = seedURL
			joiner = newElasticNode(t, fmt.Sprintf("n%d", i), nodes, 1, 0, nil)
			return joiner, nil
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcome
	if o.Joins != 1 || o.Decommissions != 1 {
		t.Errorf("joins=%d decommissions=%d, want 1/1", o.Joins, o.Decommissions)
	}
	if joiner == nil || !joiner.wasDecommissioned() {
		t.Error("the joiner never received the decommission POST")
	}
	if joinSeed != fakes[0].URL() && joinSeed != fakes[1].URL() {
		t.Errorf("join seed %q is not a live member URL", joinSeed)
	}
	// The retired node is out of the final scrapes: 2 readyz lines, 2
	// cluster lines, and the surviving views agree.
	if len(o.FinalReady) != 2 || len(o.FinalCluster) != 2 {
		t.Errorf("final scrape covers %d readyz / %d cluster daemons, want 2/2 (joiner retired)",
			len(o.FinalReady), len(o.FinalCluster))
	}
	if !o.ClusterConverged {
		t.Errorf("cluster not converged: %v", o.FinalCluster)
	}
	if !rep.Pass {
		t.Errorf("scenario should pass: %+v", rep.Assertions)
	}
}
