package scenario

import (
	"fmt"
	"time"
)

// AssertionResult is one evaluated assertion.
type AssertionResult struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	Got  string `json:"got"`
	Want string `json:"want"`
}

// Evaluate applies the scenario's assertions to the measured outcome.
// Only declared assertions are evaluated; the result list preserves a
// stable order so reports diff cleanly.
func Evaluate(a Assertions, o *Outcome) []AssertionResult {
	var out []AssertionResult
	add := func(name string, ok bool, got, want string) {
		out = append(out, AssertionResult{Name: name, OK: ok, Got: got, Want: want})
	}
	durCeil := func(name string, got, ceil time.Duration) {
		add(name, got <= ceil, got.Round(time.Microsecond).String(), "<= "+ceil.String())
	}
	if a.MaxP50 > 0 {
		durCeil("latency.p50", o.P50, a.MaxP50)
	}
	if a.MaxP95 > 0 {
		durCeil("latency.p95", o.P95, a.MaxP95)
	}
	if a.MaxP99 > 0 {
		durCeil("latency.p99", o.P99, a.MaxP99)
	}
	if a.MaxErrorRate != nil {
		got := o.ErrorRate()
		add("error_rate", got <= *a.MaxErrorRate,
			fmt.Sprintf("%.4f (%d errors / %d requests)", got, o.Server5xx+o.Transport+o.Client4xx, o.Total),
			fmt.Sprintf("<= %.4f", *a.MaxErrorRate))
	}
	if a.MinHitRate != nil {
		got := o.HitRate()
		add("cache_hit_rate", got >= *a.MinHitRate,
			fmt.Sprintf("%.4f (%d hits / %d misses)", got, o.CacheHits, o.CacheMisses),
			fmt.Sprintf(">= %.4f", *a.MinHitRate))
	}
	if a.MaxShedRate != nil {
		got := o.ShedRate()
		add("shed_rate", got <= *a.MaxShedRate,
			fmt.Sprintf("%.4f (%d shed)", got, o.Shed),
			fmt.Sprintf("<= %.4f", *a.MaxShedRate))
	}
	if a.MinShed != nil {
		add("shed_floor", o.Shed >= *a.MinShed,
			fmt.Sprintf("%d shed", o.Shed), fmt.Sprintf(">= %d", *a.MinShed))
	}
	if a.MaxRecovery > 0 {
		got := o.MaxRecovery()
		ok := got <= a.MaxRecovery && int64(len(o.Recoveries)) == o.Restarts
		add("recovery", ok,
			fmt.Sprintf("%v worst of %d recoveries (%d restarts)", got.Round(time.Millisecond), len(o.Recoveries), o.Restarts),
			fmt.Sprintf("<= %v, every restart recovered", a.MaxRecovery))
	}
	if a.MinInjected != nil {
		add("faults_injected", o.FaultsInjected >= *a.MinInjected,
			fmt.Sprintf("%d", o.FaultsInjected), fmt.Sprintf(">= %d", *a.MinInjected))
	}
	if a.Converged != nil && *a.Converged {
		ok := len(o.FinalReady) > 0
		for _, st := range o.FinalReady {
			if st != "ok" {
				ok = false
			}
		}
		add("readyz_converged", ok, fmt.Sprintf("%v", o.FinalReady), `every daemon "ok"`)
	}
	if a.NoCorrupt != nil && *a.NoCorrupt {
		add("no_corrupt_artifacts", o.Quarantined == 0,
			fmt.Sprintf("%d quarantined", o.Quarantined), "0 quarantined")
	}
	if a.MinAdoptions != nil {
		add("adoptions", o.AdoptionsDone >= *a.MinAdoptions,
			fmt.Sprintf("%d completed (%d claimed)", o.AdoptionsDone, o.Adoptions),
			fmt.Sprintf(">= %d completed", *a.MinAdoptions))
	}
	if a.MaxKeyExec != nil {
		add("key_executions", o.MaxKeyExecutions <= *a.MaxKeyExec,
			fmt.Sprintf("worst key executed %d times (%d keys over 1)", o.MaxKeyExecutions, o.DoubleExecuted),
			fmt.Sprintf("<= %d per key fleet-wide", *a.MaxKeyExec))
	}
	if a.ClusterOK != nil && *a.ClusterOK {
		add("cluster_converged", o.ClusterConverged,
			fmt.Sprintf("%v", o.FinalCluster), "every node: quorum held, whole fleet alive")
	}
	if a.NoLostJobs != nil && *a.NoLostJobs {
		ok := o.PendingJobs == 0 && o.Adoptions == o.AdoptionsDone
		add("no_lost_jobs", ok,
			fmt.Sprintf("%d pending, %d/%d adoptions completed", o.PendingJobs, o.AdoptionsDone, o.Adoptions),
			"0 pending, every adoption completed")
	}
	if a.RepConverged != nil && *a.RepConverged {
		add("replication_converged", o.ReplicationConverged,
			fmt.Sprintf("%d replica hole(s)", o.ReplicaHoles),
			"every artifact on every member of its replica chain")
	}
	if a.NoOrphans != nil && *a.NoOrphans {
		add("no_orphaned_artifacts", o.OrphanedArtifacts == 0,
			fmt.Sprintf("%d orphaned", o.OrphanedArtifacts),
			"0 artifacts with no copy on their replica chain")
	}
	return out
}

// Passed reports whether every assertion held.
func Passed(rs []AssertionResult) bool {
	for _, r := range rs {
		if !r.OK {
			return false
		}
	}
	return true
}
