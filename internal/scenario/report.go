package scenario

import (
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"time"
)

// Report is the full record of one scenario run.
//
// Determinism contract: for a fixed (scenario, seed), the Scenario,
// Seed, Plan and Assertion-*specification* content is byte-identical
// across runs — the plan fingerprint is the witness. The Timings
// section (wall-clock stamps and measured latencies) and the Outcome
// section (measured traffic, which depends on real scheduling) are the
// run's evidence and naturally vary. `tlssim diff` compares two
// reports with those sections stripped.
type Report struct {
	Scenario    *Scenario         `json:"scenario"`
	Seed        uint64            `json:"seed"`
	Plan        PlanSummary       `json:"plan"`
	Outcome     *Outcome          `json:"outcome"`
	Assertions  []AssertionResult `json:"assertions"`
	Pass        bool              `json:"pass"`
	Timings     Timings           `json:"timings"`
	TlssimNotes []string          `json:"notes,omitempty"` // runner warnings (non-fatal)
}

// PlanSummary condenses the (large) plan into the report; the full
// plan is reproducible from (scenario, seed) via `tlssim plan`.
type PlanSummary struct {
	Clients     int            `json:"clients"`
	Requests    int            `json:"requests"`
	PerTemplate map[string]int `json:"per_template"`
	Faults      int            `json:"faults"`
	Fingerprint string         `json:"fingerprint"`
}

// Timings is the report's wall-clock section — everything here varies
// run to run by nature.
type Timings struct {
	StartedAt  string        `json:"started_at"` // RFC3339
	FinishedAt string        `json:"finished_at"`
	Wall       time.Duration `json:"wall"`
	Startup    time.Duration `json:"startup"` // daemons launched → all ready
}

// NewReport assembles a report.
func NewReport(sc *Scenario, seed uint64, p *Plan, o *Outcome, t Timings, notes []string) *Report {
	rs := Evaluate(sc.Assert, o)
	return &Report{
		Scenario: sc,
		Seed:     seed,
		Plan: PlanSummary{
			Clients:     len(p.Clients),
			Requests:    p.TotalRequests(),
			PerTemplate: p.PerTemplate(),
			Faults:      len(p.Faults),
			Fingerprint: p.Fingerprint,
		},
		Outcome:     o,
		Assertions:  rs,
		Pass:        Passed(rs),
		Timings:     t,
		TlssimNotes: notes,
	}
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Deterministic returns a copy with the run-varying sections zeroed:
// what remains is the per-seed reproducible content two runs of the
// same scenario must agree on byte for byte.
func (r *Report) Deterministic() *Report {
	cp := *r
	cp.Timings = Timings{}
	cp.Outcome = nil
	// Assertion Got strings carry measured values; keep name/spec only.
	cp.Assertions = make([]AssertionResult, len(r.Assertions))
	for i, a := range r.Assertions {
		cp.Assertions[i] = AssertionResult{Name: a.Name, Want: a.Want}
	}
	cp.TlssimNotes = nil
	return &cp
}

// --- HTML rendering ---

var htmlTmpl = template.Must(template.New("report").Parse(`<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>tlssim · {{.Scenario.Name}}</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 60rem; color: #1a1a1a; padding: 0 1rem; }
  h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
  .pass { color: #0a7a2f; font-weight: 600; } .fail { color: #b3261e; font-weight: 600; }
  table { border-collapse: collapse; width: 100%; margin: .5rem 0 1rem; }
  th, td { text-align: left; padding: .3rem .6rem; border-bottom: 1px solid #e3e3e3; font-variant-numeric: tabular-nums; }
  th { font-weight: 600; background: #f6f6f6; }
  code { background: #f2f2f2; padding: .1rem .3rem; border-radius: 3px; font-size: .92em; }
  .muted { color: #6a6a6a; }
</style></head><body>
<h1>tlssim · {{.Scenario.Name}}
  {{if .Pass}}<span class="pass">PASS</span>{{else}}<span class="fail">FAIL</span>{{end}}</h1>
<p class="muted">{{.Scenario.Description}}</p>
<p>seed <code>{{.Seed}}</code> · duration <code>{{.Scenario.Duration}}</code> ·
   plan fingerprint <code>{{printf "%.16s" .Plan.Fingerprint}}…</code> ·
   started {{.Timings.StartedAt}} · wall {{.Timings.Wall}}</p>

<h2>Assertions</h2>
<table><tr><th>assertion</th><th>want</th><th>got</th><th>verdict</th></tr>
{{range .Assertions}}<tr><td>{{.Name}}</td><td>{{.Want}}</td><td>{{.Got}}</td>
  <td>{{if .OK}}<span class="pass">ok</span>{{else}}<span class="fail">FAILED</span>{{end}}</td></tr>
{{end}}</table>

<h2>Fleet</h2>
<table><tr><th>clients</th><th>requests planned</th><th>templates</th><th>scheduled faults</th></tr>
<tr><td>{{.Plan.Clients}}</td><td>{{.Plan.Requests}}</td>
<td>{{range $name, $n := .Plan.PerTemplate}}{{$name}}&nbsp;×{{$n}}&ensp;{{end}}</td>
<td>{{.Plan.Faults}}</td></tr></table>

{{with .Outcome}}
<h2>Traffic</h2>
<table><tr><th>total</th><th>2xx</th><th>4xx</th><th>5xx</th><th>shed (429/503)</th><th>transport errors</th></tr>
<tr><td>{{.Total}}</td><td>{{.OK}}</td><td>{{.Client4xx}}</td><td>{{.Server5xx}}</td><td>{{.Shed}}</td><td>{{.Transport}}</td></tr></table>

<h2>Latency (successful requests)</h2>
<table><tr><th>p50</th><th>p95</th><th>p99</th><th>max</th><th>cache hits</th><th>cache misses</th></tr>
<tr><td>{{.P50}}</td><td>{{.P95}}</td><td>{{.P99}}</td><td>{{.Max}}</td><td>{{.CacheHits}}</td><td>{{.CacheMisses}}</td></tr></table>

<h2>Faults &amp; recovery</h2>
<table><tr><th>injected</th><th>kills</th><th>restarts</th><th>recoveries</th><th>final /readyz</th><th>quarantined</th></tr>
<tr><td>{{.FaultsInjected}}</td><td>{{.Kills}}</td><td>{{.Restarts}}</td>
<td>{{range .Recoveries}}{{.}}&ensp;{{end}}</td>
<td>{{range .FinalReady}}<code>{{.}}</code>&ensp;{{end}}</td>
<td>{{.Quarantined}}</td></tr></table>
{{if .FaultsByPoint}}
<table><tr><th>fault point</th><th>fired</th></tr>
{{range $pt, $n := .FaultsByPoint}}<tr><td><code>{{$pt}}</code></td><td>{{$n}}</td></tr>{{end}}</table>
{{end}}
{{end}}

{{if .TlssimNotes}}<h2>Notes</h2><ul>{{range .TlssimNotes}}<li class="muted">{{.}}</li>{{end}}</ul>{{end}}
</body></html>
`))

// WriteHTML renders the report as a self-contained HTML page.
func (r *Report) WriteHTML(w io.Writer) error {
	return htmlTmpl.Execute(w, r)
}

// Summary is the one-paragraph terminal rendering.
func (r *Report) Summary() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	o := r.Outcome
	s := fmt.Sprintf("%s: %s  (seed %d)\n", r.Scenario.Name, verdict, r.Seed)
	s += fmt.Sprintf("  fleet     %d clients, %d requests planned, %d executed\n", r.Plan.Clients, r.Plan.Requests, o.Total)
	s += fmt.Sprintf("  traffic   %d ok, %d shed, %d 4xx, %d 5xx, %d transport (error rate %.4f)\n",
		o.OK, o.Shed, o.Client4xx, o.Server5xx, o.Transport, o.ErrorRate())
	s += fmt.Sprintf("  latency   p50 %v  p95 %v  p99 %v  max %v\n",
		o.P50.Round(time.Microsecond), o.P95.Round(time.Microsecond), o.P99.Round(time.Microsecond), o.Max.Round(time.Microsecond))
	s += fmt.Sprintf("  cache     %.4f hit rate (%d/%d)\n", o.HitRate(), o.CacheHits, o.CacheHits+o.CacheMisses)
	s += fmt.Sprintf("  faults    %d injected, %d kills, %d restarts, worst recovery %v\n",
		o.FaultsInjected, o.Kills, o.Restarts, o.MaxRecovery().Round(time.Millisecond))
	for _, a := range r.Assertions {
		mark := "ok  "
		if !a.OK {
			mark = "FAIL"
		}
		s += fmt.Sprintf("  [%s] %-22s got %s, want %s\n", mark, a.Name, a.Got, a.Want)
	}
	return s
}
