package scenario

import (
	"sort"
	"time"
)

// sample is one executed request's outcome.
type sample struct {
	endpoint  string
	status    int  // 0 = transport error (daemon down, timeout, reset)
	cacheHit  bool // X-Tlsd-Cache: hit (simulate endpoint only)
	cacheHdr  bool // header present at all
	latency   time.Duration
	retries   int  // re-issues after the first attempt (fleet.retry)
	exhausted bool // gave up still failing after the retry budget
}

// Outcome aggregates everything the run measured: client-side traffic
// and latency, the fault injections that actually fired, recovery
// times, and the final daemon state scrapes. It is the input to
// assertion evaluation.
type Outcome struct {
	Total     int64 `json:"total"`
	OK        int64 `json:"ok"`         // 2xx
	Client4xx int64 `json:"client_4xx"` // 4xx except 429
	Server5xx int64 `json:"server_5xx"` // 5xx
	Shed      int64 `json:"shed"`       // 429 + 503 (admission shed, drain)
	Transport int64 `json:"transport"`  // connection refused/reset, client timeouts

	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`

	P50 time.Duration `json:"p50"`
	P95 time.Duration `json:"p95"`
	P99 time.Duration `json:"p99"`
	Max time.Duration `json:"max"`

	FaultsInjected int64            `json:"faults_injected"` // registry firings + kills
	FaultsByPoint  map[string]int64 `json:"faults_by_point,omitempty"`
	Kills          int64            `json:"kills"`
	Restarts       int64            `json:"restarts"`
	Recoveries     []time.Duration  `json:"recoveries,omitempty"` // restart → /readyz ok, per restart

	// Retry budget spent by the fleet (fleet.retry): total re-issues
	// beyond the first attempt and how many requests gave up with the
	// budget exhausted (their final status is what the sample records).
	Retries          int64 `json:"retries,omitempty"`
	RetriesExhausted int64 `json:"retries_exhausted,omitempty"`

	FinalReady   []string         `json:"final_readyz"` // per-daemon final /readyz status
	Quarantined  int64            `json:"quarantined"`  // summed corrupt_quarantined across daemons
	DiskErrors   int64            `json:"disk_errors"`
	JournalBad   int64            `json:"journal_append_errors"`
	EndpointHits map[string]int64 `json:"endpoint_hits,omitempty"` // client-side per-endpoint totals

	// Cluster fields (daemons.nodes >= 2), scraped from each node's
	// /cluster endpoint after the clock stops.
	Adoptions        int64    `json:"adoptions,omitempty"`          // dead-node jobs claimed by a successor
	AdoptionsDone    int64    `json:"adoptions_done,omitempty"`     // of those, completed (artifact committed)
	MaxKeyExecutions int64    `json:"max_key_executions,omitempty"` // worst per-key execution count summed across nodes
	DoubleExecuted   int64    `json:"double_executed,omitempty"`    // keys whose fleet-wide execution count exceeds 1
	PendingJobs      int64    `json:"pending_jobs,omitempty"`       // final journal-pending sum across nodes
	ClusterConverged bool     `json:"cluster_converged,omitempty"`  // every node: quorum held, whole fleet alive
	FinalCluster     []string `json:"final_cluster,omitempty"`      // per-node "id: alive x/y quorum=bool" evidence

	// Elastic-membership evidence: joins/decommissions that actually
	// completed, and the final replica-placement audit (the agreed ring
	// is rebuilt from the scraped member view and every artifact is
	// checked against every member of its replica chain).
	Joins                int64 `json:"joins,omitempty"`
	Decommissions        int64 `json:"decommissions,omitempty"`
	ReplicationConverged bool  `json:"replication_converged,omitempty"`
	ReplicaHoles         int64 `json:"replica_holes,omitempty"`      // (key, chain member) pairs missing their copy
	OrphanedArtifacts    int64 `json:"orphaned_artifacts,omitempty"` // keys with zero copies anywhere on their chain
}

// ErrorRate is the assertion's error definition: server failures plus
// transport failures, over everything sent. Sheds (429/503) are load
// management, not errors, and are rated separately.
func (o *Outcome) ErrorRate() float64 {
	if o.Total == 0 {
		return 0
	}
	return float64(o.Server5xx+o.Transport+o.Client4xx) / float64(o.Total)
}

// ShedRate is (429+503)/total.
func (o *Outcome) ShedRate() float64 {
	if o.Total == 0 {
		return 0
	}
	return float64(o.Shed) / float64(o.Total)
}

// HitRate is store hits over hits+misses on responses that carried the
// cache header.
func (o *Outcome) HitRate() float64 {
	if o.CacheHits+o.CacheMisses == 0 {
		return 0
	}
	return float64(o.CacheHits) / float64(o.CacheHits+o.CacheMisses)
}

// MaxRecovery is the slowest observed restart→ready time.
func (o *Outcome) MaxRecovery() time.Duration {
	var max time.Duration
	for _, r := range o.Recoveries {
		if r > max {
			max = r
		}
	}
	return max
}

// aggregate folds raw samples into an Outcome (fault/recovery/scrape
// fields are filled by the runner afterwards).
func aggregate(samples []sample) *Outcome {
	o := &Outcome{FaultsByPoint: map[string]int64{}, EndpointHits: map[string]int64{}}
	lats := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		o.Total++
		o.EndpointHits[s.endpoint]++
		switch {
		case s.status == 0:
			o.Transport++
		case s.status >= 200 && s.status < 300:
			o.OK++
			lats = append(lats, s.latency)
		case s.status == 429 || s.status == 503:
			o.Shed++
		case s.status >= 500:
			o.Server5xx++
		case s.status >= 400:
			o.Client4xx++
		default:
			o.OK++
			lats = append(lats, s.latency)
		}
		if s.cacheHdr {
			if s.cacheHit {
				o.CacheHits++
			} else {
				o.CacheMisses++
			}
		}
		o.Retries += int64(s.retries)
		if s.exhausted {
			o.RetriesExhausted++
		}
	}
	o.P50, o.P95, o.P99, o.Max = percentiles(lats)
	return o
}

// percentiles computes p50/p95/p99/max over successful-request
// latencies (nearest-rank on the sorted slice).
func percentiles(lats []time.Duration) (p50, p95, p99, max time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rank := func(p float64) time.Duration {
		i := int(p*float64(len(lats))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	return rank(0.50), rank(0.95), rank(0.99), lats[len(lats)-1]
}
