package scenario

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tlssync/internal/fault"
)

// clusterScenario is a minimal valid cluster scenario; the validation
// cases below mutate one aspect at a time.
const clusterScenario = `
name: cluster-demo
duration: 10s
seed: 7
daemons:
  nodes: 3
  ring_replicas: 1
  heartbeat: 100ms
  dead_after: 500ms
  benchmarks: [gzip_comp]
  fault_surface: true
fleet:
  clients: 3
  retry:
    max: 2
    base: 10ms
    cap: 100ms
  startup:
    pattern: instant
  templates:
    - name: simmers
      weight: 1.0
      bench: [gzip_comp]
      policy: [C]
      think: {dist: fixed, mean: 100ms}
faults:
  - {at: 2s, kind: partition, target: 0, heal: 3s}
  - {at: 6s, kind: slow_peer, target: 1, delay: 20ms, heal: 1s}
assertions:
  min_adoptions: 1
  max_key_executions: 1
  cluster_converged: true
  no_lost_jobs: true
`

func TestParseClusterScenario(t *testing.T) {
	sc, err := Parse("cluster.yaml", []byte(clusterScenario))
	if err != nil {
		t.Fatalf("valid cluster scenario rejected: %v", err)
	}
	ds := sc.Daemons
	if !ds.Cluster() || ds.Nodes != 3 || ds.RingReplicas != 1 ||
		ds.Heartbeat != 100*time.Millisecond || ds.DeadAfter != 500*time.Millisecond {
		t.Errorf("cluster spec parsed wrong: %+v", ds)
	}
	if ds.Count != 3 {
		t.Errorf("Count = %d, want normalized to Nodes (3)", ds.Count)
	}
	r := sc.Fleet.Retry
	if r.Max != 2 || r.Base != 10*time.Millisecond || r.Cap != 100*time.Millisecond {
		t.Errorf("retry spec parsed wrong: %+v", r)
	}
	if sc.Faults[0].Kind != "partition" || sc.Faults[0].Heal != 3*time.Second {
		t.Errorf("partition fault parsed wrong: %+v", sc.Faults[0])
	}
	if sc.Faults[1].Kind != "slow_peer" || sc.Faults[1].Delay != 20*time.Millisecond {
		t.Errorf("slow_peer fault parsed wrong: %+v", sc.Faults[1])
	}
	a := sc.Assert
	if *a.MinAdoptions != 1 || *a.MaxKeyExec != 1 || !*a.ClusterOK || !*a.NoLostJobs {
		t.Errorf("cluster assertions parsed wrong: %+v", a)
	}
}

// swap mutates one fragment of the cluster scenario.
func swap(t *testing.T, old, new string) string {
	t.Helper()
	if !strings.Contains(clusterScenario, old) {
		t.Fatalf("test bug: %q not in the cluster scenario", old)
	}
	return strings.Replace(clusterScenario, old, new, 1)
}

func TestValidateClusterErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "one-node cluster",
			src:  swap(t, "nodes: 3", "nodes: 1"),
			want: "daemons.nodes must be >= 2",
		},
		{
			name: "count conflicts with nodes",
			src:  swap(t, "  nodes: 3", "  count: 2\n  nodes: 3"),
			want: "conflicts with daemons.nodes",
		},
		{
			name: "ring replicas out of range",
			src:  swap(t, "ring_replicas: 1", "ring_replicas: 3"),
			want: "daemons.ring_replicas 3 out of range",
		},
		{
			name: "cluster keys without nodes",
			src:  swap(t, "  nodes: 3\n", ""),
			want: "need daemons.nodes >= 2",
		},
		{
			name: "negative retry budget",
			src:  swap(t, "max: 2", "max: -1"),
			want: "fleet.retry.max must be >= 0",
		},
		{
			name: "slow_peer without delay",
			src:  swap(t, "kind: slow_peer, target: 1, delay: 20ms, heal: 1s", "kind: slow_peer, target: 1, heal: 1s"),
			want: "slow_peer needs a positive delay",
		},
		{
			name: "heal past the scenario end",
			src:  swap(t, "kind: partition, target: 0, heal: 3s", "kind: partition, target: 0, heal: 9s"),
			want: "after the scenario duration",
		},
		{
			name: "heal on a kill event",
			src:  swap(t, "kind: slow_peer, target: 1, delay: 20ms, heal: 1s", "kind: kill, target: 1, heal: 1s"),
			want: "heal only applies to partition/slow_peer",
		},
		{
			name: "zero key-execution ceiling",
			src:  swap(t, "max_key_executions: 1", "max_key_executions: 0"),
			want: "max_key_executions must be >= 1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("cluster.yaml", []byte(tc.src))
			if err == nil {
				t.Fatal("scenario accepted, want an error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestValidateClusterAssertionsNeedNodes: each cluster assertion is
// rejected on a single-daemon scenario.
func TestValidateClusterAssertionsNeedNodes(t *testing.T) {
	base := `
name: solo
duration: 5s
daemons:
  count: 1
  benchmarks: [gzip_comp]
fleet:
  clients: 1
  startup: {pattern: instant}
  templates:
    - name: simmers
      weight: 1.0
      think: {dist: fixed, mean: 100ms}
assertions:
  %s
`
	for _, line := range []string{
		"min_adoptions: 1", "max_key_executions: 1", "cluster_converged: true", "no_lost_jobs: true",
	} {
		_, err := Parse("solo.yaml", []byte(fmt.Sprintf(base, line)))
		if err == nil || !strings.Contains(err.Error(), "needs daemons.nodes >= 2") {
			t.Errorf("assertion %q on a solo daemon: err = %v, want a nodes>=2 error", line, err)
		}
	}
}

// TestValidatePartitionNeedsCluster: cluster fault kinds are rejected
// outside cluster mode.
func TestValidatePartitionNeedsCluster(t *testing.T) {
	src := `
name: solo
duration: 5s
daemons:
  count: 1
  benchmarks: [gzip_comp]
  fault_surface: true
fleet:
  clients: 1
  startup: {pattern: instant}
  templates:
    - name: simmers
      weight: 1.0
      think: {dist: fixed, mean: 100ms}
faults:
  - {at: 1s, kind: partition, target: 0}
`
	_, err := Parse("solo.yaml", []byte(src))
	if err == nil || !strings.Contains(err.Error(), "needs daemons.nodes >= 2") {
		t.Fatalf("partition on a solo daemon: err = %v, want a nodes>=2 error", err)
	}
}

func TestArmSpecStringClusterKinds(t *testing.T) {
	p := FaultEvent{Kind: "partition"}
	if got, want := p.ArmSpecString(), "cluster.in=error;cluster.out=error"; got != want {
		t.Errorf("partition spec = %q, want %q", got, want)
	}
	s := FaultEvent{Kind: "slow_peer", Delay: 20 * time.Millisecond}
	if got, want := s.ArmSpecString(), "cluster.in=latency:20ms;cluster.out=latency:20ms"; got != want {
		t.Errorf("slow_peer spec = %q, want %q", got, want)
	}
}

// TestEvaluateClusterAssertions: the four cluster assertions judge the
// scraped outcome fields.
func TestEvaluateClusterAssertions(t *testing.T) {
	one, two := int64(1), int64(2)
	yes := true
	pass := &Outcome{
		Adoptions: 2, AdoptionsDone: 2,
		MaxKeyExecutions: 1, PendingJobs: 0, ClusterConverged: true,
	}
	a := Assertions{MinAdoptions: &two, MaxKeyExec: &one, ClusterOK: &yes, NoLostJobs: &yes}
	for _, r := range Evaluate(a, pass) {
		if !r.OK {
			t.Errorf("assertion %s failed on a passing outcome: got %s, want %s", r.Name, r.Got, r.Want)
		}
	}

	for name, o := range map[string]*Outcome{
		"too few adoptions":   {Adoptions: 1, AdoptionsDone: 1, MaxKeyExecutions: 1, ClusterConverged: true},
		"double execution":    {Adoptions: 2, AdoptionsDone: 2, MaxKeyExecutions: 2, ClusterConverged: true},
		"cluster split":       {Adoptions: 2, AdoptionsDone: 2, MaxKeyExecutions: 1, ClusterConverged: false},
		"pending backlog":     {Adoptions: 2, AdoptionsDone: 2, MaxKeyExecutions: 1, ClusterConverged: true, PendingJobs: 3},
		"unfinished adoption": {Adoptions: 2, AdoptionsDone: 1, MaxKeyExecutions: 1, ClusterConverged: true},
	} {
		if Passed(Evaluate(a, o)) {
			t.Errorf("%s: assertions passed, want a failure", name)
		}
	}
}

// fakeClusterNode is a cluster-mode tlsd stand-in: /simulate fails
// closed (503 + Retry-After) while the cluster.in fault point is armed
// with an error — exactly the daemon's partition behavior — and
// /cluster serves a fabricated but shape-accurate scrape.
type fakeClusterNode struct {
	self string
	reg  *fault.Registry
	srv  *httptest.Server

	mu   sync.Mutex
	shed int
}

func newFakeClusterNode(t *testing.T, self string, nodes []string, executions map[string]int64, adoptions []map[string]any) *fakeClusterNode {
	d := &fakeClusterNode{self: self, reg: fault.NewRegistry()}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"status": "ok", "quarantined": 0})
	})
	mux.HandleFunc("GET /simulate", func(w http.ResponseWriter, r *http.Request) {
		if err := d.reg.Fire("cluster.in"); err != nil {
			d.mu.Lock()
			d.shed++
			d.mu.Unlock()
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			writeJSON(w, map[string]string{"error": "cluster fault injected"})
			return
		}
		w.Header().Set("X-Tlsd-Cache", "hit")
		writeJSON(w, map[string]string{"cache": "hit"})
	})
	mux.HandleFunc("GET /cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{
			"cluster": map[string]any{
				"self": self, "nodes": nodes, "quorum": true, "alive": len(nodes),
				"adoptions": adoptions,
			},
			"executions":      executions,
			"journal_pending": 0,
		})
	})
	mux.HandleFunc("GET /_faults", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"armed": d.reg.Armed(), "fired": d.reg.FiredAll()})
	})
	mux.HandleFunc("POST /_faults/arm", func(w http.ResponseWriter, r *http.Request) {
		specs, err := fault.ParseSpec(r.URL.Query().Get("spec"))
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		fault.ArmAll(d.reg, specs)
		writeJSON(w, map[string]any{"armed": d.reg.Armed()})
	})
	mux.HandleFunc("POST /_faults/reset", func(w http.ResponseWriter, r *http.Request) {
		for _, pt := range r.URL.Query()["point"] {
			d.reg.Disarm(pt)
		}
		writeJSON(w, map[string]any{"armed": d.reg.Armed()})
	})
	d.srv = httptest.NewServer(mux)
	return d
}

func (d *fakeClusterNode) URL() string                     { return d.srv.URL }
func (d *fakeClusterNode) Kill() error                     { return fmt.Errorf("not killable") }
func (d *fakeClusterNode) Restart() error                  { return fmt.Errorf("not restartable") }
func (d *fakeClusterNode) WaitReady(context.Context) error { return nil }
func (d *fakeClusterNode) Close()                          { d.srv.Close() }
func (d *fakeClusterNode) shedCount() int                  { d.mu.Lock(); defer d.mu.Unlock(); return d.shed }

// TestRunnerClusterEndToEnd drives a 2-node cluster of fakes through a
// partition + heal and retries: the partitioned node sheds 503s, the
// fleet's retry budget is spent and surfaced, the heal disarms the
// cluster points before the scrape, and the cluster scrape feeds the
// new assertions.
func TestRunnerClusterEndToEnd(t *testing.T) {
	src := `
name: cluster-runner
duration: 1200ms
seed: 5
daemons:
  nodes: 2
  heartbeat: 20ms
  dead_after: 100ms
  benchmarks: [gzip_comp]
  fault_surface: true
fleet:
  clients: 4
  retry:
    max: 2
    base: 5ms
    cap: 20ms
  startup:
    pattern: instant
  templates:
    - name: simmers
      weight: 1.0
      bench: [gzip_comp]
      policy: [C]
      think: {dist: fixed, mean: 60ms}
faults:
  - {at: 100ms, kind: partition, target: 0, heal: 400ms}
assertions:
  min_shed: 1
  min_adoptions: 1
  max_key_executions: 1
  cluster_converged: true
  no_lost_jobs: true
  readyz_converged: true
`
	sc, err := Parse("cluster-runner.yaml", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	nodes := []string{"n0", "n1"}
	fakes := make([]*fakeClusterNode, 2)
	rep, err := Run(sc, 5, RunOptions{
		StartDaemon: func(i int) (Daemon, error) {
			// n1 adopted and executed one key from n0; n0 executed none
			// (it was partitioned before its queue drained).
			var exec map[string]int64
			var adoptions []map[string]any
			if i == 1 {
				exec = map[string]int64{"gzip_comp|C": 1}
				adoptions = []map[string]any{{"key": "gzip_comp|C", "done": true}}
			}
			fakes[i] = newFakeClusterNode(t, nodes[i], nodes, exec, adoptions)
			return fakes[i], nil
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcome
	if fakes[0].shedCount() == 0 {
		t.Error("partitioned node never shed a request")
	}
	if o.Shed == 0 {
		t.Errorf("no sheds surfaced in the outcome: %+v", o)
	}
	if o.Retries == 0 {
		t.Errorf("retry budget unspent despite 503s: %+v", o)
	}
	if o.FaultsByPoint["cluster.in"] == 0 {
		t.Errorf("cluster.in never fired: %v", o.FaultsByPoint)
	}
	if got := fakes[0].reg.Armed(); len(got) != 0 {
		t.Errorf("heal left faults armed on n0: %v", got)
	}
	if o.Adoptions != 1 || o.AdoptionsDone != 1 {
		t.Errorf("adoptions scraped wrong: %d/%d", o.AdoptionsDone, o.Adoptions)
	}
	if o.MaxKeyExecutions != 1 || o.DoubleExecuted != 0 {
		t.Errorf("execution counters scraped wrong: max=%d double=%d", o.MaxKeyExecutions, o.DoubleExecuted)
	}
	if !o.ClusterConverged {
		t.Errorf("cluster not converged: %v", o.FinalCluster)
	}
	if !rep.Pass {
		t.Errorf("scenario should pass, assertions: %+v", rep.Assertions)
	}
}

// TestScrapeClusterDoubleExecution: a key executed on two nodes is
// surfaced as a double-compute.
func TestScrapeClusterDoubleExecution(t *testing.T) {
	nodes := []string{"n0", "n1"}
	a := newFakeClusterNode(t, "n0", nodes, map[string]int64{"k1": 1, "k2": 1}, nil)
	b := newFakeClusterNode(t, "n1", nodes, map[string]int64{"k1": 1}, nil)
	defer a.Close()
	defer b.Close()
	o := &Outcome{}
	var notes syncNotes
	scrapeCluster([]Daemon{a, b}, http.DefaultClient, o, &notes)
	if o.MaxKeyExecutions != 2 || o.DoubleExecuted != 1 {
		t.Errorf("max=%d double=%d, want 2 and 1 (k1 ran on both nodes)", o.MaxKeyExecutions, o.DoubleExecuted)
	}
	if !o.ClusterConverged {
		t.Errorf("converged view expected: %v", o.FinalCluster)
	}
}

// TestScrapeClusterUnreachableNode: a dead node makes convergence
// false and is recorded as evidence.
func TestScrapeClusterUnreachableNode(t *testing.T) {
	nodes := []string{"n0", "n1"}
	a := newFakeClusterNode(t, "n0", nodes, nil, nil)
	defer a.Close()
	dead := newFakeClusterNode(t, "n1", nodes, nil, nil)
	dead.Close() // nothing listens anymore
	o := &Outcome{}
	var notes syncNotes
	scrapeCluster([]Daemon{a, dead}, http.DefaultClient, o, &notes)
	if o.ClusterConverged {
		t.Error("converged despite an unreachable node")
	}
	found := false
	for _, line := range o.FinalCluster {
		found = found || strings.Contains(line, "unreachable")
	}
	if !found {
		t.Errorf("unreachable node not recorded: %v", o.FinalCluster)
	}
}
