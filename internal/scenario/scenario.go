package scenario

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tlssync/internal/workloads"
)

// Policies lists the policy labels tlsd's /simulate accepts, in the
// daemon's order. Scenario validation rejects anything else up front so
// a bad policy fails `tlssim validate`, not a 400 mid-run.
var Policies = []string{"U", "O", "T", "C", "E", "L", "H", "P", "B"}

// Scenario is one parsed and validated scenario file.
type Scenario struct {
	Name        string        `json:"name"`
	Description string        `json:"description,omitempty"`
	Duration    time.Duration `json:"duration"`
	Seed        uint64        `json:"seed"` // default seed; `tlssim run --seed` overrides
	Daemons     DaemonSpec    `json:"daemons"`
	Fleet       FleetSpec     `json:"fleet"`
	Faults      []FaultEvent  `json:"faults,omitempty"`
	Assert      Assertions    `json:"assertions"`
}

// DaemonSpec declares the tlsd processes under test.
type DaemonSpec struct {
	Count        int           `json:"count"`      // number of tlsd processes (default 1)
	Benchmarks   []string      `json:"benchmarks"` // serving set; `synth-<seed>` entries are progen-generated
	Workers      int           `json:"workers,omitempty"`
	Cache        int           `json:"cache,omitempty"`
	Queue        int           `json:"queue,omitempty"`         // admission queue depth (0: daemon default)
	ReqTimeout   time.Duration `json:"req_timeout,omitempty"`   // per-request deadline (0: daemon default)
	Warm         bool          `json:"warm,omitempty"`          // prewarm the serving set before the clock starts
	FaultSurface bool          `json:"fault_surface,omitempty"` // start with -enable-fault-injection (required by point/crash events)

	// Nodes turns the daemons into a consistent-hash cluster of N
	// members (n0..n<N-1>): each gets -node-id/-peers/-peersfile and
	// the fleet self-heals through adoption (see docs/cluster.md).
	// 0 keeps the daemons independent; >= 2 implies Count = Nodes.
	Nodes        int           `json:"nodes,omitempty"`
	RingReplicas int           `json:"ring_replicas,omitempty"` // artifact copies beyond the owner (0: tlsd default)
	Heartbeat    time.Duration `json:"heartbeat,omitempty"`     // cluster probe period (0: tlsd default)
	DeadAfter    time.Duration `json:"dead_after,omitempty"`    // silence before a peer is dead (0: tlsd default)
	Sweep        time.Duration `json:"sweep,omitempty"`         // anti-entropy sweep period (0: tlsd default)
}

// Cluster reports whether the daemons form a cluster.
func (ds *DaemonSpec) Cluster() bool { return ds.Nodes >= 2 }

// FleetSpec declares the synthetic client fleet.
type FleetSpec struct {
	Clients   int        `json:"clients"`
	Startup   Startup    `json:"startup"`
	Templates []Template `json:"templates"`
	// Retry opts the fleet into client-side retries: 429/503 answers
	// (honoring the server's Retry-After) and transient 5xx/transport
	// failures back off and re-issue instead of counting an immediate
	// failure. Zero value: no retries (every sample is one attempt).
	Retry RetrySpec `json:"retry,omitempty"`
}

// RetrySpec is the fleet's retry budget (see internal/httpretry).
type RetrySpec struct {
	Max  int           `json:"max,omitempty"`  // retries after the first attempt (0: disabled)
	Base time.Duration `json:"base,omitempty"` // first backoff (0: 50ms)
	Cap  time.Duration `json:"cap,omitempty"`  // per-delay ceiling (0: 2s)
}

// Startup is the fleet's arrival shape.
type Startup struct {
	// Pattern: instant (everyone at t=0), linear (constant arrival
	// rate), exponential (slow start, accelerating waves: 1, 2, 4, ...),
	// wave (equal batches separated by pauses).
	Pattern  string        `json:"pattern"`
	Duration time.Duration `json:"duration,omitempty"` // arrival window (0 with instant)
	Batches  int           `json:"batches,omitempty"`  // wave only (default 4)
}

// Template is one weighted client archetype: which benchmarks and
// policies its clients request (a mix over the SimSpec axes), against
// which endpoint, at what think-time rhythm.
type Template struct {
	Name     string   `json:"name"`
	Weight   float64  `json:"weight"`             // weights must sum to 1 across templates
	Bench    []string `json:"bench,omitempty"`    // choice set (default: the daemon serving set)
	Policy   []string `json:"policy,omitempty"`   // choice set (default: C)
	Endpoint string   `json:"endpoint,omitempty"` // simulate (default), stats, readyz
	Requests int      `json:"requests,omitempty"` // per-client cap (0: until duration)
	Think    Think    `json:"think"`
}

// Think is a client's think-time distribution between requests.
type Think struct {
	Dist string        `json:"dist"`           // fixed, uniform, exp
	Mean time.Duration `json:"mean,omitempty"` // fixed, exp
	Min  time.Duration `json:"min,omitempty"`  // uniform
	Max  time.Duration `json:"max,omitempty"`  // uniform
}

// FaultEvent is one scheduled injection or membership action.
type FaultEvent struct {
	At   time.Duration `json:"at"`
	Kind string        `json:"kind"` // point, kill, partition, slow_peer, join_node, decommission_node, rolling_restart
	// Target is the daemon index (node n<target> in a cluster). For
	// join_node it names the NEW daemon: joiners are numbered after the
	// initial nodes (the first join is daemons.nodes, the next one up).
	// rolling_restart walks every live node and ignores it.
	Target int           `json:"target"`
	Point  string        `json:"point,omitempty"`  // kind=point: fault-registry point (fs.read, jobs.simulate, ...)
	Effect string        `json:"effect,omitempty"` // kind=point: latency, error, panic, crash
	Delay  time.Duration `json:"delay,omitempty"`  // kind=point/slow_peer: injected latency; kind=kill: restart delay; kind=rolling_restart: pause between kill and restart per node
	Times  int           `json:"times,omitempty"`  // kind=point: firing budget (default 1)
	// Restart re-execs the killed daemon over the same cache dir after
	// Delay, exercising the crash-recovery path; recovery time (restart
	// to /readyz ok) feeds the recovery assertion.
	Restart bool `json:"restart,omitempty"`
	// Heal, for partition/slow_peer, disarms the cluster fault points
	// this long after arming them (fired counters are kept as
	// evidence). 0 leaves the fault armed to the end of the run.
	Heal time.Duration `json:"heal,omitempty"`
}

// ClusterFaultPoints are the fault-registry points partition and
// slow_peer events arm: every inbound and outbound peer call on the
// target node crosses one of them.
var ClusterFaultPoints = []string{"cluster.in", "cluster.out"}

// ArmSpecString renders a fault event as the textual arming spec the
// tlsd /_faults surface (and -faults flag) accepts:
// point=effect[:delay][:times=N].
//
// partition severs the target from its peers in both directions
// (unbounded error budget — the heal disarms it); slow_peer keeps the
// links up but adds Delay to every peer call.
func (e *FaultEvent) ArmSpecString() string {
	switch e.Kind {
	case "partition":
		return "cluster.in=error;cluster.out=error"
	case "slow_peer":
		d := e.Delay.String()
		return "cluster.in=latency:" + d + ";cluster.out=latency:" + d
	}
	s := e.Point + "=" + e.Effect
	if e.Effect == "latency" {
		s += ":" + e.Delay.String()
	}
	if e.Times > 0 {
		s += fmt.Sprintf(":times=%d", e.Times)
	}
	return s
}

// Assertions are the scenario's pass/fail criteria. Pointer fields are
// absent when the scenario does not assert them.
type Assertions struct {
	MaxP50       time.Duration `json:"max_p50,omitempty"`
	MaxP95       time.Duration `json:"max_p95,omitempty"`
	MaxP99       time.Duration `json:"max_p99,omitempty"`
	MaxErrorRate *float64      `json:"max_error_rate,omitempty"`     // (5xx + transport errors) / total
	MinHitRate   *float64      `json:"min_cache_hit_rate,omitempty"` // simulate-endpoint store hits / (hits+misses)
	MaxShedRate  *float64      `json:"max_shed_rate,omitempty"`      // (429 + 503) / total
	MinShed      *int64        `json:"min_shed,omitempty"`           // floor on sheds (burst scenarios must actually shed)
	MaxRecovery  time.Duration `json:"max_recovery,omitempty"`       // restart → /readyz ok bound
	MinInjected  *int64        `json:"min_faults_injected,omitempty"`
	Converged    *bool         `json:"readyz_converged,omitempty"`     // final /readyz must be ok on every daemon
	NoCorrupt    *bool         `json:"no_corrupt_artifacts,omitempty"` // final quarantined count must be 0

	// Cluster assertions (require daemons.nodes >= 2).
	MinAdoptions *int64 `json:"min_adoptions,omitempty"`         // completed dead-node job adoptions across the fleet
	MaxKeyExec   *int64 `json:"max_key_executions,omitempty"`    // per-key execution ceiling summed across nodes (1 = zero double-compute)
	ClusterOK    *bool  `json:"cluster_converged,omitempty"`     // final view: every node sees quorum and the whole fleet alive
	NoLostJobs   *bool  `json:"no_lost_jobs,omitempty"`          // final journal pending must be 0 everywhere, every adoption completed
	RepConverged *bool  `json:"replication_converged,omitempty"` // every artifact present on every member of its replica chain
	NoOrphans    *bool  `json:"no_orphaned_artifacts,omitempty"` // no artifact stranded with zero copies on its replica chain

	// Settle bounds a post-run convergence wait: before the final
	// cluster scrape the runner polls until membership agrees,
	// replication has healed and journals drained — or this long has
	// passed. Runtime-only; the deterministic report is unaffected.
	Settle time.Duration `json:"settle,omitempty"`
}

// Load reads, parses and validates a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(path, data)
}

// Parse parses and validates scenario bytes; file is used in error
// positions.
func Parse(file string, data []byte) (*Scenario, error) {
	root, err := parseYAML(file, data)
	if err != nil {
		return nil, err
	}
	d := &decoder{file: file}
	sc := d.scenario(root)
	if d.err != nil {
		return nil, d.err
	}
	if err := sc.validate(file); err != nil {
		return nil, err
	}
	return sc, nil
}

// decoder decodes the node tree into the typed schema, accumulating
// the first positional error. Every mapping decode is strict: unknown
// keys are errors naming the key and its line.
type decoder struct {
	file string
	err  error
}

func (d *decoder) fail(line int, format string, args ...any) {
	if d.err == nil {
		d.err = errAt(d.file, line, format, args...)
	}
}

// strict verifies that a mapping holds only known keys.
func (d *decoder) strict(n *node, context string, known ...string) {
	if n.kind != mapNode {
		d.fail(n.line, "%s: expected a mapping, got a %s", context, n.kindName())
		return
	}
	for i, k := range n.keys {
		found := false
		for _, ok := range known {
			if k == ok {
				found = true
				break
			}
		}
		if !found {
			d.fail(n.keyLines[i], "%s: unknown key %q (known keys: %s)", context, k, strings.Join(known, ", "))
			return
		}
	}
}

func (d *decoder) str(n *node, context string) string {
	if n.kind != scalarNode {
		d.fail(n.line, "%s: expected a scalar, got a %s", context, n.kindName())
		return ""
	}
	return n.scalar
}

func (d *decoder) strs(n *node, context string) []string {
	switch n.kind {
	case seqNode:
		out := make([]string, 0, len(n.items))
		for _, it := range n.items {
			out = append(out, d.str(it, context))
		}
		return out
	case scalarNode:
		// A single scalar is a one-element list; commas split.
		var out []string
		for _, s := range strings.Split(n.scalar, ",") {
			if s = strings.TrimSpace(s); s != "" {
				out = append(out, s)
			}
		}
		return out
	default:
		d.fail(n.line, "%s: expected a list of scalars", context)
		return nil
	}
}

func (d *decoder) num(n *node, context string) int {
	s := d.str(n, context)
	if d.err != nil {
		return 0
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		d.fail(n.line, "%s: bad integer %q", context, s)
		return 0
	}
	return v
}

func (d *decoder) float(n *node, context string) float64 {
	s := d.str(n, context)
	if d.err != nil {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		d.fail(n.line, "%s: bad number %q", context, s)
		return 0
	}
	return v
}

func (d *decoder) boolean(n *node, context string) bool {
	switch s := d.str(n, context); s {
	case "true", "yes", "on":
		return true
	case "false", "no", "off":
		return false
	default:
		if d.err == nil {
			d.fail(n.line, "%s: bad boolean %q (want true or false)", context, s)
		}
		return false
	}
}

func (d *decoder) dur(n *node, context string) time.Duration {
	s := d.str(n, context)
	if d.err != nil {
		return 0
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		d.fail(n.line, "%s: bad duration %q (want e.g. 500ms, 10s, 2m)", context, s)
		return 0
	}
	if v < 0 {
		d.fail(n.line, "%s: negative duration %q", context, s)
		return 0
	}
	return v
}

func (d *decoder) seed(n *node, context string) uint64 {
	s := d.str(n, context)
	if d.err != nil {
		return 0
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		d.fail(n.line, "%s: bad seed %q", context, s)
		return 0
	}
	return v
}

func (d *decoder) scenario(root *node) *Scenario {
	d.strict(root, "scenario",
		"name", "description", "duration", "seed", "daemons", "fleet", "faults", "assertions")
	if d.err != nil {
		return nil
	}
	sc := &Scenario{}
	if n := root.get("name"); n != nil {
		sc.Name = d.str(n, "name")
	}
	if n := root.get("description"); n != nil {
		sc.Description = d.str(n, "description")
	}
	if n := root.get("duration"); n != nil {
		sc.Duration = d.dur(n, "duration")
	}
	if n := root.get("seed"); n != nil {
		sc.Seed = d.seed(n, "seed")
	}
	if n := root.get("daemons"); n != nil {
		sc.Daemons = d.daemons(n)
	}
	if n := root.get("fleet"); n != nil {
		sc.Fleet = d.fleet(n)
	}
	if n := root.get("faults"); n != nil {
		sc.Faults = d.faults(n)
	}
	if n := root.get("assertions"); n != nil {
		sc.Assert = d.assertions(n)
	}
	return sc
}

func (d *decoder) daemons(n *node) DaemonSpec {
	d.strict(n, "daemons",
		"count", "benchmarks", "workers", "cache", "queue", "req_timeout", "warm", "fault_surface",
		"nodes", "ring_replicas", "heartbeat", "dead_after", "sweep")
	if d.err != nil {
		return DaemonSpec{}
	}
	ds := DaemonSpec{Count: 1}
	if c := n.get("count"); c != nil {
		ds.Count = d.num(c, "daemons.count")
	}
	if c := n.get("benchmarks"); c != nil {
		ds.Benchmarks = d.strs(c, "daemons.benchmarks")
	}
	if c := n.get("workers"); c != nil {
		ds.Workers = d.num(c, "daemons.workers")
	}
	if c := n.get("cache"); c != nil {
		ds.Cache = d.num(c, "daemons.cache")
	}
	if c := n.get("queue"); c != nil {
		ds.Queue = d.num(c, "daemons.queue")
	}
	if c := n.get("req_timeout"); c != nil {
		ds.ReqTimeout = d.dur(c, "daemons.req_timeout")
	}
	if c := n.get("warm"); c != nil {
		ds.Warm = d.boolean(c, "daemons.warm")
	}
	if c := n.get("fault_surface"); c != nil {
		ds.FaultSurface = d.boolean(c, "daemons.fault_surface")
	}
	if c := n.get("nodes"); c != nil {
		ds.Nodes = d.num(c, "daemons.nodes")
	}
	if c := n.get("ring_replicas"); c != nil {
		ds.RingReplicas = d.num(c, "daemons.ring_replicas")
	}
	if c := n.get("heartbeat"); c != nil {
		ds.Heartbeat = d.dur(c, "daemons.heartbeat")
	}
	if c := n.get("dead_after"); c != nil {
		ds.DeadAfter = d.dur(c, "daemons.dead_after")
	}
	if c := n.get("sweep"); c != nil {
		ds.Sweep = d.dur(c, "daemons.sweep")
	}
	return ds
}

func (d *decoder) fleet(n *node) FleetSpec {
	d.strict(n, "fleet", "clients", "startup", "templates", "retry")
	if d.err != nil {
		return FleetSpec{}
	}
	fs := FleetSpec{Startup: Startup{Pattern: "instant"}}
	if c := n.get("clients"); c != nil {
		fs.Clients = d.num(c, "fleet.clients")
	}
	if c := n.get("startup"); c != nil {
		fs.Startup = d.startup(c)
	}
	if c := n.get("templates"); c != nil {
		if c.kind != seqNode {
			d.fail(c.line, "fleet.templates: expected a sequence of templates")
			return fs
		}
		for _, it := range c.items {
			fs.Templates = append(fs.Templates, d.template(it))
		}
	}
	if c := n.get("retry"); c != nil {
		fs.Retry = d.retry(c)
	}
	return fs
}

func (d *decoder) retry(n *node) RetrySpec {
	d.strict(n, "fleet.retry", "max", "base", "cap")
	if d.err != nil {
		return RetrySpec{}
	}
	var rs RetrySpec
	if c := n.get("max"); c != nil {
		rs.Max = d.num(c, "fleet.retry.max")
	}
	if c := n.get("base"); c != nil {
		rs.Base = d.dur(c, "fleet.retry.base")
	}
	if c := n.get("cap"); c != nil {
		rs.Cap = d.dur(c, "fleet.retry.cap")
	}
	return rs
}

func (d *decoder) startup(n *node) Startup {
	d.strict(n, "fleet.startup", "pattern", "duration", "batches")
	if d.err != nil {
		return Startup{}
	}
	st := Startup{Pattern: "instant"}
	if c := n.get("pattern"); c != nil {
		st.Pattern = d.str(c, "fleet.startup.pattern")
	}
	if c := n.get("duration"); c != nil {
		st.Duration = d.dur(c, "fleet.startup.duration")
	}
	if c := n.get("batches"); c != nil {
		st.Batches = d.num(c, "fleet.startup.batches")
	}
	return st
}

func (d *decoder) template(n *node) Template {
	d.strict(n, "template", "name", "weight", "bench", "policy", "endpoint", "requests", "think")
	if d.err != nil {
		return Template{}
	}
	t := Template{Endpoint: "simulate", Think: Think{Dist: "fixed", Mean: 100 * time.Millisecond}}
	if c := n.get("name"); c != nil {
		t.Name = d.str(c, "template.name")
	}
	if c := n.get("weight"); c != nil {
		t.Weight = d.float(c, "template.weight")
	}
	if c := n.get("bench"); c != nil {
		t.Bench = d.strs(c, "template.bench")
	}
	if c := n.get("policy"); c != nil {
		t.Policy = d.strs(c, "template.policy")
	}
	if c := n.get("endpoint"); c != nil {
		t.Endpoint = d.str(c, "template.endpoint")
	}
	if c := n.get("requests"); c != nil {
		t.Requests = d.num(c, "template.requests")
	}
	if c := n.get("think"); c != nil {
		t.Think = d.think(c)
	}
	return t
}

func (d *decoder) think(n *node) Think {
	d.strict(n, "think", "dist", "mean", "min", "max")
	if d.err != nil {
		return Think{}
	}
	th := Think{Dist: "fixed"}
	if c := n.get("dist"); c != nil {
		th.Dist = d.str(c, "think.dist")
	}
	if c := n.get("mean"); c != nil {
		th.Mean = d.dur(c, "think.mean")
	}
	if c := n.get("min"); c != nil {
		th.Min = d.dur(c, "think.min")
	}
	if c := n.get("max"); c != nil {
		th.Max = d.dur(c, "think.max")
	}
	return th
}

func (d *decoder) faults(n *node) []FaultEvent {
	if n.kind != seqNode {
		d.fail(n.line, "faults: expected a sequence of fault events")
		return nil
	}
	var out []FaultEvent
	for _, it := range n.items {
		d.strict(it, "fault event", "at", "kind", "target", "point", "effect", "delay", "times", "restart", "heal")
		if d.err != nil {
			return nil
		}
		ev := FaultEvent{Times: 1}
		if c := it.get("at"); c != nil {
			ev.At = d.dur(c, "fault.at")
		}
		if c := it.get("kind"); c != nil {
			ev.Kind = d.str(c, "fault.kind")
		}
		if c := it.get("target"); c != nil {
			ev.Target = d.num(c, "fault.target")
		}
		if c := it.get("point"); c != nil {
			ev.Point = d.str(c, "fault.point")
		}
		if c := it.get("effect"); c != nil {
			ev.Effect = d.str(c, "fault.effect")
		}
		if c := it.get("delay"); c != nil {
			ev.Delay = d.dur(c, "fault.delay")
		}
		if c := it.get("times"); c != nil {
			ev.Times = d.num(c, "fault.times")
		}
		if c := it.get("restart"); c != nil {
			ev.Restart = d.boolean(c, "fault.restart")
		}
		if c := it.get("heal"); c != nil {
			ev.Heal = d.dur(c, "fault.heal")
		}
		out = append(out, ev)
	}
	return out
}

func (d *decoder) assertions(n *node) Assertions {
	d.strict(n, "assertions",
		"max_p50", "max_p95", "max_p99", "max_error_rate", "min_cache_hit_rate",
		"max_shed_rate", "min_shed", "max_recovery", "min_faults_injected",
		"readyz_converged", "no_corrupt_artifacts",
		"min_adoptions", "max_key_executions", "cluster_converged", "no_lost_jobs",
		"replication_converged", "no_orphaned_artifacts", "settle")
	if d.err != nil {
		return Assertions{}
	}
	var a Assertions
	if c := n.get("max_p50"); c != nil {
		a.MaxP50 = d.dur(c, "assertions.max_p50")
	}
	if c := n.get("max_p95"); c != nil {
		a.MaxP95 = d.dur(c, "assertions.max_p95")
	}
	if c := n.get("max_p99"); c != nil {
		a.MaxP99 = d.dur(c, "assertions.max_p99")
	}
	if c := n.get("max_error_rate"); c != nil {
		v := d.float(c, "assertions.max_error_rate")
		a.MaxErrorRate = &v
	}
	if c := n.get("min_cache_hit_rate"); c != nil {
		v := d.float(c, "assertions.min_cache_hit_rate")
		a.MinHitRate = &v
	}
	if c := n.get("max_shed_rate"); c != nil {
		v := d.float(c, "assertions.max_shed_rate")
		a.MaxShedRate = &v
	}
	if c := n.get("min_shed"); c != nil {
		v := int64(d.num(c, "assertions.min_shed"))
		a.MinShed = &v
	}
	if c := n.get("max_recovery"); c != nil {
		a.MaxRecovery = d.dur(c, "assertions.max_recovery")
	}
	if c := n.get("min_faults_injected"); c != nil {
		v := int64(d.num(c, "assertions.min_faults_injected"))
		a.MinInjected = &v
	}
	if c := n.get("readyz_converged"); c != nil {
		v := d.boolean(c, "assertions.readyz_converged")
		a.Converged = &v
	}
	if c := n.get("no_corrupt_artifacts"); c != nil {
		v := d.boolean(c, "assertions.no_corrupt_artifacts")
		a.NoCorrupt = &v
	}
	if c := n.get("min_adoptions"); c != nil {
		v := int64(d.num(c, "assertions.min_adoptions"))
		a.MinAdoptions = &v
	}
	if c := n.get("max_key_executions"); c != nil {
		v := int64(d.num(c, "assertions.max_key_executions"))
		a.MaxKeyExec = &v
	}
	if c := n.get("cluster_converged"); c != nil {
		v := d.boolean(c, "assertions.cluster_converged")
		a.ClusterOK = &v
	}
	if c := n.get("no_lost_jobs"); c != nil {
		v := d.boolean(c, "assertions.no_lost_jobs")
		a.NoLostJobs = &v
	}
	if c := n.get("replication_converged"); c != nil {
		v := d.boolean(c, "assertions.replication_converged")
		a.RepConverged = &v
	}
	if c := n.get("no_orphaned_artifacts"); c != nil {
		v := d.boolean(c, "assertions.no_orphaned_artifacts")
		a.NoOrphans = &v
	}
	if c := n.get("settle"); c != nil {
		a.Settle = d.dur(c, "assertions.settle")
	}
	return a
}

// --- validation ---

// SynthSeed reports whether name is a synthetic progen workload
// reference ("synth-<seed>") and returns its seed.
func SynthSeed(name string) (uint64, bool) { return workloads.SynthSeed(name) }

func isPolicy(label string) bool {
	for _, p := range Policies {
		if p == label {
			return true
		}
	}
	return false
}

func validBench(name string) bool {
	if _, ok := SynthSeed(name); ok {
		return true
	}
	_, err := workloads.ByName(name)
	return err == nil
}

// validate enforces the DSL's semantic rules; file names error positions
// (validation errors are scenario-level, so they carry no line).
func (sc *Scenario) validate(file string) error {
	fail := func(format string, args ...any) error {
		return errAt(file, 0, format, args...)
	}
	if sc.Name == "" {
		return fail("scenario needs a name")
	}
	if sc.Duration <= 0 {
		return fail("scenario needs a positive duration")
	}
	if sc.Daemons.Count <= 0 {
		return fail("daemons.count must be >= 1")
	}
	switch {
	case sc.Daemons.Nodes == 0:
		if sc.Daemons.RingReplicas != 0 || sc.Daemons.Heartbeat != 0 || sc.Daemons.DeadAfter != 0 || sc.Daemons.Sweep != 0 {
			return fail("daemons.ring_replicas/heartbeat/dead_after/sweep need daemons.nodes >= 2 (cluster mode)")
		}
	case sc.Daemons.Nodes == 1:
		return fail("daemons.nodes must be >= 2 (a one-node cluster is just a daemon; drop the key)")
	default:
		if sc.Daemons.Count > 1 && sc.Daemons.Count != sc.Daemons.Nodes {
			return fail("daemons.count %d conflicts with daemons.nodes %d (nodes implies the count; drop one)",
				sc.Daemons.Count, sc.Daemons.Nodes)
		}
		// Cluster mode: the node count IS the daemon count. Normalized
		// here so the planner and runner need no second field.
		sc.Daemons.Count = sc.Daemons.Nodes
		if sc.Daemons.RingReplicas < 0 || sc.Daemons.RingReplicas >= sc.Daemons.Nodes {
			return fail("daemons.ring_replicas %d out of range (want 0 <= r < nodes)", sc.Daemons.RingReplicas)
		}
	}
	if sc.Fleet.Retry.Max < 0 {
		return fail("fleet.retry.max must be >= 0")
	}
	if len(sc.Daemons.Benchmarks) == 0 {
		return fail("daemons.benchmarks must name at least one benchmark")
	}
	for _, b := range sc.Daemons.Benchmarks {
		if !validBench(b) {
			return fail("daemons.benchmarks: unknown benchmark %q (want one of %s, or synth-<seed>)",
				b, strings.Join(workloads.Names(), ", "))
		}
	}
	if sc.Fleet.Clients <= 0 {
		return fail("fleet.clients must be >= 1 (empty fleets run nothing)")
	}
	if len(sc.Fleet.Templates) == 0 {
		return fail("fleet.templates must declare at least one template (empty fleets run nothing)")
	}
	switch sc.Fleet.Startup.Pattern {
	case "instant", "linear", "exponential", "wave":
	default:
		return fail("fleet.startup.pattern %q unknown (want instant, linear, exponential or wave)", sc.Fleet.Startup.Pattern)
	}
	if sc.Fleet.Startup.Pattern != "instant" && sc.Fleet.Startup.Duration <= 0 {
		return fail("fleet.startup.pattern %q needs a positive fleet.startup.duration", sc.Fleet.Startup.Pattern)
	}
	if sc.Fleet.Startup.Duration > sc.Duration {
		return fail("fleet.startup.duration %v exceeds the scenario duration %v", sc.Fleet.Startup.Duration, sc.Duration)
	}
	if sc.Fleet.Startup.Batches < 0 {
		return fail("fleet.startup.batches must be >= 0")
	}

	sum := 0.0
	for i, t := range sc.Fleet.Templates {
		ctx := fmt.Sprintf("fleet.templates[%d]", i)
		if t.Name == "" {
			return fail("%s needs a name", ctx)
		}
		if t.Weight <= 0 {
			return fail("%s (%s): weight must be > 0", ctx, t.Name)
		}
		sum += t.Weight
		for _, b := range t.Bench {
			if !validBench(b) {
				return fail("%s (%s): unknown benchmark %q", ctx, t.Name, b)
			}
			if !contains(sc.Daemons.Benchmarks, b) {
				return fail("%s (%s): benchmark %q is not in the daemon serving set", ctx, t.Name, b)
			}
		}
		for _, p := range t.Policy {
			if !isPolicy(p) {
				return fail("%s (%s): unknown policy %q (want one of %s)", ctx, t.Name, p, strings.Join(Policies, " "))
			}
		}
		switch t.Endpoint {
		case "simulate", "stats", "readyz":
		default:
			return fail("%s (%s): unknown endpoint %q (want simulate, stats or readyz)", ctx, t.Name, t.Endpoint)
		}
		if t.Requests < 0 {
			return fail("%s (%s): requests must be >= 0", ctx, t.Name)
		}
		switch t.Think.Dist {
		case "fixed", "exp":
			if t.Think.Mean <= 0 {
				return fail("%s (%s): think.dist %q needs a positive think.mean", ctx, t.Name, t.Think.Dist)
			}
		case "uniform":
			if t.Think.Max <= 0 || t.Think.Min > t.Think.Max {
				return fail("%s (%s): think.dist uniform needs 0 <= min <= max with max > 0", ctx, t.Name)
			}
		default:
			return fail("%s (%s): unknown think.dist %q (want fixed, uniform or exp)", ctx, t.Name, t.Think.Dist)
		}
	}
	if math.Abs(sum-1.0) > 1e-6 {
		return fail("fleet.templates weights sum to %g, want exactly 1", sum)
	}

	// join_node events grow the fleet: joiners are numbered after the
	// initial nodes, in file order, so every daemon index is known up
	// front and later events may target joined nodes.
	totalNodes := sc.Daemons.Count
	for i, ev := range sc.Faults {
		if ev.Kind != "join_node" {
			continue
		}
		ctx := fmt.Sprintf("faults[%d]", i)
		if !sc.Daemons.Cluster() {
			return fail("%s: kind join_node needs daemons.nodes >= 2 (there is no cluster to join)", ctx)
		}
		if ev.Target != totalNodes {
			return fail("%s: join_node target %d must be the next free daemon index %d (joiners are numbered after the initial nodes, in file order)",
				ctx, ev.Target, totalNodes)
		}
		totalNodes++
	}

	needsSurface := false
	for i, ev := range sc.Faults {
		ctx := fmt.Sprintf("faults[%d]", i)
		if ev.At > sc.Duration {
			return fail("%s: at %v is after the scenario duration %v", ctx, ev.At, sc.Duration)
		}
		if ev.Target < 0 || ev.Target >= totalNodes {
			return fail("%s: target %d out of range (daemons.count is %d, plus %d join(s))",
				ctx, ev.Target, sc.Daemons.Count, totalNodes-sc.Daemons.Count)
		}
		switch ev.Kind {
		case "point":
			if ev.Point == "" {
				return fail("%s: kind point needs a fault-registry point (e.g. fs.read, jobs.simulate)", ctx)
			}
			switch ev.Effect {
			case "latency":
				if ev.Delay <= 0 {
					return fail("%s: effect latency needs a positive delay", ctx)
				}
			case "error", "panic", "crash":
			default:
				return fail("%s: unknown effect %q (want latency, error, panic or crash)", ctx, ev.Effect)
			}
			if ev.Times <= 0 {
				return fail("%s: times must be >= 1", ctx)
			}
			needsSurface = true
		case "kill":
			if ev.Restart && ev.Delay < 0 {
				return fail("%s: negative restart delay", ctx)
			}
		case "partition", "slow_peer":
			if !sc.Daemons.Cluster() {
				return fail("%s: kind %s needs daemons.nodes >= 2 (there are no peer links to fault)", ctx, ev.Kind)
			}
			if ev.Kind == "slow_peer" && ev.Delay <= 0 {
				return fail("%s: kind slow_peer needs a positive delay (the latency added to every peer call)", ctx)
			}
			if ev.Heal > 0 && ev.At+ev.Heal > sc.Duration {
				return fail("%s: heal at %v is after the scenario duration %v (the run would end still faulted)",
					ctx, ev.At+ev.Heal, sc.Duration)
			}
			needsSurface = true
		case "join_node":
			// Cluster gating and index numbering validated in the pre-pass.
		case "decommission_node":
			if !sc.Daemons.Cluster() {
				return fail("%s: kind decommission_node needs daemons.nodes >= 2 (there is no cluster to leave)", ctx)
			}
		case "rolling_restart":
			if !sc.Daemons.Cluster() {
				return fail("%s: kind rolling_restart needs daemons.nodes >= 2 (restarting one daemon is just kill+restart)", ctx)
			}
			if ev.Target != 0 {
				return fail("%s: rolling_restart walks every live node; drop the target", ctx)
			}
		default:
			return fail("%s: unknown kind %q (want point, kill, partition, slow_peer, join_node, decommission_node or rolling_restart)", ctx, ev.Kind)
		}
		if ev.Heal > 0 && ev.Kind != "partition" && ev.Kind != "slow_peer" {
			return fail("%s: heal only applies to partition/slow_peer events", ctx)
		}
	}
	if needsSurface && !sc.Daemons.FaultSurface {
		return fail("faults include point injections but daemons.fault_surface is false (tlsd refuses external arming without -enable-fault-injection)")
	}

	a := sc.Assert
	for _, r := range []struct {
		name string
		v    *float64
	}{{"max_error_rate", a.MaxErrorRate}, {"min_cache_hit_rate", a.MinHitRate}, {"max_shed_rate", a.MaxShedRate}} {
		if r.v != nil && (*r.v < 0 || *r.v > 1) {
			return fail("assertions.%s must be in [0, 1]", r.name)
		}
	}
	if a.MaxRecovery > 0 && !hasRestart(sc.Faults) {
		return fail("assertions.max_recovery is set but no fault event restarts a daemon")
	}
	if !sc.Daemons.Cluster() {
		switch {
		case a.MinAdoptions != nil:
			return fail("assertions.min_adoptions needs daemons.nodes >= 2 (adoption is a cluster behavior)")
		case a.MaxKeyExec != nil:
			return fail("assertions.max_key_executions needs daemons.nodes >= 2")
		case a.ClusterOK != nil:
			return fail("assertions.cluster_converged needs daemons.nodes >= 2")
		case a.NoLostJobs != nil:
			return fail("assertions.no_lost_jobs needs daemons.nodes >= 2")
		case a.RepConverged != nil:
			return fail("assertions.replication_converged needs daemons.nodes >= 2 (replication is a cluster behavior)")
		case a.NoOrphans != nil:
			return fail("assertions.no_orphaned_artifacts needs daemons.nodes >= 2")
		case a.Settle > 0:
			return fail("assertions.settle needs daemons.nodes >= 2 (only cluster scrapes settle)")
		}
	}
	if a.MaxKeyExec != nil && *a.MaxKeyExec < 1 {
		return fail("assertions.max_key_executions must be >= 1 (every served key executes at least once)")
	}
	return nil
}

func hasRestart(evs []FaultEvent) bool {
	for _, ev := range evs {
		if (ev.Kind == "kill" && ev.Restart) || ev.Kind == "rolling_restart" {
			return true
		}
	}
	return false
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// SortedFaults returns the fault schedule ordered by time (stable for
// equal times, preserving file order).
func (sc *Scenario) SortedFaults() []FaultEvent {
	out := make([]FaultEvent, len(sc.Faults))
	copy(out, sc.Faults)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
