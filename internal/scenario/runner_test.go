package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tlssync/internal/fault"
)

// fakeDaemon is an in-process tlsd stand-in for runner tests: it
// serves the endpoints the runner touches, backs /_faults with a REAL
// fault registry (so arming and firing semantics match production),
// and simulates kill/restart by refusing connections while "down".
type fakeDaemon struct {
	t   *testing.T
	srv *httptest.Server
	reg *fault.Registry

	mu       sync.Mutex
	down     bool
	killed   int
	restarts int
	simCount int
}

func newFakeDaemon(t *testing.T) *fakeDaemon {
	d := &fakeDaemon{t: t, reg: fault.NewRegistry()}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", d.withUp(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"status": "ok", "quarantined": 0, "disk_errors": 0})
	}))
	mux.HandleFunc("GET /stats", d.withUp(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"uptime_seconds": 1.0})
	}))
	mux.HandleFunc("GET /simulate", d.withUp(func(w http.ResponseWriter, r *http.Request) {
		// The fs.read point guards the "store read", as in tlsd.
		if err := d.reg.Fire("fs.read"); err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			writeJSON(w, map[string]string{"error": err.Error()})
			return
		}
		d.mu.Lock()
		d.simCount++
		hit := d.simCount > 1
		d.mu.Unlock()
		state := "miss"
		if hit {
			state = "hit"
		}
		w.Header().Set("X-Tlsd-Cache", state)
		writeJSON(w, map[string]string{"cache": state})
	}))
	mux.HandleFunc("GET /_faults", d.withUp(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"armed": d.reg.Armed(), "fired": d.reg.FiredAll()})
	}))
	mux.HandleFunc("POST /_faults/arm", d.withUp(func(w http.ResponseWriter, r *http.Request) {
		specs, err := fault.ParseSpec(r.URL.Query().Get("spec"))
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			writeJSON(w, map[string]string{"error": err.Error()})
			return
		}
		fault.ArmAll(d.reg, specs)
		writeJSON(w, map[string]any{"armed": d.reg.Armed()})
	}))
	d.srv = httptest.NewServer(mux)
	return d
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// withUp aborts the connection while the daemon is "killed", so
// clients observe transport errors exactly as with a dead process.
func (d *fakeDaemon) withUp(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		down := d.down
		d.mu.Unlock()
		if down {
			panic(http.ErrAbortHandler)
		}
		h(w, r)
	}
}

func (d *fakeDaemon) URL() string { return d.srv.URL }

func (d *fakeDaemon) Kill() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.down = true
	d.killed++
	return nil
}

func (d *fakeDaemon) Restart() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.down {
		return fmt.Errorf("restart of a live daemon")
	}
	d.down = false
	d.restarts++
	return nil
}

func (d *fakeDaemon) WaitReady(ctx context.Context) error {
	for {
		d.mu.Lock()
		down := d.down
		d.mu.Unlock()
		if !down {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func (d *fakeDaemon) Close() { d.srv.Close() }

const runnerScenario = `name: runner-smoke
description: runner unit test against in-process fakes
duration: 1200ms
seed: 3
daemons:
  count: 2
  benchmarks: [gzip_comp]
  fault_surface: true
fleet:
  clients: 6
  startup:
    pattern: instant
  templates:
    - name: readers
      weight: 1.0
      bench: [gzip_comp]
      policy: [C]
      think:
        dist: fixed
        mean: 100ms
faults:
  - {at: 100ms, kind: point, target: 0, point: fs.read, effect: error, times: 2}
  - {at: 400ms, kind: kill, target: 1, restart: true, delay: 20ms}
assertions:
  max_error_rate: 0.9
  min_faults_injected: 1
  max_recovery: 10s
  readyz_converged: true
  no_corrupt_artifacts: true
`

func TestRunnerEndToEnd(t *testing.T) {
	sc, err := Parse("runner.yaml", []byte(runnerScenario))
	if err != nil {
		t.Fatal(err)
	}
	fakes := make([]*fakeDaemon, sc.Daemons.Count)
	rep, err := Run(sc, 3, RunOptions{
		StartDaemon: func(i int) (Daemon, error) {
			fakes[i] = newFakeDaemon(t)
			return fakes[i], nil
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcome
	if o.Total == 0 {
		t.Fatal("runner issued no requests")
	}
	if o.Kills != 1 || o.Restarts != 1 || len(o.Recoveries) != 1 {
		t.Errorf("kill lifecycle wrong: kills=%d restarts=%d recoveries=%v", o.Kills, o.Restarts, o.Recoveries)
	}
	if fakes[1].killed != 1 || fakes[1].restarts != 1 {
		t.Errorf("kill targeted the wrong daemon: %+v", fakes[1])
	}
	if o.FaultsByPoint["fs.read"] != 2 {
		t.Errorf("fs.read fired %d times, want 2 (times=2 budget)", o.FaultsByPoint["fs.read"])
	}
	if o.FaultsInjected != o.Kills+2 {
		t.Errorf("faults_injected = %d, want kills+fired = %d", o.FaultsInjected, o.Kills+2)
	}
	if o.Server5xx < 2 {
		t.Errorf("injected errors did not surface as 5xx: %+v", o)
	}
	if len(o.FinalReady) != 2 || o.FinalReady[0] != "ok" || o.FinalReady[1] != "ok" {
		t.Errorf("final readyz = %v", o.FinalReady)
	}
	if !rep.Pass {
		t.Errorf("scenario should pass, assertions: %+v", rep.Assertions)
	}
	if rep.Plan.Fingerprint != BuildPlan(sc, 3).Fingerprint {
		t.Error("report fingerprint does not match the plan's")
	}
}

// TestRunnerDeterministicSection: two real runs differ in measurements
// but agree byte-for-byte on the deterministic projection.
func TestRunnerDeterministicSection(t *testing.T) {
	sc, err := Parse("runner.yaml", []byte(runnerScenario))
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Report {
		rep, err := Run(sc, 42, RunOptions{
			StartDaemon: func(i int) (Daemon, error) { return newFakeDaemon(t), nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	aj, _ := json.Marshal(a.Deterministic())
	bj, _ := json.Marshal(b.Deterministic())
	if string(aj) != string(bj) {
		t.Fatalf("deterministic projections differ:\n%s\n%s", aj, bj)
	}
}

func TestRunnerRequiresStartDaemon(t *testing.T) {
	sc, err := Parse("runner.yaml", []byte(runnerScenario))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sc, 1, RunOptions{}); err == nil {
		t.Fatal("Run without StartDaemon must fail")
	}
}
