package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestAggregate(t *testing.T) {
	samples := []sample{
		{endpoint: "simulate", status: 200, cacheHit: true, cacheHdr: true, latency: 10 * time.Millisecond},
		{endpoint: "simulate", status: 200, cacheHit: false, cacheHdr: true, latency: 30 * time.Millisecond},
		{endpoint: "simulate", status: 500, latency: 5 * time.Millisecond},
		{endpoint: "simulate", status: 429},
		{endpoint: "simulate", status: 503},
		{endpoint: "simulate", status: 404},
		{endpoint: "stats", status: 200, latency: 2 * time.Millisecond},
		{endpoint: "simulate", status: 0},
	}
	o := aggregate(samples)
	if o.Total != 8 || o.OK != 3 || o.Server5xx != 1 || o.Shed != 2 || o.Client4xx != 1 || o.Transport != 1 {
		t.Fatalf("counts wrong: %+v", o)
	}
	if o.CacheHits != 1 || o.CacheMisses != 1 {
		t.Errorf("cache counts wrong: hits %d misses %d", o.CacheHits, o.CacheMisses)
	}
	if o.EndpointHits["simulate"] != 7 || o.EndpointHits["stats"] != 1 {
		t.Errorf("endpoint hits wrong: %v", o.EndpointHits)
	}
	if o.Max != 30*time.Millisecond {
		t.Errorf("max latency %v", o.Max)
	}
	if got := o.ErrorRate(); got != 3.0/8.0 {
		t.Errorf("error rate %v", got)
	}
	if got := o.ShedRate(); got != 2.0/8.0 {
		t.Errorf("shed rate %v", got)
	}
	if got := o.HitRate(); got != 0.5 {
		t.Errorf("hit rate %v", got)
	}
}

func TestPercentiles(t *testing.T) {
	var lats []time.Duration
	for i := 1; i <= 100; i++ {
		lats = append(lats, time.Duration(i)*time.Millisecond)
	}
	p50, p95, p99, max := percentiles(lats)
	if p50 != 50*time.Millisecond || p95 != 95*time.Millisecond || p99 != 99*time.Millisecond || max != 100*time.Millisecond {
		t.Errorf("percentiles: p50=%v p95=%v p99=%v max=%v", p50, p95, p99, max)
	}
	if a, b, c, d := percentiles(nil); a != 0 || b != 0 || c != 0 || d != 0 {
		t.Error("empty percentiles must be zero")
	}
	one, _, _, m := percentiles([]time.Duration{7 * time.Millisecond})
	if one != 7*time.Millisecond || m != 7*time.Millisecond {
		t.Error("single-sample percentiles wrong")
	}
}

func f64(v float64) *float64 { return &v }
func i64(v int64) *int64     { return &v }
func boolp(v bool) *bool     { return &v }

func TestEvaluate(t *testing.T) {
	o := &Outcome{
		Total: 100, OK: 90, Server5xx: 2, Shed: 8,
		CacheHits: 60, CacheMisses: 30,
		P50: 5 * time.Millisecond, P95: 20 * time.Millisecond, P99: 40 * time.Millisecond,
		FaultsInjected: 12, Kills: 1, Restarts: 1,
		Recoveries: []time.Duration{900 * time.Millisecond},
		FinalReady: []string{"ok", "ok"},
	}
	a := Assertions{
		MaxP50:       10 * time.Millisecond,
		MaxP95:       30 * time.Millisecond,
		MaxP99:       50 * time.Millisecond,
		MaxErrorRate: f64(0.05),
		MinHitRate:   f64(0.5),
		MaxShedRate:  f64(0.10),
		MinShed:      i64(1),
		MaxRecovery:  2 * time.Second,
		MinInjected:  i64(10),
		Converged:    boolp(true),
		NoCorrupt:    boolp(true),
	}
	rs := Evaluate(a, o)
	if len(rs) != 11 {
		t.Fatalf("got %d results, want 11: %+v", len(rs), rs)
	}
	if !Passed(rs) {
		t.Fatalf("all assertions should hold: %+v", rs)
	}

	// Flip each dial past its bound and confirm exactly that assertion fails.
	flip := []struct {
		name   string
		mutate func(o *Outcome)
	}{
		{"latency.p50", func(o *Outcome) { o.P50 = 11 * time.Millisecond }},
		{"latency.p95", func(o *Outcome) { o.P95 = 31 * time.Millisecond }},
		{"latency.p99", func(o *Outcome) { o.P99 = 51 * time.Millisecond }},
		{"error_rate", func(o *Outcome) { o.Server5xx = 50 }},
		{"cache_hit_rate", func(o *Outcome) { o.CacheHits = 1 }},
		{"shed_rate", func(o *Outcome) { o.Shed = 50 }},
		{"shed_floor", func(o *Outcome) { o.Shed = 0 }},
		{"recovery", func(o *Outcome) { o.Recoveries = []time.Duration{3 * time.Second} }},
		{"faults_injected", func(o *Outcome) { o.FaultsInjected = 2 }},
		{"readyz_converged", func(o *Outcome) { o.FinalReady = []string{"ok", "degraded"} }},
		{"no_corrupt_artifacts", func(o *Outcome) { o.Quarantined = 3 }},
	}
	for _, tc := range flip {
		t.Run(tc.name, func(t *testing.T) {
			bad := *o
			bad.Recoveries = append([]time.Duration(nil), o.Recoveries...)
			bad.FinalReady = append([]string(nil), o.FinalReady...)
			tc.mutate(&bad)
			rs := Evaluate(a, &bad)
			failed := ""
			for _, r := range rs {
				if !r.OK {
					if failed != "" {
						t.Fatalf("more than one assertion failed: %s and %s", failed, r.Name)
					}
					failed = r.Name
				}
			}
			if failed != tc.name {
				t.Fatalf("failed assertion %q, want %q", failed, tc.name)
			}
		})
	}
}

// TestEvaluateRecoveryMissing: a restart with no observed recovery is a
// failure even when the worst observed recovery is under the bound.
func TestEvaluateRecoveryMissing(t *testing.T) {
	o := &Outcome{Restarts: 2, Recoveries: []time.Duration{100 * time.Millisecond}}
	rs := Evaluate(Assertions{MaxRecovery: time.Second}, o)
	if len(rs) != 1 || rs[0].OK {
		t.Fatalf("missing recovery must fail the recovery assertion: %+v", rs)
	}
}

// TestEvaluateConvergedEmpty: converged with zero daemons scraped is a
// failure, not a vacuous pass.
func TestEvaluateConvergedEmpty(t *testing.T) {
	rs := Evaluate(Assertions{Converged: boolp(true)}, &Outcome{})
	if len(rs) != 1 || rs[0].OK {
		t.Fatalf("empty final_readyz must fail convergence: %+v", rs)
	}
}

func testReport(t *testing.T) *Report {
	t.Helper()
	sc := testScenario(t)
	p := BuildPlan(sc, 42)
	o := &Outcome{
		Total: 50, OK: 48, Shed: 2,
		CacheHits: 20, CacheMisses: 10,
		P50: 2 * time.Millisecond, P95: 8 * time.Millisecond, P99: 9 * time.Millisecond, Max: 9 * time.Millisecond,
		FaultsInjected: 6, Kills: 1, Restarts: 1,
		Recoveries:    []time.Duration{500 * time.Millisecond},
		FinalReady:    []string{"ok"},
		FaultsByPoint: map[string]int64{"fs.read": 5},
	}
	tm := Timings{StartedAt: "2026-08-08T00:00:00Z", FinishedAt: "2026-08-08T00:00:12Z", Wall: 12 * time.Second, Startup: 300 * time.Millisecond}
	return NewReport(sc, 42, p, o, tm, []string{"one note"})
}

func TestReportJSON(t *testing.T) {
	r := testReport(t)
	if !r.Pass {
		t.Fatalf("report should pass: %+v", r.Assertions)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Plan.Fingerprint != r.Plan.Fingerprint || back.Seed != 42 || !back.Pass {
		t.Error("report does not survive a JSON round trip")
	}
}

// TestReportDeterministic: the Deterministic() projection of two
// reports from the same (scenario, seed) must be byte-identical even
// when the measured sections differ.
func TestReportDeterministic(t *testing.T) {
	a := testReport(t)
	b := testReport(t)
	b.Outcome.P99 = 99 * time.Millisecond // a different measured run
	b.Timings.Wall = 99 * time.Second
	b.TlssimNotes = []string{"different note"}
	aj, _ := json.Marshal(a.Deterministic())
	bj, _ := json.Marshal(b.Deterministic())
	if !bytes.Equal(aj, bj) {
		t.Fatalf("deterministic projections differ:\n%s\n%s", aj, bj)
	}
	// And the projection really dropped the measured data.
	if strings.Contains(string(aj), "99ms") || strings.Contains(string(aj), "one note") {
		t.Error("deterministic projection leaked measured content")
	}
}

func TestReportHTML(t *testing.T) {
	r := testReport(t)
	var buf bytes.Buffer
	if err := r.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	html := buf.String()
	for _, want := range []string{"tlssim · demo", "PASS", "latency.p99", "fs.read", "one note"} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML report missing %q", want)
		}
	}
}

func TestReportSummary(t *testing.T) {
	r := testReport(t)
	s := r.Summary()
	for _, want := range []string{"demo: PASS", "seed 42", "latency.p99", "[ok  ]"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	r.Assertions[0].OK = false
	r.Pass = false
	if s := r.Summary(); !strings.Contains(s, "FAIL") {
		t.Error("failed report summary lacks FAIL")
	}
}
