// Package scenario is the declarative stress-testing DSL and its
// execution engine: YAML scenario files declare client fleets generated
// from weighted templates, load shapes, a seeded failure-injection
// schedule, and assertions; the Runner spins up real tlsd daemons,
// replays the generated fleet against them, injects the scheduled
// faults (including real SIGKILLs), and evaluates the assertions into
// JSON and HTML reports. Everything derived from the scenario and a
// seed — the fleet, every client's request schedule, the fault
// timeline — is deterministic per seed; see docs/scenarios.md.
package scenario

import (
	"fmt"
	"strings"
)

// The repo deliberately has zero module dependencies, so scenarios are
// parsed by this file: a small, strict YAML subset with positional
// errors. Supported: nested mappings and sequences by two-or-more-space
// indentation, `- ` sequence items (scalar, block, or inline-mapping
// form), single- and double-quoted scalars, `# comments`, and one-line
// flow collections of scalars (`[a, b]`, `{k: v}`). Not supported (and
// rejected, never misparsed): tabs in indentation, anchors/aliases,
// multi-line block scalars, multi-document streams.

// nodeKind discriminates parsed YAML nodes.
type nodeKind int

const (
	scalarNode nodeKind = iota
	mapNode
	seqNode
)

// node is one parsed YAML value, annotated with its source line for
// positional error messages.
type node struct {
	kind nodeKind
	line int

	scalar string // scalarNode

	keys     []string // mapNode, in document order
	keyLines []int
	vals     []*node

	items []*node // seqNode
}

func (n *node) kindName() string {
	switch n.kind {
	case mapNode:
		return "mapping"
	case seqNode:
		return "sequence"
	default:
		return "scalar"
	}
}

// get returns the value for key in a mapping, or nil.
func (n *node) get(key string) *node {
	for i, k := range n.keys {
		if k == key {
			return n.vals[i]
		}
	}
	return nil
}

// parseError is a positional DSL error: file:line: message.
type parseError struct {
	file string
	line int
	msg  string
}

func (e *parseError) Error() string {
	if e.line > 0 {
		return fmt.Sprintf("%s:%d: %s", e.file, e.line, e.msg)
	}
	return fmt.Sprintf("%s: %s", e.file, e.msg)
}

func errAt(file string, line int, format string, args ...any) error {
	return &parseError{file: file, line: line, msg: fmt.Sprintf(format, args...)}
}

// srcLine is one significant (non-blank, non-comment) input line.
type srcLine struct {
	indent int
	text   string // content with indentation stripped
	num    int    // 1-based source line
}

// parseYAML parses a document into a node tree. file is used only for
// error messages.
func parseYAML(file string, data []byte) (*node, error) {
	var lines []srcLine
	for i, raw := range strings.Split(string(data), "\n") {
		num := i + 1
		if strings.Contains(raw, "\t") {
			if idx := strings.IndexFunc(raw, func(r rune) bool { return r != ' ' && r != '\t' }); idx < 0 || strings.Contains(raw[:idx], "\t") {
				return nil, errAt(file, num, "tab in indentation (use spaces)")
			}
		}
		text := stripComment(raw)
		trimmed := strings.TrimRight(text, " \r")
		body := strings.TrimLeft(trimmed, " ")
		if body == "" {
			continue
		}
		if body == "---" {
			if len(lines) > 0 {
				return nil, errAt(file, num, "multi-document streams are not supported")
			}
			continue
		}
		lines = append(lines, srcLine{indent: len(trimmed) - len(body), text: body, num: num})
	}
	if len(lines) == 0 {
		return nil, errAt(file, 0, "empty document")
	}
	n, next, err := parseBlock(file, lines, 0)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, errAt(file, lines[next].num, "unexpected content (indentation does not match any open block)")
	}
	return n, nil
}

// stripComment removes a trailing `# comment`, honoring quotes.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// parseBlock parses the block starting at lines[start]; every line of
// the block has the same indentation as lines[start], and the block
// ends at the first line indented less. Returns the node and the index
// of the first line after the block.
func parseBlock(file string, lines []srcLine, start int) (*node, int, error) {
	base := lines[start].indent
	if strings.HasPrefix(lines[start].text, "- ") || lines[start].text == "-" {
		return parseSequence(file, lines, start, base)
	}
	return parseMapping(file, lines, start, base)
}

func parseSequence(file string, lines []srcLine, start, base int) (*node, int, error) {
	n := &node{kind: seqNode, line: lines[start].num}
	i := start
	for i < len(lines) && lines[i].indent == base {
		ln := lines[i]
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			return nil, 0, errAt(file, ln.num, "expected another sequence item (`- ...`) at this indentation")
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		if rest == "" {
			// `-` alone: the item is the indented block below.
			if i+1 >= len(lines) || lines[i+1].indent <= base {
				return nil, 0, errAt(file, ln.num, "empty sequence item")
			}
			item, next, err := parseBlock(file, lines, i+1)
			if err != nil {
				return nil, 0, err
			}
			n.items = append(n.items, item)
			i = next
			continue
		}
		flow := strings.HasPrefix(rest, "[") || strings.HasPrefix(rest, "{")
		if _, _, ok := splitKey(rest); ok && !flow {
			// `- key: ...`: a mapping item whose first entry is inline.
			// Re-enter the mapping parser with the item's text treated as
			// a line at the key's actual column; following lines of the
			// same item sit at that deeper indentation.
			itemIndent := base + (len(ln.text) - len(rest))
			sub := []srcLine{{indent: itemIndent, text: rest, num: ln.num}}
			j := i + 1
			for j < len(lines) && lines[j].indent >= itemIndent {
				sub = append(sub, lines[j])
				j++
			}
			item, next, err := parseMapping(file, sub, 0, itemIndent)
			if err != nil {
				return nil, 0, err
			}
			if next != len(sub) {
				return nil, 0, errAt(file, sub[next].num, "unexpected indentation inside sequence item")
			}
			n.items = append(n.items, item)
			i = j
			continue
		}
		sc, err := parseInline(file, ln.num, rest)
		if err != nil {
			return nil, 0, err
		}
		n.items = append(n.items, sc)
		i++
	}
	if i < len(lines) && lines[i].indent > base {
		return nil, 0, errAt(file, lines[i].num, "unexpected indentation (deeper than the open sequence)")
	}
	return n, i, nil
}

func parseMapping(file string, lines []srcLine, start, base int) (*node, int, error) {
	n := &node{kind: mapNode, line: lines[start].num}
	i := start
	for i < len(lines) && lines[i].indent == base {
		ln := lines[i]
		key, rest, ok := splitKey(ln.text)
		if !ok {
			return nil, 0, errAt(file, ln.num, "expected `key: value` (got %q)", ln.text)
		}
		for _, existing := range n.keys {
			if existing == key {
				return nil, 0, errAt(file, ln.num, "duplicate key %q", key)
			}
		}
		var val *node
		if rest == "" {
			if i+1 < len(lines) && lines[i+1].indent > base {
				child, next, err := parseBlock(file, lines, i+1)
				if err != nil {
					return nil, 0, err
				}
				val = child
				n.keys = append(n.keys, key)
				n.keyLines = append(n.keyLines, ln.num)
				n.vals = append(n.vals, val)
				i = next
				continue
			}
			val = &node{kind: scalarNode, line: ln.num, scalar: ""}
		} else {
			v, err := parseInline(file, ln.num, rest)
			if err != nil {
				return nil, 0, err
			}
			val = v
		}
		n.keys = append(n.keys, key)
		n.keyLines = append(n.keyLines, ln.num)
		n.vals = append(n.vals, val)
		i++
	}
	if i < len(lines) && lines[i].indent > base {
		return nil, 0, errAt(file, lines[i].num, "unexpected indentation (no open block at this depth)")
	}
	return n, i, nil
}

// splitKey splits `key: value` / `key:`; the key may be quoted. ok is
// false when the line has no top-level unquoted colon-space separator.
func splitKey(s string) (key, rest string, ok bool) {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ':':
			if i+1 == len(s) {
				return unquoteScalar(strings.TrimSpace(s[:i])), "", i > 0
			}
			if s[i+1] == ' ' {
				return unquoteScalar(strings.TrimSpace(s[:i])), strings.TrimSpace(s[i+1:]), i > 0
			}
		}
	}
	return "", "", false
}

// parseInline parses an inline value: a scalar, `[a, b]`, or `{k: v}`.
func parseInline(file string, num int, s string) (*node, error) {
	s = strings.TrimSpace(s)
	switch {
	case strings.HasPrefix(s, "["):
		if !strings.HasSuffix(s, "]") {
			return nil, errAt(file, num, "unterminated flow sequence %q", s)
		}
		n := &node{kind: seqNode, line: num}
		for _, part := range splitFlow(s[1 : len(s)-1]) {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			n.items = append(n.items, &node{kind: scalarNode, line: num, scalar: unquoteScalar(part)})
		}
		return n, nil
	case strings.HasPrefix(s, "{"):
		if !strings.HasSuffix(s, "}") {
			return nil, errAt(file, num, "unterminated flow mapping %q", s)
		}
		n := &node{kind: mapNode, line: num}
		for _, part := range splitFlow(s[1 : len(s)-1]) {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			key, rest, ok := splitKey(part)
			if !ok {
				// Allow `key:value` (no space) inside flow mappings.
				if k, v, found := strings.Cut(part, ":"); found {
					key, rest, ok = unquoteScalar(strings.TrimSpace(k)), strings.TrimSpace(v), true
				}
			}
			if !ok || key == "" {
				return nil, errAt(file, num, "bad flow mapping entry %q", part)
			}
			for _, existing := range n.keys {
				if existing == key {
					return nil, errAt(file, num, "duplicate key %q", key)
				}
			}
			n.keys = append(n.keys, key)
			n.keyLines = append(n.keyLines, num)
			n.vals = append(n.vals, &node{kind: scalarNode, line: num, scalar: unquoteScalar(rest)})
		}
		return n, nil
	default:
		return &node{kind: scalarNode, line: num, scalar: unquoteScalar(s)}, nil
	}
}

// splitFlow splits a flow-collection body on top-level commas.
func splitFlow(s string) []string {
	var out []string
	var quote byte
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++
			}
		case c == '\'' || c == '"':
			quote = c
		case c == ',':
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}

// unquoteScalar strips one level of matched quotes, handling the two
// YAML quote styles (`”` escaping in single quotes, backslash escapes
// in double quotes).
func unquoteScalar(s string) string {
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'")
	}
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		body := s[1 : len(s)-1]
		var b strings.Builder
		for i := 0; i < len(body); i++ {
			c := body[i]
			if c == '\\' && i+1 < len(body) {
				i++
				switch body[i] {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				default:
					b.WriteByte(body[i])
				}
				continue
			}
			b.WriteByte(c)
		}
		return b.String()
	}
	return s
}
