package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

func testScenario(t *testing.T) *Scenario {
	t.Helper()
	sc, err := Parse("plan.yaml", []byte(validScenario))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestPlanDeterministic is the harness's core contract: the same
// (scenario, seed) always expands to a byte-identical plan, and a
// different seed expands to a different one.
func TestPlanDeterministic(t *testing.T) {
	sc := testScenario(t)
	a := BuildPlan(sc, 42)
	b := BuildPlan(sc, 42)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("same seed produced different plans")
	}
	if a.Fingerprint == "" || a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints differ: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
	c := BuildPlan(sc, 43)
	if c.Fingerprint == a.Fingerprint {
		t.Fatal("different seeds produced the same fingerprint")
	}
}

func TestPlanShape(t *testing.T) {
	sc := testScenario(t)
	p := BuildPlan(sc, 42)
	if len(p.Clients) != sc.Fleet.Clients {
		t.Fatalf("%d clients, want %d", len(p.Clients), sc.Fleet.Clients)
	}
	per := p.PerTemplate()
	if per["readers"]+per["pollers"] != sc.Fleet.Clients {
		t.Errorf("template counts %v do not cover the fleet", per)
	}
	if p.TotalRequests() == 0 {
		t.Fatal("no requests planned")
	}
	for _, cp := range p.Clients {
		if cp.Daemon != 0 {
			t.Errorf("client %d routed to daemon %d with count 1", cp.ID, cp.Daemon)
		}
		if cp.Start > sc.Fleet.Startup.Duration {
			t.Errorf("client %d starts at %v, after the %v startup window", cp.ID, cp.Start, sc.Fleet.Startup.Duration)
		}
		last := time.Duration(-1)
		for _, rq := range cp.Requests {
			if rq.At < cp.Start || rq.At > sc.Duration {
				t.Errorf("client %d request at %v outside [%v, %v]", cp.ID, rq.At, cp.Start, sc.Duration)
			}
			if rq.At <= last {
				t.Errorf("client %d requests not strictly increasing", cp.ID)
			}
			last = rq.At
			switch cp.Template {
			case "readers":
				if rq.Endpoint != "simulate" || rq.Bench != "gzip_comp" || (rq.Policy != "C" && rq.Policy != "E") {
					t.Errorf("reader request outside its template mix: %+v", rq)
				}
			case "pollers":
				if rq.Endpoint != "stats" || rq.Bench != "" {
					t.Errorf("poller request outside its template: %+v", rq)
				}
			}
		}
	}
	// Faults arrive sorted.
	for i := 1; i < len(p.Faults); i++ {
		if p.Faults[i].At < p.Faults[i-1].At {
			t.Error("fault schedule not sorted")
		}
	}
}

// TestPlanWeights checks the weighted template assignment lands near
// the declared mix on a fleet large enough for the law of large
// numbers.
func TestPlanWeights(t *testing.T) {
	sc := testScenario(t)
	sc.Fleet.Clients = 2000
	p := BuildPlan(sc, 1)
	per := p.PerTemplate()
	frac := float64(per["readers"]) / 2000
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("readers fraction %.3f, want ~0.75", frac)
	}
}

func TestStartOffsets(t *testing.T) {
	const n = 100
	w := 10 * time.Second
	cases := []struct {
		pattern string
		check   func(t *testing.T, offs []time.Duration)
	}{
		{"instant", func(t *testing.T, offs []time.Duration) {
			for _, o := range offs {
				if o != 0 {
					t.Fatal("instant startup must start everyone at 0")
				}
			}
		}},
		{"linear", func(t *testing.T, offs []time.Duration) {
			for i := 1; i < n; i++ {
				if offs[i] < offs[i-1] {
					t.Fatal("linear offsets must be non-decreasing")
				}
			}
			if offs[0] != 0 || offs[n-1] < 9*time.Second {
				t.Errorf("linear span wrong: first %v last %v", offs[0], offs[n-1])
			}
		}},
		{"exponential", func(t *testing.T, offs []time.Duration) {
			// Wave sizes double: the second half of the fleet joins in the
			// last wave, so the median offset is late.
			early, late := 0, 0
			for _, o := range offs {
				if o < w/2 {
					early++
				} else {
					late++
				}
			}
			if late <= early/2 {
				t.Errorf("exponential shape wrong: %d early, %d late", early, late)
			}
		}},
		{"wave", func(t *testing.T, offs []time.Duration) {
			distinct := map[time.Duration]int{}
			for _, o := range offs {
				distinct[o]++
			}
			if len(distinct) != 5 {
				t.Errorf("wave with 5 batches produced %d distinct offsets", len(distinct))
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.pattern, func(t *testing.T) {
			st := Startup{Pattern: tc.pattern, Duration: w, Batches: 5}
			offs := make([]time.Duration, n)
			for i := range offs {
				offs[i] = startOffset(st, i, n)
			}
			tc.check(t, offs)
		})
	}
}

func TestThinkDistributions(t *testing.T) {
	rng := clientRand(9, 0)
	// fixed: constant.
	if d := thinkTime(Think{Dist: "fixed", Mean: 50 * time.Millisecond}, rng); d != 50*time.Millisecond {
		t.Errorf("fixed think = %v", d)
	}
	// uniform: inside [min, max].
	for i := 0; i < 1000; i++ {
		d := thinkTime(Think{Dist: "uniform", Min: 10 * time.Millisecond, Max: 20 * time.Millisecond}, rng)
		if d < 10*time.Millisecond || d >= 21*time.Millisecond {
			t.Fatalf("uniform draw %v outside range", d)
		}
	}
	// exp: positive, clamped at 10× mean, mean roughly right.
	var sum time.Duration
	const draws = 5000
	mean := 20 * time.Millisecond
	for i := 0; i < draws; i++ {
		d := thinkTime(Think{Dist: "exp", Mean: mean}, rng)
		if d <= 0 || d > 10*mean {
			t.Fatalf("exp draw %v outside (0, 10*mean]", d)
		}
		sum += d
	}
	avg := sum / draws
	if avg < mean/2 || avg > 2*mean {
		t.Errorf("exp mean %v, want ≈%v", avg, mean)
	}
}

// TestClientRandIndependence: neighbouring clients must not share a
// stream (a naive seed+i construction correlates them).
func TestClientRandIndependence(t *testing.T) {
	a, b := clientRand(7, 0), clientRand(7, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Intn(1000) == b.Intn(1000) {
			same++
		}
	}
	if same > 8 {
		t.Errorf("neighbouring client streams agree on %d/64 draws", same)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	sc := testScenario(t)
	p := BuildPlan(sc, 3)
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back Plan
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Faults, back.Faults) || back.Fingerprint != p.Fingerprint {
		t.Error("plan does not survive a JSON round trip")
	}
}
