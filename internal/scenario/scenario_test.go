package scenario

import (
	"strings"
	"testing"
	"time"
)

// validScenario is a minimal scenario that passes validation; the
// error-case tests below mutate one aspect at a time.
const validScenario = `
name: demo
description: a valid scenario
duration: 10s
seed: 7
daemons:
  count: 1
  benchmarks: [gzip_comp, mcf]
  fault_surface: true
fleet:
  clients: 8
  startup:
    pattern: wave
    duration: 2s
    batches: 4
  templates:
    - name: readers
      weight: 0.75
      bench: [gzip_comp]
      policy: [C, E]
      think: {dist: exp, mean: 50ms}
    - name: pollers
      weight: 0.25
      endpoint: stats
      think: {dist: fixed, mean: 200ms}
faults:
  - at: 3s
    kind: point
    point: fs.read
    effect: latency
    delay: 20ms
    times: 5
  - at: 5s
    kind: kill
    restart: true
    delay: 100ms
assertions:
  max_p99: 5s
  max_error_rate: 0.1
  min_cache_hit_rate: 0.2
  max_recovery: 8s
  readyz_converged: true
  no_corrupt_artifacts: true
`

func TestParseValidScenario(t *testing.T) {
	sc, err := Parse("demo.yaml", []byte(validScenario))
	if err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	if sc.Name != "demo" || sc.Duration != 10*time.Second || sc.Seed != 7 {
		t.Errorf("header parsed wrong: %+v", sc)
	}
	if len(sc.Daemons.Benchmarks) != 2 || !sc.Daemons.FaultSurface {
		t.Errorf("daemons parsed wrong: %+v", sc.Daemons)
	}
	if sc.Fleet.Clients != 8 || sc.Fleet.Startup.Pattern != "wave" || len(sc.Fleet.Templates) != 2 {
		t.Errorf("fleet parsed wrong: %+v", sc.Fleet)
	}
	tpl := sc.Fleet.Templates[0]
	if tpl.Weight != 0.75 || tpl.Think.Dist != "exp" || tpl.Think.Mean != 50*time.Millisecond {
		t.Errorf("template parsed wrong: %+v", tpl)
	}
	if len(sc.Faults) != 2 || sc.Faults[0].Effect != "latency" || !sc.Faults[1].Restart {
		t.Errorf("faults parsed wrong: %+v", sc.Faults)
	}
	if sc.Assert.MaxP99 != 5*time.Second || *sc.Assert.MaxErrorRate != 0.1 || !*sc.Assert.Converged {
		t.Errorf("assertions parsed wrong: %+v", sc.Assert)
	}
}

// replace swaps one line fragment of the valid scenario.
func replace(t *testing.T, old, new string) string {
	t.Helper()
	if !strings.Contains(validScenario, old) {
		t.Fatalf("test bug: %q not in the valid scenario", old)
	}
	return strings.Replace(validScenario, old, new, 1)
}

// TestValidateErrors is the DSL's error-message contract: every way a
// scenario can be malformed fails `tlssim validate` with a message that
// names the file and, for syntactic errors, the line.
func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // required substring of the error
	}{
		{
			name: "unknown top-level key",
			src:  validScenario + "bogus: 1\n",
			want: `unknown key "bogus"`,
		},
		{
			name: "unknown nested key is positional",
			src:  replace(t, "  count: 1", "  coutn: 1"),
			want: `daemons: unknown key "coutn"`,
		},
		{
			name: "unknown template key",
			src:  replace(t, "      endpoint: stats", "      endpoitn: stats"),
			want: `template: unknown key "endpoitn"`,
		},
		{
			name: "bad duration",
			src:  replace(t, "duration: 10s", "duration: ten seconds"),
			want: "bad duration",
		},
		{
			name: "bad think duration",
			src:  replace(t, "{dist: exp, mean: 50ms}", "{dist: exp, mean: fast}"),
			want: "bad duration",
		},
		{
			name: "negative duration",
			src:  replace(t, "duration: 10s", "duration: -10s"),
			want: "negative duration",
		},
		{
			name: "weights must sum to 1",
			src:  replace(t, "weight: 0.75", "weight: 0.5"),
			want: "weights sum to 0.75, want exactly 1",
		},
		{
			name: "zero weight",
			src:  replace(t, "weight: 0.25", "weight: 0"),
			want: "weight must be > 0",
		},
		{
			name: "empty fleet: no clients",
			src:  replace(t, "clients: 8", "clients: 0"),
			want: "fleet.clients must be >= 1",
		},
		{
			name: "empty fleet: no templates",
			src: `
name: demo
duration: 5s
daemons:
  benchmarks: [mcf]
fleet:
  clients: 4
`,
			want: "fleet.templates must declare at least one template",
		},
		{
			name: "unknown benchmark",
			src:  replace(t, "benchmarks: [gzip_comp, mcf]", "benchmarks: [gzip_comp, mdf]"),
			want: `unknown benchmark "mdf"`,
		},
		{
			name: "template bench outside serving set",
			src:  replace(t, "bench: [gzip_comp]", "bench: [parser]"),
			want: "not in the daemon serving set",
		},
		{
			name: "unknown policy",
			src:  replace(t, "policy: [C, E]", "policy: [C, Z]"),
			want: `unknown policy "Z"`,
		},
		{
			name: "unknown startup pattern",
			src:  replace(t, "pattern: wave", "pattern: tsunami"),
			want: `pattern "tsunami" unknown`,
		},
		{
			name: "startup window exceeds scenario",
			src:  replace(t, "    duration: 2s", "    duration: 20s"),
			want: "exceeds the scenario duration",
		},
		{
			name: "unknown think dist",
			src:  replace(t, "{dist: exp, mean: 50ms}", "{dist: gaussian, mean: 50ms}"),
			want: `unknown think.dist "gaussian"`,
		},
		{
			name: "unknown endpoint",
			src:  replace(t, "endpoint: stats", "endpoint: figures"),
			want: `unknown endpoint "figures"`,
		},
		{
			name: "fault after the end",
			src:  replace(t, "  - at: 3s", "  - at: 30s"),
			want: "after the scenario duration",
		},
		{
			name: "fault target out of range",
			src:  replace(t, "    kind: kill", "    kind: kill\n    target: 3"),
			want: "target 3 out of range",
		},
		{
			name: "unknown fault kind",
			src:  replace(t, "kind: point", "kind: meteor"),
			want: `unknown kind "meteor"`,
		},
		{
			name: "unknown fault effect",
			src:  replace(t, "effect: latency", "effect: gravity"),
			want: `unknown effect "gravity"`,
		},
		{
			name: "latency effect needs delay",
			src:  replace(t, "    delay: 20ms\n", ""),
			want: "effect latency needs a positive delay",
		},
		{
			name: "point faults need the fault surface",
			src:  replace(t, "  fault_surface: true\n", ""),
			want: "daemons.fault_surface is false",
		},
		{
			name: "rate out of range",
			src:  replace(t, "max_error_rate: 0.1", "max_error_rate: 1.5"),
			want: "must be in [0, 1]",
		},
		{
			name: "recovery assertion without a restart",
			src:  replace(t, "    restart: true\n", ""),
			want: "no fault event restarts a daemon",
		},
		{
			name: "missing name",
			src:  replace(t, "name: demo\n", ""),
			want: "scenario needs a name",
		},
		{
			name: "missing duration",
			src:  replace(t, "duration: 10s\n", ""),
			want: "positive duration",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("bad.yaml", []byte(tc.src))
			if err == nil {
				t.Fatalf("scenario accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "bad.yaml") {
				t.Errorf("error %q does not name the file", err)
			}
		})
	}
}

// TestValidateErrorLines pins that syntactic errors carry the offending
// line number, not just the file.
func TestValidateErrorLines(t *testing.T) {
	src := "name: x\nduration: 5s\ndaemons:\n  benchmarks: [mcf]\n  tpyo: 1\n"
	_, err := Parse("pos.yaml", []byte(src))
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "pos.yaml:5") {
		t.Errorf("error %q does not carry pos.yaml:5", err)
	}
}

func TestSynthSeed(t *testing.T) {
	if s, ok := SynthSeed("synth-42"); !ok || s != 42 {
		t.Errorf("SynthSeed(synth-42) = %d, %v", s, ok)
	}
	for _, bad := range []string{"synth-", "synth-x", "gzip_comp", "synth"} {
		if _, ok := SynthSeed(bad); ok {
			t.Errorf("SynthSeed(%q) accepted", bad)
		}
	}
}

func TestSortedFaults(t *testing.T) {
	sc := &Scenario{Faults: []FaultEvent{
		{At: 5 * time.Second, Kind: "kill"},
		{At: time.Second, Kind: "point", Point: "a"},
		{At: time.Second, Kind: "point", Point: "b"},
	}}
	got := sc.SortedFaults()
	if got[0].Point != "a" || got[1].Point != "b" || got[2].Kind != "kill" {
		t.Errorf("SortedFaults order wrong: %+v", got)
	}
}
