package scenario

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *node {
	t.Helper()
	n, err := parseYAML("test.yaml", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return n
}

func TestYAMLMappingAndNesting(t *testing.T) {
	n := mustParse(t, `
name: demo            # trailing comment
description: "a: quoted # not a comment"
daemons:
  count: 2
  benchmarks: [go, mcf]
fleet:
  clients: 10
  startup: {pattern: wave, duration: 5s}
`)
	if n.kind != mapNode {
		t.Fatalf("root is %s, want mapping", n.kindName())
	}
	if got := n.get("name").scalar; got != "demo" {
		t.Errorf("name = %q", got)
	}
	if got := n.get("description").scalar; got != "a: quoted # not a comment" {
		t.Errorf("description = %q", got)
	}
	d := n.get("daemons")
	if d == nil || d.kind != mapNode {
		t.Fatal("daemons is not a mapping")
	}
	if got := d.get("count").scalar; got != "2" {
		t.Errorf("count = %q", got)
	}
	b := d.get("benchmarks")
	if b.kind != seqNode || len(b.items) != 2 || b.items[1].scalar != "mcf" {
		t.Errorf("benchmarks flow seq parsed wrong: %+v", b)
	}
	st := n.get("fleet").get("startup")
	if st.kind != mapNode || st.get("pattern").scalar != "wave" || st.get("duration").scalar != "5s" {
		t.Errorf("flow mapping parsed wrong: %+v", st)
	}
}

func TestYAMLSequences(t *testing.T) {
	n := mustParse(t, `
templates:
  - name: readers
    weight: 0.6
    think:
      dist: exp
      mean: 100ms
  - name: writers
    weight: 0.4
    bench:
      - go
      - mcf
plain:
  - a
  - b
`)
	ts := n.get("templates")
	if ts.kind != seqNode || len(ts.items) != 2 {
		t.Fatalf("templates: %+v", ts)
	}
	first := ts.items[0]
	if first.kind != mapNode || first.get("name").scalar != "readers" {
		t.Fatalf("first item: %+v", first)
	}
	if first.get("think").get("mean").scalar != "100ms" {
		t.Error("nested block inside sequence item parsed wrong")
	}
	second := ts.items[1]
	bench := second.get("bench")
	if bench.kind != seqNode || len(bench.items) != 2 || bench.items[0].scalar != "go" {
		t.Errorf("nested sequence inside item: %+v", bench)
	}
	plain := n.get("plain")
	if plain.kind != seqNode || len(plain.items) != 2 || plain.items[1].scalar != "b" {
		t.Errorf("scalar sequence: %+v", plain)
	}
}

func TestYAMLFlowItemsInSequence(t *testing.T) {
	n := mustParse(t, `
faults:
  - {at: 100ms, kind: point, point: fs.read}
  - {at: 400ms, kind: kill, target: 1}
  - [a, b]
`)
	fs := n.get("faults")
	if fs.kind != seqNode || len(fs.items) != 3 {
		t.Fatalf("faults: %+v", fs)
	}
	first := fs.items[0]
	if first.kind != mapNode || first.get("at").scalar != "100ms" || first.get("point").scalar != "fs.read" {
		t.Fatalf("flow mapping item: %+v", first)
	}
	if fs.items[1].get("target").scalar != "1" {
		t.Errorf("second flow item: %+v", fs.items[1])
	}
	third := fs.items[2]
	if third.kind != seqNode || len(third.items) != 2 || third.items[0].scalar != "a" {
		t.Errorf("flow sequence item: %+v", third)
	}
}

func TestYAMLQuoting(t *testing.T) {
	n := mustParse(t, `
single: 'it''s quoted'
double: "tab\there"
`)
	if got := n.get("single").scalar; got != "it's quoted" {
		t.Errorf("single = %q", got)
	}
	if got := n.get("double").scalar; got != "tab\there" {
		t.Errorf("double = %q", got)
	}
}

func TestYAMLErrorsArePositional(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error, including "test.yaml:<line>"
	}{
		{"tab indent", "a: 1\n\tb: 2\n", "test.yaml:2"},
		{"duplicate key", "a: 1\nb: 2\na: 3\n", "test.yaml:3: duplicate key"},
		{"bad line", "a: 1\nnot a kv pair\n", "test.yaml:2"},
		{"bad dedent", "a:\n    b: 1\n  c: 2\n", "test.yaml:3"},
		{"unterminated flow", "a: [1, 2\n", "test.yaml:1"},
		{"empty doc", "# only a comment\n", "empty document"},
		{"empty seq item", "a:\n  -\n", "test.yaml:2"},
		{"multi-doc", "a: 1\n---\nb: 2\n", "test.yaml:2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML("test.yaml", []byte(tc.src))
			if err == nil {
				t.Fatalf("parse succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestYAMLCommentStripping(t *testing.T) {
	if got := stripComment(`value # comment`); got != "value " {
		t.Errorf("stripComment = %q", got)
	}
	if got := stripComment(`"a # b" # comment`); got != `"a # b" ` {
		t.Errorf("stripComment quoted = %q", got)
	}
	if got := stripComment(`#leading`); got != "" {
		t.Errorf("stripComment leading = %q", got)
	}
	// A '#' not preceded by a space is data, not a comment.
	if got := stripComment(`color: red#1`); got != "color: red#1" {
		t.Errorf("stripComment inline hash = %q", got)
	}
}
