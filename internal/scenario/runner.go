package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"tlssync/internal/cluster"
	"tlssync/internal/httpretry"
	"tlssync/internal/progen"
)

// A Daemon is one tlsd under test, as the runner sees it: a base URL
// that may change across restarts, plus lifecycle controls. The real
// implementation (procDaemon, cmd/tlssim) launches tlsd processes and
// discovers their :0-assigned ports via -portfile; runner tests use
// in-process fakes.
type Daemon interface {
	// URL returns the current base URL (no trailing slash).
	URL() string
	// Kill SIGKILLs the process mid-flight — no drain, no cleanup.
	Kill() error
	// Restart relaunches the daemon over the same state directory, so
	// crash recovery (journal replay, disk rescan) runs for real.
	Restart() error
	// WaitReady blocks until /readyz answers 200 (ok or degraded).
	WaitReady(ctx context.Context) error
	// Close terminates the daemon and releases its resources.
	Close()
}

// RunOptions configures a scenario run.
type RunOptions struct {
	// StartDaemon launches daemon i of the scenario's fleet. cmd/tlssim
	// installs the real tlsd process launcher; tests install fakes.
	StartDaemon func(i int) (Daemon, error)
	// StartJoiner launches daemon i as a cluster JOINER: instead of
	// booting with the static membership it joins via seedURL (a live
	// member's base URL). Required when the scenario has join_node
	// events.
	StartJoiner func(i int, seedURL string) (Daemon, error)
	// Logf receives progress lines (nil: silent).
	Logf func(format string, args ...any)
	// Client issues the fleet's requests (nil: a default with a
	// per-request timeout derived from the scenario).
	Client *http.Client
	// ReadyTimeout bounds each daemon's startup/recovery wait
	// (<=0: 60s).
	ReadyTimeout time.Duration
}

// liveFleet tracks the daemons as membership events mutate the fleet
// mid-run: join_node appends a daemon, decommission_node marks one
// gone. Final scrapes walk live() so a retired node is neither probed
// nor counted against convergence.
type liveFleet struct {
	mu      sync.Mutex
	daemons []Daemon
	gone    []bool
}

func newLiveFleet(ds []Daemon) *liveFleet {
	return &liveFleet{daemons: ds, gone: make([]bool, len(ds))}
}

// add registers daemon i (growing the fleet for a joiner).
func (f *liveFleet) add(i int, d Daemon) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.daemons) <= i {
		f.daemons = append(f.daemons, nil)
		f.gone = append(f.gone, false)
	}
	f.daemons[i] = d
}

// markGone retires daemon i: it stays closable but is no longer live.
func (f *liveFleet) markGone(i int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if i < len(f.gone) {
		f.gone[i] = true
	}
}

// get returns daemon i, or nil when it never started or was retired.
func (f *liveFleet) get(i int) Daemon {
	f.mu.Lock()
	defer f.mu.Unlock()
	if i < 0 || i >= len(f.daemons) || f.gone[i] {
		return nil
	}
	return f.daemons[i]
}

// live returns the running fleet in index order.
func (f *liveFleet) live() []Daemon {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []Daemon
	for i, d := range f.daemons {
		if d != nil && !f.gone[i] {
			out = append(out, d)
		}
	}
	return out
}

// liveIndexes returns the indexes of the running fleet.
func (f *liveFleet) liveIndexes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []int
	for i, d := range f.daemons {
		if d != nil && !f.gone[i] {
			out = append(out, i)
		}
	}
	return out
}

// all returns every daemon ever started, for cleanup.
func (f *liveFleet) all() []Daemon {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Daemon, 0, len(f.daemons))
	for _, d := range f.daemons {
		if d != nil {
			out = append(out, d)
		}
	}
	return out
}

// Run executes a validated scenario against real daemons: expands the
// deterministic plan, starts the fleet, replays every client's request
// schedule in wall-clock time, drives the fault timeline, scrapes the
// survivors, and evaluates the assertions. The returned report's plan
// section (and fingerprint) is byte-stable per (scenario, seed); the
// measured sections are the run's evidence.
func Run(sc *Scenario, seed uint64, opts RunOptions) (*Report, error) {
	if opts.StartDaemon == nil {
		return nil, fmt.Errorf("scenario: RunOptions.StartDaemon is required")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := opts.Client
	if client == nil {
		to := sc.Daemons.ReqTimeout
		if to <= 0 {
			to = 60 * time.Second
		}
		client = &http.Client{Timeout: to + 5*time.Second}
	}
	readyTO := opts.ReadyTimeout
	if readyTO <= 0 {
		readyTO = 60 * time.Second
	}

	plan := BuildPlan(sc, seed)
	logf("plan: %d clients, %d requests, %d faults (fingerprint %.16s…)",
		len(plan.Clients), plan.TotalRequests(), len(plan.Faults), plan.Fingerprint)

	startedAt := time.Now()

	// Start the fleet. Joiners (join_node events) start later, through
	// the fault timeline.
	daemons := make([]Daemon, sc.Daemons.Count)
	fl := newLiveFleet(daemons)
	defer func() {
		for _, d := range fl.all() {
			d.Close()
		}
	}()
	for i := range daemons {
		d, err := opts.StartDaemon(i)
		if err != nil {
			return nil, fmt.Errorf("scenario: daemon %d: %w", i, err)
		}
		daemons[i] = d
		fl.add(i, d)
	}
	readyCtx, cancelReady := context.WithTimeout(context.Background(), readyTO)
	for i, d := range daemons {
		if err := d.WaitReady(readyCtx); err != nil {
			cancelReady()
			return nil, fmt.Errorf("scenario: daemon %d never became ready: %w", i, err)
		}
	}
	cancelReady()
	startup := time.Since(startedAt)
	logf("fleet: %d daemon(s) ready in %v", len(daemons), startup.Round(time.Millisecond))

	// t0 is the run's virtual-time origin: every planned offset is
	// replayed relative to it. A client that falls behind (a slow
	// response ate its think time) issues immediately — schedules are
	// earliest-start times, not exact timestamps.
	t0 := time.Now()
	var notes syncNotes

	// Fault timeline.
	outcome := &Outcome{FaultsByPoint: map[string]int64{}, EndpointHits: map[string]int64{}}
	var faultWG sync.WaitGroup
	var om sync.Mutex // guards outcome's fault/recovery fields during the run
	faultWG.Add(1)
	go func() {
		defer faultWG.Done()
		runFaults(plan.Faults, fl, opts.StartJoiner, t0, readyTO, client, &om, outcome, &notes, logf)
	}()

	// Client fleet: one goroutine per client, each with its own sample
	// slice (no shared state on the hot path). Retry jitter draws from a
	// per-client generator — runtime-only randomness, so the plan (the
	// determinism contract) is untouched; the seed salt differs from the
	// planner's so retry draws never correlate with planned schedules.
	perClient := make([][]sample, len(plan.Clients))
	var clientWG sync.WaitGroup
	for i := range plan.Clients {
		clientWG.Add(1)
		go func(i int) {
			defer clientWG.Done()
			pol := retryPolicy(sc.Fleet.Retry, seed, i)
			perClient[i] = runClient(&plan.Clients[i], daemons, t0, client, pol)
		}(i)
	}
	clientWG.Wait()
	faultWG.Wait()
	wall := time.Since(startedAt)

	// Aggregate traffic, then graft the fault/recovery fields collected
	// during the run and the final scrapes on top.
	var samples []sample
	for _, s := range perClient {
		samples = append(samples, s...)
	}
	agg := aggregate(samples)
	agg.FaultsByPoint = outcome.FaultsByPoint
	agg.Kills = outcome.Kills
	agg.Restarts = outcome.Restarts
	agg.Recoveries = outcome.Recoveries
	agg.Joins = outcome.Joins
	agg.Decommissions = outcome.Decommissions

	// Settle window: give the fleet a bounded chance to converge —
	// heartbeats fold membership views, the anti-entropy sweeper heals
	// replica holes, journals drain — before the verdict scrape.
	// Runtime-only; the deterministic report sections are untouched.
	if sc.Daemons.Cluster() && sc.Assert.Settle > 0 {
		settleStart := time.Now()
		var quiet syncNotes // polling noise is not run evidence
		for {
			probe := &Outcome{}
			scrapeCluster(fl.live(), client, probe, &quiet)
			if probe.ClusterConverged && probe.ReplicationConverged && probe.PendingJobs == 0 {
				logf("settle: fleet converged in %v", time.Since(settleStart).Round(time.Millisecond))
				break
			}
			if time.Since(settleStart) >= sc.Assert.Settle {
				logf("settle: window %v exhausted without convergence", sc.Assert.Settle)
				break
			}
			time.Sleep(250 * time.Millisecond)
		}
	}

	scrapeDaemons(fl.live(), client, agg, &notes)
	if sc.Daemons.Cluster() {
		scrapeCluster(fl.live(), client, agg, &notes)
	}
	agg.FaultsInjected = agg.Kills
	for _, n := range agg.FaultsByPoint {
		agg.FaultsInjected += n
	}

	t := Timings{
		StartedAt:  startedAt.UTC().Format(time.RFC3339),
		FinishedAt: time.Now().UTC().Format(time.RFC3339),
		Wall:       wall,
		Startup:    startup,
	}
	rep := NewReport(sc, seed, plan, agg, t, notes.take())
	logf("run: %d requests in %v — %s", agg.Total, wall.Round(time.Millisecond), verdict(rep))
	return rep, nil
}

func verdict(r *Report) string {
	if r.Pass {
		return "PASS"
	}
	return "FAIL"
}

// syncNotes collects non-fatal runner warnings.
type syncNotes struct {
	mu    sync.Mutex
	notes []string
}

func (n *syncNotes) add(format string, args ...any) {
	n.mu.Lock()
	n.notes = append(n.notes, fmt.Sprintf(format, args...))
	n.mu.Unlock()
}

func (n *syncNotes) take() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.notes
}

// retryPolicy builds client i's httpretry policy from the fleet spec.
// A zero-valued spec returns a Max=0 policy, which issue treats as
// plain single-attempt Gets.
func retryPolicy(rs RetrySpec, seed uint64, i int) httpretry.Policy {
	if rs.Max <= 0 {
		return httpretry.Policy{}
	}
	rnd := progen.NewRand(seed ^ (uint64(i)+1)*0x517cc1b727220a95)
	return httpretry.Policy{
		Max:    rs.Max,
		Base:   rs.Base,
		Cap:    rs.Cap,
		Jitter: func() float64 { return float64(rnd.Next()>>11) / float64(uint64(1)<<53) },
	}
}

// runClient replays one client's planned request schedule against its
// daemon. Offsets are earliest-start times: the client sleeps until
// each request's planned time, or issues immediately when already past
// it.
func runClient(cp *ClientPlan, daemons []Daemon, t0 time.Time, client *http.Client, pol httpretry.Policy) []sample {
	d := daemons[cp.Daemon]
	out := make([]sample, 0, len(cp.Requests))
	for i := range cp.Requests {
		rq := &cp.Requests[i]
		if wait := time.Until(t0.Add(rq.At)); wait > 0 {
			time.Sleep(wait)
		}
		out = append(out, issue(client, d.URL(), rq, pol))
	}
	return out
}

// issue performs one planned request and records its outcome. With a
// retry budget (fleet.retry), shed answers (429/503, honoring
// Retry-After) and transient failures back off and re-issue; the
// sample's latency then covers the whole exchange, backoffs included,
// and its status is the final attempt's answer.
func issue(client *http.Client, base string, rq *RequestPlan, pol httpretry.Policy) sample {
	var url string
	switch rq.Endpoint {
	case "simulate":
		url = fmt.Sprintf("%s/simulate?bench=%s&policy=%s", base, rq.Bench, rq.Policy)
	case "stats":
		url = base + "/stats"
	case "readyz":
		url = base + "/readyz"
	}
	s := sample{endpoint: rq.Endpoint}
	start := time.Now()
	var resp *http.Response
	var err error
	if pol.Max > 0 {
		var res httpretry.Result
		resp, res, err = httpretry.Get(client, url, pol)
		s.retries = res.Retries
		s.exhausted = res.Exhausted
	} else {
		resp, err = client.Get(url)
	}
	s.latency = time.Since(start)
	if err != nil {
		return s // status 0: transport failure (daemon down, timeout)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	s.status = resp.StatusCode
	if hdr := resp.Header.Get("X-Tlsd-Cache"); hdr != "" {
		s.cacheHdr = true
		s.cacheHit = hdr == "hit"
	}
	return s
}

// runFaults drives the scenario's fault timeline: arming point faults
// over the /_faults surface, SIGKILLing (and restarting) daemons, and
// executing membership actions (join, decommission, rolling restart)
// at their scheduled offsets. Events are sorted by At, so a plain
// sleep walks the timeline.
func runFaults(events []FaultEvent, fl *liveFleet, startJoiner func(int, string) (Daemon, error),
	t0 time.Time, readyTO time.Duration,
	client *http.Client, om *sync.Mutex, o *Outcome, notes *syncNotes, logf func(string, ...any)) {
	// Heals run off-timeline (a 10s partition healing at +8s must not
	// stall the +9s event), but must land before the final scrape reads
	// the fleet's converged state.
	var healWG sync.WaitGroup
	defer healWG.Wait()
	for i := range events {
		ev := &events[i]
		if wait := time.Until(t0.Add(ev.At)); wait > 0 {
			time.Sleep(wait)
		}
		if ev.Kind == "join_node" {
			joinNode(ev, fl, startJoiner, readyTO, om, o, notes, logf)
			continue
		}
		if ev.Kind == "rolling_restart" {
			rollingRestart(ev, fl, readyTO, om, o, notes, logf)
			continue
		}
		d := fl.get(ev.Target)
		if d == nil {
			notes.add("fault at %v: daemon %d is not running (never joined, or decommissioned)", ev.At, ev.Target)
			continue
		}
		switch ev.Kind {
		case "point":
			spec := ev.ArmSpecString()
			if err := armFault(client, d.URL(), spec); err != nil {
				notes.add("fault at %v: arming %q on daemon %d failed: %v", ev.At, spec, ev.Target, err)
				continue
			}
			logf("fault: armed %q on daemon %d at +%v", spec, ev.Target, ev.At)
		case "partition", "slow_peer":
			spec := ev.ArmSpecString()
			if err := armFault(client, d.URL(), spec); err != nil {
				notes.add("fault at %v: %s of daemon %d failed to arm: %v", ev.At, ev.Kind, ev.Target, err)
				continue
			}
			logf("fault: %s on daemon %d at +%v (%q)", ev.Kind, ev.Target, ev.At, spec)
			if ev.Heal <= 0 {
				continue
			}
			healWG.Add(1)
			go func(ev *FaultEvent, base string) {
				defer healWG.Done()
				time.Sleep(ev.Heal)
				if err := healClusterFaults(client, base); err != nil {
					notes.add("fault at %v: healing %s on daemon %d failed: %v", ev.At, ev.Kind, ev.Target, err)
					return
				}
				logf("fault: healed %s on daemon %d at +%v", ev.Kind, ev.Target, ev.At+ev.Heal)
			}(ev, d.URL())
		case "kill":
			if err := d.Kill(); err != nil {
				notes.add("fault at %v: kill of daemon %d failed: %v", ev.At, ev.Target, err)
				continue
			}
			om.Lock()
			o.Kills++
			om.Unlock()
			logf("fault: SIGKILLed daemon %d at +%v", ev.Target, ev.At)
			if !ev.Restart {
				continue
			}
			if ev.Delay > 0 {
				time.Sleep(ev.Delay)
			}
			restartStart := time.Now()
			if err := d.Restart(); err != nil {
				notes.add("fault at %v: restart of daemon %d failed: %v", ev.At, ev.Target, err)
				continue
			}
			om.Lock()
			o.Restarts++
			om.Unlock()
			ctx, cancel := context.WithTimeout(context.Background(), readyTO)
			err := d.WaitReady(ctx)
			cancel()
			if err != nil {
				notes.add("fault at %v: daemon %d never recovered: %v", ev.At, ev.Target, err)
				continue
			}
			rec := time.Since(restartStart)
			om.Lock()
			o.Recoveries = append(o.Recoveries, rec)
			om.Unlock()
			logf("fault: daemon %d recovered in %v", ev.Target, rec.Round(time.Millisecond))
		case "decommission_node":
			// The drain inside tlsd can take up to its 10s deadline plus
			// the artifact handoff; give the call its own generous client.
			dc := &http.Client{Timeout: 30 * time.Second}
			resp, err := dc.Post(d.URL()+"/cluster/decommission", "application/json", nil)
			if err != nil {
				notes.add("fault at %v: decommission of daemon %d failed: %v", ev.At, ev.Target, err)
				continue
			}
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				notes.add("fault at %v: decommission of daemon %d answered %d: %s",
					ev.At, ev.Target, resp.StatusCode, strings.TrimSpace(string(body)))
				continue
			}
			// The node has left the member set and handed off its
			// artifacts; retire the process and stop scraping it.
			fl.markGone(ev.Target)
			_ = d.Kill()
			om.Lock()
			o.Decommissions++
			om.Unlock()
			logf("fault: daemon %d decommissioned at +%v", ev.Target, ev.At)
		}
	}
}

// joinNode starts daemon ev.Target as a joiner seeded from the first
// live member and folds it into the fleet once ready.
func joinNode(ev *FaultEvent, fl *liveFleet, startJoiner func(int, string) (Daemon, error),
	readyTO time.Duration, om *sync.Mutex, o *Outcome, notes *syncNotes, logf func(string, ...any)) {
	if startJoiner == nil {
		notes.add("fault at %v: join_node needs a StartJoiner launcher (RunOptions.StartJoiner is nil)", ev.At)
		return
	}
	live := fl.live()
	if len(live) == 0 {
		notes.add("fault at %v: join_node has no live member to join via", ev.At)
		return
	}
	d, err := startJoiner(ev.Target, live[0].URL())
	if err != nil {
		notes.add("fault at %v: starting joiner %d failed: %v", ev.At, ev.Target, err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), readyTO)
	err = d.WaitReady(ctx)
	cancel()
	if err != nil {
		d.Close()
		notes.add("fault at %v: joiner %d never became ready: %v", ev.At, ev.Target, err)
		return
	}
	fl.add(ev.Target, d)
	om.Lock()
	o.Joins++
	om.Unlock()
	logf("fault: daemon %d joined the cluster at +%v", ev.Target, ev.At)
}

// rollingRestart kills and restarts every live node in sequence — the
// upgrade drill: at most one node is down at any moment, and each must
// recover (journal replay, re-fenced adoptions, membership catch-up)
// before the next goes down.
func rollingRestart(ev *FaultEvent, fl *liveFleet, readyTO time.Duration,
	om *sync.Mutex, o *Outcome, notes *syncNotes, logf func(string, ...any)) {
	idxs := fl.liveIndexes()
	logf("fault: rolling restart of %d node(s) at +%v", len(idxs), ev.At)
	for _, i := range idxs {
		d := fl.get(i)
		if d == nil {
			continue // decommissioned mid-roll
		}
		if err := d.Kill(); err != nil {
			notes.add("fault at %v: rolling restart: kill of daemon %d failed: %v", ev.At, i, err)
			continue
		}
		om.Lock()
		o.Kills++
		om.Unlock()
		if ev.Delay > 0 {
			time.Sleep(ev.Delay)
		}
		restartStart := time.Now()
		if err := d.Restart(); err != nil {
			notes.add("fault at %v: rolling restart: restart of daemon %d failed: %v", ev.At, i, err)
			continue
		}
		om.Lock()
		o.Restarts++
		om.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), readyTO)
		err := d.WaitReady(ctx)
		cancel()
		if err != nil {
			notes.add("fault at %v: rolling restart: daemon %d never recovered: %v", ev.At, i, err)
			continue
		}
		rec := time.Since(restartStart)
		om.Lock()
		o.Recoveries = append(o.Recoveries, rec)
		om.Unlock()
		logf("fault: rolling restart: daemon %d back in %v", i, rec.Round(time.Millisecond))
	}
}

// armFault POSTs one spec to a daemon's /_faults/arm endpoint.
func armFault(client *http.Client, base, spec string) error {
	resp, err := client.Post(base+"/_faults/arm?spec="+url.QueryEscape(spec), "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("arm answered %d", resp.StatusCode)
	}
	return nil
}

// healClusterFaults disarms the cluster fault points (point-wise, so
// fired counters survive as evidence the fault actually bit).
func healClusterFaults(client *http.Client, base string) error {
	q := ""
	for _, pt := range ClusterFaultPoints {
		if q != "" {
			q += "&"
		}
		q += "point=" + url.QueryEscape(pt)
	}
	resp, err := client.Post(base+"/_faults/reset?"+q, "", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("reset answered %d", resp.StatusCode)
	}
	return nil
}

// scrapeDaemons collects each surviving daemon's final state: /readyz
// status (convergence + corruption evidence) and, where the fault
// surface is up, the /_faults fired counters — the proof the chaos
// schedule actually executed.
func scrapeDaemons(daemons []Daemon, client *http.Client, o *Outcome, notes *syncNotes) {
	for i, d := range daemons {
		var rz struct {
			Status      string `json:"status"`
			Quarantined int64  `json:"quarantined"`
			DiskErrors  int64  `json:"disk_errors"`
			Journal     *struct {
				AppendErrors int64 `json:"append_errors"`
			} `json:"journal"`
		}
		if err := getJSON(client, d.URL()+"/readyz", &rz); err != nil {
			notes.add("final scrape: daemon %d /readyz unreachable: %v", i, err)
			o.FinalReady = append(o.FinalReady, "unreachable")
		} else {
			o.FinalReady = append(o.FinalReady, rz.Status)
			o.Quarantined += rz.Quarantined
			o.DiskErrors += rz.DiskErrors
			if rz.Journal != nil {
				o.JournalBad += rz.Journal.AppendErrors
			}
		}
		var fs struct {
			Fired map[string]int64 `json:"fired"`
		}
		if err := getJSON(client, d.URL()+"/_faults", &fs); err == nil {
			keys := make([]string, 0, len(fs.Fired))
			for pt := range fs.Fired {
				keys = append(keys, pt)
			}
			sort.Strings(keys)
			for _, pt := range keys {
				o.FaultsByPoint[pt] += fs.Fired[pt]
			}
		}
	}
}

// scrapeCluster collects the fleet's final cluster view from every
// node's /cluster endpoint: per-key execution counters summed across
// the fleet (>1 for any key = double-compute), adoption ledgers,
// journal backlogs, and whether every node converged back to a full
// quorum view. This is the evidence the cluster assertions judge.
func scrapeCluster(daemons []Daemon, client *http.Client, o *Outcome, notes *syncNotes) {
	execTotals := map[string]int64{}
	execWhere := map[string][]string{}
	converged := true
	membersAgree := true
	var memberNodes []string // the first reachable node's member set
	var memberEpoch uint64
	var vnodes, replicas int
	haveView := false
	holdings := map[string]map[string]bool{} // node id -> keys it stores
	for i, d := range daemons {
		var cl struct {
			Cluster struct {
				Self        string   `json:"self"`
				Nodes       []string `json:"nodes"`
				MemberEpoch uint64   `json:"member_epoch"`
				VNodes      int      `json:"vnodes"`
				Replicas    int      `json:"replicas"`
				Quorum      bool     `json:"quorum"`
				Alive       int      `json:"alive"`
				Adoptions   []struct {
					Key  string `json:"key"`
					Done bool   `json:"done"`
				} `json:"adoptions"`
			} `json:"cluster"`
			Executions     map[string]int64 `json:"executions"`
			JournalPending int64            `json:"journal_pending"`
			StoreKeys      []string         `json:"store_keys"`
		}
		if err := getJSON(client, d.URL()+"/cluster", &cl); err != nil {
			notes.add("final scrape: daemon %d /cluster unreachable: %v", i, err)
			o.FinalCluster = append(o.FinalCluster, fmt.Sprintf("n%d: unreachable", i))
			converged = false
			continue
		}
		// Membership agreement: every live node must report the same
		// member set at the same epoch, or the views never converged.
		if !haveView {
			haveView = true
			memberNodes = cl.Cluster.Nodes
			memberEpoch = cl.Cluster.MemberEpoch
			vnodes = cl.Cluster.VNodes
			replicas = cl.Cluster.Replicas
		} else if cl.Cluster.MemberEpoch != memberEpoch ||
			strings.Join(cl.Cluster.Nodes, ",") != strings.Join(memberNodes, ",") {
			membersAgree = false
			notes.add("cluster: %s disagrees on membership: epoch %d %v (vs epoch %d %v)",
				cl.Cluster.Self, cl.Cluster.MemberEpoch, cl.Cluster.Nodes, memberEpoch, memberNodes)
		}
		keys := map[string]bool{}
		for _, k := range cl.StoreKeys {
			keys[k] = true
		}
		holdings[cl.Cluster.Self] = keys
		for k, n := range cl.Executions {
			execTotals[k] += n
			execWhere[k] = append(execWhere[k], fmt.Sprintf("%s×%d", cl.Cluster.Self, n))
		}
		for _, a := range cl.Cluster.Adoptions {
			o.Adoptions++
			if a.Done {
				o.AdoptionsDone++
			}
		}
		o.PendingJobs += cl.JournalPending
		nodeOK := cl.Cluster.Quorum && cl.Cluster.Alive == len(cl.Cluster.Nodes)
		converged = converged && nodeOK
		o.FinalCluster = append(o.FinalCluster,
			fmt.Sprintf("%s: alive %d/%d quorum=%v pending=%d epoch=%d keys=%d",
				cl.Cluster.Self, cl.Cluster.Alive, len(cl.Cluster.Nodes), cl.Cluster.Quorum,
				cl.JournalPending, cl.Cluster.MemberEpoch, len(cl.StoreKeys)))
	}
	for k, n := range execTotals {
		if n > o.MaxKeyExecutions {
			o.MaxKeyExecutions = n
		}
		if n > 1 {
			o.DoubleExecuted++
			// Name the offenders: "which key, on which nodes" is the
			// first question a failing max_key_executions assertion asks.
			sort.Strings(execWhere[k])
			notes.add("cluster: key %s executed %d times (%s)", k, n, strings.Join(execWhere[k], " "))
		}
	}
	o.ClusterConverged = converged && membersAgree && len(daemons) > 0

	// Replica-placement audit: rebuild the agreed ring and check every
	// artifact anyone holds sits on every member of its replica chain.
	// A hole is one missing copy; an orphan has NO copy on its chain
	// (routing's pull-on-miss would never find it). Dead or missing
	// chain members count as holes — convergence means the data really
	// is where the ring says.
	o.ReplicationConverged = false
	if haveView && membersAgree {
		ring := cluster.NewRing(memberNodes, vnodes)
		union := map[string]bool{}
		for _, keys := range holdings {
			for k := range keys {
				union[k] = true
			}
		}
		sortedKeys := make([]string, 0, len(union))
		for k := range union {
			sortedKeys = append(sortedKeys, k)
		}
		sort.Strings(sortedKeys)
		for _, k := range sortedKeys {
			onChain := false
			for _, id := range ring.Successors(k, replicas+1) {
				if holdings[id][k] {
					onChain = true
				} else {
					o.ReplicaHoles++
				}
			}
			if !onChain {
				o.OrphanedArtifacts++
				notes.add("cluster: artifact %s has no copy on its replica chain %v", k, ring.Successors(k, replicas+1))
			}
		}
		o.ReplicationConverged = o.ReplicaHoles == 0
	}
}

// getJSON fetches and decodes one JSON endpoint. Non-2xx statuses are
// not errors here: /readyz answers 503 while draining and its body is
// still the scrape.
func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
