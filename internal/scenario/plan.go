package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"math"
	"time"

	"tlssync/internal/progen"
)

// Plan is the fully expanded, deterministic execution plan for one
// (scenario, seed) pair: every client, every request each client will
// issue (with its virtual time offset), and the fault timeline. Two
// runs of the same scenario with the same seed produce byte-identical
// plans — this is the determinism contract the stress harness inherits
// from the build pipeline (PR 5), and Fingerprint is its witness.
type Plan struct {
	Scenario string        `json:"scenario"`
	Seed     uint64        `json:"seed"`
	Duration time.Duration `json:"duration"`
	Clients  []ClientPlan  `json:"clients"`
	Faults   []FaultEvent  `json:"faults,omitempty"` // sorted by At
	// Fingerprint is the SHA-256 of the plan's canonical JSON (with the
	// fingerprint field itself empty). Reports carry it so `tlssim diff`
	// can prove two runs replayed the same plan.
	Fingerprint string `json:"fingerprint"`
}

// ClientPlan is one synthetic client: which template stamped it, which
// daemon it talks to, when it starts, and its full request schedule.
type ClientPlan struct {
	ID       int           `json:"id"`
	Template string        `json:"template"`
	Daemon   int           `json:"daemon"` // target daemon index
	Start    time.Duration `json:"start"`  // virtual start offset
	Requests []RequestPlan `json:"requests"`
}

// RequestPlan is one planned request.
type RequestPlan struct {
	At       time.Duration `json:"at"` // virtual offset from run start
	Endpoint string        `json:"endpoint"`
	Bench    string        `json:"bench,omitempty"`
	Policy   string        `json:"policy,omitempty"`
}

// TotalRequests counts the planned requests across the fleet.
func (p *Plan) TotalRequests() int {
	n := 0
	for i := range p.Clients {
		n += len(p.Clients[i].Requests)
	}
	return n
}

// PerTemplate returns client counts per template name.
func (p *Plan) PerTemplate() map[string]int {
	out := make(map[string]int)
	for i := range p.Clients {
		out[p.Clients[i].Template]++
	}
	return out
}

// BuildPlan expands a validated scenario into its deterministic plan.
// seed overrides the scenario's own seed field.
//
// Determinism: one root RNG is derived from the seed, and every client
// gets an independent sub-RNG derived from (seed, client index) — a
// fan-out, not a shared stream — so the plan does not depend on
// iteration order or on how many requests another client generates.
// The same construction keeps the parallel build pipeline byte-stable
// at any -j.
func BuildPlan(sc *Scenario, seed uint64) *Plan {
	p := &Plan{
		Scenario: sc.Name,
		Seed:     seed,
		Duration: sc.Duration,
		Faults:   sc.SortedFaults(),
	}
	cum := cumulativeWeights(sc.Fleet.Templates)
	for i := 0; i < sc.Fleet.Clients; i++ {
		rng := clientRand(seed, i)
		t := &sc.Fleet.Templates[pickWeighted(cum, rng)]
		cp := ClientPlan{
			ID:       i,
			Template: t.Name,
			Daemon:   i % sc.Daemons.Count,
			Start:    startOffset(sc.Fleet.Startup, i, sc.Fleet.Clients),
		}
		benchSet := t.Bench
		if len(benchSet) == 0 {
			benchSet = sc.Daemons.Benchmarks
		}
		policySet := t.Policy
		if len(policySet) == 0 {
			policySet = []string{"C"}
		}
		at := cp.Start
		for at <= sc.Duration {
			if t.Requests > 0 && len(cp.Requests) >= t.Requests {
				break
			}
			rp := RequestPlan{At: at, Endpoint: t.Endpoint}
			if t.Endpoint == "simulate" {
				rp.Bench = benchSet[rng.Intn(len(benchSet))]
				rp.Policy = policySet[rng.Intn(len(policySet))]
			}
			cp.Requests = append(cp.Requests, rp)
			at += thinkTime(t.Think, rng)
		}
		p.Clients = append(p.Clients, cp)
	}
	p.Fingerprint = p.fingerprint()
	return p
}

// fingerprint hashes the plan's canonical JSON with Fingerprint empty.
func (p *Plan) fingerprint() string {
	saved := p.Fingerprint
	p.Fingerprint = ""
	data, err := json.Marshal(p)
	p.Fingerprint = saved
	if err != nil {
		// Plan is plain data; Marshal cannot fail. Keep the error path
		// anyway rather than panicking inside report generation.
		return "unfingerprintable"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// clientRand derives client i's independent RNG from the run seed.
// The multiplier decorrelates neighbouring indices (splitmix-style);
// progen.Rand then scrambles the state further on every draw.
func clientRand(seed uint64, i int) *progen.Rand {
	return progen.NewRand(seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
}

// cumulativeWeights precomputes the template CDF.
func cumulativeWeights(ts []Template) []float64 {
	cum := make([]float64, len(ts))
	sum := 0.0
	for i, t := range ts {
		sum += t.Weight
		cum[i] = sum
	}
	// Validation pinned sum≈1; normalize the tail anyway so float drift
	// can never make the last template unreachable.
	cum[len(cum)-1] = math.Inf(1)
	return cum
}

func pickWeighted(cum []float64, rng *progen.Rand) int {
	u := randFloat(rng)
	for i, c := range cum {
		if u < c {
			return i
		}
	}
	return len(cum) - 1
}

// randFloat returns a uniform draw in [0, 1).
func randFloat(rng *progen.Rand) float64 {
	return float64(rng.Next()>>11) / float64(1<<53)
}

// startOffset places client i's arrival inside the startup window.
func startOffset(st Startup, i, clients int) time.Duration {
	if st.Pattern == "instant" || st.Duration <= 0 || clients <= 1 {
		return 0
	}
	w := float64(st.Duration)
	switch st.Pattern {
	case "linear":
		return time.Duration(w * float64(i) / float64(clients))
	case "exponential":
		// Doubling waves: client i joins in wave floor(log2(i+1)) of
		// ceil(log2(clients+1)) total — 1 client, then 2, then 4, ...
		waves := math.Ceil(math.Log2(float64(clients + 1)))
		if waves < 1 {
			waves = 1
		}
		wave := math.Floor(math.Log2(float64(i + 1)))
		return time.Duration(w * wave / waves)
	case "wave":
		batches := st.Batches
		if batches <= 0 {
			batches = 4
		}
		batch := i * batches / clients
		return time.Duration(w * float64(batch) / float64(batches))
	default:
		return 0
	}
}

// thinkTime samples one think-time gap from the template's
// distribution. Exponential draws are clamped to 10× the mean so one
// extreme draw cannot park a client past the scenario end.
func thinkTime(th Think, rng *progen.Rand) time.Duration {
	var d time.Duration
	switch th.Dist {
	case "uniform":
		span := th.Max - th.Min
		d = th.Min + time.Duration(randFloat(rng)*float64(span))
	case "exp":
		u := randFloat(rng)
		x := -math.Log(1-u) * float64(th.Mean)
		if max := 10 * float64(th.Mean); x > max {
			x = max
		}
		d = time.Duration(x)
	default: // fixed
		d = th.Mean
	}
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}
