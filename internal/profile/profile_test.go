package profile

import (
	"bytes"
	"strings"
	"testing"

	"tlssync/internal/cfg"
	"tlssync/internal/interp"
	"tlssync/internal/ir"
	"tlssync/internal/lang"
	"tlssync/internal/lower"
	"tlssync/internal/trace"
)

func traceOf(t testing.TB, src string, input []int64) (*ir.Program, *trace.ProgramTrace) {
	t.Helper()
	c, err := lang.Check(lang.MustParse(src))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := lower.Lower(c)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	var regions []*interp.Region
	id := 0
	for _, f := range p.Funcs {
		for _, l := range cfg.ParallelLoops(f) {
			regions = append(regions, &interp.Region{ID: id, Func: f, Loop: l})
			id++
		}
	}
	tr, err := interp.Run(p, interp.Options{Regions: regions, Input: input, Seed: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return p, tr
}

func TestAlwaysDependentLoad(t *testing.T) {
	// g is read and written every epoch: a distance-1 dependence in ~100%
	// of epochs.
	_, tr := traceOf(t, `
var g int;
func main() {
	var i int;
	parallel for i = 0; i < 100; i = i + 1 {
		g = g + 1;
	}
	print(g);
}`, nil)
	p := Analyze(tr)
	rp := p.Regions[0]
	if rp == nil {
		t.Fatal("no region profile")
	}
	if len(rp.Deps) != 1 {
		t.Fatalf("deps = %d, want 1: %v", len(rp.Deps), rp.Deps)
	}
	for k, st := range rp.Deps {
		f := rp.Frequency(k)
		if f < 0.9 {
			t.Errorf("frequency = %.2f, want ~1.0", f)
		}
		if st.DistHist[1] == 0 {
			t.Error("expected distance-1 dependences")
		}
		for d := range st.DistHist {
			if d != 1 {
				t.Errorf("unexpected distance %d", d)
			}
		}
		if k.Load.Path != "" || k.Store.Path != "" {
			t.Errorf("loop-body refs should have empty paths: %v", k)
		}
	}
}

func TestRareDependence(t *testing.T) {
	// g is touched only when i%10 == 0: ~10% of epochs produce, consumers
	// read every epoch -> load depends in ~10% of epochs at distance up to
	// 10... actually the load sees the last store, which may be many
	// epochs back; only distance >= 1 counts and the load depends every
	// epoch after the first store. Use a guarded load instead.
	_, tr := traceOf(t, `
var g int;
var acc int;
func main() {
	var i int;
	parallel for i = 0; i < 100; i = i + 1 {
		if i % 10 == 0 {
			g = g + 1;
		}
	}
	print(g);
}`, nil)
	p := Analyze(tr)
	rp := p.Regions[0]
	for k := range rp.Deps {
		f := rp.Frequency(k)
		if f > 0.2 {
			t.Errorf("guarded dep frequency = %.2f, want ~0.1", f)
		}
	}
}

func TestContextSensitivity(t *testing.T) {
	// The same static store runs under two different call sites; the
	// profiler must distinguish them by call path.
	_, tr := traceOf(t, `
var g int;
func bump() { g = g + 1; }
func a() { bump(); }
func b() { bump(); }
func main() {
	var i int;
	parallel for i = 0; i < 50; i = i + 1 {
		a();
		b();
	}
	print(g);
}`, nil)
	p := Analyze(tr)
	rp := p.Regions[0]
	// Within an epoch, a() stores g and then b() reads+stores it, so the
	// only inter-epoch dependence is: store via b (end of epoch i) ->
	// load via a (start of epoch i+1). Both refs carry 2-level call paths
	// through DIFFERENT call sites even though the static load/store
	// instructions are identical.
	if len(rp.Deps) != 1 {
		t.Fatalf("deps = %d, want 1: %v", len(rp.Deps), rp.Deps)
	}
	for k := range rp.Deps {
		if len(k.Store.PathIDs()) != 2 || len(k.Load.PathIDs()) != 2 {
			t.Errorf("paths should have 2 call sites: %v", k)
		}
		if k.Store.Path == k.Load.Path {
			t.Errorf("store path %q should differ from load path %q (different outer call sites)",
				k.Store.Path, k.Load.Path)
		}
		// Both levels differ: a() vs b() in main, and the distinct static
		// call instructions to bump inside a and b.
		sp, lp := k.Store.PathIDs(), k.Load.PathIDs()
		if sp[0] == lp[0] || sp[1] == lp[1] {
			t.Errorf("call sites should differ at both levels: %v vs %v", sp, lp)
		}
	}
}

func TestCoverage(t *testing.T) {
	_, tr := traceOf(t, `
var g int;
func main() {
	var i int;
	// Sequential warmup.
	for i = 0; i < 1000; i = i + 1 {
		g = g + i;
	}
	parallel for i = 0; i < 1000; i = i + 1 {
		g = g + i;
	}
	print(g);
}`, nil)
	p := Analyze(tr)
	cov := p.Coverage(0)
	if cov < 0.3 || cov > 0.7 {
		t.Errorf("coverage = %.2f, want ~0.5", cov)
	}
	if p.SeqEvents == 0 || p.TotalEvents <= p.SeqEvents {
		t.Error("sequential/total event accounting broken")
	}
}

func TestStackAccessesIgnored(t *testing.T) {
	_, tr := traceOf(t, `
func use(p *int) int { return *p; }
func main() {
	var i int;
	var s int;
	parallel for i = 0; i < 50; i = i + 1 {
		var x int = i;
		s = s + use(&x);
	}
	print(s);
}`, nil)
	p := Analyze(tr)
	rp := p.Regions[0]
	// The only memory traffic is via &x (stack): no dependences.
	if len(rp.Deps) != 0 {
		t.Errorf("stack-only program has %d deps: %v", len(rp.Deps), rp.Deps)
	}
}

func TestIntraEpochDependencesIgnored(t *testing.T) {
	// Each epoch writes g then reads it: intra-epoch only.
	_, tr := traceOf(t, `
var g int;
var acc int;
func main() {
	var i int;
	parallel for i = 0; i < 50; i = i + 1 {
		g = i;
		acc = acc + g;
	}
	print(acc);
}`, nil)
	p := Analyze(tr)
	rp := p.Regions[0]
	gDeps := 0
	for k := range rp.Deps {
		// acc has a real inter-epoch dep; g must not.
		if k.Load.Instr == k.Store.Instr {
			continue
		}
		_ = k
	}
	// Count deps whose load reads g: identify via frequency of deps — g's
	// load is never exposed, so only acc's dependence may appear.
	if len(rp.Deps) != 1 {
		t.Errorf("deps = %d, want 1 (acc only); g intra-epoch dep leaked? %v", len(rp.Deps), rp.Deps)
	}
	_ = gDeps
}

func TestDistanceHistogram(t *testing.T) {
	// Writer runs every epoch; reader reads arr[i-2]: distance 2.
	_, tr := traceOf(t, `
var arr [256]int;
var acc int;
func main() {
	var i int;
	parallel for i = 2; i < 200; i = i + 1 {
		arr[i % 256] = i;
		acc = acc + arr[(i - 2) % 256];
	}
	print(acc);
}`, nil)
	p := Analyze(tr)
	rp := p.Regions[0]
	h := rp.DistanceHistogram()
	if h[2] == 0 {
		t.Fatalf("expected distance-2 deps, hist=%v", h)
	}
	// acc contributes distance-1; arr distance-2. Distance >2 shouldn't
	// dominate.
	if h[1] == 0 {
		t.Errorf("expected distance-1 deps from acc, hist=%v", h)
	}
}

func TestLoadsAboveThreshold(t *testing.T) {
	_, tr := traceOf(t, `
var hot int;
var cold int;
func main() {
	var i int;
	var s int;
	parallel for i = 0; i < 100; i = i + 1 {
		hot = hot + 1;
		if i % 20 == 0 {
			cold = cold + 1;
		}
	}
	print(hot + cold);
}`, nil)
	p := Analyze(tr)
	rp := p.Regions[0]
	high := rp.LoadsAboveThreshold(0.5)
	low := rp.LoadsAboveThreshold(0.01)
	if len(high) != 1 {
		t.Errorf("loads above 50%% = %d, want 1 (hot)", len(high))
	}
	if len(low) != 2 {
		t.Errorf("loads above 1%% = %d, want 2 (hot+cold)", len(low))
	}
	for id := range high {
		if !low[id] {
			t.Error("threshold sets not nested")
		}
	}
}

func TestMultipleInstancesAggregated(t *testing.T) {
	_, tr := traceOf(t, `
var g int;
func body() {
	var i int;
	parallel for i = 0; i < 10; i = i + 1 {
		g = g + 1;
	}
}
func main() {
	body();
	body();
	body();
	print(g);
}`, nil)
	p := Analyze(tr)
	rp := p.Regions[0]
	if rp.Instances != 3 {
		t.Errorf("instances = %d, want 3", rp.Instances)
	}
	if rp.Epochs < 30 {
		t.Errorf("epochs = %d, want >= 30", rp.Epochs)
	}
	// Dependences must not leak across instances: first epoch of each
	// instance has no producer, so dep epochs <= epochs - instances.
	for k, st := range rp.Deps {
		if st.EpochCount > rp.Epochs-rp.Instances {
			t.Errorf("dep %v counted in %d epochs > %d", k, st.EpochCount, rp.Epochs-rp.Instances)
		}
	}
}

func TestRefString(t *testing.T) {
	r := Ref{Instr: 17}
	if r.String() != "i17" {
		t.Errorf("got %s", r)
	}
	r = Ref{Instr: 17, Path: "3-9"}
	if r.String() != "i17@3-9" {
		t.Errorf("got %s", r)
	}
	ids := r.PathIDs()
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 9 {
		t.Errorf("PathIDs = %v", ids)
	}
	if MakePath([]int{3, 9}) != "3-9" || MakePath(nil) != "" {
		t.Error("MakePath mismatch")
	}
}

func TestProfileSaveLoadRoundTrip(t *testing.T) {
	_, tr := traceOf(t, `
var g int;
var h int;
func touch() { g = g + 1; }
func main() {
	var i int;
	parallel for i = 0; i < 200; i = i + 1 {
		touch();
		if i % 9 == 0 {
			h = h + 1;
		}
	}
	print(g + h);
}`, nil)
	orig := Analyze(tr)

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.TotalEvents != orig.TotalEvents || loaded.SeqEvents != orig.SeqEvents {
		t.Error("event totals changed across round trip")
	}
	ro, rl := orig.Regions[0], loaded.Regions[0]
	if rl == nil {
		t.Fatal("region lost")
	}
	if ro.Epochs != rl.Epochs || ro.Instances != rl.Instances || ro.Events != rl.Events {
		t.Error("region stats changed")
	}
	if len(ro.Deps) != len(rl.Deps) {
		t.Fatalf("deps %d -> %d", len(ro.Deps), len(rl.Deps))
	}
	for k, so := range ro.Deps {
		sl, ok := rl.Deps[k]
		if !ok {
			t.Fatalf("dep %v lost", k)
		}
		if so.EpochCount != sl.EpochCount || so.D1Epochs != sl.D1Epochs ||
			so.WinEpochs != sl.WinEpochs || so.Dynamic != sl.Dynamic {
			t.Errorf("dep %v counters changed: %+v vs %+v", k, so, sl)
		}
		for d, n := range so.DistHist {
			if sl.DistHist[d] != n {
				t.Errorf("dep %v hist[%d] = %d, want %d", k, d, sl.DistHist[d], n)
			}
		}
	}
	// The threshold decisions the compiler makes must round-trip exactly.
	for _, th := range []float64{0.05, 0.15, 0.25} {
		a := ro.FrequentDeps(th, false)
		b := rl.FrequentDeps(th, false)
		if len(a) != len(b) {
			t.Errorf("threshold %.2f: deps %d -> %d", th, len(a), len(b))
		}
	}
}

func TestProfileLoadRejectsBadVersion(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Fatal("expected version error")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Fatal("expected decode error")
	}
}
