package profile

// JSON serialization of dependence profiles, so a profiling run can be
// performed once and its result stored alongside the source (the usual
// train-input workflow: profile on train, compile against the stored
// profile, measure on ref).

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// depJSON is the serialized form of one dependence.
type depJSON struct {
	StoreInstr int    `json:"store_instr"`
	StorePath  string `json:"store_path,omitempty"`
	LoadInstr  int    `json:"load_instr"`
	LoadPath   string `json:"load_path,omitempty"`

	EpochCount int         `json:"epoch_count"`
	D1Epochs   int         `json:"d1_epochs"`
	WinEpochs  int         `json:"win_epochs"`
	Dynamic    int         `json:"dynamic"`
	DistHist   map[int]int `json:"dist_hist"`
}

// regionJSON is the serialized form of one region profile.
type regionJSON struct {
	RegionID  int       `json:"region_id"`
	Epochs    int       `json:"epochs"`
	Instances int       `json:"instances"`
	Events    int64     `json:"events"`
	Deps      []depJSON `json:"deps"`
}

// profileJSON is the on-disk form.
type profileJSON struct {
	Version     int          `json:"version"`
	TotalEvents int64        `json:"total_events"`
	SeqEvents   int64        `json:"seq_events"`
	Regions     []regionJSON `json:"regions"`
}

// serializationVersion guards format evolution.
const serializationVersion = 1

// Save writes the profile as JSON.
func (p *Profile) Save(w io.Writer) error {
	out := profileJSON{
		Version:     serializationVersion,
		TotalEvents: p.TotalEvents,
		SeqEvents:   p.SeqEvents,
	}
	var ids []int
	for id := range p.Regions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		rp := p.Regions[id]
		rj := regionJSON{
			RegionID:  rp.RegionID,
			Epochs:    rp.Epochs,
			Instances: rp.Instances,
			Events:    rp.Events,
		}
		keys := make([]DepKey, 0, len(rp.Deps))
		for k := range rp.Deps {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].Load != keys[j].Load {
				return refLess(keys[i].Load, keys[j].Load)
			}
			return refLess(keys[i].Store, keys[j].Store)
		})
		for _, k := range keys {
			st := rp.Deps[k]
			rj.Deps = append(rj.Deps, depJSON{
				StoreInstr: k.Store.Instr,
				StorePath:  k.Store.Path,
				LoadInstr:  k.Load.Instr,
				LoadPath:   k.Load.Path,
				EpochCount: st.EpochCount,
				D1Epochs:   st.D1Epochs,
				WinEpochs:  st.WinEpochs,
				Dynamic:    st.Dynamic,
				DistHist:   st.DistHist,
			})
		}
		out.Regions = append(out.Regions, rj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Load reads a profile previously written by Save. The load-side
// aggregates (LoadDepEpochs and friends) are reconstructed approximately:
// a load's per-epoch dependence count is bounded below by its largest
// single dependence and above by the epoch count; Load uses the sum
// clamped to the region's epoch count, which preserves every threshold
// decision the compiler makes (grouping uses per-dependence counts, which
// round-trip exactly).
func Load(r io.Reader) (*Profile, error) {
	var in profileJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if in.Version != serializationVersion {
		return nil, fmt.Errorf("profile: unsupported version %d", in.Version)
	}
	p := &Profile{
		Regions:     make(map[int]*RegionProfile),
		TotalEvents: in.TotalEvents,
		SeqEvents:   in.SeqEvents,
	}
	for _, rj := range in.Regions {
		rp := &RegionProfile{
			RegionID:             rj.RegionID,
			Epochs:               rj.Epochs,
			Instances:            rj.Instances,
			Events:               rj.Events,
			Deps:                 make(map[DepKey]*DepStat),
			LoadDepEpochs:        make(map[Ref]int),
			LoadDepEpochsByInstr: make(map[int]int),
		}
		for _, d := range rj.Deps {
			k := DepKey{
				Store: Ref{Instr: d.StoreInstr, Path: d.StorePath},
				Load:  Ref{Instr: d.LoadInstr, Path: d.LoadPath},
			}
			rp.Deps[k] = &DepStat{
				EpochCount: d.EpochCount,
				D1Epochs:   d.D1Epochs,
				WinEpochs:  d.WinEpochs,
				Dynamic:    d.Dynamic,
				DistHist:   d.DistHist,
			}
			rp.LoadDepEpochs[k.Load] += d.EpochCount
			rp.LoadDepEpochsByInstr[k.Load.Instr] += d.EpochCount
		}
		for ref, n := range rp.LoadDepEpochs {
			if n > rp.Epochs {
				rp.LoadDepEpochs[ref] = rp.Epochs
			}
		}
		for id, n := range rp.LoadDepEpochsByInstr {
			if n > rp.Epochs {
				rp.LoadDepEpochsByInstr[id] = rp.Epochs
			}
		}
		p.Regions[rp.RegionID] = rp
	}
	return p, nil
}
