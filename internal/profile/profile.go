// Package profile implements the paper's data-dependence profiling
// (§2.3 "Profiling dependences") plus the loop/coverage statistics used
// for region selection (§3.1).
//
// Each memory reference is named by the pair (static instruction id,
// call stack rooted at the parallelized loop) — context-sensitive but
// flow-insensitive, exactly as in the paper. During a profiling run every
// load is matched with the store that last wrote its address; if that
// store executed in an earlier epoch of the same region instance, an
// inter-epoch RAW dependence is recorded with its distance (in epochs).
// Dependence frequency is measured in "fraction of epochs in which the
// dependence occurs", the unit the paper's 5%/15%/25% thresholds use.
package profile

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tlssync/internal/ir"
	"tlssync/internal/trace"
)

// Ref names a memory reference: a static instruction plus the call path
// (call-site instruction IDs, outermost first) from the parallelized loop.
type Ref struct {
	Instr int    // static instruction ID (ir.Instr.Origin for clones)
	Path  string // dash-joined call-site IDs, "" for loop-body references
}

// String renders the reference like "ld17@3-9".
func (r Ref) String() string {
	if r.Path == "" {
		return fmt.Sprintf("i%d", r.Instr)
	}
	return fmt.Sprintf("i%d@%s", r.Instr, r.Path)
}

// PathIDs parses the call path back into instruction IDs.
func (r Ref) PathIDs() []int {
	if r.Path == "" {
		return nil
	}
	parts := strings.Split(r.Path, "-")
	ids := make([]int, len(parts))
	for i, p := range parts {
		ids[i], _ = strconv.Atoi(p)
	}
	return ids
}

// MakePath joins call-site IDs into a path string.
func MakePath(ids []int) string {
	if len(ids) == 0 {
		return ""
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(id)
	}
	return strings.Join(parts, "-")
}

// DepKey identifies an inter-epoch RAW dependence: producer store and
// consumer load.
type DepKey struct {
	Store Ref
	Load  Ref
}

// DepStat accumulates statistics for one dependence.
type DepStat struct {
	// EpochCount is the number of epochs in which the dependence occurred
	// at least once (the paper's frequency unit).
	EpochCount int
	// D1Epochs is the number of epochs in which the dependence occurred
	// at distance 1 (producer is the immediately preceding epoch) —
	// the only distance producer-to-next-epoch forwarding can satisfy.
	D1Epochs int
	// WinEpochs is the number of epochs in which the dependence occurred
	// at distance <= OverlapWindow. Dependences beyond the machine's
	// epoch-overlap window can never cause violations (their producer has
	// always committed), so group formation thresholds on this count:
	// synchronizing a longer dependence would be pure overhead without
	// even the paper's TWOLF justification of "may happen depending on
	// timing".
	WinEpochs int
	// Dynamic is the raw number of dependent load executions.
	Dynamic int
	// DistHist histograms dependence distance in epochs.
	DistHist map[int]int
}

// RegionProfile aggregates dependence statistics for one region across all
// of its dynamic instances.
type RegionProfile struct {
	RegionID  int
	Epochs    int // total epochs profiled
	Instances int
	Events    int64 // dynamic instructions inside the region

	// Deps maps each observed inter-epoch dependence to its stats.
	Deps map[DepKey]*DepStat

	// LoadDepEpochs counts, per load reference, the epochs in which the
	// load consumed a value produced by an earlier epoch (any producer).
	LoadDepEpochs map[Ref]int

	// LoadDepEpochsByInstr is LoadDepEpochs aggregated over call paths
	// (per static instruction), used by the hardware-style analyses.
	LoadDepEpochsByInstr map[int]int
}

// Frequency returns the dependence's frequency as a fraction of all epochs.
func (rp *RegionProfile) Frequency(k DepKey) float64 {
	if rp.Epochs == 0 {
		return 0
	}
	return float64(rp.Deps[k].EpochCount) / float64(rp.Epochs)
}

// OverlapWindow is the number of epochs that can be simultaneously active
// (the simulated machine's CPU count): dependences farther apart can
// never violate.
const OverlapWindow = 4

// FrequencyD1 returns the fraction of epochs in which the dependence
// occurred at distance 1 — the frequency that decides whether forwarding
// between consecutive epochs can help.
func (rp *RegionProfile) FrequencyD1(k DepKey) float64 {
	if rp.Epochs == 0 {
		return 0
	}
	return float64(rp.Deps[k].D1Epochs) / float64(rp.Epochs)
}

// FrequencyWin returns the fraction of epochs in which the dependence
// occurred within the overlap window — the default thresholding unit for
// group formation.
func (rp *RegionProfile) FrequencyWin(k DepKey) float64 {
	if rp.Epochs == 0 {
		return 0
	}
	return float64(rp.Deps[k].WinEpochs) / float64(rp.Epochs)
}

// LoadFrequency returns the fraction of epochs in which the given load
// reference depended on an earlier epoch.
func (rp *RegionProfile) LoadFrequency(r Ref) float64 {
	if rp.Epochs == 0 {
		return 0
	}
	return float64(rp.LoadDepEpochs[r]) / float64(rp.Epochs)
}

// LoadsAboveThreshold returns the static instruction IDs of loads whose
// inter-epoch dependence frequency exceeds thresh (0.05 = 5% of epochs).
func (rp *RegionProfile) LoadsAboveThreshold(thresh float64) map[int]bool {
	out := make(map[int]bool)
	if rp.Epochs == 0 {
		return out
	}
	for id, n := range rp.LoadDepEpochsByInstr {
		if float64(n)/float64(rp.Epochs) > thresh {
			out[id] = true
		}
	}
	return out
}

// FrequentDeps returns the dependences whose within-overlap-window
// frequency exceeds the threshold, sorted by descending frequency (stable
// order for determinism). Window-bounded thresholding keeps the paper's
// TWOLF over-synchronization behaviour (a frequent distance-2..4
// dependence that rarely violates at runtime still gets synchronized)
// while excluding far dependences that can never violate. When d1Only is
// set, only the distance-1 frequency counts — the strictest variant, an
// ablation knob.
func (rp *RegionProfile) FrequentDeps(thresh float64, d1Only bool) []DepKey {
	freq := rp.FrequencyWin
	if d1Only {
		freq = rp.FrequencyD1
	}
	var keys []DepKey
	//lint:ignore D001 freq only filters membership (a set property); keys are explicitly sorted below before use
	for k := range rp.Deps {
		if freq(k) > thresh {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		fi, fj := freq(keys[i]), freq(keys[j])
		if fi != fj {
			return fi > fj
		}
		if keys[i].Load != keys[j].Load {
			return refLess(keys[i].Load, keys[j].Load)
		}
		return refLess(keys[i].Store, keys[j].Store)
	})
	return keys
}

func refLess(a, b Ref) bool {
	if a.Instr != b.Instr {
		return a.Instr < b.Instr
	}
	return a.Path < b.Path
}

// DistanceHistogram aggregates dependence distances across all deps.
func (rp *RegionProfile) DistanceHistogram() map[int]int {
	h := make(map[int]int)
	for _, st := range rp.Deps {
		for d, n := range st.DistHist {
			h[d] += n
		}
	}
	return h
}

// Profile is the result of analyzing a trace.
type Profile struct {
	Regions map[int]*RegionProfile

	// TotalEvents is the program's total dynamic instruction count;
	// SeqEvents the portion outside all regions.
	TotalEvents int64
	SeqEvents   int64
}

// Coverage returns the fraction of dynamic instructions spent inside the
// given region (the paper's region coverage).
func (p *Profile) Coverage(regionID int) float64 {
	if p.TotalEvents == 0 {
		return 0
	}
	rp, ok := p.Regions[regionID]
	if !ok {
		return 0
	}
	return float64(rp.Events) / float64(p.TotalEvents)
}

// lastWrite records who last wrote an address within a region instance.
type lastWrite struct {
	epoch int // epoch ordinal within the instance
	ref   Ref
}

// Analyze profiles a trace: dependence statistics per region plus coverage.
func Analyze(tr *trace.ProgramTrace) *Profile {
	p := &Profile{Regions: make(map[int]*RegionProfile)}
	for _, seg := range tr.Segments {
		if seg.Region == nil {
			p.SeqEvents += int64(len(seg.Seq))
			p.TotalEvents += int64(len(seg.Seq))
			continue
		}
		ri := seg.Region
		rp, ok := p.Regions[ri.RegionID]
		if !ok {
			rp = &RegionProfile{
				RegionID:             ri.RegionID,
				Deps:                 make(map[DepKey]*DepStat),
				LoadDepEpochs:        make(map[Ref]int),
				LoadDepEpochsByInstr: make(map[int]int),
			}
			p.Regions[ri.RegionID] = rp
		}
		rp.Instances++
		analyzeInstance(ri, rp, tr.Code)
		for _, e := range ri.Epochs {
			rp.Events += int64(len(e.Events))
			p.TotalEvents += int64(len(e.Events))
		}
		rp.Epochs += len(ri.Epochs)
	}
	return p
}

func analyzeInstance(ri *trace.RegionInstance, rp *RegionProfile, code ir.Code) {
	writers := make(map[int64]lastWrite)
	// Per-epoch dedup sets: a dependence and a violating load are counted
	// once per epoch. The sets are allocated once per instance and
	// cleared per epoch — region traces routinely hold thousands of
	// epochs, and five fresh maps per epoch used to show up in the
	// allocation profile (docs/perf.md).
	depSeen := make(map[DepKey]bool)
	depSeenD1 := make(map[DepKey]bool)
	depSeenWin := make(map[DepKey]bool)
	loadSeen := make(map[Ref]bool)
	instrSeen := make(map[int]bool)
	var stack []int
	for _, e := range ri.Epochs {
		clear(depSeen)
		clear(depSeenD1)
		clear(depSeenWin)
		clear(loadSeen)
		clear(instrSeen)
		stack = stack[:0]
		for _, ev := range e.Events {
			in := code[ev.SI]
			switch in.Op {
			case ir.Call:
				stack = append(stack, in.Origin)
			case ir.Ret:
				if len(stack) > 0 {
					stack = stack[:len(stack)-1]
				}
			case ir.Store:
				if ir.IsStackAddr(ev.Addr) {
					continue
				}
				writers[ev.Addr] = lastWrite{
					epoch: e.Index,
					ref:   Ref{Instr: in.Origin, Path: MakePath(stack)},
				}
			case ir.Load, ir.LoadSync:
				if ir.IsStackAddr(ev.Addr) {
					continue
				}
				w, ok := writers[ev.Addr]
				if !ok || w.epoch >= e.Index {
					continue // no producer, or intra-epoch
				}
				loadRef := Ref{Instr: in.Origin, Path: MakePath(stack)}
				key := DepKey{Store: w.ref, Load: loadRef}
				st, ok := rp.Deps[key]
				if !ok {
					st = &DepStat{DistHist: make(map[int]int)}
					rp.Deps[key] = st
				}
				st.Dynamic++
				dist := e.Index - w.epoch
				st.DistHist[dist]++
				if !depSeen[key] {
					depSeen[key] = true
					st.EpochCount++
				}
				if dist == 1 && !depSeenD1[key] {
					depSeenD1[key] = true
					st.D1Epochs++
				}
				if dist <= OverlapWindow && !depSeenWin[key] {
					depSeenWin[key] = true
					st.WinEpochs++
				}
				if !loadSeen[loadRef] {
					loadSeen[loadRef] = true
					rp.LoadDepEpochs[loadRef]++
				}
				if !instrSeen[loadRef.Instr] {
					instrSeen[loadRef.Instr] = true
					rp.LoadDepEpochsByInstr[loadRef.Instr]++
				}
			}
		}
	}
}
