package ir

import (
	"testing"

	"tlssync/internal/racedetect"
)

// buildCallProg builds a program with a call (so the arena's args slab
// is exercised) on top of the diamond CFG.
func buildCallProg() *Program {
	p := NewProgram()
	p.AddGlobal("g", 8, 1)
	callee := buildDiamond(p)
	callee.Name = "callee"
	p.AddFunc(callee)

	f := &Func{Name: "main"}
	entry := f.NewBlock("entry")
	f.Entry = entry
	c := p.NewInstr(Const)
	c.Dst = f.NewReg()
	c.Imm = 7
	call := p.NewInstr(Call)
	call.Sym = "callee"
	call.Dst = f.NewReg()
	call.Args = []Reg{c.Dst}
	ret := p.NewInstr(Ret)
	entry.Instrs = []*Instr{c, call, ret}
	f.Renumber()
	p.AddFunc(f)
	return p
}

// TestArenaRecycleZeroesSlabs pins the clear-on-recycle invariant: a
// recycled arena must carry nothing of the dead program — no Sym
// strings, no Args aliases, no instruction or block pointers — so slab
// reuse can never resurrect dead IR into a fresh copy.
func TestArenaRecycleZeroesSlabs(t *testing.T) {
	p := buildCallProg()
	cp := p.DeepCopy()
	a := cp.arena
	if a == nil {
		t.Fatal("DeepCopy did not attach an arena")
	}
	// Scribble over the copy so stale contents would be conspicuous.
	for _, f := range cp.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				in.Sym = "stale"
				in.Imm = -12345
			}
		}
	}
	cp.Recycle()

	for i := range a.instrs {
		in := &a.instrs[i]
		if in.Op != 0 || in.Sym != "" || in.Args != nil || in.ID != 0 || in.Imm != 0 {
			t.Fatalf("instrs[%d] not zeroed after Recycle: %+v", i, in)
		}
	}
	for i := range a.blocks {
		b := &a.blocks[i]
		if b.Name != "" || b.Instrs != nil || b.Succs != nil || b.Preds != nil {
			t.Fatalf("blocks[%d] not zeroed after Recycle: %+v", i, b)
		}
	}
	for i, r := range a.args {
		if r != 0 {
			t.Fatalf("args[%d] not zeroed after Recycle: %v", i, r)
		}
	}
	for i, ip := range a.iptrs {
		if ip != nil {
			t.Fatalf("iptrs[%d] still points at a dead instruction", i)
		}
	}
	for i, sp := range a.succs {
		if sp != nil {
			t.Fatalf("succs[%d] still points at a dead block", i)
		}
	}
	if cp.Funcs != nil || cp.FuncMap != nil || cp.Globals != nil || cp.GlobalMap != nil {
		t.Fatal("Recycle left program structure attached")
	}
	if cp.arena != nil {
		t.Fatal("Recycle left the arena attached (double-recycle hazard)")
	}
}

// TestDeepCopyAfterRecycleMatchesFresh is the arena's contamination
// test: a copy built from recycled slabs must be indistinguishable from
// one built on fresh memory, even after the recycled program was
// mutated arbitrarily before its death.
func TestDeepCopyAfterRecycleMatchesFresh(t *testing.T) {
	p := buildCallProg()
	fresh := p.DeepCopy() // never recycled: the reference copy

	dead := p.DeepCopy()
	for _, f := range dead.Funcs {
		for _, b := range f.Blocks {
			b.Name = "junk"
			for _, in := range b.Instrs {
				in.Sym, in.Imm, in.Args = "junk", 666, nil
			}
		}
	}
	dead.Recycle()

	got := p.DeepCopy() // reuses dead's slabs
	if err := got.Verify(); err != nil {
		t.Fatalf("copy from recycled arena does not verify: %v", err)
	}
	if g, w := got.String(), fresh.String(); g != w {
		t.Fatalf("copy from recycled arena differs from fresh copy:\ngot:\n%s\nwant:\n%s", g, w)
	}
}

// TestDeepCopyAllocBudget is the allocation-budget regression test for
// the IR-clone path: once the arena pool is warm, a DeepCopy/Recycle
// cycle must stay within a small fixed number of allocations (program
// skeleton + maps), NOT one per instruction. If this fails, something
// on the clone path stopped using the arena — see docs/perf.md for the
// budget rationale and how to re-baseline.
func TestDeepCopyAllocBudget(t *testing.T) {
	if racedetect.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	p := buildCallProg()
	p.DeepCopy().Recycle() // warm the pool

	// ~16 structural allocations per copy (Program, two maps, Globals,
	// Funcs, per-func Block slices, blockMap); the slack above that
	// absorbs GC emptying the pool's victim cache mid-run.
	const budget = 40
	allocs := testing.AllocsPerRun(100, func() {
		cp := p.DeepCopy()
		cp.Recycle()
	})
	if allocs > budget {
		t.Errorf("DeepCopy+Recycle allocates %.0f objects/op, budget %d — the arena path regressed (see docs/perf.md)", allocs, budget)
	}
}
