// Package ir defines the typed three-address intermediate representation
// the TLS compiler operates on, including the TLS-specific synchronization
// operations (scalar and memory-resident wait/signal, the forwarded-value
// check/select protocol) that the optimization passes insert.
//
// Values live in virtual registers; memory is a flat 64-bit byte-addressed
// space (globals, arena heap, and per-frame stack slots). All scalars are
// 64-bit words.
package ir

import (
	"fmt"

	"tlssync/internal/lang"
)

// Reg is a virtual register index. None means "no register".
type Reg int

// None marks an absent register operand.
const None Reg = -1

// AluOp enumerates arithmetic/comparison operations for Bin instructions.
type AluOp int

// ALU operations.
const (
	Add AluOp = iota
	Sub
	Mul
	Div
	Rem
	Shl
	Shr
	And
	Or
	Xor
	CmpLt
	CmpLe
	CmpGt
	CmpGe
	CmpEq
	CmpNe
)

var aluNames = [...]string{"add", "sub", "mul", "div", "rem", "shl", "shr",
	"and", "or", "xor", "lt", "le", "gt", "ge", "eq", "ne"}

// String returns the mnemonic of the ALU operation.
func (a AluOp) String() string { return aluNames[a] }

// Eval computes the ALU operation on two int64 operands. Division and
// remainder by zero yield 0 (MiniC semantics: defined, deterministic).
func (a AluOp) Eval(x, y int64) int64 {
	switch a {
	case Add:
		return x + y
	case Sub:
		return x - y
	case Mul:
		return x * y
	case Div:
		if y == 0 {
			return 0
		}
		return x / y
	case Rem:
		if y == 0 {
			return 0
		}
		return x % y
	case Shl:
		return x << (uint64(y) & 63)
	case Shr:
		return x >> (uint64(y) & 63)
	case And:
		return x & y
	case Or:
		return x | y
	case Xor:
		return x ^ y
	case CmpLt:
		return b2i(x < y)
	case CmpLe:
		return b2i(x <= y)
	case CmpGt:
		return b2i(x > y)
	case CmpGe:
		return b2i(x >= y)
	case CmpEq:
		return b2i(x == y)
	case CmpNe:
		return b2i(x != y)
	}
	panic(fmt.Sprintf("ir: bad AluOp %d", a))
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Op enumerates IR operations.
type Op int

// IR operations. The block of TLS operations at the end is never produced
// by lowering; only the scalarsync and memsync passes insert them.
const (
	Const      Op = iota // Dst = Imm
	Bin                  // Dst = A <Alu> B
	Neg                  // Dst = -A
	Not                  // Dst = !A
	Mov                  // Dst = A
	Load                 // Dst = Mem[A]
	Store                // Mem[A] = B
	AddrGlobal           // Dst = address of global Sym (+Imm)
	AddrLocal            // Dst = frame base + Imm
	NewObj               // Dst = arena alloc of Imm bytes (zeroed)
	Rnd                  // Dst = deterministic PRNG in [0, A)
	Input                // Dst = input[A mod len(input)]
	Print                // print value in A
	Call                 // Dst? = call Sym(Args...)
	Ret                  // return A (or nothing if A == None)
	Br                   // goto Succs[0]
	CondBr               // if A != 0 goto Succs[0] else Succs[1]

	// TLS synchronization operations.
	WaitScalar   // Dst = wait on scalar channel Imm (from predecessor epoch)
	SignalScalar // signal scalar channel Imm with value A (to successor epoch)
	WaitMemAddr  // Dst = forwarded address for memory sync Imm (stalls)
	WaitMemVal   // Dst = forwarded value for memory sync Imm (stalls)
	CheckFwd     // uff[Imm] = (A == B) && A != 0; A=forwarded addr, B=actual addr
	LoadSync     // Dst = Mem[A]; under sync Imm: violation-immune if uff set;
	// clears uff[Imm] if Mem[A] was overwritten locally
	SelectFwd     // Dst = uff[Imm] ? A : B; then uff[Imm] = 0. A=fwd val, B=mem val
	SignalMem     // signal memory sync Imm: address=A, value=B
	SignalMemNull // signal memory sync Imm with NULL address (storeless path)
)

var opNames = map[Op]string{
	Const: "const", Bin: "bin", Neg: "neg", Not: "not", Mov: "mov",
	Load: "load", Store: "store", AddrGlobal: "addrg", AddrLocal: "addrl",
	NewObj: "new", Rnd: "rnd", Input: "input", Print: "print",
	Call: "call", Ret: "ret", Br: "br", CondBr: "condbr",
	WaitScalar: "wait.s", SignalScalar: "signal.s",
	WaitMemAddr: "wait.ma", WaitMemVal: "wait.mv", CheckFwd: "checkfwd",
	LoadSync: "load.sync", SelectFwd: "select", SignalMem: "signal.m",
	SignalMemNull: "signal.mnull",
}

// String returns the mnemonic of the operation.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool { return o == Br || o == CondBr || o == Ret }

// IsMemAccess reports whether the op reads or writes tracked memory.
func (o Op) IsMemAccess() bool { return o == Load || o == Store || o == LoadSync }

// Instr is a single IR instruction.
//
// ID is a program-unique static instruction identifier used by the
// dependence profiler to name memory references; Origin is the ID of the
// instruction this one was cloned from (Origin == ID for originals), which
// lets the memsync pass locate profiled references inside cloned
// procedures.
type Instr struct {
	Op   Op
	Alu  AluOp
	Dst  Reg
	A, B Reg
	Imm  int64
	Sym  string // global name for AddrGlobal, callee for Call
	Args []Reg  // call arguments

	ID     int
	Origin int
	Pos    lang.Pos
}

// Uses returns the registers read by the instruction.
func (in *Instr) Uses() []Reg {
	var u []Reg
	add := func(r Reg) {
		if r != None {
			u = append(u, r)
		}
	}
	switch in.Op {
	case Const, AddrGlobal, AddrLocal, NewObj, WaitScalar, WaitMemAddr, WaitMemVal, Br, SignalMemNull:
		// no register uses
	case Call:
		for _, a := range in.Args {
			add(a)
		}
	default:
		add(in.A)
		add(in.B)
	}
	return u
}

// HasDst reports whether the instruction writes a destination register.
func (in *Instr) HasDst() bool { return in.Dst != None }

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator, with explicit successor edges.
type Block struct {
	Index  int
	Name   string
	Instrs []*Instr
	Succs  []*Block
	Preds  []*Block

	// ParallelHeader marks the header block of a source-level
	// `parallel for` loop: the candidate speculative region. The marker is
	// placed by lowering and consumed by region selection.
	ParallelHeader bool
}

// Terminator returns the block's final instruction, or nil if empty.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	if !t.Op.IsTerminator() {
		return nil
	}
	return t
}

// Func is an IR function. Parameters occupy registers 0..NParams-1 on entry.
type Func struct {
	Name      string
	NParams   int
	NumRegs   int
	FrameSize int64 // bytes of frame-resident (address-taken) locals
	Blocks    []*Block
	Entry     *Block

	// HasRet reports whether the function returns a value.
	HasRet bool
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	return r
}

// NewBlock appends a fresh, empty block.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Index: len(f.Blocks), Name: name}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Renumber reassigns contiguous block indices (after block insertion or
// deletion) and recomputes predecessor lists.
func (f *Func) Renumber() {
	for i, b := range f.Blocks {
		b.Index = i
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// Global is a program global variable with its assigned address.
type Global struct {
	Name string
	Size int64
	Addr int64
	Init int64 // initial value of the first word (0 unless initialized)
}

// Memory segment bases. The stack segment is excluded from TLS dependence
// tracking: each epoch conceptually has a private stack (its own CPU's), so
// frame-slot reuse across epochs is not a real data dependence.
const (
	GlobalBase = int64(0x10000)
	HeapBase   = int64(0x1000000)
	StackBase  = int64(0x40000000)
	StackLimit = int64(0x50000000)
)

// IsStackAddr reports whether addr falls in the simulated stack segment.
func IsStackAddr(addr int64) bool { return addr >= StackBase && addr < StackLimit }

// Program is a complete IR program.
type Program struct {
	Funcs     []*Func
	FuncMap   map[string]*Func
	Globals   []*Global
	GlobalMap map[string]*Global

	// NumScalarChans and NumMemSyncs count the synchronization channels
	// allocated by the scalarsync and memsync passes.
	NumScalarChans int
	NumMemSyncs    int

	nextID int

	// arena is the pooled slab storage behind a DeepCopy (nil for
	// programs built instruction-by-instruction); see arena.go.
	arena *copyArena
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		FuncMap:   make(map[string]*Func),
		GlobalMap: make(map[string]*Global),
		nextID:    1,
	}
}

// AddFunc registers a function with the program.
func (p *Program) AddFunc(f *Func) {
	p.Funcs = append(p.Funcs, f)
	p.FuncMap[f.Name] = f
}

// AddGlobal registers a global, assigning its address sequentially in the
// globals segment.
func (p *Program) AddGlobal(name string, size, init int64) *Global {
	addr := GlobalBase
	if n := len(p.Globals); n > 0 {
		last := p.Globals[n-1]
		addr = last.Addr + last.Size
		// Keep distinct globals line-aligned so false sharing between
		// globals is a property of programs using arrays/structs, not an
		// accident of global placement.
		const line = 32
		addr = (addr + line - 1) / line * line
	}
	g := &Global{Name: name, Size: size, Addr: addr, Init: init}
	p.Globals = append(p.Globals, g)
	p.GlobalMap[name] = g
	return g
}

// NewInstr creates an instruction with a fresh program-unique ID.
func (p *Program) NewInstr(op Op) *Instr {
	in := &Instr{Op: op, Dst: None, A: None, B: None, ID: p.nextID}
	in.Origin = in.ID
	p.nextID++
	return in
}

// CloneInstr duplicates an instruction with a fresh ID, preserving Origin
// lineage (the clone's Origin is the source's Origin).
func (p *Program) CloneInstr(in *Instr) *Instr {
	c := *in
	c.ID = p.nextID
	p.nextID++
	c.Origin = in.Origin
	if in.Args != nil {
		c.Args = append([]Reg(nil), in.Args...)
	}
	return &c
}

// MaxInstrID returns an exclusive upper bound on instruction IDs, useful
// for sizing side tables indexed by instruction ID.
func (p *Program) MaxInstrID() int { return p.nextID }

// CloneFunc deep-copies fn under the new name, giving every instruction a
// fresh ID with Origin lineage preserved. The clone is registered with the
// program.
func (p *Program) CloneFunc(fn *Func, newName string) *Func {
	nf := &Func{
		Name:      newName,
		NParams:   fn.NParams,
		NumRegs:   fn.NumRegs,
		FrameSize: fn.FrameSize,
		HasRet:    fn.HasRet,
	}
	blockMap := make(map[*Block]*Block, len(fn.Blocks))
	for _, b := range fn.Blocks {
		nb := nf.NewBlock(b.Name)
		nb.ParallelHeader = b.ParallelHeader
		blockMap[b] = nb
	}
	for _, b := range fn.Blocks {
		nb := blockMap[b]
		for _, in := range b.Instrs {
			nb.Instrs = append(nb.Instrs, p.CloneInstr(in))
		}
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, blockMap[s])
		}
	}
	nf.Entry = blockMap[fn.Entry]
	nf.Renumber()
	p.AddFunc(nf)
	return nf
}
