package ir

import "sync"

// copyArena is the slab storage behind one DeepCopy: every cloned
// instruction, block and call-argument register lives in one of three
// contiguous slabs instead of its own heap object. A program-sized copy
// therefore costs a handful of allocations instead of one per
// instruction — the build pipeline clones the scalar-synchronized base
// program once per memory-synchronization variant, so this is directly
// on the compile hot path (see docs/perf.md).
//
// Slabs are recycled through a sync.Pool: a copy whose lifetime is known
// to be over (transient clones in tests, a variant dropped on a memsync
// error) returns its slabs via Program.Recycle, and the next DeepCopy
// reuses them. Recycle zeroes the slabs before pooling so a recycled
// arena can never leak instructions (Sym strings, Args aliases) of a
// dead program into a fresh copy — the pool-contamination tests in
// arena_test.go pin that down.
type copyArena struct {
	instrs []Instr
	blocks []Block
	args   []Reg
	iptrs  []*Instr // backing for every block's Instrs slice
	succs  []*Block // backing for every block's Succs slice
}

var arenaPool sync.Pool

// getArena returns an arena with capacity for the requested counts,
// reusing pooled slabs when they are big enough.
func getArena(nInstrs, nBlocks, nArgs, nSuccs int) *copyArena {
	a, _ := arenaPool.Get().(*copyArena)
	if a == nil {
		a = new(copyArena)
	}
	if cap(a.instrs) < nInstrs {
		a.instrs = make([]Instr, nInstrs)
	}
	if cap(a.blocks) < nBlocks {
		a.blocks = make([]Block, nBlocks)
	}
	if cap(a.args) < nArgs {
		a.args = make([]Reg, nArgs)
	}
	if cap(a.iptrs) < nInstrs {
		a.iptrs = make([]*Instr, nInstrs)
	}
	if cap(a.succs) < nSuccs {
		a.succs = make([]*Block, nSuccs)
	}
	a.instrs = a.instrs[:nInstrs]
	a.blocks = a.blocks[:nBlocks]
	a.args = a.args[:nArgs]
	a.iptrs = a.iptrs[:nInstrs]
	a.succs = a.succs[:nSuccs]
	return a
}

// Recycle returns the slab storage of a DeepCopy to the arena pool and
// severs the program's own structure. It must only be called when
// nothing references the program or any of its functions, blocks or
// instructions anymore — a recycled arena's memory is overwritten by
// the next DeepCopy. Long-lived copies (a Build's variants) are simply
// never recycled; the pool is for clones whose death is an explicit
// event. Calling Recycle on a program that was not produced by DeepCopy
// is a no-op.
func (p *Program) Recycle() {
	a := p.arena
	if a == nil {
		return
	}
	p.arena = nil
	p.Funcs, p.FuncMap, p.Globals, p.GlobalMap = nil, nil, nil, nil
	// Zero the slabs while they are still sliced to their used length:
	// dropping the string/slice references now (not at next reuse) is
	// what un-pins the dead program's memory.
	clear(a.instrs)
	clear(a.blocks)
	clear(a.args)
	clear(a.iptrs)
	clear(a.succs)
	arenaPool.Put(a)
}

// DeepCopy duplicates the whole program, preserving instruction IDs,
// Origins, global addresses and block structure exactly. The compiler
// pipeline copies the scalar-synchronized base program before applying
// memory-synchronization variants (train-profile, ref-profile, hybrid) so
// each variant transforms an identical starting point and profiling
// references (which name instructions by ID) remain valid in every copy.
//
// All instructions, blocks and call-argument slices of the copy are
// allocated from one pooled arena (see copyArena); the copy is
// indistinguishable from an individually-allocated one unless the caller
// opts into recycling via Recycle.
func (p *Program) DeepCopy() *Program {
	nInstrs, nBlocks, nArgs, nSuccs, maxBlocks := 0, 0, 0, 0, 0
	for _, f := range p.Funcs {
		nBlocks += len(f.Blocks)
		if len(f.Blocks) > maxBlocks {
			maxBlocks = len(f.Blocks)
		}
		for _, b := range f.Blocks {
			nInstrs += len(b.Instrs)
			nSuccs += len(b.Succs)
			for _, in := range b.Instrs {
				nArgs += len(in.Args)
			}
		}
	}
	a := getArena(nInstrs, nBlocks, nArgs, nSuccs)
	io, bo, ao, so := 0, 0, 0, 0

	np := &Program{
		FuncMap:        make(map[string]*Func, len(p.Funcs)),
		GlobalMap:      make(map[string]*Global, len(p.Globals)),
		NumScalarChans: p.NumScalarChans,
		NumMemSyncs:    p.NumMemSyncs,
		nextID:         p.nextID,
		arena:          a,
	}
	for _, g := range p.Globals {
		ng := *g
		np.Globals = append(np.Globals, &ng)
		np.GlobalMap[ng.Name] = &ng
	}
	blockMap := make(map[*Block]*Block, maxBlocks)
	for _, f := range p.Funcs {
		nf := &Func{
			Name:      f.Name,
			NParams:   f.NParams,
			NumRegs:   f.NumRegs,
			FrameSize: f.FrameSize,
			HasRet:    f.HasRet,
		}
		clear(blockMap)
		nf.Blocks = make([]*Block, len(f.Blocks))
		for i, b := range f.Blocks {
			nb := &a.blocks[bo]
			bo++
			nb.Index, nb.Name, nb.ParallelHeader = b.Index, b.Name, b.ParallelHeader
			nf.Blocks[i] = nb
			blockMap[b] = nb
		}
		for _, b := range f.Blocks {
			nb := blockMap[b]
			nb.Instrs = a.iptrs[io : io+len(b.Instrs) : io+len(b.Instrs)]
			for i, in := range b.Instrs {
				c := &a.instrs[io]
				io++
				*c = *in
				if in.Args != nil {
					dst := a.args[ao : ao+len(in.Args) : ao+len(in.Args)]
					ao += len(in.Args)
					copy(dst, in.Args)
					c.Args = dst
				}
				nb.Instrs[i] = c
			}
			nb.Succs = a.succs[so : so : so+len(b.Succs)]
			so += len(b.Succs)
			for _, s := range b.Succs {
				nb.Succs = append(nb.Succs, blockMap[s])
			}
		}
		nf.Entry = blockMap[f.Entry]
		nf.Renumber()
		np.AddFunc(nf)
	}
	return np
}
