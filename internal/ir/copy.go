package ir

// DeepCopy duplicates the whole program, preserving instruction IDs,
// Origins, global addresses and block structure exactly. The compiler
// pipeline copies the scalar-synchronized base program before applying
// memory-synchronization variants (train-profile, ref-profile, hybrid) so
// each variant transforms an identical starting point and profiling
// references (which name instructions by ID) remain valid in every copy.
func (p *Program) DeepCopy() *Program {
	np := &Program{
		FuncMap:        make(map[string]*Func, len(p.Funcs)),
		GlobalMap:      make(map[string]*Global, len(p.Globals)),
		NumScalarChans: p.NumScalarChans,
		NumMemSyncs:    p.NumMemSyncs,
		nextID:         p.nextID,
	}
	for _, g := range p.Globals {
		ng := *g
		np.Globals = append(np.Globals, &ng)
		np.GlobalMap[ng.Name] = &ng
	}
	for _, f := range p.Funcs {
		nf := &Func{
			Name:      f.Name,
			NParams:   f.NParams,
			NumRegs:   f.NumRegs,
			FrameSize: f.FrameSize,
			HasRet:    f.HasRet,
		}
		blockMap := make(map[*Block]*Block, len(f.Blocks))
		for _, b := range f.Blocks {
			nb := &Block{Index: b.Index, Name: b.Name, ParallelHeader: b.ParallelHeader}
			nf.Blocks = append(nf.Blocks, nb)
			blockMap[b] = nb
		}
		for _, b := range f.Blocks {
			nb := blockMap[b]
			nb.Instrs = make([]*Instr, len(b.Instrs))
			for i, in := range b.Instrs {
				c := *in
				if in.Args != nil {
					c.Args = append([]Reg(nil), in.Args...)
				}
				nb.Instrs[i] = &c
			}
			for _, s := range b.Succs {
				nb.Succs = append(nb.Succs, blockMap[s])
			}
		}
		nf.Entry = blockMap[f.Entry]
		nf.Renumber()
		np.AddFunc(nf)
	}
	return np
}
