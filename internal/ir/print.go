package ir

import (
	"fmt"
	"strings"
)

// String renders the instruction in a readable assembly-like syntax.
func (in *Instr) String() string {
	r := func(x Reg) string {
		if x == None {
			return "_"
		}
		return fmt.Sprintf("r%d", int(x))
	}
	switch in.Op {
	case Const:
		return fmt.Sprintf("%s = const %d", r(in.Dst), in.Imm)
	case Bin:
		return fmt.Sprintf("%s = %s %s, %s", r(in.Dst), in.Alu, r(in.A), r(in.B))
	case Neg:
		return fmt.Sprintf("%s = neg %s", r(in.Dst), r(in.A))
	case Not:
		return fmt.Sprintf("%s = not %s", r(in.Dst), r(in.A))
	case Mov:
		return fmt.Sprintf("%s = mov %s", r(in.Dst), r(in.A))
	case Load:
		return fmt.Sprintf("%s = load [%s]", r(in.Dst), r(in.A))
	case Store:
		return fmt.Sprintf("store [%s], %s", r(in.A), r(in.B))
	case AddrGlobal:
		if in.Imm != 0 {
			return fmt.Sprintf("%s = addrg %s+%d", r(in.Dst), in.Sym, in.Imm)
		}
		return fmt.Sprintf("%s = addrg %s", r(in.Dst), in.Sym)
	case AddrLocal:
		return fmt.Sprintf("%s = addrl fp+%d", r(in.Dst), in.Imm)
	case NewObj:
		return fmt.Sprintf("%s = new %d", r(in.Dst), in.Imm)
	case Rnd:
		return fmt.Sprintf("%s = rnd %s", r(in.Dst), r(in.A))
	case Input:
		return fmt.Sprintf("%s = input %s", r(in.Dst), r(in.A))
	case Print:
		return fmt.Sprintf("print %s", r(in.A))
	case Call:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = r(a)
		}
		call := fmt.Sprintf("call %s(%s)", in.Sym, strings.Join(args, ", "))
		if in.Dst != None {
			return fmt.Sprintf("%s = %s", r(in.Dst), call)
		}
		return call
	case Ret:
		if in.A != None {
			return fmt.Sprintf("ret %s", r(in.A))
		}
		return "ret"
	case Br:
		return "br"
	case CondBr:
		return fmt.Sprintf("condbr %s", r(in.A))
	case WaitScalar:
		return fmt.Sprintf("%s = wait.s ch%d", r(in.Dst), in.Imm)
	case SignalScalar:
		return fmt.Sprintf("signal.s ch%d, %s", in.Imm, r(in.A))
	case WaitMemAddr:
		return fmt.Sprintf("%s = wait.ma sync%d", r(in.Dst), in.Imm)
	case WaitMemVal:
		return fmt.Sprintf("%s = wait.mv sync%d", r(in.Dst), in.Imm)
	case CheckFwd:
		return fmt.Sprintf("checkfwd sync%d, %s, %s", in.Imm, r(in.A), r(in.B))
	case LoadSync:
		return fmt.Sprintf("%s = load.sync sync%d [%s]", r(in.Dst), in.Imm, r(in.A))
	case SelectFwd:
		return fmt.Sprintf("%s = select sync%d, %s, %s", r(in.Dst), in.Imm, r(in.A), r(in.B))
	case SignalMem:
		return fmt.Sprintf("signal.m sync%d, addr=%s, val=%s", in.Imm, r(in.A), r(in.B))
	case SignalMemNull:
		return fmt.Sprintf("signal.mnull sync%d", in.Imm)
	}
	return in.Op.String()
}

// String renders the function as readable IR text.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (params=%d regs=%d frame=%d)\n",
		f.Name, f.NParams, f.NumRegs, f.FrameSize)
	for _, b := range f.Blocks {
		mark := ""
		if b.ParallelHeader {
			mark = " [parallel header]"
		}
		fmt.Fprintf(&sb, "b%d %s:%s\n", b.Index, b.Name, mark)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", in)
		}
		if t := b.Terminator(); t != nil && t.Op != Ret {
			targets := make([]string, len(b.Succs))
			for i, s := range b.Succs {
				targets[i] = fmt.Sprintf("b%d", s.Index)
			}
			fmt.Fprintf(&sb, "\t-> %s\n", strings.Join(targets, ", "))
		}
	}
	return sb.String()
}

// String renders the whole program.
func (p *Program) String() string {
	var sb strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, "global %s size=%d addr=%#x init=%d\n", g.Name, g.Size, g.Addr, g.Init)
	}
	for _, f := range p.Funcs {
		sb.WriteString(f.String())
	}
	return sb.String()
}
