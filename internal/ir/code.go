package ir

// Code is a program's static-instruction table: instruction IDs index
// directly into it (IDs start at 1; slot 0 is unused). Trace events name
// their static instruction by ID (trace.Event.SI) instead of carrying an
// *Instr, which keeps the multi-million-entry event buffers pointer-free
// — the garbage collector never scans them, and pooled buffers cannot
// pin instruction objects of dead programs. Code is how the profiler and
// the timing simulator resolve an event back to its instruction.
type Code []*Instr

// Code builds the ID-indexed instruction table for the program. Only
// instructions reachable from a block appear (detached scratch
// instructions keep their IDs but can never be executed, so no event
// references them). The table is O(static instructions) to build — noise
// next to the dynamic event streams indexed by it.
func (p *Program) Code() Code {
	tbl := make(Code, p.nextID)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				tbl[in.ID] = in
			}
		}
	}
	return tbl
}
