package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildDiamond constructs a minimal valid function:
//
//	entry -> then|else -> join(ret)
func buildDiamond(p *Program) *Func {
	f := &Func{Name: "f"}
	entry := f.NewBlock("entry")
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	join := f.NewBlock("join")
	f.Entry = entry

	c := p.NewInstr(Const)
	c.Dst = f.NewReg()
	c.Imm = 1
	cb := p.NewInstr(CondBr)
	cb.A = c.Dst
	entry.Instrs = []*Instr{c, cb}
	entry.Succs = []*Block{then, els}

	for _, b := range []*Block{then, els} {
		mv := p.NewInstr(Const)
		mv.Dst = f.NewReg()
		br := p.NewInstr(Br)
		b.Instrs = []*Instr{mv, br}
		b.Succs = []*Block{join}
	}
	ret := p.NewInstr(Ret)
	join.Instrs = []*Instr{ret}
	f.Renumber()
	return f
}

func TestVerifyOK(t *testing.T) {
	p := NewProgram()
	f := buildDiamond(p)
	p.AddFunc(f)
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyCatchesMidBlockTerminator(t *testing.T) {
	p := NewProgram()
	f := buildDiamond(p)
	// Inject a Br in the middle of entry.
	br := p.NewInstr(Br)
	f.Entry.Instrs = append([]*Instr{br}, f.Entry.Instrs...)
	if err := f.Verify(); err == nil || !strings.Contains(err.Error(), "mid-block") {
		t.Fatalf("expected mid-block error, got %v", err)
	}
}

func TestVerifyCatchesBadSuccCount(t *testing.T) {
	p := NewProgram()
	f := buildDiamond(p)
	f.Entry.Succs = f.Entry.Succs[:1] // CondBr with 1 successor
	if err := f.Verify(); err == nil || !strings.Contains(err.Error(), "successors") {
		t.Fatalf("expected successor-count error, got %v", err)
	}
}

func TestVerifyCatchesRegOutOfRange(t *testing.T) {
	p := NewProgram()
	f := buildDiamond(p)
	f.Entry.Instrs[0].Dst = Reg(99)
	if err := f.Verify(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("expected register-range error, got %v", err)
	}
}

func TestVerifyCatchesEmptyBlock(t *testing.T) {
	p := NewProgram()
	f := buildDiamond(p)
	f.NewBlock("empty")
	f.Renumber()
	if err := f.Verify(); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("expected empty-block error, got %v", err)
	}
}

func TestVerifyCatchesInconsistentPreds(t *testing.T) {
	p := NewProgram()
	f := buildDiamond(p)
	// Corrupt a pred list.
	f.Entry.Preds = append(f.Entry.Preds, f.Blocks[3])
	if err := f.Verify(); err == nil {
		t.Fatal("expected pred-consistency error")
	}
}

func TestVerifyCatchesForeignPred(t *testing.T) {
	p := NewProgram()
	f := buildDiamond(p)
	g := buildDiamond(p)
	g.Name = "g"
	// A pred pointing into a different function must be rejected before
	// the edge-consistency pass (which would also fire, but with a less
	// precise message).
	f.Blocks[3].Preds = append(f.Blocks[3].Preds, g.Entry)
	if err := f.Verify(); err == nil || !strings.Contains(err.Error(), "predecessor") || !strings.Contains(err.Error(), "not in function") {
		t.Fatalf("expected foreign-pred error, got %v", err)
	}
}

func TestVerifyCatchesDuplicateBlock(t *testing.T) {
	p := NewProgram()
	f := buildDiamond(p)
	f.Blocks = append(f.Blocks, f.Blocks[1])
	if err := f.Verify(); err == nil || !strings.Contains(err.Error(), "appears twice") {
		t.Fatalf("expected duplicate-block error, got %v", err)
	}
}

func TestVerifyCatchesUndefinedCall(t *testing.T) {
	p := NewProgram()
	f := buildDiamond(p)
	call := p.NewInstr(Call)
	call.Sym = "missing"
	f.Entry.Instrs = append([]*Instr{call}, f.Entry.Instrs...)
	p.AddFunc(f)
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Fatalf("expected undefined-call error, got %v", err)
	}
}

func TestCloneFunc(t *testing.T) {
	p := NewProgram()
	f := buildDiamond(p)
	p.AddFunc(f)
	g := p.CloneFunc(f, "f_clone")
	if err := p.Verify(); err != nil {
		t.Fatalf("verify after clone: %v", err)
	}
	if g.Name != "f_clone" || p.FuncMap["f_clone"] != g {
		t.Fatal("clone not registered")
	}
	if len(g.Blocks) != len(f.Blocks) {
		t.Fatalf("clone has %d blocks, want %d", len(g.Blocks), len(f.Blocks))
	}
	// Clone instructions must have fresh IDs but Origin pointing back.
	for i, b := range f.Blocks {
		gb := g.Blocks[i]
		for j, in := range b.Instrs {
			cn := gb.Instrs[j]
			if cn.ID == in.ID {
				t.Errorf("clone shares ID %d", in.ID)
			}
			if cn.Origin != in.Origin {
				t.Errorf("clone origin %d, want %d", cn.Origin, in.Origin)
			}
			if cn == in {
				t.Error("clone aliases original instruction")
			}
		}
		// Successor edges must point into the clone, not the original.
		for _, s := range gb.Succs {
			found := false
			for _, cb := range g.Blocks {
				if s == cb {
					found = true
				}
			}
			if !found {
				t.Error("clone successor points outside clone")
			}
		}
	}
}

func TestGlobalLayoutLineAligned(t *testing.T) {
	p := NewProgram()
	a := p.AddGlobal("a", 8, 0)
	b := p.AddGlobal("b", 40, 0)
	c := p.AddGlobal("c", 8, 0)
	for _, g := range []*Global{a, b, c} {
		if g.Addr%32 != 0 {
			t.Errorf("global %s at %#x not 32-byte aligned", g.Name, g.Addr)
		}
	}
	if b.Addr < a.Addr+a.Size || c.Addr < b.Addr+b.Size {
		t.Error("globals overlap")
	}
	if err := (&Program{Globals: []*Global{a, b, c}}).Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestAluEval(t *testing.T) {
	cases := []struct {
		op   AluOp
		x, y int64
		want int64
	}{
		{Add, 2, 3, 5}, {Sub, 2, 3, -1}, {Mul, -4, 3, -12},
		{Div, 7, 2, 3}, {Div, 7, 0, 0}, {Rem, 7, 3, 1}, {Rem, 7, 0, 0},
		{Shl, 1, 4, 16}, {Shr, 16, 4, 1}, {Shl, 1, 64, 1}, // shift masks to 6 bits
		{And, 6, 3, 2}, {Or, 6, 3, 7}, {Xor, 6, 3, 5},
		{CmpLt, 1, 2, 1}, {CmpLe, 2, 2, 1}, {CmpGt, 1, 2, 0},
		{CmpGe, 2, 2, 1}, {CmpEq, 5, 5, 1}, {CmpNe, 5, 5, 0},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.x, c.y); got != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.x, c.y, got, c.want)
		}
	}
}

func TestAluEvalPropertyComparisonsAreBoolean(t *testing.T) {
	f := func(x, y int64) bool {
		for _, op := range []AluOp{CmpLt, CmpLe, CmpGt, CmpGe, CmpEq, CmpNe} {
			v := op.Eval(x, y)
			if v != 0 && v != 1 {
				return false
			}
		}
		// Trichotomy: exactly one of <, ==, > holds.
		s := CmpLt.Eval(x, y) + CmpEq.Eval(x, y) + CmpGt.Eval(x, y)
		return s == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAluEvalPropertyAddSubInverse(t *testing.T) {
	f := func(x, y int64) bool {
		return Sub.Eval(Add.Eval(x, y), y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInstrUses(t *testing.T) {
	p := NewProgram()
	in := p.NewInstr(Bin)
	in.Dst, in.A, in.B = 0, 1, 2
	u := in.Uses()
	if len(u) != 2 || u[0] != 1 || u[1] != 2 {
		t.Errorf("Bin uses = %v", u)
	}
	call := p.NewInstr(Call)
	call.Args = []Reg{3, 4, 5}
	u = call.Uses()
	if len(u) != 3 {
		t.Errorf("Call uses = %v", u)
	}
	c := p.NewInstr(Const)
	if len(c.Uses()) != 0 {
		t.Errorf("Const uses = %v", c.Uses())
	}
	ret := p.NewInstr(Ret)
	if len(ret.Uses()) != 0 {
		t.Errorf("bare Ret uses = %v", ret.Uses())
	}
	ret.A = 7
	if len(ret.Uses()) != 1 {
		t.Errorf("Ret r7 uses = %v", ret.Uses())
	}
}

func TestStackAddrRange(t *testing.T) {
	if IsStackAddr(GlobalBase) || IsStackAddr(HeapBase) {
		t.Error("global/heap classified as stack")
	}
	if !IsStackAddr(StackBase) || !IsStackAddr(StackLimit-8) {
		t.Error("stack range misclassified")
	}
	if IsStackAddr(StackLimit) {
		t.Error("StackLimit should be exclusive")
	}
}

func TestInstrString(t *testing.T) {
	p := NewProgram()
	cases := []struct {
		build func() *Instr
		want  string
	}{
		{func() *Instr { in := p.NewInstr(Const); in.Dst = 3; in.Imm = 7; return in }, "r3 = const 7"},
		{func() *Instr { in := p.NewInstr(Load); in.Dst = 1; in.A = 2; return in }, "r1 = load [r2]"},
		{func() *Instr { in := p.NewInstr(Store); in.A = 1; in.B = 2; return in }, "store [r1], r2"},
		{func() *Instr {
			in := p.NewInstr(SignalMem)
			in.Imm = 4
			in.A, in.B = 1, 2
			return in
		}, "signal.m sync4, addr=r1, val=r2"},
		{func() *Instr { in := p.NewInstr(WaitScalar); in.Dst = 9; in.Imm = 2; return in }, "r9 = wait.s ch2"},
	}
	for _, c := range cases {
		if got := c.build().String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}

func TestUniqueInstrIDs(t *testing.T) {
	p := NewProgram()
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		in := p.NewInstr(Const)
		if seen[in.ID] {
			t.Fatalf("duplicate ID %d", in.ID)
		}
		seen[in.ID] = true
		if in.Origin != in.ID {
			t.Fatalf("fresh instr Origin %d != ID %d", in.Origin, in.ID)
		}
	}
}

func TestInstrStringAllOps(t *testing.T) {
	// Every op must render without panicking and contain its mnemonic or
	// a distinctive token.
	p := NewProgram()
	ops := []Op{Const, Bin, Neg, Not, Mov, Load, Store, AddrGlobal,
		AddrLocal, NewObj, Rnd, Input, Print, Call, Ret, Br, CondBr,
		WaitScalar, SignalScalar, WaitMemAddr, WaitMemVal, CheckFwd,
		LoadSync, SelectFwd, SignalMem, SignalMemNull}
	for _, op := range ops {
		in := p.NewInstr(op)
		in.Dst, in.A, in.B = 0, 1, 2
		in.Sym = "sym"
		if s := in.String(); s == "" {
			t.Errorf("op %v renders empty", op)
		}
	}
	// Variants.
	call := p.NewInstr(Call)
	call.Sym = "f"
	call.Args = []Reg{1, 2}
	if s := call.String(); s != "call f(r1, r2)" {
		t.Errorf("void call = %q", s)
	}
	ag := p.NewInstr(AddrGlobal)
	ag.Dst, ag.Sym, ag.Imm = 1, "g", 8
	if s := ag.String(); s != "r1 = addrg g+8" {
		t.Errorf("addrg+off = %q", s)
	}
	ret := p.NewInstr(Ret)
	if ret.String() != "ret" {
		t.Errorf("bare ret = %q", ret.String())
	}
	if Op(999).String() == "" {
		t.Error("unknown op renders empty")
	}
	if got := Op(999).String(); got != "Op(999)" {
		t.Errorf("unknown op = %q", got)
	}
}

func TestFuncAndProgramString(t *testing.T) {
	p := NewProgram()
	p.AddGlobal("g", 8, 5)
	f := buildDiamond(p)
	f.Blocks[0].ParallelHeader = true
	p.AddFunc(f)
	txt := p.String()
	for _, want := range []string{"global g", "func f", "[parallel header]", "-> b1, b2"} {
		if !strings.Contains(txt, want) {
			t.Errorf("program text missing %q:\n%s", want, txt)
		}
	}
}

func TestVerifyProgramDuplicateIDs(t *testing.T) {
	p := NewProgram()
	f := buildDiamond(p)
	// Force a duplicate ID.
	f.Blocks[1].Instrs[0].ID = f.Blocks[2].Instrs[0].ID
	p.AddFunc(f)
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "duplicate instruction ID") {
		t.Fatalf("expected duplicate-ID error, got %v", err)
	}
}

func TestVerifyUndefinedGlobal(t *testing.T) {
	p := NewProgram()
	f := buildDiamond(p)
	ag := p.NewInstr(AddrGlobal)
	ag.Dst = 0
	ag.Sym = "ghost"
	f.Entry.Instrs = append([]*Instr{ag}, f.Entry.Instrs...)
	p.AddFunc(f)
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "undefined global") {
		t.Fatalf("expected undefined-global error, got %v", err)
	}
}

func TestDeepCopyIndependence(t *testing.T) {
	p := NewProgram()
	p.AddGlobal("g", 8, 1)
	f := buildDiamond(p)
	p.AddFunc(f)
	cp := p.DeepCopy()
	if err := cp.Verify(); err != nil {
		t.Fatal(err)
	}
	// IDs preserved exactly.
	for i, b := range f.Blocks {
		for j, in := range b.Instrs {
			c := cp.Funcs[0].Blocks[i].Instrs[j]
			if c.ID != in.ID || c.Origin != in.Origin {
				t.Fatal("IDs changed in deep copy")
			}
			if c == in {
				t.Fatal("deep copy aliases instruction")
			}
		}
	}
	// Mutating the copy leaves the original intact.
	cp.Funcs[0].Blocks[0].Instrs[0].Imm = 999
	if f.Blocks[0].Instrs[0].Imm == 999 {
		t.Fatal("copy mutation leaked")
	}
	// New instructions in the copy get fresh IDs beyond the original's.
	ni := cp.NewInstr(Const)
	if ni.ID < p.MaxInstrID() {
		t.Errorf("copy's fresh ID %d collides with original space (< %d)", ni.ID, p.MaxInstrID())
	}
}
