package ir

import (
	"fmt"
	"sort"
)

// Verify checks structural invariants of a function's IR:
//
//   - every block ends in exactly one terminator, with no terminator mid-block
//   - successor counts match the terminator kind (Br:1, CondBr:2, Ret:0)
//   - every successor and predecessor belongs to the function
//   - predecessor lists are consistent with successor lists
//   - no block appears twice in the function's block list
//   - register operands are within [0, NumRegs)
//   - an entry block exists and belongs to the function
//
// It returns the first violation found.
func (f *Func) Verify() error {
	if f.Entry == nil {
		return fmt.Errorf("%s: no entry block", f.Name)
	}
	inFunc := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if inFunc[b] {
			return fmt.Errorf("%s: block b%d appears twice in the block list", f.Name, b.Index)
		}
		inFunc[b] = true
	}
	if !inFunc[f.Entry] {
		return fmt.Errorf("%s: entry block not in function", f.Name)
	}
	checkReg := func(b *Block, in *Instr, r Reg, what string) error {
		if r == None {
			return nil
		}
		if int(r) < 0 || int(r) >= f.NumRegs {
			return fmt.Errorf("%s b%d: %v: %s register r%d out of range [0,%d)",
				f.Name, b.Index, in, what, int(r), f.NumRegs)
		}
		return nil
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s b%d: empty block", f.Name, b.Index)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				if isLast {
					return fmt.Errorf("%s b%d: last instruction %v is not a terminator", f.Name, b.Index, in)
				}
				return fmt.Errorf("%s b%d: terminator %v in mid-block position %d", f.Name, b.Index, in, i)
			}
			if err := checkReg(b, in, in.Dst, "dst"); err != nil {
				return err
			}
			for _, u := range in.Uses() {
				if err := checkReg(b, in, u, "use"); err != nil {
					return err
				}
			}
			if in.Op == Call {
				for _, a := range in.Args {
					if err := checkReg(b, in, a, "arg"); err != nil {
						return err
					}
				}
			}
		}
		t := b.Instrs[len(b.Instrs)-1]
		wantSuccs := map[Op]int{Br: 1, CondBr: 2, Ret: 0}[t.Op]
		if len(b.Succs) != wantSuccs {
			return fmt.Errorf("%s b%d: %v has %d successors, want %d",
				f.Name, b.Index, t, len(b.Succs), wantSuccs)
		}
		for _, s := range b.Succs {
			if !inFunc[s] {
				return fmt.Errorf("%s b%d: successor b%d not in function", f.Name, b.Index, s.Index)
			}
		}
	}
	// Pred/succ consistency.
	predCount := make(map[[2]*Block]int)
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			predCount[[2]*Block{b, s}]++
		}
	}
	for _, b := range f.Blocks {
		for _, p := range b.Preds {
			if !inFunc[p] {
				return fmt.Errorf("%s b%d: predecessor b%d not in function", f.Name, b.Index, p.Index)
			}
			key := [2]*Block{p, b}
			if predCount[key] == 0 {
				return fmt.Errorf("%s: b%d lists pred b%d but no matching succ edge",
					f.Name, b.Index, p.Index)
			}
			predCount[key]--
		}
	}
	// Report the lowest-numbered broken edge, not whichever the map
	// yields first: verifier errors are part of deterministic output.
	var bad [][2]*Block
	for key, n := range predCount {
		if n != 0 {
			bad = append(bad, key)
		}
	}
	sort.Slice(bad, func(i, j int) bool {
		if bad[i][0].Index != bad[j][0].Index {
			return bad[i][0].Index < bad[j][0].Index
		}
		return bad[i][1].Index < bad[j][1].Index
	})
	if len(bad) > 0 {
		key := bad[0]
		return fmt.Errorf("%s: edge b%d->b%d missing from pred list of b%d",
			f.Name, key[0].Index, key[1].Index, key[1].Index)
	}
	return nil
}

// Verify checks every function in the program plus program-level
// invariants: unique global addresses, call targets resolve, and unique
// instruction IDs.
func (p *Program) Verify() error {
	seen := make(map[int]string)
	for _, f := range p.Funcs {
		if err := f.Verify(); err != nil {
			return err
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if prev, dup := seen[in.ID]; dup {
					return fmt.Errorf("duplicate instruction ID %d in %s and %s", in.ID, prev, f.Name)
				}
				seen[in.ID] = f.Name
				if in.Op == Call {
					if _, ok := p.FuncMap[in.Sym]; !ok {
						return fmt.Errorf("%s: call to undefined function %s", f.Name, in.Sym)
					}
				}
				if in.Op == AddrGlobal {
					if _, ok := p.GlobalMap[in.Sym]; !ok {
						return fmt.Errorf("%s: reference to undefined global %s", f.Name, in.Sym)
					}
				}
			}
		}
	}
	for i := 1; i < len(p.Globals); i++ {
		prev, cur := p.Globals[i-1], p.Globals[i]
		if cur.Addr < prev.Addr+prev.Size {
			return fmt.Errorf("globals %s and %s overlap", prev.Name, cur.Name)
		}
	}
	return nil
}
