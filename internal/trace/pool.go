package trace

import "sync"

// Event buffers are the interpreter's allocation hot loop: every dynamic
// instruction appends one Event, and a full figure sweep produces tens
// of millions of them across traces that are analyzed once and
// discarded. The pool below recycles the backing arrays of those
// buffers between runs. Ownership is explicit: a ProgramTrace owns its
// buffers until Release is called, after which the trace's segments
// must not be touched again — the classic sync.Pool aliasing bug
// (releasing a buffer something still reads) is what
// interp's contamination test guards against.

// minEventCap is the smallest buffer the pool hands out or takes back;
// tiny buffers are cheaper to reallocate than to recycle.
const minEventCap = 64

var eventPool = sync.Pool{}

// GetEvents returns an empty event buffer, reusing a pooled backing
// array when one is available. Append to it as usual; buffers that
// outgrow their capacity migrate to the pool at their grown size.
func GetEvents() []Event {
	if v := eventPool.Get(); v != nil {
		return (*v.(*[]Event))[:0]
	}
	return make([]Event, 0, minEventCap)
}

// PutEvents returns one event buffer to the pool. The caller must not
// use the slice afterwards. Events are pointer-free (the static
// instruction is an index, not an *ir.Instr), so pooled buffers cannot
// pin anything and need no zeroing pass — the memclr that used to
// dominate the profile of buffer-heavy runs (see docs/perf.md). Stale
// contents beyond the logical length are invisible: GetEvents hands the
// buffer back at length zero and every consumer appends.
func PutEvents(evs []Event) {
	if cap(evs) < minEventCap {
		return
	}
	evs = evs[:0]
	eventPool.Put(&evs)
}

// Release returns every event buffer of the trace to the pool and
// clears the segment list. Output is kept (functional-equivalence
// checks read it after timing is done). Call it only when nothing —
// profiler, simulator, cache — still references the trace's events;
// traces memoized for reuse (Run's per-binary trace cells) are never
// released.
func (t *ProgramTrace) Release() {
	for i := range t.Segments {
		s := &t.Segments[i]
		if s.Seq != nil {
			PutEvents(s.Seq)
			s.Seq = nil
		}
		if s.Region != nil {
			for _, e := range s.Region.Epochs {
				PutEvents(e.Events)
				e.Events = nil
			}
			s.Region = nil
		}
	}
	t.Segments = nil
}
