package trace

import (
	"testing"

	"tlssync/internal/ir"
)

func mkProgramTrace() *ProgramTrace {
	p := ir.NewProgram()
	ev := func() Event { return Event{SI: int32(p.NewInstr(ir.Const).ID)} }
	seq := []Event{ev(), ev(), ev()}
	e0 := &Epoch{Index: 0, Events: []Event{ev(), ev()}}
	e1 := &Epoch{Index: 1, Events: []Event{ev(), ev(), ev(), ev()}}
	return &ProgramTrace{
		Segments: []Segment{
			{Seq: seq},
			{Region: &RegionInstance{RegionID: 0, Epochs: []*Epoch{e0, e1}}},
			{Seq: seq[:1]},
			{Region: &RegionInstance{RegionID: 1, Epochs: []*Epoch{e0}}},
		},
	}
}

func TestTraceCounts(t *testing.T) {
	tr := mkProgramTrace()
	if got := tr.Events(); got != 3+2+4+1+2 {
		t.Errorf("Events = %d, want 12", got)
	}
	if got := tr.EpochCount(); got != 3 {
		t.Errorf("EpochCount = %d, want 3", got)
	}
	if got := tr.RegionEvents(); got != 2+4+2 {
		t.Errorf("RegionEvents = %d, want 8", got)
	}
}

func TestEmptyTraceCounts(t *testing.T) {
	tr := &ProgramTrace{}
	if tr.Events() != 0 || tr.EpochCount() != 0 || tr.RegionEvents() != 0 {
		t.Error("empty trace has nonzero counts")
	}
}

func TestFlagsDistinct(t *testing.T) {
	flags := []uint8{FlagUFF, FlagStale, FlagNullSignal}
	for i, a := range flags {
		if a == 0 {
			t.Errorf("flag %d is zero", i)
		}
		for j, b := range flags {
			if i != j && a&b != 0 {
				t.Errorf("flags %d and %d overlap", i, j)
			}
		}
	}
}
