package trace

import (
	"reflect"
	"testing"

	"tlssync/internal/racedetect"
)

// TestEventAppendAllocBudget is the allocation-budget regression test
// for the interpreter's hottest path: appending events to a pooled
// buffer. Once a buffer of sufficient capacity is circulating in the
// pool, a Get/append-many/Put cycle must not allocate at all — events
// are pointer-free values and the backing array is recycled. If this
// fails, either Event grew a pointer (breaking the no-zeroing contract
// in PutEvents) or the pool stopped recycling; see docs/perf.md.
func TestEventAppendAllocBudget(t *testing.T) {
	if racedetect.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	const n = 4096
	// Warm the pool with a buffer big enough that the measured cycles
	// never need to grow it.
	warm := GetEvents()
	for i := 0; i < n; i++ {
		warm = append(warm, Event{SI: int32(i)})
	}
	PutEvents(warm)

	// Budget 1 (not 0): GC can empty the pool's victim cache mid-run,
	// forcing one fresh backing array.
	const budget = 1.0
	allocs := testing.AllocsPerRun(100, func() {
		evs := GetEvents()
		for i := 0; i < n; i++ {
			evs = append(evs, Event{SI: int32(i), Addr: int64(i), Val: int64(i)})
		}
		PutEvents(evs)
	})
	if allocs > budget {
		t.Errorf("appending %d events to a pooled buffer allocates %.0f objects/op, budget %.0f — the event-buffer pool regressed (see docs/perf.md)", n, allocs, budget)
	}
}

// TestEventStaysPointerFree pins the property the whole pooling design
// rests on: trace.Event contains no pointers, so pooled buffers need no
// zeroing and the GC never scans them. Growing Event with a pointer
// field would silently reintroduce both costs.
func TestEventStaysPointerFree(t *testing.T) {
	var hasPtr func(reflect.Type) bool
	hasPtr = func(ty reflect.Type) bool {
		switch ty.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Map, reflect.String,
			reflect.Chan, reflect.Func, reflect.Interface, reflect.UnsafePointer:
			return true
		case reflect.Struct:
			for i := 0; i < ty.NumField(); i++ {
				if hasPtr(ty.Field(i).Type) {
					return true
				}
			}
		case reflect.Array:
			return hasPtr(ty.Elem())
		}
		return false
	}
	if hasPtr(reflect.TypeOf(Event{})) {
		t.Fatal("trace.Event contains pointer fields: pooled buffers would pin memory and PutEvents would need a zeroing pass (see docs/perf.md)")
	}
}
