// Package trace defines the execution-trace records shared by the
// functional interpreter (which produces them) and the TLS timing
// simulator (which replays them under different value-communication
// policies).
//
// The reproduction uses a functional-first/timing-after split: the
// interpreter executes the program sequentially, so every load observes
// the sequentially-correct value, and emits one Event per dynamic
// instruction. The timing simulator then replays per-epoch event streams
// on a simulated 4-CPU TLS chip multiprocessor; data-dependence violations
// are decided purely by address-overlap timing, which the events carry
// exactly. A squashed epoch replays its own trace (the standard
// trace-driven approximation; see DESIGN.md §2).
package trace

import "tlssync/internal/ir"

// Event is one dynamic instruction execution.
//
// The static instruction is named by index (SI), not by pointer: a full
// figure sweep materializes tens of millions of events, and a pointer
// field would make every event buffer a GC-scannable object that pins
// its program's instructions. The 24-byte pointer-free encoding lets
// the collector skip event buffers entirely and lets the buffer pool
// recycle them without zeroing. Resolve SI through the owning trace's
// Code table: tr.Code[ev.SI].
type Event struct {
	// Addr is the effective address for Load/Store/LoadSync, and the
	// forwarded address for SignalMem / WaitMemAddr events.
	Addr int64

	// Val is the value loaded, stored, or forwarded.
	Val int64

	// SI is the static instruction's program-unique ID (ir.Instr.ID),
	// an index into the trace's Code table.
	SI int32

	// Flags carries protocol outcomes computed by the functional
	// interpreter (see the Flag* constants).
	Flags uint8
}

// Event flags.
const (
	// FlagUFF marks a LoadSync executed with the use-forwarded-value flag
	// set (address matched, no stale forwarding, no local overwrite): the
	// load is violation-immune in the timing model.
	FlagUFF uint8 = 1 << iota

	// FlagStale marks a WaitMemAddr whose producer later overwrote the
	// forwarded address (signal-address-buffer hit): the timing model
	// restarts the consumer when the producer's conflicting store executes.
	FlagStale

	// FlagNullSignal marks a WaitMemAddr that received a NULL-address
	// signal (the producer path never stored the group).
	FlagNullSignal
)

// Epoch is the event stream of one loop iteration of a speculative region.
type Epoch struct {
	Index  int // iteration number within the region instance
	Events []Event
}

// RegionInstance is one dynamic execution of a speculatively-parallelized
// loop: the sequence of epochs it spawned.
type RegionInstance struct {
	RegionID int
	Epochs   []*Epoch
}

// Segment is either a sequential stretch of execution or a region instance.
// Exactly one field is non-nil.
type Segment struct {
	Seq    []Event
	Region *RegionInstance
}

// ProgramTrace is the full execution: alternating sequential segments and
// parallelized region instances, in program order.
type ProgramTrace struct {
	Segments []Segment

	// Code is the executed program's static-instruction table: Code[ev.SI]
	// is the instruction that produced ev. Each variant's trace carries
	// its own program's table (instruction IDs are preserved across
	// DeepCopy, so profiling references stay valid in every variant).
	Code ir.Code

	// Output collects values printed by the program, for functional
	// correctness checks across compiled variants.
	Output []int64
}

// Events returns the total number of events in the trace.
func (t *ProgramTrace) Events() int {
	n := 0
	for _, s := range t.Segments {
		n += len(s.Seq)
		if s.Region != nil {
			for _, e := range s.Region.Epochs {
				n += len(e.Events)
			}
		}
	}
	return n
}

// EpochCount returns the total number of epochs across region instances.
func (t *ProgramTrace) EpochCount() int {
	n := 0
	for _, s := range t.Segments {
		if s.Region != nil {
			n += len(s.Region.Epochs)
		}
	}
	return n
}

// RegionEvents returns the total number of events inside regions.
func (t *ProgramTrace) RegionEvents() int {
	n := 0
	for _, s := range t.Segments {
		if s.Region != nil {
			for _, e := range s.Region.Epochs {
				n += len(e.Events)
			}
		}
	}
	return n
}
