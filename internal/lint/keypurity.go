package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// analyzeKeyPurity is rule K001: hygiene of the structs whose JSON
// marshaling feeds content-addressed store keys.
//
//   - Every field must carry an explicit json tag. An untagged field
//     marshals under its Go name implicitly, so a rename silently
//     changes every store key; worse, nobody ever *decided* the field
//     belongs in the key. `json:"-"` is the explicit way to keep a
//     field out (the Workers rule from the parallel-pipeline PR: knobs
//     that change wall-clock but not artifacts must not perturb keys).
//   - Unexported fields are forbidden: encoding/json skips them
//     silently, so behavior-relevant state would be invisible to the
//     key — two different computations aliasing one artifact.
//   - A `json:"-"` field must not be read inside an artifact-content
//     producer (a function that calls store.Marshal / store.Key /
//     json.Marshal): what is excluded from the key must not leak into
//     the bytes the key addresses.
var analyzeKeyPurity = &Analyzer{
	Rule: RuleKeyPurity,
	Doc:  "store-key struct fields must be explicitly tagged and key-excluded fields must not reach artifact bytes",
	Run:  runKeyPurity,
}

func runKeyPurity(p *Pass) {
	pkg := p.Pkg

	// Part A: tag discipline on key structs declared in this package.
	keyStructs := make(map[*types.Named]bool)
	for _, qname := range p.Cfg.KeyStructs {
		dot := strings.LastIndex(qname, ".")
		if dot < 0 {
			continue
		}
		path, name := qname[:dot], qname[dot+1:]
		if path != pkg.Path {
			// Resolve through imports so part B works on uses of key
			// structs from other packages.
			if imported := findImported(pkg.Types, path); imported != nil {
				if obj, ok := imported.Scope().Lookup(name).(*types.TypeName); ok {
					if n, ok := obj.Type().(*types.Named); ok {
						keyStructs[n] = true
					}
				}
			}
			continue
		}
		obj, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		n, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		keyStructs[n] = true
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				p.Report(f.Pos(), "key struct %s has unexported field %s: encoding/json skips it silently, so it is invisible to store keys while still influencing behavior", name, f.Name())
				continue
			}
			tag := reflect.StructTag(st.Tag(i))
			if _, ok := tag.Lookup("json"); !ok {
				p.Report(f.Pos(), "key struct %s field %s has no explicit json tag: store keys hash this struct's JSON, so membership in the key must be a decision (`json:%q` to include, `json:\"-\"` to exclude)", name, f.Name(), f.Name())
			}
		}
	}

	// Part B: `json:"-"` fields of key structs must not be read inside
	// artifact-content producers.
	if len(keyStructs) == 0 {
		return
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !callsAny(pkg.Info, fd.Body, p.Cfg.MarshalFuncs) {
				continue
			}
			checkDashReads(p, keyStructs, fd)
		}
	}
}

// callsAny reports whether body contains a call to any of the listed
// function IDs.
func callsAny(info *types.Info, body ast.Node, ids []string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if inList(calleeID(info, call), ids) {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkDashReads flags selector reads of `json:"-"` fields of key
// structs inside fd.
func checkDashReads(p *Pass, keyStructs map[*types.Named]bool, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		recv := selection.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || !keyStructs[named] {
			return true
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return true
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) != field {
				continue
			}
			tag := reflect.StructTag(st.Tag(i))
			if v, _ := tag.Lookup("json"); v == "-" || strings.HasPrefix(v, "-,") {
				p.Report(sel.Pos(), "%s reads key-excluded field %s.%s inside an artifact-content producer: a `json:\"-\"` field must never reach the bytes its key addresses", fd.Name.Name, named.Obj().Name(), field.Name())
			}
		}
		return true
	})
}

// findImported returns the imported *types.Package with the given path
// reachable from pkg (direct imports only).
func findImported(pkg *types.Package, path string) *types.Package {
	for _, imp := range pkg.Imports() {
		if imp.Path() == path {
			return imp
		}
	}
	return nil
}
