package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzeDeterminism is rule D001: inside the determinism-contract
// packages (whose outputs — IR, simulation results, fingerprints,
// deterministic report sections — must be byte-identical across runs
// and across -j), flag
//
//   - range statements over maps whose iteration order can escape into
//     the loop's results. A map range is fine when the body is provably
//     order-insensitive: writes into other maps, delete, integer/bool
//     commutative accumulation (+=, ++, |=, ...), true max/min
//     selection (`if v > best { best = v }` over the same expressions),
//     idempotent constant assignment (`changed = true`), and constant
//     existence-returns over an otherwise side-effect-free body.
//     Anything that turns iteration order into data order — append,
//     plain assignment of a different expression to an outer variable
//     (the select-a-winner pattern that caused the sim.staleRead
//     flicker), early break, calls with effects — is flagged unless the
//     keys are collected and sorted first.
//   - wall-clock and environment reads (time.Now, global math/rand,
//     GOMAXPROCS, ...) whose values could flow into deterministic
//     bytes. Seeded *rand.Rand methods are allowed; the package-level
//     math/rand functions (process-global state) are not.
//
// The compliant form for an order-escaping loop is keys-sort-range:
//
//	keys := make([]K, 0, len(m))
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, ...)
//	for _, k := range keys { ... m[k] ... }
//
// and for the eligible subset (key-only or key+value ranges with a
// basic ordered key type) the diagnostic carries a mechanical fix that
// tlslint -fix applies.
var analyzeDeterminism = &Analyzer{
	Rule: RuleDeterminism,
	Doc:  "map-iteration order or wall-clock state escaping into deterministic outputs",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	cfg, pkg := p.Cfg, p.Pkg
	if !cfg.DetScope.HasPackage(pkg.Path) {
		return
	}
	u := newPurity(pkg)
	for i, f := range pkg.Files {
		if !cfg.DetScope.HasFile(pkg.Path, pkg.GoFiles[i]) {
			continue
		}
		d := &detWalker{p: p, u: u, file: f}
		ast.Inspect(f, d.visit)
	}
}

type detWalker struct {
	p    *Pass
	u    *purity
	file *ast.File
}

func (d *detWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		d.checkCall(n)
	case *ast.RangeStmt:
		d.checkRange(n)
	}
	return true
}

// checkCall flags wall-clock/environment reads and global math/rand use.
func (d *detWalker) checkCall(call *ast.CallExpr) {
	fn := calleeFunc(d.p.Pkg.Info, call)
	if fn == nil {
		return
	}
	id := funcID(fn)
	if inList(id, d.p.Cfg.DetForbiddenCalls) {
		d.p.Report(call.Pos(), "call to %s in a determinism-contract package: its result must not flow into deterministic outputs", id)
		return
	}
	// Global math/rand functions draw from process-global state that
	// differs run to run; seeded rand.Rand methods are deterministic.
	if pkgp := fn.Pkg(); pkgp != nil && (pkgp.Path() == "math/rand" || pkgp.Path() == "math/rand/v2") {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && fn.Name() != "New" && fn.Name() != "NewSource" && fn.Name() != "NewPCG" && fn.Name() != "NewChaCha8" {
			d.p.Report(call.Pos(), "global %s.%s uses process-wide PRNG state; use a seeded *rand.Rand", pkgp.Path(), fn.Name())
		}
	}
}

// checkRange flags order-escaping map ranges.
func (d *detWalker) checkRange(r *ast.RangeStmt) {
	info := d.p.Pkg.Info
	tv, ok := info.Types[r.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if r.Key == nil {
		return // `for range m`: iteration count only, order-free
	}
	if benignBody(d.u, r.Body.List) {
		return
	}
	if existenceBody(d.u, r.Body.List) {
		return // side-effect-free scan returning constants: order-free
	}
	// The keys-collect form is fine iff the collected slice is sorted
	// afterwards in the enclosing block.
	var target string
	if collectBody(d.u, r.Body.List, &target) && target != "" {
		if sortedAfter(d.u, d.enclosingBlock(r), r, target) {
			return
		}
		d.p.Report(r.Pos(), "map keys collected into %q are never sorted: iteration order escapes into deterministic output; sort %s before use", target, target)
		return
	}
	fix, suggestion := sortedKeysFix(d.p.Pkg, d.file, r)
	d.p.ReportFix(r.Pos(), fix, suggestion,
		"range over map with order-escaping body in a determinism-contract package: iterate sorted keys instead")
}

// ---------------------------------------------------------------------------
// Purity context

// purity memoizes which same-package functions are read-only, letting
// pureExpr accept calls to trivial predicates (isMemSyncOp-style
// classifiers) without a cross-package effect system.
type purity struct {
	pkg   *Package
	cache map[*types.Func]bool
	decls map[token.Pos]*ast.FuncDecl
}

func newPurity(pkg *Package) *purity {
	return &purity{pkg: pkg, cache: make(map[*types.Func]bool)}
}

func (u *purity) info() *types.Info { return u.pkg.Info }

// readOnlyFunc reports whether fn is a same-package function whose body
// provably has no side effects and no order-observable state (no
// assignments beyond pure local defines, no loops, no calls except
// builtins/conversions/other read-only functions). Calls to such a
// function may appear in "pure" expressions.
func (u *purity) readOnlyFunc(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != u.pkg.Path {
		return false
	}
	if v, ok := u.cache[fn]; ok {
		return v
	}
	u.cache[fn] = false // cycle guard: recursive functions are not accepted
	decl := u.funcDeclFor(fn)
	ok := decl != nil && decl.Body != nil && u.readOnlyBody(decl.Body)
	u.cache[fn] = ok
	return ok
}

func (u *purity) funcDeclFor(fn *types.Func) *ast.FuncDecl {
	if u.decls == nil {
		u.decls = make(map[token.Pos]*ast.FuncDecl)
		for _, f := range u.pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					u.decls[fd.Name.Pos()] = fd
				}
			}
		}
	}
	return u.decls[fn.Pos()]
}

func (u *purity) readOnlyBody(body ast.Node) bool {
	ok := true
	ast.Inspect(body, func(n ast.Node) bool {
		if !ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				ok = false
			}
		case *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt, *ast.DeferStmt,
			*ast.RangeStmt, *ast.ForStmt, *ast.SelectStmt, *ast.FuncLit:
			ok = false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ok = false
			}
		case *ast.CallExpr:
			if isBuiltin(u.info(), n, "len", "cap", "min", "max") || isConversion(u.info(), n) {
				return true
			}
			if fn := calleeFunc(u.info(), n); fn != nil && u.readOnlyFunc(fn) {
				return true
			}
			ok = false
		}
		return ok
	})
	return ok
}

// ---------------------------------------------------------------------------
// Benign-body analysis

// benignBody reports whether executing stmts in any iteration order
// provably yields the same final state: map-index writes, delete,
// integer/bool commutative accumulation, order-free control flow.
// Notably NOT benign: append, plain `=` of a non-constant to an outer
// variable (the select-a-winner pattern — a min/max by a non-total
// order flickers with map order), early return/break, effectful calls,
// sends, string/float accumulation (concatenation order / FP rounding
// order are observable).
func benignBody(u *purity, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		if !benignStmt(u, s) {
			return false
		}
	}
	return true
}

func benignStmt(u *purity, s ast.Stmt) bool {
	info := u.info()
	switch s := s.(type) {
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		return isBuiltin(info, call, "delete") && pureExprs(u, call.Args)
	case *ast.IncDecStmt:
		return pureExpr(u, s.X)
	case *ast.AssignStmt:
		return benignAssign(u, s)
	case *ast.IfStmt:
		if isMaxMin(u, s) {
			return true
		}
		if s.Init != nil && !benignStmt(u, s.Init) {
			return false
		}
		if !pureExpr(u, s.Cond) {
			return false
		}
		if !benignBody(u, s.Body.List) {
			return false
		}
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				return benignBody(u, e.List)
			case *ast.IfStmt:
				return benignStmt(u, e)
			}
			return false
		}
		return true
	case *ast.BlockStmt:
		return benignBody(u, s.List)
	case *ast.BranchStmt:
		// continue skips one element order-independently; break/goto
		// make which elements were processed depend on order.
		return s.Tok == token.CONTINUE
	case *ast.ForStmt, *ast.RangeStmt:
		// Nested loops: benign iff their own bodies are (a nested map
		// range is visited separately by the walker anyway).
		switch l := s.(type) {
		case *ast.ForStmt:
			return (l.Init == nil || benignStmt(u, l.Init)) &&
				(l.Cond == nil || pureExpr(u, l.Cond)) &&
				(l.Post == nil || benignStmt(u, l.Post)) &&
				benignBody(u, l.Body.List)
		case *ast.RangeStmt:
			return pureExpr(u, l.X) && benignBody(u, l.Body.List)
		}
		return false
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || !pureExprs(u, vs.Values) {
				return false
			}
		}
		return true
	}
	return false
}

// benignAssign classifies one assignment.
func benignAssign(u *purity, a *ast.AssignStmt) bool {
	info := u.info()
	switch a.Tok {
	case token.DEFINE:
		// Loop-local definition with a pure RHS cannot observe order by
		// itself; any order-escaping USE of it is caught where it is used.
		return pureExprs(u, a.Rhs)
	case token.ASSIGN:
		// Plain `=`: benign when every target is a map index (the
		// transfer-into-another-map idiom), the blank identifier, or —
		// for pairwise assignments — a variable assigned a constant
		// (idempotent: every iteration writes the same value, so final
		// state does not depend on which iteration wrote it last).
		pairwise := len(a.Lhs) == len(a.Rhs)
		for i, lhs := range a.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			if pairwise {
				if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
					if tv, ok := info.Types[a.Rhs[i]]; ok && tv.Value != nil {
						continue // constant RHS: idempotent
					}
				}
			}
			ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok {
				return false
			}
			tv, ok := info.Types[ix.X]
			if !ok {
				return false
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return false
			}
		}
		return pureExprs(u, a.Rhs)
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative accumulation — for integers and booleans only.
		// String += concatenates in iteration order; float += rounds in
		// iteration order; both are order-observable.
		if len(a.Lhs) != 1 || !pureExpr(u, a.Lhs[0]) || !pureExprs(u, a.Rhs) {
			return false
		}
		tv, ok := info.Types[a.Lhs[0]]
		if !ok {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		if !ok {
			return false
		}
		return b.Info()&(types.IsInteger|types.IsBoolean) != 0
	}
	return false
}

// isMaxMin recognizes the true max/min selection
//
//	if A < B { B = A }   (any of < > <= >=)
//
// where the compared expressions are exactly the assigned ones: the
// final value of B is the extremum over all A, independent of
// iteration order (on ties the candidate equals the incumbent, so
// first-wins vs last-wins is unobservable). The staleRead bug class —
// comparing one expression but assigning ANOTHER alongside it — does
// not match: the body must be that single assignment.
func isMaxMin(u *purity, s *ast.IfStmt) bool {
	if s.Init != nil || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	cond, ok := ast.Unparen(s.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	a, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || a.Tok != token.ASSIGN || len(a.Lhs) != 1 || len(a.Rhs) != 1 {
		return false
	}
	if !pureExpr(u, a.Lhs[0]) || !pureExpr(u, a.Rhs[0]) {
		return false
	}
	lhs, rhs := types.ExprString(a.Lhs[0]), types.ExprString(a.Rhs[0])
	cx, cy := types.ExprString(ast.Unparen(cond.X)), types.ExprString(ast.Unparen(cond.Y))
	if lhs == rhs {
		return false
	}
	return (lhs == cx && rhs == cy) || (lhs == cy && rhs == cx)
}

// existenceBody recognizes the order-free early-return scan: every
// statement is side-effect-free (pure defines, pure conditions) and
// every return yields only constants — `for k, v := range m { if
// pred(v) { return true } }`. Which element triggers the return varies
// with order, but the returned value and the program state do not.
func existenceBody(u *purity, stmts []ast.Stmt) bool {
	info := u.info()
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				tv, ok := info.Types[res]
				if !ok || tv.Value == nil {
					return false
				}
			}
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE || !pureExprs(u, s.Rhs) {
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil && !existenceBody(u, []ast.Stmt{s.Init}) {
				return false
			}
			if !pureExpr(u, s.Cond) || !existenceBody(u, s.Body.List) {
				return false
			}
			if s.Else != nil {
				if !existenceBody(u, []ast.Stmt{s.Else}) {
					return false
				}
			}
		case *ast.BlockStmt:
			if !existenceBody(u, s.List) {
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// pureExpr reports whether e evaluates without effects: no calls
// except len/cap/min/max, conversions, and same-package read-only
// functions; no channel operations — i.e. its value depends only on
// current state, and evaluating it cannot observe iteration order
// through side effects.
func pureExpr(u *purity, e ast.Expr) bool {
	if e == nil {
		return true
	}
	info := u.info()
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(info, n, "len", "cap", "min", "max") || isConversion(info, n) {
				return true
			}
			if fn := calleeFunc(info, n); fn != nil && u.readOnlyFunc(fn) {
				return true
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		}
		return true
	})
	return pure
}

func pureExprs(u *purity, es []ast.Expr) bool {
	for _, e := range es {
		if !pureExpr(u, e) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Keys-collect-then-sort recognition

// collectBody reports whether stmts form a collect loop: appends into
// exactly one outer slice (possibly under pure conditions, alongside
// otherwise-benign statements). The target name is written through
// target; the caller must verify the slice is sorted after the loop.
func collectBody(u *purity, stmts []ast.Stmt, target *string) bool {
	for _, s := range stmts {
		if name := appendTarget(u, s); name != "" {
			if *target == "" {
				*target = name
			}
			if *target != name {
				return false // two targets: relative order between them escapes
			}
			continue
		}
		if benignStmt(u, s) {
			continue
		}
		switch s := s.(type) {
		case *ast.IfStmt:
			if s.Init != nil && !benignStmt(u, s.Init) {
				return false
			}
			if !pureExpr(u, s.Cond) {
				return false
			}
			if !collectBody(u, s.Body.List, target) {
				return false
			}
			if s.Else != nil {
				if !collectBody(u, []ast.Stmt{s.Else}, target) {
					return false
				}
			}
		case *ast.BlockStmt:
			if !collectBody(u, s.List, target) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// appendTarget returns the name x when s is `x = append(x, <pure>...)`
// with x a plain identifier, else "".
func appendTarget(u *purity, s ast.Stmt) string {
	a, ok := s.(*ast.AssignStmt)
	if !ok || len(a.Lhs) != 1 || len(a.Rhs) != 1 || (a.Tok != token.ASSIGN && a.Tok != token.DEFINE) {
		return ""
	}
	lhs, ok := a.Lhs[0].(*ast.Ident)
	if !ok {
		return ""
	}
	call, ok := a.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(u.info(), call, "append") || len(call.Args) < 1 {
		return ""
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return ""
	}
	if !pureExprs(u, call.Args[1:]) {
		return ""
	}
	return lhs.Name
}

// sortedAfter reports whether, in the block containing the range
// statement, a later statement sorts the named slice (sort.* or
// slices.Sort* with the slice as first argument).
func sortedAfter(u *purity, block *ast.BlockStmt, r *ast.RangeStmt, name string) bool {
	if block == nil {
		return false
	}
	info := u.info()
	past := false
	for _, s := range block.List {
		if s == ast.Stmt(r) {
			past = true
			continue
		}
		if !past {
			continue
		}
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || !isSortFunc(fn.Pkg().Path(), fn.Name()) {
				return true
			}
			if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && arg.Name == name {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// isSortFunc recognizes the stdlib slice-sorting entry points.
func isSortFunc(pkgPath, name string) bool {
	switch pkgPath {
	case "sort":
		switch name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		return strings.HasPrefix(name, "Sort")
	}
	return false
}

// enclosingBlock finds the block statement that has r as a direct
// member, or nil (range directly under a case/comm clause).
func (d *detWalker) enclosingBlock(r ast.Stmt) *ast.BlockStmt {
	var found *ast.BlockStmt
	ast.Inspect(d.file, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if b, ok := n.(*ast.BlockStmt); ok {
			for _, s := range b.List {
				if s == r {
					found = b
					return false
				}
			}
		}
		return true
	})
	return found
}

// rangeKeyType returns the key type of the ranged-over map.
func rangeKeyType(info *types.Info, r *ast.RangeStmt) (types.Type, bool) {
	tv, ok := info.Types[r.X]
	if !ok {
		return nil, false
	}
	m, ok := tv.Type.Underlying().(*types.Map)
	if !ok {
		return nil, false
	}
	return m.Key(), true
}
