package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// analyzeJournalOrder is rule J001: journal-before-execute. In the
// daemon, every enqueue of recoverable work (jobs.Engine.Do with a
// journaled job kind) must be dominated — on every control-flow path
// of the enclosing function — by a write-ahead journal begin. A job
// that starts executing before its intent is durable is exactly the
// job a SIGKILL loses: the crash harness can only prove exactly-once
// for work the journal knows about.
//
// Domination is checked structurally (sound for Go's structured
// control flow): a begin call counts only when it appears in a
// statement that precedes the enqueue at some nesting level of the
// same function — a begin inside an if-branch does not dominate code
// after the branch. Enqueues whose key argument carries a configured
// non-journaled literal prefix (idempotent, re-derivable work like
// "prepare/" compiles) are exempt.
var analyzeJournalOrder = &Analyzer{
	Rule: RuleJournal,
	Doc:  "job enqueue must be dominated by a write-ahead journal begin",
	Run:  runJournalOrder,
}

func runJournalOrder(p *Pass) {
	cfg, pkg := p.Cfg, p.Pkg
	if !cfg.JournalScope.HasPackage(pkg.Path) {
		return
	}
	for i, f := range pkg.Files {
		if !cfg.JournalScope.HasFile(pkg.Path, pkg.GoFiles[i]) {
			continue
		}
		// Walk each function (and each function literal) independently:
		// dominance is a per-function property.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkJournalBody(p, body)
			}
			return true
		})
	}
}

// checkJournalBody flags every enqueue call in body (not nested in a
// further function literal) that is not structurally dominated by a
// begin call.
func checkJournalBody(p *Pass, body *ast.BlockStmt) {
	cfg, info := p.Cfg, p.Pkg.Info
	var enqueues []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			return false // separate function scope, walked separately
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if inList(calleeID(info, call), cfg.EnqueueFuncs) {
			enqueues = append(enqueues, call)
		}
		return true
	})
	for _, call := range enqueues {
		if exemptKey(call, cfg.NonJournaledKeyPrefixes) {
			continue
		}
		if !dominatedByBegin(p, body, call) {
			p.Report(call.Pos(), "job enqueue is not dominated by a journal begin: a crash between here and the first journal append loses this job (no path to it may skip the write-ahead intent)")
		}
	}
}

// exemptKey reports whether the enqueue's key argument (by convention
// the second argument: Do(ctx, key, fn)) starts with a non-journaled
// literal prefix. The key may be a literal or a literal+expr
// concatenation; the leftmost literal decides.
func exemptKey(call *ast.CallExpr, prefixes []string) bool {
	if len(call.Args) < 2 || len(prefixes) == 0 {
		return false
	}
	lit := leftmostStringLit(call.Args[1])
	if lit == "" {
		return false
	}
	for _, pre := range prefixes {
		if strings.HasPrefix(lit, pre) {
			return true
		}
	}
	return false
}

// leftmostStringLit unwraps "a" + x + ... to the value of "a", or "".
func leftmostStringLit(e ast.Expr) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.BinaryExpr:
			if x.Op != token.ADD {
				return ""
			}
			e = x.X
		case *ast.BasicLit:
			if x.Kind != token.STRING {
				return ""
			}
			return strings.Trim(x.Value, "`\"")
		default:
			return ""
		}
	}
}

// dominatedByBegin reports whether a begin call appears in a statement
// preceding the one containing `call` at some nesting level of body —
// structural dominance for Go's block-scoped control flow. The begin
// must sit in a plain statement (expression or assignment) at the
// spine: a begin inside an if/for/select nested in a preceding
// statement does not dominate.
func dominatedByBegin(p *Pass, body *ast.BlockStmt, call *ast.CallExpr) bool {
	spine, ok := pathToStmt(body, call)
	if !ok {
		return false
	}
	info, begins := p.Pkg.Info, p.Cfg.BeginFuncs
	for _, level := range spine {
		for _, s := range level.before {
			if plainStmtCalls(info, s, begins) {
				return true
			}
		}
	}
	return false
}

// spineLevel is one nesting level on the path from the function body
// to the statement containing the target: the statements that
// sequentially precede the path at this level.
type spineLevel struct {
	before []ast.Stmt
}

// pathToStmt returns, for each block level from body down to the
// statement containing target, the statements preceding the path.
func pathToStmt(body *ast.BlockStmt, target ast.Node) ([]spineLevel, bool) {
	var walk func(b *ast.BlockStmt) ([]spineLevel, bool)
	walk = func(b *ast.BlockStmt) ([]spineLevel, bool) {
		for i, s := range b.List {
			if !containsNode(s, target) {
				continue
			}
			level := spineLevel{before: b.List[:i]}
			// Descend into nested blocks of s looking for a deeper level.
			var deeper []spineLevel
			found := false
			ast.Inspect(s, func(n ast.Node) bool {
				if found {
					return false
				}
				if nb, ok := n.(*ast.BlockStmt); ok && containsNode(nb, target) {
					deeper, found = walk(nb)
					return false
				}
				return true
			})
			if found {
				return append([]spineLevel{level}, deeper...), true
			}
			return []spineLevel{level}, true
		}
		return nil, false
	}
	return walk(body)
}

func containsNode(outer ast.Node, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// plainStmtCalls reports whether s is a plain expression/assignment
// statement whose expression tree (not descending into function
// literals — those run later, if at all) calls one of the listed IDs.
func plainStmtCalls(info *types.Info, s ast.Stmt, ids []string) bool {
	switch s.(type) {
	case *ast.ExprStmt, *ast.AssignStmt:
	default:
		return false
	}
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && inList(calleeID(info, call), ids) {
			found = true
			return false
		}
		return true
	})
	return found
}
