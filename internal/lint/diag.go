// Package lint is a hand-rolled static-analysis driver for the repo's
// own load-bearing invariants. Where internal/verify re-proves the
// synchronization soundness of each compiled binary, this package
// re-proves the properties of the *codebase* that every dynamic suite
// assumes: byte-determinism of artifact and report bytes (D001),
// store-key purity (K001), fault-seam coverage (S001), journal-before-
// execute ordering (J001), and lock hygiene on slow paths (L001).
//
// It is built on stdlib go/ast + go/parser + go/types only (the same
// zero-dependency stance as the YAML parser), loads type information
// through `go list -export` export data, and renders structured,
// positional, rule-ID diagnostics in the internal/verify style.
// Findings are suppressed — never silenced — with an inline
//
//	//lint:ignore RULE reason
//
// comment on (or immediately above) the offending line; a suppression
// without a reason, or one that matches nothing, is itself a finding
// (I001), so the suppression surface cannot rot.
package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Rule identifiers, one per analyzer. I001 is emitted by the driver
// itself for malformed or unused suppressions.
const (
	RuleDeterminism = "D001" // map-order / wall-clock escapes into deterministic bytes
	RuleKeyPurity   = "K001" // store-key struct field hygiene
	RuleSeamBypass  = "S001" // direct os.* filesystem calls in seam-owning packages
	RuleJournal     = "J001" // job enqueue not dominated by a journal begin
	RuleLockHygiene = "L001" // mutex held across network/fsync/journal calls
	RuleIgnore      = "I001" // malformed or unused //lint:ignore
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Rule    string         `json:"rule"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`

	// Suggestion, when non-empty, is a human-readable rewrite that
	// would silence the finding (the sorted-keys form for D001).
	Suggestion string `json:"suggestion,omitempty"`

	// Fix, when non-nil, is a mechanical byte-offset patch that
	// `tlslint -fix` can apply.
	Fix *Fix `json:"-"`
}

// Fix is a set of byte-offset edits within one file that resolves a
// diagnostic mechanically.
type Fix struct {
	File  string
	Edits []Edit
}

// Edit replaces file bytes [Start, End) with New. Offsets are relative
// to the file content at analysis time.
type Edit struct {
	Start int
	End   int
	New   string
}

// String renders the diagnostic vet-style:
// "file:line:col: [RULE] message".
func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Rule, d.Message)
	if d.Suggestion != "" {
		fmt.Fprintf(&sb, "\n\tsuggestion: %s", strings.ReplaceAll(d.Suggestion, "\n", "\n\t            "))
	}
	return sb.String()
}

// sortDiags orders findings by position then rule, so output is stable
// across runs — the analyzer holds itself to the determinism contract
// it enforces.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// RenderJSON renders the findings as a JSON report (an array, one
// object per diagnostic, position-sorted).
func RenderJSON(diags []Diagnostic) ([]byte, error) {
	sortDiags(diags)
	if diags == nil {
		diags = []Diagnostic{}
	}
	return json.MarshalIndent(diags, "", "  ")
}
