package lint

import "path/filepath"

// Scope names the packages (and optionally the files within them) a
// rule applies to. A rule runs on a file when its package is listed
// and the file's basename passes the Only/Skip filters.
type Scope struct {
	// Packages are exact import paths.
	Packages []string
	// OnlyFiles, when a package has an entry, restricts the rule to
	// those basenames within it (a package that is only partially under
	// a contract, like internal/scenario's deterministic half).
	OnlyFiles map[string][]string
	// SkipFiles exempts basenames within a package (the file that *is*
	// the seam implementation, for S001).
	SkipFiles map[string][]string
}

// HasPackage reports whether the scope covers pkgPath at all.
func (s Scope) HasPackage(pkgPath string) bool {
	for _, p := range s.Packages {
		if p == pkgPath {
			return true
		}
	}
	return false
}

// HasFile reports whether the scope covers the given file of pkgPath.
func (s Scope) HasFile(pkgPath, file string) bool {
	if !s.HasPackage(pkgPath) {
		return false
	}
	base := filepath.Base(file)
	if only, ok := s.OnlyFiles[pkgPath]; ok {
		found := false
		for _, f := range only {
			if f == base {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	for _, f := range s.SkipFiles[pkgPath] {
		if f == base {
			return false
		}
	}
	return true
}

// Config parameterizes the analyzers with the repo's contract surface.
// Functions and methods are named by ID: "pkgpath.Func" for package
// functions, "pkgpath.Type.Method" for methods (pointer receivers
// dereferenced), matching funcID.
type Config struct {
	// ---- D001 determinism ----

	// DetScope is the set of packages whose outputs are under the
	// byte-determinism contract (IR, simulation results, fingerprints,
	// deterministic report sections).
	DetScope Scope
	// DetForbiddenCalls are wall-clock / environment functions that must
	// not execute inside DetScope (time.Now and friends). Global
	// math/rand functions are always forbidden in DetScope; seeded
	// *rand.Rand methods are fine.
	DetForbiddenCalls []string

	// ---- K001 key-purity ----

	// KeyStructs are struct types whose JSON marshaling feeds
	// content-addressed store keys, named "pkgpath.TypeName". Every
	// field must carry an explicit json tag (or `json:"-"`), and the
	// struct must not have unexported fields (they would influence
	// behavior while being invisible to the key).
	KeyStructs []string
	// MarshalFuncs identify artifact-content producers: a function
	// whose body calls one of these must not read a `json:"-"` field of
	// a key struct (the Workers rule from the parallel-pipeline PR).
	MarshalFuncs []string

	// ---- S001 seam-bypass ----

	// SeamScope is the set of packages that own (or sit above) a
	// store.FS fault seam; direct os.* filesystem calls there dodge
	// fault injection and the crash harness.
	SeamScope Scope
	// OSFuncs are the direct filesystem entry points S001 flags.
	OSFuncs []string

	// ---- J001 journal-order ----

	// JournalScope is where the journal-before-execute contract holds.
	JournalScope Scope
	// EnqueueFuncs submit recoverable work (the job engine's Do).
	EnqueueFuncs []string
	// BeginFuncs are the write-ahead intents that must dominate an
	// enqueue.
	BeginFuncs []string
	// NonJournaledKeyPrefixes exempt enqueues whose key argument starts
	// with one of these literal prefixes (idempotent, re-derivable jobs
	// like compile/prepare that crash recovery regenerates on demand).
	NonJournaledKeyPrefixes []string

	// ---- L001 lock-hygiene ----

	// LockScope is where mutexes must not be held across slow calls.
	LockScope Scope
	// SlowCallPkgs flag any call into these packages while a mutex is
	// held (network I/O).
	SlowCallPkgs []string
	// SlowCallFuncs flag specific functions/methods (fsync, journal
	// appends) while a mutex is held.
	SlowCallFuncs []string
}

// RepoConfig is the contract surface of this repository: which
// packages are under the determinism contract, which structs are store
// keys, which packages own fault seams, and where the journal-order
// and lock-hygiene rules apply. cmd/tlslint runs with exactly this
// configuration; the golden-fixture tests run the same analyzers with
// a fixture-local configuration.
func RepoConfig() *Config {
	return &Config{
		DetScope: Scope{
			Packages: []string{
				"tlssync",
				"tlssync/internal/alias",
				"tlssync/internal/cfg",
				"tlssync/internal/core",
				"tlssync/internal/depgraph",
				"tlssync/internal/interp",
				"tlssync/internal/ir",
				"tlssync/internal/lang",
				"tlssync/internal/lower",
				"tlssync/internal/memsync",
				"tlssync/internal/opt",
				"tlssync/internal/profile",
				"tlssync/internal/progen",
				"tlssync/internal/regions",
				"tlssync/internal/report",
				"tlssync/internal/scalarsync",
				"tlssync/internal/scenario",
				"tlssync/internal/sim",
				"tlssync/internal/trace",
				"tlssync/internal/verify",
				"tlssync/internal/workloads",
			},
			// internal/scenario is split: plan expansion, spec parsing and
			// the deterministic report sections are under the contract;
			// runner.go/metrics.go are the measured (wall-clock) half.
			OnlyFiles: map[string][]string{
				"tlssync/internal/scenario": {
					"assert.go", "plan.go", "report.go", "scenario.go", "yaml.go",
				},
			},
		},
		DetForbiddenCalls: []string{
			"time.Now", "time.Since", "time.Until",
			"runtime.GOMAXPROCS", "runtime.NumCPU",
			"os.Getenv", "os.Environ",
		},
		KeyStructs: []string{
			"tlssync/internal/core.Config",
			"tlssync/internal/sim.MachineConfig",
		},
		MarshalFuncs: []string{
			"tlssync/internal/store.Marshal",
			"tlssync/internal/store.Key",
			"encoding/json.Marshal",
		},
		SeamScope: Scope{
			Packages: []string{
				"tlssync/internal/store",
				"tlssync/internal/journal",
				"tlssync/internal/cluster",
				"tlssync/cmd/tlsd",
			},
			// fs.go IS the seam: the osFS implementation behind store.OS.
			SkipFiles: map[string][]string{
				"tlssync/internal/store": {"fs.go"},
			},
		},
		OSFuncs: []string{
			"os.Create", "os.CreateTemp", "os.WriteFile", "os.OpenFile",
			"os.Open", "os.ReadFile", "os.ReadDir", "os.Rename",
			"os.Remove", "os.RemoveAll", "os.MkdirAll", "os.Mkdir",
		},
		JournalScope: Scope{
			Packages: []string{"tlssync/cmd/tlsd"},
		},
		EnqueueFuncs: []string{"tlssync/internal/jobs.Engine.Do"},
		BeginFuncs: []string{
			"tlssync/cmd/tlsd.server.journalBegin",
			"tlssync/internal/journal.Journal.Begin",
		},
		NonJournaledKeyPrefixes: []string{"prepare/"},
		LockScope: Scope{
			Packages: []string{
				"tlssync/cmd/tlsd",
				"tlssync/internal/cluster",
				"tlssync/internal/jobs",
				"tlssync/internal/resilience",
				"tlssync/internal/store",
			},
		},
		SlowCallPkgs: []string{"net/http", "net"},
		SlowCallFuncs: []string{
			"os.File.Sync",
			"tlssync/internal/store.File.Sync",
			"tlssync/internal/journal.Journal.Begin",
			"tlssync/internal/journal.Journal.Commit",
			"tlssync/internal/journal.Journal.Poison",
			"tlssync/internal/journal.Journal.Close",
		},
	}
}
