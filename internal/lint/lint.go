package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one rule: a pure function from a type-checked package to
// diagnostics.
type Analyzer struct {
	Rule string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full rule set in rule-ID order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		analyzeDeterminism,
		analyzeKeyPurity,
		analyzeSeamBypass,
		analyzeJournalOrder,
		analyzeLockHygiene,
	}
}

// Pass is the per-(analyzer × package) context handed to a rule.
type Pass struct {
	Cfg   *Config
	Pkg   *Package
	rule  string
	diags *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.ReportFix(pos, nil, "", format, args...)
}

// ReportFix records a finding carrying a suggestion and an optional
// mechanical fix.
func (p *Pass) ReportFix(pos token.Pos, fix *Fix, suggestion, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Rule:       p.rule,
		Pos:        position,
		File:       position.Filename,
		Line:       position.Line,
		Col:        position.Column,
		Message:    fmt.Sprintf(format, args...),
		Suggestion: suggestion,
		Fix:        fix,
	})
}

// Run executes every analyzer over every package, applies the
// //lint:ignore suppressions, and returns the surviving findings,
// position-sorted. Unused or malformed suppressions are findings too
// (I001): a suppression must name a real, present diagnostic and a
// reason, or it is rot.
func Run(pkgs []*Package, cfg *Config) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range Analyzers() {
			pass := &Pass{Cfg: cfg, Pkg: pkg, rule: a.Rule, diags: &raw}
			a.Run(pass)
		}
		ignores, malformed := collectIgnores(pkg)
		all = append(all, malformed...)
		for _, d := range raw {
			if ig := matchIgnore(ignores, d); ig != nil {
				ig.used = true
				continue
			}
			all = append(all, d)
		}
		for _, ig := range ignores {
			if !ig.used {
				position := pkg.Fset.Position(ig.pos)
				all = append(all, Diagnostic{
					Rule: RuleIgnore, Pos: position,
					File: position.Filename, Line: position.Line, Col: position.Column,
					Message: fmt.Sprintf("unused suppression: no %s finding on this or the next line", ig.rule),
				})
			}
		}
	}
	sortDiags(all)
	return all
}

// ignore is one parsed //lint:ignore directive.
type ignore struct {
	pos    token.Pos
	file   string
	line   int // line the directive sits on
	rule   string
	reason string
	used   bool
}

// collectIgnores parses every //lint:ignore comment in the package.
// The directive suppresses findings of the named rule(s) on the same
// line or on the next line (the usual form: the comment sits alone
// above the offending statement). "//lint:ignore D001,L001 reason"
// names several rules.
func collectIgnores(pkg *Package) ([]*ignore, []Diagnostic) {
	var igs []*ignore
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Rule: RuleIgnore, Pos: position,
						File: position.Filename, Line: position.Line, Col: position.Column,
						Message: "malformed suppression: want //lint:ignore RULE reason (a reason is mandatory)",
					})
					continue
				}
				for _, rule := range strings.Split(fields[0], ",") {
					igs = append(igs, &ignore{
						pos:  c.Pos(),
						file: position.Filename, line: position.Line,
						rule: rule, reason: strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	return igs, malformed
}

func matchIgnore(igs []*ignore, d Diagnostic) *ignore {
	for _, ig := range igs {
		if ig.rule != d.Rule || ig.file != d.Pos.Filename {
			continue
		}
		if ig.line == d.Pos.Line || ig.line == d.Pos.Line-1 {
			return ig
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Shared type-resolution helpers

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package function, method, or interface method), or nil for builtins,
// conversions and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// funcID names a function for config matching: "pkgpath.Func" for
// package functions, "pkgpath.Type.Method" for methods (pointer
// receivers dereferenced, so value and pointer methods match the same
// ID).
func funcID(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
			return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + fn.Name()
		}
		if iface, ok := t.(*types.Interface); ok {
			_ = iface // anonymous interface receiver: fall through to pkg-qualified name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// calleeID resolves a call to its config ID, or "".
func calleeID(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return ""
	}
	return funcID(fn)
}

// inList reports whether s is one of list.
func inList(s string, list []string) bool {
	for _, x := range list {
		if s == x {
			return true
		}
	}
	return false
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, names ...string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	if !ok {
		return false
	}
	return inList(b.Name(), names)
}

// isConversion reports whether the call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}
