package lint

import (
	"go/ast"
	"go/types"
)

// analyzeLockHygiene is rule L001: a sync.Mutex/RWMutex must not be
// held across a slow call — network I/O, an fsync, a journal append
// (which fsyncs internally). Under load, one stalled disk or peer then
// convoys every goroutine contending the lock: the admission
// controller sees saturation, breakers trip, heartbeats miss. The
// repo-wide discipline (established in the store: snapshot under the
// lock, do I/O outside it) is what this rule pins down.
//
// Span detection is structural: from an `x.Lock()` statement, the span
// is the following statements of the same block until the matching
// `x.Unlock()`; a `defer x.Unlock()` extends the span to the end of
// the block. Calls inside nested function literals are not counted
// (they run later, off the critical section, unless invoked inline —
// a case for human review, not a sound rule).
var analyzeLockHygiene = &Analyzer{
	Rule: RuleLockHygiene,
	Doc:  "mutex held across a network/fsync/journal call",
	Run:  runLockHygiene,
}

func runLockHygiene(p *Pass) {
	cfg, pkg := p.Cfg, p.Pkg
	if !cfg.LockScope.HasPackage(pkg.Path) {
		return
	}
	for i, f := range pkg.Files {
		if !cfg.LockScope.HasFile(pkg.Path, pkg.GoFiles[i]) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if b, ok := n.(*ast.BlockStmt); ok {
				checkLockSpans(p, b)
			}
			return true
		})
	}
}

// checkLockSpans scans one block's statement list for Lock()/Unlock()
// pairs and flags slow calls between them.
func checkLockSpans(p *Pass, b *ast.BlockStmt) {
	info := p.Pkg.Info
	for i, s := range b.List {
		recv, rlock := lockCall(info, s, "Lock", "RLock")
		if recv == "" {
			continue
		}
		// Deferred unlock directly after: span is the rest of the block.
		span := b.List[i+1:]
		if len(span) > 0 && isDeferredUnlock(info, span[0], recv) {
			span = span[1:]
		} else {
			// Explicit unlock: span ends there.
			for j, t := range span {
				if u, _ := lockCall(info, t, "Unlock", "RUnlock"); u == recv {
					span = span[:j]
					break
				}
			}
		}
		_ = rlock
		for _, t := range span {
			flagSlowCalls(p, t, recv)
		}
	}
}

// lockCall reports (receiver rendering, wasRLock) when s is a plain
// `recv.M()` statement with M one of names and recv a sync.Mutex or
// sync.RWMutex (directly or through an embedded/promoted field).
func lockCall(info *types.Info, s ast.Stmt, names ...string) (string, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return "", false
	}
	return lockCallExpr(info, es.X, names...)
}

func isDeferredUnlock(info *types.Info, s ast.Stmt, recv string) bool {
	ds, ok := s.(*ast.DeferStmt)
	if !ok {
		return false
	}
	r, _ := lockCallExpr(info, ds.Call, "Unlock", "RUnlock")
	return r == recv
}

func lockCallExpr(info *types.Info, e ast.Expr, names ...string) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	if !inList(fn.Name(), names) {
		return "", false
	}
	return types.ExprString(sel.X), fn.Name() == "RLock" || fn.Name() == "RUnlock"
}

// flagSlowCalls reports slow calls in the statement (not descending
// into function literals).
func flagSlowCalls(p *Pass, s ast.Stmt, recv string) {
	cfg, info := p.Cfg, p.Pkg.Info
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		id := funcID(fn)
		slow := inList(id, cfg.SlowCallFuncs)
		if !slow && fn.Pkg() != nil && inList(fn.Pkg().Path(), cfg.SlowCallPkgs) {
			slow = true
		}
		if slow {
			p.Report(call.Pos(), "%s called while holding %s: a mutex must not be held across network/fsync/journal calls (snapshot under the lock, do the slow work outside it)", id, recv)
		}
		return true
	})
}
