package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden-fixture suite: testdata/lint is a self-contained module
// (lintfixtures) with one package per rule, each seeding violations
// marked by expected-diagnostic comments and compliant forms that must
// stay silent. The analyzers run with a fixture-local Config, so the
// fixtures pin analyzer behavior independently of the repo's own
// contract surface (RepoConfig).
//
// Comment forms, matched against raw source lines:
//
//	... // want D001 "message substring"     diagnostic on this line
//	// wantbelow I001 "message substring"    diagnostic on the next line
//
// wantbelow exists for I001: a //lint:ignore directive consumes its
// whole line, so its expectation must sit above it.

// fixtureConfig mirrors RepoConfig's shape onto the fixture module.
func fixtureConfig() *Config {
	return &Config{
		DetScope: Scope{Packages: []string{
			"lintfixtures/d001",
			"lintfixtures/suppression",
			"lintfixtures/fixable",
		}},
		DetForbiddenCalls: []string{"time.Now", "time.Since", "os.Getenv"},
		KeyStructs:        []string{"lintfixtures/k001.Key"},
		MarshalFuncs:      []string{"encoding/json.Marshal"},
		SeamScope: Scope{
			Packages:  []string{"lintfixtures/s001"},
			SkipFiles: map[string][]string{"lintfixtures/s001": {"seam.go"}},
		},
		OSFuncs: []string{
			"os.Create", "os.WriteFile", "os.ReadFile", "os.OpenFile",
			"os.Rename", "os.Remove", "os.MkdirAll",
		},
		JournalScope:            Scope{Packages: []string{"lintfixtures/j001"}},
		EnqueueFuncs:            []string{"lintfixtures/j001.Engine.Do"},
		BeginFuncs:              []string{"lintfixtures/j001.Journal.Begin"},
		NonJournaledKeyPrefixes: []string{"prepare/"},
		LockScope:               Scope{Packages: []string{"lintfixtures/l001"}},
		SlowCallFuncs:           []string{"lintfixtures/l001.fsyncAll"},
	}
}

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	rule    string
	substr  string
	matched bool
}

var wantRe = regexp.MustCompile(`// want(below)? ([A-Z]\d+) "([^"]*)"`)

// collectWants scans every fixture source file for expectation comments.
func collectWants(t *testing.T, pkgs []*Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, path := range pkg.GoFiles {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(src), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					w := &want{file: path, line: i + 1, rule: m[2], substr: m[3]}
					if m[1] == "below" {
						w.line++
					}
					wants = append(wants, w)
				}
			}
		}
	}
	return wants
}

func loadFixtures(t *testing.T, dir string) []*Package {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(abs, "./...")
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no fixture packages loaded")
	}
	return pkgs
}

// TestGoldenFixtures checks the analyzers against the fixture corpus:
// every expectation comment must be satisfied by exactly one
// diagnostic, and every diagnostic must be claimed by an expectation —
// seeded violations are flagged, compliant forms stay silent, and
// suppression/I001 behaves as documented.
func TestGoldenFixtures(t *testing.T) {
	pkgs := loadFixtures(t, filepath.Join("..", "..", "testdata", "lint"))
	diags := Run(pkgs, fixtureConfig())
	wants := collectWants(t, pkgs)
	if len(wants) == 0 {
		t.Fatal("no expectation comments found in fixtures")
	}

	rulesSeen := make(map[string]bool)
	for _, d := range diags {
		rulesSeen[d.Rule] = true
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != d.File || w.line != d.Line || w.rule != d.Rule {
				continue
			}
			if !strings.Contains(d.Message, w.substr) {
				t.Errorf("%s:%d: [%s] message %q does not contain expected substring %q",
					relFixture(d.File), d.Line, d.Rule, d.Message, w.substr)
			}
			w.matched = true
			claimed = true
			break
		}
		if !claimed {
			t.Errorf("unexpected diagnostic (no matching want comment):\n\t%s:%d:%d: [%s] %s",
				relFixture(d.File), d.Line, d.Col, d.Rule, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected [%s] diagnostic containing %q, got none",
				relFixture(w.file), w.line, w.rule, w.substr)
		}
	}

	// Every rule, plus the driver's own I001, must be exercised.
	for _, rule := range []string{RuleDeterminism, RuleKeyPurity, RuleSeamBypass, RuleJournal, RuleLockHygiene, RuleIgnore} {
		if !rulesSeen[rule] {
			t.Errorf("fixture corpus produced no %s diagnostic; the rule is untested", rule)
		}
	}
}

// relFixture trims the absolute prefix for readable failure output.
func relFixture(path string) string {
	if i := strings.Index(path, filepath.Join("testdata", "lint")); i >= 0 {
		return path[i:]
	}
	return path
}

// TestSortedKeysFixGolden proves `tlslint -fix` end to end: copy the
// fixable package into a scratch module, apply the mechanical
// sorted-keys rewrite, byte-compare the result against
// fixable.go.golden, and re-lint the rewritten module clean. Run with
// TLSLINT_UPDATE_GOLDEN=1 to regenerate the golden file.
func TestSortedKeysFixGolden(t *testing.T) {
	fixtureDir := filepath.Join("..", "..", "testdata", "lint")
	src, err := os.ReadFile(filepath.Join(fixtureDir, "fixable", "fixable.go"))
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	if err := os.MkdirAll(filepath.Join(tmp, "fixable"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module lintfixtures\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(tmp, "fixable", "fixable.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}

	pkgs := loadFixtures(t, tmp)
	diags := Run(pkgs, fixtureConfig())
	var fixes int
	for _, d := range diags {
		if d.Rule != RuleDeterminism {
			t.Errorf("unexpected non-D001 diagnostic in fixable: %s", d)
		}
		if d.Fix != nil {
			fixes++
			if d.Suggestion == "" {
				t.Error("fix-carrying diagnostic has no human-readable suggestion")
			}
		}
	}
	if fixes == 0 {
		t.Fatal("fixable seeded no fix-carrying diagnostic")
	}
	applied, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if applied != fixes {
		t.Fatalf("applied %d of %d fixes", applied, fixes)
	}

	got, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join(fixtureDir, "fixable", "fixable.go.golden")
	if os.Getenv("TLSLINT_UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", goldenPath)
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with TLSLINT_UPDATE_GOLDEN=1 to create it)", err)
	}
	if string(got) != string(golden) {
		t.Errorf("rewritten fixable.go differs from golden:\n--- got ---\n%s\n--- want ---\n%s", got, golden)
	}

	// The rewrite must fully resolve the finding.
	re := Run(loadFixtures(t, tmp), fixtureConfig())
	if len(re) != 0 {
		var sb strings.Builder
		for _, d := range re {
			fmt.Fprintf(&sb, "\n\t%s", d)
		}
		t.Errorf("re-lint after -fix still reports %d finding(s):%s", len(re), sb.String())
	}
}
