package lint

import (
	"go/ast"
)

// analyzeSeamBypass is rule S001: in packages that own (or sit above)
// a store.FS fault seam, direct os.* filesystem calls are forbidden.
// The chaos suite, the crash harness, and the scenario fault timelines
// all inject failures through the seam; a file written with os.Create
// never sees an injected error, a simulated torn write, or a
// SIGKILL-between-write-and-rename schedule, so its durability story
// is untested by construction. Route the operation through the
// package's FS value (store.OS in production) instead.
var analyzeSeamBypass = &Analyzer{
	Rule: RuleSeamBypass,
	Doc:  "direct os filesystem call bypasses the store.FS fault-injection seam",
	Run:  runSeamBypass,
}

func runSeamBypass(p *Pass) {
	cfg, pkg := p.Cfg, p.Pkg
	if !cfg.SeamScope.HasPackage(pkg.Path) {
		return
	}
	for i, f := range pkg.Files {
		if !cfg.SeamScope.HasFile(pkg.Path, pkg.GoFiles[i]) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id := calleeID(pkg.Info, call)
			if inList(id, cfg.OSFuncs) {
				p.Report(call.Pos(), "direct %s in a seam-owning package: this write/read dodges fault injection and the crash harness; route it through the package's store.FS seam", id)
			}
			return true
		})
	}
}
