package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// sortedKeysFix builds the mechanical sort-before-range rewrite for an
// order-escaping map range, when the shape is eligible: the key
// variable is a plain identifier (not blank) and the key type is a
// basic ordered type, so a total order exists without user input. It
// returns the fix (nil when ineligible) and a human-readable
// suggestion rendering of the same rewrite.
//
// The rewrite turns
//
//	for k := range m {            for k, v := range m {
//	        BODY                          BODY
//	}                             }
//
// into
//
//	ks := make([]K, 0, len(m))
//	for k := range m {
//	        ks = append(ks, k)
//	}
//	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
//	for _, k := range ks {
//	        v := m[k]             // key+value form only
//	        BODY
//	}
//
// (sort.Strings / sort.Ints for string / int keys).
func sortedKeysFix(pkg *Package, file *ast.File, r *ast.RangeStmt) (*Fix, string) {
	info := pkg.Info
	keyID, ok := ast.Unparen(r.Key).(*ast.Ident)
	if !ok || keyID.Name == "_" || r.Tok != token.DEFINE {
		return nil, "collect the keys into a slice, sort it, and range over the sorted slice"
	}
	keyT, ok := rangeKeyType(info, r)
	if !ok {
		return nil, ""
	}
	basic, ok := keyT.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsOrdered == 0 {
		return nil, "collect the keys into a slice, sort it with an explicit total order, and range over the sorted slice"
	}
	// Only rewrite when the map expression is repeatable without side
	// effects (it is evaluated twice in the rewritten form).
	if !pureExpr(newPurity(pkg), r.X) {
		return nil, "hoist the map into a local, then collect+sort its keys before ranging"
	}

	fset := pkg.Fset
	start := fset.Position(r.Pos())
	src, err := os.ReadFile(start.Filename)
	if err != nil {
		return nil, ""
	}
	tf := fset.File(r.Pos())
	if tf == nil {
		return nil, ""
	}

	mapExpr := string(src[tf.Offset(r.X.Pos()):tf.Offset(r.X.End())])
	indent := lineIndent(src, tf.Offset(r.Pos()))
	keysVar := freshName(pkg, r, keyID.Name+"s")

	// The textual type of the key for the make() call. Named basic
	// types from this package keep their name; from other packages they
	// are qualified with the file's import name (falling back to the
	// underlying basic type when unqualifiable).
	keyType := types.TypeString(keyT, types.RelativeTo(pkg.Types))
	if strings.Contains(keyType, "/") || strings.Contains(keyType, "invalid") {
		keyType = basic.Name()
	}

	sortCall := ""
	switch {
	case basic.Kind() == types.String:
		sortCall = fmt.Sprintf("sort.Strings(%s)", keysVar)
	case basic.Kind() == types.Int:
		sortCall = fmt.Sprintf("sort.Ints(%s)", keysVar)
	default:
		sortCall = fmt.Sprintf("sort.Slice(%s, func(i, j int) bool { return %s[i] < %s[j] })", keysVar, keysVar, keysVar)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s := make([]%s, 0, len(%s))\n", keysVar, keyType, mapExpr)
	fmt.Fprintf(&sb, "%sfor %s := range %s {\n", indent, keyID.Name, mapExpr)
	fmt.Fprintf(&sb, "%s\t%s = append(%s, %s)\n", indent, keysVar, keysVar, keyID.Name)
	fmt.Fprintf(&sb, "%s}\n", indent)
	fmt.Fprintf(&sb, "%s%s\n", indent, sortCall)
	fmt.Fprintf(&sb, "%sfor _, %s := range %s {", indent, keyID.Name, keysVar)
	if r.Value != nil {
		if vID, ok := ast.Unparen(r.Value).(*ast.Ident); ok && vID.Name != "_" {
			fmt.Fprintf(&sb, "\n%s\t%s := %s[%s]", indent, vID.Name, mapExpr, keyID.Name)
		}
	}
	header := sb.String()

	// Replace the range header "for ... range m {" with the rewrite.
	hdrStart := tf.Offset(r.Pos())
	hdrEnd := tf.Offset(r.Body.Lbrace) + 1
	fix := &Fix{
		File:  start.Filename,
		Edits: []Edit{{Start: hdrStart, End: hdrEnd, New: header}},
	}
	if ed, needed := ensureImportEdit(pkg, file, src, tf, "sort"); needed {
		fix.Edits = append(fix.Edits, ed)
	}
	return fix, header
}

// freshName returns base if unbound in the scopes enclosing r, else
// base2, base3, ...
func freshName(pkg *Package, r ast.Node, base string) string {
	inner := pkg.Types.Scope().Innermost(r.Pos())
	if inner == nil {
		inner = pkg.Types.Scope()
	}
	name := base
	for i := 2; ; i++ {
		if s, _ := inner.LookupParent(name, r.Pos()); s == nil && pkg.Types.Scope().Lookup(name) == nil {
			return name
		}
		name = fmt.Sprintf("%s%d", base, i)
	}
}

// ensureImportEdit returns an edit adding `"sort"` to the file's
// imports when missing.
func ensureImportEdit(pkg *Package, file *ast.File, src []byte, tf *token.File, path string) (Edit, bool) {
	for _, imp := range file.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return Edit{}, false
		}
	}
	// Grouped import block: insert alphabetically-first position (gofmt
	// will settle ordering; correctness only needs presence).
	for _, d := range file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			off := tf.Offset(gd.Lparen) + 1
			return Edit{Start: off, End: off, New: fmt.Sprintf("\n\t%q", path)}, true
		}
		// Single-import form: turn the decl into a grouped one.
		s, e := tf.Offset(gd.Pos()), tf.Offset(gd.End())
		old := string(src[s:e])
		one := strings.TrimPrefix(old, "import")
		return Edit{Start: s, End: e, New: fmt.Sprintf("import (\n\t%q\n\t%s\n)", path, strings.TrimSpace(one))}, true
	}
	// No imports at all: add after the package clause.
	off := tf.Offset(file.Name.End())
	return Edit{Start: off, End: off, New: fmt.Sprintf("\n\nimport %q", path)}, true
}

// lineIndent returns the whitespace prefix of the line containing off.
func lineIndent(src []byte, off int) string {
	start := off
	for start > 0 && src[start-1] != '\n' {
		start--
	}
	end := start
	for end < len(src) && (src[end] == ' ' || src[end] == '\t') {
		end++
	}
	return string(src[start:end])
}

// ApplyFixes applies every mechanical fix among diags to the files on
// disk, returning how many fixes were applied. Overlapping fixes in
// one file are applied back-to-front; a fix overlapping an
// already-applied one is skipped (re-run tlslint to regenerate it
// against the new file content).
func ApplyFixes(diags []Diagnostic) (int, error) {
	type edit struct {
		Edit
		fixIdx int
	}
	byFile := make(map[string][]*Fix)
	for i := range diags {
		if f := diags[i].Fix; f != nil {
			byFile[f.File] = append(byFile[f.File], f)
		}
	}
	applied := 0
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			return applied, err
		}
		var edits []edit
		for fi, f := range byFile[path] {
			for _, e := range f.Edits {
				edits = append(edits, edit{e, fi})
			}
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		out := src
		lastStart := len(src) + 1
		appliedFix := make(map[int]bool)
		for _, e := range edits {
			if e.End > lastStart {
				continue // overlaps an already-applied edit
			}
			out = append(out[:e.Start], append([]byte(e.New), out[e.End:]...)...)
			lastStart = e.Start
			appliedFix[e.fixIdx] = true
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			return applied, err
		}
		applied += len(appliedFix)
	}
	return applied, nil
}
