package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, type-checked package of the module
// under analysis.
type Package struct {
	Path    string // import path
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	GoFiles []string // absolute paths, parallel to Files
	Types   *types.Package
	Info    *types.Info
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load parses and type-checks the packages matched by patterns in dir
// (the module root). It resolves dependency types from compiler export
// data produced by `go list -export`, so the analyzers see the same
// types the build does, with zero non-stdlib dependencies.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := loadOne(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func loadOne(fset *token.FileSet, imp types.Importer, t *listPkg) (*Package, error) {
	pkg := &Package{
		Path: t.ImportPath,
		Dir:  t.Dir,
		Fset: fset,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
			Implicits:  make(map[ast.Node]types.Object),
		},
	}
	for _, name := range t.GoFiles {
		path := filepath.Join(t.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.GoFiles = append(pkg.GoFiles, path)
	}
	conf := types.Config{Importer: imp}
	tp, err := conf.Check(t.ImportPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", t.ImportPath, err)
	}
	pkg.Types = tp
	return pkg, nil
}
