package jobs

import (
	"testing"
	"time"
)

// The engine's per-job totals say how long jobs took; ObserveStage says
// where inside the pipeline that time went. This pins the accounting:
// accumulation across observations, max/avg, snapshot isolation, and
// that unreported stages stay absent rather than appearing as zeros.
func TestObserveStageAccounting(t *testing.T) {
	e := New(2)

	if got := e.Stats().Stages; got != nil {
		t.Fatalf("fresh engine reports stages: %v", got)
	}

	e.ObserveStage("compile", 40*time.Millisecond)
	e.ObserveStage("compile", 10*time.Millisecond)
	e.ObserveStage("sim", 100*time.Millisecond)
	e.ObserveStage("trace", -time.Second) // ignored: negative

	st := e.Stats().Stages
	c := st["compile"]
	if c.Runs != 2 || c.Total != 50*time.Millisecond || c.Max != 40*time.Millisecond {
		t.Fatalf("compile stage = %+v", c)
	}
	if got := c.Avg(); got != 25*time.Millisecond {
		t.Fatalf("compile Avg = %v", got)
	}
	if s := st["sim"]; s.Runs != 1 || s.Total != 100*time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("sim stage = %+v", s)
	}
	if _, ok := st["trace"]; ok {
		t.Fatal("negative observation was recorded")
	}
	if _, ok := st["profile"]; ok {
		t.Fatal("unreported stage present")
	}

	// Stats must return a copy: mutating the snapshot cannot corrupt the
	// engine, and later observations cannot mutate old snapshots.
	st["compile"] = StageStat{Runs: 999}
	e.ObserveStage("sim", time.Millisecond)
	if c := e.Stats().Stages["compile"]; c.Runs != 2 {
		t.Fatalf("snapshot mutation leaked into engine: %+v", c)
	}
	if st["sim"].Runs != 1 {
		t.Fatalf("later observation mutated old snapshot: %+v", st["sim"])
	}
}

func TestStageStatAvgZero(t *testing.T) {
	if got := (StageStat{}).Avg(); got != 0 {
		t.Fatalf("zero-stage Avg = %v", got)
	}
}
