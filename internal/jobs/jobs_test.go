package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCoalescing: N concurrent identical requests run the function
// exactly once and all observe the same result.
func TestCoalescing(t *testing.T) {
	e := New(4)
	var execs atomic.Int64
	release := make(chan struct{})

	const n = 32
	var wg sync.WaitGroup
	vals := make([]any, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = e.Do(context.Background(), "simulate/gzip_comp/C", func(context.Context) (any, error) {
				execs.Add(1)
				<-release
				return 42, nil
			})
		}(i)
	}
	// Let every caller either start the execution or join it before the
	// function is allowed to finish.
	for e.Stats().Coalesced < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if vals[i] != 42 {
			t.Fatalf("caller %d: val = %v, want 42", i, vals[i])
		}
	}
	st := e.Stats()
	if st.Submitted != 1 || st.Coalesced != n-1 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want submitted=1 coalesced=%d completed=1", st, n-1)
	}
}

// TestDistinctKeysRunIndependently: different keys do not coalesce.
func TestDistinctKeysRunIndependently(t *testing.T) {
	e := New(8)
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := e.Do(context.Background(), fmt.Sprintf("k%d", i), func(context.Context) (any, error) {
				execs.Add(1)
				return i, nil
			})
			if err != nil || v != i {
				t.Errorf("key k%d: v=%v err=%v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if got := execs.Load(); got != 10 {
		t.Fatalf("executions = %d, want 10", got)
	}
}

// TestWorkerPoolBound: at most `workers` functions run concurrently even
// when many distinct jobs are submitted at once.
func TestWorkerPoolBound(t *testing.T) {
	const workers = 3
	e := New(workers)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = e.Do(context.Background(), fmt.Sprintf("job%d", i), func(context.Context) (any, error) {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
				return nil, nil
			})
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency = %d, want <= %d", p, workers)
	}
}

// TestErrorShared: a failing execution reports the same error to every
// coalesced caller, and the key becomes submittable again afterwards.
func TestErrorShared(t *testing.T) {
	e := New(2)
	boom := errors.New("boom")
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Do(context.Background(), "k", func(context.Context) (any, error) {
				<-release
				return nil, boom
			})
		}(i)
	}
	for e.Stats().Coalesced < 3 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d: err = %v, want boom", i, err)
		}
	}
	// The key must be retryable after the failure cleared.
	v, err := e.Do(context.Background(), "k", func(context.Context) (any, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry: v=%v err=%v", v, err)
	}
	if st := e.Stats(); st.Failed != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v, want failed=1 completed=1", st)
	}
}

// TestCallerCancellation: a cancelled waiter returns promptly with
// ctx.Err() while the remaining waiter still gets the real result.
func TestCallerCancellation(t *testing.T) {
	e := New(2)
	release := make(chan struct{})
	ctx1, cancel1 := context.WithCancel(context.Background())

	started := make(chan struct{})
	var wg sync.WaitGroup
	var err1 error
	done1 := make(chan struct{})
	go func() {
		defer close(done1)
		_, err1 = e.Do(ctx1, "k", func(context.Context) (any, error) {
			close(started)
			<-release
			return "slow", nil
		})
	}()
	<-started

	var val2 any
	var err2 error
	wg.Add(1)
	go func() {
		defer wg.Done()
		val2, err2 = e.Do(context.Background(), "k", func(context.Context) (any, error) {
			t.Error("second caller must coalesce, not execute")
			return nil, nil
		})
	}()
	for e.Stats().Coalesced < 1 {
		time.Sleep(time.Millisecond)
	}

	cancel1()
	// Release the job only after the cancelled caller returned, so its
	// wait cannot observe an already-completed result (in that race it
	// would — by design — get the result instead of ctx.Err()).
	<-done1
	close(release)
	wg.Wait()

	if !errors.Is(err1, context.Canceled) {
		t.Fatalf("cancelled caller: err = %v, want context.Canceled", err1)
	}
	if err2 != nil || val2 != "slow" {
		t.Fatalf("surviving caller: val=%v err=%v", val2, err2)
	}
}

// TestAllWaitersCancelled: when every caller abandons the key, the
// execution's context is cancelled.
func TestAllWaitersCancelled(t *testing.T) {
	e := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	jobCancelled := make(chan struct{})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := e.Do(ctx, "k", func(jctx context.Context) (any, error) {
			close(started)
			<-jctx.Done()
			close(jobCancelled)
			return nil, jctx.Err()
		})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	select {
	case <-jobCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("job context was not cancelled after all waiters left")
	}
}

// TestJoinAfterAbandonStartsFresh: a Do call that arrives after the last
// waiter cancelled an in-flight call — but before the dying execution
// cleaned itself out of the inflight map — must start a fresh execution
// instead of inheriting a spurious context.Canceled.
// TestJoinAbandonedRunningExecution: an execution whose every waiter
// cancelled keeps running (it must land its artifact); a retry arriving
// mid-run joins it and shares the landed result instead of queueing a
// second execution of work that is already happening.
func TestJoinAbandonedRunningExecution(t *testing.T) {
	e := New(2)
	ctx1, cancel1 := context.WithCancel(context.Background())
	started := make(chan struct{})
	hold := make(chan struct{})
	var runs atomic.Int64
	done1 := make(chan error, 1)
	go func() {
		_, err := e.Do(ctx1, "k", func(jctx context.Context) (any, error) {
			runs.Add(1)
			close(started)
			<-jctx.Done() // every waiter abandoned...
			<-hold        // ...but the execution keeps going
			return "landed", nil
		})
		done1 <- err
	}()
	<-started
	cancel1()
	// Once the waiter returned, c.cancel() has fired, but the execution is
	// still on its worker, so the call is still in the inflight map.
	if err := <-done1; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning caller: err = %v, want context.Canceled", err)
	}

	type res struct {
		v   any
		err error
	}
	joined := make(chan res, 1)
	go func() {
		v, err := e.Do(context.Background(), "k", func(context.Context) (any, error) {
			runs.Add(1)
			return "fresh", nil
		})
		joined <- res{v, err}
	}()
	// Release the running execution only after the retry has joined it
	// (a fresh execution would bump Submitted instead).
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Coalesced == 0 {
		if time.Now().After(deadline) || e.Stats().Submitted > 1 {
			t.Fatalf("retry did not join the abandoned execution: %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(hold)
	r := <-joined
	if r.err != nil || r.v != "landed" {
		t.Fatalf("retry got v=%v err=%v, want the abandoned execution's result", r.v, r.err)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
}

// TestCancelledQueuedCallNeverRuns: a call abandoned while still queued
// (it never reached a worker) must not execute its fn when a slot frees
// up — nobody can observe it, and for fns that ignore cancellation it
// would duplicate the fresh execution that replaced it.
func TestCancelledQueuedCallNeverRuns(t *testing.T) {
	e := New(1)
	block := make(chan struct{})
	occupying := make(chan struct{})
	occupied := make(chan struct{}, 1)
	go func() {
		e.Do(context.Background(), "occupier", func(context.Context) (any, error) {
			close(occupying)
			<-block
			return nil, nil
		})
		occupied <- struct{}{}
	}()
	<-occupying

	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, err := e.Do(ctx, "k", func(context.Context) (any, error) {
			ran.Store(true)
			return nil, nil
		})
		done <- err
	}()
	// Cancel while the call is queued behind the occupier.
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().InFlight < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queued call never registered: %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning caller: err = %v, want context.Canceled", err)
	}

	close(block)
	<-occupied
	v, err := e.Do(context.Background(), "k", func(context.Context) (any, error) {
		return "fresh", nil
	})
	if err != nil || v != "fresh" {
		t.Fatalf("arrival after a dead queued call: v=%v err=%v, want fresh execution", v, err)
	}
	if ran.Load() {
		t.Fatal("a call cancelled before reaching a worker executed its fn")
	}
}

// TestWaitPrefersCompletedResult: when the caller's context is cancelled
// but the call has already completed, wait must return the result, not
// ctx.Err().
func TestWaitPrefersCompletedResult(t *testing.T) {
	e := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 200; i++ {
		c := &call{ctx: context.Background(), done: make(chan struct{}),
			waiters: 1, cancel: func() {}}
		c.val = "v"
		close(c.done)
		// Both select branches are ready; the result must win every time.
		v, err := e.wait(ctx, c)
		if err != nil || v != "v" {
			t.Fatalf("iteration %d: v=%v err=%v, want completed result", i, v, err)
		}
	}
}

// TestPanicBecomesError: a panicking job reports an error instead of
// crashing the pool, and the pool slot is released.
func TestPanicBecomesError(t *testing.T) {
	e := New(1)
	_, err := e.Do(context.Background(), "bad", func(context.Context) (any, error) {
		panic("kaboom")
	})
	if err == nil {
		t.Fatal("want panic converted to error")
	}
	// Pool must still have its slot.
	v, err := e.Do(context.Background(), "good", func(context.Context) (any, error) { return 1, nil })
	if err != nil || v != 1 {
		t.Fatalf("pool unusable after panic: v=%v err=%v", v, err)
	}
}

// TestGroup: the Group helper fans out, preserves per-job callbacks, and
// reports the first error.
func TestGroup(t *testing.T) {
	e := New(4)
	g := e.NewGroup(context.Background())
	var sum atomic.Int64
	for i := 1; i <= 5; i++ {
		i := i
		g.Go(fmt.Sprintf("n%d", i), func(context.Context) (any, error) { return int64(i), nil },
			func(val any, err error) {
				if err == nil {
					sum.Add(val.(int64))
				}
			})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 15 {
		t.Fatalf("sum = %d, want 15", sum.Load())
	}

	g2 := e.NewGroup(context.Background())
	boom := errors.New("boom")
	g2.Go("ok", func(context.Context) (any, error) { return nil, nil }, nil)
	g2.Go("bad", func(context.Context) (any, error) { return nil, boom }, nil)
	if err := g2.Wait(); !errors.Is(err, boom) {
		t.Fatalf("group err = %v, want boom", err)
	}
}

// TestTimingStats: durations accumulate and AvgTime is sane.
func TestTimingStats(t *testing.T) {
	e := New(2)
	for i := 0; i < 3; i++ {
		_, _ = e.Do(context.Background(), fmt.Sprintf("t%d", i), func(context.Context) (any, error) {
			time.Sleep(time.Millisecond)
			return nil, nil
		})
	}
	st := e.Stats()
	if st.Completed != 3 || st.TotalTime <= 0 || st.MaxTime <= 0 || st.AvgTime() <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxTime > st.TotalTime {
		t.Fatalf("max %v > total %v", st.MaxTime, st.TotalTime)
	}
}
