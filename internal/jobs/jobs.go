// Package jobs is the simulation job engine: a bounded worker pool with
// in-flight request coalescing (singleflight semantics). The service
// layer (cmd/tlsd) and the batch CLIs submit every expensive unit of
// work — compiling a benchmark, tracing a binary, simulating a
// (benchmark × policy) pair — through an Engine, so that
//
//   - parallelism is bounded by a configurable worker count instead of
//     spawning one goroutine per unit of work;
//   - identical concurrent requests (same key) execute once and share
//     the result, which keeps a thundering herd of clients asking for
//     the same figure from simulating it N times; and
//   - callers can abandon work via context cancellation without
//     poisoning the shared execution (the job itself is cancelled only
//     when every subscribed caller has gone away).
package jobs

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// JobFunc is the unit of work submitted to the engine.
type JobFunc = func(context.Context) (any, error)

// Engine is a bounded worker pool with request coalescing. The zero
// value is not usable; construct with New.
type Engine struct {
	workers int
	sem     chan struct{}

	mu       sync.Mutex
	inflight map[string]*call
	wrap     func(key string, fn JobFunc) JobFunc // test-only execution seam

	// counters (guarded by mu)
	submitted int64 // Do calls that started a new execution
	coalesced int64 // Do calls that joined an in-flight execution
	completed int64 // executions that finished without error
	failed    int64 // executions that returned an error (or panicked)
	abandoned int64 // waiters that gave up on a cancelled context
	recovered int64 // journaled jobs completed by startup recovery
	poisoned  int64 // journaled jobs quarantined as crash-loopers
	timedRuns int64 // executions that actually ran (recorded a duration)
	totalDur  time.Duration
	maxDur    time.Duration
	lastDur   time.Duration
	lastKey   string
	running   int // executions currently holding (or waiting for) a slot

	// stages accumulates per-pipeline-stage wall time reported by jobs
	// via ObserveStage ("compile", "profile", "trace", "sim"), so /stats
	// can break the per-job totals above down by where the time went.
	stages map[string]StageStat
}

// StageStat aggregates the wall-clock time of one pipeline stage.
type StageStat struct {
	Runs  int64         `json:"runs"`
	Total time.Duration `json:"total_time"`
	Max   time.Duration `json:"max_time"`
}

// Avg returns the mean duration of one stage observation.
func (s StageStat) Avg() time.Duration {
	if s.Runs == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Runs)
}

// call is one coalesced execution.
type call struct {
	ctx     context.Context // execution context; done ⇒ every waiter abandoned
	done    chan struct{}
	val     any
	err     error
	waiters int                // callers still interested in the result
	started bool               // fn is on a worker (an abandoned call still finishes)
	cancel  context.CancelFunc // cancels the execution when waiters == 0
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	Workers   int           `json:"workers"`
	InFlight  int           `json:"in_flight"`  // executions running or queued
	Submitted int64         `json:"submitted"`  // executions started
	Coalesced int64         `json:"coalesced"`  // calls that shared an execution
	Completed int64         `json:"completed"`  // executions finished ok
	Failed    int64         `json:"failed"`     // executions finished with error
	Abandoned int64         `json:"abandoned"`  // waiters lost to cancellation
	Recovered int64         `json:"recovered"`  // journaled jobs completed by startup recovery
	Poisoned  int64         `json:"poisoned"`   // journaled jobs quarantined as crash-loopers
	TimedRuns int64         `json:"timed_runs"` // executions that ran and recorded a duration
	TotalTime time.Duration `json:"total_time"` // summed execution wall time
	MaxTime   time.Duration `json:"max_time"`   // slowest single execution
	LastTime  time.Duration `json:"last_time"`  // most recent execution
	LastKey   string        `json:"last_key"`   // key of the most recent execution

	// Stages breaks execution time down by pipeline stage, keyed
	// "compile"/"profile"/"trace"/"sim" (empty until jobs report).
	Stages map[string]StageStat `json:"stages,omitempty"`
}

// AvgTime returns the mean execution wall time over the executions
// that actually ran. Executions that fail before acquiring a worker
// slot record no duration and are excluded — dividing by
// Completed+Failed would skew the mean low under cancellation churn.
func (s Stats) AvgTime() time.Duration {
	if s.TimedRuns == 0 {
		return 0
	}
	return s.TotalTime / time.Duration(s.TimedRuns)
}

// New returns an engine with the given worker-pool size; workers <= 0
// selects runtime.NumCPU().
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Engine{
		workers:  workers,
		sem:      make(chan struct{}, workers),
		inflight: make(map[string]*call),
		stages:   make(map[string]StageStat),
	}
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// SetWrap installs a hook that wraps every job function just before it
// executes on the pool (after coalescing and slot acquisition). It is
// the fault-injection seam for the chaos tests — inject latency,
// errors, or panics per key — and must not be used to change result
// types, or coalesced joins become type-unsafe. w == nil removes the
// hook.
func (e *Engine) SetWrap(w func(key string, fn JobFunc) JobFunc) {
	e.mu.Lock()
	e.wrap = w
	e.mu.Unlock()
}

// Do submits fn under key and waits for its result. If an execution for
// the same key is already in flight, Do joins it instead of running fn
// again (the coalesced caller gets the same value and error). fn runs on
// the worker pool, bounded by the pool size; Do blocks until the result
// is available or ctx is cancelled. When every caller interested in a
// key has cancelled, the execution's own context is cancelled too.
//
// fn must not call Do (directly or transitively): a job that waits for
// another job holds its worker slot while waiting, which deadlocks once
// the nesting depth reaches the pool size. Fan out with goroutines
// first and submit only the leaf work.
func (e *Engine) Do(ctx context.Context, key string, fn func(context.Context) (any, error)) (any, error) {
	e.mu.Lock()
	// Join an in-flight call while its execution is live — or while an
	// abandoned execution is still on a worker: a running job keeps going
	// after its last waiter cancelled (it must land its artifact), so a
	// retry arriving mid-run shares that result instead of queueing a
	// second execution of work that is already happening. Only a call
	// cancelled before it ever reached a worker is truly dead (it will
	// finish with context.Canceled without running fn), and only then
	// does a new arrival start a fresh execution.
	if c, ok := e.inflight[key]; ok && (c.ctx.Err() == nil || c.started) {
		c.waiters++
		e.coalesced++
		e.mu.Unlock()
		return e.wait(ctx, c)
	}
	// The execution context is detached from the first caller's ctx so a
	// single cancelled client cannot poison the shared result; it is
	// cancelled explicitly when the last waiter abandons the call.
	jctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	c := &call{ctx: jctx, done: make(chan struct{}), waiters: 1, cancel: cancel}
	e.inflight[key] = c
	e.submitted++
	e.running++
	e.mu.Unlock()

	go e.run(jctx, key, c, fn)
	return e.wait(ctx, c)
}

// wait blocks until c completes or ctx is cancelled.
func (e *Engine) wait(ctx context.Context, c *call) (any, error) {
	select {
	case <-c.done:
		return c.val, c.err
	case <-ctx.Done():
		// When both channels are ready the select may land here even
		// though the result is available; prefer the result.
		select {
		case <-c.done:
			return c.val, c.err
		default:
		}
		e.mu.Lock()
		c.waiters--
		if c.waiters == 0 {
			c.cancel()
		}
		e.abandoned++
		e.mu.Unlock()
		return nil, ctx.Err()
	}
}

// run executes one coalesced call on the worker pool.
func (e *Engine) run(ctx context.Context, key string, c *call, fn func(context.Context) (any, error)) {
	// Acquire a worker slot; give up if every waiter cancelled first.
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		e.finish(key, c, 0, ctx.Err())
		return
	}
	e.mu.Lock()
	// Both select arms may have been ready. A call cancelled while it
	// was still queued has no waiters and admits no new ones (Do only
	// joins cancelled calls that started), so running fn now would be
	// work nobody can observe — and for fns that ignore cancellation, a
	// duplicate execution racing the fresh call that replaced this one.
	if c.ctx.Err() != nil {
		e.mu.Unlock()
		<-e.sem
		e.finish(key, c, 0, c.ctx.Err())
		return
	}
	c.started = true
	if w := e.wrap; w != nil {
		fn = w(key, fn)
	}
	e.mu.Unlock()
	start := time.Now()
	val, err := safeCall(ctx, fn)
	<-e.sem
	c.val = val
	e.finish(key, c, time.Since(start), err)
}

// safeCall runs fn, converting a panic into an error so one bad job
// cannot take down the daemon's worker pool.
func safeCall(ctx context.Context, fn func(context.Context) (any, error)) (val any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: panic: %v", r)
		}
	}()
	return fn(ctx)
}

// finish publishes the result and updates counters.
func (e *Engine) finish(key string, c *call, d time.Duration, err error) {
	c.err = err
	e.mu.Lock()
	// A fresh execution may have replaced a dying call under this key
	// (see Do); only remove the entry this call still owns.
	if e.inflight[key] == c {
		delete(e.inflight, key)
	}
	e.running--
	if err != nil {
		e.failed++
	} else {
		e.completed++
	}
	if d > 0 {
		e.timedRuns++
		e.totalDur += d
		if d > e.maxDur {
			e.maxDur = d
		}
		e.lastDur = d
		e.lastKey = key
	}
	e.mu.Unlock()
	close(c.done)
	c.cancel() // release the detached context's resources
}

// NoteRecovered counts a journaled job that startup recovery carried to
// completion after a crash. The engine does not run recovery itself —
// the service layer does, through ordinary Do calls — but the counter
// lives here so /stats reports it beside the other execution counters.
func (e *Engine) NoteRecovered() {
	e.mu.Lock()
	e.recovered++
	e.mu.Unlock()
}

// NotePoisoned counts a journaled job quarantined as a crash-looper
// instead of being recovered.
func (e *Engine) NotePoisoned() {
	e.mu.Lock()
	e.poisoned++
	e.mu.Unlock()
}

// ObserveStage accumulates d of wall-clock time under a pipeline stage
// name. Jobs call it after completing work whose internal phases they
// timed; negative durations are ignored.
func (e *Engine) ObserveStage(stage string, d time.Duration) {
	if d < 0 {
		return
	}
	e.mu.Lock()
	s := e.stages[stage]
	s.Runs++
	s.Total += d
	if d > s.Max {
		s.Max = d
	}
	e.stages[stage] = s
	e.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	var stages map[string]StageStat
	if len(e.stages) > 0 {
		stages = make(map[string]StageStat, len(e.stages))
		for k, v := range e.stages {
			stages[k] = v
		}
	}
	return Stats{
		Workers:   e.workers,
		InFlight:  e.running,
		Submitted: e.submitted,
		Coalesced: e.coalesced,
		Completed: e.completed,
		Failed:    e.failed,
		Abandoned: e.abandoned,
		Recovered: e.recovered,
		Poisoned:  e.poisoned,
		TimedRuns: e.timedRuns,
		TotalTime: e.totalDur,
		MaxTime:   e.maxDur,
		LastTime:  e.lastDur,
		LastKey:   e.lastKey,
		Stages:    stages,
	}
}

// Group waits for a set of jobs submitted together (a convenience over
// sync.WaitGroup + first-error collection used by the fan-out paths).
type Group struct {
	eng *Engine
	ctx context.Context

	wg  sync.WaitGroup
	mu  sync.Mutex
	err error
}

// NewGroup returns a group that submits through eng under ctx.
func (e *Engine) NewGroup(ctx context.Context) *Group {
	return &Group{eng: e, ctx: ctx}
}

// Go submits fn under key and records its result via done (which may be
// nil). The first error is retained for Wait.
func (g *Group) Go(key string, fn func(context.Context) (any, error), done func(val any, err error)) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		val, err := g.eng.Do(g.ctx, key, fn)
		if done != nil {
			done(val, err)
		}
		if err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every submitted job finished and returns the first
// error.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
