package jobs

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSetWrap: the wrap seam sees every execution with its key and can
// substitute the outcome (the fault-injection mechanism of the chaos
// suite); a panic injected through it is still converted to an error.
func TestSetWrap(t *testing.T) {
	e := New(2)
	injected := errors.New("injected")
	e.SetWrap(func(key string, fn JobFunc) JobFunc {
		switch key {
		case "fail":
			return func(context.Context) (any, error) { return nil, injected }
		case "panic":
			return func(context.Context) (any, error) { panic("chaos") }
		}
		return fn
	})

	if v, err := e.Do(context.Background(), "ok", func(context.Context) (any, error) {
		return 7, nil
	}); err != nil || v.(int) != 7 {
		t.Fatalf("unwrapped key: %v, %v", v, err)
	}
	if _, err := e.Do(context.Background(), "fail", func(context.Context) (any, error) {
		return 7, nil
	}); !errors.Is(err, injected) {
		t.Fatalf("wrapped error = %v, want injected", err)
	}
	if _, err := e.Do(context.Background(), "panic", func(context.Context) (any, error) {
		return 7, nil
	}); err == nil {
		t.Fatal("injected panic not converted to error")
	}

	e.SetWrap(nil)
	if v, err := e.Do(context.Background(), "fail", func(context.Context) (any, error) {
		return 9, nil
	}); err != nil || v.(int) != 9 {
		t.Fatalf("after removing wrap: %v, %v", v, err)
	}
}

// TestAvgTimeExcludesUnranFailures: an execution cancelled before it
// acquires a slot records zero duration; it must count as Failed but
// not drag AvgTime down (the old mean divided by Completed+Failed).
func TestAvgTimeExcludesUnranFailures(t *testing.T) {
	e := New(1)

	// Occupy the only worker so a second job queues on the semaphore.
	block := make(chan struct{})
	started := make(chan struct{})
	go e.Do(context.Background(), "hold", func(context.Context) (any, error) {
		close(started)
		<-block
		time.Sleep(10 * time.Millisecond) // guarantees a nonzero duration
		return nil, nil
	})
	<-started

	// This one dies waiting for a slot: Failed++, duration 0.
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(5 * time.Millisecond); cancel() }()
	if _, err := e.Do(ctx, "starved", func(context.Context) (any, error) {
		return nil, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("starved job err = %v, want canceled", err)
	}
	close(block)

	deadline := time.After(5 * time.Second)
	for e.Stats().Completed < 1 {
		select {
		case <-deadline:
			t.Fatal("held job never completed")
		case <-time.After(time.Millisecond):
		}
	}

	st := e.Stats()
	if st.Failed < 1 || st.TimedRuns != 1 {
		t.Fatalf("stats = %+v, want failed>=1 timed_runs=1", st)
	}
	// The mean must be over the single timed run, not diluted by the
	// zero-duration failure.
	if got, want := st.AvgTime(), st.TotalTime; got != want {
		t.Fatalf("AvgTime = %v, want %v (TotalTime over 1 timed run)", got, want)
	}
}
