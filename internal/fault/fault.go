// Package fault is an injectable fault-point registry for chaos
// testing the service layer. Production code paths expose small seams
// — the filesystem interface in internal/store, the job-wrap point in
// internal/jobs — and the chaos tests arm named points in a Registry
// with faults (an error, a panic, added latency, or a simulated crash)
// that fire when the seam is exercised. Every failure mode the
// resilience layer defends against is thereby reproducible in-process,
// deterministically, without root privileges or real disk corruption.
//
// The package mirrors the paper's methodology at the systems level: the
// compiler's inserted synchronization is *optimistically* trusted and a
// cheap runtime check catches the cases where speculation was wrong
// (PAPER.md §5); here the service optimistically trusts its disk and
// its jobs, and the fault registry is how tests prove the safety net
// (breakers, deadlines, admission control) actually catches betrayals.
package fault

import (
	"errors"
	"os"
	"sync"
	"time"

	"tlssync/internal/store"
)

// errCrashed is what a Crash fault's in-process simulation returns when
// no killer is installed: the operation "died" partway through.
var errCrashed = errors.New("fault: simulated crash")

// A Fault is what happens when an armed point fires.
type Fault struct {
	Latency time.Duration // sleep this long first
	Err     error         // then return this error (nil = proceed)
	Panic   any           // ... or panic with this value (takes precedence over Err)
	Crash   bool          // simulate a machine crash around the operation (FS rename only)
	Times   int           // fire at most this many times; 0 = until disarmed
}

// Apply executes the fault's effect in order: latency, panic, error.
func (f Fault) Apply() error {
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if f.Panic != nil {
		panic(f.Panic)
	}
	return f.Err
}

// Registry holds the armed fault points. The zero value is not usable;
// construct with NewRegistry. All methods are safe for concurrent use,
// so faults can be armed and disarmed while the daemon under test is
// serving.
type Registry struct {
	mu     sync.Mutex
	armed  map[string]*armed
	fired  map[string]int64
	killer func() // hard-crash effect; see SetKiller
}

type armed struct {
	f    Fault
	left int // firings remaining; <0 = unlimited
}

// NewRegistry returns an empty registry: every point is a no-op until
// armed.
func NewRegistry() *Registry {
	return &Registry{armed: make(map[string]*armed), fired: make(map[string]int64)}
}

// Arm installs f at point, replacing any previous fault there.
func (r *Registry) Arm(point string, f Fault) {
	r.mu.Lock()
	defer r.mu.Unlock()
	left := -1
	if f.Times > 0 {
		left = f.Times
	}
	r.armed[point] = &armed{f: f, left: left}
}

// Disarm removes the fault at point, if any.
func (r *Registry) Disarm(point string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.armed, point)
}

// Reset disarms every point and zeroes the fired counters.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.armed = make(map[string]*armed)
	r.fired = make(map[string]int64)
}

// Fired returns how many times the point has fired.
func (r *Registry) Fired(point string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fired[point]
}

// FiredAll returns a snapshot of every point's fired counter. Points
// that never fired are absent.
func (r *Registry) FiredAll() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.fired))
	for p, n := range r.fired {
		out[p] = n
	}
	return out
}

// Armed lists the points that currently have a fault armed.
func (r *Registry) Armed() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.armed))
	for p := range r.armed {
		out = append(out, p)
	}
	return out
}

// Take consumes one firing of the fault armed at point without
// executing its effect — for seams that must interpret the fault
// themselves (the FS wrapper's crash-before-rename simulation).
func (r *Registry) Take(point string) (Fault, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	a, ok := r.armed[point]
	if !ok {
		return Fault{}, false
	}
	r.fired[point]++
	if a.left > 0 {
		a.left--
		if a.left == 0 {
			delete(r.armed, point)
		}
	}
	return a.f, true
}

// Fire executes the fault armed at point, if any: sleeps its latency,
// panics with its panic value, or returns its error. An unarmed point
// returns nil. Seams call Fire at the top of the guarded operation.
func (r *Registry) Fire(point string) error {
	f, ok := r.Take(point)
	if !ok {
		return nil
	}
	return f.Apply()
}

// SetKiller installs the hard-crash effect for Fault{Crash: true}.
// The kill-9 harness installs a SIGKILL-self here, so a Crash fault
// firing at a seam murders the process exactly at that point — after
// any partial on-disk effect (a torn journal append, a temp file with
// no rename) and before any cleanup. With no killer installed, Crash
// faults keep their in-process simulation semantics (see the seam
// docs), so the chaos suite and the crash harness share one corruption
// model. fn == nil removes the killer.
func (r *Registry) SetKiller(fn func()) {
	r.mu.Lock()
	r.killer = fn
	r.mu.Unlock()
}

// Kill invokes the installed killer, if any, and reports whether one
// was installed. Under the kill-9 harness the call never returns.
func (r *Registry) Kill() bool {
	r.mu.Lock()
	k := r.killer
	r.mu.Unlock()
	if k == nil {
		return false
	}
	k()
	return true
}

// --- filesystem wrapper ---
//
// FS fault points, fired by the corresponding operation:
//
//	fs.mkdir fs.open fs.append fs.create fs.readdir fs.rename fs.remove  (per call)
//	fs.read fs.write fs.sync                                             (per file op)
//
// A Fault{Crash: true} armed at fs.rename simulates a machine crash
// around the rename: the rename's metadata persists but file data that
// was never Synced does not — the destination materializes zero-length,
// exactly the state a real crash leaves when the writer skipped fsync.
// Data that WAS synced survives the crash intact, so the store's
// fsync-before-rename protocol is observable as a behavior difference.
//
// A Fault{Crash: true} armed at fs.write models a crash mid-append:
// only a prefix of the write lands (the torn tail a crashed journal
// append leaves behind) before the process dies. With a killer
// installed (SetKiller) the process is really killed at that point;
// without one the seam returns a write error after the partial write,
// so in-process chaos tests exercise the same corruption shape the
// kill-9 harness produces. Likewise fs.rename with a killer dies
// between the temp write and the rename — the classic
// durable-rename-protocol crash window.

// FS wraps a store.FS, firing registry points around each operation.
// Inner == nil wraps the real filesystem.
type FS struct {
	R     *Registry
	Inner store.FS

	mu     sync.Mutex
	synced map[string]bool // temp files synced since their last write
}

func (f *FS) inner() store.FS {
	if f.Inner != nil {
		return f.Inner
	}
	return store.OS
}

func (f *FS) setSynced(name string, v bool) {
	f.mu.Lock()
	if f.synced == nil {
		f.synced = make(map[string]bool)
	}
	f.synced[name] = v
	f.mu.Unlock()
}

func (f *FS) wasSynced(name string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.synced[name]
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.R.Fire("fs.mkdir"); err != nil {
		return err
	}
	return f.inner().MkdirAll(path, perm)
}

func (f *FS) Open(name string) (store.File, error) {
	if err := f.R.Fire("fs.open"); err != nil {
		return nil, err
	}
	fl, err := f.inner().Open(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, File: fl}, nil
}

func (f *FS) OpenAppend(name string) (store.File, error) {
	if err := f.R.Fire("fs.append"); err != nil {
		return nil, err
	}
	fl, err := f.inner().OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, File: fl}, nil
}

func (f *FS) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.R.Fire("fs.readdir"); err != nil {
		return nil, err
	}
	return f.inner().ReadDir(name)
}

func (f *FS) CreateTemp(dir, pattern string) (store.File, error) {
	if err := f.R.Fire("fs.create"); err != nil {
		return nil, err
	}
	fl, err := f.inner().CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, File: fl}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	if fa, ok := f.R.Take("fs.rename"); ok {
		if err := fa.Apply(); err != nil {
			return err
		}
		if fa.Crash {
			// With a killer installed the process dies between the temp
			// write and the rename: the destination never appears.
			if f.R.Kill() {
				return errCrashed
			}
			if !f.wasSynced(oldpath) {
				// Simulated machine crash with unsynced data: the directory
				// entry for newpath survives, its contents do not.
				if err := os.WriteFile(newpath, nil, 0o644); err != nil {
					return err
				}
				f.inner().Remove(oldpath)
				return nil
			}
		}
	}
	return f.inner().Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if err := f.R.Fire("fs.remove"); err != nil {
		return err
	}
	return f.inner().Remove(name)
}

// file wraps a store.File with read/write/sync fault points and sync
// tracking for the crash simulation.
type file struct {
	fs *FS
	store.File
}

func (fl *file) Read(p []byte) (int, error) {
	if err := fl.fs.R.Fire("fs.read"); err != nil {
		return 0, err
	}
	return fl.File.Read(p)
}

func (fl *file) Write(p []byte) (int, error) {
	if fa, ok := fl.fs.R.Take("fs.write"); ok {
		if err := fa.Apply(); err != nil {
			return 0, err
		}
		if fa.Crash {
			// Crash mid-append: a prefix of the write lands (the page
			// cache survives process death), the suffix never does. Under
			// the kill-9 harness the process dies right here; otherwise
			// the caller sees a torn-write error over the same bytes.
			n, _ := fl.File.Write(p[:len(p)/2])
			fl.fs.setSynced(fl.Name(), false)
			fl.fs.R.Kill() // no return under the kill-9 harness
			return n, errCrashed
		}
	}
	fl.fs.setSynced(fl.Name(), false)
	return fl.File.Write(p)
}

func (fl *file) Sync() error {
	if err := fl.fs.R.Fire("fs.sync"); err != nil {
		return err
	}
	if err := fl.File.Sync(); err != nil {
		return err
	}
	fl.fs.setSynced(fl.Name(), true)
	return nil
}
