package fault

import (
	"errors"
	"os"
	"testing"
	"time"

	"tlssync/internal/store"
)

func TestRegistryFire(t *testing.T) {
	r := NewRegistry()
	if err := r.Fire("unarmed"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}

	boom := errors.New("boom")
	r.Arm("p", Fault{Err: boom, Times: 2})
	for i := 0; i < 2; i++ {
		if err := r.Fire("p"); !errors.Is(err, boom) {
			t.Fatalf("firing %d = %v, want boom", i, err)
		}
	}
	if err := r.Fire("p"); err != nil {
		t.Fatalf("exhausted fault still fires: %v", err)
	}
	if got := r.Fired("p"); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}

	r.Arm("q", Fault{Err: boom})
	r.Disarm("q")
	if err := r.Fire("q"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
}

func TestRegistryPanicAndLatency(t *testing.T) {
	r := NewRegistry()
	r.Arm("p", Fault{Panic: "chaos"})
	func() {
		defer func() {
			if got := recover(); got != "chaos" {
				t.Errorf("recover = %v, want chaos", got)
			}
		}()
		r.Fire("p")
		t.Error("Fire returned instead of panicking")
	}()

	r.Arm("slow", Fault{Latency: 30 * time.Millisecond})
	start := time.Now()
	if err := r.Fire("slow"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("latency fault slept only %v", d)
	}
}

// TestCrashRenameDurability: the store's fsync-before-rename protocol
// is what makes an entry survive a crash around the rename. With the
// crash fault armed, a synced write reads back intact on "restart";
// the test also proves the fault itself works by writing an unsynced
// file directly and observing the zero-length wreckage.
func TestCrashRenameDurability(t *testing.T) {
	reg := NewRegistry()
	ffs := &FS{R: reg}
	dir := t.TempDir()

	s, err := store.NewWithFS(4, dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	key := store.Key("test", "crash")
	reg.Arm("fs.rename", Fault{Crash: true})
	s.Put(key, []byte("survives"))

	// "Restart": a fresh store over the same directory, clean fs.
	s2, err := store.NewWithFS(4, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key)
	if !ok || string(got) != "survives" {
		t.Fatalf("after crash-rename of a synced entry: Get = %q, %v (want survives)", got, ok)
	}
	if st := s2.Stats(); st.DiskErrors != 0 {
		t.Fatalf("disk errors after synced crash-rename: %+v", st)
	}

	// Control: an unsynced file renamed under the same fault is wrecked
	// (zero-length destination) — the state the protocol defends against.
	reg.Arm("fs.rename", Fault{Crash: true})
	tmp, err := ffs.CreateTemp(dir, ".raw*")
	if err != nil {
		t.Fatal(err)
	}
	tmp.Write([]byte("lost"))
	tmp.Close() // no Sync
	dst := dir + "/unsynced"
	if err := ffs.Rename(tmp.Name(), dst); err != nil {
		t.Fatal(err)
	}
	f, err := store.OS.Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 8)
	if n, _ := f.Read(buf); n != 0 {
		t.Fatalf("unsynced crash-rename kept %d bytes (%q), want 0", n, buf[:n])
	}
}

// TestFSErrorInjection: armed fs faults surface through the store as
// transient disk errors without corrupting the in-memory layer.
func TestFSErrorInjection(t *testing.T) {
	reg := NewRegistry()
	s, err := store.NewWithFS(4, t.TempDir(), &FS{R: reg})
	if err != nil {
		t.Fatal(err)
	}
	key := store.Key("test", "inject")

	reg.Arm("fs.create", Fault{Err: errors.New("injected ENOSPC")})
	s.Put(key, []byte("v")) // disk write fails, memory still serves
	if got, ok := s.Get(key); !ok || string(got) != "v" {
		t.Fatalf("memory layer lost the entry: %q, %v", got, ok)
	}
	if st := s.Stats(); st.DiskErrors == 0 {
		t.Fatalf("injected create fault not counted: %+v", st)
	}
	reg.Reset()

	// With the fault cleared the same Put persists.
	s.Put(key, []byte("v"))
	s2, err := store.NewWithFS(4, s.Dir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(key); !ok {
		t.Fatal("entry not on disk after fault cleared")
	}
}

// TestCrashTornWrite: a Crash fault at fs.write lands only a prefix of
// the bytes and reports a crash — the torn-append shape a real SIGKILL
// leaves in a journal. Without a killer installed the caller survives
// to observe the error.
func TestCrashTornWrite(t *testing.T) {
	r := NewRegistry()
	ffs := &FS{R: r}
	dir := t.TempDir()
	fl, err := ffs.CreateTemp(dir, ".w")
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	payload := []byte("0123456789abcdef")
	r.Arm("fs.write", Fault{Crash: true, Times: 1})
	n, err := fl.Write(payload)
	if !errors.Is(err, errCrashed) {
		t.Fatalf("torn write err = %v, want errCrashed", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("torn write landed %d bytes, want %d", n, len(payload)/2)
	}
	if err := fl.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(fl.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "01234567" {
		t.Fatalf("on-disk bytes = %q, want the prefix only", data)
	}
	// The fault was Times:1 — the next write is whole.
	if _, err := fl.Write(payload); err != nil {
		t.Fatalf("write after torn write: %v", err)
	}
}

// TestKillerInvokedOnCrash: with a killer installed, Crash faults call
// it (the harness installs SIGKILL-self; here we just observe the call).
func TestKillerInvokedOnCrash(t *testing.T) {
	r := NewRegistry()
	called := 0
	r.SetKiller(func() { called++ })
	if !r.Kill() {
		t.Fatal("Kill with killer installed returned false")
	}
	r.SetKiller(nil)
	if r.Kill() {
		t.Fatal("Kill with killer removed returned true")
	}
	if called != 1 {
		t.Fatalf("killer called %d times, want 1", called)
	}
}
