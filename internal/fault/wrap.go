package fault

import (
	"context"
	"fmt"
	"strings"

	"tlssync/internal/jobs"
)

// WrapJobs returns a job-engine wrap (jobs.Engine.SetWrap) that fires
// registry points around every job execution: the generic "jobs.exec"
// point always, plus a key-family point ("jobs.simulate",
// "jobs.prepare") so a fault can target the simulate stage without
// also hitting the compile that precedes it. A Crash fault at a job
// point kills the process when a killer is installed (the daemon's
// fault-injection mode and the kill-9 harness both install a
// SIGKILL-self); with no killer it degrades to a job error, so the
// same spec is usable in-process.
func WrapJobs(reg *Registry) func(key string, fn jobs.JobFunc) jobs.JobFunc {
	return func(key string, fn jobs.JobFunc) jobs.JobFunc {
		return func(ctx context.Context) (any, error) {
			points := []string{"jobs.exec"}
			switch {
			case strings.HasPrefix(key, "simulate/"):
				points = append(points, "jobs.simulate")
			case strings.HasPrefix(key, "prepare/"):
				points = append(points, "jobs.prepare")
			}
			for _, pt := range points {
				fa, ok := reg.Take(pt)
				if !ok {
					continue
				}
				if err := fa.Apply(); err != nil {
					return nil, err
				}
				if fa.Crash {
					reg.Kill()
					return nil, fmt.Errorf("fault: crash point %s fired with no killer", pt)
				}
			}
			return fn(ctx)
		}
	}
}
