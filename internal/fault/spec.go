package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ArmSpec is one parsed entry of a textual fault specification: a
// registry point plus the fault to arm there. The textual form is how
// faults cross a process boundary — the tlsd -faults flag, the
// TLSD_FAULTS environment variable, and tlssim's scheduled injections
// all speak it.
type ArmSpec struct {
	Point string
	F     Fault
}

// ParseSpec parses a fault specification string. The grammar is a
// semicolon-separated list of armings:
//
//	point=effect[:arg][:times=N][;point=effect...]
//
// where effect is one of:
//
//	latency:<duration>   sleep before proceeding (e.g. fs.read=latency:50ms)
//	error[:<message>]    fail the operation with an injected error
//	panic[:<message>]    panic inside the operation
//	crash                die at the seam (SIGKILL under an installed killer,
//	                     simulated torn write / lost rename otherwise)
//
// and times=N bounds how many firings before the point self-disarms
// (default: until disarmed). Examples:
//
//	fs.read=latency:50ms:times=10
//	jobs.simulate=error:injected;fs.rename=crash:times=1
func ParseSpec(spec string) ([]ArmSpec, error) {
	var out []ArmSpec
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		point, rest, ok := strings.Cut(entry, "=")
		point = strings.TrimSpace(point)
		if !ok || point == "" || strings.TrimSpace(rest) == "" {
			return nil, fmt.Errorf("fault: bad spec entry %q (want point=effect[:arg][:times=N])", entry)
		}
		parts := strings.Split(rest, ":")
		effect := strings.TrimSpace(parts[0])
		args := parts[1:]

		f := Fault{}
		// times=N may trail any effect; peel it off the end first.
		if n := len(args); n > 0 && strings.HasPrefix(strings.TrimSpace(args[n-1]), "times=") {
			v, err := strconv.Atoi(strings.TrimPrefix(strings.TrimSpace(args[n-1]), "times="))
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("fault: bad times in spec entry %q", entry)
			}
			f.Times = v
			args = args[:n-1]
		}
		switch effect {
		case "latency":
			if len(args) != 1 {
				return nil, fmt.Errorf("fault: latency effect in %q needs a duration (latency:50ms)", entry)
			}
			d, err := time.ParseDuration(strings.TrimSpace(args[0]))
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: bad latency duration in spec entry %q", entry)
			}
			f.Latency = d
		case "error":
			msg := "injected fault"
			if len(args) > 0 {
				msg = strings.Join(args, ":")
			}
			f.Err = fmt.Errorf("fault: %s", msg)
		case "panic":
			msg := "injected panic"
			if len(args) > 0 {
				msg = strings.Join(args, ":")
			}
			f.Panic = "fault: " + msg
		case "crash":
			if len(args) > 0 {
				return nil, fmt.Errorf("fault: crash effect in %q takes no argument", entry)
			}
			f.Crash = true
		default:
			return nil, fmt.Errorf("fault: unknown effect %q in spec entry %q (want latency, error, panic or crash)", effect, entry)
		}
		out = append(out, ArmSpec{Point: point, F: f})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fault: empty spec")
	}
	return out, nil
}

// ArmAll arms every entry of a parsed spec in the registry.
func ArmAll(r *Registry, specs []ArmSpec) {
	for _, s := range specs {
		r.Arm(s.Point, s.F)
	}
}
