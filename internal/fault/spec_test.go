package fault

import (
	"context"
	"strings"
	"testing"
	"time"

	"tlssync/internal/jobs"
)

func TestParseSpec(t *testing.T) {
	specs, err := ParseSpec("fs.read=latency:50ms:times=10; jobs.simulate=error:boom ;fs.rename=crash:times=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d entries, want 3", len(specs))
	}
	if specs[0].Point != "fs.read" || specs[0].F.Latency != 50*time.Millisecond || specs[0].F.Times != 10 {
		t.Errorf("latency entry parsed wrong: %+v", specs[0])
	}
	if specs[1].Point != "jobs.simulate" || specs[1].F.Err == nil || !strings.Contains(specs[1].F.Err.Error(), "boom") {
		t.Errorf("error entry parsed wrong: %+v", specs[1])
	}
	if specs[2].Point != "fs.rename" || !specs[2].F.Crash || specs[2].F.Times != 1 {
		t.Errorf("crash entry parsed wrong: %+v", specs[2])
	}
}

func TestParseSpecDefaults(t *testing.T) {
	specs, err := ParseSpec("jobs.exec=error")
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].F.Err == nil || specs[0].F.Times != 0 {
		t.Errorf("bare error entry parsed wrong: %+v", specs[0])
	}
	if specs, err = ParseSpec("jobs.exec=panic:oh no"); err != nil {
		t.Fatal(err)
	}
	if specs[0].F.Panic == nil {
		t.Errorf("panic entry parsed wrong: %+v", specs[0])
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",                            // empty
		";;",                          // empty entries only
		"fs.read",                     // no effect
		"=latency:1ms",                // no point
		"fs.read=",                    // empty effect
		"fs.read=latency",             // latency without duration
		"fs.read=latency:zonks",       // bad duration
		"fs.read=latency:-5ms",        // negative duration
		"fs.read=warp",                // unknown effect
		"fs.read=crash:1s",            // crash takes no argument
		"fs.read=error:times=zero",    // bad times
		"fs.read=latency:1ms:times=0", // times must be positive
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", spec)
		}
	}
}

func TestArmAllAndFiredAll(t *testing.T) {
	reg := NewRegistry()
	specs, err := ParseSpec("a=error:x;b=latency:0s")
	if err != nil {
		t.Fatal(err)
	}
	ArmAll(reg, specs)
	armed := reg.Armed()
	if len(armed) != 2 {
		t.Fatalf("armed = %v, want 2 points", armed)
	}
	if err := reg.Fire("a"); err == nil {
		t.Error("armed error point did not fire")
	}
	reg.Fire("a")
	reg.Fire("b")
	fired := reg.FiredAll()
	if fired["a"] != 2 || fired["b"] != 1 {
		t.Errorf("FiredAll = %v, want a:2 b:1", fired)
	}
}

func TestWrapJobs(t *testing.T) {
	reg := NewRegistry()
	wrap := WrapJobs(reg)
	ran := 0
	job := func(context.Context) (any, error) { ran++; return "ok", nil }

	// Unarmed: passes through.
	if v, err := wrap("simulate/x", job)(context.Background()); err != nil || v != "ok" {
		t.Fatalf("unarmed wrap: %v %v", v, err)
	}

	// Family point hits only matching keys.
	reg.Arm("jobs.simulate", Fault{Err: context.DeadlineExceeded, Times: 1})
	if _, err := wrap("prepare/x", job)(context.Background()); err != nil {
		t.Fatalf("prepare job hit a simulate fault: %v", err)
	}
	if _, err := wrap("simulate/x", job)(context.Background()); err == nil {
		t.Fatal("simulate fault did not fire")
	}

	// Crash with no killer degrades to an error, not a hang or panic.
	reg.Arm("jobs.exec", Fault{Crash: true, Times: 1})
	if _, err := wrap("other", job)(context.Background()); err == nil {
		t.Fatal("crash with no killer should surface as an error")
	}
	if ran != 2 {
		t.Fatalf("job ran %d times, want 2", ran)
	}
}

// Compile-time check: WrapJobs satisfies the engine's SetWrap shape.
var _ func(string, jobs.JobFunc) jobs.JobFunc = WrapJobs(NewRegistry())
