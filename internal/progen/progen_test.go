package progen

import (
	"testing"

	"tlssync/internal/core"
	"tlssync/internal/interp"
	"tlssync/internal/lang"
	"tlssync/internal/lower"
	"tlssync/internal/profile"
	"tlssync/internal/regions"
	"tlssync/internal/sim"
)

func TestGeneratedProgramsCompile(t *testing.T) {
	for seed := uint64(1); seed <= 30; seed++ {
		seed := seed
		src := Generate(seed, DefaultConfig())
		f, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\nsource:\n%s", seed, err, src)
		}
		c, err := lang.Check(f)
		if err != nil {
			t.Fatalf("seed %d: check: %v\nsource:\n%s", seed, err, src)
		}
		if _, err := lower.Lower(c); err != nil {
			t.Fatalf("seed %d: lower: %v\nsource:\n%s", seed, err, src)
		}
	}
}

// TestPipelineEquivalenceProperty is the central property test: for many
// random programs, every compiled variant (plain, scalar-synced base,
// train- and ref-profiled memory-synced) must print exactly the same
// values, with and without epoch tracking.
func TestPipelineEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	for seed := uint64(1); seed <= 25; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			src := Generate(seed, DefaultConfig())
			input := []int64{int64(seed), int64(seed * 7), int64(seed * 13)}
			b, err := core.Compile(core.Config{
				Source: src, RefInput: input, Seed: seed,
			})
			if err != nil {
				t.Fatalf("seed %d: compile: %v\nsource:\n%s", seed, err, src)
			}
			if err := b.CheckEquivalence(input); err != nil {
				t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
			}
			// Also against the plain (untransformed) program.
			plainTr, err := interp.Run(b.Plain, interp.Options{Input: input, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d: plain run: %v", seed, err)
			}
			refTr, err := b.Trace(b.Ref, input)
			if err != nil {
				t.Fatalf("seed %d: ref run: %v", seed, err)
			}
			if len(plainTr.Output) != len(refTr.Output) {
				t.Fatalf("seed %d: output length %d vs %d", seed, len(plainTr.Output), len(refTr.Output))
			}
			for i := range plainTr.Output {
				if plainTr.Output[i] != refTr.Output[i] {
					t.Fatalf("seed %d: output[%d] = %d, plain %d\nsource:\n%s",
						seed, i, refTr.Output[i], plainTr.Output[i], src)
				}
			}
		})
	}
}

// TestSimulationInvariantsProperty checks structural simulator invariants
// on random programs: slot conservation, committed-epoch counts, oracle
// supremacy, and determinism.
func TestSimulationInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	for seed := uint64(30); seed <= 42; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			src := Generate(seed, DefaultConfig())
			input := []int64{int64(seed)}
			b, err := core.Compile(core.Config{Source: src, RefInput: input, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if len(regions.Accepted(b.Decisions)) == 0 {
				t.Skipf("seed %d: no accepted region", seed)
			}
			tr, err := b.Trace(b.Base, input)
			if err != nil {
				t.Fatal(err)
			}
			u := sim.Simulate(sim.Input{Trace: tr, Policy: sim.PolicyU()})
			u2 := sim.Simulate(sim.Input{Trace: tr, Policy: sim.PolicyU()})
			if u.TotalCycles != u2.TotalCycles || u.Violations != u2.Violations {
				t.Errorf("seed %d: nondeterministic simulation", seed)
			}
			o := sim.Simulate(sim.Input{Trace: tr, Policy: sim.PolicyO()})
			if o.Violations != 0 {
				t.Errorf("seed %d: oracle had %d violations", seed, o.Violations)
			}
			if o.RegionCycles() > u.RegionCycles() {
				t.Errorf("seed %d: oracle (%d) slower than U (%d)", seed, o.RegionCycles(), u.RegionCycles())
			}
			// Slot conservation.
			slots := u.RegionSlots()
			want := u.RegionCycles() * int64(u.Machine.CPUs) * int64(u.Machine.IssueWidth)
			if slots.Total() != want {
				t.Errorf("seed %d: slots %d != %d", seed, slots.Total(), want)
			}
			// Committed epochs match the trace.
			var epochs int64
			for _, rs := range u.Regions {
				epochs += rs.Epochs
			}
			if int(epochs) != tr.EpochCount() {
				t.Errorf("seed %d: committed %d epochs, trace has %d", seed, epochs, tr.EpochCount())
			}
		})
	}
}

// TestProfileDistanceInvariant: dependence distances are positive and
// within the epoch count; frequencies within [0,1]; window counts never
// exceed total counts.
func TestProfileDistanceInvariant(t *testing.T) {
	for seed := uint64(50); seed <= 58; seed++ {
		src := Generate(seed, DefaultConfig())
		c, err := lang.Check(lang.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		p, err := lower.Lower(c)
		if err != nil {
			t.Fatal(err)
		}
		regs := regions.Regions(p, nil)
		tr, err := interp.Run(p, interp.Options{Regions: regs, Seed: seed, Input: []int64{3}})
		if err != nil {
			t.Fatal(err)
		}
		prof := profile.Analyze(tr)
		for _, rp := range prof.Regions {
			for k, st := range rp.Deps {
				if st.WinEpochs > st.EpochCount || st.D1Epochs > st.WinEpochs {
					t.Errorf("seed %d: count ordering violated for %v: %d/%d/%d",
						seed, k, st.D1Epochs, st.WinEpochs, st.EpochCount)
				}
				f := rp.Frequency(k)
				if f < 0 || f > 1 {
					t.Errorf("seed %d: frequency %f out of range", seed, f)
				}
				for d := range st.DistHist {
					if d < 1 || d >= rp.Epochs {
						t.Errorf("seed %d: distance %d out of range", seed, d)
					}
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(7, DefaultConfig())
	b := Generate(7, DefaultConfig())
	if a != b {
		t.Error("generation is not deterministic")
	}
	c := Generate(8, DefaultConfig())
	if a == c {
		t.Error("different seeds produced identical programs")
	}
}

// TestOptimizedPipelineEquivalenceProperty re-runs the equivalence
// property with the classical optimizer enabled, ensuring it composes
// with profiling, unrolling, scalar sync and memory sync on random
// programs.
func TestOptimizedPipelineEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	for seed := uint64(80); seed <= 92; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			src := Generate(seed, DefaultConfig())
			input := []int64{int64(seed * 3)}
			plain, err := core.Compile(core.Config{Source: src, RefInput: input, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			optimized, err := core.Compile(core.Config{Source: src, RefInput: input, Seed: seed, Optimize: true})
			if err != nil {
				t.Fatalf("seed %d (optimized): %v", seed, err)
			}
			if err := optimized.CheckEquivalence(input); err != nil {
				t.Fatalf("seed %d: optimized variants diverge: %v", seed, err)
			}
			// And the optimized build agrees with the unoptimized one.
			a, err := plain.Trace(plain.Ref, input)
			if err != nil {
				t.Fatal(err)
			}
			b, err := optimized.Trace(optimized.Ref, input)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Output) != len(b.Output) {
				t.Fatalf("seed %d: output lengths differ", seed)
			}
			for i := range a.Output {
				if a.Output[i] != b.Output[i] {
					t.Fatalf("seed %d: output[%d] = %d vs %d", seed, i, a.Output[i], b.Output[i])
				}
			}
		})
	}
}
