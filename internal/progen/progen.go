// Package progen generates random — but always valid — MiniC programs
// for property-based testing of the whole compiler pipeline: every
// generated program must parse, check, lower, profile, transform and
// simulate, and every transformed variant must print exactly the same
// output as the original (the pipeline's semantic-preservation
// invariant).
//
// The generator is deliberately biased toward the features the TLS
// passes care about: global scalars and arrays touched from inside
// `parallel for` loops (producing inter-epoch dependences at assorted
// frequencies and distances), helper procedures (producing call paths
// that require cloning), pointers into the heap, and guarded accesses
// (producing storeless paths that need NULL signals).
package progen

import (
	"fmt"
	"strings"
)

// Rand is a small deterministic PRNG (split from math/rand to keep
// generation stable across Go versions).
type Rand struct{ s uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{s: seed*6364136223846793005 + 1442695040888963407} }

// Next returns a pseudo-random uint64.
func (r *Rand) Next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 2685821657736338717
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Config bounds the generated program.
type Config struct {
	Globals    int // number of global scalar variables
	Arrays     int // number of global arrays
	Helpers    int // number of helper functions
	Iterations int // parallel loop trip count
	BodyStmts  int // statements in the loop body
	MaxDepth   int // expression nesting depth
}

// DefaultConfig returns moderate bounds.
func DefaultConfig() Config {
	return Config{
		Globals:    4,
		Arrays:     2,
		Helpers:    3,
		Iterations: 120,
		BodyStmts:  6,
		MaxDepth:   3,
	}
}

type gen struct {
	r   *Rand
	cfg Config
	sb  strings.Builder

	globals []string
	arrays  []string
	helpers []string // helper function names; each takes (x int) and returns int
	locals  []string // locals in scope while emitting statements
	acc     string   // the accumulator variable of the current scope
	inLoop  bool     // emitting inside the parallel loop (helpers callable)
	indent  int
	counter int // unique suffix for generated loop variables
}

// Generate produces a random MiniC program.
func Generate(seed uint64, cfg Config) string {
	g := &gen{r: NewRand(seed), cfg: cfg}
	return g.program()
}

func (g *gen) w(format string, args ...any) {
	g.sb.WriteString(strings.Repeat("\t", g.indent))
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

func (g *gen) program() string {
	// Globals.
	for i := 0; i < g.cfg.Globals; i++ {
		name := fmt.Sprintf("g%d", i)
		g.globals = append(g.globals, name)
		g.w("var %s int;", name)
	}
	for i := 0; i < g.cfg.Arrays; i++ {
		name := fmt.Sprintf("arr%d", i)
		g.arrays = append(g.arrays, name)
		g.w("var %s [%d]int;", name, 64+g.r.Intn(4)*64)
	}
	g.w("var sink [1024]int;")

	// A linked free list manipulated through helpers: pointer aliasing,
	// heap allocation sites, and multi-level call paths for the cloning
	// transformation (the paper's Figure 4 shape, randomized).
	g.w("type Node struct { next *Node; val int; }")
	g.w("var list_head *Node;")
	g.w("func list_push(v int) {")
	g.indent++
	g.w("var n *Node = new(Node);")
	g.w("n->val = v;")
	g.w("n->next = list_head;")
	g.w("list_head = n;")
	g.indent--
	g.w("}")
	g.w("func list_pop() int {")
	g.indent++
	g.w("var n *Node = list_head;")
	g.w("if n == nil { return 0; }")
	g.w("list_head = n->next;")
	g.w("return n->val;")
	g.indent--
	g.w("}")

	// Helpers: each reads/writes some globals and does a little local
	// work, giving the profiler call paths to name and the memsync pass
	// procedures to clone.
	for i := 0; i < g.cfg.Helpers; i++ {
		name := fmt.Sprintf("h%d", i)
		g.helpers = append(g.helpers, name)
		g.w("func %s(x int) int {", name)
		g.indent++
		g.locals = []string{"x"}
		g.acc = "t"
		g.inLoop = false
		g.w("var t int = x * %d + %d;", 1+g.r.Intn(9), g.r.Intn(100))
		g.locals = append(g.locals, "t")
		n := 1 + g.r.Intn(3)
		for s := 0; s < n; s++ {
			g.stmt(1)
		}
		g.w("return t %% %d;", 2+g.r.Intn(1000))
		g.indent--
		g.w("}")
	}

	// main: sequential warmup, the parallel loop, output.
	g.w("func main() {")
	g.indent++
	g.w("var i int;")
	g.w("for i = 0; i < %d; i = i + 1 {", 200+g.r.Intn(400))
	g.indent++
	arr := g.arrays[g.r.Intn(len(g.arrays))]
	g.w("%s[i %% 64] = %s[i %% 64] + i * %d;", arr, arr, 1+g.r.Intn(7))
	g.indent--
	g.w("}")

	g.w("parallel for i = 0; i < %d; i = i + 1 {", g.cfg.Iterations)
	g.indent++
	g.locals = []string{"i"}
	g.acc = "acc"
	g.inLoop = true
	g.w("var acc int = 0;")
	g.locals = append(g.locals, "acc")
	for s := 0; s < g.cfg.BodyStmts; s++ {
		g.stmt(g.cfg.MaxDepth)
	}
	g.w("sink[i %% 1024] = acc;")
	g.indent--
	g.w("}")

	// Print everything observable.
	for _, name := range g.globals {
		g.w("print(%s);", name)
	}
	g.w("var s int = 0;")
	g.w("for i = 0; i < 1024; i = i + 1 { s = s + sink[i]; }")
	g.w("print(s);")
	for _, arr := range g.arrays {
		g.w("print(%s[%d]);", arr, g.r.Intn(64))
	}
	g.indent--
	g.w("}")
	return g.sb.String()
}

// stmt emits one random statement at the current indent, using only
// in-scope names (g.locals / g.acc) plus globals.
func (g *gen) stmt(depth int) {
	acc := g.acc
	switch g.r.Intn(10) {
	case 0, 1: // global read-modify-write (the hot-dependence generator)
		v := g.globals[g.r.Intn(len(g.globals))]
		g.w("%s = %s + %s;", v, v, g.expr(depth))
	case 2: // guarded global update (storeless paths / rare deps)
		v := g.globals[g.r.Intn(len(g.globals))]
		g.w("if %s %% %d == %d {", g.scopeVar(), 2+g.r.Intn(12), g.r.Intn(2))
		g.indent++
		g.w("%s = %s ^ %s;", v, v, g.expr(depth))
		g.indent--
		g.w("}")
	case 3: // array store
		a := g.arrays[g.r.Intn(len(g.arrays))]
		g.w("%s[((%s) %% 64 + 64) %% 64] = %s;", a, g.expr(depth), g.expr(depth))
	case 4, 5: // accumulate via array read
		a := g.arrays[g.r.Intn(len(g.arrays))]
		g.w("%s = %s + %s[((%s) %% 64 + 64) %% 64];", acc, acc, a, g.expr(depth))
	case 6: // helper or list call (only from the loop body)
		if g.inLoop {
			switch g.r.Intn(3) {
			case 0:
				g.w("list_push(%s);", g.expr(depth))
				return
			case 1:
				g.w("%s = %s + list_pop();", acc, acc)
				return
			default:
				if len(g.helpers) > 0 {
					h := g.helpers[g.r.Intn(len(g.helpers))]
					g.w("%s = %s + %s(%s);", acc, acc, h, g.expr(depth))
					return
				}
			}
		}
		g.w("%s = %s + %s;", acc, acc, g.expr(depth))
	case 7: // local while loop
		g.counter++
		v := fmt.Sprintf("w%d", g.counter)
		g.w("var %s int = 0;", v)
		g.w("while %s < %d {", v, 2+g.r.Intn(5))
		g.indent++
		g.w("%s = %s + %s * %d;", acc, acc, v, 1+g.r.Intn(5))
		g.w("%s = %s + 1;", v, v)
		g.indent--
		g.w("}")
	case 8: // if/else on an expression
		g.w("if %s > %d {", g.expr(depth), g.r.Intn(50))
		g.indent++
		g.w("%s = %s + %d;", acc, acc, 1+g.r.Intn(20))
		g.indent--
		g.w("} else {")
		g.indent++
		g.w("%s = %s - %d;", acc, acc, 1+g.r.Intn(20))
		g.indent--
		g.w("}")
	default: // pure local arithmetic
		g.w("%s = %s %s %s;", acc, acc, []string{"+", "-", "^"}[g.r.Intn(3)], g.expr(depth))
	}
}

// scopeVar returns a random in-scope local variable name.
func (g *gen) scopeVar() string {
	return g.locals[g.r.Intn(len(g.locals))]
}

// expr emits a random int expression over in-scope names.
func (g *gen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.r.Intn(200))
		case 1, 2:
			return g.scopeVar()
		default:
			return g.globals[g.r.Intn(len(g.globals))]
		}
	}
	op := []string{"+", "-", "*", "%"}[g.r.Intn(4)]
	lhs, rhs := g.expr(depth-1), g.expr(depth-1)
	if op == "%" {
		// Keep modulus nonzero (division by zero is defined as 0 in
		// MiniC, but a constant modulus keeps values bounded).
		return fmt.Sprintf("(%s %s %d)", lhs, op, 2+g.r.Intn(97))
	}
	return fmt.Sprintf("(%s %s %s)", lhs, op, rhs)
}
