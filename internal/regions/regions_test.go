package regions

import (
	"testing"

	"tlssync/internal/interp"
	"tlssync/internal/ir"
	"tlssync/internal/lang"
	"tlssync/internal/lower"
	"tlssync/internal/profile"
)

func compile(t testing.TB, src string) *ir.Program {
	t.Helper()
	c, err := lang.Check(lang.MustParse(src))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := lower.Lower(c)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func profileAll(t testing.TB, p *ir.Program, input []int64) *profile.Profile {
	t.Helper()
	tr, err := interp.Run(p, interp.Options{Regions: Regions(p, nil), Input: input, Seed: 1})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return profile.Analyze(tr)
}

func TestCandidatesDeterministic(t *testing.T) {
	p := compile(t, `
var g int;
func a() {
	var i int;
	parallel for i = 0; i < 5; i = i + 1 { g = g + 1; }
}
func main() {
	var j int;
	a();
	parallel for j = 0; j < 5; j = j + 1 { g = g + 1; }
}`)
	c1 := Candidates(p)
	c2 := Candidates(p)
	if len(c1) != 2 {
		t.Fatalf("candidates = %d, want 2", len(c1))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Error("nondeterministic candidate order")
		}
	}
	// Deep copies produce identical keys.
	c3 := Candidates(p.DeepCopy())
	for i := range c1 {
		if c1[i] != c3[i] {
			t.Error("keys differ across deep copy")
		}
	}
}

func TestSelectAcceptsGoodLoop(t *testing.T) {
	p := compile(t, `
var g int;
var arr [64]int;
func main() {
	var i int;
	parallel for i = 0; i < 500; i = i + 1 {
		arr[i % 64] = arr[i % 64] + i;
		g = g + arr[(i + 7) % 64];
	}
	print(g);
}`)
	prof := profileAll(t, p, nil)
	ds := Select(p, prof, Defaults())
	if len(ds) != 1 {
		t.Fatalf("decisions = %d, want 1", len(ds))
	}
	if !ds[0].Accepted {
		t.Fatalf("rejected: %s (cov=%.4f epochs=%.1f size=%.1f)",
			ds[0].Reason, ds[0].Coverage, ds[0].EpochsPerInst, ds[0].InstrsPerEpoch)
	}
}

func TestSelectRejectsTinyCoverage(t *testing.T) {
	p := compile(t, `
var g int;
func main() {
	var i int;
	// Huge sequential part.
	for i = 0; i < 100000; i = i + 1 { g = g + i; }
	// Tiny parallel loop: 2 iterations.
	parallel for i = 0; i < 2; i = i + 1 { g = g + 1; }
	print(g);
}`)
	prof := profileAll(t, p, nil)
	ds := Select(p, prof, Defaults())
	if ds[0].Accepted {
		t.Fatalf("tiny loop accepted (coverage %.5f)", ds[0].Coverage)
	}
}

func TestSelectRejectsFewEpochs(t *testing.T) {
	p := compile(t, `
var g int;
func main() {
	var i int;
	parallel for i = 0; i < 1; i = i + 1 {
		var j int;
		for j = 0; j < 1000; j = j + 1 { g = g + j; }
	}
	print(g);
}`)
	prof := profileAll(t, p, nil)
	ds := Select(p, prof, Defaults())
	if ds[0].Accepted {
		t.Fatal("single-trip loop accepted")
	}
}

func TestSelectNeverExecuted(t *testing.T) {
	p := compile(t, `
var g int;
func cold() {
	var i int;
	parallel for i = 0; i < 10; i = i + 1 { g = g + 1; }
}
func main() {
	if 0 { cold(); }
	print(g);
}`)
	prof := profileAll(t, p, nil)
	ds := Select(p, prof, Defaults())
	if len(ds) != 1 || ds[0].Accepted {
		t.Fatalf("never-executed loop should be rejected: %+v", ds)
	}
	if ds[0].Reason != "never executed" {
		t.Errorf("reason = %q", ds[0].Reason)
	}
}

func TestUnrollPreservesSemantics(t *testing.T) {
	src := `
var g int;
var arr [32]int;
func main() {
	var i int;
	parallel for i = 0; i < 103; i = i + 1 {
		arr[i % 32] = arr[i % 32] + i;
		g = g + 1;
	}
	print(g);
	print(arr[5]);
	print(arr[31]);
}`
	base := compile(t, src)
	baseTr, err := interp.Run(base, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{2, 3, 4, 8} {
		p := compile(t, src)
		f := p.FuncMap["main"]
		regs := Regions(p, nil)
		if err := Unroll(p, f, regs[0].Loop, k); err != nil {
			t.Fatalf("unroll by %d: %v", k, err)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("verify after unroll %d: %v", k, err)
		}
		tr, err := interp.Run(p, interp.Options{})
		if err != nil {
			t.Fatalf("run unrolled %d: %v", k, err)
		}
		if len(tr.Output) != len(baseTr.Output) {
			t.Fatalf("unroll %d changed output length", k)
		}
		for i := range tr.Output {
			if tr.Output[i] != baseTr.Output[i] {
				t.Fatalf("unroll %d: output[%d] = %d, want %d",
					k, i, tr.Output[i], baseTr.Output[i])
			}
		}
	}
}

func TestUnrollReducesEpochCount(t *testing.T) {
	src := `
var g int;
func main() {
	var i int;
	parallel for i = 0; i < 100; i = i + 1 {
		g = g + i;
	}
	print(g);
}`
	p := compile(t, src)
	f := p.FuncMap["main"]
	regs := Regions(p, nil)
	if err := Unroll(p, f, regs[0].Loop, 4); err != nil {
		t.Fatal(err)
	}
	// Re-derive the (now larger) region and trace it.
	regs = Regions(p, nil)
	tr, err := interp.Run(p, interp.Options{Regions: regs})
	if err != nil {
		t.Fatal(err)
	}
	// 100 iterations / 4 per epoch = 25 full epochs (+ exit evaluation).
	got := tr.EpochCount()
	if got < 25 || got > 27 {
		t.Errorf("epochs after unroll-4 = %d, want ~26", got)
	}
}

func TestApplyUnrollingFromDecisions(t *testing.T) {
	p := compile(t, `
var g int;
var h int;
func main() {
	var i int;
	parallel for i = 0; i < 2000; i = i + 1 {
		g = g + 1;
		h = h + i;
	}
	print(g);
}`)
	prof := profileAll(t, p, nil)
	h := Defaults()
	ds := Select(p, prof, h)
	if !ds[0].Accepted {
		t.Fatalf("rejected: %s", ds[0].Reason)
	}
	if ds[0].InstrsPerEpoch >= h.UnrollTarget && ds[0].UnrollFactor != 1 {
		t.Error("large loop should not unroll")
	}
	if ds[0].InstrsPerEpoch < h.UnrollTarget && ds[0].UnrollFactor <= 1 {
		t.Errorf("small loop (%.1f instrs/epoch) not unrolled", ds[0].InstrsPerEpoch)
	}
	if err := ApplyUnrolling(p, ds); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	tr, err := interp.Run(p, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Output[0] != 2000 {
		t.Errorf("output = %d, want 2000", tr.Output[0])
	}
}

func TestRegionsStableAcrossDeepCopy(t *testing.T) {
	p := compile(t, `
var g int;
func main() {
	var i int;
	parallel for i = 0; i < 10; i = i + 1 { g = g + 1; }
}`)
	r1 := Regions(p, nil)
	cp := p.DeepCopy()
	r2 := Regions(cp, nil)
	if len(r1) != len(r2) {
		t.Fatal("region count differs")
	}
	for i := range r1 {
		if r1[i].ID != r2[i].ID {
			t.Error("region IDs differ across copy")
		}
		if r1[i].Func.Name != r2[i].Func.Name {
			t.Error("region funcs differ across copy")
		}
		if r1[i].Loop.Header.Index != r2[i].Loop.Header.Index {
			t.Error("region headers differ across copy")
		}
	}
}

func TestUnrollErrorPaths(t *testing.T) {
	p := compile(t, `
var g int;
func main() {
	var i int;
	parallel for i = 0; i < 10; i = i + 1 { g = g + 1; }
}`)
	f := p.FuncMap["main"]
	regs := Regions(p, nil)
	loop := regs[0].Loop

	// Non-positive factors are no-ops.
	if err := Unroll(p, f, loop, 1); err != nil {
		t.Errorf("k=1 should be a no-op: %v", err)
	}
	if err := Unroll(p, f, loop, 0); err != nil {
		t.Errorf("k=0 should be a no-op: %v", err)
	}

	// A corrupted latch list must be rejected.
	broken := *loop
	broken.Latches = append([]*ir.Block(nil), loop.Latches...)
	broken.Latches = append(broken.Latches, loop.Latches[0])
	if err := Unroll(p, f, &broken, 2); err == nil {
		t.Error("expected multi-latch error")
	}
}

func TestApplyUnrollingMissingLoop(t *testing.T) {
	p := compile(t, `
var g int;
func main() {
	var i int;
	parallel for i = 0; i < 10; i = i + 1 { g = g + 1; }
}`)
	ds := []Decision{{
		Key:          Key{Func: "main", Block: 99},
		Accepted:     true,
		UnrollFactor: 2,
	}}
	if err := ApplyUnrolling(p, ds); err == nil {
		t.Error("expected loop-not-found error")
	}
}
