// Package regions implements speculative-region selection and loop
// unrolling (paper §3.1 "Deciding Where to Parallelize").
//
// Candidate regions are the source-marked `parallel for` loops. A
// profiling run measures each candidate's coverage, epochs per instance
// and instructions per epoch; the paper's heuristics then accept or
// reject it: coverage ≥ 0.1% of execution, ≥ 1.5 epochs per instance,
// ≥ 15 instructions per epoch. Small accepted loops are unrolled to
// amortize speculative-parallelization overheads.
package regions

import (
	"fmt"
	"sort"

	"tlssync/internal/cfg"
	"tlssync/internal/interp"
	"tlssync/internal/ir"
	"tlssync/internal/profile"
)

// Heuristics are the loop-selection thresholds (paper defaults).
type Heuristics struct {
	MinCoverage       float64 // fraction of total dynamic instructions
	MinEpochsPerInst  float64 // average epochs per region instance
	MinInstrsPerEpoch float64 // average dynamic instructions per epoch
	// UnrollTarget is the desired minimum epoch size; loops below it are
	// unrolled by the smallest factor reaching it (capped at MaxUnroll).
	UnrollTarget float64
	MaxUnroll    int
}

// Defaults returns the paper's selection heuristics.
func Defaults() Heuristics {
	return Heuristics{
		MinCoverage:       0.001,
		MinEpochsPerInst:  1.5,
		MinInstrsPerEpoch: 15,
		UnrollTarget:      30,
		MaxUnroll:         8,
	}
}

// Key identifies a region stably across program deep-copies: the function
// name plus the header's block index.
type Key struct {
	Func  string
	Block int
}

// Candidates returns the keys of all `parallel for` loops in the program,
// in deterministic order.
func Candidates(p *ir.Program) []Key {
	var keys []Key
	for _, f := range p.Funcs {
		for _, l := range cfg.ParallelLoops(f) {
			keys = append(keys, Key{Func: f.Name, Block: l.Header.Index})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Func != keys[j].Func {
			return keys[i].Func < keys[j].Func
		}
		return keys[i].Block < keys[j].Block
	})
	return keys
}

// Regions materializes interp.Region values for the accepted keys, with
// deterministic IDs (ID = index in Candidates order restricted to the
// accepted set). If accepted is nil, all candidates are used.
func Regions(p *ir.Program, accepted map[Key]bool) []*interp.Region {
	var out []*interp.Region
	id := 0
	for _, k := range Candidates(p) {
		if accepted != nil && !accepted[k] {
			continue
		}
		f := p.FuncMap[k.Func]
		loops := cfg.NaturalLoops(f)
		var loop *cfg.Loop
		for _, l := range loops {
			if l.Header.Index == k.Block {
				loop = l
			}
		}
		if loop == nil {
			continue
		}
		out = append(out, &interp.Region{ID: id, Func: f, Loop: loop})
		id++
	}
	return out
}

// Decision records the outcome of selection for one candidate.
type Decision struct {
	Key      Key
	Accepted bool
	Reason   string // rejection reason, "" if accepted

	Coverage       float64
	EpochsPerInst  float64
	InstrsPerEpoch float64
	UnrollFactor   int // 1 = no unrolling
}

// Select applies the heuristics to profiled candidates. The profile must
// come from a run with ALL candidates as regions (so each has coverage and
// epoch statistics). Region IDs in prof correspond to Candidates order.
func Select(p *ir.Program, prof *profile.Profile, h Heuristics) []Decision {
	cands := Candidates(p)
	decisions := make([]Decision, 0, len(cands))
	for i, k := range cands {
		d := Decision{Key: k, UnrollFactor: 1}
		rp := prof.Regions[i]
		if rp == nil || rp.Epochs == 0 {
			d.Reason = "never executed"
			decisions = append(decisions, d)
			continue
		}
		d.Coverage = prof.Coverage(i)
		d.EpochsPerInst = float64(rp.Epochs) / float64(rp.Instances)
		d.InstrsPerEpoch = float64(rp.Events) / float64(rp.Epochs)
		switch {
		case d.Coverage < h.MinCoverage:
			d.Reason = fmt.Sprintf("coverage %.4f below %.4f", d.Coverage, h.MinCoverage)
		case d.EpochsPerInst < h.MinEpochsPerInst:
			d.Reason = fmt.Sprintf("%.1f epochs/instance below %.1f", d.EpochsPerInst, h.MinEpochsPerInst)
		case d.InstrsPerEpoch < h.MinInstrsPerEpoch:
			d.Reason = fmt.Sprintf("%.1f instrs/epoch below %.1f", d.InstrsPerEpoch, h.MinInstrsPerEpoch)
		default:
			d.Accepted = true
			if h.UnrollTarget > 0 && d.InstrsPerEpoch < h.UnrollTarget {
				f := int(h.UnrollTarget/d.InstrsPerEpoch) + 1
				if f > h.MaxUnroll {
					f = h.MaxUnroll
				}
				if f > 1 {
					d.UnrollFactor = f
				}
			}
		}
		decisions = append(decisions, d)
	}
	return decisions
}

// Accepted extracts the accepted keys from decisions.
func Accepted(decisions []Decision) map[Key]bool {
	out := make(map[Key]bool)
	for _, d := range decisions {
		if d.Accepted {
			out[d.Key] = true
		}
	}
	return out
}

// Unroll replicates the loop body k-1 extra times so each arrival at the
// original header spans k source iterations (one TLS epoch amortizes k
// iterations). The loop must be in the canonical lowered form: a header
// whose terminator is CondBr(body, exit). Cloned headers lose the
// ParallelHeader mark so epoch boundaries stay on the original header.
//
// Shape after unrolling by k:
//
//	header(orig) -> body_1 ... latch_1 -> header_2 -> body_2 ... -> header_1
//
// Each cloned header re-checks the loop condition and can exit early, so
// trip counts not divisible by k remain correct.
func Unroll(p *ir.Program, f *ir.Func, loop *cfg.Loop, k int) error {
	if k <= 1 {
		return nil
	}
	header := loop.Header
	term := header.Terminator()
	if term == nil || term.Op != ir.CondBr {
		return fmt.Errorf("unroll: loop header b%d not in canonical CondBr form", header.Index)
	}
	if len(loop.Latches) != 1 {
		return fmt.Errorf("unroll: loop has %d latches, want 1", len(loop.Latches))
	}

	// Collect the loop blocks in a deterministic order, and snapshot their
	// successor lists: the original latch's edge is redirected while
	// cloning, and later copies must clone the original shape, not the
	// mutated one.
	var body []*ir.Block
	origSuccs := make(map[*ir.Block][]*ir.Block)
	for _, b := range f.Blocks {
		if loop.Blocks[b] {
			body = append(body, b)
			origSuccs[b] = append([]*ir.Block(nil), b.Succs...)
		}
	}

	prevLatch := loop.Latches[0]
	for copyIdx := 2; copyIdx <= k; copyIdx++ {
		blockMap := make(map[*ir.Block]*ir.Block, len(body))
		for _, b := range body {
			nb := f.NewBlock(fmt.Sprintf("%s.u%d", b.Name, copyIdx))
			nb.ParallelHeader = false
			blockMap[b] = nb
		}
		for _, b := range body {
			nb := blockMap[b]
			for _, in := range b.Instrs {
				nb.Instrs = append(nb.Instrs, p.CloneInstr(in))
			}
			for _, s := range origSuccs[b] {
				switch {
				case s == header:
					// Back edge: aim at the original header; the redirect
					// step below rewires it into the next copy (or leaves
					// the final copy's edge closing the loop).
					nb.Succs = append(nb.Succs, header)
				default:
					if ns, inLoop := blockMap[s]; inLoop {
						nb.Succs = append(nb.Succs, ns)
					} else {
						nb.Succs = append(nb.Succs, s) // exits stay shared
					}
				}
			}
		}
		// Redirect the previous copy's latch edge (to the original header)
		// into this copy's header.
		newHeader := blockMap[header]
		for i, s := range prevLatch.Succs {
			if s == header {
				prevLatch.Succs[i] = newHeader
			}
		}
		prevLatch = blockMap[loop.Latches[0]]
	}
	f.Renumber()
	return f.Verify()
}

// ApplyUnrolling performs the unrolling called for by the decisions,
// re-resolving loops after each transformation (indices shift as blocks
// are added, but header indices of previously processed loops are stable
// because Unroll only appends blocks).
func ApplyUnrolling(p *ir.Program, decisions []Decision) error {
	for _, d := range decisions {
		if !d.Accepted || d.UnrollFactor <= 1 {
			continue
		}
		f := p.FuncMap[d.Key.Func]
		var loop *cfg.Loop
		for _, l := range cfg.NaturalLoops(f) {
			if l.Header.Index == d.Key.Block {
				loop = l
			}
		}
		if loop == nil {
			return fmt.Errorf("unroll: loop %v not found", d.Key)
		}
		if err := Unroll(p, f, loop, d.UnrollFactor); err != nil {
			return err
		}
	}
	return nil
}
