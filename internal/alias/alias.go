// Package alias implements a flow-insensitive, field-insensitive,
// Andersen-style inclusion-based points-to analysis over the IR.
//
// The paper positions pointer analysis as the static complement to
// dependence profiling (§1.1: "Pointer analysis, especially
// probabilistic, inter-procedural and context-sensitive pointer analysis
// could help us obtain this information with less detailed profiling")
// and §2.2 explains why neither must- nor may-alias information alone can
// select the loads to synchronize. This package provides the may-alias
// side: abstract locations are globals, heap allocation sites, and a
// single stack summary; the analysis computes which locations each
// register and each location may point to, and from that which
// (store, load) pairs may be dynamically dependent.
//
// Its two uses in this repository:
//
//   - cross-checking the profiler: every profiled dependence must be
//     within the static may-alias relation (a soundness property test);
//   - reporting how much tighter profiling is than static analysis (the
//     paper's argument for profiling: may-alias sets are far too big to
//     synchronize wholesale).
package alias

import (
	"fmt"
	"sort"

	"tlssync/internal/ir"
)

// Loc is an abstract memory location.
type Loc int

// Location space: index 0..G-1 are globals (by Program.Globals order),
// then heap allocation sites (one per NewObj instruction), then the
// single stack summary location.
type Analysis struct {
	prog *ir.Program

	globals   []*ir.Global
	heapSites []int // NewObj instruction IDs, ordered
	heapIndex map[int]int

	numLocs  int
	stackLoc Loc

	// regPts[funcName][reg] = set of locations the register may point to.
	regPts map[string][]locset
	// memPts[loc] = locations that pointers stored AT loc may point to.
	memPts []locset
}

// locset is a small sorted set of Locs.
type locset map[Loc]bool

func (s locset) addAll(o locset) bool {
	changed := false
	for l := range o {
		if !s[l] {
			s[l] = true
			changed = true
		}
	}
	return changed
}

// Analyze runs the points-to analysis to fixpoint.
func Analyze(prog *ir.Program) *Analysis {
	a := &Analysis{
		prog:      prog,
		globals:   prog.Globals,
		heapIndex: make(map[int]int),
		regPts:    make(map[string][]locset),
	}
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.NewObj {
					a.heapIndex[in.ID] = len(a.heapSites)
					a.heapSites = append(a.heapSites, in.ID)
				}
			}
		}
	}
	a.numLocs = len(a.globals) + len(a.heapSites) + 1
	a.stackLoc = Loc(a.numLocs - 1)
	a.memPts = make([]locset, a.numLocs)
	for i := range a.memPts {
		a.memPts[i] = make(locset)
	}
	for _, f := range prog.Funcs {
		regs := make([]locset, f.NumRegs)
		for i := range regs {
			regs[i] = make(locset)
		}
		a.regPts[f.Name] = regs
	}
	a.solve()
	return a
}

// globalLoc returns the abstract location of a named global.
func (a *Analysis) globalLoc(name string) Loc {
	for i, g := range a.globals {
		if g.Name == name {
			return Loc(i)
		}
	}
	return a.stackLoc // unreachable for verified programs
}

// heapLoc returns the abstract location of an allocation site.
func (a *Analysis) heapLoc(instrID int) Loc {
	return Loc(len(a.globals) + a.heapIndex[instrID])
}

// LocString names a location for reports.
func (a *Analysis) LocString(l Loc) string {
	switch {
	case int(l) < len(a.globals):
		return a.globals[l].Name
	case l == a.stackLoc:
		return "<stack>"
	default:
		return fmt.Sprintf("heap@%d", a.heapSites[int(l)-len(a.globals)])
	}
}

// solve iterates inclusion constraints to fixpoint.
func (a *Analysis) solve() {
	for changed := true; changed; {
		changed = false
		for _, f := range a.prog.Funcs {
			regs := a.regPts[f.Name]
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if a.apply(f, regs, in) {
						changed = true
					}
				}
			}
		}
	}
}

func (a *Analysis) apply(f *ir.Func, regs []locset, in *ir.Instr) bool {
	changed := false
	switch in.Op {
	case ir.AddrGlobal:
		l := a.globalLoc(in.Sym)
		if !regs[in.Dst][l] {
			regs[in.Dst][l] = true
			changed = true
		}
	case ir.AddrLocal:
		if !regs[in.Dst][a.stackLoc] {
			regs[in.Dst][a.stackLoc] = true
			changed = true
		}
	case ir.NewObj:
		l := a.heapLoc(in.ID)
		if !regs[in.Dst][l] {
			regs[in.Dst][l] = true
			changed = true
		}
	case ir.Mov, ir.Neg, ir.Not:
		if in.A != ir.None && in.HasDst() {
			changed = regs[in.Dst].addAll(regs[in.A])
		}
	case ir.Bin:
		// Pointer arithmetic (field offsets, indexing) preserves the
		// pointed-to object under field-insensitive analysis; arithmetic
		// on non-pointers adds nothing (empty sets).
		if regs[in.Dst].addAll(regs[in.A]) {
			changed = true
		}
		if regs[in.Dst].addAll(regs[in.B]) {
			changed = true
		}
	case ir.Load, ir.LoadSync:
		//lint:ignore D001 points-to set union is commutative and the changed flag is monotone
		for l := range regs[in.A] {
			if regs[in.Dst].addAll(a.memPts[l]) {
				changed = true
			}
		}
	case ir.Store:
		//lint:ignore D001 points-to set union is commutative and the changed flag is monotone
		for l := range regs[in.A] {
			if a.memPts[l].addAll(regs[in.B]) {
				changed = true
			}
		}
	case ir.SelectFwd:
		if regs[in.Dst].addAll(regs[in.A]) {
			changed = true
		}
		if regs[in.Dst].addAll(regs[in.B]) {
			changed = true
		}
	case ir.WaitMemVal, ir.WaitMemAddr:
		// Forwarded values may be any pointer the corresponding signals
		// carry; conservatively, anything stored anywhere. Approximate by
		// the union of all memory points-to sets only when signals exist;
		// keep simple and sound: forwarded ADDRESSES mirror checked
		// addresses, and forwarded VALUES are selected against memory
		// loads via SelectFwd, so both flows are already covered by the
		// Load/Store constraints of the untransformed accesses. Treat as
		// no-op.
	case ir.Call:
		callee := a.prog.FuncMap[in.Sym]
		if callee == nil {
			break
		}
		calleeRegs := a.regPts[callee.Name]
		for i, arg := range in.Args {
			if i < callee.NParams {
				if calleeRegs[ir.Reg(i)].addAll(regs[arg]) {
					changed = true
				}
			}
		}
		// Return flow: any Ret operand in the callee feeds our Dst.
		if in.Dst != ir.None {
			for _, cb := range callee.Blocks {
				for _, cin := range cb.Instrs {
					if cin.Op == ir.Ret && cin.A != ir.None {
						if regs[in.Dst].addAll(calleeRegs[cin.A]) {
							changed = true
						}
					}
				}
			}
		}
	}
	return changed
}

// PointsTo returns the sorted locations register r of function fn may
// point to.
func (a *Analysis) PointsTo(fn string, r ir.Reg) []Loc {
	regs, ok := a.regPts[fn]
	if !ok || int(r) >= len(regs) {
		return nil
	}
	out := make([]Loc, 0, len(regs[r]))
	for l := range regs[r] {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MayAlias reports whether two address registers may reference the same
// abstract location.
func (a *Analysis) MayAlias(fnA string, ra ir.Reg, fnB string, rb ir.Reg) bool {
	sa, sb := a.regPts[fnA], a.regPts[fnB]
	if sa == nil || sb == nil {
		return true // unknown function: be conservative
	}
	for l := range sa[ra] {
		if sb[rb][l] {
			return true
		}
	}
	return false
}

// AccessSite is a static memory access with its may-point-to set.
type AccessSite struct {
	Func    string
	Instr   *ir.Instr
	IsStore bool
	Locs    []Loc
}

// MemoryAccesses returns every load/store in the program with its
// resolved location set.
func (a *Analysis) MemoryAccesses() []AccessSite {
	var out []AccessSite
	for _, f := range a.prog.Funcs {
		regs := a.regPts[f.Name]
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				var isStore bool
				switch in.Op {
				case ir.Load, ir.LoadSync:
					isStore = false
				case ir.Store:
					isStore = true
				default:
					continue
				}
				var locs []Loc
				for l := range regs[in.A] {
					locs = append(locs, l)
				}
				sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
				out = append(out, AccessSite{Func: f.Name, Instr: in, IsStore: isStore, Locs: locs})
			}
		}
	}
	return out
}

// DepPair is a statically-possible store→load dependence (by instruction
// ID), with the locations they may share.
type DepPair struct {
	Store, Load int
	Shared      []Loc
}

// MayDeps returns every (store, load) pair whose location sets intersect,
// excluding pairs that can only meet on the stack summary (per-epoch
// stacks are private, matching the profiler's exclusion). This is the
// paper's "may-alias would synchronize all of these" set.
func (a *Analysis) MayDeps() []DepPair {
	accesses := a.MemoryAccesses()
	var stores, loads []AccessSite
	for _, s := range accesses {
		if s.IsStore {
			stores = append(stores, s)
		} else {
			loads = append(loads, s)
		}
	}
	var out []DepPair
	for _, st := range stores {
		stSet := make(locset, len(st.Locs))
		for _, l := range st.Locs {
			if l != a.stackLoc {
				stSet[l] = true
			}
		}
		if len(stSet) == 0 {
			continue
		}
		for _, ld := range loads {
			var shared []Loc
			for _, l := range ld.Locs {
				if stSet[l] {
					shared = append(shared, l)
				}
			}
			if len(shared) > 0 {
				out = append(out, DepPair{Store: st.Instr.ID, Load: ld.Instr.ID, Shared: shared})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Store != out[j].Store {
			return out[i].Store < out[j].Store
		}
		return out[i].Load < out[j].Load
	})
	return out
}

// MayDepSet returns MayDeps as a membership set keyed by
// (store instruction ID, load instruction ID).
func (a *Analysis) MayDepSet() map[[2]int]bool {
	out := make(map[[2]int]bool)
	for _, d := range a.MayDeps() {
		out[[2]int{d.Store, d.Load}] = true
	}
	return out
}
