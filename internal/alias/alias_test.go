package alias

import (
	"testing"

	"tlssync/internal/interp"
	"tlssync/internal/ir"
	"tlssync/internal/lang"
	"tlssync/internal/lower"
	"tlssync/internal/profile"
	"tlssync/internal/progen"
	"tlssync/internal/regions"
)

func compile(t testing.TB, src string) *ir.Program {
	t.Helper()
	c, err := lang.Check(lang.MustParse(src))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := lower.Lower(c)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func TestGlobalsDistinct(t *testing.T) {
	p := compile(t, `
var a int;
var b int;
func main() {
	a = 1;
	b = a + 1;
	print(b);
}`)
	an := Analyze(p)
	// Find the AddrGlobal registers for a and b.
	var ra, rb ir.Reg = ir.None, ir.None
	main := p.FuncMap["main"]
	for _, blk := range main.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.AddrGlobal && in.Sym == "a" && ra == ir.None {
				ra = in.Dst
			}
			if in.Op == ir.AddrGlobal && in.Sym == "b" && rb == ir.None {
				rb = in.Dst
			}
		}
	}
	if ra == ir.None || rb == ir.None {
		t.Fatal("address registers not found")
	}
	if an.MayAlias("main", ra, "main", rb) {
		t.Error("distinct globals reported aliasing")
	}
	if !an.MayAlias("main", ra, "main", ra) {
		t.Error("register does not alias itself")
	}
}

func TestPointerFlowThroughGlobal(t *testing.T) {
	// free_list holds heap pointers; loading it must yield the heap site.
	p := compile(t, `
type Elem struct { next *Elem; val int; }
var head *Elem;
func main() {
	var e *Elem = new(Elem);
	head = e;
	var q *Elem = head;
	q->val = 3;
	print(q->val);
}`)
	an := Analyze(p)
	// The store via q->val must point to the allocation site, not a
	// global.
	found := false
	for _, acc := range an.MemoryAccesses() {
		if !acc.IsStore {
			continue
		}
		for _, l := range acc.Locs {
			if an.LocString(l)[:4] == "heap" {
				found = true
			}
		}
	}
	if !found {
		t.Error("no store resolved to a heap site")
	}
}

func TestInterproceduralFlow(t *testing.T) {
	// The pointer passed to bump() must carry its points-to set across
	// the call, and the return value must flow back.
	p := compile(t, `
var g int;
func pick(which int) *int {
	return &g;
}
func main() {
	var p *int = pick(1);
	*p = 42;
	print(*p);
}`)
	an := Analyze(p)
	gLoc := an.globalLoc("g")
	// The store *p = 42 must include g.
	ok := false
	for _, acc := range an.MemoryAccesses() {
		if acc.IsStore && acc.Func == "main" {
			for _, l := range acc.Locs {
				if l == gLoc {
					ok = true
				}
			}
		}
	}
	if !ok {
		t.Error("return-value pointer flow lost")
	}
}

func TestMayDepsExcludeStackOnly(t *testing.T) {
	p := compile(t, `
func bump(p *int) { *p = *p + 1; }
func main() {
	var x int = 1;
	bump(&x);
	print(x);
}`)
	an := Analyze(p)
	if deps := an.MayDeps(); len(deps) != 0 {
		t.Errorf("stack-only program has %d static deps", len(deps))
	}
}

func TestMayDepsFindGlobalPair(t *testing.T) {
	p := compile(t, `
var g int;
var other int;
func main() {
	var i int;
	parallel for i = 0; i < 10; i = i + 1 {
		g = g + 1;
		other = other + 2;
	}
	print(g + other);
}`)
	an := Analyze(p)
	deps := an.MayDeps()
	if len(deps) == 0 {
		t.Fatal("no static dependences found")
	}
	// g's store must pair with g's load but never with other's load.
	gLoc := an.globalLoc("g")
	oLoc := an.globalLoc("other")
	for _, d := range deps {
		for _, l := range d.Shared {
			if l != gLoc && l != oLoc {
				t.Errorf("unexpected shared loc %s", an.LocString(l))
			}
		}
		if len(d.Shared) != 1 {
			t.Errorf("pair %v shares %d locs, want 1 (field-insensitive globals are distinct)",
				d, len(d.Shared))
		}
	}
}

// TestProfiledDepsAreStaticallyPossible is the soundness cross-check: on
// random programs, every dependence the dynamic profiler observes must be
// within the static may-alias relation.
func TestProfiledDepsAreStaticallyPossible(t *testing.T) {
	for seed := uint64(60); seed <= 75; seed++ {
		src := progen.Generate(seed, progen.DefaultConfig())
		p := compile(t, src)
		an := Analyze(p)
		static := an.MayDepSet()

		regs := regions.Regions(p, nil)
		tr, err := interp.Run(p, interp.Options{Regions: regs, Seed: seed, Input: []int64{int64(seed)}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prof := profile.Analyze(tr)
		for _, rp := range prof.Regions {
			for k := range rp.Deps {
				key := [2]int{k.Store.Instr, k.Load.Instr}
				if !static[key] {
					t.Errorf("seed %d: profiled dep %v -> %v not statically possible",
						seed, k.Store, k.Load)
				}
			}
		}
	}
}

// TestProfilingIsTighterThanStatic quantifies the paper's motivation:
// the static may-dependence set is much larger than the dynamically
// frequent set, so synchronizing all may-aliases would over-synchronize.
func TestProfilingIsTighterThanStatic(t *testing.T) {
	src := progen.Generate(99, progen.DefaultConfig())
	p := compile(t, src)
	an := Analyze(p)
	staticN := len(an.MayDeps())

	regs := regions.Regions(p, nil)
	tr, err := interp.Run(p, interp.Options{Regions: regs, Seed: 99, Input: []int64{9}})
	if err != nil {
		t.Fatal(err)
	}
	prof := profile.Analyze(tr)
	frequent := 0
	for _, rp := range prof.Regions {
		frequent += len(rp.FrequentDeps(0.05, false))
	}
	if staticN == 0 {
		t.Fatal("no static dependences at all")
	}
	if frequent >= staticN {
		t.Errorf("frequent deps (%d) should be far fewer than static may-deps (%d)",
			frequent, staticN)
	}
}

func TestLocString(t *testing.T) {
	p := compile(t, `
var g int;
func main() {
	var p *int = new(int);
	*p = 1;
	print(g);
}`)
	an := Analyze(p)
	if an.LocString(an.globalLoc("g")) != "g" {
		t.Error("global name lost")
	}
	if an.LocString(an.stackLoc) != "<stack>" {
		t.Error("stack summary name lost")
	}
}
