package journal_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tlssync/internal/fault"
	"tlssync/internal/journal"
	"tlssync/internal/store"
)

func rec(key, bench, label string) journal.Record {
	return journal.Record{Key: key, Kind: "simulate", Bench: bench, Label: label}
}

// openT opens a journal under dir, failing the test on error.
func openT(t *testing.T, dir string, fsys store.FS) *journal.Journal {
	t.Helper()
	j, err := journal.Open(dir, fsys)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func walPath(dir string) string { return filepath.Join(dir, "wal") }

func TestBeginCommitLifecycle(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, nil)

	if got := j.Begin(rec("simulate/a/C", "a", "C")); got != 1 {
		t.Fatalf("first begin attempt = %d, want 1", got)
	}
	// A coalesced second begin from the same process does not re-append.
	if got := j.Begin(rec("simulate/a/C", "a", "C")); got != 1 {
		t.Fatalf("coalesced begin attempt = %d, want 1", got)
	}
	j.Begin(rec("simulate/b/U", "b", "U"))
	j.Commit("simulate/a/C")
	j.Commit("simulate/never-begun") // no-op

	st := j.Stats()
	if st.Pending != 1 || st.Appends != 3 {
		t.Fatalf("stats = %+v, want pending=1 appends=3", st)
	}

	// A fresh process over the same file sees exactly the uncommitted job.
	j.Close()
	j2 := openT(t, dir, nil)
	pend := j2.Pending()
	if len(pend) != 1 || pend[0].Key != "simulate/b/U" || pend[0].Attempts != 1 {
		t.Fatalf("replayed pending = %+v", pend)
	}
	if pend[0].Bench != "b" || pend[0].Label != "U" || pend[0].Kind != "simulate" {
		t.Fatalf("replayed record lost its SimSpec coordinates: %+v", pend[0].Record)
	}
}

// TestRecoveryBeginAdvancesAttempts: a pending job inherited from a
// previous process IS re-appended by Begin — that is the crash-loop
// counter — and the count survives compaction (every Open compacts).
func TestRecoveryBeginAdvancesAttempts(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, nil)
	j.Begin(rec("simulate/a/C", "a", "C"))
	j.Close()

	for want := 2; want <= 4; want++ {
		j, err := journal.Open(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := j.Begin(rec("simulate/a/C", "a", "C")); got != want {
			t.Fatalf("restart %d: attempt = %d, want %d", want-1, got, want)
		}
		j.Close()
	}
}

func TestPoisonQuarantinesAndBeginSupersedes(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, nil)
	j.Begin(rec("simulate/a/C", "a", "C"))
	j.Poison("simulate/a/C")
	if st := j.Stats(); st.Pending != 0 || st.Poisoned != 1 {
		t.Fatalf("stats after poison = %+v", st)
	}
	j.Close()

	// Poison survives restart.
	j2 := openT(t, dir, nil)
	poisoned := j2.Poisoned()
	if len(poisoned) != 1 || poisoned[0].Key != "simulate/a/C" {
		t.Fatalf("replayed poisoned = %+v", poisoned)
	}
	// A fresh begin supersedes the quarantine and restarts the cycle.
	if got := j2.Begin(rec("simulate/a/C", "a", "C")); got != 1 {
		t.Fatalf("begin after poison attempt = %d, want 1 (fresh cycle)", got)
	}
	if st := j2.Stats(); st.Poisoned != 0 || st.Pending != 1 {
		t.Fatalf("stats after superseding begin = %+v", st)
	}
}

// TestTornTailEveryOffset is the torn-tail table test: a valid journal
// truncated at EVERY byte offset must replay to exactly the records
// wholly contained in the prefix, drop the tail, and never error.
func TestTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, nil)
	keys := []string{"simulate/a/C", "simulate/b/U", "simulate/c/T"}
	j.Begin(rec(keys[0], "a", "C"))
	j.Begin(rec(keys[1], "b", "U"))
	j.Commit(keys[0])
	j.Begin(rec(keys[2], "c", "T"))
	j.Close()

	data, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries = indexes just past each newline.
	boundaries := map[int]int{0: 0} // offset -> whole records before it
	n := 0
	for i, b := range data {
		if b == '\n' {
			n++
			boundaries[i+1] = n
		}
	}
	full, _, err := journal.ReplayFile(nil, walPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	tdir := t.TempDir()
	tpath := filepath.Join(tdir, "wal")
	for off := 0; off <= len(data); off++ {
		if err := os.WriteFile(tpath, data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		st, info, err := journal.ReplayFile(nil, tpath)
		if err != nil {
			t.Fatalf("offset %d: replay error: %v", off, err)
		}
		wantRecs, atBoundary := boundaries[off]
		if !atBoundary {
			// Mid-record: the torn tail must be detected and dropped.
			if !info.TornTail {
				t.Fatalf("offset %d: torn tail not detected", off)
			}
			// Records fully before the cut are preserved.
			prev := 0
			for b, cnt := range boundaries {
				if b <= off && cnt > prev {
					prev = cnt
				}
			}
			wantRecs = prev
		} else if info.TornTail {
			t.Fatalf("offset %d: clean boundary reported torn", off)
		}
		if info.Records != wantRecs {
			t.Fatalf("offset %d: replayed %d records, want %d", off, info.Records, wantRecs)
		}
		if off == len(data) && !reflect.DeepEqual(st, full) {
			t.Fatalf("full replay mismatch: %+v vs %+v", st, full)
		}
	}
}

// TestReplayIdempotent: replaying the same bytes twice yields
// deep-equal state — the property the crash harness relies on before
// trusting recovery (double replay == single replay).
func TestReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir, nil)
	j.Begin(rec("simulate/a/C", "a", "C"))
	j.Begin(rec("simulate/b/U", "b", "U"))
	j.Commit("simulate/b/U")
	j.Begin(rec("simulate/p/T", "p", "T"))
	j.Poison("simulate/p/T")
	j.Close()

	s1, i1, err := journal.ReplayFile(nil, walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	s2, i2, err := journal.ReplayFile(nil, walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) || i1 != i2 {
		t.Fatalf("replay not idempotent:\n  %+v %+v\n  %+v %+v", s1, i1, s2, i2)
	}
}

// TestTornAppendViaFaultCrash wires the torn-tail model to the shared
// fault.Crash hook: a crash fault firing mid-append leaves a half-
// written record on disk (the same shape the kill-9 harness produces
// with a real SIGKILL), and the next open truncates it back to the
// last whole record without error.
func TestTornAppendViaFaultCrash(t *testing.T) {
	dir := t.TempDir()
	reg := fault.NewRegistry()
	ffs := &fault.FS{R: reg}
	j := openT(t, dir, ffs)
	j.Begin(rec("simulate/ok/C", "ok", "C"))

	before, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	reg.Arm("fs.write", fault.Fault{Crash: true, Times: 1})
	j.Begin(rec("simulate/torn/U", "torn", "U")) // append tears mid-write
	if st := j.Stats(); st.AppendErrors != 1 {
		t.Fatalf("torn append not counted: %+v", st)
	}
	after, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) <= len(before) {
		t.Fatalf("crash fault left no partial bytes: before=%d after=%d", len(before), len(after))
	}

	// The "next process": replay keeps the whole record, drops the tear.
	st, info, err := journal.ReplayFile(nil, walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !info.TornTail || info.Records != 1 {
		t.Fatalf("replay of torn file: info=%+v", info)
	}
	if _, ok := st.Pending["simulate/ok/C"]; !ok || len(st.Pending) != 1 {
		t.Fatalf("pending after torn replay = %+v", st.Pending)
	}

	// And Open erases the tear from disk (compaction), counting it.
	j2 := openT(t, dir, nil)
	if st := j2.Stats(); st.TornTails != 1 || st.Pending != 1 {
		t.Fatalf("open over torn file: %+v", st)
	}
	clean, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(clean, after[len(before):]) && len(after[len(before):]) > 0 {
		t.Fatal("compaction kept the torn bytes")
	}
}

// TestCompactionPrunesAndPreservesAttempts: rotation rewrites the log
// to live records only, and the crash-loop attempt counts ride along.
func TestCompactionPrunesAndPreservesAttempts(t *testing.T) {
	dir := t.TempDir()

	// Three crash cycles for one key, plus churn that should vanish.
	for i := 0; i < 3; i++ {
		j := openT(t, dir, nil)
		j.Begin(rec("simulate/loop/C", "loop", "C"))
		j.Begin(rec("simulate/churn/U", "churn", "U"))
		j.Commit("simulate/churn/U")
		j.Close()
	}

	j := openT(t, dir, nil)
	pend := j.Pending()
	if len(pend) != 1 || pend[0].Attempts != 3 {
		t.Fatalf("pending after 3 cycles = %+v, want loop/C with attempts=3", pend)
	}
	// The compacted file holds exactly one record.
	_, info, err := journal.ReplayFile(nil, walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 1 {
		t.Fatalf("compacted journal holds %d records, want 1", info.Records)
	}
}

// TestAppendFailureDegradesNotFails: a dead disk under the journal
// costs durability, not service — appends are counted as errors and
// the in-memory state keeps answering.
func TestAppendFailureDegradesNotFails(t *testing.T) {
	dir := t.TempDir()
	reg := fault.NewRegistry()
	j := openT(t, dir, &fault.FS{R: reg})
	reg.Arm("fs.write", fault.Fault{Err: os.ErrPermission})
	j.Begin(rec("simulate/a/C", "a", "C"))
	st := j.Stats()
	if st.AppendErrors != 1 || st.Pending != 1 {
		t.Fatalf("stats = %+v, want append_errors=1 pending=1 (state stays authoritative)", st)
	}
}
