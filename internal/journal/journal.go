// Package journal is the daemon's write-ahead log of job intents: the
// durable half of the crash-only story. Before tlsd runs an expensive,
// artifact-producing job it appends a begin record (engine key plus the
// SimSpec coordinates needed to rebuild the job); when the job's
// artifact is safely in the store it appends a commit. A process that
// is SIGKILLed, OOM-ed, or power-cut mid-job therefore leaves a begin
// without a commit, and the next process replays the log, finds the
// orphan, and re-enqueues the work — the client's retry converges to a
// warm or recovered hit instead of silently losing the computation.
//
// The log is append-only, one checksummed record per line, fsynced per
// append. Replay is a pure function of the file's bytes and stops at
// the first record that fails its frame or checksum: a torn tail (the
// signature a crash mid-append leaves) truncates cleanly back to the
// last whole record, never poisons the records before it, and is never
// an error. Committed pairs are pruned by compaction, which runs at
// every open (also erasing the torn tail from disk) and again whenever
// the live log outgrows a size threshold.
//
// Replay also counts how many times each pending job has been begun
// without ever committing. That count is the crash-loop breaker: a job
// whose recovery keeps killing the process is re-begun once per
// restart, so its attempt count climbs until the daemon marks it
// poisoned — quarantined in the log, reported in /readyz, its key
// pre-opened in the breaker set — instead of taking the whole service
// down on every boot. This mirrors the paper's stance that speculation
// must be verified and recovered, never trusted blindly (PAPER.md §5):
// here the "speculation" is that a journaled job will finish, and
// replay is the verify-and-recover pass.
package journal

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tlssync/internal/store"
)

// Record operations.
const (
	OpBegin  = "begin"  // a job is about to run
	OpCommit = "commit" // the job's artifact is durably stored (or it failed cleanly)
	OpPoison = "poison" // the job crashed the process too many times; quarantined
)

// Record is one journal entry. Begin records carry enough of the
// SimSpec to rebuild the job after a restart: the engine coalescing
// key plus the (kind, bench, label) coordinates.
type Record struct {
	Op    string `json:"op"`
	Key   string `json:"key"`             // engine coalescing key
	Kind  string `json:"kind,omitempty"`  // job family, e.g. "simulate"
	Bench string `json:"bench,omitempty"` // workload name
	Label string `json:"label,omitempty"` // policy label
	// Attempt is the cumulative begin count for the key as of this
	// record (1 for a first begin). Compaction preserves the count by
	// writing a single begin stamped with it, so crash-loop accounting
	// survives log rewrites.
	Attempt int   `json:"attempt,omitempty"`
	Unix    int64 `json:"unix,omitempty"` // append time, seconds since epoch
}

// Pending is an incomplete job reconstructed by replay: its latest
// begin record plus how many times it has been begun without a commit.
type Pending struct {
	Record
	Attempts int // begin records since the last commit
}

// State is the replayed content of a journal: jobs still in flight when
// the previous process died, and jobs quarantined as poisoned.
type State struct {
	Pending  map[string]*Pending
	Poisoned map[string]Record
}

func newState() *State {
	return &State{Pending: make(map[string]*Pending), Poisoned: make(map[string]Record)}
}

// apply folds one record into the state. Replay and the live journal
// share it, so "double replay == single replay" holds by construction:
// the fold is deterministic in the record sequence.
func (st *State) apply(r Record) {
	switch r.Op {
	case OpBegin:
		p := st.Pending[r.Key]
		if p == nil {
			p = &Pending{}
			st.Pending[r.Key] = p
		}
		if r.Attempt > 0 {
			p.Attempts = r.Attempt
		} else {
			p.Attempts++
		}
		p.Record = r
		// A fresh intent supersedes an old quarantine: the operator (or a
		// half-open breaker probe) decided to try the key again.
		delete(st.Poisoned, r.Key)
	case OpCommit:
		delete(st.Pending, r.Key) // commit for an unknown key: no-op
	case OpPoison:
		delete(st.Pending, r.Key)
		st.Poisoned[r.Key] = r
	}
}

// Info reports what replay found.
type Info struct {
	Records    int   // whole records replayed
	TornTail   bool  // the file ended in a partial/corrupt record
	ValidBytes int64 // length of the valid prefix
}

// frameMagic heads every record line; bump on format change.
const frameMagic = "tlsj1"

// castagnoli is the CRC-32C table used for record checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frame renders one record line:
//
//	tlsj1 <crc32c-hex> <payload-len> <payload-json>\n
//
// The length is checked before the checksum so a truncated payload can
// never masquerade as a shorter valid one, and the trailing newline is
// required so a torn append (no newline yet) is always detected.
func frame(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf("%s %08x %d %s\n",
		frameMagic, crc32.Checksum(payload, castagnoli), len(payload), payload)), nil
}

// parseLine decodes one framed line (including its trailing newline).
// Any mismatch — bad magic, bad length, bad checksum, missing newline —
// returns an error, which replay interprets as the torn tail.
func parseLine(line string) (Record, error) {
	var r Record
	if !strings.HasSuffix(line, "\n") {
		return r, errors.New("journal: unterminated record")
	}
	rest, ok := strings.CutPrefix(line, frameMagic+" ")
	if !ok {
		return r, errors.New("journal: bad magic")
	}
	crcHex, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return r, errors.New("journal: missing checksum")
	}
	lenStr, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return r, errors.New("journal: missing length")
	}
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil {
		return r, fmt.Errorf("journal: bad checksum field: %w", err)
	}
	n, err := strconv.Atoi(lenStr)
	if err != nil || n < 0 {
		return r, fmt.Errorf("journal: bad length field: %v", err)
	}
	payload := strings.TrimSuffix(rest, "\n")
	if len(payload) != n {
		return r, fmt.Errorf("journal: length mismatch: header %d, payload %d", n, len(payload))
	}
	if crc32.Checksum([]byte(payload), castagnoli) != uint32(want) {
		return r, errors.New("journal: checksum mismatch")
	}
	if err := json.Unmarshal([]byte(payload), &r); err != nil {
		return r, fmt.Errorf("journal: bad payload: %w", err)
	}
	return r, nil
}

// Replay folds every whole record of rd into a fresh State, stopping at
// the first torn or corrupt record. The tail after that point is
// dropped and reported via Info, never as an error: a torn tail is the
// expected signature of a crash mid-append, not an operator problem.
func Replay(rd io.Reader) (*State, Info, error) {
	st := newState()
	var info Info
	br := bufio.NewReader(rd)
	for {
		line, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return st, info, fmt.Errorf("journal: read: %w", err)
		}
		if line != "" {
			rec, perr := parseLine(line)
			if perr != nil {
				info.TornTail = true
				return st, info, nil
			}
			st.apply(rec)
			info.Records++
			info.ValidBytes += int64(len(line))
		}
		if err == io.EOF {
			return st, info, nil
		}
	}
}

// ReplayFile replays the journal at path through fsys. A missing file
// is an empty journal. Replay is pure: calling it twice on the same
// file yields identical state (the idempotence the crash harness
// asserts before trusting recovery).
func ReplayFile(fsys store.FS, path string) (*State, Info, error) {
	if fsys == nil {
		fsys = store.OS
	}
	f, err := fsys.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return newState(), Info{}, nil
		}
		return nil, Info{}, err
	}
	defer f.Close()
	return Replay(f)
}

// Stats is a snapshot of the journal's counters for /stats and /readyz.
type Stats struct {
	Path         string `json:"path"`
	Pending      int    `json:"pending"`       // begun, not yet committed
	Poisoned     int    `json:"poisoned"`      // quarantined crash-loopers
	Replayed     int    `json:"replayed"`      // records recovered at open
	TornTails    int64  `json:"torn_tails"`    // corrupt tails truncated at open
	Appends      int64  `json:"appends"`       // records written by this process
	AppendErrors int64  `json:"append_errors"` // appends that failed (journal degraded)
	Compactions  int64  `json:"compactions"`   // log rewrites (open + rotation)
	SizeBytes    int64  `json:"size_bytes"`    // current log size
}

// DefaultRotateBytes is the log size that triggers compaction.
const DefaultRotateBytes = 1 << 20

// Journal is the live write-ahead log. All methods are safe for
// concurrent use. Append failures degrade durability, not service:
// they are counted and the in-memory state stays authoritative for the
// life of the process.
type Journal struct {
	mu       sync.Mutex
	fs       store.FS
	dir      string
	path     string
	f        store.File
	size     int64
	rotateAt int64
	st       *State
	begun    map[string]bool // keys begun by THIS process (dedupe across coalesced callers)
	stats    Stats
	now      func() time.Time // test seam
}

// walName is the journal file's name inside its directory.
const walName = "wal"

// Open replays the journal under dir (created if missing), truncates
// any torn tail by compacting the valid prefix back to disk, and
// returns the live journal positioned for appends. Leftover compaction
// temp files from a crashed predecessor are removed.
func Open(dir string, fsys store.FS) (*Journal, error) {
	if fsys == nil {
		fsys = store.OS
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: dir: %w", err)
	}
	j := &Journal{
		fs:       fsys,
		dir:      dir,
		path:     filepath.Join(dir, walName),
		rotateAt: DefaultRotateBytes,
		begun:    make(map[string]bool),
		now:      time.Now,
	}
	// Crash residue: a predecessor may have died between writing a
	// compaction temp and renaming it into place.
	if entries, err := fsys.ReadDir(dir); err == nil {
		for _, e := range entries {
			if name := e.Name(); name != walName && strings.HasPrefix(name, ".wal") {
				fsys.Remove(filepath.Join(dir, name))
			}
		}
	}
	st, info, err := ReplayFile(fsys, j.path)
	if err != nil {
		return nil, fmt.Errorf("journal: replay: %w", err)
	}
	j.st = st
	j.stats.Replayed = info.Records
	if info.TornTail {
		j.stats.TornTails++
	}
	// Compact unconditionally: prunes committed pairs and rewrites the
	// valid prefix, which is also how a torn tail is erased from disk.
	if err := j.compactLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// Begin journals the intent to run the job described by rec (Op is set
// for the caller) and returns the key's cumulative attempt count. A key
// already begun by this process is not re-appended — coalesced callers
// share one intent — but a pending entry inherited from a previous
// process IS re-begun, which is exactly what advances the crash-loop
// counter once per restart.
func (j *Journal) Begin(rec Record) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if p := j.st.Pending[rec.Key]; p != nil && j.begun[rec.Key] {
		return p.Attempts
	}
	rec.Op = OpBegin
	rec.Attempt = 1
	if p := j.st.Pending[rec.Key]; p != nil {
		rec.Attempt = p.Attempts + 1
	}
	rec.Unix = j.now().Unix()
	j.appendLocked(rec)
	j.begun[rec.Key] = true
	return rec.Attempt
}

// Commit journals that the job under key completed (its artifact is
// durably stored, or it failed cleanly in-process — either way it is
// not crash-recovery work). Committing a key with no pending intent is
// a no-op.
func (j *Journal) Commit(key string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.st.Pending[key]; !ok {
		return
	}
	j.appendLocked(Record{Op: OpCommit, Key: key, Unix: j.now().Unix()})
}

// Poison quarantines the pending job under key: it stops being recovery
// work and is reported via Poisoned until a future begin supersedes it.
func (j *Journal) Poison(key string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	p, ok := j.st.Pending[key]
	if !ok {
		return
	}
	rec := p.Record
	rec.Op = OpPoison
	rec.Attempt = p.Attempts
	rec.Unix = j.now().Unix()
	j.appendLocked(rec)
}

// appendLocked folds rec into the state and writes it to the log with
// an fsync. Write failures are counted, not returned: the in-memory
// state stays correct and the service keeps running with degraded
// durability (surfaced via AppendErrors in /stats and /readyz).
func (j *Journal) appendLocked(rec Record) {
	j.st.apply(rec)
	line, err := frame(rec)
	if err != nil {
		j.stats.AppendErrors++
		return
	}
	if j.f == nil {
		f, err := j.fs.OpenAppend(j.path)
		if err != nil {
			j.stats.AppendErrors++
			return
		}
		j.f = f
	}
	if _, err := j.f.Write(line); err != nil {
		j.stats.AppendErrors++
		return
	}
	if err := j.f.Sync(); err != nil {
		j.stats.AppendErrors++
		return
	}
	j.stats.Appends++
	j.size += int64(len(line))
	if j.size > j.rotateAt {
		if err := j.compactLocked(); err != nil {
			j.stats.AppendErrors++
		}
	}
}

// compactLocked rewrites the log to just the live records — one begin
// per pending key (stamped with its cumulative attempt count) and one
// poison per quarantined key — using the store's durable-write protocol
// (temp + fsync + rename + dir fsync), then reopens the append handle.
func (j *Journal) compactLocked() error {
	var buf []byte
	for _, key := range sortedKeys(j.st.Pending) {
		p := j.st.Pending[key]
		rec := p.Record
		rec.Op = OpBegin
		rec.Attempt = p.Attempts
		line, err := frame(rec)
		if err != nil {
			return fmt.Errorf("journal: compact: %w", err)
		}
		buf = append(buf, line...)
	}
	for _, key := range sortedKeys(j.st.Poisoned) {
		rec := j.st.Poisoned[key]
		rec.Op = OpPoison
		line, err := frame(rec)
		if err != nil {
			return fmt.Errorf("journal: compact: %w", err)
		}
		buf = append(buf, line...)
	}
	tmp, err := j.fs.CreateTemp(j.dir, ".wal*")
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	cleanup := func(err error) error {
		tmp.Close()
		j.fs.Remove(tmp.Name())
		return fmt.Errorf("journal: compact: %w", err)
	}
	if len(buf) > 0 {
		if _, err := tmp.Write(buf); err != nil {
			return cleanup(err)
		}
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		j.fs.Remove(tmp.Name())
		return fmt.Errorf("journal: compact: %w", err)
	}
	// Close the old handle before the rename replaces the file, so no
	// appends land on the unlinked inode.
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	if err := j.fs.Rename(tmp.Name(), j.path); err != nil {
		j.fs.Remove(tmp.Name())
		return fmt.Errorf("journal: compact: %w", err)
	}
	if d, err := j.fs.Open(j.dir); err == nil {
		d.Sync()
		d.Close()
	}
	f, err := j.fs.OpenAppend(j.path)
	if err != nil {
		return fmt.Errorf("journal: compact: reopen: %w", err)
	}
	j.f = f
	j.size = int64(len(buf))
	j.stats.Compactions++
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Pending returns the incomplete jobs, sorted by key.
func (j *Journal) Pending() []Pending {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Pending, 0, len(j.st.Pending))
	for _, key := range sortedKeys(j.st.Pending) {
		out = append(out, *j.st.Pending[key])
	}
	return out
}

// Poisoned returns the quarantined records, sorted by key.
func (j *Journal) Poisoned() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, 0, len(j.st.Poisoned))
	for _, key := range sortedKeys(j.st.Poisoned) {
		out = append(out, j.st.Poisoned[key])
	}
	return out
}

// Stats returns a snapshot of the counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.stats
	st.Path = j.path
	st.Pending = len(j.st.Pending)
	st.Poisoned = len(j.st.Poisoned)
	st.SizeBytes = j.size
	return st
}

// Close releases the append handle. The journal is crash-only — Close
// exists for tests; production exits via SIGKILL and replay.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
