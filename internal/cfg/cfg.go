// Package cfg provides control-flow analyses over the IR: reverse
// postorder, dominator trees, and natural-loop detection. Region selection
// and the TLS passes use loops; the interpreter uses loop membership to
// delimit epochs.
package cfg

import (
	"sort"

	"tlssync/internal/ir"
)

// ReversePostorder returns the blocks of f reachable from the entry in
// reverse postorder.
func ReversePostorder(f *ir.Func) []*ir.Block {
	var order []*ir.Block
	visited := make(map[*ir.Block]bool, len(f.Blocks))
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		visited[b] = true
		for _, s := range b.Succs {
			if !visited[s] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	dfs(f.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// DomTree holds immediate-dominator information for a function.
type DomTree struct {
	f    *ir.Func
	idom map[*ir.Block]*ir.Block
	rpo  []*ir.Block
	num  map[*ir.Block]int // postorder number
}

// Dominators computes the dominator tree of f using the Cooper-Harvey-
// Kennedy iterative algorithm.
func Dominators(f *ir.Func) *DomTree {
	rpo := ReversePostorder(f)
	num := make(map[*ir.Block]int, len(rpo))
	for i, b := range rpo {
		num[b] = len(rpo) - 1 - i // postorder number
	}
	idom := make(map[*ir.Block]*ir.Block, len(rpo))
	idom[f.Entry] = f.Entry

	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for num[a] < num[b] {
				a = idom[a]
			}
			for num[b] < num[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == f.Entry {
				continue
			}
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return &DomTree{f: f, idom: idom, rpo: rpo, num: num}
}

// Idom returns the immediate dominator of b (the entry's idom is itself).
func (d *DomTree) Idom(b *ir.Block) *ir.Block { return d.idom[b] }

// Func returns the function this tree was computed for.
func (d *DomTree) Func() *ir.Func { return d.f }

// Dominates reports whether a dominates b (reflexively).
func (d *DomTree) Dominates(a, b *ir.Block) bool {
	for {
		if a == b {
			return true
		}
		next := d.idom[b]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// Loop is a natural loop: the union of all back edges targeting Header.
type Loop struct {
	Header *ir.Block
	Blocks map[*ir.Block]bool
	// Latches are the sources of back edges into Header.
	Latches []*ir.Block
	// Exits are blocks outside the loop that are successors of loop blocks.
	Exits []*ir.Block
	// Parallel mirrors Header.ParallelHeader for convenience.
	Parallel bool
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// SortedBlocks returns the loop's block set in block-index order — the
// iteration to use whenever the result can reach deterministic output
// (IR bytes, diagnostics, exit lists), where ranging the Blocks map
// directly would leak map order into it.
func (l *Loop) SortedBlocks() []*ir.Block {
	blocks := make([]*ir.Block, 0, len(l.Blocks))
	for b := range l.Blocks {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Index < blocks[j].Index })
	return blocks
}

// NaturalLoops finds all natural loops of f (one per header; multiple back
// edges to the same header are merged), in header-RPO order.
func NaturalLoops(f *ir.Func) []*Loop {
	dom := Dominators(f)
	byHeader := make(map[*ir.Block]*Loop)
	var headers []*ir.Block

	for _, b := range dom.rpo {
		for _, s := range b.Succs {
			if dom.Dominates(s, b) {
				// b -> s is a back edge.
				l, ok := byHeader[s]
				if !ok {
					l = &Loop{
						Header:   s,
						Blocks:   map[*ir.Block]bool{s: true},
						Parallel: s.ParallelHeader,
					}
					byHeader[s] = l
					headers = append(headers, s)
				}
				l.Latches = append(l.Latches, b)
				// Walk predecessors back from the latch to collect the body.
				stack := []*ir.Block{b}
				for len(stack) > 0 {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if l.Blocks[n] {
						continue
					}
					l.Blocks[n] = true
					for _, p := range n.Preds {
						stack = append(stack, p)
					}
				}
			}
		}
	}

	loops := make([]*Loop, 0, len(headers))
	for _, h := range headers {
		l := byHeader[h]
		seenExit := make(map[*ir.Block]bool)
		// Exits is part of the deterministic analysis surface: collect in
		// block-index order, not map order.
		for _, b := range l.SortedBlocks() {
			for _, s := range b.Succs {
				if !l.Blocks[s] && !seenExit[s] {
					seenExit[s] = true
					l.Exits = append(l.Exits, s)
				}
			}
		}
		loops = append(loops, l)
	}
	return loops
}

// LoopOf returns the loop headed by header, or nil.
func LoopOf(loops []*Loop, header *ir.Block) *Loop {
	for _, l := range loops {
		if l.Header == header {
			return l
		}
	}
	return nil
}

// ParallelLoops returns the loops whose headers carry the source-level
// `parallel for` marker.
func ParallelLoops(f *ir.Func) []*Loop {
	var out []*Loop
	for _, l := range NaturalLoops(f) {
		if l.Parallel {
			out = append(out, l)
		}
	}
	return out
}
