package cfg

import (
	"testing"

	"tlssync/internal/ir"
	"tlssync/internal/lang"
	"tlssync/internal/lower"
)

func compile(t testing.TB, src string) *ir.Program {
	t.Helper()
	c, err := lang.Check(lang.MustParse(src))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := lower.Lower(c)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func TestReversePostorderStartsAtEntry(t *testing.T) {
	p := compile(t, `
func main() {
	var i int;
	for i = 0; i < 10; i = i + 1 {
		if i % 2 == 0 { print(i); }
	}
}`)
	f := p.FuncMap["main"]
	rpo := ReversePostorder(f)
	if rpo[0] != f.Entry {
		t.Error("RPO does not start at entry")
	}
	seen := make(map[*ir.Block]bool)
	for _, b := range rpo {
		if seen[b] {
			t.Error("duplicate block in RPO")
		}
		seen[b] = true
	}
	// Every predecessor of a block (except via back edges) appears earlier.
	pos := make(map[*ir.Block]int)
	for i, b := range rpo {
		pos[b] = i
	}
	dom := Dominators(f)
	for _, b := range rpo {
		for _, p := range b.Preds {
			if dom.Dominates(b, p) {
				continue // back edge
			}
			if pos[p] >= pos[b] {
				t.Errorf("pred b%d after b%d in RPO", p.Index, b.Index)
			}
		}
	}
}

func TestDominators(t *testing.T) {
	p := compile(t, `
func main() {
	var i int;
	if input(0) {
		i = 1;
	} else {
		i = 2;
	}
	print(i);
}`)
	f := p.FuncMap["main"]
	dom := Dominators(f)
	// Entry dominates everything.
	for _, b := range ReversePostorder(f) {
		if !dom.Dominates(f.Entry, b) {
			t.Errorf("entry does not dominate b%d", b.Index)
		}
	}
	// Then/else do not dominate each other or the join.
	var then, els *ir.Block
	for _, b := range f.Blocks {
		switch b.Name {
		case "then":
			then = b
		case "else":
			els = b
		}
	}
	if then == nil || els == nil {
		t.Fatal("missing then/else blocks")
	}
	if dom.Dominates(then, els) || dom.Dominates(els, then) {
		t.Error("branch arms dominate each other")
	}
}

func TestNaturalLoopsSimple(t *testing.T) {
	p := compile(t, `
func main() {
	var i int;
	for i = 0; i < 10; i = i + 1 {
		print(i);
	}
}`)
	f := p.FuncMap["main"]
	loops := NaturalLoops(f)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header.Name != "loop.header" {
		t.Errorf("header = %s", l.Header.Name)
	}
	if len(l.Latches) != 1 {
		t.Errorf("latches = %d, want 1", len(l.Latches))
	}
	if len(l.Exits) != 1 {
		t.Errorf("exits = %d, want 1", len(l.Exits))
	}
	if l.Parallel {
		t.Error("plain for marked parallel")
	}
	// Body blocks: header, body, post at least.
	if len(l.Blocks) < 3 {
		t.Errorf("loop body has %d blocks", len(l.Blocks))
	}
}

func TestNaturalLoopsNested(t *testing.T) {
	p := compile(t, `
func main() {
	var i int;
	var j int;
	for i = 0; i < 3; i = i + 1 {
		for j = 0; j < 3; j = j + 1 {
			print(i + j);
		}
	}
}`)
	f := p.FuncMap["main"]
	loops := NaturalLoops(f)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	// One loop's blocks must be a strict subset of the other's.
	a, b := loops[0], loops[1]
	if len(a.Blocks) < len(b.Blocks) {
		a, b = b, a
	}
	for blk := range b.Blocks {
		if !a.Blocks[blk] {
			t.Error("inner loop block not contained in outer loop")
		}
	}
	if len(a.Blocks) == len(b.Blocks) {
		t.Error("nested loops have identical bodies")
	}
}

func TestParallelLoops(t *testing.T) {
	p := compile(t, `
func main() {
	var i int;
	var j int;
	for i = 0; i < 3; i = i + 1 { print(i); }
	parallel for j = 0; j < 3; j = j + 1 { print(j); }
}`)
	f := p.FuncMap["main"]
	par := ParallelLoops(f)
	if len(par) != 1 {
		t.Fatalf("found %d parallel loops, want 1", len(par))
	}
	if !par[0].Parallel || !par[0].Header.ParallelHeader {
		t.Error("parallel flags not set")
	}
	all := NaturalLoops(f)
	if len(all) != 2 {
		t.Fatalf("found %d loops total, want 2", len(all))
	}
}

func TestLoopWithBreakHasTwoExitPaths(t *testing.T) {
	p := compile(t, `
func main() {
	var i int;
	for i = 0; i < 100; i = i + 1 {
		if i == 5 { break; }
	}
	print(i);
}`)
	f := p.FuncMap["main"]
	loops := NaturalLoops(f)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	// break and the header cond both leave the loop; they may share the
	// exit block or not, but there must be at least one exit.
	if len(loops[0].Exits) < 1 {
		t.Error("no exits found")
	}
}

func TestWhileLoopDetected(t *testing.T) {
	p := compile(t, `
func main() {
	var i int = 0;
	while i < 4 {
		i = i + 1;
	}
	print(i);
}`)
	f := p.FuncMap["main"]
	loops := NaturalLoops(f)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
}

func TestLoopOf(t *testing.T) {
	p := compile(t, `
func main() {
	var i int;
	for i = 0; i < 3; i = i + 1 { }
}`)
	f := p.FuncMap["main"]
	loops := NaturalLoops(f)
	if LoopOf(loops, loops[0].Header) != loops[0] {
		t.Error("LoopOf failed to find loop by header")
	}
	if LoopOf(loops, f.Entry) != nil {
		t.Error("LoopOf found loop for non-header")
	}
}
