// Package tlsrt is a software thread-level-speculation runtime built on
// goroutines: an executable, actually-parallel counterpart to the timing
// simulator. Loop iterations run as speculative epochs on a bounded pool
// of workers; each epoch buffers its stores, logs the values it loads,
// and commits strictly in order after validating that everything it read
// still matches committed memory (value-based validation). A failed
// validation squashes the epoch, which then re-executes holding the
// commit token (and therefore cannot fail again) — the software analogue
// of TLS squash-and-replay.
//
// The paper's synchronization primitives are provided as epoch methods:
// Signal forwards an (address, value) pair to the next epoch; Wait blocks
// for it (or for the producer's completion, the implicit NULL). Forwarded
// values are validated at commit like ordinary reads, and a consumer that
// used a signal from a run that was later squashed fails validation
// through the producer-generation check — the signal address buffer and
// cascade semantics of the hardware model, realized in software.
//
// The runtime exists to demonstrate the protocol end to end under the Go
// race detector; the evaluation's numbers come from the deterministic
// trace-driven simulator in internal/sim.
package tlsrt

import (
	"fmt"
	"sync"
)

// Memory is the committed shared store (word addressed).
type Memory struct {
	mu sync.RWMutex
	m  map[int64]int64
}

// NewMemory returns an empty memory.
func NewMemory() *Memory { return &Memory{m: make(map[int64]int64)} }

// Read returns the committed value at addr.
func (mem *Memory) Read(addr int64) int64 {
	mem.mu.RLock()
	v := mem.m[addr]
	mem.mu.RUnlock()
	return v
}

// Write sets the committed value at addr (non-speculative use only).
func (mem *Memory) Write(addr, v int64) {
	mem.mu.Lock()
	mem.m[addr] = v
	mem.mu.Unlock()
}

func (mem *Memory) apply(writes map[int64]int64) {
	mem.mu.Lock()
	for a, v := range writes {
		mem.m[a] = v
	}
	mem.mu.Unlock()
}

// Snapshot copies the committed memory (for tests and inspection).
func (mem *Memory) Snapshot() map[int64]int64 {
	mem.mu.RLock()
	out := make(map[int64]int64, len(mem.m))
	for a, v := range mem.m {
		out[a] = v
	}
	mem.mu.RUnlock()
	return out
}

// message is one forwarded (address, value) pair with the producer's run
// generation.
type message struct {
	addr, val int64
	gen       int
	null      bool
	valid     bool
}

// mailbox is a per-(consumer, channel) slot with blocking receive.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	msg  message
	// producerDone is set when the producing epoch finished its run
	// (implicit NULL for consumers still waiting).
	producerDone bool
	doneGen      int
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) send(m message) {
	mb.mu.Lock()
	mb.msg = m
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

func (mb *mailbox) markDone(gen int) {
	mb.mu.Lock()
	mb.producerDone = true
	mb.doneGen = gen
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

func (mb *mailbox) reset() {
	mb.mu.Lock()
	mb.msg = message{}
	mb.producerDone = false
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// recv blocks until a message arrives or the producer finishes; the
// second result is the producer generation the consumer observed.
func (mb *mailbox) recv() (message, int) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if mb.msg.valid {
			return mb.msg, mb.msg.gen
		}
		if mb.producerDone {
			return message{null: true, valid: true, gen: mb.doneGen}, mb.doneGen
		}
		mb.cond.Wait()
	}
}

// Stats reports what a speculative loop execution did.
type Stats struct {
	Epochs   int
	Squashes int // epochs that failed validation and replayed
	Forwards int // signals consumed with matching addresses
}

// Runtime executes speculative loops over a shared memory.
type Runtime struct {
	Mem     *Memory
	Workers int // concurrent epochs (like the simulator's CPUs); min 1
}

// New creates a runtime with the given parallelism.
func New(workers int) *Runtime {
	if workers < 1 {
		workers = 1
	}
	return &Runtime{Mem: NewMemory(), Workers: workers}
}

// Epoch is the speculative execution context passed to loop bodies.
type Epoch struct {
	Index int

	run    *loopRun
	gen    int
	writes map[int64]int64
	// reads logs the first value observed per address (for value-based
	// validation); addresses written before being read are excluded
	// (private hits).
	reads map[int64]int64
	// consumedGen records the producer generation of any consumed signal
	// (-1 if none) for cascade validation.
	consumedGen int
	forwards    int
	// sigAddrs is the signal address buffer: addresses this epoch has
	// forwarded. A later store to one of them invalidates the forward
	// (the consumer will fail validation and replay).
	sigAddrs map[int64]bool
	stale    bool // this epoch overwrote a forwarded address
}

// Load reads addr speculatively.
func (e *Epoch) Load(addr int64) int64 {
	if v, own := e.writes[addr]; own {
		return v
	}
	v := e.run.rt.Mem.Read(addr)
	if _, logged := e.reads[addr]; !logged {
		e.reads[addr] = v
	}
	return v
}

// Store writes addr speculatively (buffered until commit).
func (e *Epoch) Store(addr, v int64) {
	e.writes[addr] = v
	if e.sigAddrs[addr] {
		// Signal address buffer hit: the forwarded value was premature.
		e.stale = true
	}
}

// Signal forwards (addr, val) on channel ch to the next epoch.
func (e *Epoch) Signal(ch int, addr, val int64) {
	e.sigAddrs[addr] = true
	e.run.box(e.Index+1, ch).send(message{addr: addr, val: val, gen: e.gen, valid: true})
}

// SignalNull tells the next epoch that no value will be produced on ch.
func (e *Epoch) SignalNull(ch int) {
	e.run.box(e.Index+1, ch).send(message{null: true, gen: e.gen, valid: true})
}

// Wait blocks for the previous epoch's signal on ch. It returns
// (addr, val, ok); ok is false for a NULL (no value produced). Epoch 0
// never blocks.
func (e *Epoch) Wait(ch int) (int64, int64, bool) {
	if e.Index == 0 {
		return 0, 0, false
	}
	msg, gen := e.run.box(e.Index, ch).recv()
	e.consumedGen = gen
	if msg.null {
		return 0, 0, false
	}
	if e.run.isStale(e.Index-1, gen) {
		// The producer overwrote the forwarded address after signaling;
		// treat the forward as NULL (the replay path after a
		// staleness-triggered squash lands here).
		return 0, 0, false
	}
	e.forwards++
	return msg.addr, msg.val, true
}

// loopRun is the state of one SpeculativeFor execution.
type loopRun struct {
	rt *Runtime
	mu sync.Mutex
	// boxes maps (consumer epoch, channel) to its mailbox.
	boxes map[[2]int]*mailbox
	// doneGens records producers that finished their current run (and the
	// generation), so mailboxes created AFTER the producer's broadcast
	// still observe the implicit NULL.
	doneGens map[int]int
	// staleGens records producer runs that overwrote an already-forwarded
	// address (signal-address-buffer hit): consumers of those runs'
	// signals must squash, and their replays treat the signals as NULL.
	staleGens map[[2]int]bool
	// gens tracks each epoch's final run generation (set at commit).
	gens  map[int]int
	stats Stats
}

func (lr *loopRun) box(consumer, ch int) *mailbox {
	key := [2]int{consumer, ch}
	lr.mu.Lock()
	mb, ok := lr.boxes[key]
	if !ok {
		mb = newMailbox()
		if gen, done := lr.doneGens[consumer-1]; done {
			mb.producerDone = true
			mb.doneGen = gen
		}
		lr.boxes[key] = mb
	}
	lr.mu.Unlock()
	return mb
}

// producerFinished marks epoch idx's current run as finished: existing
// mailboxes broadcast, future mailboxes initialize from the registry.
func (lr *loopRun) producerFinished(idx, gen int, stale bool) {
	lr.mu.Lock()
	lr.doneGens[idx] = gen
	if stale {
		lr.staleGens[[2]int{idx, gen}] = true
	}
	for key, mb := range lr.boxes {
		if key[0] == idx+1 {
			mb.markDone(gen)
		}
	}
	lr.mu.Unlock()
}

// isStale reports whether the producer's run overwrote a forwarded
// address after signaling.
func (lr *loopRun) isStale(producer, gen int) bool {
	lr.mu.Lock()
	v := lr.staleGens[[2]int{producer, gen}]
	lr.mu.Unlock()
	return v
}

// producerSquashed withdraws epoch idx's signals and done mark before a
// replay.
func (lr *loopRun) producerSquashed(idx int) {
	lr.mu.Lock()
	delete(lr.doneGens, idx)
	for key, mb := range lr.boxes {
		if key[0] == idx+1 {
			mb.reset()
		}
	}
	lr.mu.Unlock()
}

// SpeculativeFor executes body(e) for e.Index in [0, n) as speculative
// epochs with at most rt.Workers in flight, committing in order. The body
// must perform all shared accesses through the Epoch; it may be executed
// more than once (squash and replay), so any local state must be
// re-derivable from its inputs.
func (rt *Runtime) SpeculativeFor(n int, body func(e *Epoch)) Stats {
	if n <= 0 {
		return Stats{}
	}
	lr := &loopRun{
		rt:        rt,
		boxes:     make(map[[2]int]*mailbox),
		doneGens:  make(map[int]int),
		staleGens: make(map[[2]int]bool),
		gens:      make(map[int]int),
	}

	// commitDone[i] closes when epoch i has committed.
	commitDone := make([]chan struct{}, n+1)
	for i := range commitDone {
		commitDone[i] = make(chan struct{})
	}
	close(commitDone[0]) // virtual predecessor of epoch 0

	sem := make(chan struct{}, rt.Workers)
	var wg sync.WaitGroup
	var statsMu sync.Mutex

	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(idx int) {
			defer wg.Done()
			defer func() { <-sem }()
			gen := 0
			squashes := 0
			forwards := 0
			for {
				e := &Epoch{
					Index:       idx,
					run:         lr,
					gen:         gen,
					writes:      make(map[int64]int64),
					reads:       make(map[int64]int64),
					consumedGen: -1,
					sigAddrs:    make(map[int64]bool),
				}
				body(e)
				// Tell waiting consumers we are done (implicit NULL),
				// flagging the run if it invalidated its own forwards.
				lr.producerFinished(idx, gen, e.stale)

				// Wait for the commit token.
				<-commitDone[idx]

				if lr.validate(e) {
					rt.Mem.apply(e.writes)
					lr.mu.Lock()
					lr.gens[idx] = gen
					lr.mu.Unlock()
					forwards += e.forwards
					close(commitDone[idx+1])
					break
				}
				// Squash: withdraw the (possibly wrong) signals and done
				// mark, bump the generation, and replay. Holding the
				// token, the replay reads only committed state and must
				// validate.
				squashes++
				gen++
				lr.producerSquashed(idx)
			}
			statsMu.Lock()
			lr.stats.Epochs++
			lr.stats.Squashes += squashes
			lr.stats.Forwards += forwards
			statsMu.Unlock()
		}(i)
	}
	wg.Wait()
	return lr.stats
}

// validate checks an epoch's read log against committed memory, its
// consumed forwards against the producers' final generations, and (the
// signal-address-buffer rule) that no consumed forward went stale.
func (lr *loopRun) validate(e *Epoch) bool {
	if e.consumedGen >= 0 {
		lr.mu.Lock()
		finalGen, committed := lr.gens[e.Index-1]
		lr.mu.Unlock()
		if !committed || finalGen != e.consumedGen {
			return false // consumed a squashed producer's signal
		}
		if e.forwards > 0 && lr.isStale(e.Index-1, e.consumedGen) {
			return false // the forwarded value was overwritten after signaling
		}
	}
	for addr, seen := range e.reads {
		if lr.rt.Mem.Read(addr) != seen {
			return false
		}
	}
	return true
}

// String renders the stats.
func (s Stats) String() string {
	return fmt.Sprintf("epochs=%d squashes=%d forwards=%d", s.Epochs, s.Squashes, s.Forwards)
}
