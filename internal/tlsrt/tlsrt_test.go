package tlsrt

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestIndependentEpochs(t *testing.T) {
	rt := New(4)
	stats := rt.SpeculativeFor(200, func(e *Epoch) {
		addr := int64(e.Index) * 8
		e.Store(addr, int64(e.Index*e.Index))
	})
	if stats.Epochs != 200 {
		t.Errorf("epochs = %d", stats.Epochs)
	}
	if stats.Squashes != 0 {
		t.Errorf("independent epochs squashed %d times", stats.Squashes)
	}
	for i := int64(0); i < 200; i++ {
		if got := rt.Mem.Read(i * 8); got != i*i {
			t.Fatalf("mem[%d] = %d, want %d", i*8, got, i*i)
		}
	}
}

func TestSerialCounterCorrect(t *testing.T) {
	// Every epoch increments a shared counter: maximal contention; the
	// result must still be exactly N.
	rt := New(4)
	const addr = int64(0x100)
	const n = 300
	stats := rt.SpeculativeFor(n, func(e *Epoch) {
		e.Store(addr, e.Load(addr)+1)
	})
	if got := rt.Mem.Read(addr); got != n {
		t.Fatalf("counter = %d, want %d", got, n)
	}
	if stats.Squashes == 0 {
		t.Error("expected squashes under contention (speculation must fail sometimes)")
	}
}

func TestEquivalenceWithSequential(t *testing.T) {
	// A mixed workload: guarded updates, array writes, accumulation.
	body := func(load func(int64) int64, store func(int64, int64), i int) {
		v := load(8 * int64(i%16))
		if i%3 == 0 {
			store(0x1000, load(0x1000)+v+int64(i))
		}
		store(8*int64((i*7)%16), v+int64(i))
	}

	// Sequential reference.
	seq := NewMemory()
	for i := 0; i < 400; i++ {
		body(seq.Read, seq.Write, i)
	}

	// Speculative execution.
	rt := New(4)
	rt.SpeculativeFor(400, func(e *Epoch) {
		body(e.Load, e.Store, e.Index)
	})

	want := seq.Snapshot()
	got := rt.Mem.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("memory footprint %d, want %d", len(got), len(want))
	}
	for a, v := range want {
		if got[a] != v {
			t.Errorf("mem[%#x] = %d, want %d", a, got[a], v)
		}
	}
}

func TestForwardingReducesSquashes(t *testing.T) {
	const addr = int64(0x40)
	const n = 300
	run := func(useSync bool) Stats {
		rt := New(4)
		return rt.SpeculativeFor(n, func(e *Epoch) {
			var v int64
			used := false
			if useSync {
				if fa, fv, ok := e.Wait(0); ok && fa == addr {
					v = fv
					used = true
				}
			}
			if !used {
				v = e.Load(addr)
			}
			nv := v + 1
			e.Store(addr, nv)
			if useSync {
				e.Signal(0, addr, nv)
			}
		})
	}
	plain := run(false)
	synced := run(true)
	if got := plain.Squashes; got == 0 {
		t.Fatal("unsynchronized run had no squashes")
	}
	if synced.Squashes*2 > plain.Squashes {
		t.Errorf("forwarding should cut squashes: %d vs %d", synced.Squashes, plain.Squashes)
	}
	if synced.Forwards == 0 {
		t.Error("no forwards consumed")
	}
}

func TestForwardingCorrectValue(t *testing.T) {
	// The forwarded counter must end exactly at n even when every epoch
	// consumes the forwarded value.
	const addr = int64(0x40)
	const n = 250
	rt := New(4)
	rt.SpeculativeFor(n, func(e *Epoch) {
		var v int64
		if fa, fv, ok := e.Wait(0); ok && fa == addr {
			v = fv
		} else {
			v = e.Load(addr)
		}
		nv := v + 1
		e.Store(addr, nv)
		e.Signal(0, addr, nv)
	})
	if got := rt.Mem.Read(addr); got != n {
		t.Fatalf("counter = %d, want %d", got, n)
	}
}

func TestStaleForwardSquashesConsumer(t *testing.T) {
	// The producer signals and then overwrites the forwarded address
	// (signal-address-buffer hit): consumers must still compute the
	// correct result.
	const addr = int64(0x80)
	const n = 200
	rt := New(4)
	rt.SpeculativeFor(n, func(e *Epoch) {
		var v int64
		if fa, fv, ok := e.Wait(0); ok && fa == addr {
			v = fv
		} else {
			v = e.Load(addr)
		}
		nv := v + 1
		e.Store(addr, nv)
		e.Signal(0, addr, nv)
		if e.Index%5 == 0 {
			// Post-signal overwrite: the forwarded value is now wrong.
			e.Store(addr, nv+100)
		}
	})
	// Sequential expectation.
	var want int64
	for i := 0; i < n; i++ {
		want++
		if i%5 == 0 {
			want += 100
		}
	}
	if got := rt.Mem.Read(addr); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func TestNullSignalPath(t *testing.T) {
	// Producers signal only on some epochs; consumers must not deadlock
	// on the storeless paths (implicit NULL via producer completion).
	const addr = int64(0x20)
	const n = 200
	rt := New(4)
	stats := rt.SpeculativeFor(n, func(e *Epoch) {
		if fa, fv, ok := e.Wait(0); ok && fa == addr {
			_ = fv
		}
		if e.Index%4 == 0 {
			v := e.Load(addr) + 1
			e.Store(addr, v)
			e.Signal(0, addr, v)
		}
	})
	if stats.Epochs != n {
		t.Fatalf("epochs = %d", stats.Epochs)
	}
	if got := rt.Mem.Read(addr); got != n/4 {
		t.Fatalf("counter = %d, want %d", got, n/4)
	}
}

func TestExplicitNullSignal(t *testing.T) {
	const addr = int64(0x60)
	rt := New(2)
	rt.SpeculativeFor(50, func(e *Epoch) {
		if _, _, ok := e.Wait(0); ok {
			t.Error("consumed a value despite NULL signals")
		}
		e.Store(addr+int64(e.Index)*8, int64(e.Index))
		e.SignalNull(0)
	})
}

func TestWorkerCounts(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		rt := New(workers)
		const addr = int64(0x10)
		rt.SpeculativeFor(100, func(e *Epoch) {
			e.Store(addr, e.Load(addr)+2)
		})
		if got := rt.Mem.Read(addr); got != 200 {
			t.Errorf("workers=%d: counter = %d, want 200", workers, got)
		}
	}
}

func TestBodyMayRunMultipleTimes(t *testing.T) {
	// The body contract allows re-execution; total successful epochs is
	// exactly n while invocations may exceed it.
	var invocations int64
	rt := New(4)
	const addr = int64(0x8)
	stats := rt.SpeculativeFor(150, func(e *Epoch) {
		atomic.AddInt64(&invocations, 1)
		e.Store(addr, e.Load(addr)+1)
	})
	if stats.Epochs != 150 {
		t.Fatalf("epochs = %d", stats.Epochs)
	}
	if invocations < 150 {
		t.Fatalf("invocations = %d < 150", invocations)
	}
	if int64(stats.Epochs+stats.Squashes) != invocations {
		t.Errorf("epochs+squashes = %d, invocations = %d", stats.Epochs+stats.Squashes, invocations)
	}
}

func TestPropertySpeculativeSumMatchesSequential(t *testing.T) {
	// Property: for random strides/guards, the speculative execution of a
	// read-modify-write loop equals the sequential result.
	f := func(strideSeed, guardSeed uint8) bool {
		stride := int64(strideSeed%7) + 1
		guard := int(guardSeed%5) + 2
		const addr = int64(0x200)
		rt := New(4)
		rt.SpeculativeFor(120, func(e *Epoch) {
			if e.Index%guard == 0 {
				e.Store(addr, e.Load(addr)+stride)
			}
		})
		var want int64
		for i := 0; i < 120; i++ {
			if i%guard == 0 {
				want += stride
			}
		}
		return rt.Mem.Read(addr) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroAndNegativeN(t *testing.T) {
	rt := New(4)
	if s := rt.SpeculativeFor(0, func(e *Epoch) {}); s.Epochs != 0 {
		t.Error("n=0 ran epochs")
	}
	if s := rt.SpeculativeFor(-3, func(e *Epoch) {}); s.Epochs != 0 {
		t.Error("n<0 ran epochs")
	}
}

// TestAgreementWithTimingSimulator ties the two execution substrates
// together: the trace-driven timing simulator and the goroutine runtime
// must agree qualitatively — a hot dependence causes heavy squashing in
// both models, and wait/signal forwarding removes it in both.
func TestAgreementWithTimingSimulator(t *testing.T) {
	// Goroutine-runtime side: the hot counter from the quickstart.
	const addr = int64(0x500)
	const n = 300
	rtPlain := New(4)
	plain := rtPlain.SpeculativeFor(n, func(e *Epoch) {
		e.Store(addr, e.Load(addr)+1)
	})
	rtSync := New(4)
	synced := rtSync.SpeculativeFor(n, func(e *Epoch) {
		var v int64
		if fa, fv, ok := e.Wait(0); ok && fa == addr {
			v = fv
		} else {
			v = e.Load(addr)
		}
		e.Store(addr, v+1)
		e.Signal(0, addr, v+1)
	})

	// Both substrates must show: plain speculation squashes a large
	// fraction of epochs; synchronization removes nearly all of it.
	// (The timing-simulator side of this statement is asserted by
	// TestCompilerSyncBeatsUOnDependentLoop in internal/sim on the same
	// dependence shape; here we pin the runtime side and the ratios.)
	if plain.Squashes*3 < n {
		t.Errorf("plain speculation squashed only %d of %d epochs", plain.Squashes, n)
	}
	if synced.Squashes*10 > plain.Squashes {
		t.Errorf("forwarding left %d squashes (plain had %d)", synced.Squashes, plain.Squashes)
	}
	if rtPlain.Mem.Read(addr) != rtSync.Mem.Read(addr) {
		t.Error("the two executions disagree on the result")
	}
}
