package scalarsync

import (
	"testing"

	"tlssync/internal/interp"
	"tlssync/internal/ir"
	"tlssync/internal/lang"
	"tlssync/internal/lower"
	"tlssync/internal/regions"
)

func compile(t testing.TB, src string) *ir.Program {
	t.Helper()
	c, err := lang.Check(lang.MustParse(src))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := lower.Lower(c)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func countOps(p *ir.Program, op ir.Op) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == op {
					n++
				}
			}
		}
	}
	return n
}

// applyTo compiles, applies scalarsync to all parallel loops, verifies,
// and checks output equivalence against the untransformed program.
func applyTo(t *testing.T, src string, opts Options) (*ir.Program, []Result) {
	t.Helper()
	base := compile(t, src)
	baseTr, err := interp.Run(base, interp.Options{Seed: 3})
	if err != nil {
		t.Fatalf("base run: %v", err)
	}

	p := compile(t, src)
	regs := regions.Regions(p, nil)
	results := Apply(p, regs, opts)
	if err := p.Verify(); err != nil {
		t.Fatalf("verify after scalarsync: %v", err)
	}

	// Semantics preserved, both with and without epoch tracking.
	regs = regions.Regions(p, nil)
	tr, err := interp.Run(p, interp.Options{Seed: 3, Regions: regs})
	if err != nil {
		t.Fatalf("transformed run: %v", err)
	}
	if len(tr.Output) != len(baseTr.Output) {
		t.Fatalf("output length changed: %d vs %d", len(tr.Output), len(baseTr.Output))
	}
	for i := range tr.Output {
		if tr.Output[i] != baseTr.Output[i] {
			t.Fatalf("output[%d] = %d, want %d", i, tr.Output[i], baseTr.Output[i])
		}
	}
	return p, results
}

const accumSrc = `
var g int;
func main() {
	var i int;
	var s int;
	parallel for i = 0; i < 200; i = i + 1 {
		s = s + i * 3;
	}
	g = s;
	print(g);
	print(i);
}
`

func TestCarriedScalarsSynchronized(t *testing.T) {
	p, results := applyTo(t, accumSrc, Options{Schedule: true})
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	// i and s are loop-carried.
	if got := len(results[0].Channels); got != 2 {
		t.Errorf("channels = %d, want 2 (i and s)", got)
	}
	if p.NumScalarChans != 2 {
		t.Errorf("NumScalarChans = %d, want 2", p.NumScalarChans)
	}
	waits := countOps(p, ir.WaitScalar)
	signals := countOps(p, ir.SignalScalar)
	if waits != 2 {
		t.Errorf("waits = %d, want 2", waits)
	}
	// One signal per channel in the loop plus one per channel in the
	// preheader.
	if signals != 4 {
		t.Errorf("signals = %d, want 4", signals)
	}
}

func TestWaitsAtHeaderTop(t *testing.T) {
	p, _ := applyTo(t, accumSrc, Options{Schedule: true})
	for _, b := range p.FuncMap["main"].Blocks {
		if !b.ParallelHeader {
			continue
		}
		// The first instructions must be the waits.
		if b.Instrs[0].Op != ir.WaitScalar || b.Instrs[1].Op != ir.WaitScalar {
			t.Errorf("header does not start with waits: %v, %v", b.Instrs[0], b.Instrs[1])
		}
	}
}

func TestSchedulingHoistsSignals(t *testing.T) {
	// s's last def is in the body block, i's in the post block; both
	// dominate the latch, so both signals hoist.
	_, res := applyTo(t, accumSrc, Options{Schedule: true})
	if res[0].Hoisted != 2 {
		t.Errorf("hoisted = %d, want 2", res[0].Hoisted)
	}
	_, res = applyTo(t, accumSrc, Options{Schedule: false})
	if res[0].Hoisted != 0 {
		t.Errorf("unscheduled hoisted = %d, want 0", res[0].Hoisted)
	}
}

func TestSignalImmediatelyAfterLastDef(t *testing.T) {
	p, res := applyTo(t, accumSrc, Options{Schedule: true})
	chans := res[0].Channels
	for _, b := range p.FuncMap["main"].Blocks {
		for i, in := range b.Instrs {
			if in.Op != ir.SignalScalar {
				continue
			}
			if b.Name == "entry" {
				continue // preheader signals
			}
			// In-loop signal (hoisted or induction-prologue): the
			// previous instruction must define the signaled register.
			if i == 0 || !b.Instrs[i-1].HasDst() || b.Instrs[i-1].Dst != in.A {
				t.Errorf("signal ch%d not immediately after def of r%d in %s",
					in.Imm, in.A, b.Name)
			}
			// The signaled register is either a carried scalar or the
			// early-computed next value of an induction register
			// (defined by the add right before it).
			if _, ok := chans[in.A]; !ok {
				prev := b.Instrs[i-1]
				if prev.Op != ir.Bin || prev.Alu != ir.Add {
					t.Errorf("signal for unknown register r%d not fed by induction add", in.A)
				}
			}
		}
	}
}

func TestConditionalDefsNotHoisted(t *testing.T) {
	// s defined in only one branch arm: the def does not dominate the
	// latch, so the signal must stay on the latch.
	src := `
var g int;
func main() {
	var i int;
	var s int;
	parallel for i = 0; i < 100; i = i + 1 {
		if i % 3 == 0 {
			s = s + i;
		}
	}
	g = s;
	print(g);
}
`
	p, res := applyTo(t, src, Options{Schedule: true})
	// i hoists (def in post dominates latch); s must not.
	if res[0].Hoisted != 1 {
		t.Errorf("hoisted = %d, want 1 (only i)", res[0].Hoisted)
	}
	_ = p
}

func TestInnerLoopDefsNotHoisted(t *testing.T) {
	// s's last def is inside an inner loop: hoisting would signal several
	// times per epoch.
	src := `
var g int;
func main() {
	var i int;
	var s int;
	parallel for i = 0; i < 50; i = i + 1 {
		var j int;
		for j = 0; j < 4; j = j + 1 {
			s = s + j;
		}
	}
	g = s;
	print(g);
}
`
	_, res := applyTo(t, src, Options{Schedule: true})
	// i hoists; s and j... j is not live into the outer header (redefined
	// each iteration before use), so only i and s are carried; s must not
	// hoist.
	for reg, ch := range res[0].Channels {
		_ = reg
		_ = ch
	}
	if res[0].Hoisted > 1 {
		t.Errorf("hoisted = %d, want <= 1", res[0].Hoisted)
	}
}

func TestNoCarriedScalars(t *testing.T) {
	// Memory-only loop bodies (index recomputed from memory) still carry
	// the induction variable; construct a loop with none by using a
	// global counter.
	src := `
var n int;
var g int;
func main() {
	n = 0;
	parallel for ; n < 50; {
		n = n + 1;
		g = g + n;
	}
	print(g);
}
`
	p, res := applyTo(t, src, Options{Schedule: true})
	if len(res[0].Channels) != 0 {
		t.Errorf("channels = %d, want 0 (all state in memory)", len(res[0].Channels))
	}
	if countOps(p, ir.WaitScalar) != 0 {
		t.Error("unexpected waits inserted")
	}
}

func TestMultipleRegions(t *testing.T) {
	src := `
var g int;
func main() {
	var i int;
	var j int;
	parallel for i = 0; i < 60; i = i + 1 { g = g + i; }
	parallel for j = 0; j < 40; j = j + 1 { g = g + j; }
	print(g);
}
`
	p, res := applyTo(t, src, Options{Schedule: true})
	if len(res) != 2 {
		t.Fatalf("results = %d, want 2", len(res))
	}
	// Channel ids must not collide across regions.
	seen := make(map[int64]bool)
	for _, r := range res {
		for _, ch := range r.Channels {
			if seen[ch] {
				t.Errorf("channel %d reused across regions", ch)
			}
			seen[ch] = true
		}
	}
	if p.NumScalarChans != len(seen) {
		t.Errorf("NumScalarChans = %d, want %d", p.NumScalarChans, len(seen))
	}
}

func TestUnrolledLoopStillCorrect(t *testing.T) {
	src := `
var g int;
func main() {
	var i int;
	var s int;
	parallel for i = 0; i < 97; i = i + 1 {
		s = s + i;
	}
	g = s;
	print(g);
}
`
	base := compile(t, src)
	baseTr, err := interp.Run(base, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}

	p := compile(t, src)
	regs := regions.Regions(p, nil)
	if err := regions.Unroll(p, p.FuncMap["main"], regs[0].Loop, 4); err != nil {
		t.Fatal(err)
	}
	regs = regions.Regions(p, nil)
	Apply(p, regs, Options{Schedule: true})
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	regs = regions.Regions(p, nil)
	tr, err := interp.Run(p, interp.Options{Regions: regs})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Output[0] != baseTr.Output[0] {
		t.Errorf("output = %d, want %d", tr.Output[0], baseTr.Output[0])
	}
}
