// Package scalarsync implements compiler-inserted synchronization for
// register-resident (scalar) values between epochs — the prior work the
// paper builds on ([32] Zhai et al., "Compiler optimization of scalar
// value communication between speculative threads").
//
// A scalar is loop-carried (and therefore must be communicated between
// consecutive epochs) when it is live into the region loop's header and
// defined inside the loop. For each such register the pass allocates a
// synchronization channel and inserts:
//
//   - `r = wait(ch)` at the top of the loop header (epoch entry), and
//   - `signal(ch, r)` on every latch (epoch end), plus in every preheader
//     so epoch 0 receives the live-in value.
//
// The signal placed at the latch creates the worst-case critical
// forwarding path (the value travels at the very end of the epoch). The
// scheduling optimization — the key result of [32] — hoists each signal to
// just after the scalar's last definition when all of its definitions
// dominate the latch, shrinking the path.
package scalarsync

import (
	"sort"

	"tlssync/internal/cfg"
	"tlssync/internal/dataflow"
	"tlssync/internal/interp"
	"tlssync/internal/ir"
)

// Options configure the pass.
type Options struct {
	// Schedule enables the critical-forwarding-path scheduling
	// optimization. Disabling it leaves all signals on the loop latch
	// (used by the ablation benchmark).
	Schedule bool
}

// Result reports what the pass did to one region.
type Result struct {
	RegionID int
	// Channels maps each synchronized register to its channel id.
	Channels map[ir.Reg]int64
	// Hoisted counts signals moved off the latch by scheduling.
	Hoisted int
}

// Apply synchronizes the loop-carried scalars of every region, in order.
// It mutates prog and returns per-region results.
func Apply(prog *ir.Program, regions []*interp.Region, opts Options) []Result {
	var results []Result
	for _, r := range regions {
		results = append(results, applyRegion(prog, r, opts))
	}
	return results
}

func applyRegion(prog *ir.Program, region *interp.Region, opts Options) Result {
	f := region.Func
	loop := region.Loop
	res := Result{RegionID: region.ID, Channels: make(map[ir.Reg]int64)}

	lv := dataflow.ComputeLiveness(f)
	defs := dataflow.DefinedIn(f, loop.Blocks)
	liveIn := lv.In[loop.Header]

	var carried []ir.Reg
	liveIn.ForEach(func(i int) {
		if defs.Has(i) {
			carried = append(carried, ir.Reg(i))
		}
	})
	sort.Slice(carried, func(i, j int) bool { return carried[i] < carried[j] })

	if len(carried) == 0 {
		return res
	}

	dom := cfg.Dominators(f)

	// Detect induction registers (single in-loop definition of the form
	// r = r + const) before inserting any code; their next value can be
	// computed and signaled at the very top of the epoch, removing them
	// from the critical forwarding path entirely — the most important
	// instance of the scheduling optimization in [32].
	induction := make(map[ir.Reg]int64)
	if opts.Schedule {
		for _, reg := range carried {
			if c, ok := inductionStep(loop, dom, reg); ok {
				induction[reg] = c
			}
		}
	}

	// Allocate channels and insert waits at the top of the header,
	// followed by early next-value signals for induction registers.
	var prologue []*ir.Instr
	for _, reg := range carried {
		ch := int64(prog.NumScalarChans)
		prog.NumScalarChans++
		res.Channels[reg] = ch
		w := prog.NewInstr(ir.WaitScalar)
		w.Dst = reg
		w.Imm = ch
		prologue = append(prologue, w)
	}
	for _, reg := range carried {
		step, ok := induction[reg]
		if !ok {
			continue
		}
		ch := res.Channels[reg]
		cst := prog.NewInstr(ir.Const)
		cst.Dst = f.NewReg()
		cst.Imm = step
		add := prog.NewInstr(ir.Bin)
		add.Alu, add.Dst, add.A, add.B = ir.Add, f.NewReg(), reg, cst.Dst
		sig := newSignal(prog, ch, add.Dst)
		prologue = append(prologue, cst, add, sig)
		res.Hoisted++
	}
	loop.Header.Instrs = append(prologue, loop.Header.Instrs...)

	// Preheader signals: initial values for epoch 0.
	for _, p := range loop.Header.Preds {
		if loop.Blocks[p] {
			continue // latch, handled below
		}
		insertBeforeTerminator(p, signalInstrs(prog, res.Channels))
	}

	// Latch signals, optionally scheduled to the last definition.
	// Induction registers were already signaled in the prologue.
	for _, reg := range carried {
		if _, isInd := induction[reg]; isInd {
			continue
		}
		ch := res.Channels[reg]
		placed := false
		if opts.Schedule {
			if b, idx := lastDominatingDef(f, loop, dom, reg); b != nil {
				sig := newSignal(prog, ch, reg)
				b.Instrs = append(b.Instrs[:idx+1],
					append([]*ir.Instr{sig}, b.Instrs[idx+1:]...)...)
				res.Hoisted++
				placed = true
			}
		}
		if !placed {
			for _, latch := range loop.Latches {
				insertBeforeTerminator(latch, []*ir.Instr{newSignal(prog, ch, reg)})
			}
		}
	}
	f.Renumber()
	return res
}

func newSignal(prog *ir.Program, ch int64, reg ir.Reg) *ir.Instr {
	s := prog.NewInstr(ir.SignalScalar)
	s.Imm = ch
	s.A = reg
	return s
}

func signalInstrs(prog *ir.Program, channels map[ir.Reg]int64) []*ir.Instr {
	regs := make([]ir.Reg, 0, len(channels))
	for r := range channels {
		regs = append(regs, r)
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i] < regs[j] })
	out := make([]*ir.Instr, len(regs))
	for i, r := range regs {
		out[i] = newSignal(prog, channels[r], r)
	}
	return out
}

func insertBeforeTerminator(b *ir.Block, ins []*ir.Instr) {
	n := len(b.Instrs)
	if n == 0 {
		b.Instrs = append(b.Instrs, ins...)
		return
	}
	term := b.Instrs[n-1]
	b.Instrs = append(b.Instrs[:n-1], append(ins, term)...)
}

// inductionStep recognizes the canonical induction pattern for reg within
// the loop: exactly one definition, of the form
//
//	rC = const c
//	rT = add reg, rC      (or add rC, reg)
//	reg = mov rT
//
// in a single block with one latch edge, so each epoch computes
// reg_next = reg + c exactly once. It returns the step constant.
func inductionStep(loop *cfg.Loop, dom *cfg.DomTree, reg ir.Reg) (int64, bool) {
	if len(loop.Latches) != 1 {
		return 0, false
	}
	var def *ir.Instr
	var defBlock *ir.Block
	for _, b := range loop.SortedBlocks() {
		for _, in := range b.Instrs {
			if in.HasDst() && in.Dst == reg {
				if def != nil {
					return 0, false // multiple defs
				}
				def, defBlock = in, b
			}
		}
	}
	if def == nil || def.Op != ir.Mov {
		return 0, false
	}
	// The increment must execute exactly once per epoch: its block
	// dominates the latch and is not part of any inner loop.
	if !dom.Dominates(defBlock, loop.Latches[0]) {
		return 0, false
	}
	for _, l := range cfg.NaturalLoops(dom.Func()) {
		if l.Header != loop.Header && l.Blocks[defBlock] && loop.Blocks[l.Header] {
			return 0, false
		}
	}
	// Resolve the mov source within the same block.
	var add *ir.Instr
	for _, in := range defBlock.Instrs {
		if in.HasDst() && in.Dst == def.A {
			add = in
		}
		if in == def {
			break
		}
	}
	if add == nil || add.Op != ir.Bin || add.Alu != ir.Add {
		return 0, false
	}
	var constReg ir.Reg
	switch {
	case add.A == reg:
		constReg = add.B
	case add.B == reg:
		constReg = add.A
	default:
		return 0, false
	}
	for _, in := range defBlock.Instrs {
		if in.HasDst() && in.Dst == constReg {
			if in.Op == ir.Const {
				return in.Imm, true
			}
			return 0, false
		}
		if in == add {
			break
		}
	}
	return 0, false
}

// lastDominatingDef finds the unique safe hoist point for reg's signal:
// the last definition of reg along the dominance chain to the latch,
// provided every in-loop definition of reg lies on that chain (otherwise a
// non-dominating definition could execute after the hoisted signal and the
// forwarded value would be stale). Returns (nil, 0) when no safe point
// exists. Only single-latch loops are scheduled.
func lastDominatingDef(f *ir.Func, loop *cfg.Loop, dom *cfg.DomTree, reg ir.Reg) (*ir.Block, int) {
	if len(loop.Latches) != 1 {
		return nil, 0
	}
	latch := loop.Latches[0]
	// Blocks inside inner loops would signal more than once per epoch;
	// exclude them as hoist targets (and as definition sites).
	inInner := make(map[*ir.Block]bool)
	for _, l := range cfg.NaturalLoops(f) {
		if l.Header == loop.Header {
			continue
		}
		for b := range l.Blocks {
			if loop.Blocks[b] {
				inInner[b] = true
			}
		}
	}
	// Block-index order, not map order: which def block wins the
	// dominance filter below must not depend on map iteration.
	var defBlocks []*ir.Block
	for _, b := range loop.SortedBlocks() {
		for _, in := range b.Instrs {
			if in.HasDst() && in.Dst == reg {
				defBlocks = append(defBlocks, b)
				break
			}
		}
	}
	if len(defBlocks) == 0 {
		return nil, 0
	}
	for _, b := range defBlocks {
		if !dom.Dominates(b, latch) || inInner[b] {
			return nil, 0
		}
	}
	// Chain blocks dominating the latch are totally ordered by dominance;
	// pick the one closest to the latch (dominated by all others).
	best := defBlocks[0]
	for _, b := range defBlocks[1:] {
		if dom.Dominates(best, b) {
			best = b
		}
	}
	// Last def within the chosen block.
	idx := -1
	for i, in := range best.Instrs {
		if in.HasDst() && in.Dst == reg {
			idx = i
		}
	}
	if idx < 0 {
		return nil, 0
	}
	// Never hoist past the terminator slot; idx is guaranteed before it
	// since terminators don't define registers.
	return best, idx
}
