package verify

import (
	"fmt"
	"strings"

	"tlssync/internal/ir"
)

// Annotate renders the program's IR with the report's diagnostics
// inlined next to the instructions they refer to, so a counterexample
// is readable beside the code it indicts (cmd/tlsc -dump -verify).
func Annotate(p *ir.Program, rep *Report) string {
	byInstr := make(map[int][]Diagnostic)
	type blockKey struct {
		fn    string
		block int
	}
	byBlock := make(map[blockKey][]Diagnostic)
	byFunc := make(map[string][]Diagnostic)
	for _, d := range rep.Diags {
		switch {
		case d.InstrID != 0:
			byInstr[d.InstrID] = append(byInstr[d.InstrID], d)
		case d.Block >= 0:
			k := blockKey{d.Func, d.Block}
			byBlock[k] = append(byBlock[k], d)
		default:
			byFunc[d.Func] = append(byFunc[d.Func], d)
		}
	}
	note := func(sb *strings.Builder, indent string, d Diagnostic) {
		fmt.Fprintf(sb, "%s^^ %s: [%s] %s\n", indent, d.Severity, d.Rule, d.Message)
		if len(d.Path) > 0 {
			fmt.Fprintf(sb, "%s   path: %s\n", indent, strings.Join(d.Path, " -> "))
		}
	}

	var sb strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, "global %s size=%d addr=%#x init=%d\n", g.Name, g.Size, g.Addr, g.Init)
	}
	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "func %s (params=%d regs=%d frame=%d)\n",
			f.Name, f.NParams, f.NumRegs, f.FrameSize)
		for _, d := range byFunc[f.Name] {
			note(&sb, "  ", d)
		}
		for _, b := range f.Blocks {
			mark := ""
			if b.ParallelHeader {
				mark = " [parallel header]"
			}
			fmt.Fprintf(&sb, "b%d %s:%s\n", b.Index, b.Name, mark)
			for _, d := range byBlock[blockKey{f.Name, b.Index}] {
				note(&sb, "\t", d)
			}
			for _, in := range b.Instrs {
				fmt.Fprintf(&sb, "\t%s\n", in)
				for _, d := range byInstr[in.ID] {
					if d.Func != f.Name {
						continue
					}
					note(&sb, "\t  ", d)
				}
			}
			if t := b.Terminator(); t != nil && t.Op != ir.Ret {
				targets := make([]string, len(b.Succs))
				for i, s := range b.Succs {
					targets[i] = fmt.Sprintf("b%d", s.Index)
				}
				fmt.Fprintf(&sb, "\t-> %s\n", strings.Join(targets, ", "))
			}
		}
	}
	return sb.String()
}
