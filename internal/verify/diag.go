// Package verify is a translation-validation-style static checker for
// the synchronization the TLS passes insert. It runs over each
// transformed binary and independently re-proves, from the IR alone,
// the soundness properties the scalarsync/memsync pipeline is supposed
// to establish:
//
//   - wait-order: every load.sync/select consumer sequence is dominated
//     by its wait.ma/wait.mv pair, in protocol order (rule RuleWaitOrder);
//   - signal-adjacent: every signal.m sits immediately after the store
//     it forwards, so no later store can clobber the forwarded value
//     unnoticed (rule RuleSignalAdjacent);
//   - signal-release: on every path through an epoch body each group
//     channel is released — by an explicit signal.m, a conditional NULL
//     signal, or a callee that provably signals on all its paths —
//     before the path runs out of release opportunities, i.e. no
//     consumer is starved until the implicit end-of-epoch NULL
//     (rule RuleSignalRelease);
//   - sync-cycle: a conservative cross-group cycle check over the
//     intra-epoch wait→signal ordering graph; a cycle means every epoch
//     must consume its predecessor's value before producing its own on
//     every involved channel, serializing the groups (warning rule
//     RuleSyncCycle — the forward-only prev→next channels plus the
//     first-epoch bootstrap make a true deadlock structurally
//     impossible, so this is a performance smell, not an error);
//   - clone-path: synchronized instructions are reachable only through
//     call sites retargeted into clones, never through the unclone
//     originals or from outside speculative regions
//     (rule RuleClonePath);
//   - channel-range: every sync operand names an allocated channel
//     (rule RuleChannelRange).
//
// Diagnostics are structured (rule ID, function/block position, and a
// concrete counterexample path where one exists) and render vet-style.
package verify

import (
	"fmt"
	"strings"

	"tlssync/internal/lang"
)

// Rule identifiers, one per checked property.
const (
	RuleWaitOrder      = "wait-order"
	RuleSignalAdjacent = "signal-adjacent"
	RuleSignalRelease  = "signal-release"
	RuleSyncCycle      = "sync-cycle"
	RuleClonePath      = "clone-path"
	RuleChannelRange   = "channel-range"
)

// Severity classifies a diagnostic.
type Severity int

// Severities. Errors are soundness violations; warnings are provable
// performance hazards that cannot corrupt results.
const (
	SevError Severity = iota
	SevWarn
)

// String returns "error" or "warning".
func (s Severity) String() string {
	if s == SevWarn {
		return "warning"
	}
	return "error"
}

// Mode selects how core.Compile treats verifier findings.
type Mode int

// Modes. The zero value is ModeEnforce: a binary with errors fails the
// compilation (fail-closed).
const (
	ModeEnforce Mode = iota // errors fail the compile
	ModeWarn                // findings are recorded, compile proceeds
	ModeOff                 // verifier does not run
)

// Diagnostic is one verifier finding.
type Diagnostic struct {
	Rule     string
	Severity Severity
	Func     string
	Block    int // block index, or -1 for function-level findings
	SyncID   int // memory sync channel, or -1 when not channel-specific
	InstrID  int // offending instruction ID, or 0 when positionless
	Pos      lang.Pos
	Message  string
	// Path is a concrete counterexample: the block labels of one
	// control-flow path exhibiting the violation, or (for sync-cycle)
	// the wait→signal edges of the cycle.
	Path []string
}

// String renders the diagnostic vet-style:
// "line:col: error: [rule] func.b3: message [path: ...]".
func (d Diagnostic) String() string {
	var sb strings.Builder
	if d.Pos != (lang.Pos{}) {
		fmt.Fprintf(&sb, "%s: ", d.Pos)
	}
	fmt.Fprintf(&sb, "%s: [%s] %s", d.Severity, d.Rule, d.Func)
	if d.Block >= 0 {
		fmt.Fprintf(&sb, ".b%d", d.Block)
	}
	fmt.Fprintf(&sb, ": %s", d.Message)
	if len(d.Path) > 0 {
		fmt.Fprintf(&sb, " [path: %s]", strings.Join(d.Path, " -> "))
	}
	return sb.String()
}

// Report is the verifier's result for one binary.
type Report struct {
	Binary string // which build variant ("plain", "base", "train", "ref")
	Diags  []Diagnostic
}

// Errors returns the error-severity findings.
func (r *Report) Errors() []Diagnostic { return r.bySeverity(SevError) }

// Warnings returns the warning-severity findings.
func (r *Report) Warnings() []Diagnostic { return r.bySeverity(SevWarn) }

func (r *Report) bySeverity(s Severity) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Severity == s {
			out = append(out, d)
		}
	}
	return out
}

// Clean reports whether the binary verified without errors.
func (r *Report) Clean() bool { return len(r.Errors()) == 0 }

// String renders the report, one diagnostic per line.
func (r *Report) String() string {
	if len(r.Diags) == 0 {
		return fmt.Sprintf("%s: ok", r.Binary)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d error(s), %d warning(s)\n",
		r.Binary, len(r.Errors()), len(r.Warnings()))
	for _, d := range r.Diags {
		fmt.Fprintf(&sb, "  %s\n", d)
	}
	return strings.TrimRight(sb.String(), "\n")
}
