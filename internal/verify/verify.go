package verify

import (
	"fmt"
	"sort"

	"tlssync/internal/interp"
	"tlssync/internal/ir"
)

// Options configure a verification run.
type Options struct {
	// CloneEnabled mirrors the memsync pass's Clone option. When cloning
	// is disabled (the ablation configuration), synchronization
	// legitimately lives in shared originals reachable from everywhere,
	// so the clone-path rule does not apply.
	CloneEnabled bool

	// Binary labels the report ("base", "train", "ref", ...).
	Binary string
}

// Binary verifies one compiled program variant against the speculative
// regions it was compiled for and returns the structured findings.
func Binary(prog *ir.Program, regs []*interp.Region, opts Options) *Report {
	v := &verifier{prog: prog, regs: regs, opts: opts}
	v.checkChannelRange()
	v.checkWaitOrder()
	v.checkSignalAdjacent()
	v.buildRegionScopes()
	v.checkSignalRelease()
	v.checkSyncCycles()
	v.checkClonePaths()
	sort.SliceStable(v.diags, func(i, j int) bool {
		a, b := v.diags[i], v.diags[j]
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.InstrID != b.InstrID {
			return a.InstrID < b.InstrID
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.SyncID < b.SyncID
	})
	return &Report{Binary: opts.Binary, Diags: v.diags}
}

type verifier struct {
	prog  *ir.Program
	regs  []*interp.Region
	opts  Options
	diags []Diagnostic

	// scopes holds the per-region analysis context built by
	// buildRegionScopes and shared by the region-scoped rules.
	scopes []*regionScope
	// mayRel[f][s]: calling f may release channel s (a signal.m or
	// signal.mnull for s can execute, directly or transitively).
	mayRel map[*ir.Func]map[int]bool
	// mustRel[f][s]: every entry→ret path of f releases channel s.
	mustRel map[*ir.Func]map[int]bool
}

func (v *verifier) diag(d Diagnostic) { v.diags = append(v.diags, d) }

// isMemSyncOp reports whether op is one of the memory-synchronization
// operations inserted by the memsync pass.
func isMemSyncOp(op ir.Op) bool {
	switch op {
	case ir.WaitMemAddr, ir.WaitMemVal, ir.CheckFwd, ir.LoadSync,
		ir.SelectFwd, ir.SignalMem, ir.SignalMemNull:
		return true
	}
	return false
}

// checkChannelRange verifies every sync operand names an allocated
// channel (rule channel-range).
func (v *verifier) checkChannelRange() {
	for _, f := range v.prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				var limit int64
				var kind string
				switch {
				case isMemSyncOp(in.Op):
					limit, kind = int64(v.prog.NumMemSyncs), "memory sync"
				case in.Op == ir.WaitScalar || in.Op == ir.SignalScalar:
					limit, kind = int64(v.prog.NumScalarChans), "scalar channel"
				default:
					continue
				}
				if in.Imm < 0 || in.Imm >= limit {
					v.diag(Diagnostic{
						Rule: RuleChannelRange, Severity: SevError,
						Func: f.Name, Block: b.Index, SyncID: int(in.Imm),
						InstrID: in.ID, Pos: in.Pos,
						Message: fmt.Sprintf("%v names %s %d, but only %d are allocated",
							in, kind, in.Imm, limit),
					})
				}
			}
		}
	}
}

// Consumer-protocol stages for the wait-order state machine.
const (
	stIdle  = iota // no sequence in progress
	stWaitA        // wait.ma executed
	stCheck        // checkfwd executed
	stWaitV        // wait.mv executed
	stLoad         // load.sync executed; select pending
)

var stageNames = [...]string{"idle", "wait.ma", "checkfwd", "wait.mv", "load.sync"}

// checkWaitOrder verifies the five-instruction consumer protocol
// (wait.ma; checkfwd; wait.mv; load.sync; select) executes in order and
// completes within a single basic block (rule wait-order). The memsync
// pass always emits the sequence contiguously in the block of the load
// it replaces, so in-block completion is an invariant of legitimate
// output — and it implies the dominance property: every load.sync and
// select is dominated, in protocol order, by its wait pair.
func (v *verifier) checkWaitOrder() {
	for _, f := range v.prog.Funcs {
		for _, b := range f.Blocks {
			v.checkWaitOrderBlock(f, b)
		}
	}
}

func (v *verifier) checkWaitOrderBlock(f *ir.Func, b *ir.Block) {
	state := make(map[int64]int)
	bad := func(in *ir.Instr, msg string) {
		v.diag(Diagnostic{
			Rule: RuleWaitOrder, Severity: SevError,
			Func: f.Name, Block: b.Index, SyncID: int(in.Imm),
			InstrID: in.ID, Pos: in.Pos, Message: msg,
		})
	}
	step := func(in *ir.Instr, want, next int, op string) {
		if st := state[in.Imm]; st != want {
			bad(in, fmt.Sprintf("%s for sync%d out of protocol order: expected after %s, but the sequence is at stage %q",
				op, in.Imm, stageNames[want], stageNames[st]))
		}
		state[in.Imm] = next
	}
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.WaitMemAddr:
			if st := state[in.Imm]; st != stIdle {
				bad(in, fmt.Sprintf("wait.ma restarts the consumer sequence for sync%d while a previous one is incomplete (at stage %q)",
					in.Imm, stageNames[st]))
			}
			state[in.Imm] = stWaitA
		case ir.CheckFwd:
			step(in, stWaitA, stCheck, "checkfwd")
		case ir.WaitMemVal:
			step(in, stCheck, stWaitV, "wait.mv")
		case ir.LoadSync:
			step(in, stWaitV, stLoad, "load.sync")
		case ir.SelectFwd:
			step(in, stLoad, stIdle, "select")
		case ir.Call:
			//lint:ignore D001 one diagnostic per interrupted key and an idempotent reset; the emitted set is order-free and reports are position-sorted at assembly
			for s, st := range state {
				if st != stIdle {
					bad(in, fmt.Sprintf("consumer sequence for sync%d interrupted by a call (at stage %q)",
						s, stageNames[st]))
					state[s] = stIdle
				}
			}
		}
	}
	// Sorted for deterministic diagnostics.
	var pending []int64
	for s, st := range state {
		if st != stIdle {
			pending = append(pending, s)
		}
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	for _, s := range pending {
		t := b.Instrs[len(b.Instrs)-1]
		bad(t, fmt.Sprintf("consumer sequence for sync%d incomplete at end of block (stopped after %s): load.sync/select are not dominated by their waits on every path",
			s, stageNames[state[s]]))
	}
}

// checkSignalAdjacent verifies every signal.m sits immediately after
// the store whose address/value it forwards (rule signal-adjacent), so
// no instruction — in particular no later store to the same address —
// separates production from forwarding. Consecutive signal.m
// instructions may stack behind one store when the same store belongs
// to several groups (the no-clone configuration collapses references).
func (v *verifier) checkSignalAdjacent() {
	for _, f := range v.prog.Funcs {
		for _, b := range f.Blocks {
			for i, in := range b.Instrs {
				if in.Op != ir.SignalMem {
					continue
				}
				j := i - 1
				for j >= 0 && b.Instrs[j].Op == ir.SignalMem {
					j--
				}
				if j >= 0 {
					p := b.Instrs[j]
					if p.Op == ir.Store && p.A == in.A && p.B == in.B {
						continue
					}
				}
				v.diag(Diagnostic{
					Rule: RuleSignalAdjacent, Severity: SevError,
					Func: f.Name, Block: b.Index, SyncID: int(in.Imm),
					InstrID: in.ID, Pos: in.Pos,
					Message: fmt.Sprintf("%v is not immediately after the store it forwards (store [A], B with matching registers); an intervening instruction can clobber or desynchronize the forwarded value", in),
				})
			}
		}
	}
}
