package verify

import (
	"fmt"

	"tlssync/internal/interp"
	"tlssync/internal/ir"
)

// regionScope is the analysis context of one speculative region: the
// epoch-body blocks and the functions reachable by calls from the
// region, plus the channels this region is responsible for releasing.
type regionScope struct {
	region *interp.Region
	// body is the epoch body: the loop blocks minus the header. The
	// epoch ends at the back edge into the header (or at a region
	// exit), matching the scope of the memsync NULL-placement analysis.
	body map[*ir.Block]bool
	// reach is the set of functions reachable through calls from the
	// loop blocks (the code an epoch can execute outside the region
	// function itself).
	reach map[*ir.Func]bool
	// chans are the memory-sync channels attributed to this region:
	// channels signaled in its body or its call closure, except those
	// directly owned by a different region's body (nested regions).
	chans []int
}

// releaseKind classifies an instruction's effect on a channel.
type releaseKind int

const (
	relNone releaseKind = iota
	relMay              // may release on some executions (call into a may-release callee)
	relMust             // releases on every execution (signal.m, signal.mnull, must-release callee)
)

// releaseEffect returns how executing in affects channel s, given the
// current call summaries.
func (v *verifier) releaseEffect(in *ir.Instr, s int) releaseKind {
	switch in.Op {
	case ir.SignalMem, ir.SignalMemNull:
		if in.Imm == int64(s) {
			return relMust
		}
	case ir.Call:
		callee := v.prog.FuncMap[in.Sym]
		if callee == nil {
			return relNone
		}
		if v.mustRel[callee][s] {
			return relMust
		}
		if v.mayRel[callee][s] {
			return relMay
		}
	}
	return relNone
}

// buildRegionScopes computes the per-region scopes, the channel
// attribution, and the may/must-release call summaries shared by the
// signal-release and sync-cycle rules.
func (v *verifier) buildRegionScopes() {
	v.buildReleaseSummaries()

	// directOwner[s] is the region whose loop blocks directly contain a
	// sync operation for s: nested or callee-hosted regions must not
	// have their channels attributed to an enclosing region.
	directOwner := make(map[int]*interp.Region)
	for _, r := range v.regs {
		for b := range r.Loop.Blocks {
			for _, in := range b.Instrs {
				if isMemSyncOp(in.Op) && directOwner[int(in.Imm)] == nil {
					directOwner[int(in.Imm)] = r
				}
			}
		}
	}

	for _, r := range v.regs {
		sc := &regionScope{
			region: r,
			body:   make(map[*ir.Block]bool, len(r.Loop.Blocks)),
			reach:  v.calleeReach(r.Loop.Blocks),
		}
		for b := range r.Loop.Blocks {
			if b != r.Loop.Header {
				sc.body[b] = true
			}
		}
		signaled := make(map[int]bool)
		for b := range r.Loop.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.SignalMem || in.Op == ir.SignalMemNull {
					signaled[int(in.Imm)] = true
				}
			}
		}
		for f := range sc.reach {
			for s, may := range v.mayRel[f] {
				if may {
					signaled[s] = true
				}
			}
		}
		for s := 0; s < v.prog.NumMemSyncs; s++ {
			if !signaled[s] {
				continue
			}
			if o := directOwner[s]; o != nil && o != r {
				continue
			}
			sc.chans = append(sc.chans, s)
		}
		v.scopes = append(v.scopes, sc)
	}
}

// calleeReach returns the closure of functions reachable via calls
// starting from the given blocks.
func (v *verifier) calleeReach(blocks map[*ir.Block]bool) map[*ir.Func]bool {
	out := make(map[*ir.Func]bool)
	var work []*ir.Func
	add := func(f *ir.Func) {
		if f != nil && !out[f] {
			out[f] = true
			work = append(work, f)
		}
	}
	//lint:ignore D001 seeds a worklist whose fixpoint (the reachable-callee set) is the same for every seed order
	for b := range blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.Call {
				add(v.prog.FuncMap[in.Sym])
			}
		}
	}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.Call {
					add(v.prog.FuncMap[in.Sym])
				}
			}
		}
	}
	return out
}

// buildReleaseSummaries computes, for every (function, channel) pair,
// whether calling the function may release the channel and whether it
// must (releases on every entry→ret path). The must summary is an
// increasing fixpoint over the call graph, so mutual recursion among
// may-release functions conservatively stays "may".
func (v *verifier) buildReleaseSummaries() {
	v.mayRel = make(map[*ir.Func]map[int]bool, len(v.prog.Funcs))
	v.mustRel = make(map[*ir.Func]map[int]bool, len(v.prog.Funcs))
	for _, f := range v.prog.Funcs {
		v.mayRel[f] = make(map[int]bool)
		v.mustRel[f] = make(map[int]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.SignalMem || in.Op == ir.SignalMemNull {
					v.mayRel[f][int(in.Imm)] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range v.prog.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op != ir.Call {
						continue
					}
					callee := v.prog.FuncMap[in.Sym]
					if callee == nil {
						continue
					}
					for s, may := range v.mayRel[callee] {
						if may && !v.mayRel[f][s] {
							v.mayRel[f][s] = true
							changed = true
						}
					}
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range v.prog.Funcs {
			//lint:ignore D001 monotone boolean dataflow — the fixpoint does not depend on propagation order
			for s, may := range v.mayRel[f] {
				if !may || v.mustRel[f][s] {
					continue
				}
				if v.allPathsRelease(f, s) {
					v.mustRel[f][s] = true
					changed = true
				}
			}
		}
	}
}

// allPathsRelease reports whether every entry→ret path of f releases
// channel s under the current must summaries (forward must-analysis).
func (v *verifier) allPathsRelease(f *ir.Func, s int) bool {
	out := make(map[*ir.Block]bool, len(f.Blocks))
	reachable := make(map[*ir.Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		out[b] = true // optimistic top for the must meet
	}
	var order []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		reachable[b] = true
		order = append(order, b)
		for _, sb := range b.Succs {
			if !reachable[sb] {
				dfs(sb)
			}
		}
	}
	dfs(f.Entry)
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			rel := false
			if b != f.Entry {
				rel = true
				for _, p := range b.Preds {
					if reachable[p] {
						rel = rel && out[p]
					}
				}
			}
			for _, in := range b.Instrs {
				if v.releaseEffect(in, s) == relMust {
					rel = true
				}
			}
			if rel != out[b] {
				out[b] = rel
				changed = true
			}
		}
	}
	for _, b := range order {
		if t := b.Terminator(); t != nil && t.Op == ir.Ret && !out[b] {
			return false
		}
	}
	return true
}

// relAnalysis holds the per-(region, channel) release dataflow facts.
type relAnalysis struct {
	sc *regionScope
	s  int
	// mustIn/mustOut: on every path from the epoch start to this block
	// boundary, the channel has been released.
	mustIn, mustOut map[*ir.Block]bool
	// mayFromStart: a release may still execute from the start of this
	// block before the epoch ends (following in-scope edges only).
	mayFromStart map[*ir.Block]bool
}

// analyzeRelease runs the forward must-released and backward
// may-release-later analyses for one (region, channel) pair over the
// epoch body.
func (v *verifier) analyzeRelease(sc *regionScope, s int) *relAnalysis {
	a := &relAnalysis{
		sc: sc, s: s,
		mustIn:       make(map[*ir.Block]bool, len(sc.body)),
		mustOut:      make(map[*ir.Block]bool, len(sc.body)),
		mayFromStart: make(map[*ir.Block]bool, len(sc.body)),
	}
	for b := range sc.body {
		a.mustOut[b] = true // optimistic top
	}
	blocks := v.bodyOrder(sc)
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			in := true
			for _, p := range b.Preds {
				if !sc.body[p] {
					// Edge from the header (epoch start) or from outside
					// the region: nothing released yet.
					in = false
					break
				}
				in = in && a.mustOut[p]
			}
			rel := in
			for _, instr := range b.Instrs {
				if v.releaseEffect(instr, s) == relMust {
					rel = true
				}
			}
			if in != a.mustIn[b] || rel != a.mustOut[b] {
				a.mustIn[b], a.mustOut[b] = in, rel
				changed = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for i := len(blocks) - 1; i >= 0; i-- {
			b := blocks[i]
			if a.mayFromStart[b] {
				continue
			}
			may := false
			for _, instr := range b.Instrs {
				if v.releaseEffect(instr, s) != relNone {
					may = true
					break
				}
			}
			if !may {
				for _, sb := range b.Succs {
					if sc.body[sb] && a.mayFromStart[sb] {
						may = true
						break
					}
				}
			}
			if may {
				a.mayFromStart[b] = true
				changed = true
			}
		}
	}
	return a
}

// bodyOrder returns the epoch-body blocks in reverse postorder of the
// region function (a stable, roughly topological iteration order).
func (v *verifier) bodyOrder(sc *regionScope) []*ir.Block {
	var out []*ir.Block
	for _, b := range sc.region.Func.Blocks {
		if sc.body[b] {
			out = append(out, b)
		}
	}
	return out
}

// checkSignalRelease proves the signal-completeness property (rule
// signal-release): at every point of the epoch body, each group channel
// has either already been released on all incoming paths or can still
// be released before the epoch ends. A point failing both means some
// path starves the channel's consumer until the implicit end-of-epoch
// NULL — exactly the situation the NULL-placement analysis exists to
// prevent. Callees that signal on some paths but not all (a dropped
// NULL inside a clone) are reported with an entry→ret counterexample.
func (v *verifier) checkSignalRelease() {
	reportedFn := make(map[*ir.Func]map[int]bool)
	for _, sc := range v.scopes {
		for _, s := range sc.chans {
			a := v.analyzeRelease(sc, s)
			v.fireStarvedPoint(sc, s, a)
			//lint:ignore D001 one report per (f,s) pair behind the reportedFn dedup set; the set is order-free and reports are position-sorted at assembly
			for f := range sc.reach {
				if f == sc.region.Func || !v.mayRel[f][s] || v.mustRel[f][s] {
					continue
				}
				if reportedFn[f] == nil {
					reportedFn[f] = make(map[int]bool)
				}
				if reportedFn[f][s] {
					continue
				}
				reportedFn[f][s] = true
				path := v.storelessRetPath(f, s)
				v.diag(Diagnostic{
					Rule: RuleSignalRelease, Severity: SevError,
					Func: f.Name, Block: -1, SyncID: s,
					Message: fmt.Sprintf("called from region %d, %s signals sync%d on some paths but not all: a storeless path is missing its NULL signal",
						sc.region.ID, f.Name, s),
					Path: path,
				})
			}
		}
	}
}

// fireStarvedPoint reports the first epoch-body point (in block order)
// where a channel is neither already released nor releasable later.
func (v *verifier) fireStarvedPoint(sc *regionScope, s int, a *relAnalysis) {
	for _, b := range v.bodyOrder(sc) {
		// May-release positions in this block, as a suffix count.
		suffixMay := make([]bool, len(b.Instrs)+1)
		later := false
		for _, sb := range b.Succs {
			if sc.body[sb] && a.mayFromStart[sb] {
				later = true
			}
		}
		suffixMay[len(b.Instrs)] = later
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			suffixMay[i] = suffixMay[i+1] || v.releaseEffect(b.Instrs[i], s) != relNone
		}
		cur := a.mustIn[b]
		report := func(in *ir.Instr, where string) {
			v.diag(Diagnostic{
				Rule: RuleSignalRelease, Severity: SevError,
				Func: sc.region.Func.Name, Block: b.Index, SyncID: s,
				InstrID: in.ID, Pos: in.Pos,
				Message: fmt.Sprintf("sync%d is not released on every path through the epoch body: %s, no signal has occurred on some incoming path and none can occur before the epoch ends (consumer starves until the implicit end-of-epoch NULL)",
					s, where),
				Path: v.starvedPath(sc, a, b),
			})
		}
		if !cur && !suffixMay[0] {
			report(b.Instrs[0], fmt.Sprintf("at entry of block b%d", b.Index))
			return
		}
		for i, in := range b.Instrs {
			if v.releaseEffect(in, s) == relMust {
				cur = true
			}
			if !cur && !suffixMay[i+1] {
				report(in, fmt.Sprintf("after %v", in))
				return
			}
		}
	}
}

// starvedPath reconstructs one epoch path from the epoch start to the
// firing block along which no release occurs, preferring predecessors
// whose must-released-out fact is false.
func (v *verifier) starvedPath(sc *regionScope, a *relAnalysis, fire *ir.Block) []string {
	var rev []*ir.Block
	visited := map[*ir.Block]bool{fire: true}
	cur := fire
	for {
		rev = append(rev, cur)
		var next *ir.Block
		atEntry := false
		for _, p := range cur.Preds {
			if !sc.body[p] {
				atEntry = true // reached the epoch start (header edge)
				continue
			}
			if visited[p] {
				continue
			}
			// Prefer a predecessor along which the channel may still be
			// unreleased — that is the path the counterexample follows.
			if next == nil || (!a.mustOut[p] && a.mustOut[next]) {
				next = p
			}
		}
		if atEntry || next == nil {
			break
		}
		visited[next] = true
		cur = next
	}
	path := make([]string, 0, len(rev)+1)
	path = append(path, fmt.Sprintf("b%d(header)", sc.region.Loop.Header.Index))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, fmt.Sprintf("b%d", rev[i].Index))
	}
	return path
}

// storelessRetPath finds one entry→ret path of f that provably cannot
// release channel s (it avoids every block containing an unconditional
// release), as the counterexample for a callee missing NULL coverage.
func (v *verifier) storelessRetPath(f *ir.Func, s int) []string {
	releasing := func(b *ir.Block) bool {
		for _, in := range b.Instrs {
			if v.releaseEffect(in, s) == relMust {
				return true
			}
		}
		return false
	}
	type node struct {
		b    *ir.Block
		prev *node
	}
	seen := map[*ir.Block]bool{}
	queue := []*node{}
	if !releasing(f.Entry) {
		queue = append(queue, &node{b: f.Entry})
		seen[f.Entry] = true
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if t := n.b.Terminator(); t != nil && t.Op == ir.Ret {
			var rev []*ir.Block
			for c := n; c != nil; c = c.prev {
				rev = append(rev, c.b)
			}
			path := make([]string, 0, len(rev))
			for i := len(rev) - 1; i >= 0; i-- {
				path = append(path, fmt.Sprintf("b%d", rev[i].Index))
			}
			return path
		}
		for _, sb := range n.b.Succs {
			if !seen[sb] && !releasing(sb) {
				seen[sb] = true
				queue = append(queue, &node{b: sb, prev: n})
			}
		}
	}
	return nil
}
