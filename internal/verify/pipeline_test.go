package verify_test

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"tlssync/internal/core"
	"tlssync/internal/ir"
	"tlssync/internal/progen"
	"tlssync/internal/verify"
	"tlssync/internal/workloads"
)

// TestBenchmarksVerifyClean proves the verifier has zero false
// positives on every binary of every built-in benchmark: the default
// config already enforces (ModeEnforce fails the compile on errors),
// so this asserts the stronger "zero diagnostics, warnings included".
func TestBenchmarksVerifyClean(t *testing.T) {
	ws := workloads.All()
	if testing.Short() {
		ws = ws[:4]
	}
	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			b, err := core.Compile(core.Config{Source: w.Source, TrainInput: w.Train, RefInput: w.Ref, Seed: 42})
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			for _, name := range []string{"plain", "base", "train", "ref"} {
				rep := b.VerifyReports[name]
				if len(rep.Diags) != 0 {
					t.Errorf("%s/%s not diagnostic-free:\n%s", w.Name, name, rep)
				}
			}
		})
	}
}

// TestNoCloneVerifyClean re-proves the benchmarks under the no-clone
// ablation, where signals stack behind shared stores and the
// clone-path rule is disabled.
func TestNoCloneVerifyClean(t *testing.T) {
	ws := workloads.All()
	if testing.Short() {
		ws = ws[:4]
	}
	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			if _, err := core.Compile(core.Config{Source: w.Source, TrainInput: w.Train, RefInput: w.Ref, Seed: 42, NoClone: true}); err != nil {
				t.Errorf("%s (NoClone): %v", w.Name, err)
			}
		})
	}
}

// TestProgenVerifyFuzz is the fuzz-verify property test: every binary
// compiled from a generated program verifies with zero errors.
// (Warnings are permitted: progen freely generates interleaved
// read-modify-writes whose epochs genuinely serialize, and the
// sync-cycle rule is supposed to flag those — see TestCycleWarning.)
// N defaults to 60 (20 under -short); `make verify-fuzz` sets
// VERIFY_FUZZ_N=200 for the long acceptance run.
func TestProgenVerifyFuzz(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 20
	}
	if s := os.Getenv("VERIFY_FUZZ_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad VERIFY_FUZZ_N %q: %v", s, err)
		}
		n = v
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			t.Parallel()
			src := progen.Generate(seed, progen.DefaultConfig())
			in := []int64{int64(seed), int64(seed * 3)}
			b, err := core.Compile(core.Config{Source: src, RefInput: in, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
			}
			for _, name := range []string{"plain", "base", "train", "ref"} {
				rep := b.VerifyReports[name]
				if !rep.Clean() {
					t.Errorf("seed %d %s has errors:\n%s\nsource:\n%s", seed, name, rep, src)
				}
				for _, d := range rep.Warnings() {
					t.Logf("seed %d %s: %s", seed, name, d)
				}
			}
		})
	}
}

// TestCycleWarning: interleaved read-modify-writes on two globals give
// every epoch a consume-before-produce ordering on both channels — a
// legitimate (if slow) program the verifier must flag as a warning,
// not an error, and the default enforce mode must still compile.
func TestCycleWarning(t *testing.T) {
	src := `
var a int;
var b int;
func main() {
	var i int;
	parallel for i = 0; i < 300; i = i + 1 {
		a = a + b;
		b = b + a;
	}
	print(a + b);
}
`
	bld, err := core.Compile(core.Config{Source: src, RefInput: []int64{1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := bld.VerifyReports["ref"]
	if len(rep.Errors()) != 0 {
		t.Errorf("unexpected errors:\n%s", rep)
	}
	found := false
	for _, d := range rep.Warnings() {
		if d.Rule == verify.RuleSyncCycle {
			found = true
			if len(d.Path) == 0 {
				t.Error("sync-cycle warning has no counterexample path")
			}
		}
	}
	if !found {
		t.Errorf("expected a sync-cycle warning:\n%s", rep)
	}
}

// --- Mutation tests -------------------------------------------------
//
// Each test compiles a clean program, corrupts the ref binary the way a
// buggy pass would, and asserts the matching rule — and only an
// appropriate rule — catches it.

// guardedCalleeSrc hides the store behind a conditional inside a
// callee, so the compiled ref binary carries clones, conditional NULL
// signals, and the full consumer protocol.
const guardedCalleeSrc = `
var g int;
var acc int;
func maybe(i int) {
	if i % 4 == 0 {
		g = g + i;
	}
}
func main() {
	var i int;
	parallel for i = 0; i < 400; i = i + 1 {
		acc = acc + g;
		maybe(i);
	}
	print(acc);
}
`

// guardedStoreSrc keeps the conditional store inline in the epoch
// body, so the NULL signal sits on a frontier block of the loop.
const guardedStoreSrc = `
var g int;
var acc int;
var work [256]int;
func main() {
	var i int;
	parallel for i = 0; i < 400; i = i + 1 {
		acc = acc + g;
		if i % 3 == 0 {
			g = g + i;
		}
		work[i % 256] = acc;
	}
	print(acc);
}
`

func mutationBuild(t *testing.T, src string) *core.Build {
	t.Helper()
	b, err := core.Compile(core.Config{Source: src, RefInput: []int64{1, 2, 3}, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// reverify re-runs the verifier over the (mutated) ref binary.
func reverify(b *core.Build) *verify.Report {
	return verify.Binary(b.Ref, b.RegionsFor(b.Ref), verify.Options{CloneEnabled: true, Binary: "mutated"})
}

func wantMutationCaught(t *testing.T, rep *verify.Report, rule string) {
	t.Helper()
	if rep.Clean() {
		t.Fatalf("mutation not caught: report clean\n%s", rep)
	}
	for _, d := range rep.Errors() {
		if d.Rule == rule {
			t.Logf("caught: %s", d)
			return
		}
	}
	t.Errorf("mutation caught by the wrong rule, want %s:\n%s", rule, rep)
}

// removeFirst deletes the first instruction with the given op,
// reporting whether one was found.
func removeFirst(p *ir.Program, op ir.Op) bool {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i, in := range b.Instrs {
				if in.Op == op {
					b.Instrs = append(b.Instrs[:i:i], b.Instrs[i+1:]...)
					return true
				}
			}
		}
	}
	return false
}

// TestMutationDroppedNullSignal deletes the conditional NULL signals
// of the conditionally-stored group: its storeless path now starves
// the consumer, which signal-release must report with a
// counterexample path. (Dropping a single NULL is not enough: the
// pass places runtime-redundant NULLs behind unconditional signals,
// and the verifier correctly treats removing one of those as a no-op.)
func TestMutationDroppedNullSignal(t *testing.T) {
	b := mutationBuild(t, guardedStoreSrc)
	// The conditionally-stored group is the one whose signal.m sits in a
	// block that does not post-dominate the body — identify it as a
	// channel that has both a signal.m and a NULL somewhere.
	hasSig := map[int64]bool{}
	for _, f := range b.Ref.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Op == ir.SignalMem {
					hasSig[in.Imm] = true
				}
			}
		}
	}
	dropped := false
	for _, f := range b.Ref.Funcs {
		for _, blk := range f.Blocks {
			kept := blk.Instrs[:0]
			for _, in := range blk.Instrs {
				if in.Op == ir.SignalMemNull && hasSig[in.Imm] {
					dropped = true
					continue
				}
				kept = append(kept, in)
			}
			blk.Instrs = kept
		}
	}
	if !dropped {
		t.Fatal("ref binary has no NULL signal to drop")
	}
	rep := reverify(b)
	wantMutationCaught(t, rep, verify.RuleSignalRelease)
	for _, d := range rep.Errors() {
		if d.Rule == verify.RuleSignalRelease && len(d.Path) == 0 {
			t.Errorf("signal-release diagnostic has no counterexample path: %s", d)
		}
	}
}

// TestMutationDroppedCalleeNullSignal drops the NULL signal inside a
// cloned callee instead: the callee-level sub-rule of signal-release
// must flag the storeless entry→ret path.
func TestMutationDroppedCalleeNullSignal(t *testing.T) {
	b := mutationBuild(t, guardedCalleeSrc)
	removed := false
	for _, f := range b.Ref.Funcs {
		if !strings.Contains(f.Name, "$m") {
			continue
		}
		for _, blk := range f.Blocks {
			for i, in := range blk.Instrs {
				if in.Op == ir.SignalMemNull {
					blk.Instrs = append(blk.Instrs[:i:i], blk.Instrs[i+1:]...)
					removed = true
					break
				}
			}
			if removed {
				break
			}
		}
		if removed {
			break
		}
	}
	if !removed {
		t.Fatal("no NULL signal inside a clone to drop")
	}
	wantMutationCaught(t, reverify(b), verify.RuleSignalRelease)
}

// TestMutationSignalReordered swaps a signal.m with the store it
// forwards, the way a buggy scheduling pass would: signal-adjacent
// must object to the separation.
func TestMutationSignalReordered(t *testing.T) {
	b := mutationBuild(t, guardedCalleeSrc)
	swapped := false
	for _, f := range b.Ref.Funcs {
		for _, blk := range f.Blocks {
			for i := 1; i < len(blk.Instrs); i++ {
				if blk.Instrs[i].Op == ir.SignalMem && blk.Instrs[i-1].Op == ir.Store {
					blk.Instrs[i-1], blk.Instrs[i] = blk.Instrs[i], blk.Instrs[i-1]
					swapped = true
					break
				}
			}
			if swapped {
				break
			}
		}
		if swapped {
			break
		}
	}
	if !swapped {
		t.Fatal("no store+signal.m pair to reorder")
	}
	wantMutationCaught(t, reverify(b), verify.RuleSignalAdjacent)
}

// TestMutationRetargetedClone redirects a region call site from the
// synchronized clone back to the unclone original — the synchronized
// clone becomes unreachable from the region, which clone-path reports.
func TestMutationRetargetedClone(t *testing.T) {
	b := mutationBuild(t, guardedCalleeSrc)
	retargeted := false
	for _, f := range b.Ref.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Op == ir.Call {
					if at := strings.Index(in.Sym, "$m"); at >= 0 {
						in.Sym = in.Sym[:at]
						retargeted = true
					}
				}
			}
		}
	}
	if !retargeted {
		t.Fatal("no clone call site to retarget")
	}
	wantMutationCaught(t, reverify(b), verify.RuleClonePath)
}

// TestMutationDroppedWait deletes a wait.mv: the consumer sequence
// runs its load.sync without the value wait, which wait-order reports.
func TestMutationDroppedWait(t *testing.T) {
	b := mutationBuild(t, guardedCalleeSrc)
	if !removeFirst(b.Ref, ir.WaitMemVal) {
		t.Fatal("ref binary has no wait.mv to drop")
	}
	wantMutationCaught(t, reverify(b), verify.RuleWaitOrder)
}
