package verify

import (
	"fmt"
	"sort"
	"strings"

	"tlssync/internal/dataflow"
	"tlssync/internal/ir"
)

// checkSyncCycles runs the conservative cross-group ordering check
// (rule sync-cycle, warning severity). For each region it builds a
// graph over the region's channels with an edge u→v when every
// possibly-first release site of v is preceded, on all incoming epoch
// paths, by a completed consumer wait on u. An edge means an epoch
// cannot produce v's value before consuming u's; a cycle among two or
// more channels therefore forces every epoch to fully consume its
// predecessor's values before producing its own on all the involved
// channels — the groups execute serialized, defeating the overlap the
// synchronization was meant to preserve. With the forward-only
// prev→next channels and the first epoch bootstrapped from memory a
// true deadlock cannot occur, so this is a performance warning, not a
// soundness error.
func (v *verifier) checkSyncCycles() {
	for _, sc := range v.scopes {
		if len(sc.chans) < 2 {
			continue
		}
		v.checkRegionCycles(sc)
	}
}

func (v *verifier) checkRegionCycles(sc *regionScope) {
	cs := sc.chans
	idx := make(map[int]int, len(cs))
	for i, s := range cs {
		idx[s] = i
	}
	n := len(cs)

	// Forward must-analysis of the set of channels whose consumer
	// protocol has completed (select executed). Out-of-scope
	// predecessors are the epoch start: nothing waited yet. The meet is
	// set intersection, so the analysis starts from the optimistic full
	// set. Waits inside callees are ignored (conservative toward
	// silence: fewer recorded waits mean fewer edges).
	waitedIn := make(map[*ir.Block]dataflow.Bitset, len(sc.body))
	full := dataflow.NewBitset(n)
	for i := 0; i < n; i++ {
		full.Set(i)
	}
	blocks := v.bodyOrder(sc)
	for _, b := range blocks {
		waitedIn[b] = full.Copy()
	}
	transfer := func(b *ir.Block, w dataflow.Bitset) {
		for _, in := range b.Instrs {
			if in.Op == ir.SelectFwd {
				if i, ok := idx[int(in.Imm)]; ok {
					w.Set(i)
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			in := full.Copy()
			for _, p := range b.Preds {
				if !sc.body[p] {
					in = dataflow.NewBitset(n) // epoch start: nothing waited
					break
				}
				po := waitedIn[p].Copy()
				transfer(p, po)
				in.AndInto(po)
			}
			cur := waitedIn[b]
			if !bitsetEqual(cur, in) {
				waitedIn[b] = in
				changed = true
			}
		}
	}

	// Per-channel must-released facts locate the possibly-first release
	// sites; accumulate the intersection of waited sets over them.
	rel := make([]*relAnalysis, n)
	for i, s := range cs {
		rel[i] = v.analyzeRelease(sc, s)
	}
	siteWaited := make([]dataflow.Bitset, n)
	sawSite := make([]bool, n)
	for i := range siteWaited {
		siteWaited[i] = full.Copy()
	}
	for _, b := range blocks {
		w := waitedIn[b].Copy()
		mustRel := make([]bool, n)
		for i := range cs {
			mustRel[i] = rel[i].mustIn[b]
		}
		for _, in := range b.Instrs {
			for i, s := range cs {
				if eff := v.releaseEffect(in, s); eff != relNone && !mustRel[i] {
					sawSite[i] = true
					siteWaited[i].AndInto(w)
				}
				if v.releaseEffect(in, s) == relMust {
					mustRel[i] = true
				}
			}
			if in.Op == ir.SelectFwd {
				if i, ok := idx[int(in.Imm)]; ok {
					w.Set(i)
				}
			}
		}
	}

	// Edge u→v: v's every possibly-first release waits on u first.
	edges := make([][]bool, n)
	for vi := range edges {
		edges[vi] = make([]bool, n)
	}
	for vi := 0; vi < n; vi++ {
		if !sawSite[vi] {
			continue
		}
		for ui := 0; ui < n; ui++ {
			if ui != vi && siteWaited[vi].Has(ui) {
				edges[ui][vi] = true
			}
		}
	}

	// Strongly connected components via pairwise reachability (the
	// channel count per region is tiny).
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = append([]bool(nil), edges[i]...)
		reach[i][i] = true
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				reach[i][j] = reach[i][j] || reach[k][j]
			}
		}
	}
	inComp := make([]bool, n)
	for i := 0; i < n; i++ {
		if inComp[i] {
			continue
		}
		var comp []int
		for j := i; j < n; j++ {
			if reach[i][j] && reach[j][i] {
				comp = append(comp, j)
			}
		}
		if len(comp) < 2 {
			continue
		}
		for _, j := range comp {
			inComp[j] = true
		}
		names := make([]string, len(comp))
		var edgeList []string
		for k, j := range comp {
			names[k] = fmt.Sprintf("sync%d", cs[j])
			for _, l := range comp {
				if edges[j][l] {
					edgeList = append(edgeList, fmt.Sprintf("wait sync%d before signal sync%d", cs[j], cs[l]))
				}
			}
		}
		sort.Strings(edgeList)
		v.diag(Diagnostic{
			Rule: RuleSyncCycle, Severity: SevWarn,
			Func:  sc.region.Func.Name,
			Block: sc.region.Loop.Header.Index, SyncID: cs[comp[0]],
			Message: fmt.Sprintf("channels %s form an intra-epoch wait→signal ordering cycle in region %d: every epoch must consume its predecessor's values before producing its own, serializing the groups",
				strings.Join(names, ", "), sc.region.ID),
			Path: edgeList,
		})
	}
}

func bitsetEqual(a, b dataflow.Bitset) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
