package verify

import (
	"fmt"

	"tlssync/internal/ir"
)

// checkClonePaths proves clone-path soundness (rule clone-path): when
// call-path cloning is enabled, memory synchronization must live only
// in code reachable through the retargeted call sites inside
// speculative region bodies — in the region functions' own epoch
// bodies, or in (clones of) callees reached from them — and never in
// code reachable from outside the regions through the unclone
// originals. A synchronized function that is unreachable from every
// region body is the signature of a call site retargeted back to its
// original: the clone carrying the synchronization silently stops
// executing and the epoch runs unsynchronized code.
func (v *verifier) checkClonePaths() {
	if !v.opts.CloneEnabled || len(v.regs) == 0 {
		return
	}
	regionFuncs := make(map[*ir.Func]bool, len(v.regs))
	regionBody := make(map[*ir.Block]bool)
	for _, r := range v.regs {
		regionFuncs[r.Func] = true
		for b := range r.Loop.Blocks {
			regionBody[b] = true
		}
	}

	// insideReach: functions reachable through calls made from any
	// region's loop blocks (transitively, through any block of a
	// reached function).
	inside := make(map[*ir.Func]bool)
	for _, r := range v.regs {
		for f := range v.calleeReach(r.Loop.Blocks) {
			inside[f] = true
		}
	}

	// outsideReach: functions reachable from the program entry through
	// call chains that never pass through a region body block.
	outside := make(map[*ir.Func]bool)
	var work []*ir.Func
	addOutside := func(f *ir.Func) {
		if f != nil && !outside[f] {
			outside[f] = true
			work = append(work, f)
		}
	}
	if entry := v.prog.FuncMap["main"]; entry != nil {
		addOutside(entry)
	} else if len(v.prog.Funcs) > 0 {
		addOutside(v.prog.Funcs[0])
	}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		for _, b := range f.Blocks {
			if regionBody[b] {
				continue
			}
			for _, in := range b.Instrs {
				if in.Op == ir.Call {
					addOutside(v.prog.FuncMap[in.Sym])
				}
			}
		}
	}

	firstSync := func(f *ir.Func) (*ir.Block, *ir.Instr) {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if isMemSyncOp(in.Op) {
					return b, in
				}
			}
		}
		return nil, nil
	}

	for _, f := range v.prog.Funcs {
		if regionFuncs[f] {
			// Region functions host their synchronization inside their
			// own region bodies; anything outside leaks into the
			// sequential part of the program.
			for _, b := range f.Blocks {
				if regionBody[b] {
					continue
				}
				for _, in := range b.Instrs {
					if isMemSyncOp(in.Op) {
						v.diag(Diagnostic{
							Rule: RuleClonePath, Severity: SevError,
							Func: f.Name, Block: b.Index, SyncID: int(in.Imm),
							InstrID: in.ID, Pos: in.Pos,
							Message: fmt.Sprintf("%v sits outside every speculative region body: synchronization would execute in sequential code", in),
						})
					}
				}
			}
			continue
		}
		b, in := firstSync(f)
		if in == nil {
			continue
		}
		if !inside[f] {
			v.diag(Diagnostic{
				Rule: RuleClonePath, Severity: SevError,
				Func: f.Name, Block: b.Index, SyncID: int(in.Imm),
				InstrID: in.ID, Pos: in.Pos,
				Message: fmt.Sprintf("synchronized function %s is unreachable from every speculative region body — was a call site retargeted back to the unclone original?", f.Name),
			})
		}
		if outside[f] {
			v.diag(Diagnostic{
				Rule: RuleClonePath, Severity: SevError,
				Func: f.Name, Block: b.Index, SyncID: int(in.Imm),
				InstrID: in.ID, Pos: in.Pos,
				Message: fmt.Sprintf("synchronized function %s is reachable from outside the speculative regions: cloning should have kept the original unsynchronized", f.Name),
			})
		}
	}
}
