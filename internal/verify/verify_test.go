package verify

import (
	"strings"
	"testing"

	"tlssync/internal/ir"
	"tlssync/internal/lang"
)

// buildFunc wraps a straight-line instruction sequence (terminator
// excluded) into a single-block function inside a fresh program with
// two memory sync channels allocated.
func buildFunc(instrs func(p *ir.Program) []*ir.Instr) *ir.Program {
	p := ir.NewProgram()
	p.NumMemSyncs = 2
	p.NumScalarChans = 2
	f := &ir.Func{Name: "f", NumRegs: 8}
	b := f.NewBlock("entry")
	f.Entry = b
	b.Instrs = append(instrs(p), p.NewInstr(ir.Ret))
	f.Renumber()
	p.AddFunc(f)
	return p
}

func syncInstr(p *ir.Program, op ir.Op, ch int64) *ir.Instr {
	in := p.NewInstr(op)
	in.Imm = ch
	return in
}

// protocol returns the five-instruction consumer sequence for channel ch.
func protocol(p *ir.Program, ch int64) []*ir.Instr {
	var out []*ir.Instr
	for _, op := range []ir.Op{ir.WaitMemAddr, ir.CheckFwd, ir.WaitMemVal, ir.LoadSync, ir.SelectFwd} {
		out = append(out, syncInstr(p, op, ch))
	}
	return out
}

func rules(rep *Report) []string {
	var out []string
	for _, d := range rep.Diags {
		out = append(out, d.Rule)
	}
	return out
}

func wantRule(t *testing.T, rep *Report, rule string) {
	t.Helper()
	for _, d := range rep.Diags {
		if d.Rule == rule {
			return
		}
	}
	t.Errorf("expected a %s diagnostic, got %v\n%s", rule, rules(rep), rep)
}

func wantClean(t *testing.T, rep *Report) {
	t.Helper()
	if len(rep.Diags) != 0 {
		t.Errorf("expected no diagnostics:\n%s", rep)
	}
}

func TestWaitOrderCleanSequence(t *testing.T) {
	p := buildFunc(func(p *ir.Program) []*ir.Instr {
		// Two interleaved-but-ordered sequences on distinct channels are
		// legal: the state machine is per-channel.
		seq := protocol(p, 0)
		seq = append(seq, protocol(p, 1)...)
		return seq
	})
	wantClean(t, Binary(p, nil, Options{Binary: "t"}))
}

func TestWaitOrderOutOfOrder(t *testing.T) {
	p := buildFunc(func(p *ir.Program) []*ir.Instr {
		// wait.mv before checkfwd.
		return []*ir.Instr{
			syncInstr(p, ir.WaitMemAddr, 0),
			syncInstr(p, ir.WaitMemVal, 0),
			syncInstr(p, ir.CheckFwd, 0),
			syncInstr(p, ir.LoadSync, 0),
			syncInstr(p, ir.SelectFwd, 0),
		}
	})
	rep := Binary(p, nil, Options{Binary: "t"})
	wantRule(t, rep, RuleWaitOrder)
	if rep.Clean() {
		t.Error("out-of-order protocol must be an error")
	}
}

func TestWaitOrderIncompleteAtBlockEnd(t *testing.T) {
	p := buildFunc(func(p *ir.Program) []*ir.Instr {
		return protocol(p, 0)[:3] // stops after wait.mv
	})
	rep := Binary(p, nil, Options{Binary: "t"})
	wantRule(t, rep, RuleWaitOrder)
	found := false
	for _, d := range rep.Diags {
		if strings.Contains(d.Message, "incomplete at end of block") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an incomplete-at-block-end message:\n%s", rep)
	}
}

func TestWaitOrderCallInterrupts(t *testing.T) {
	p := buildFunc(func(p *ir.Program) []*ir.Instr {
		seq := protocol(p, 0)
		call := p.NewInstr(ir.Call)
		call.Sym = "g"
		// Call lands between wait.mv and load.sync.
		return append(seq[:3:3], append([]*ir.Instr{call}, seq[3:]...)...)
	})
	g := &ir.Func{Name: "g"}
	gb := g.NewBlock("entry")
	g.Entry = gb
	gb.Instrs = []*ir.Instr{p.NewInstr(ir.Ret)}
	g.Renumber()
	p.AddFunc(g)
	rep := Binary(p, nil, Options{Binary: "t"})
	wantRule(t, rep, RuleWaitOrder)
	found := false
	for _, d := range rep.Diags {
		if strings.Contains(d.Message, "interrupted by a call") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a call-interruption message:\n%s", rep)
	}
}

func TestWaitOrderRestart(t *testing.T) {
	p := buildFunc(func(p *ir.Program) []*ir.Instr {
		seq := protocol(p, 0)[:2] // wait.ma, checkfwd
		return append(seq, protocol(p, 0)...)
	})
	rep := Binary(p, nil, Options{Binary: "t"})
	wantRule(t, rep, RuleWaitOrder)
	found := false
	for _, d := range rep.Diags {
		if strings.Contains(d.Message, "restarts the consumer sequence") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a restart message:\n%s", rep)
	}
}

func TestSignalAdjacentClean(t *testing.T) {
	p := buildFunc(func(p *ir.Program) []*ir.Instr {
		st := p.NewInstr(ir.Store)
		st.A, st.B = 1, 2
		sig := syncInstr(p, ir.SignalMem, 0)
		sig.A, sig.B = 1, 2
		// A second signal stacked behind the same store (the no-clone
		// configuration collapses groups onto one store) is legal too.
		sig2 := syncInstr(p, ir.SignalMem, 1)
		sig2.A, sig2.B = 1, 2
		return []*ir.Instr{st, sig, sig2}
	})
	wantClean(t, Binary(p, nil, Options{Binary: "t"}))
}

func TestSignalAdjacentSeparated(t *testing.T) {
	p := buildFunc(func(p *ir.Program) []*ir.Instr {
		st := p.NewInstr(ir.Store)
		st.A, st.B = 1, 2
		clobber := p.NewInstr(ir.Store)
		clobber.A, clobber.B = 1, 3
		sig := syncInstr(p, ir.SignalMem, 0)
		sig.A, sig.B = 1, 2
		return []*ir.Instr{st, clobber, sig}
	})
	wantRule(t, Binary(p, nil, Options{Binary: "t"}), RuleSignalAdjacent)
}

func TestSignalAdjacentRegisterMismatch(t *testing.T) {
	p := buildFunc(func(p *ir.Program) []*ir.Instr {
		st := p.NewInstr(ir.Store)
		st.A, st.B = 1, 2
		sig := syncInstr(p, ir.SignalMem, 0)
		sig.A, sig.B = 1, 3 // forwards a different value register
		return []*ir.Instr{st, sig}
	})
	wantRule(t, Binary(p, nil, Options{Binary: "t"}), RuleSignalAdjacent)
}

func TestChannelRange(t *testing.T) {
	p := buildFunc(func(p *ir.Program) []*ir.Instr {
		sig := syncInstr(p, ir.SignalMemNull, 5) // only 2 allocated
		ws := syncInstr(p, ir.WaitScalar, -1)
		return []*ir.Instr{sig, ws}
	})
	rep := Binary(p, nil, Options{Binary: "t"})
	if n := len(rep.Errors()); n != 2 {
		t.Errorf("expected 2 channel-range errors, got %d:\n%s", n, rep)
	}
	wantRule(t, rep, RuleChannelRange)
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Rule: RuleSignalRelease, Severity: SevError,
		Func: "main", Block: 3, SyncID: 1,
		Pos:     lang.Pos{Line: 7, Col: 2},
		Message: "starved",
		Path:    []string{"b1", "b3"},
	}
	got := d.String()
	want := "7:2: error: [signal-release] main.b3: starved [path: b1 -> b3]"
	if got != want {
		t.Errorf("Diagnostic.String() = %q, want %q", got, want)
	}
	// Function-level finding without position renders without them.
	d2 := Diagnostic{Rule: RuleClonePath, Severity: SevError, Func: "f", Block: -1, Message: "m"}
	if got := d2.String(); got != "error: [clone-path] f: m" {
		t.Errorf("positionless Diagnostic.String() = %q", got)
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{Binary: "ref"}
	if rep.String() != "ref: ok" || !rep.Clean() {
		t.Errorf("empty report renders %q", rep.String())
	}
	rep.Diags = []Diagnostic{
		{Rule: RuleWaitOrder, Severity: SevError, Func: "f", Block: 0, Message: "x"},
		{Rule: RuleSyncCycle, Severity: SevWarn, Func: "f", Block: -1, Message: "y"},
	}
	if rep.Clean() {
		t.Error("report with an error must not be clean")
	}
	txt := rep.String()
	for _, want := range []string{"1 error(s), 1 warning(s)", "[wait-order]", "[sync-cycle]"} {
		if !strings.Contains(txt, want) {
			t.Errorf("report text missing %q:\n%s", want, txt)
		}
	}
	if len(rep.Warnings()) != 1 {
		t.Errorf("warnings = %d, want 1", len(rep.Warnings()))
	}
}

func TestAnnotateInlinesDiagnostics(t *testing.T) {
	p := buildFunc(func(p *ir.Program) []*ir.Instr {
		st := p.NewInstr(ir.Store)
		st.A, st.B = 1, 2
		clobber := p.NewInstr(ir.Store)
		clobber.A, clobber.B = 1, 3
		sig := syncInstr(p, ir.SignalMem, 0)
		sig.A, sig.B = 1, 2
		return []*ir.Instr{st, clobber, sig}
	})
	rep := Binary(p, nil, Options{Binary: "t"})
	txt := Annotate(p, rep)
	if !strings.Contains(txt, "^^ error: [signal-adjacent]") {
		t.Errorf("annotated dump missing inline diagnostic:\n%s", txt)
	}
	// The note must appear after the offending signal instruction.
	sigAt := strings.Index(txt, "signal.m sync0")
	noteAt := strings.Index(txt, "^^ error")
	if sigAt < 0 || noteAt < sigAt {
		t.Errorf("diagnostic not anchored to its instruction:\n%s", txt)
	}
}
