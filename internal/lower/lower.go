// Package lower translates checked MiniC ASTs into the TLS compiler's IR.
//
// Scalars (ints and pointers) that never have their address taken live in
// virtual registers; address-taken locals and all aggregates (structs,
// arrays) live in frame slots; globals live in the globals segment. This
// split is what makes the distinction between register-resident values
// (synchronized by the scalarsync pass, prior work [32] in the paper) and
// memory-resident values (the subject of the paper) visible in the IR.
package lower

import (
	"fmt"

	"tlssync/internal/ir"
	"tlssync/internal/lang"
)

// Lower translates a checked program into IR.
func Lower(c *lang.Checked) (*ir.Program, error) {
	lw := &lowerer{c: c, prog: ir.NewProgram()}
	for _, g := range c.File.Globals {
		var init int64
		if g.Init != nil {
			switch lit := g.Init.(type) {
			case *lang.IntLit:
				init = lit.Value
			case *lang.NilLit:
				init = 0
			}
		}
		lw.prog.AddGlobal(g.Name, g.Type.Size(), init)
	}
	for _, fn := range c.File.Funcs {
		f, err := lw.lowerFunc(fn)
		if err != nil {
			return nil, err
		}
		lw.prog.AddFunc(f)
	}
	if err := lw.prog.Verify(); err != nil {
		return nil, fmt.Errorf("lower: generated invalid IR: %w", err)
	}
	return lw.prog, nil
}

// MustLower lowers a checked program, panicking on error. For tests and
// embedded workloads.
func MustLower(c *lang.Checked) *ir.Program {
	p, err := Lower(c)
	if err != nil {
		panic(fmt.Sprintf("MustLower: %v", err))
	}
	return p
}

// loc is the storage location of a local variable or parameter.
type loc struct {
	inMem bool
	reg   ir.Reg // valid when !inMem
	off   int64  // frame offset when inMem
}

type lowerer struct {
	c    *lang.Checked
	prog *ir.Program

	// Per-function state:
	fn     *ir.Func
	cur    *ir.Block
	locs   map[any]loc // *lang.VarDecl or *lang.Param -> loc
	frame  int64
	breaks []*ir.Block // innermost-last break targets
	conts  []*ir.Block // innermost-last continue targets

	// lastCallDst holds the destination register of the most recent call
	// emitted by call(); expr() reads it immediately afterwards.
	lastCallDst ir.Reg
}

func (lw *lowerer) lowerFunc(fn *lang.FuncDecl) (*ir.Func, error) {
	f := &ir.Func{Name: fn.Name, NParams: len(fn.Params), HasRet: fn.RetType != nil}
	lw.fn = f
	lw.locs = make(map[any]loc)
	lw.frame = 0
	lw.breaks, lw.conts = nil, nil

	entry := f.NewBlock("entry")
	f.Entry = entry
	lw.cur = entry

	for i := range fn.Params {
		p := &fn.Params[i]
		r := f.NewReg() // params occupy regs 0..NParams-1 in order
		if lw.c.AddrTaken[p] {
			off := lw.allocFrame(p.Type.Size())
			addr := lw.emitAddrLocal(off, p.Pos)
			lw.emit2(ir.Store, ir.None, addr, r, p.Pos)
			lw.locs[p] = loc{inMem: true, off: off}
		} else {
			lw.locs[p] = loc{reg: r}
		}
	}

	if err := lw.block(fn.Body); err != nil {
		return nil, err
	}

	// Complete the final block with an implicit return (value 0 for
	// value-returning functions, as in MiniC's defined-everything
	// semantics).
	if lw.cur.Terminator() == nil {
		lw.emitImplicitRet(fn)
	}
	// Some blocks (after break/return) may be unreachable and unterminated.
	lw.pruneUnreachable()
	for _, b := range f.Blocks {
		if b.Terminator() == nil {
			// Reachable block without terminator (e.g. loop exit at end of
			// function): give it the implicit return too.
			lw.cur = b
			lw.emitImplicitRet(fn)
		}
	}
	f.FrameSize = lw.frame
	f.Renumber()
	return f, nil
}

func (lw *lowerer) emitImplicitRet(fn *lang.FuncDecl) {
	ret := lw.prog.NewInstr(ir.Ret)
	if fn.RetType != nil {
		zero := lw.newValue(ir.Const, fn.Pos)
		zero.Imm = 0
		ret.A = zero.Dst
	}
	ret.Pos = fn.Pos
	lw.cur.Instrs = append(lw.cur.Instrs, ret)
}

// pruneUnreachable removes blocks not reachable from the entry. Blocks
// created after a return/break (for trailing statements) may be dead and
// possibly empty; the verifier rejects empty blocks, so drop them.
func (lw *lowerer) pruneUnreachable() {
	f := lw.fn
	reached := map[*ir.Block]bool{f.Entry: true}
	stack := []*ir.Block{f.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !reached[s] {
				reached[s] = true
				stack = append(stack, s)
			}
		}
	}
	var live []*ir.Block
	for _, b := range f.Blocks {
		if reached[b] {
			live = append(live, b)
		}
	}
	f.Blocks = live
}

func (lw *lowerer) allocFrame(size int64) int64 {
	off := lw.frame
	lw.frame += (size + lang.WordSize - 1) / lang.WordSize * lang.WordSize
	return off
}

// ---------------------------------------------------------------------------
// Emission helpers

func (lw *lowerer) append(in *ir.Instr) *ir.Instr {
	lw.cur.Instrs = append(lw.cur.Instrs, in)
	return in
}

// newValue emits an instruction producing a fresh destination register.
func (lw *lowerer) newValue(op ir.Op, pos lang.Pos) *ir.Instr {
	in := lw.prog.NewInstr(op)
	in.Dst = lw.fn.NewReg()
	in.Pos = pos
	return lw.append(in)
}

// emit2 emits an instruction with explicit dst/a/b and no fresh register.
func (lw *lowerer) emit2(op ir.Op, dst, a, b ir.Reg, pos lang.Pos) *ir.Instr {
	in := lw.prog.NewInstr(op)
	in.Dst, in.A, in.B = dst, a, b
	in.Pos = pos
	return lw.append(in)
}

func (lw *lowerer) emitConst(v int64, pos lang.Pos) ir.Reg {
	in := lw.newValue(ir.Const, pos)
	in.Imm = v
	return in.Dst
}

func (lw *lowerer) emitAddrLocal(off int64, pos lang.Pos) ir.Reg {
	in := lw.newValue(ir.AddrLocal, pos)
	in.Imm = off
	return in.Dst
}

func (lw *lowerer) emitBin(alu ir.AluOp, a, b ir.Reg, pos lang.Pos) ir.Reg {
	in := lw.newValue(ir.Bin, pos)
	in.Alu, in.A, in.B = alu, a, b
	return in.Dst
}

// emitAddImm adds a compile-time constant to a register (0 is a no-op).
func (lw *lowerer) emitAddImm(base ir.Reg, imm int64, pos lang.Pos) ir.Reg {
	if imm == 0 {
		return base
	}
	c := lw.emitConst(imm, pos)
	return lw.emitBin(ir.Add, base, c, pos)
}

// br terminates the current block with an unconditional branch to target.
func (lw *lowerer) br(target *ir.Block, pos lang.Pos) {
	in := lw.prog.NewInstr(ir.Br)
	in.Pos = pos
	lw.append(in)
	lw.cur.Succs = append(lw.cur.Succs, target)
}

// condbr terminates the current block branching on cond.
func (lw *lowerer) condbr(cond ir.Reg, then, els *ir.Block, pos lang.Pos) {
	in := lw.prog.NewInstr(ir.CondBr)
	in.A = cond
	in.Pos = pos
	lw.append(in)
	lw.cur.Succs = append(lw.cur.Succs, then, els)
}

// ---------------------------------------------------------------------------
// Statements

func (lw *lowerer) block(b *lang.BlockStmt) error {
	for _, s := range b.Stmts {
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) stmt(s lang.Stmt) error {
	// Statements after a terminator (return/break/continue) open a dead
	// block so emission always has a target; pruneUnreachable drops it.
	if lw.cur.Terminator() != nil {
		lw.cur = lw.fn.NewBlock("dead")
	}
	switch st := s.(type) {
	case *lang.BlockStmt:
		return lw.block(st)
	case *lang.VarStmt:
		return lw.varStmt(st.Decl)
	case *lang.AssignStmt:
		return lw.assign(st)
	case *lang.IfStmt:
		return lw.ifStmt(st)
	case *lang.WhileStmt:
		return lw.whileStmt(st)
	case *lang.ForStmt:
		return lw.forStmt(st)
	case *lang.ReturnStmt:
		ret := lw.prog.NewInstr(ir.Ret)
		ret.Pos = st.Pos
		if st.Value != nil {
			v, err := lw.expr(st.Value)
			if err != nil {
				return err
			}
			ret.A = v
		}
		lw.append(ret)
		return nil
	case *lang.BreakStmt:
		if len(lw.breaks) == 0 {
			return lang.Errf(st.Pos, "break outside loop")
		}
		lw.br(lw.breaks[len(lw.breaks)-1], st.Pos)
		return nil
	case *lang.ContinueStmt:
		if len(lw.conts) == 0 {
			return lang.Errf(st.Pos, "continue outside loop")
		}
		lw.br(lw.conts[len(lw.conts)-1], st.Pos)
		return nil
	case *lang.ExprStmt:
		_, err := lw.exprOrVoid(st.X)
		return err
	}
	return fmt.Errorf("lower: unknown statement %T", s)
}

func (lw *lowerer) varStmt(d *lang.VarDecl) error {
	if !scalarType(d.Type) || lw.c.AddrTaken[d] {
		off := lw.allocFrame(d.Type.Size())
		lw.locs[d] = loc{inMem: true, off: off}
		// Frame memory is zeroed on function entry by the machine model
		// (see interp); aggregate locals need no explicit initialization.
		if d.Init != nil {
			v, err := lw.expr(d.Init)
			if err != nil {
				return err
			}
			addr := lw.emitAddrLocal(off, d.Pos)
			lw.emit2(ir.Store, ir.None, addr, v, d.Pos)
		}
		return nil
	}
	r := lw.fn.NewReg()
	lw.locs[d] = loc{reg: r}
	if d.Init != nil {
		v, err := lw.expr(d.Init)
		if err != nil {
			return err
		}
		lw.emit2(ir.Mov, r, v, ir.None, d.Pos)
		return nil
	}
	in := lw.prog.NewInstr(ir.Const)
	in.Dst, in.Imm, in.Pos = r, 0, d.Pos
	lw.append(in)
	return nil
}

func (lw *lowerer) assign(st *lang.AssignStmt) error {
	// Register-resident scalar local: direct move.
	if id, ok := st.LHS.(*lang.Ident); ok && !id.Global {
		if l, found := lw.locs[id.Decl]; found && !l.inMem {
			v, err := lw.expr(st.RHS)
			if err != nil {
				return err
			}
			lw.emit2(ir.Mov, l.reg, v, ir.None, st.Pos)
			return nil
		}
	}
	addr, err := lw.lvalAddr(st.LHS)
	if err != nil {
		return err
	}
	v, err := lw.expr(st.RHS)
	if err != nil {
		return err
	}
	lw.emit2(ir.Store, ir.None, addr, v, st.Pos)
	return nil
}

func (lw *lowerer) ifStmt(st *lang.IfStmt) error {
	cond, err := lw.expr(st.Cond)
	if err != nil {
		return err
	}
	thenB := lw.fn.NewBlock("then")
	joinB := lw.fn.NewBlock("join")
	elseB := joinB
	if st.Else != nil {
		elseB = lw.fn.NewBlock("else")
	}
	lw.condbr(cond, thenB, elseB, st.Pos)

	lw.cur = thenB
	if err := lw.block(st.Then); err != nil {
		return err
	}
	if lw.cur.Terminator() == nil {
		lw.br(joinB, st.Pos)
	}
	if st.Else != nil {
		lw.cur = elseB
		if err := lw.stmt(st.Else); err != nil {
			return err
		}
		if lw.cur.Terminator() == nil {
			lw.br(joinB, st.Pos)
		}
	}
	lw.cur = joinB
	return nil
}

func (lw *lowerer) whileStmt(st *lang.WhileStmt) error {
	return lw.loop(nil, st.Cond, nil, st.Body, false, st.Pos)
}

func (lw *lowerer) forStmt(st *lang.ForStmt) error {
	if st.Init != nil {
		if err := lw.stmt(st.Init); err != nil {
			return err
		}
	}
	return lw.loop(nil, st.Cond, st.Post, st.Body, st.Parallel, st.Pos)
}

// loop builds the canonical loop shape:
//
//	cur:    br header
//	header: cond -> body | exit     (ParallelHeader set for parallel for)
//	body:   ... br post
//	post:   post-stmt; br header
//	exit:
//
// continue targets post; break targets exit.
func (lw *lowerer) loop(_ lang.Stmt, cond lang.Expr, post lang.Stmt, body *lang.BlockStmt, parallel bool, pos lang.Pos) error {
	header := lw.fn.NewBlock("loop.header")
	bodyB := lw.fn.NewBlock("loop.body")
	postB := lw.fn.NewBlock("loop.post")
	exitB := lw.fn.NewBlock("loop.exit")
	header.ParallelHeader = parallel

	lw.br(header, pos)
	lw.cur = header
	if cond != nil {
		c, err := lw.expr(cond)
		if err != nil {
			return err
		}
		lw.condbr(c, bodyB, exitB, pos)
	} else {
		lw.br(bodyB, pos)
	}

	lw.breaks = append(lw.breaks, exitB)
	lw.conts = append(lw.conts, postB)
	lw.cur = bodyB
	if err := lw.block(body); err != nil {
		return err
	}
	lw.breaks = lw.breaks[:len(lw.breaks)-1]
	lw.conts = lw.conts[:len(lw.conts)-1]
	if lw.cur.Terminator() == nil {
		lw.br(postB, pos)
	}

	lw.cur = postB
	if post != nil {
		if err := lw.stmt(post); err != nil {
			return err
		}
	}
	if lw.cur.Terminator() == nil {
		lw.br(header, pos)
	}
	lw.cur = exitB
	return nil
}

// ---------------------------------------------------------------------------
// Expressions

func scalarType(t lang.Type) bool {
	switch t.(type) {
	case lang.IntType, *lang.PtrType:
		return true
	}
	return false
}

// exprOrVoid lowers an expression that may be a void call.
func (lw *lowerer) exprOrVoid(e lang.Expr) (ir.Reg, error) {
	if c, ok := e.(*lang.Call); ok && c.Type() == nil {
		return ir.None, lw.call(c, false)
	}
	return lw.expr(e)
}

func (lw *lowerer) expr(e lang.Expr) (ir.Reg, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		return lw.emitConst(x.Value, x.Pos), nil
	case *lang.NilLit:
		return lw.emitConst(0, x.Pos), nil
	case *lang.Ident:
		if !x.Global {
			if l, ok := lw.locs[x.Decl]; ok && !l.inMem {
				return l.reg, nil
			}
		}
		addr, err := lw.lvalAddr(x)
		if err != nil {
			return ir.None, err
		}
		ld := lw.newValue(ir.Load, x.Pos)
		ld.A = addr
		return ld.Dst, nil
	case *lang.Unary:
		return lw.unary(x)
	case *lang.Binary:
		return lw.binary(x)
	case *lang.Call:
		if err := lw.call(x, true); err != nil {
			return ir.None, err
		}
		return lw.lastCallDst, nil
	case *lang.New:
		size := x.Type().(*lang.PtrType).Elem.Size()
		in := lw.newValue(ir.NewObj, x.Pos)
		in.Imm = size
		return in.Dst, nil
	case *lang.FieldExpr, *lang.IndexExpr:
		if !scalarType(e.Type()) {
			return ir.None, lang.Errf(e.Position(), "cannot use aggregate %s as a value", e.Type())
		}
		addr, err := lw.lvalAddr(e)
		if err != nil {
			return ir.None, err
		}
		ld := lw.newValue(ir.Load, e.Position())
		ld.A = addr
		return ld.Dst, nil
	}
	return ir.None, fmt.Errorf("lower: unknown expression %T", e)
}

func (lw *lowerer) unary(x *lang.Unary) (ir.Reg, error) {
	switch x.Op {
	case lang.UNeg:
		a, err := lw.expr(x.X)
		if err != nil {
			return ir.None, err
		}
		in := lw.newValue(ir.Neg, x.Pos)
		in.A = a
		return in.Dst, nil
	case lang.UNot:
		a, err := lw.expr(x.X)
		if err != nil {
			return ir.None, err
		}
		in := lw.newValue(ir.Not, x.Pos)
		in.A = a
		return in.Dst, nil
	case lang.UDeref:
		a, err := lw.expr(x.X)
		if err != nil {
			return ir.None, err
		}
		ld := lw.newValue(ir.Load, x.Pos)
		ld.A = a
		return ld.Dst, nil
	case lang.UAddr:
		return lw.lvalAddr(x.X)
	}
	return ir.None, fmt.Errorf("lower: unknown unary op %d", x.Op)
}

var binToAlu = map[lang.BinOp]ir.AluOp{
	lang.BAdd: ir.Add, lang.BSub: ir.Sub, lang.BMul: ir.Mul,
	lang.BDiv: ir.Div, lang.BRem: ir.Rem, lang.BShl: ir.Shl,
	lang.BShr: ir.Shr, lang.BAnd: ir.And, lang.BOr: ir.Or,
	lang.BXor: ir.Xor, lang.BLt: ir.CmpLt, lang.BLe: ir.CmpLe,
	lang.BGt: ir.CmpGt, lang.BGe: ir.CmpGe, lang.BEq: ir.CmpEq,
	lang.BNe: ir.CmpNe,
}

func (lw *lowerer) binary(x *lang.Binary) (ir.Reg, error) {
	if x.Op == lang.BLand || x.Op == lang.BLor {
		return lw.shortCircuit(x)
	}
	a, err := lw.expr(x.X)
	if err != nil {
		return ir.None, err
	}
	b, err := lw.expr(x.Y)
	if err != nil {
		return ir.None, err
	}
	return lw.emitBin(binToAlu[x.Op], a, b, x.Pos), nil
}

// shortCircuit lowers && and || with control flow, producing 0 or 1.
func (lw *lowerer) shortCircuit(x *lang.Binary) (ir.Reg, error) {
	dst := lw.fn.NewReg()
	a, err := lw.expr(x.X)
	if err != nil {
		return ir.None, err
	}
	evalY := lw.fn.NewBlock("sc.rhs")
	short := lw.fn.NewBlock("sc.short")
	join := lw.fn.NewBlock("sc.join")
	if x.Op == lang.BLand {
		lw.condbr(a, evalY, short, x.Pos) // false -> short(0)
	} else {
		lw.condbr(a, short, evalY, x.Pos) // true -> short(1)
	}

	lw.cur = evalY
	b, err := lw.expr(x.Y)
	if err != nil {
		return ir.None, err
	}
	zero := lw.emitConst(0, x.Pos)
	norm := lw.emitBin(ir.CmpNe, b, zero, x.Pos)
	lw.emit2(ir.Mov, dst, norm, ir.None, x.Pos)
	lw.br(join, x.Pos)

	lw.cur = short
	shortVal := int64(0)
	if x.Op == lang.BLor {
		shortVal = 1
	}
	c := lw.emitConst(shortVal, x.Pos)
	lw.emit2(ir.Mov, dst, c, ir.None, x.Pos)
	lw.br(join, x.Pos)

	lw.cur = join
	return dst, nil
}

func (lw *lowerer) call(x *lang.Call, wantValue bool) error {
	var args []ir.Reg
	for _, a := range x.Args {
		r, err := lw.expr(a)
		if err != nil {
			return err
		}
		args = append(args, r)
	}
	var in *ir.Instr
	switch x.Builtin {
	case "rnd":
		in = lw.newValue(ir.Rnd, x.Pos)
		in.A = args[0]
	case "input":
		in = lw.newValue(ir.Input, x.Pos)
		in.A = args[0]
	case "print":
		in = lw.prog.NewInstr(ir.Print)
		in.A = args[0]
		in.Pos = x.Pos
		lw.append(in)
	default:
		in = lw.prog.NewInstr(ir.Call)
		in.Sym = x.Name
		in.Args = args
		in.Pos = x.Pos
		if x.Decl != nil && x.Decl.RetType != nil {
			in.Dst = lw.fn.NewReg()
		}
		lw.append(in)
	}
	if wantValue {
		if in.Dst == ir.None {
			return lang.Errf(x.Pos, "%s has no value", x.Name)
		}
		lw.lastCallDst = in.Dst
	}
	return nil
}

// lvalAddr computes the address of an lvalue into a register.
func (lw *lowerer) lvalAddr(e lang.Expr) (ir.Reg, error) {
	switch x := e.(type) {
	case *lang.Ident:
		if x.Global {
			in := lw.newValue(ir.AddrGlobal, x.Pos)
			in.Sym = x.Name
			return in.Dst, nil
		}
		l, ok := lw.locs[x.Decl]
		if !ok {
			return ir.None, lang.Errf(x.Pos, "internal: no location for %s", x.Name)
		}
		if !l.inMem {
			return ir.None, lang.Errf(x.Pos, "internal: taking address of register %s", x.Name)
		}
		return lw.emitAddrLocal(l.off, x.Pos), nil
	case *lang.Unary:
		if x.Op != lang.UDeref {
			return ir.None, lang.Errf(x.Pos, "not an lvalue")
		}
		return lw.expr(x.X)
	case *lang.FieldExpr:
		var base ir.Reg
		var err error
		if _, isPtr := x.X.Type().(*lang.PtrType); isPtr {
			base, err = lw.expr(x.X)
		} else {
			base, err = lw.lvalAddr(x.X)
		}
		if err != nil {
			return ir.None, err
		}
		return lw.emitAddImm(base, x.Field.Offset, x.Pos), nil
	case *lang.IndexExpr:
		var base ir.Reg
		var err error
		var elemSize int64
		switch t := x.X.Type().(type) {
		case *lang.ArrayType:
			base, err = lw.lvalAddr(x.X)
			elemSize = t.Elem.Size()
		case *lang.PtrType:
			base, err = lw.expr(x.X)
			elemSize = t.Elem.Size()
		default:
			return ir.None, lang.Errf(x.Pos, "cannot index %s", t)
		}
		if err != nil {
			return ir.None, err
		}
		idx, err := lw.expr(x.I)
		if err != nil {
			return ir.None, err
		}
		sz := lw.emitConst(elemSize, x.Pos)
		scaled := lw.emitBin(ir.Mul, idx, sz, x.Pos)
		return lw.emitBin(ir.Add, base, scaled, x.Pos), nil
	}
	return ir.None, lang.Errf(e.Position(), "not an lvalue")
}
