package lower

import (
	"strings"
	"testing"

	"tlssync/internal/ir"
	"tlssync/internal/lang"
)

func compile(t testing.TB, src string) *ir.Program {
	t.Helper()
	c, err := lang.Check(lang.MustParse(src))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := Lower(c)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func TestLoweredProgramVerifies(t *testing.T) {
	p := compile(t, `
type Node struct { next *Node; val int; }
var head *Node;
var table [64]int;
func push(v int) {
	var n *Node = new(Node);
	n->val = v;
	n->next = head;
	head = n;
}
func sum() int {
	var s int;
	var p *Node = head;
	while p {
		s = s + p->val;
		p = p->next;
	}
	return s;
}
func main() {
	var i int;
	parallel for i = 0; i < 10; i = i + 1 {
		push(i);
		table[i % 64] = sum();
	}
	print(sum());
}`)
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(p.Funcs) != 3 {
		t.Errorf("funcs = %d, want 3", len(p.Funcs))
	}
}

func TestParallelHeaderMarked(t *testing.T) {
	p := compile(t, `
func main() {
	var i int;
	parallel for i = 0; i < 10; i = i + 1 { print(i); }
}`)
	found := 0
	for _, b := range p.FuncMap["main"].Blocks {
		if b.ParallelHeader {
			found++
		}
	}
	if found != 1 {
		t.Errorf("parallel headers = %d, want 1", found)
	}
}

func TestRegisterVsMemoryLocals(t *testing.T) {
	// x is address-taken -> frame slot; y is not -> register only.
	p := compile(t, `
func main() {
	var x int;
	var y int;
	var p *int = &x;
	y = *p + 1;
	print(y);
}`)
	main := p.FuncMap["main"]
	if main.FrameSize != 8 {
		t.Errorf("frame size = %d, want 8 (only x)", main.FrameSize)
	}
	// y must never be loaded/stored: count AddrLocal instructions (only
	// x's accesses reference the frame).
	addrLocals := 0
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.AddrLocal {
				addrLocals++
			}
		}
	}
	if addrLocals == 0 {
		t.Error("expected AddrLocal instructions for x")
	}
}

func TestAggregateLocalsInFrame(t *testing.T) {
	p := compile(t, `
type Pair struct { a int; b int; }
func main() {
	var buf [4]int;
	var pr Pair;
	buf[0] = 1;
	pr.a = 2;
	print(buf[0] + pr.a);
}`)
	main := p.FuncMap["main"]
	if main.FrameSize != 4*8+16 {
		t.Errorf("frame size = %d, want 48", main.FrameSize)
	}
}

func TestGlobalAccessUsesAddrGlobal(t *testing.T) {
	p := compile(t, `
var g int;
func main() {
	g = g + 1;
}`)
	main := p.FuncMap["main"]
	loads, stores, addrg := 0, 0, 0
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.Load:
				loads++
			case ir.Store:
				stores++
			case ir.AddrGlobal:
				addrg++
				if in.Sym != "g" {
					t.Errorf("AddrGlobal sym = %s", in.Sym)
				}
			}
		}
	}
	if loads != 1 || stores != 1 || addrg != 2 {
		t.Errorf("loads=%d stores=%d addrg=%d, want 1/1/2", loads, stores, addrg)
	}
}

func TestFieldOffsetsFolded(t *testing.T) {
	// p->val where val is at offset 8: lowering adds the constant.
	p := compile(t, `
type Node struct { next *Node; val int; }
func main() {
	var n *Node = new(Node);
	n->val = 5;
	print(n->val);
}`)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	// Field at offset 0 must not emit an add.
	txt := p.FuncMap["main"].String()
	if !strings.Contains(txt, "const 8") {
		t.Errorf("expected offset-8 constant in:\n%s", txt)
	}
}

func TestImplicitReturn(t *testing.T) {
	p := compile(t, `
func f(x int) int {
	if x > 0 {
		return x;
	}
}
func main() { print(f(1)); print(f(-1)); }
`)
	f := p.FuncMap["f"]
	rets := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.Ret {
				rets++
				if in.A == ir.None {
					t.Error("value-returning function has bare ret")
				}
			}
		}
	}
	if rets < 2 {
		t.Errorf("rets = %d, want >= 2 (explicit + implicit)", rets)
	}
}

func TestDeadCodeAfterReturnPruned(t *testing.T) {
	p := compile(t, `
func main() {
	return;
	print(1);
}`)
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	for _, b := range p.FuncMap["main"].Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.Print {
				t.Error("unreachable print survived pruning")
			}
		}
	}
}

func TestBreakContinueOutsideLoopError(t *testing.T) {
	for _, src := range []string{
		"func main() { break; }",
		"func main() { continue; }",
	} {
		c, err := lang.Check(lang.MustParse(src))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Lower(c); err == nil {
			t.Errorf("%q: expected lowering error", src)
		}
	}
}

func TestUniqueInstructionIDsAcrossFunctions(t *testing.T) {
	p := compile(t, `
func a() { print(1); }
func b() { print(2); }
func main() { a(); b(); }
`)
	seen := make(map[int]bool)
	for _, f := range p.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if seen[in.ID] {
					t.Fatalf("duplicate instruction ID %d", in.ID)
				}
				seen[in.ID] = true
			}
		}
	}
}

func TestParamAddressTaken(t *testing.T) {
	// A parameter whose address is taken is spilled to the frame.
	p := compile(t, `
func f(x int) int {
	var p *int = &x;
	*p = *p + 1;
	return x;
}
func main() { print(f(41)); }
`)
	f := p.FuncMap["f"]
	if f.FrameSize != 8 {
		t.Errorf("frame size = %d, want 8", f.FrameSize)
	}
	// Entry must store the param into its slot.
	entry := f.Entry
	foundStore := false
	for _, in := range entry.Instrs {
		if in.Op == ir.Store {
			foundStore = true
		}
	}
	if !foundStore {
		t.Error("entry does not spill address-taken param")
	}
}

func TestVoidCallAsValueError(t *testing.T) {
	c, err := lang.Check(lang.MustParse(`
func v() {}
func main() {
	var x int = v();
	print(x);
}`))
	// The checker may reject this first; if it passes checking (void type
	// propagates as nil), lowering must reject it.
	if err != nil {
		return // rejected at check time: fine
	}
	if _, err := Lower(c); err == nil {
		t.Error("expected lowering error for void call used as value")
	}
}

func TestWhileWithPointerCondition(t *testing.T) {
	p := compile(t, `
type N struct { next *N; }
var head *N;
func main() {
	head = new(N);
	head->next = new(N);
	var q *N = head;
	var n int = 0;
	while q {
		n = n + 1;
		q = q->next;
	}
	print(n);
}`)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestNestedShortCircuit(t *testing.T) {
	p := compile(t, `
func main() {
	var a int = 1;
	var b int = 0;
	var c int = 1;
	if a && (b || c) && !(a && b) {
		print(1);
	} else {
		print(0);
	}
}`)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}
