package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 17} {
		n := 101
		counts := make([]atomic.Int32, n)
		if err := Map(context.Background(), workers, n, func(_ context.Context, i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestMapValsDeterministicOrder(t *testing.T) {
	n := 64
	for _, workers := range []int{1, 3, 8} {
		out, err := MapVals(context.Background(), workers, n, func(_ context.Context, i int) (string, error) {
			// Finish in roughly reverse order to prove results are
			// index-addressed, not completion-ordered.
			time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
			return fmt.Sprintf("v%d", i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != fmt.Sprintf("v%d", i) {
				t.Fatalf("workers=%d: out[%d] = %q", workers, i, v)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	err := Map(context.Background(), workers, 50, func(context.Context, int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, want <= %d", p, workers)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// The high index fails instantly; the low index fails after a
	// delay. The lowest-index error must win regardless.
	err := Map(context.Background(), 4, 8, func(_ context.Context, i int) error {
		switch i {
		case 2:
			time.Sleep(5 * time.Millisecond)
			return errLow
		case 7:
			return errHigh
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("got %v, want %v", err, errLow)
	}
}

func TestMapSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := Map(context.Background(), 1, 5, func(_ context.Context, i int) error {
		ran = append(ran, i)
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if len(ran) != 3 {
		t.Fatalf("serial path ran %v, want [0 1 2]", ran)
	}
}

func TestMapErrorCancelsSiblings(t *testing.T) {
	// After index 0 fails, remaining indices are skipped rather than
	// dispatched: the slow sibling calls give the cancellation time to
	// land, so nowhere near all 100 indices should run.
	var ran atomic.Int32
	err := Map(context.Background(), 2, 100, func(_ context.Context, i int) error {
		if i == 0 {
			return errors.New("first fails")
		}
		ran.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := ran.Load(); n >= 99 {
		t.Fatalf("failure did not stop dispatch: %d sibling indices ran", n)
	}
}

func TestMapHonorsCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := Map(ctx, 4, 100, func(context.Context, int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() == 100 {
		t.Fatal("cancelled Map still dispatched every index")
	}
}

func TestMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
			}()
			_ = Map(context.Background(), workers, 8, func(_ context.Context, i int) error {
				if i == 3 {
					panic("kaboom")
				}
				return nil
			})
		}()
	}
}

func TestMapZeroN(t *testing.T) {
	if err := Map(context.Background(), 4, 0, func(context.Context, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
