// Package parallel is the bounded fan-out helper used by the compiler
// and simulation pipeline. It exists so every parallelized stage shares
// one carefully-specified primitive instead of ad-hoc goroutine code:
//
//   - results are addressed by index, so output order never depends on
//     goroutine scheduling (the pipeline's byte-reproducibility
//     invariant: -j1 and -jN must produce identical artifacts);
//   - error selection is deterministic: when several calls fail, the
//     lowest-index error is returned, matching what a serial loop that
//     stops at the first failure would report;
//   - workers <= 1 degenerates to a plain serial loop on the caller's
//     goroutine, so the serial path has no goroutine overhead and is
//     trivially the reference implementation;
//   - cancellation of the caller's context stops dispatching new
//     indices, and the first failure cancels the context passed to the
//     remaining calls (errgroup-style).
package parallel

import (
	"context"
	"sync"
	"sync/atomic"
)

// Map calls fn(ctx, i) once for every i in [0, n), running at most
// workers calls concurrently, and waits for all of them. It returns the
// non-nil error with the lowest index, or — when every call succeeded
// but the caller's context was cancelled mid-flight — ctx.Err().
//
// The first failure cancels the context handed to calls that have not
// completed yet; calls are free to ignore it (all of this package's
// users are CPU-bound and run to completion). A panic in fn is
// re-raised on the calling goroutine after the other workers drain, so
// panic semantics match the serial path.
func Map(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
		panicked bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if cctx.Err() != nil {
					// Cancelled (caller's ctx or a sibling's failure):
					// stop dispatching. Nothing is recorded for skipped
					// indices, so the error reported below is the
					// genuine lowest-index failure, not a cascade.
					continue
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if !panicked {
								panicked, panicVal = true, r
							}
							panicMu.Unlock()
							cancel()
						}
					}()
					if err := fn(cctx, i); err != nil {
						errs[i] = err
						cancel()
					}
				}()
			}
		}()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// MapVals is Map with a result slice: out[i] holds the value fn
// returned for index i, in index order regardless of completion order.
// On error the partially-filled slice is returned alongside it.
func MapVals[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Map(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
