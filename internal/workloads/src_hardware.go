package workloads

// Benchmarks where the paper reports hardware-inserted synchronization as
// the winner: violations stem from false sharing (invisible to the
// compiler's true-dependence profile), from over-synchronization hazards,
// or from dependence patterns the profile mispredicts.

// m88ksim — 124.m88ksim. The paper attributes its violations to false
// sharing: processor-model counters packed into one cache line, with each
// epoch updating a different word. There are no frequent distance-1 true
// dependences for the compiler to synchronize (each word self-depends at
// distance 4, beyond the 4-CPU overlap window), but line-granularity
// tracking violates constantly; the hardware table learns the loads and
// stalls them.
var M88ksim = register(&Workload{
	Name:          "m88ksim",
	Label:         "M88KSIM",
	PaperCoverage: 0.56,
	Expect:        "H",
	Character: "false sharing on a line of packed counters (distinct words " +
		"per epoch); no frequent true dependence for the compiler to find",
	Train: seq(113, 64),
	Ref:   seq(214, 64),
	Source: `
var cregs [4]int;
var imem [2048]int;
var out [1024]int;

func main() {
	var i int;
	// Sequential phase (~56% coverage): load the instruction memory.
	var setup int = 0;
	for i = 0; i < 1600; i = i + 1 {
		imem[i % 2048] = (imem[i % 2048] + i * 5 + input(i) % 9) % 65536;
		setup = setup + imem[i % 2048] % 3;
	}
	parallel for i = 0; i < 500; i = i + 1 {
		var me int = i % 4;
		var j int = 0;
		var acc int = 0;
		while j < 8 {
			acc = acc + imem[(i * 61 + j * 19) % 2048] % 11;
			j = j + 1;
		}
		// Distinct words of one 32-byte line, touched at the END of the
		// epoch: pure false sharing, cheap for the hardware to stall.
		cregs[me] = cregs[me] + imem[(i * 7) % 2048] % 16 + 1;
		out[i % 1024] = acc + cregs[me] % 23;
	}
	var sum int = setup % 1000;
	for i = 0; i < 1024; i = i + 1 {
		sum = sum + out[i];
	}
	print(sum + cregs[0] + cregs[1] + cregs[2] + cregs[3]);
}
`,
})

// gzip_comp — 164.gzip compressing. Input-dependent control flow selects
// which of three hash-chain heads each epoch updates; the ref input mixes
// all three while the train input concentrates on the first, so the
// train-profiled binary (T) synchronizes the wrong pairs. Even with the
// right profile, every epoch pays three wait protocols while only one
// group actually communicates, letting adaptive hardware synchronization
// win (paper: GZIP_COMP is profile-input sensitive AND best under H).
var GzipComp = register(&Workload{
	Name:          "gzip_comp",
	Label:         "GZIP_COMP",
	PaperCoverage: 0.25,
	Expect:        "even",
	Character: "input-selected dependence among 5 weighted hash heads " +
		"(10-30% of epochs each on ref; concentrated on one head on " +
		"train): profile-sensitive (T clearly worse than C), and both " +
		"techniques help — the hybrid does best",
	Train: trainGzip(),
	Ref:   refGzip(),
	Source: `
var head0 int;
var head1 int;
var head2 int;
var head3 int;
var head4 int;
var text [4096]int;
var out [1024]int;

func main() {
	var i int;
	var setup int = 0;
	for i = 0; i < 7000; i = i + 1 {
		text[i % 4096] = (text[i % 4096] * 2 + i + input(i)) % 65536;
		setup = setup + text[i % 4096] % 3;
	}
	parallel for i = 0; i < 600; i = i + 1 {
		// Weighted, input-driven selection of one of five hash heads:
		// their per-load dependence frequencies span ~10%..30% of epochs
		// (the band the paper's Figure 6 threshold study probes).
		var sel int = input(i) % 20;
		// The long match-search comes first...
		var j int = 0;
		var acc int = 0;
		while j < 7 {
			acc = acc + text[(i * 11 + j * 131) % 4096] % 17;
			j = j + 1;
		}
		// ...and the selected head is read and updated at the END of the
		// epoch, so compiler forwarding gains little over hardware
		// stalling while still paying the wait protocol for every head.
		var h int = 0;
		if sel < 6 {
			h = head0;
			head0 = h + acc % 64 + 1;
		} else if sel < 11 {
			h = head1;
			head1 = h + acc % 61 + 1;
		} else if sel < 15 {
			h = head2;
			head2 = h + acc % 59 + 1;
		} else if sel < 18 {
			h = head3;
			head3 = h + acc % 53 + 1;
		} else {
			h = head4;
			head4 = h + acc % 47 + 1;
		}
		out[i % 1024] = acc + h % 13;
	}
	var sum int = setup % 1000 + head0 + head1 + head2 + head3 + head4;
	for i = 0; i < 1024; i = i + 1 {
		sum = sum + out[i];
	}
	print(sum);
}
`,
})

// trainGzip concentrates ~90% of the input stream on head0 (sel < 6), so
// the train profile sees the other heads' dependences as infrequent and
// the T binary synchronizes the wrong pairs.
func trainGzip() []int64 {
	in := make([]int64, 600)
	base := seq(115, 600)
	for i := range in {
		if base[i]%10 < 9 {
			in[i] = base[i] % 6 // head0's selector range
		} else {
			in[i] = 6 + base[i]%14 // occasionally the others
		}
	}
	return in
}

// refGzip spreads selectors uniformly over the weighted ranges.
func refGzip() []int64 {
	in := make([]int64, 600)
	base := seq(216, 600)
	for i := range in {
		in[i] = base[i] % 20
	}
	return in
}

// vpr_place — 175.vpr (placement). A simulated-annealing style loop: only
// accepted swaps (~20% of epochs, input-driven bursts) update the shared
// cost, and they do so at the very END of the epoch, so compiler
// forwarding gains nothing over stalling while still paying the wait
// protocol every epoch; the periodically-reset hardware table tracks the
// bursts more cheaply.
var VprPlace = register(&Workload{
	Name:          "vpr_place",
	Label:         "VPR_PLACE",
	PaperCoverage: 0.60,
	Expect:        "H",
	Character: "bursty ~20% dependence whose value is produced at epoch end: " +
		"synchronization buys no forwarding slack; hardware adapts to bursts",
	Train: seq(117, 128),
	Ref:   seq(218, 128),
	Source: `
var cost int;
var grid [2048]int;
var out [1024]int;

func main() {
	var i int;
	var setup int = 0;
	for i = 0; i < 1900; i = i + 1 {
		grid[i % 2048] = grid[i % 2048] + i % 37 + input(i) % 5;
		setup = setup + grid[i % 2048] % 2;
	}
	cost = 100000;
	parallel for i = 0; i < 500; i = i + 1 {
		// Evaluate a candidate swap (the long part of the epoch).
		var j int = 0;
		var delta int = 0;
		while j < 12 {
			delta = delta + grid[(i * 53 + j * 97) % 2048] % 9 - 4;
			j = j + 1;
		}
		grid[(i * 29) % 2048] = delta + i;
		// The shared cost is read and (in input-driven ~20% bursts)
		// updated at the END of the epoch: frequent enough to
		// synchronize, but with no forwarding slack to exploit.
		var c int = cost;
		if input(i / 8) % 5 == 0 {
			cost = c + delta;
		}
		out[i % 1024] = c % 1009 + delta;
	}
	var sum int = setup % 1000 + cost;
	for i = 0; i < 1024; i = i + 1 {
		sum = sum + out[i];
	}
	print(sum);
}
`,
})
