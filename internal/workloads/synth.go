package workloads

import (
	"fmt"
	"strconv"
	"strings"

	"tlssync/internal/progen"
)

// Synth builds the deterministic synthetic workload "synth-<seed>":
// a progen-generated MiniC program with seed-derived train/ref inputs.
// The same seed always yields the same workload (and therefore the
// same artifact keys), so synthetic benchmarks cache, journal and
// recover exactly like the paper's 15 — tlsd, tlsbench and tlssim all
// resolve these names through this one constructor.
func Synth(seed uint64) *Workload {
	name := fmt.Sprintf("synth-%d", seed)
	return &Workload{
		Name:      name,
		Label:     strings.ToUpper(name),
		Source:    progen.Generate(seed, progen.DefaultConfig()),
		Train:     seq(int(seed), 6),
		Ref:       seq(int(seed)+1, 6),
		Character: "progen-generated synthetic workload",
		Expect:    "synthetic",
	}
}

// SynthSeed reports whether name is a synthetic workload reference
// ("synth-<seed>") and returns its seed.
func SynthSeed(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "synth-")
	if !ok || rest == "" {
		return 0, false
	}
	seed, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return seed, true
}

// SynthSet derives n independent synthetic workloads from one root
// seed. Per-index seeds are decorrelated splitmix-style — the same
// fan-out the scenario planner uses for per-client RNGs — so
// neighbouring indices get unrelated programs while the whole set
// stays a pure function of (seed, n).
func SynthSet(seed uint64, n int) []*Workload {
	out := make([]*Workload, n)
	for i := range out {
		out[i] = Synth(seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
	}
	return out
}

// Resolve returns the named workload: a paper benchmark by name, or a
// synthetic one for "synth-<seed>".
func Resolve(name string) (*Workload, error) {
	if seed, ok := SynthSeed(name); ok {
		return Synth(seed), nil
	}
	return ByName(name)
}
