// Package workloads provides the 15 benchmark programs of the paper's
// evaluation (SPEC 95/2000-derived applications), re-created as synthetic
// MiniC programs. Each program is engineered to exhibit the dependence
// character the paper reports for the corresponding application —
// frequency and distance of inter-epoch dependences, call-path depth,
// value predictability, false sharing, input sensitivity, and region
// coverage — so that the relative behaviour of the value-communication
// policies (who wins, and why) reproduces the paper's results. See
// DESIGN.md §2 for the substitution argument.
package workloads

import "fmt"

// Workload is one benchmark program plus its inputs and metadata.
type Workload struct {
	// Name is the paper's benchmark name (e.g. "gzip_comp").
	Name string
	// Label is the display label used in figures (e.g. "GZIP_COMP").
	Label string
	// Source is the MiniC program.
	Source string
	// Train and Ref are the two input sets. Ref drives the measured runs;
	// Train drives the T-profile (paper §4.1).
	Train []int64
	Ref   []int64
	// Character summarizes the engineered dependence behaviour.
	Character string
	// PaperCoverage is the region coverage the paper reports (Table 2),
	// which the sequential phase of the program approximates.
	PaperCoverage float64
	// Expect describes the qualitative outcome the paper reports, used in
	// EXPERIMENTS.md and the regression tests:
	//   "C"    — compiler-inserted sync is the clear winner
	//   "H"    — hardware-inserted sync is the clear winner
	//   "even" — both help comparably
	//   "none" — failed speculation is not a problem to begin with
	//   "hurt" — compiler sync slightly degrades (over-synchronization)
	Expect string
}

// registry holds all workloads in paper order.
var registry []*Workload

func register(w *Workload) *Workload {
	registry = append(registry, w)
	return w
}

// paperOrder lists benchmark names in the paper's Table 2 order.
var paperOrder = []string{
	"go", "m88ksim", "ijpeg", "gzip_comp", "gzip_decomp", "vpr_place",
	"gcc", "mcf", "crafty", "parser", "perlbmk", "gap",
	"bzip2_comp", "bzip2_decomp", "twolf",
}

// All returns the workloads in the paper's benchmark order.
func All() []*Workload {
	out := make([]*Workload, 0, len(paperOrder))
	for _, name := range paperOrder {
		for _, w := range registry {
			if w.Name == name {
				out = append(out, w)
			}
		}
	}
	return out
}

// ByName returns the named workload.
func ByName(name string) (*Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Names lists all benchmark names in order.
func Names() []string {
	out := make([]string, len(registry))
	for i, w := range registry {
		out[i] = w.Name
	}
	return out
}

// seq builds a deterministic pseudo-input vector of length n from a seed,
// used to construct train/ref input sets with controlled differences.
func seq(seed, n int) []int64 {
	out := make([]int64, n)
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := range out {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		out[i] = int64((x * 2685821657736338717) >> 33)
	}
	return out
}
