package workloads

// Benchmarks where the paper reports the two techniques as comparable,
// where failed speculation was never a problem, or where compiler
// synchronization slightly hurts.

// ijpeg — 132.ijpeg. Block-based image transform: epochs are almost fully
// independent (each works on its own block), with only rare boundary
// dependences. Speculation alone already performs well.
var Ijpeg = register(&Workload{
	Name:          "ijpeg",
	Label:         "IJPEG",
	PaperCoverage: 0.90,
	Expect:        "none",
	Character:     "independent per-block work; rare boundary dependences (<3%)",
	Train:         seq(119, 64),
	Ref:           seq(220, 64),
	Source: `
var image [4096]int;
var coef [4096]int;
var edge int;
var out [1024]int;

func main() {
	var i int;
	for i = 0; i < 250; i = i + 1 {
		image[i % 4096] = input(i) % 256;
	}
	parallel for i = 0; i < 500; i = i + 1 {
		var base int = (i * 16) % 4096;
		var j int = 0;
		var acc int = 0;
		while j < 16 {
			var px int = image[(base + j) % 4096];
			acc = acc + px * px % 251;
			j = j + 1;
		}
		// Coefficients land in each block's own region: no inter-epoch
		// aliasing with the image reads.
		coef[base] = acc % 256;
		if i % 40 == 0 {
			edge = edge + acc % 7;
		}
		out[i % 1024] = acc;
	}
	var sum int = edge + coef[16];
	for i = 0; i < 1024; i = i + 1 {
		sum = sum + out[i];
	}
	print(sum);
}
`,
})

// mcf — 181.mcf. Pointer-chasing network-simplex flavor: a shared queue
// head advances moderately often (~15%), mid-epoch, with heavy irregular
// memory traffic. Both techniques help modestly and comparably.
var Mcf = register(&Workload{
	Name:          "mcf",
	Label:         "MCF",
	PaperCoverage: 0.89,
	Expect:        "even",
	Character: "~15% mid-epoch dependence on a work-queue cursor amid " +
		"cache-unfriendly pointer chasing; C and H comparable",
	Train: seq(121, 64),
	Ref:   seq(222, 64),
	Source: `
type Arc struct {
	next *Arc;
	cost int;
}
var arcs [512]*Arc;
var qhead int;
var out [1024]int;

func main() {
	var i int;
	for i = 0; i < 512; i = i + 1 {
		var a *Arc = new(Arc);
		a->cost = i * 7 % 113;
		a->next = arcs[(i * 397) % 512];
		arcs[i] = a;
	}
	parallel for i = 0; i < 1000; i = i + 1 {
		var walk *Arc = arcs[(i * 131) % 512];
		var j int = 0;
		var acc int = 0;
		while walk != nil && j < 11 {
			acc = acc + walk->cost;
			walk = walk->next;
			j = j + 1;
		}
		if input(i) % 3 == 0 {
			qhead = qhead + acc % 5 + 1;
		}
		out[i % 1024] = acc + qhead % 3;
	}
	var sum int = qhead;
	for i = 0; i < 1024; i = i + 1 {
		sum = sum + out[i];
	}
	print(sum);
}
`,
})

// crafty — 186.crafty. Chess search with thread-private move generation;
// the shared transposition-table counter is touched in under 4% of epochs
// — below the synchronization threshold, and rarely violating.
var Crafty = register(&Workload{
	Name:          "crafty",
	Label:         "CRAFTY",
	PaperCoverage: 0.14,
	Expect:        "none",
	Character:     "dependences below the 5% threshold (~3%); both schemes ≈ U",
	Train:         seq(123, 64),
	Ref:           seq(224, 64),
	Source: `
var ttable [2048]int;
var hits int;
var out [1024]int;

func main() {
	var i int;
	var setup int = 0;
	for i = 0; i < 15000; i = i + 1 {
		ttable[i % 2048] = (ttable[i % 2048] * 7 + i) % 65536;
		setup = setup + ttable[i % 2048] % 2;
	}
	parallel for i = 0; i < 500; i = i + 1 {
		var j int = 0;
		var best int = -1000000;
		while j < 9 {
			var score int = ttable[(i * 43 + j * 71) % 2048] % 200 - 100;
			if score > best {
				best = score;
			}
			j = j + 1;
		}
		if i % 31 == 0 {
			hits = hits + 1;
		}
		out[i % 1024] = best;
	}
	var sum int = setup % 1000 + hits;
	for i = 0; i < 1024; i = i + 1 {
		sum = sum + out[i];
	}
	print(sum);
}
`,
})

// bzip2_comp — 256.bzip2 compressing. Several distinct dependences in the
// 6–12% band (the paper's Figure 6 shows bzip2_comp only speeds up once
// >5%-frequency loads are covered); both schemes capture them partially.
var Bzip2Comp = register(&Workload{
	Name:          "bzip2_comp",
	Label:         "BZIP2_COMP",
	PaperCoverage: 0.63,
	Expect:        "even",
	Character: "multiple dependences at 6–12% frequency (needs the low 5% " +
		"threshold, per Figure 6); moderate gains for both schemes",
	Train: seq(125, 96),
	Ref:   seq(226, 96),
	Source: `
var bucket0 int;
var filler0 [3]int;
var bucket1 int;
var filler1 [3]int;
var bucket2 int;
var data [4096]int;
var out [1024]int;

func main() {
	var i int;
	var setup int = 0;
	for i = 0; i < 1200; i = i + 1 {
		data[i % 4096] = (data[i % 4096] + i * 3 + input(i) % 17) % 65536;
		setup = setup + data[i % 4096] % 2;
	}
	parallel for i = 0; i < 600; i = i + 1 {
		var sym int = data[(i * 89) % 4096] % 100;
		if sym < 8 {
			bucket0 = bucket0 + sym;
		}
		if sym >= 50 && sym < 62 {
			bucket1 = bucket1 + sym % 7;
		}
		if sym >= 90 {
			bucket2 = bucket2 + 1;
		}
		var j int = 0;
		var acc int = 0;
		while j < 8 {
			acc = acc + data[(i * 23 + j * 151) % 4096] % 29;
			j = j + 1;
		}
		out[i % 1024] = acc + sym;
	}
	var sum int = setup % 1000 + bucket0 + bucket1 + bucket2;
	for i = 0; i < 1024; i = i + 1 {
		sum = sum + out[i];
	}
	print(sum);
}
`,
})

// bzip2_decomp — 256.bzip2 decompressing. Failed speculation was never a
// problem: epochs are private table reconstructions with a <1% shared
// touch. All policies behave like U.
var Bzip2Decomp = register(&Workload{
	Name:          "bzip2_decomp",
	Label:         "BZIP2_DECOMP",
	PaperCoverage: 0.13,
	Expect:        "none",
	Character:     "essentially no inter-epoch dependences (<1%)",
	Train:         seq(127, 64),
	Ref:           seq(228, 64),
	Source: `
var tables [4096]int;
var rare int;
var out [1024]int;

func main() {
	var i int;
	var setup int = 0;
	for i = 0; i < 17000; i = i + 1 {
		tables[i % 4096] = (tables[i % 4096] + i * 13) % 65536;
		setup = setup + tables[i % 4096] % 2;
	}
	parallel for i = 0; i < 500; i = i + 1 {
		var j int = 0;
		var acc int = 0;
		while j < 10 {
			acc = acc + tables[(i * 67 + j * 181) % 4096] % 41;
			j = j + 1;
		}
		if i % 120 == 0 {
			rare = rare + 1;
		}
		out[i % 1024] = acc;
	}
	var sum int = setup % 1000 + rare;
	for i = 0; i < 1024; i = i + 1 {
		sum = sum + out[i];
	}
	print(sum);
}
`,
})

// twolf — 300.twolf. The over-synchronization case: the profile sees a
// frequent dependence, but it is distance-3 (the producer is three epochs
// back and almost always committed by the time the consumer reads), so it
// rarely violates under plain speculation. Synchronizing it only adds
// wait overhead — the paper reports a small degradation under C.
var Twolf = register(&Workload{
	Name:          "twolf",
	Label:         "TWOLF",
	PaperCoverage: 0.19,
	Expect:        "hurt",
	Character: "frequent distance-3 dependence that rarely violates; " +
		"compiler synchronization is pure overhead",
	Train: seq(129, 64),
	Ref:   seq(230, 64),
	Source: `
// slots holds 8 values padded to one cache line (4 words) each, so the
// distance-3 dependence is a pure true dependence with no false sharing.
var slots [32]int;
var cells [2048]int;
var out [1024]int;

func main() {
	var i int;
	var setup int = 0;
	for i = 0; i < 13000; i = i + 1 {
		cells[i % 2048] = (cells[i % 2048] + i * 11) % 65536;
		setup = setup + cells[i % 2048] % 2;
	}
	parallel for i = 0; i < 500; i = i + 1 {
		// Store this epoch's slot EARLY...
		slots[(i % 8) * 4] = i * 13 % 97;
		var j int = 0;
		var acc int = 0;
		while j < 11 {
			acc = acc + cells[(i * 59 + j * 83) % 2048] % 31;
			j = j + 1;
		}
		// ...and read the slot written 3 epochs ago at the very END: by
		// then the producer has always committed, so this dependence is
		// frequent in the (distance-blind) profile yet essentially never
		// violates at runtime — synchronizing it is pure overhead (the
		// paper's TWOLF over-synchronization case).
		var prev int = slots[((i + 5) % 8) * 4];
		out[i % 1024] = acc + prev % 17;
	}
	var sum int = setup % 1000;
	for i = 0; i < 1024; i = i + 1 {
		sum = sum + out[i];
	}
	print(sum + slots[0] + slots[20]);
}
`,
})
