package workloads

// Benchmarks where the paper reports compiler-inserted synchronization as
// the clear winner: the hot dependence's value is produced early in the
// producer epoch, so forwarding it point-to-point overlaps most of both
// epochs, while hardware synchronization (stall until the previous epoch
// completes) serializes.

// parser — 197.parser. The paper's running example (Figure 4): a linked
// free list manipulated through procedures called from the parallelized
// loop; free_list is read and written every iteration through aliasing
// pointers, on multi-level call paths that require cloning.
var Parser = register(&Workload{
	Name:          "parser",
	Label:         "PARSER",
	PaperCoverage: 0.37,
	Expect:        "C",
	Character: "frequent (≈100%) distance-1 dependence on a free-list head " +
		"reached through 2-level call paths; value produced early; the " +
		"paper's Figure 4 pattern",
	Train: seq(101, 64),
	Ref:   seq(202, 64),
	Source: `
type Elem struct {
	next *Elem;
	val  int;
}
var free_list *Elem;
var dict [512]int;
var out [1024]int;

func free_element(e *Elem) {
	e->next = free_list;
	free_list = e;
}

func use_element() *Elem {
	var e *Elem = free_list;
	if e != nil {
		free_list = e->next;
	}
	return e;
}

func parse_word(i int) int {
	// A fresh element joins the list every word, so the list head (the
	// forwarded value) is different in every epoch — unpredictable to a
	// last-value predictor, as the paper observes for real benchmarks.
	free_element(new(Elem));
	var e *Elem = use_element();
	if e == nil {
		e = new(Elem);
	}
	e->val = i * 3 + dict[i % 512];
	var v int = e->val;
	free_element(e);
	return v;
}

func main() {
	var i int;
	// Sequential phase: build the dictionary (coverage ~37%).
	for i = 0; i < 3800; i = i + 1 {
		dict[i % 512] = dict[i % 512] + i * 7 + input(i) % 13;
	}
	free_element(new(Elem));
	free_element(new(Elem));
	parallel for i = 0; i < 500; i = i + 1 {
		var v int = parse_word(i);
		var j int = 0;
		var acc int = 0;
		while j < 6 {
			acc = acc + dict[(i * 13 + j * 29) % 512];
			j = j + 1;
		}
		out[i % 1024] = v + acc % 97;
	}
	var sum int = 0;
	for i = 0; i < 1024; i = i + 1 {
		sum = sum + out[i];
	}
	print(sum);
}
`,
})

// gap — 254.gap. A bump-pointer arena allocator: the allocation pointer is
// read and advanced at the very start of every epoch, then the epoch does
// substantial private work. The forwarded value is available almost
// immediately, the best possible case for compiler forwarding.
var Gap = register(&Workload{
	Name:          "gap",
	Label:         "GAP",
	PaperCoverage: 0.57,
	Expect:        "C",
	Character: "100%-frequency allocator bump-pointer dependence produced in " +
		"the first instructions of each epoch; long private tail",
	Train: seq(103, 64),
	Ref:   seq(204, 64),
	Source: `
var arena_top int;
var pool [2048]int;
var out [1024]int;

func alloc(n int) int {
	var p int = arena_top;
	arena_top = p + n;
	return p;
}

func main() {
	var i int;
	for i = 0; i < 2048; i = i + 1 {
		pool[i] = i * 11 + input(i) % 7;
	}
	// Sequential phase (coverage ~57%).
	var warm int = 0;
	for i = 0; i < 5200; i = i + 1 {
		warm = warm + pool[(i * 17) % 2048];
	}
	parallel for i = 0; i < 500; i = i + 1 {
		var p int = alloc((i % 5) + 2);
		var j int = 0;
		var acc int = 0;
		while j < 14 {
			acc = acc + pool[(p + j * 31) % 2048] * (j + 1);
			j = j + 1;
		}
		out[i % 1024] = acc + p % 101;
	}
	var sum int = warm % 1000;
	for i = 0; i < 1024; i = i + 1 {
		sum = sum + out[i];
	}
	print(sum);
}
`,
})

// gzip_decomp — 164.gzip decompressing. A sliding-window decompressor: the
// window write position is the hot dependence, advanced at the top of each
// epoch; the bulk of the epoch copies match bytes into the window at
// addresses that rarely collide between epochs.
var GzipDecomp = register(&Workload{
	Name:          "gzip_decomp",
	Label:         "GZIP_DECOMP",
	PaperCoverage: 0.90,
	Expect:        "C",
	Character: "hot window-position dependence produced early; long copy tail " +
		"touching mostly-disjoint window addresses; compiler forwards far " +
		"earlier than hardware stalls allow",
	Train: seq(105, 96),
	Ref:   seq(206, 96),
	Source: `
var wpos int;
var window [4096]int;
var out [1024]int;

func main() {
	var i int;
	for i = 0; i < 500; i = i + 1 {
		window[i % 4096] = input(i) + i;
	}
	parallel for i = 0; i < 500; i = i + 1 {
		var len int = (input(i) % 7) + 4;
		var src int = (input(i + 1) % 2048) + 1;
		var p int = wpos;
		wpos = p + len;
		var j int = 0;
		while j < len {
			window[(p + j) % 4096] = window[(p + 4096 - src + j) % 4096] + 1;
			j = j + 1;
		}
		out[i % 1024] = window[(p + len - 1) % 4096];
	}
	var sum int = wpos;
	for i = 0; i < 1024; i = i + 1 {
		sum = sum + out[i];
	}
	print(sum);
}
`,
})

// go — 099.go. A game-tree engine: roughly a third of the moves update a
// shared board hash through a helper procedure (value produced early in
// the epoch); the rest of the epoch evaluates positions privately.
var Go = register(&Workload{
	Name:          "go",
	Label:         "GO",
	PaperCoverage: 0.22,
	Expect:        "C",
	Character: "~40% frequency dependence on a board hash through a helper " +
		"call, produced early; large private evaluation tail",
	Train: seq(107, 64),
	Ref:   seq(208, 64),
	Source: `
var board_hash int;
var board [1024]int;
var out [1024]int;

func play_move(pos int) int {
	var h int = board_hash;
	board_hash = h ^ (pos * 2654435761);
	board[pos % 1024] = board[pos % 1024] + 1;
	return h;
}

func evaluate(i int) int {
	var j int = 0;
	var score int = 0;
	while j < 10 {
		score = score + board[(i * 37 + j * 101) % 1024] * (j % 3 + 1);
		j = j + 1;
	}
	return score;
}

func main() {
	var i int;
	// Sequential phase sized for ~22% coverage.
	var setup int = 0;
	for i = 0; i < 11000; i = i + 1 {
		board[i % 1024] = (board[i % 1024] + i * 13) % 100000;
		setup = setup + board[i % 1024] % 5;
	}
	parallel for i = 0; i < 500; i = i + 1 {
		var h int = 0;
		if i % 5 < 2 {
			h = play_move(i * 7 % 997);
		}
		var score int = evaluate(i);
		out[i % 1024] = score + h % 31;
	}
	var sum int = setup % 1000;
	for i = 0; i < 1024; i = i + 1 {
		sum = sum + out[i];
	}
	print(sum + board_hash % 9973);
}
`,
})

// gcc — 176.gcc. A compiler-like pass: statements processed per epoch
// sometimes intern a symbol, reaching a shared symbol-table cursor through
// a 3-deep call path — the cloning transformation's best case.
var Gcc = register(&Workload{
	Name:          "gcc",
	Label:         "GCC",
	PaperCoverage: 0.18,
	Expect:        "C",
	Character: "~50% frequency symbol-table dependence through a 3-level " +
		"call path; cloning confines synchronization to the hot path",
	Train: seq(109, 64),
	Ref:   seq(210, 64),
	Source: `
var symtab_top int;
var symtab [2048]int;
var hashes [2048]int;
var out [1024]int;

func intern(h int) int {
	var t int = symtab_top;
	symtab_top = t + 1;
	symtab[t % 2048] = h;
	return t;
}

func lookup_or_insert(h int) int {
	var probe int = hashes[h % 2048];
	if probe % 5 != 0 {
		return intern(h);
	}
	return probe;
}

func process_stmt(i int) int {
	var h int = i * 31 + 17;
	var id int = lookup_or_insert(h);
	var j int = 0;
	var v int = 0;
	while j < 8 {
		v = v + hashes[(h + j * 67) % 2048];
		j = j + 1;
	}
	return v + id;
}

func main() {
	var i int;
	var setup int = 0;
	// The hash table is read-only during the parallel region; the shared
	// state is the symbol-table cursor reached through 3-deep calls.
	for i = 0; i < 7000; i = i + 1 {
		hashes[i % 2048] = (hashes[i % 2048] * 3 + i + input(i) % 11) % 65536;
		setup = setup + hashes[i % 2048] % 3;
	}
	parallel for i = 0; i < 500; i = i + 1 {
		out[i % 1024] = process_stmt(i);
	}
	var sum int = setup % 1000 + symtab_top + symtab[5];
	for i = 0; i < 1024; i = i + 1 {
		sum = sum + out[i];
	}
	print(sum);
}
`,
})

// perlbmk — 253.perlbmk. An interpreter dispatch loop: three opcode
// handlers, selected by the input stream, each touching a shared
// interpreter state cell through its own call path. Every path is frequent
// enough to synchronize, so the compiler clones all three handlers.
var Perlbmk = register(&Workload{
	Name:          "perlbmk",
	Label:         "PERLBMK",
	PaperCoverage: 0.29,
	Expect:        "C",
	Character: "shared interpreter state updated by 3 distinct handler call " +
		"paths (~30% each); all cloned and synchronized; value early",
	Train: seq(111, 128),
	Ref:   seq(212, 128),
	Source: `
var ip_state int;
var heap [2048]int;
var out [1024]int;

func op_add(x int) int {
	var s int = ip_state;
	ip_state = s + x % 29 + 1;
	return s;
}

func op_cat(x int) int {
	var s int = ip_state;
	ip_state = s ^ (x * 73);
	return s;
}

func op_match(x int) int {
	var s int = ip_state;
	ip_state = (s * 5 + x) % 1000003;
	return s;
}

func run_op(i int) int {
	var op int = input(i) % 3;
	var v int = 0;
	if op == 0 {
		v = op_add(i);
	} else if op == 1 {
		v = op_cat(i);
	} else {
		v = op_match(i);
	}
	var j int = 0;
	while j < 7 {
		v = v + heap[(i * 41 + j * 13) % 2048] % 7;
		j = j + 1;
	}
	return v;
}

func main() {
	var i int;
	var setup int = 0;
	for i = 0; i < 4700; i = i + 1 {
		heap[i % 2048] = heap[i % 2048] + i * 3 + input(i) % 5;
		setup = setup + heap[i % 2048] % 2;
	}
	parallel for i = 0; i < 500; i = i + 1 {
		out[i % 1024] = run_op(i);
	}
	var sum int = setup % 1000 + ip_state % 99991;
	for i = 0; i < 1024; i = i + 1 {
		sum = sum + out[i];
	}
	print(sum);
}
`,
})
