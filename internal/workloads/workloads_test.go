package workloads

import (
	"testing"

	"tlssync/internal/core"
)

func TestAllCompile(t *testing.T) {
	ws := All()
	if len(ws) != 15 {
		t.Fatalf("workloads = %d, want 15", len(ws))
	}
	for _, w := range ws {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			b, err := core.Compile(core.Config{
				Source:     w.Source,
				TrainInput: w.Train,
				RefInput:   w.Ref,
				Seed:       42,
			})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			// At least one region must be accepted.
			if len(b.AcceptedKeys()) == 0 {
				for _, d := range b.Decisions {
					t.Logf("decision: %+v", d)
				}
				t.Fatal("no accepted regions")
			}
			// All variants must be semantically equivalent on both inputs.
			if err := b.CheckEquivalence(w.Ref); err != nil {
				t.Errorf("ref equivalence: %v", err)
			}
			if err := b.CheckEquivalence(w.Train); err != nil {
				t.Errorf("train equivalence: %v", err)
			}
		})
	}
}

func TestPaperOrder(t *testing.T) {
	names := Names()
	if len(names) != 15 {
		t.Fatalf("names = %d", len(names))
	}
	all := All()
	if all[0].Name != "go" || all[14].Name != "twolf" {
		t.Errorf("order: first=%s last=%s", all[0].Name, all[14].Name)
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("parser")
	if err != nil || w.Label != "PARSER" {
		t.Errorf("ByName(parser) = %v, %v", w, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestTrainRefDiffer(t *testing.T) {
	// gzip_comp's whole point is profile-input sensitivity.
	w, _ := ByName("gzip_comp")
	same := 0
	n := len(w.Train)
	if len(w.Ref) < n {
		n = len(w.Ref)
	}
	for i := 0; i < n; i++ {
		if w.Train[i] == w.Ref[i] {
			same++
		}
	}
	if same == n {
		t.Error("train and ref inputs identical for gzip_comp")
	}
}

func TestCharactersDocumented(t *testing.T) {
	for _, w := range All() {
		if w.Character == "" || w.Expect == "" || w.Label == "" {
			t.Errorf("%s: missing metadata", w.Name)
		}
		if w.PaperCoverage <= 0 || w.PaperCoverage > 1 {
			t.Errorf("%s: coverage %f out of range", w.Name, w.PaperCoverage)
		}
	}
}

func TestWorkloadEpochCounts(t *testing.T) {
	// Every workload's region must produce a healthy number of epochs of
	// reasonable size (region selection heuristics must hold).
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			b, err := core.Compile(core.Config{
				Source: w.Source, TrainInput: w.Train, RefInput: w.Ref, Seed: 42,
			})
			if err != nil {
				t.Fatal(err)
			}
			prof, err := b.DepProfile(w.Ref)
			if err != nil {
				t.Fatal(err)
			}
			rp := prof.Regions[0]
			if rp == nil {
				t.Fatal("no region profile")
			}
			if rp.Epochs < 100 {
				t.Errorf("only %d epochs", rp.Epochs)
			}
			size := float64(rp.Events) / float64(rp.Epochs)
			if size < 15 || size > 2000 {
				t.Errorf("epoch size %.0f out of range", size)
			}
		})
	}
}
