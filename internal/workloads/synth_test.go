package workloads

import "testing"

func TestSynthDeterministic(t *testing.T) {
	a, b := Synth(7), Synth(7)
	if a.Name != "synth-7" || a.Source != b.Source || a.Label != b.Label {
		t.Fatal("same seed must build the identical workload")
	}
	if c := Synth(8); c.Source == a.Source {
		t.Fatal("different seeds must generate different programs")
	}
	if len(a.Train) == 0 || len(a.Ref) == 0 {
		t.Fatal("synthetic workloads need train/ref inputs")
	}
}

func TestSynthSeed(t *testing.T) {
	cases := []struct {
		name string
		seed uint64
		ok   bool
	}{
		{"synth-42", 42, true},
		{"synth-0", 0, true},
		{"synth-", 0, false},
		{"synth-x", 0, false},
		{"synth--3", 0, false},
		{"gzip_comp", 0, false},
		{"", 0, false},
	}
	for _, tc := range cases {
		seed, ok := SynthSeed(tc.name)
		if ok != tc.ok || seed != tc.seed {
			t.Errorf("SynthSeed(%q) = (%d, %v), want (%d, %v)", tc.name, seed, ok, tc.seed, tc.ok)
		}
	}
}

func TestSynthSet(t *testing.T) {
	a, b := SynthSet(7, 4), SynthSet(7, 4)
	if len(a) != 4 {
		t.Fatalf("len = %d", len(a))
	}
	seen := map[string]bool{}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Source != b[i].Source {
			t.Fatal("SynthSet is not deterministic")
		}
		if seen[a[i].Name] {
			t.Fatalf("duplicate synthetic workload %s", a[i].Name)
		}
		seen[a[i].Name] = true
	}
	if c := SynthSet(8, 4); c[0].Name == a[0].Name {
		t.Fatal("different root seeds must derive different sets")
	}
}

func TestResolve(t *testing.T) {
	if w, err := Resolve("gzip_comp"); err != nil || w.Name != "gzip_comp" {
		t.Fatalf("Resolve(gzip_comp) = %v, %v", w, err)
	}
	if w, err := Resolve("synth-3"); err != nil || w.Name != "synth-3" {
		t.Fatalf("Resolve(synth-3) = %v, %v", w, err)
	}
	if _, err := Resolve("nope"); err == nil {
		t.Fatal("Resolve must reject unknown names")
	}
}
