// Package opt implements classical scalar optimizations over the IR:
// per-block constant folding and copy propagation, plus global
// liveness-based dead-code elimination. The original system relied on
// gcc -O3 as its backend; these passes play that role for MiniC.
//
// The passes never change the CFG (blocks and terminators are preserved),
// so region keys, parallel-header marks and loop structure survive; they
// run before profiling, so every compiled variant sees the same optimized
// instruction stream. The pipeline leaves them off by default — the
// evaluation's workloads are calibrated against unoptimized code — and
// exposes them via core.Config.Optimize (ablated by
// BenchmarkAblationOptimizer).
package opt

import (
	"tlssync/internal/dataflow"
	"tlssync/internal/ir"
)

// Stats reports what the optimizer did.
type Stats struct {
	Folded     int // Bin/Neg/Not instructions replaced by Const
	CopiesProp int // uses rewritten by copy propagation
	Removed    int // dead instructions eliminated
}

// Optimize runs fold/copy-prop/DCE to a fixpoint over every function.
func Optimize(p *ir.Program) Stats {
	var total Stats
	for _, f := range p.Funcs {
		for {
			s := optimizeFunc(f)
			total.Folded += s.Folded
			total.CopiesProp += s.CopiesProp
			total.Removed += s.Removed
			if s == (Stats{}) {
				break
			}
		}
	}
	return total
}

func optimizeFunc(f *ir.Func) Stats {
	var s Stats
	for _, b := range f.Blocks {
		s.Folded += foldBlock(b)
		s.CopiesProp += propagateBlock(b)
	}
	s.Removed = eliminateDead(f)
	return s
}

// foldBlock replaces pure operations on known constants with Const.
func foldBlock(b *ir.Block) int {
	consts := make(map[ir.Reg]int64)
	folded := 0
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.Const:
			consts[in.Dst] = in.Imm
			continue
		case ir.Bin:
			av, aok := consts[in.A]
			bv, bok := consts[in.B]
			if aok && bok {
				in.Op = ir.Const
				in.Imm = in.Alu.Eval(av, bv)
				in.A, in.B = ir.None, ir.None
				consts[in.Dst] = in.Imm
				folded++
				continue
			}
		case ir.Neg:
			if v, ok := consts[in.A]; ok {
				in.Op = ir.Const
				in.Imm = -v
				in.A = ir.None
				consts[in.Dst] = in.Imm
				folded++
				continue
			}
		case ir.Not:
			if v, ok := consts[in.A]; ok {
				in.Op = ir.Const
				if v == 0 {
					in.Imm = 1
				} else {
					in.Imm = 0
				}
				in.A = ir.None
				consts[in.Dst] = in.Imm
				folded++
				continue
			}
		case ir.Mov:
			if v, ok := consts[in.A]; ok {
				in.Op = ir.Const
				in.Imm = v
				in.A = ir.None
				consts[in.Dst] = in.Imm
				folded++
				continue
			}
		}
		if in.HasDst() {
			delete(consts, in.Dst)
		}
	}
	return folded
}

// propagateBlock rewrites uses of plain register copies (Mov dst, src)
// to use the source directly, within a block, invalidating on
// redefinition of either side. Registers are not SSA, so the copy map
// must be purged aggressively.
func propagateBlock(b *ir.Block) int {
	copyOf := make(map[ir.Reg]ir.Reg)
	rewritten := 0
	invalidate := func(r ir.Reg) {
		delete(copyOf, r)
		for d, s := range copyOf {
			if s == r {
				delete(copyOf, d)
			}
		}
	}
	replace := func(r ir.Reg) ir.Reg {
		if s, ok := copyOf[r]; ok {
			rewritten++
			return s
		}
		return r
	}
	for _, in := range b.Instrs {
		// Rewrite uses first.
		switch in.Op {
		case ir.Const, ir.AddrGlobal, ir.AddrLocal, ir.NewObj,
			ir.WaitScalar, ir.WaitMemAddr, ir.WaitMemVal, ir.Br, ir.SignalMemNull:
			// no register uses
		case ir.Call:
			for i := range in.Args {
				in.Args[i] = replace(in.Args[i])
			}
		default:
			if in.A != ir.None {
				in.A = replace(in.A)
			}
			if in.B != ir.None {
				in.B = replace(in.B)
			}
		}
		// Then record/invalidate definitions.
		if in.Op == ir.Mov && in.A != in.Dst {
			invalidate(in.Dst)
			copyOf[in.Dst] = in.A
			continue
		}
		if in.HasDst() {
			invalidate(in.Dst)
		}
	}
	return rewritten
}

// pure reports whether an op has no side effects beyond its destination.
func pure(op ir.Op) bool {
	switch op {
	case ir.Const, ir.Bin, ir.Neg, ir.Not, ir.Mov, ir.AddrGlobal, ir.AddrLocal:
		return true
	}
	return false
}

// eliminateDead removes pure instructions whose destination is dead at
// their program point (global liveness).
func eliminateDead(f *ir.Func) int {
	lv := dataflow.ComputeLiveness(f)
	removed := 0
	for _, b := range f.Blocks {
		live := lv.Out[b].Copy()
		// Walk backwards, maintaining liveness within the block.
		keep := make([]*ir.Instr, 0, len(b.Instrs))
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			dead := pure(in.Op) && in.HasDst() && !live.Has(int(in.Dst))
			if dead {
				removed++
				continue
			}
			if in.HasDst() {
				live.Clear(int(in.Dst))
			}
			for _, u := range in.Uses() {
				live.Set(int(u))
			}
			keep = append(keep, in)
		}
		// Reverse keep back into order.
		for i, j := 0, len(keep)-1; i < j; i, j = i+1, j-1 {
			keep[i], keep[j] = keep[j], keep[i]
		}
		b.Instrs = keep
	}
	return removed
}
