package opt

import (
	"testing"

	"tlssync/internal/interp"
	"tlssync/internal/ir"
	"tlssync/internal/lang"
	"tlssync/internal/lower"
	"tlssync/internal/progen"
	"tlssync/internal/regions"
)

func compile(t testing.TB, src string) *ir.Program {
	t.Helper()
	c, err := lang.Check(lang.MustParse(src))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := lower.Lower(c)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func countInstrs(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// equivalent checks that optimized and unoptimized programs print the
// same output.
func equivalent(t *testing.T, src string, input []int64, seed uint64) Stats {
	t.Helper()
	base := compile(t, src)
	baseTr, err := interp.Run(base, interp.Options{Input: input, Seed: seed})
	if err != nil {
		t.Fatalf("base: %v", err)
	}

	p := compile(t, src)
	before := countInstrs(p)
	stats := Optimize(p)
	after := countInstrs(p)
	if err := p.Verify(); err != nil {
		t.Fatalf("verify after optimize: %v", err)
	}
	if after > before {
		t.Errorf("instruction count grew: %d -> %d", before, after)
	}

	tr, err := interp.Run(p, interp.Options{Input: input, Seed: seed})
	if err != nil {
		t.Fatalf("optimized run: %v", err)
	}
	if len(tr.Output) != len(baseTr.Output) {
		t.Fatalf("output length %d, want %d", len(tr.Output), len(baseTr.Output))
	}
	for i := range tr.Output {
		if tr.Output[i] != baseTr.Output[i] {
			t.Fatalf("output[%d] = %d, want %d", i, tr.Output[i], baseTr.Output[i])
		}
	}
	return stats
}

func TestConstantFolding(t *testing.T) {
	stats := equivalent(t, `
func main() {
	var x int = 2 + 3 * 4;
	print(x);
	print(10 / 2 - 1);
}`, nil, 1)
	if stats.Folded == 0 {
		t.Error("nothing folded")
	}
}

func TestDeadCodeElimination(t *testing.T) {
	stats := equivalent(t, `
func main() {
	var unused int = 5 * 7;
	var alsounused int = unused + 1;
	print(3);
}`, nil, 1)
	if stats.Removed == 0 {
		t.Error("dead code survived")
	}
}

func TestCopyPropagation(t *testing.T) {
	// Runtime values (input) cannot be constant-folded, so the copy
	// chain must be handled by copy propagation.
	stats := equivalent(t, `
func main() {
	var a int = input(0);
	var b int = a;
	var c int = b;
	print(c + b);
}`, []int64{41}, 1)
	if stats.CopiesProp == 0 {
		t.Error("no copies propagated")
	}
}

func TestLoopsPreserved(t *testing.T) {
	src := `
var g int;
func main() {
	var i int;
	parallel for i = 0; i < 50; i = i + 1 {
		g = g + i * 2;
	}
	print(g);
}`
	equivalent(t, src, nil, 1)
	// Region keys must survive (no CFG changes).
	p := compile(t, src)
	keysBefore := regions.Candidates(p)
	Optimize(p)
	keysAfter := regions.Candidates(p)
	if len(keysBefore) != len(keysAfter) || keysBefore[0] != keysAfter[0] {
		t.Errorf("region keys changed: %v -> %v", keysBefore, keysAfter)
	}
}

func TestSideEffectsKept(t *testing.T) {
	// Stores, calls and prints must never be eliminated even if their
	// results look unused.
	src := `
var g int;
func touch() int { g = g + 1; return g; }
func main() {
	var unused int = touch();
	print(g);
}`
	equivalent(t, src, nil, 1)
}

func TestNonSSACopySafety(t *testing.T) {
	// Copy propagation must stop at redefinitions of either side.
	equivalent(t, `
func main() {
	var a int = 1;
	var b int = a;
	a = 100;
	print(b);
	b = 7;
	print(a + b);
}`, nil, 1)
}

func TestOptimizeRandomPrograms(t *testing.T) {
	// Property: optimization preserves semantics on random programs.
	for seed := uint64(1); seed <= 12; seed++ {
		src := progen.Generate(seed, progen.DefaultConfig())
		stats := equivalent(t, src, []int64{int64(seed)}, seed)
		if stats.Removed == 0 && stats.Folded == 0 && stats.CopiesProp == 0 {
			t.Logf("seed %d: optimizer found nothing (acceptable but unusual)", seed)
		}
	}
}

func TestOptimizeReducesWorkloadSize(t *testing.T) {
	src := `
var g int;
var out [64]int;
func main() {
	var i int;
	parallel for i = 0; i < 40; i = i + 1 {
		var k int = 8 * 4;
		var m int = k;
		g = g + m + i;
		out[i % 64] = g;
	}
	print(g);
}`
	p := compile(t, src)
	before := countInstrs(p)
	Optimize(p)
	after := countInstrs(p)
	if after >= before {
		t.Errorf("no reduction: %d -> %d", before, after)
	}
}
