package sim

import (
	"sync"

	"tlssync/internal/ir"
	"tlssync/internal/trace"
)

// Scoreboard pooling. A figure sweep simulates the same traces under a
// dozen policies, and every epoch of every region instance materializes
// one epochRun (five maps + a frame scoreboard); call-heavy epochs add
// one frameSB per dynamic call. Both are recycled here. The put side
// clears every map and resets every scalar field, so a pooled object is
// indistinguishable from a freshly allocated one — which is also what
// keeps simulation deterministic under pooling, and what
// pool_test.go's contamination tests pin down. sync.Pool is shared
// across concurrently running machines (parallel variant simulation);
// it is safe for that because no object is ever put while referenced.

var runPool sync.Pool

// newRun returns a reset epochRun with one base frame, reusing pooled
// scoreboards when available.
func (m *machine) newRun(epoch *trace.Epoch, cpu int) *epochRun {
	run, _ := runPool.Get().(*epochRun)
	if run == nil {
		run = &epochRun{
			loadLines:  make(map[int64]loadMark),
			storeLines: make(map[int64]int64),
			storeWords: make(map[int64]bool),
			signaled:   make(map[int64]bool),
			sigBuf:     make(map[int64]int64),
		}
	}
	run.epoch = epoch
	run.cpu = cpu
	run.consumedGen = -1
	run.frames = append(run.frames, getFrameSB(0, ir.None))
	return run
}

// putRun recycles a finished (committed or locally-scoped) run. The
// caller must not touch it afterwards.
func putRun(run *epochRun) {
	for _, f := range run.frames {
		putFrameSB(f)
	}
	run.frames = run.frames[:0]
	clear(run.loadLines)
	clear(run.storeLines)
	clear(run.storeWords)
	clear(run.signaled)
	clear(run.sigBuf)
	run.epoch = nil
	run.span = nil
	run.idx, run.gen, run.cpu = 0, 0, 0
	run.slots = Slots{}
	run.finished = false
	run.finishCycle, run.lastComplete, run.stallUntil = 0, 0, 0
	run.stallSync, run.stallFail = false, false
	run.consumedGen = 0
	run.sigBufPeak = 0
	run.mispredicted, run.predictBan = false, false
	run.mispredictPCs = run.mispredictPCs[:0]
	run.trainings = run.trainings[:0]
	run.scalarWait, run.memWait, run.hwWait = 0, 0, 0
	runPool.Put(run)
}

var framePool sync.Pool

// getFrameSB returns a frame scoreboard with an empty ready map.
func getFrameSB(base int64, callDst ir.Reg) *frameSB {
	f, _ := framePool.Get().(*frameSB)
	if f == nil {
		f = &frameSB{ready: make(map[ir.Reg]int64)}
	}
	f.base, f.callDst = base, callDst
	return f
}

// putFrameSB recycles a popped frame scoreboard.
func putFrameSB(f *frameSB) {
	clear(f.ready)
	framePool.Put(f)
}
