package sim

import "fmt"

// Slots is the paper's graduation-slot breakdown: every potential
// graduation slot (cycles x issue width x CPUs) is classified as busy
// (an instruction graduated in a run that eventually committed), fail
// (any slot of a run that was squashed), sync (stalled waiting for
// synchronization in a committed run), or other (everything else:
// dependency stalls, cache misses, idle CPUs, commit waits).
type Slots struct {
	Busy  int64
	Fail  int64
	Sync  int64
	Other int64
}

// Total returns the slot count.
func (s Slots) Total() int64 { return s.Busy + s.Fail + s.Sync + s.Other }

// Add accumulates o into s.
func (s *Slots) Add(o Slots) {
	s.Busy += o.Busy
	s.Fail += o.Fail
	s.Sync += o.Sync
	s.Other += o.Other
}

// AllFail converts every slot to fail (used when a run is squashed).
func (s Slots) AllFail() Slots { return Slots{Fail: s.Total()} }

// ViolBucket classifies a violating load for the Figure 11 analysis: by
// which scheme(s) the load would have been synchronized.
type ViolBucket int

// Violation buckets.
const (
	BucketNeither  ViolBucket = iota // synchronized by neither scheme
	BucketCompiler                   // compiler only
	BucketHardware                   // hardware only
	BucketBoth                       // both
	numBuckets
)

var bucketNames = [...]string{"neither", "compiler-only", "hardware-only", "both"}

// String names the bucket.
func (b ViolBucket) String() string { return bucketNames[b] }

// RegionStats aggregates one region's execution across all of its dynamic
// instances under one policy.
type RegionStats struct {
	RegionID int
	Cycles   int64 // wall-clock cycles spent in the region (all instances)
	Slots    Slots
	Epochs   int64 // committed epochs
}

// Result is the outcome of one simulation.
type Result struct {
	Policy  string
	Machine MachineConfig

	Regions map[int]*RegionStats

	SeqCycles   int64 // cycles in sequential segments (1 CPU)
	TotalCycles int64 // SeqCycles + all region cycles

	Violations int64 // epoch squashes due to data-dependence violations
	Restarts   int64 // total squashes (violations + cascades + mispredicts)
	ViolByKind map[string]int64

	// ViolBuckets classifies violating loads per Figure 11.
	ViolBuckets [4]int64

	// Stall accounting (cycles, summed over CPUs, committed runs only).
	ScalarWaitCycles int64
	MemWaitCycles    int64
	HWSyncCycles     int64

	// SigBufPeak is the maximum signal-address-buffer occupancy observed
	// (the paper reports 10 entries always suffice).
	SigBufPeak int

	// Spans holds per-epoch lifetimes when Input.CollectTimeline was set.
	Spans []EpochSpan
}

// RegionCycles sums cycles across regions.
func (r *Result) RegionCycles() int64 {
	var n int64
	for _, rs := range r.Regions {
		n += rs.Cycles
	}
	return n
}

// RegionSlots sums slot breakdowns across regions.
func (r *Result) RegionSlots() Slots {
	var s Slots
	//lint:ignore D001 Slots.Add is integer addition — commutative, so the summation order is unobservable
	for _, rs := range r.Regions {
		s.Add(rs.Slots)
	}
	return s
}

// String renders a one-line summary.
func (r *Result) String() string {
	s := r.RegionSlots()
	return fmt.Sprintf("%s: region=%d cycles seq=%d viol=%d restarts=%d slots{busy=%d fail=%d sync=%d other=%d}",
		r.Policy, r.RegionCycles(), r.SeqCycles, r.Violations, r.Restarts,
		s.Busy, s.Fail, s.Sync, s.Other)
}
