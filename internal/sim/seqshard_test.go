package sim

import (
	"encoding/json"
	"reflect"
	"testing"
)

// callSrc adds function calls, multiplies/divides and a pre/post-loop
// sequential tail so the sharded path sees mixed units: seq segments,
// region epochs, call frames, non-unit ALU latencies.
const callSrc = `
var data [1024]int;
var out int;
func mix(x int, y int) int {
	var t int = x * 31 + y / 3;
	return t % 4093;
}
func main() {
	var i int;
	var warm int;
	for i = 0; i < 200; i = i + 1 {
		warm = warm + mix(i, input(i));
		data[i % 1024] = warm;
	}
	parallel for i = 0; i < 400; i = i + 1 {
		data[(i * 97) % 1024] = mix(data[(i * 97) % 1024], i);
	}
	for i = 0; i < 50; i = i + 1 {
		out = out + data[i * 20 % 1024];
	}
	print(out);
}
`

// seqBaseline times the plain binary's trace at the given worker count.
func seqBaseline(t *testing.T, src string, workers int) *Result {
	t.Helper()
	b := build(t, src)
	tr, err := b.Trace(b.Plain, b.Config.RefInput)
	if err != nil {
		t.Fatal(err)
	}
	return SimulateSequentialRegions(Input{Trace: tr, Workers: workers})
}

// TestSeqShardMatchesSerial is the sharding correctness proof in test
// form: for every worker count the sharded sequential baseline must be
// bit-identical to the serial reference path, both as Go values and as
// the JSON that reaches reports and the artifact store.
func TestSeqShardMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"independent", independentSrc},
		{"dependent", dependentSrc},
		{"calls_and_tails", callSrc},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			want := seqBaseline(t, tc.src, 1)
			for _, workers := range []int{2, 3, 8} {
				got := seqBaseline(t, tc.src, workers)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("workers=%d: sharded result differs from serial", workers)
				}
				wj, _ := json.Marshal(want)
				gj, _ := json.Marshal(got)
				if string(wj) != string(gj) {
					t.Errorf("workers=%d: JSON differs:\nserial:  %s\nsharded: %s", workers, wj, gj)
				}
			}
			if want.TotalCycles <= 0 || want.SeqCycles <= 0 {
				t.Fatalf("degenerate baseline: %+v", want)
			}
			if len(want.Regions) == 0 {
				t.Fatal("no region timed; test program must contain a parallel loop")
			}
		})
	}
}

// TestSeqShardWorkerCountBeyondUnits: more workers than units must
// still be exact (parallel.Map clamps).
func TestSeqShardWorkerCountBeyondUnits(t *testing.T) {
	want := seqBaseline(t, independentSrc, 1)
	got := seqBaseline(t, independentSrc, 4096)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("workers > unit count changed the result")
	}
}
