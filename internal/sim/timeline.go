package sim

import (
	"fmt"
	"sort"
	"strings"
)

// EpochSpan records the lifetime of one epoch in the timing simulation:
// when it started, every squash, and its commit. Collected only when
// Input.CollectTimeline is set (the log grows with epoch count).
type EpochSpan struct {
	RegionID int
	Epoch    int
	CPU      int
	Start    int64
	Squashes []int64 // cycles at which the epoch's runs were squashed
	Commit   int64
}

// Timeline renders the first maxEpochs epoch spans of a region as an
// ASCII Gantt chart, one row per epoch:
//
//	e  12 cpu0 |   ······xxxx····■
//
// where '·' is speculative execution, 'x' marks a squashed stretch
// (re-executed work), and '■' the commit. The chart is scaled to fit
// width columns.
func Timeline(spans []EpochSpan, regionID, maxEpochs, width int) string {
	if width <= 0 {
		width = 72
	}
	var sel []EpochSpan
	for _, s := range spans {
		if s.RegionID == regionID {
			sel = append(sel, s)
		}
	}
	if len(sel) == 0 {
		return "(no epochs recorded)\n"
	}
	sort.Slice(sel, func(i, j int) bool { return sel[i].Epoch < sel[j].Epoch })
	if maxEpochs > 0 && len(sel) > maxEpochs {
		sel = sel[:maxEpochs]
	}
	minC, maxC := sel[0].Start, sel[0].Commit
	for _, s := range sel {
		if s.Start < minC {
			minC = s.Start
		}
		if s.Commit > maxC {
			maxC = s.Commit
		}
	}
	span := maxC - minC
	if span <= 0 {
		span = 1
	}
	scale := func(c int64) int {
		p := int(int64(width) * (c - minC) / span)
		if p >= width {
			p = width - 1
		}
		if p < 0 {
			p = 0
		}
		return p
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "region %d epochs %d..%d, cycles %d..%d ('·' run, 'x' squashed work, '■' commit)\n",
		regionID, sel[0].Epoch, sel[len(sel)-1].Epoch, minC, maxC)
	for _, s := range sel {
		row := make([]rune, width)
		for i := range row {
			row[i] = ' '
		}
		// Whole lifetime as speculative execution...
		for i := scale(s.Start); i <= scale(s.Commit); i++ {
			row[i] = '·'
		}
		// ...with squashed stretches marked from the start (or previous
		// squash) to each squash point.
		prev := s.Start
		for _, sq := range s.Squashes {
			for i := scale(prev); i <= scale(sq); i++ {
				row[i] = 'x'
			}
			prev = sq
		}
		row[scale(s.Commit)] = '■'
		fmt.Fprintf(&sb, "e %4d cpu%d |%s\n", s.Epoch, s.CPU, string(row))
	}
	return sb.String()
}
