package sim

import (
	"tlssync/internal/ir"
	"tlssync/internal/trace"
)

// ---------------------------------------------------------------------------
// Dependence tracking (line granularity, word-granular private hits)

// trackLoad records an exposed load for violation detection.
func (m *machine) trackLoad(run *epochRun, ev *trace.Event) {
	if m.runs == nil {
		return // sequential segment: no speculation
	}
	if ir.IsStackAddr(ev.Addr) {
		return // per-CPU stacks are private to an epoch
	}
	in := m.code[ev.SI]
	if in.Op == ir.LoadSync && ev.Flags&trace.FlagUFF != 0 {
		// Forwarding-usefulness bookkeeping for the FilterSync extension
		// (counted per issue, matching the wait counting).
		m.filter.noteUseful(in.Imm)
	}
	if m.immuneLoad(run, ev) {
		return
	}
	if run.storeWords[ev.Addr] {
		return // private hit: forwarded from this epoch's own store
	}
	// Value prediction: a predicted load consumes the predicted value
	// instead of the (possibly stale) memory value, so it is never
	// exposed to coherence; verification happens at commit, where a
	// misprediction forces one squash-and-replay (without prediction).
	if (m.pol.Predict || m.pol.StridePredict) && m.table.contains(in.Origin) {
		// Trainings are collected even during a post-misprediction replay
		// (predictBan) so the predictor learns the committed value and
		// loses confidence in changed ones; only prediction USE is banned.
		run.trainings = append(run.trainings, pcVal{pc: in.Origin, v: ev.Val})
		if !run.predictBan {
			if v, ok := m.pred.predict(in.Origin, m.epochIdxOf(run)); ok {
				if v != ev.Val {
					run.mispredicted = true
					run.mispredictPCs = append(run.mispredictPCs, in.Origin)
				}
				return // value comes from the predictor, not memory
			}
		}
	}
	line := m.cfg.Line(ev.Addr)
	if _, seen := run.loadLines[line]; !seen {
		run.loadLines[line] = loadMark{cycle: m.cycle, pc: in.Origin}
	}
}

// trackStore records the store and applies the eager violation rule: any
// active later epoch that already exposed-loaded this line is squashed
// (the invalidation arrives while the line's speculatively-loaded bit is
// set).
func (m *machine) trackStore(run *epochRun, ev *trace.Event) {
	if m.runs == nil {
		return // sequential segment: no speculation
	}
	if ir.IsStackAddr(ev.Addr) {
		return
	}
	e := m.epochIdxOf(run)
	line := m.cfg.Line(ev.Addr)
	run.storeWords[ev.Addr] = true
	if _, ok := run.storeLines[line]; !ok {
		run.storeLines[line] = m.cycle
	}
	// Signal address buffer: a later store in the producer epoch to an
	// already-forwarded address means the wrong value was forwarded; the
	// producer notices and restarts the consumer (§2.2).
	if _, hit := run.sigBuf[ev.Addr]; hit {
		delete(run.sigBuf, ev.Addr)
		if cons := m.runs[e+1]; cons != nil {
			m.res.Violations++
			m.res.ViolByKind["sigbuf"]++
			m.restart(cons)
		}
	}
	if m.pol.PerfectMemory {
		return
	}
	for j := e + 1; j < m.nextStart; j++ {
		other := m.runs[j]
		if other == nil {
			continue
		}
		if mark, loaded := other.loadLines[line]; loaded && mark.cycle <= m.cycle {
			m.violate(other, "eager", mark.pc)
		}
	}
}

// ---------------------------------------------------------------------------
// Signaling

func (m *machine) signal(run *epochRun, ev *trace.Event, scalar bool) {
	if m.mail == nil {
		// Sequential segment (a region preheader signaling initial
		// values): epoch 0 is the oldest at region start, so its waits
		// complete immediately — nothing to deliver.
		return
	}
	e := m.epochIdxOf(run)
	ch := m.code[ev.SI].Imm
	key := mailKey{consumer: e + 1, ch: ch, scalar: scalar}
	m.mail[key] = mailEntry{ready: m.cycle + int64(m.cfg.CommLat), gen: run.gen}
	if !scalar {
		run.signaled[ch] = true
		if !ir.IsStackAddr(ev.Addr) && ev.Addr != 0 {
			run.sigBuf[ev.Addr] = ch
			if len(run.sigBuf) > run.sigBufPeak {
				run.sigBufPeak = len(run.sigBuf)
			}
		}
	}
}

func (m *machine) signalNull(run *epochRun, ev *trace.Event) {
	if m.mail == nil {
		return
	}
	ch := m.code[ev.SI].Imm
	if run.signaled[ch] {
		return // conditional NULL: a signal was already sent this epoch
	}
	e := m.epochIdxOf(run)
	key := mailKey{consumer: e + 1, ch: ch, scalar: false}
	m.mail[key] = mailEntry{ready: m.cycle + int64(m.cfg.CommLat), gen: run.gen, null: true}
	run.signaled[ch] = true
}

// ---------------------------------------------------------------------------
// Violations, restarts, cascades

// violate squashes and restarts a run after a load-triggered dependence
// violation, classifying the violating load for the Figure 11 buckets and
// training the hardware violation table.
func (m *machine) violate(victim *epochRun, kind string, loadPC int) {
	m.res.Violations++
	m.res.ViolByKind[kind]++
	// Classification uses the table state BEFORE this violation trains it.
	hw := m.table.contains(loadPC)
	comp := m.pol.CompilerMarks != nil && m.pol.CompilerMarks[loadPC]
	switch {
	case comp && hw:
		m.res.ViolBuckets[BucketBoth]++
	case comp:
		m.res.ViolBuckets[BucketCompiler]++
	case hw:
		m.res.ViolBuckets[BucketHardware]++
	default:
		m.res.ViolBuckets[BucketNeither]++
	}
	m.table.record(loadPC)
	m.restart(victim)
}

// restart squashes a run (all its slots become fail) and begins replay
// after the restart penalty, cascading into any consumer that used the
// squashed run's forwarded values.
func (m *machine) restart(victim *epochRun) {
	m.res.Restarts++
	e := m.epochIdxOf(victim)
	oldGen := victim.gen

	if m.curRegion != nil {
		m.curRegion.Slots.Fail += victim.slots.Total()
	}
	victim.slots = Slots{}
	victim.idx = 0
	victim.gen++
	victim.finished = false
	victim.finishCycle = 0
	victim.lastComplete = 0
	// Replay state is cleared in place (squash-heavy policies restart
	// the same epochs many times); call frames beyond the base one are
	// recycled.
	for len(victim.frames) > 1 {
		popped := victim.frames[len(victim.frames)-1]
		victim.frames = victim.frames[:len(victim.frames)-1]
		putFrameSB(popped)
	}
	base := victim.frames[0]
	clear(base.ready)
	base.base, base.callDst = m.cycle, ir.None
	clear(victim.loadLines)
	clear(victim.storeLines)
	clear(victim.storeWords)
	victim.consumedGen = -1
	clear(victim.signaled)
	clear(victim.sigBuf)
	victim.mispredicted = false
	victim.mispredictPCs = victim.mispredictPCs[:0]
	victim.trainings = victim.trainings[:0]
	// The squash-to-restart gap is failed work too (stallFail classifies
	// the stall slots as fail rather than other).
	victim.stallUntil = m.cycle + int64(m.cfg.RestartCost)
	victim.stallSync = false
	victim.stallFail = true
	if victim.span != nil {
		victim.span.Squashes = append(victim.span.Squashes, m.cycle)
	}

	// Cascade: a consumer that consumed this run's (now squashed) signals
	// used values that the hardware can no longer vouch for.
	if cons := m.runs[e+1]; cons != nil && cons.consumedGen == oldGen {
		m.restart(cons)
	}
}

// ---------------------------------------------------------------------------
// Commit

// tryCommit commits the oldest epoch when it has finished (and survived
// prediction verification), applying commit-time stale-read violations.
func (m *machine) tryCommit() {
	for m.oldest < len(m.epochs) {
		run := m.runs[m.oldest]
		if run == nil || !run.finished {
			return
		}
		if m.cycle < run.finishCycle+int64(m.cfg.CommitCost) {
			return
		}
		// Value-prediction verification happens at commit: a mispredicted
		// value forces one more pass (without prediction).
		if run.mispredicted {
			run.predictBan = true
			for _, pc := range run.mispredictPCs {
				m.pred.blame(pc)
			}
			m.res.Violations++
			m.res.ViolByKind["mispredict"]++
			m.restart(run)
			return
		}

		// Commit-time rule: active later epochs that loaded one of our
		// stored lines AFTER we stored it read stale data; the commit's
		// invalidations squash them now.
		if !m.pol.PerfectMemory {
			for j := m.oldest + 1; j < m.nextStart; j++ {
				other := m.runs[j]
				if other == nil {
					continue
				}
				if pc, stale := staleRead(run, other); stale {
					m.violate(other, "stale", pc)
				}
			}
		}

		// Train the predictor with committed values.
		for _, t := range run.trainings {
			m.pred.update(t.pc, t.v, run.epoch.Index)
		}
		if run.sigBufPeak > m.res.SigBufPeak {
			m.res.SigBufPeak = run.sigBufPeak
		}

		if m.curRegion != nil {
			m.curRegion.Slots.Add(run.slots)
			m.curRegion.Epochs++
		}
		m.res.ScalarWaitCycles += run.scalarWait
		m.res.MemWaitCycles += run.memWait
		m.res.HWSyncCycles += run.hwWait

		if run.span != nil {
			run.span.Commit = m.cycle
			m.res.Spans = append(m.res.Spans, *run.span)
		}
		m.committedGen[m.oldest] = run.gen
		delete(m.runs, m.oldest)
		m.cpuFree[run.cpu] = m.cycle // commit overhead already elapsed
		m.table.epochCommitted()
		m.oldest++
		putRun(run)
	}
}

// staleRead reports whether `later` loaded any line after `committing`
// stored it (while the store was still speculative), returning the
// violating load's PC. When several lines were read stale, the load
// that happened FIRST is blamed (ties broken by lowest PC): the choice
// must be a total order, not map iteration order, because the blamed PC
// trains the violation-history table and therefore feeds Figure 11's
// classification and the H policy's synchronization decisions —
// returning an arbitrary match made whole-simulation results flicker
// between runs.
func staleRead(committing, later *epochRun) (int, bool) {
	var best loadMark
	found := false
	consider := func(mark loadMark) {
		if !found || mark.cycle < best.cycle || (mark.cycle == best.cycle && mark.pc < best.pc) {
			best, found = mark, true
		}
	}
	// Iterate over the smaller map; every match is considered, so the
	// direction cannot change the outcome.
	if len(committing.storeLines) <= len(later.loadLines) {
		//lint:ignore D001 consider() keeps the minimum by the total (cycle, pc) order, so every iteration order converges to the same winner (the PR-5 staleRead fix)
		for line, storeCycle := range committing.storeLines {
			if mark, ok := later.loadLines[line]; ok && mark.cycle > storeCycle {
				consider(mark)
			}
		}
	} else {
		//lint:ignore D001 same total-order selection as the branch above, scanning the smaller map
		for line, mark := range later.loadLines {
			if storeCycle, ok := committing.storeLines[line]; ok && mark.cycle > storeCycle {
				consider(mark)
			}
		}
	}
	return best.pc, found
}
