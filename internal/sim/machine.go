package sim

import (
	"fmt"

	"tlssync/internal/ir"
	"tlssync/internal/trace"
)

// Input bundles what a simulation needs.
type Input struct {
	Trace  *trace.ProgramTrace
	Policy Policy
	Mach   MachineConfig

	// CollectTimeline records per-epoch lifetime spans (start, squashes,
	// commit) into Result.Spans for rendering with Timeline.
	CollectTimeline bool

	// Workers shards SimulateSequentialRegions across CPUs (epochs and
	// sequential segments time independently once memory latencies are
	// replayed; see seqshard.go for why the result is bit-identical).
	// 0 or 1 selects the serial reference path. Speculative Simulate
	// ignores it: epochs there interact through the violation table,
	// mailboxes and shared cache, so it cannot shard.
	Workers int
}

// Simulate replays the trace under the policy and returns timing and
// violation statistics.
func Simulate(in Input) *Result {
	m := newMachine(in)
	m.run()
	return m.res
}

// SimulateSequentialRegions times the entire trace on a single CPU with
// no speculation (the original sequential machine), attributing region
// segments' cycles to their regions. Its per-region cycle counts are the
// normalization baseline for every execution-time bar in the paper.
func SimulateSequentialRegions(in Input) *Result {
	in.Policy = Policy{Name: "seq"}
	if in.Workers > 1 {
		return simulateSeqSharded(in)
	}
	m := newMachine(in)
	for _, seg := range m.in.Trace.Segments {
		if seg.Region == nil {
			m.runSequential(seg.Seq)
			continue
		}
		rs, ok := m.res.Regions[seg.Region.RegionID]
		if !ok {
			rs = &RegionStats{RegionID: seg.Region.RegionID}
			m.res.Regions[seg.Region.RegionID] = rs
		}
		start := m.cycle
		for _, e := range seg.Region.Epochs {
			seqStart := m.res.SeqCycles
			m.runSequential(e.Events)
			// runSequential accrues into SeqCycles; region time is
			// tracked separately, so roll that back.
			m.res.SeqCycles = seqStart
			rs.Epochs++
		}
		rs.Cycles += m.cycle - start
		rs.Slots.Busy += m.cycle - start // nominal: 1 CPU, bookkeeping only
	}
	m.res.TotalCycles = m.cycle
	return m.res
}

// loadMark records the first exposed load of a cache line within a run.
type loadMark struct {
	cycle int64
	pc    int // load Origin
}

// frameSB is one call frame's register scoreboard.
type frameSB struct {
	ready map[ir.Reg]int64
	base  int64 // no register is ready before this (frame entry time)
	// callDst is the register in the CALLER that receives this frame's
	// return value.
	callDst ir.Reg
}

// epochRun is the execution of one epoch on one CPU (possibly restarted).
type epochRun struct {
	epoch *trace.Epoch
	idx   int // next event index
	gen   int // incremented on every restart
	cpu   int

	frames []*frameSB

	slots        Slots
	finished     bool
	finishCycle  int64
	lastComplete int64
	stallUntil   int64
	stallSync    bool // current fixed stall classifies as sync
	stallFail    bool // current fixed stall is squash-to-restart (fail)

	// Dependence-tracking state (line granularity for violations, word
	// granularity for private-hit detection).
	loadLines  map[int64]loadMark
	storeLines map[int64]int64
	storeWords map[int64]bool

	// Synchronization state.
	consumedGen int             // predecessor signal generation consumed (-1: none)
	signaled    map[int64]bool  // memory sync channels signaled this run
	sigBuf      map[int64]int64 // signal address buffer: addr -> channel
	sigBufPeak  int

	// Value prediction.
	mispredicted  bool
	predictBan    bool
	mispredictPCs []int
	trainings     []pcVal

	// Stall cycle accounting by cause (committed runs only).
	scalarWait, memWait, hwWait int64

	// span records this epoch's lifetime when timelines are collected.
	span *EpochSpan
}

type pcVal struct {
	pc int
	v  int64
}

type mailKey struct {
	consumer int // consuming epoch index
	ch       int64
	scalar   bool
}

type mailEntry struct {
	ready int64
	gen   int // producer run generation
	null  bool
}

type machine struct {
	in   Input
	cfg  MachineConfig
	pol  Policy
	res  *Result
	hier *hierarchy
	lat  latencySource // memory-latency provider: hier, or a recorded replay
	code ir.Code       // static-instruction table resolving trace.Event.SI

	table  *hwTable // violation-history table (shadow in all modes)
	pred   *predictor
	filter *syncFilter // per-channel usefulness (FilterSync)

	cycle int64

	// Per-region-instance state.
	runs         map[int]*epochRun // epoch index -> active run
	committedGen map[int]int
	mail         map[mailKey]mailEntry
	oldest       int
	nextStart    int
	lastStarted  int64 // cycle the most recent epoch started (spawn stagger)
	cpuFree      []int64
	curRegion    *RegionStats
	epochs       []*trace.Epoch
}

func newMachine(in Input) *machine {
	if in.Mach.CPUs == 0 {
		in.Mach = DefaultMachine()
	}
	pred := newPredictor()
	pred.strideMode = in.Policy.StridePredict
	table := newHWTable(in.Mach.HWTableSize, in.Mach.HWResetEpochs)
	if in.Policy.CompilerHints && in.Policy.CompilerMarks != nil {
		table.sticky = in.Policy.CompilerMarks
	}
	var code ir.Code
	if in.Trace != nil {
		code = in.Trace.Code
	}
	m := &machine{
		in:     in,
		cfg:    in.Mach,
		pol:    in.Policy,
		hier:   newHierarchy(in.Mach),
		table:  table,
		pred:   pred,
		filter: newSyncFilter(),
		code:   code,
		res: &Result{
			Policy:     in.Policy.Name,
			Machine:    in.Mach,
			Regions:    make(map[int]*RegionStats),
			ViolByKind: make(map[string]int64),
		},
	}
	m.lat = m.hier
	return m
}

func (m *machine) run() {
	for _, seg := range m.in.Trace.Segments {
		if seg.Region != nil {
			m.runRegion(seg.Region)
		} else {
			m.runSequential(seg.Seq)
		}
	}
	m.res.TotalCycles = m.cycle
}

// ---------------------------------------------------------------------------
// Sequential segments: one CPU, no speculation, sync ops are unit-latency.

func (m *machine) runSequential(events []trace.Event) {
	run := m.newRun(&trace.Epoch{Events: events}, 0)
	start := m.cycle
	for run.idx < len(run.epoch.Events) {
		m.stepSequential(run)
		m.cycle++
	}
	if run.lastComplete > m.cycle {
		m.cycle = run.lastComplete
	}
	m.res.SeqCycles += m.cycle - start
	putRun(run)
}

func (m *machine) stepSequential(run *epochRun) {
	issued := 0
	for issued < m.cfg.IssueWidth && run.idx < len(run.epoch.Events) {
		ev := &run.epoch.Events[run.idx]
		if m.operandsReady(run, ev) > m.cycle {
			break
		}
		lat := m.execLatency(run, ev)
		m.completeEvent(run, ev, lat)
		run.idx++
		issued++
	}
}

// ---------------------------------------------------------------------------
// Region instances

func (m *machine) runRegion(ri *trace.RegionInstance) {
	rs, ok := m.res.Regions[ri.RegionID]
	if !ok {
		rs = &RegionStats{RegionID: ri.RegionID}
		m.res.Regions[ri.RegionID] = rs
	}
	m.curRegion = rs
	m.epochs = ri.Epochs
	// Region bookkeeping maps are reused (cleared) across instances; note
	// that m.runs stays non-nil after the first region on purpose — the
	// sequential-segment guards in spec.go test nil-ness, and a
	// post-region sequential segment has always taken the non-nil path.
	if m.runs == nil {
		m.runs = make(map[int]*epochRun)
		m.committedGen = make(map[int]int)
		m.mail = make(map[mailKey]mailEntry)
		m.cpuFree = make([]int64, m.cfg.CPUs)
	} else {
		clear(m.runs)
		clear(m.committedGen)
		clear(m.mail)
	}
	m.oldest = 0
	m.nextStart = 0
	m.lastStarted = m.cycle - int64(m.cfg.SpawnCost)
	for i := range m.cpuFree {
		m.cpuFree[i] = m.cycle
	}

	start := m.cycle
	guard := int64(0)
	for m.oldest < len(m.epochs) {
		m.startRuns()
		// Step runs in epoch order: deterministic, and the oldest epoch's
		// stores are seen by younger epochs within the same cycle.
		for e := m.oldest; e < m.nextStart; e++ {
			if run := m.runs[e]; run != nil {
				m.stepRun(run)
			}
		}
		// Idle CPUs burn slots inside the region.
		busyCPUs := len(m.runs)
		m.curRegionIdle(int64(m.cfg.CPUs-busyCPUs) * int64(m.cfg.IssueWidth))
		m.tryCommit()
		m.cycle++
		guard++
		if guard > 1<<34 {
			panic(fmt.Sprintf("sim: region %d wedged at epoch %d/%d (policy %s)",
				ri.RegionID, m.oldest, len(m.epochs), m.pol.Name))
		}
	}
	rs.Cycles += m.cycle - start
	m.curRegion = nil
}

func (m *machine) curRegionIdle(slots int64) {
	m.curRegion.Slots.Other += slots
}

// startRuns launches epochs in order as CPUs free up, with spawn stagger.
func (m *machine) startRuns() {
	for m.nextStart < len(m.epochs) {
		cpu := m.nextStart % m.cfg.CPUs
		if m.cpuFree[cpu] > m.cycle {
			return
		}
		if m.lastStarted+int64(m.cfg.SpawnCost) > m.cycle {
			return // epochs spawn in order with SpawnCost stagger
		}
		run := m.newRun(m.epochs[m.nextStart], cpu)
		run.frames[0].base = m.cycle
		m.runs[m.nextStart] = run
		m.cpuFree[cpu] = 1 << 62 // busy until commit
		m.lastStarted = m.cycle
		if m.in.CollectTimeline {
			run.span = &EpochSpan{
				RegionID: m.curRegion.RegionID,
				Epoch:    m.nextStart,
				CPU:      cpu,
				Start:    m.cycle,
			}
		}
		m.nextStart++
	}
}

// epochIdxOf finds the epoch index of a run (runs are keyed by index).
func (m *machine) epochIdxOf(run *epochRun) int {
	return run.epoch.Index
}

// ---------------------------------------------------------------------------
// Stepping one run for one cycle

func (m *machine) stepRun(run *epochRun) {
	width := int64(m.cfg.IssueWidth)
	if run.finished {
		run.slots.Other += width
		return
	}
	if run.stallUntil > m.cycle {
		switch {
		case run.stallFail:
			// Squash-to-restart gap: certain fail, credited directly.
			if m.curRegion != nil {
				m.curRegion.Slots.Fail += width
			}
		case run.stallSync:
			run.slots.Sync += width
		default:
			run.slots.Other += width
		}
		return
	}
	run.stallFail = false
	issued := int64(0)
	syncBlocked := false
	for issued < width {
		if run.idx >= len(run.epoch.Events) {
			run.finished = true
			run.finishCycle = maxI64(m.cycle, run.lastComplete)
			break
		}
		ev := &run.epoch.Events[run.idx]
		if m.operandsReady(run, ev) > m.cycle {
			break
		}
		ok, sync := m.gate(run, ev)
		if !ok {
			syncBlocked = sync
			break
		}
		lat := m.execLatency(run, ev)
		m.completeEvent(run, ev, lat)
		run.idx++
		issued++
		// A store may have just violated another run; violations are
		// applied immediately and do not affect this run's issue.
	}
	run.slots.Busy += issued
	rest := width - issued
	if rest > 0 {
		if syncBlocked {
			run.slots.Sync += rest
		} else {
			run.slots.Other += rest
		}
	}
}

// operandsReady returns the cycle at which all source registers are ready.
func (m *machine) operandsReady(run *epochRun, ev *trace.Event) int64 {
	f := run.frames[len(run.frames)-1]
	t := f.base
	for _, u := range m.code[ev.SI].Uses() {
		if r, ok := f.ready[u]; ok && r > t {
			t = r
		}
	}
	return t
}

// gate checks op-specific stall conditions. It returns (canIssue,
// blockedOnSync). Stall-cycle accounting happens here.
func (m *machine) gate(run *epochRun, ev *trace.Event) (bool, bool) {
	e := m.epochIdxOf(run)
	isOldest := e == m.oldest
	in := m.code[ev.SI]
	switch in.Op {
	case ir.WaitScalar:
		// Scalar synchronization applies in every mode, including the
		// perfect-memory oracle (the paper's O bars keep the scalar sync
		// segment).
		if ok := m.waitReady(run, e, in.Imm, true); !ok {
			run.scalarWait++
			return false, true
		}
		return true, false
	case ir.WaitMemAddr, ir.WaitMemVal:
		if m.pol.PerfectSyncedValues || m.pol.PerfectMemory {
			return true, false
		}
		if m.pol.FilterSync && m.filter.bypass(in.Imm) {
			return true, false // hardware filtered this channel out
		}
		if m.pol.StallSyncedUntilOldest {
			if !isOldest {
				run.memWait++
				return false, true
			}
			return true, false
		}
		if ok := m.waitReady(run, e, in.Imm, false); !ok {
			run.memWait++
			return false, true
		}
		if in.Op == ir.WaitMemAddr {
			m.filter.noteWait(in.Imm)
		}
		return true, false
	case ir.Load, ir.LoadSync:
		if m.immuneLoad(run, ev) {
			return true, false
		}
		if m.pol.HWSync && !isOldest && m.table.contains(in.Origin) {
			run.hwWait++
			return false, true
		}
		return true, false
	}
	return true, false
}

// immuneLoad reports whether the load is violation-immune under the
// policy (oracle modes, forwarded values, correct predictions).
func (m *machine) immuneLoad(run *epochRun, ev *trace.Event) bool {
	if m.pol.PerfectMemory {
		return true
	}
	in := m.code[ev.SI]
	if m.pol.OracleLoads != nil && m.pol.OracleLoads[in.Origin] {
		return true
	}
	if in.Op == ir.LoadSync {
		if m.pol.PerfectSyncedValues || m.pol.StallSyncedUntilOldest {
			return true
		}
		if ev.Flags&trace.FlagUFF != 0 {
			// A filtered channel's wait was bypassed, so no forwarded
			// value arrived and the use-forwarded-value flag cannot be
			// set: the load behaves like a plain speculative load.
			if m.pol.FilterSync && m.filter.bypass(in.Imm) {
				return false
			}
			return true // forwarded value used: cannot violate
		}
	}
	return false
}

// waitReady decides whether a wait can complete now: a valid mailbox
// entry arrived, the epoch is the oldest (all predecessors committed), or
// the predecessor run finished (implicit NULL signal).
func (m *machine) waitReady(run *epochRun, e int, ch int64, scalar bool) bool {
	if e == m.oldest {
		return true
	}
	key := mailKey{consumer: e, ch: ch, scalar: scalar}
	entry, ok := m.mail[key]
	pred := m.runs[e-1]
	if ok {
		valid := false
		if pred != nil {
			valid = entry.gen == pred.gen
		} else if g, committed := m.committedGen[e-1]; committed {
			valid = entry.gen == g
		}
		if valid && entry.ready <= m.cycle {
			run.consumedGen = entry.gen
			return true
		}
		if valid {
			return false // in flight
		}
	}
	// Implicit NULL: predecessor finished executing without signaling.
	if pred != nil && pred.finished && pred.finishCycle+int64(m.cfg.CommLat) <= m.cycle {
		run.consumedGen = pred.gen
		return true
	}
	if pred == nil {
		// Predecessor committed (or never existed): memory is safe.
		return true
	}
	return false
}

// execLatency computes the operation's latency and performs its
// micro-architectural side effects (cache access, dependence tracking,
// signaling, violations).
func (m *machine) execLatency(run *epochRun, ev *trace.Event) int {
	in := m.code[ev.SI]
	switch in.Op {
	case ir.Bin:
		switch in.Alu {
		case ir.Mul:
			return m.cfg.IntMulLat
		case ir.Div, ir.Rem:
			return m.cfg.IntDivLat
		}
		return 1
	case ir.Load, ir.LoadSync:
		lat := m.lat.memLatency(run.cpu, ev.Addr)
		m.trackLoad(run, ev)
		return lat
	case ir.Store:
		m.lat.memLatency(run.cpu, ev.Addr)
		m.trackStore(run, ev)
		return 1
	case ir.NewObj:
		return m.cfg.AllocCost
	case ir.Call, ir.Ret:
		return m.cfg.CallCost
	case ir.SignalScalar:
		m.signal(run, ev, true)
		return 1
	case ir.SignalMem:
		m.signal(run, ev, false)
		return 1
	case ir.SignalMemNull:
		m.signalNull(run, ev)
		return 1
	default:
		return 1
	}
}

// completeEvent updates the scoreboard (and call-frame stack) after issue.
func (m *machine) completeEvent(run *epochRun, ev *trace.Event, lat int) {
	in := m.code[ev.SI]
	done := m.cycle + int64(lat)
	if done > run.lastComplete {
		run.lastComplete = done
	}
	switch in.Op {
	case ir.Call:
		// Push the callee frame; its registers become ready after the
		// call overhead (parameters arrive with the call).
		run.frames = append(run.frames, getFrameSB(done, in.Dst))
	case ir.Ret:
		// Pop back to the caller; the call's destination register is
		// ready once the return completes (including the returned
		// value's readiness).
		retReady := done
		if in.A != ir.None {
			f := run.frames[len(run.frames)-1]
			if r, ok := f.ready[in.A]; ok && r > retReady {
				retReady = r
			}
		}
		if len(run.frames) > 1 {
			popped := run.frames[len(run.frames)-1]
			callDst := popped.callDst
			run.frames = run.frames[:len(run.frames)-1]
			putFrameSB(popped)
			if callDst != ir.None {
				run.frames[len(run.frames)-1].ready[callDst] = retReady
			}
		}
		if retReady > run.lastComplete {
			run.lastComplete = retReady
		}
	default:
		if in.HasDst() {
			run.frames[len(run.frames)-1].ready[in.Dst] = done
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
