package sim

// cache is a set-associative LRU cache used for access latencies only;
// dependence tracking is handled separately by the epoch runs, so this
// model intentionally ignores coherence state and speculative bits.
type cache struct {
	sets int64
	ways int
	line int64
	// tags[set*ways+way] holds the line number (or -1); lru holds a
	// per-entry logical timestamp.
	tags []int64
	lru  []int64
	tick int64
}

func newCache(sets, ways int, lineSize int64) *cache {
	c := &cache{sets: int64(sets), ways: ways, line: lineSize}
	c.tags = make([]int64, sets*ways)
	c.lru = make([]int64, sets*ways)
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// access looks up addr, fills on miss, and reports whether it hit.
func (c *cache) access(addr int64) bool {
	line := addr / c.line
	set := line % c.sets
	base := int(set) * c.ways
	c.tick++
	victim, oldest := base, c.lru[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == line {
			c.lru[i] = c.tick
			return true
		}
		if c.lru[i] < oldest {
			victim, oldest = i, c.lru[i]
		}
	}
	c.tags[victim] = line
	c.lru[victim] = c.tick
	return false
}

// hierarchy bundles per-CPU L1s with a shared L2 and returns access
// latencies.
type hierarchy struct {
	l1  []*cache
	l2  *cache
	cfg MachineConfig
}

func newHierarchy(cfg MachineConfig) *hierarchy {
	h := &hierarchy{cfg: cfg, l2: newCache(cfg.L2Sets, cfg.L2Ways, cfg.LineSize)}
	for i := 0; i < cfg.CPUs; i++ {
		h.l1 = append(h.l1, newCache(cfg.L1Sets, cfg.L1Ways, cfg.LineSize))
	}
	return h
}

// latency performs a memory access by cpu and returns its latency.
func (h *hierarchy) latency(cpu int, addr int64) int {
	if h.l1[cpu].access(addr) {
		return h.cfg.L1Lat
	}
	if h.l2.access(addr) {
		return h.cfg.L2Lat
	}
	return h.cfg.MemLat
}
