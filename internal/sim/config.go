// Package sim is the trace-driven TLS chip-multiprocessor timing
// simulator. It replays the per-epoch event streams produced by the
// functional interpreter on a simulated 4-CPU machine under a chosen
// value-communication policy, modeling:
//
//   - 4-wide in-order issue with a register scoreboard per epoch run
//     (non-blocking loads, latency per operation class);
//   - a two-level cache hierarchy for access latencies;
//   - speculative epoch state with line-granularity dependence tracking:
//     eager violations when a store hits a line an active later epoch has
//     exposed-loaded, and commit-time violations for stale reads
//     (load-after-uncommitted-store), reproducing invalidation-based TLS
//     coherence behaviour including false sharing;
//   - squash/restart with full cost accounting and cascading restarts of
//     consumers that used a squashed producer's forwarded values;
//   - scalar and memory wait/signal mailboxes with forwarding latency,
//     the producer-side signal address buffer, the consumer-side
//     use-forwarded-value protocol, and epoch-end implicit NULL signals;
//   - hardware-inserted synchronization (violation-history table with
//     periodic reset), last-value prediction, and idealized oracle modes;
//   - the paper's graduation-slot breakdown (busy / fail / sync / other).
package sim

import (
	"fmt"
	"strings"
)

// MachineConfig mirrors the paper's Table 1 simulation parameters, scaled
// to the trace-driven model.
type MachineConfig struct {
	CPUs       int `json:"CPUs"`       // processing cores
	IssueWidth int `json:"IssueWidth"` // instructions graduated per cycle per CPU

	// Latencies (cycles).
	IntMulLat   int `json:"IntMulLat"`
	IntDivLat   int `json:"IntDivLat"`
	L1Lat       int `json:"L1Lat"`       // L1 hit
	L2Lat       int `json:"L2Lat"`       // L1 miss, L2 hit
	MemLat      int `json:"MemLat"`      // L2 miss
	CommLat     int `json:"CommLat"`     // signal->wait forwarding (crossbar)
	RestartCost int `json:"RestartCost"` // squash-to-restart penalty
	CommitCost  int `json:"CommitCost"`  // epoch commit overhead
	SpawnCost   int `json:"SpawnCost"`   // starting the next epoch on a CPU
	CallCost    int `json:"CallCost"`    // call/return overhead
	AllocCost   int `json:"AllocCost"`   // arena allocation (new)

	// Caches.
	LineSize int64 `json:"LineSize"`
	L1Sets   int   `json:"L1Sets"` // per-CPU L1: L1Sets * L1Ways * LineSize bytes
	L1Ways   int   `json:"L1Ways"`
	L2Sets   int   `json:"L2Sets"` // shared L2
	L2Ways   int   `json:"L2Ways"`

	// Hardware synchronization (when the policy enables it).
	HWTableSize   int `json:"HWTableSize"`   // entries in the violation-history table
	HWResetEpochs int `json:"HWResetEpochs"` // periodic reset interval, in committed epochs

	// SignalAddrBufSize bounds the producer-side signal address buffer
	// (the paper reports 10 entries always suffice).
	SignalAddrBufSize int `json:"SignalAddrBufSize"`
}

// DefaultMachine returns the paper's 4-processor configuration.
func DefaultMachine() MachineConfig {
	return MachineConfig{
		CPUs:       4,
		IssueWidth: 4,

		IntMulLat:   3,
		IntDivLat:   12,
		L1Lat:       1,
		L2Lat:       10,
		MemLat:      75,
		CommLat:     10,
		RestartCost: 10,
		CommitCost:  5,
		SpawnCost:   5,
		CallCost:    2,
		AllocCost:   8,

		LineSize: 32,
		L1Sets:   512, // 512 sets x 2 ways x 32 B = 32 KB
		L1Ways:   2,
		L2Sets:   8192, // 8192 sets x 4 ways x 32 B = 1 MB
		L2Ways:   4,

		HWTableSize:   32,
		HWResetEpochs: 16,

		SignalAddrBufSize: 10,
	}
}

// Table1 renders the configuration as the paper's Table 1.
func (m MachineConfig) Table1() string {
	var sb strings.Builder
	row := func(k, v string) { fmt.Fprintf(&sb, "  %-38s %s\n", k, v) }
	sb.WriteString("Table 1: Simulation parameters\n")
	sb.WriteString("Pipeline Parameters\n")
	row("Processors", fmt.Sprintf("%d", m.CPUs))
	row("Issue Width", fmt.Sprintf("%d", m.IssueWidth))
	row("Integer Multiply", fmt.Sprintf("%d cycles", m.IntMulLat))
	row("Integer Divide", fmt.Sprintf("%d cycles", m.IntDivLat))
	row("All Other Integer", "1 cycle")
	row("Call/Return Overhead", fmt.Sprintf("%d cycles", m.CallCost))
	sb.WriteString("Memory Parameters\n")
	row("Cache Line Size", fmt.Sprintf("%d B", m.LineSize))
	row("Data Cache (per CPU)", fmt.Sprintf("%d KB, %d-way, %d-cycle hit",
		int64(m.L1Sets)*int64(m.L1Ways)*m.LineSize/1024, m.L1Ways, m.L1Lat))
	row("Unified Secondary Cache (shared)", fmt.Sprintf("%d KB, %d-way, %d-cycle hit",
		int64(m.L2Sets)*int64(m.L2Ways)*m.LineSize/1024, m.L2Ways, m.L2Lat))
	row("Miss Latency to Main Memory", fmt.Sprintf("%d cycles", m.MemLat))
	row("Crossbar Communication Latency", fmt.Sprintf("%d cycles", m.CommLat))
	sb.WriteString("Speculation Parameters\n")
	row("Squash/Restart Penalty", fmt.Sprintf("%d cycles", m.RestartCost))
	row("Epoch Commit Overhead", fmt.Sprintf("%d cycles", m.CommitCost))
	row("Epoch Spawn Overhead", fmt.Sprintf("%d cycles", m.SpawnCost))
	row("HW Violation Table", fmt.Sprintf("%d entries, reset every %d epochs",
		m.HWTableSize, m.HWResetEpochs))
	row("Signal Address Buffer", fmt.Sprintf("%d entries", m.SignalAddrBufSize))
	return sb.String()
}

// Line returns the cache-line index of an address.
func (m MachineConfig) Line(addr int64) int64 { return addr / m.LineSize }
