package sim

// Policy selects the value-communication mechanisms active during a
// simulation, covering every configuration in the paper's evaluation.
type Policy struct {
	Name string

	// HWSync enables hardware-inserted synchronization: loads whose PC is
	// in the violation-history table stall until their epoch is the
	// oldest (paper §4.2, the H bars). The table has
	// MachineConfig.HWTableSize entries with LRU replacement and is reset
	// every HWResetEpochs committed epochs.
	HWSync bool

	// Predict enables hardware last-value prediction for loads in the
	// violation-history table (the P bars).
	Predict bool

	// StridePredict upgrades the predictor to a stride predictor (an
	// extension beyond the paper: the paper's last-value predictor finds
	// forwarded memory values unpredictable, but allocator-style values
	// advance by regular strides). Implies Predict.
	StridePredict bool

	// PerfectMemory makes every load violation-immune with no memory
	// synchronization stalls: the O bars' "perfect value communication
	// through memory" upper bound. Scalar synchronization still applies.
	PerfectMemory bool

	// OracleLoads makes the listed loads (by static instruction Origin)
	// violation-immune and stall-free: the Figure 6 threshold study.
	OracleLoads map[int]bool

	// PerfectSyncedValues completes memory waits instantly and makes
	// synchronized loads always immune: the E bars (perfect prediction of
	// synchronized values).
	PerfectSyncedValues bool

	// StallSyncedUntilOldest makes memory waits ignore forwarded signals
	// and stall until the epoch is the oldest: the L bars (conservative
	// synchronization, like hardware-style stalling applied to the
	// compiler-chosen loads).
	StallSyncedUntilOldest bool

	// CompilerMarks is the set of load Origins the compiler synchronized
	// (from the transformed binary), used to classify violations into the
	// Figure 11 buckets even in runs executing the untransformed binary.
	CompilerMarks map[int]bool

	// FilterSync implements the paper's §4.2 hybrid-enhancement
	// suggestion (iii): "for the hardware to filter out compiler-inserted
	// synchronization that rarely forwards the correct values". The
	// hardware tracks, per memory-sync channel, how often a completed
	// wait actually supplied a usable forwarded value (the
	// use-forwarded-value flag); channels below 10% usefulness after a
	// warm-up of 16 waits stop stalling.
	FilterSync bool

	// CompilerHints implements the paper's §4.2 hybrid-enhancement
	// suggestion (iv): "for the hardware to reset a violating load less
	// frequently if the compiler hints that it will occur frequently".
	// Loads in CompilerMarks become sticky in the violation-history
	// table: the periodic reset spares them, so known-frequent
	// dependences stay synchronized while incidental ones still age out.
	CompilerHints bool
}

// syncFilter tracks per-channel forwarding usefulness for FilterSync.
type syncFilter struct {
	waits  map[int64]int
	useful map[int64]int
}

func newSyncFilter() *syncFilter {
	return &syncFilter{waits: make(map[int64]int), useful: make(map[int64]int)}
}

// filterWarmup and filterMinUseful parameterize the filtering rule.
const (
	filterWarmup    = 16
	filterMinUseful = 0.10
)

// bypass reports whether waits on ch should stop stalling.
func (f *syncFilter) bypass(ch int64) bool {
	w := f.waits[ch]
	if w < filterWarmup {
		return false
	}
	return float64(f.useful[ch]) < filterMinUseful*float64(w)
}

// noteWait records a completed wait; noteUseful a consumed forward.
func (f *syncFilter) noteWait(ch int64)   { f.waits[ch]++ }
func (f *syncFilter) noteUseful(ch int64) { f.useful[ch]++ }

// PolicyU is the baseline: plain speculation for memory, scalar sync only.
func PolicyU() Policy { return Policy{Name: "U"} }

// PolicyO is perfect memory value communication (Figure 2's O bars).
func PolicyO() Policy { return Policy{Name: "O", PerfectMemory: true} }

// PolicyC runs a memory-synchronized binary with no hardware mechanisms
// (the compiler-inserted synchronization bars; T vs C differ only in
// which binary is simulated).
func PolicyC(name string) Policy { return Policy{Name: name} }

// PolicyE idealizes synchronized-value forwarding (Figure 9's E bars).
func PolicyE() Policy { return Policy{Name: "E", PerfectSyncedValues: true} }

// PolicyL stalls synchronized loads until the previous epoch completes
// (Figure 9's L bars).
func PolicyL() Policy { return Policy{Name: "L", StallSyncedUntilOldest: true} }

// PolicyH is hardware-inserted synchronization on the baseline binary.
func PolicyH() Policy { return Policy{Name: "H", HWSync: true} }

// PolicyP is hardware value prediction on the baseline binary.
func PolicyP() Policy { return Policy{Name: "P", Predict: true} }

// PolicyB is the hybrid: the memory-synchronized binary plus hardware
// synchronization.
func PolicyB() Policy { return Policy{Name: "B", HWSync: true} }

// hwTable is the violation-history table: an LRU set of load PCs that
// caused violations, with periodic reset (paper §4.2: "we periodically
// reset the table ... to avoid over-synchronization of
// infrequently-dependent loads"). When CompilerHints is active, sticky
// PCs (compiler-marked loads) survive the reset.
type hwTable struct {
	size   int
	tick   int64
	lru    map[int]int64 // pc -> last touch
	resetN int           // committed epochs between resets
	count  int           // committed epochs since last reset
	sticky map[int]bool  // compiler-hinted PCs spared by resets
}

func newHWTable(size, resetEpochs int) *hwTable {
	return &hwTable{size: size, resetN: resetEpochs, lru: make(map[int]int64)}
}

// record inserts a violating load PC, evicting the LRU entry if full.
func (t *hwTable) record(pc int) {
	t.tick++
	if _, ok := t.lru[pc]; ok {
		t.lru[pc] = t.tick
		return
	}
	if len(t.lru) >= t.size {
		victim, oldest := -1, int64(1)<<62
		//lint:ignore D001 victim selection is totally ordered: ticks are unique per insert/refresh, and the (when, pc) tie-break keeps the minimum unique even if that ever changes
		for p, when := range t.lru {
			if when < oldest || (when == oldest && p < victim) {
				victim, oldest = p, when
			}
		}
		delete(t.lru, victim)
	}
	t.lru[pc] = t.tick
}

// contains reports whether pc is tracked (and refreshes its LRU slot).
func (t *hwTable) contains(pc int) bool {
	if _, ok := t.lru[pc]; ok {
		t.tick++
		t.lru[pc] = t.tick
		return true
	}
	return false
}

// epochCommitted advances the periodic-reset clock. Sticky (hinted) PCs
// survive the reset.
func (t *hwTable) epochCommitted() {
	t.count++
	if t.resetN > 0 && t.count >= t.resetN {
		t.count = 0
		fresh := make(map[int]int64)
		for pc := range t.sticky {
			if when, ok := t.lru[pc]; ok {
				fresh[pc] = when
			}
		}
		t.lru = fresh
	}
}

// predictor is a per-PC value predictor with confidence, updated at epoch
// commit. In last-value mode (the paper's) a value is predicted only once
// it has repeated often enough; in stride mode (an extension) a constant
// difference between consecutive committed values is also accepted, which
// captures allocator-style pointers that last-value prediction cannot.
// Unconfident streams are left to ordinary speculation rather than being
// mispredicted every epoch.
type predictor struct {
	last   map[int]int64
	conf   map[int]int
	stride map[int]int64
	sconf  map[int]int
	// lastEpoch is the epoch index of the last training per PC; stride
	// predictions extrapolate by the distance between the predicting
	// epoch and it (per-epoch strides, not per-commit).
	lastEpoch map[int]int
	// bad counts commit-time misprediction squashes per PC; a PC that has
	// burned the machine twice is blacklisted (streams that repeat for
	// stretches and then change would otherwise pay a full-epoch squash
	// at every change).
	bad map[int]int
	// strideMode enables stride prediction.
	strideMode bool
}

// predictMaxBad blacklists a PC after this many misprediction squashes.
const predictMaxBad = 2

// predictConfidence is the confidence level required before predicting.
// Requiring three consecutive confirmations keeps the predictor out of
// streams that merely repeat briefly (the paper finds forwarded memory
// values essentially unpredictable, so the predictor must not thrash).
const predictConfidence = 3

func newPredictor() *predictor {
	return &predictor{
		last:      make(map[int]int64),
		conf:      make(map[int]int),
		stride:    make(map[int]int64),
		sconf:     make(map[int]int),
		lastEpoch: make(map[int]int),
		bad:       make(map[int]int),
	}
}

// blame records a misprediction squash for pc.
func (p *predictor) blame(pc int) { p.bad[pc]++ }

// predict returns the predicted value for pc at the given epoch index if
// confidence is sufficient and the PC has not been blacklisted.
func (p *predictor) predict(pc int, epoch int) (int64, bool) {
	if p.bad[pc] >= predictMaxBad {
		return 0, false
	}
	if p.conf[pc] >= predictConfidence {
		return p.last[pc], true
	}
	if p.strideMode && p.sconf[pc] >= predictConfidence {
		dist := epoch - p.lastEpoch[pc]
		if dist < 1 {
			dist = 1
		}
		return p.last[pc] + p.stride[pc]*int64(dist), true
	}
	return 0, false
}

// update trains the predictor with a committed value observed at the
// given epoch index.
func (p *predictor) update(pc int, v int64, epoch int) {
	old, seen := p.last[pc]
	if seen && old == v {
		if p.conf[pc] < predictConfidence {
			p.conf[pc]++
		}
	} else {
		p.conf[pc] = 0
	}
	if seen {
		// Per-epoch stride: normalize the delta by the epoch distance.
		gap := epoch - p.lastEpoch[pc]
		if gap >= 1 && (v-old)%int64(gap) == 0 {
			d := (v - old) / int64(gap)
			if p.stride[pc] == d {
				if p.sconf[pc] < predictConfidence {
					p.sconf[pc]++
				}
			} else {
				p.stride[pc] = d
				p.sconf[pc] = 0
			}
		} else {
			p.sconf[pc] = 0
		}
	}
	p.last[pc] = v
	p.lastEpoch[pc] = epoch
}
