package sim

// Focused edge-case tests for the speculation machinery: cascading
// restarts, mailbox generation invalidation, commit ordering, doomed
// (stale-read) violations, and idle-slot accounting. These complement the
// end-to-end policy tests in sim_test.go by pinning down individual
// mechanisms.

import (
	"strings"
	"testing"

	"tlssync/internal/core"
	"tlssync/internal/ir"
	"tlssync/internal/trace"
)

// synthProg issues synthetic instructions and remembers them so the
// trace's Code table can be built — real programs get theirs from
// Program.Code() (which walks function bodies), but these test
// instructions are never attached to a block.
type synthProg struct {
	*ir.Program
	insts []*ir.Instr
}

func newSynthProg() *synthProg { return &synthProg{Program: ir.NewProgram()} }

func (p *synthProg) NewInstr(op ir.Op) *ir.Instr {
	in := p.Program.NewInstr(op)
	p.insts = append(p.insts, in)
	return in
}

func (p *synthProg) code() ir.Code {
	tbl := make(ir.Code, p.MaxInstrID())
	for _, in := range p.insts {
		tbl[in.ID] = in
	}
	return tbl
}

// evFor builds the trace event for an existing instruction.
func evFor(in *ir.Instr, addr, val int64, flags ...uint8) trace.Event {
	ev := trace.Event{SI: int32(in.ID), Addr: addr, Val: val}
	for _, f := range flags {
		ev.Flags |= f
	}
	return ev
}

// mkEvent builds a trace event for a fresh synthetic instruction.
func mkEvent(p *synthProg, op ir.Op, addr, val int64, regs ...ir.Reg) trace.Event {
	in := p.NewInstr(op)
	if len(regs) > 0 {
		in.Dst = regs[0]
	}
	if len(regs) > 1 {
		in.A = regs[1]
	}
	if len(regs) > 2 {
		in.B = regs[2]
	}
	return evFor(in, addr, val)
}

// synthTrace builds a single region instance from per-epoch event lists.
func synthTrace(p *synthProg, epochs ...[]trace.Event) *trace.ProgramTrace {
	ri := &trace.RegionInstance{RegionID: 0}
	for i, evs := range epochs {
		ri.Epochs = append(ri.Epochs, &trace.Epoch{Index: i, Events: evs})
	}
	return &trace.ProgramTrace{Segments: []trace.Segment{{Region: ri}}, Code: p.code()}
}

// filler returns n cheap ALU events to pad an epoch.
func filler(p *synthProg, n int) []trace.Event {
	out := make([]trace.Event, 0, n)
	for i := 0; i < n; i++ {
		in := p.NewInstr(ir.Const)
		in.Dst = ir.Reg(i % 4)
		out = append(out, evFor(in, 0, 0))
	}
	return out
}

func TestEagerViolationStoreHitsExposedLoad(t *testing.T) {
	p := newSynthProg()
	const addr = 0x20000
	// Epoch 0: long prefix, then store to addr.
	e0 := append(filler(p, 80), mkEvent(p, ir.Store, addr, 1, ir.None, 0, 1))
	// Epoch 1: loads addr immediately (before epoch 0's store executes).
	e1 := append([]trace.Event{mkEvent(p, ir.Load, addr, 0, 2, 0)}, filler(p, 40)...)
	r := Simulate(Input{Trace: synthTrace(p, e0, e1), Policy: PolicyU()})
	if r.ViolByKind["eager"] == 0 {
		t.Errorf("expected an eager violation: %v", r.ViolByKind)
	}
	if r.Violations == 0 || r.Restarts == 0 {
		t.Error("violation/restart counters not incremented")
	}
}

func TestStaleReadViolationAtCommit(t *testing.T) {
	p := newSynthProg()
	const addr = 0x20000
	// Epoch 0: stores addr early, then a long tail (stays uncommitted).
	e0 := append([]trace.Event{mkEvent(p, ir.Store, addr, 1, ir.None, 0, 1)}, filler(p, 100)...)
	// Epoch 1: loads addr late (after the store executed, producer active).
	e1 := append(filler(p, 60), mkEvent(p, ir.Load, addr, 0, 2, 0))
	r := Simulate(Input{Trace: synthTrace(p, e0, e1), Policy: PolicyU()})
	if r.ViolByKind["stale"] == 0 {
		t.Errorf("expected a stale-read violation at commit: %v", r.ViolByKind)
	}
}

func TestPrivateHitNoViolation(t *testing.T) {
	p := newSynthProg()
	const addr = 0x20000
	// Epoch 1 stores addr itself before loading: private hit, immune.
	e0 := append(filler(p, 80), mkEvent(p, ir.Store, addr, 1, ir.None, 0, 1))
	e1 := append([]trace.Event{
		mkEvent(p, ir.Store, addr, 7, ir.None, 0, 1),
		mkEvent(p, ir.Load, addr, 7, 2, 0),
	}, filler(p, 40)...)
	r := Simulate(Input{Trace: synthTrace(p, e0, e1), Policy: PolicyU()})
	if r.ViolByKind["eager"] != 0 {
		t.Errorf("private hit must not be violated eagerly: %v", r.ViolByKind)
	}
	// Note: epoch 1's own store to the line epoch 0 also stores can still
	// trigger ordering hazards in other kinds; the eager load exposure is
	// what this test pins down.
}

func TestFalseSharingLineGranularity(t *testing.T) {
	p := newSynthProg()
	// Distinct words, same 32-byte line.
	e0 := append(filler(p, 80), mkEvent(p, ir.Store, 0x20000, 1, ir.None, 0, 1))
	e1 := append([]trace.Event{mkEvent(p, ir.Load, 0x20008, 0, 2, 0)}, filler(p, 40)...)
	r := Simulate(Input{Trace: synthTrace(p, e0, e1), Policy: PolicyU()})
	if r.Violations == 0 {
		t.Error("false sharing not detected at line granularity")
	}

	// With 8-byte lines, no violation.
	mach := DefaultMachine()
	mach.LineSize = 8
	r2 := Simulate(Input{Trace: synthTrace(p, e0, e1), Policy: PolicyU(), Mach: mach})
	if r2.Violations != 0 {
		t.Errorf("word-granularity tracking still violated: %d", r2.Violations)
	}
}

func TestStackAddressesNotTracked(t *testing.T) {
	p := newSynthProg()
	addr := ir.StackBase + 0x100
	e0 := append(filler(p, 80), mkEvent(p, ir.Store, addr, 1, ir.None, 0, 1))
	e1 := append([]trace.Event{mkEvent(p, ir.Load, addr, 0, 2, 0)}, filler(p, 40)...)
	r := Simulate(Input{Trace: synthTrace(p, e0, e1), Policy: PolicyU()})
	if r.Violations != 0 {
		t.Errorf("stack accesses tracked: %d violations", r.Violations)
	}
}

func TestCascadeRestartOnProducerSquash(t *testing.T) {
	p := newSynthProg()
	const addrA = 0x20000 // line A: epoch0 -> epoch1 dependence
	const sync = 0
	// Epoch 0: exposed-loads line B late... build a 3-epoch chain:
	//   epoch 0 stores line A late -> violates epoch 1 (loaded A early).
	//   epoch 1 signaled epoch 2 before being squashed -> cascade.
	sigIn := p.NewInstr(ir.SignalMem)
	sigIn.Imm = sync
	sigIn.A, sigIn.B = 0, 1

	waitA := p.NewInstr(ir.WaitMemAddr)
	waitA.Dst, waitA.Imm = 3, sync

	e0 := append(filler(p, 120), mkEvent(p, ir.Store, addrA, 5, ir.None, 0, 1))
	e1 := append([]trace.Event{
		mkEvent(p, ir.Load, addrA, 0, 2, 0), // exposed early: will be violated
		evFor(sigIn, 0x30000, 9),            // signals epoch 2 early
	}, filler(p, 60)...)
	e2 := append([]trace.Event{
		evFor(waitA, 0x30000, 0), // consumes epoch 1's signal
	}, filler(p, 30)...)

	r := Simulate(Input{Trace: synthTrace(p, e0, e1, e2), Policy: PolicyU()})
	// Epoch 1 violated by epoch 0's store; epoch 2 consumed epoch 1's
	// (now withdrawn) signal and must cascade.
	if r.Violations < 1 {
		t.Fatalf("no violations: %v", r.ViolByKind)
	}
	if r.Restarts < 2 {
		t.Errorf("expected cascade restart of the consumer: restarts=%d", r.Restarts)
	}
}

func TestSignalAddressBufferRestartsConsumer(t *testing.T) {
	p := newSynthProg()
	const sync = 0
	const addr = 0x20000
	sigIn := p.NewInstr(ir.SignalMem)
	sigIn.Imm = sync
	sigIn.A, sigIn.B = 0, 1
	waitA := p.NewInstr(ir.WaitMemAddr)
	waitA.Dst, waitA.Imm = 3, sync

	// Epoch 0: signal (addr), then later store to the SAME addr.
	e0 := append([]trace.Event{
		evFor(sigIn, addr, 1),
	}, append(filler(p, 60), mkEvent(p, ir.Store, addr, 2, ir.None, 0, 1))...)
	// Epoch 1: consumes the signal early.
	e1 := append([]trace.Event{evFor(waitA, addr, 0)}, filler(p, 80)...)

	r := Simulate(Input{Trace: synthTrace(p, e0, e1), Policy: PolicyU()})
	if r.ViolByKind["sigbuf"] == 0 {
		t.Errorf("signal-address-buffer hit not detected: %v", r.ViolByKind)
	}
}

func TestUFFLoadImmune(t *testing.T) {
	p := newSynthProg()
	const addr = 0x20000
	// Epoch 0 stores addr late; epoch 1's load carries FlagUFF (the
	// functional interpreter validated the forwarded value): no violation.
	ld := p.NewInstr(ir.LoadSync)
	ld.Dst, ld.A, ld.Imm = 2, 0, 0
	e0 := append(filler(p, 80), mkEvent(p, ir.Store, addr, 1, ir.None, 0, 1))
	e1 := append([]trace.Event{evFor(ld, addr, 1, trace.FlagUFF)}, filler(p, 40)...)
	r := Simulate(Input{Trace: synthTrace(p, e0, e1), Policy: PolicyU()})
	if r.Violations != 0 {
		t.Errorf("UFF load violated: %d (%v)", r.Violations, r.ViolByKind)
	}
}

func TestOldestEpochCannotBeViolated(t *testing.T) {
	p := newSynthProg()
	// Only one epoch: it is always oldest; no speculation state can harm
	// it and it must commit exactly once.
	e0 := filler(p, 50)
	r := Simulate(Input{Trace: synthTrace(p, e0), Policy: PolicyU()})
	if r.Violations != 0 || r.Restarts != 0 {
		t.Errorf("single epoch violated: %v", r.ViolByKind)
	}
	if r.Regions[0].Epochs != 1 {
		t.Errorf("committed epochs = %d", r.Regions[0].Epochs)
	}
}

func TestManyEpochsCommitInOrder(t *testing.T) {
	p := newSynthProg()
	var epochs [][]trace.Event
	for i := 0; i < 37; i++ {
		epochs = append(epochs, filler(p, 20+i%13))
	}
	r := Simulate(Input{Trace: synthTrace(p, epochs...), Policy: PolicyU()})
	if r.Regions[0].Epochs != 37 {
		t.Errorf("committed %d epochs, want 37", r.Regions[0].Epochs)
	}
	slots := r.RegionSlots()
	want := r.RegionCycles() * int64(r.Machine.CPUs) * int64(r.Machine.IssueWidth)
	if slots.Total() != want {
		t.Errorf("slot conservation broken: %d != %d", slots.Total(), want)
	}
}

func TestEmptyTrace(t *testing.T) {
	r := Simulate(Input{Trace: &trace.ProgramTrace{}, Policy: PolicyU()})
	if r.TotalCycles != 0 {
		t.Errorf("empty trace took %d cycles", r.TotalCycles)
	}
}

func TestSeqSegmentsBetweenRegions(t *testing.T) {
	p := newSynthProg()
	tr := &trace.ProgramTrace{Segments: []trace.Segment{
		{Seq: filler(p, 40)},
		{Region: &trace.RegionInstance{RegionID: 0, Epochs: []*trace.Epoch{
			{Index: 0, Events: filler(p, 30)},
			{Index: 1, Events: filler(p, 30)},
		}}},
		{Seq: filler(p, 40)},
	}}
	tr.Code = p.code()
	r := Simulate(Input{Trace: tr, Policy: PolicyU()})
	if r.SeqCycles == 0 {
		t.Error("sequential cycles not accounted")
	}
	if r.RegionCycles() == 0 {
		t.Error("region cycles not accounted")
	}
	if r.TotalCycles < r.SeqCycles+r.RegionCycles() {
		t.Errorf("total %d < seq %d + region %d", r.TotalCycles, r.SeqCycles, r.RegionCycles())
	}
}

// TestWholeWorkloadScalarWaitAccounting checks that scalar sync stalls
// appear in the sync segment on a real compiled benchmark.
func TestWholeWorkloadScalarWaitAccounting(t *testing.T) {
	// A loop whose only carried value is a non-induction scalar produced
	// at the end of the body (cannot be forwarded early).
	src := `
var out [1024]int;
func main() {
	var i int;
	var s int;
	parallel for i = 0; i < 200; i = i + 1 {
		var j int = 0;
		var acc int = 0;
		while j < 6 {
			acc = acc + (i + j) * 3;
			j = j + 1;
		}
		s = s ^ acc;
		out[i % 1024] = s;
	}
	print(s);
}
`
	b, err := core.Compile(core.Config{Source: src, RefInput: []int64{1}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := b.Trace(b.Base, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	r := Simulate(Input{Trace: tr, Policy: PolicyU()})
	if r.ScalarWaitCycles == 0 {
		t.Error("no scalar wait stalls recorded for a serial scalar chain")
	}
}

func TestStridePredictorUnit(t *testing.T) {
	p := newPredictor()
	p.strideMode = true
	// Arithmetic sequence: last-value never confident, stride becomes so.
	vals := []int64{10, 14, 18, 22, 26}
	for i, v := range vals {
		p.update(7, v, i)
	}
	v, ok := p.predict(7, len(vals))
	if !ok || v != 30 {
		t.Errorf("stride predict = %d,%v, want 30,true", v, ok)
	}
	// Distance extrapolation: predicting 3 epochs ahead of the last
	// training adds 3 strides.
	v, ok = p.predict(7, len(vals)+2)
	if !ok || v != 38 {
		t.Errorf("extrapolated predict = %d,%v, want 38,true", v, ok)
	}
	// Without stride mode the same stream is unpredictable.
	q := newPredictor()
	for i, v := range vals {
		q.update(7, v, i)
	}
	if _, ok := q.predict(7, len(vals)); ok {
		t.Error("last-value predictor predicted an arithmetic stream")
	}
}

func TestStridePredictionHelpsAllocator(t *testing.T) {
	// gap's forwarded value is a bump pointer with (mostly) regular
	// strides when the allocation size is fixed: stride prediction can
	// capture what last-value cannot — the extension experiment.
	src := `
var arena_top int;
var pool [2048]int;
var out [1024]int;
func main() {
	var i int;
	for i = 0; i < 2048; i = i + 1 { pool[i] = i * 11; }
	parallel for i = 0; i < 500; i = i + 1 {
		var p int = arena_top;
		arena_top = p + 3;
		var j int = 0;
		var acc int = 0;
		while j < 10 {
			acc = acc + pool[(p + j * 31) % 2048];
			j = j + 1;
		}
		out[i % 1024] = acc + p % 101;
	}
	print(arena_top);
}
`
	b, err := core.Compile(core.Config{Source: src, RefInput: []int64{1}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := b.Trace(b.Base, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	last := Simulate(Input{Trace: tr, Policy: Policy{Name: "P", Predict: true}})
	stride := Simulate(Input{Trace: tr, Policy: Policy{Name: "SP", StridePredict: true}})
	if stride.Violations >= last.Violations {
		t.Errorf("stride prediction (%d violations) should beat last-value (%d) on a bump pointer",
			stride.Violations, last.Violations)
	}
	if stride.RegionCycles() >= last.RegionCycles() {
		t.Errorf("stride prediction (%d cycles) should beat last-value (%d)",
			stride.RegionCycles(), last.RegionCycles())
	}
}

func TestFilterSyncBypassesUselessChannels(t *testing.T) {
	// Alternating heads: even epochs touch h0, odd epochs h1, with the
	// store late and the load early. Each head's self-dependence is
	// distance 2, so the compiler synchronizes both groups — but the
	// immediate predecessor never produces the value the consumer needs:
	// every wait completes via a (late) NULL, serializing for nothing.
	// The paper's §4.2 suggestion (iii) lets the hardware learn that the
	// channels never forward useful values and stop stalling.
	src := `
var h0 int;
var pad0 [3]int;
var h1 int;
var work [2048]int;
var out [1024]int;
func main() {
	var i int;
	for i = 0; i < 2048; i = i + 1 { work[i] = i * 13 % 997; }
	parallel for i = 0; i < 400; i = i + 1 {
		var v int = 0;
		if i % 2 == 0 {
			v = h0;
		} else {
			v = h1;
		}
		var j int = 0;
		var acc int = v % 17;
		while j < 10 {
			acc = acc + work[(i * 37 + j * 59) % 2048];
			j = j + 1;
		}
		if i % 2 == 0 {
			h0 = acc % 1009;
		} else {
			h1 = acc % 1013;
		}
		out[i % 1024] = acc;
	}
	print(h0 + h1);
}
`
	b, err := core.Compile(core.Config{Source: src, RefInput: []int64{1}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(memSyncIDs(b)) == 0 {
		t.Skip("nothing synchronized; workload needs recalibration")
	}
	tr, err := b.Trace(b.Ref, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	plain := Simulate(Input{Trace: tr, Policy: PolicyC("C")})
	filtered := Simulate(Input{Trace: tr, Policy: Policy{Name: "CF", FilterSync: true}})
	if plain.MemWaitCycles == 0 {
		t.Skip("no wait cost to filter; workload needs recalibration")
	}
	if filtered.MemWaitCycles*2 > plain.MemWaitCycles {
		t.Errorf("filtering should cut wait stalls: %d vs %d",
			filtered.MemWaitCycles, plain.MemWaitCycles)
	}
	if filtered.RegionCycles() >= plain.RegionCycles() {
		t.Errorf("filtered C (%d cycles) should beat plain C (%d) when sync is useless",
			filtered.RegionCycles(), plain.RegionCycles())
	}
}

// memSyncIDs lists the sync channels of the ref binary.
func memSyncIDs(b *core.Build) []int {
	var ids []int
	for _, info := range b.MemInfoRef {
		ids = append(ids, info.SyncIDs...)
	}
	return ids
}

func TestFilterSyncHarmlessWhenSyncUseful(t *testing.T) {
	// On a hot forwarded dependence (quickstart-style), every wait is
	// useful: the filter must never engage and timing must be unchanged.
	src := `
var total int;
var work [2048]int;
var out [1024]int;
func main() {
	var i int;
	for i = 0; i < 2048; i = i + 1 { work[i] = i * 13 % 997; }
	parallel for i = 0; i < 300; i = i + 1 {
		var j int = 0;
		var acc int = 0;
		while j < 8 {
			acc = acc + work[(i * 29 + j * 61) % 2048];
			j = j + 1;
		}
		total = total + acc % 100;
		out[i % 1024] = acc;
	}
	print(total);
}
`
	b, err := core.Compile(core.Config{Source: src, RefInput: []int64{1}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := b.Trace(b.Ref, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	plain := Simulate(Input{Trace: tr, Policy: PolicyC("C")})
	filtered := Simulate(Input{Trace: tr, Policy: Policy{Name: "CF", FilterSync: true}})
	if filtered.RegionCycles() != plain.RegionCycles() {
		t.Errorf("filter changed useful sync: %d vs %d cycles",
			filtered.RegionCycles(), plain.RegionCycles())
	}
	if filtered.Violations != plain.Violations {
		t.Errorf("filter changed violations: %d vs %d", filtered.Violations, plain.Violations)
	}
}

func TestCompilerHintsStickyTableEntries(t *testing.T) {
	tb := newHWTable(8, 3)
	tb.sticky = map[int]bool{7: true}
	tb.record(7)
	tb.record(9)
	for i := 0; i < 3; i++ {
		tb.epochCommitted()
	}
	if !tb.contains(7) {
		t.Error("hinted PC lost in reset")
	}
	if tb.contains(9) {
		t.Error("unhinted PC survived reset")
	}
}

func TestCompilerHintsPolicy(t *testing.T) {
	// On a bursty dependence, plain H forgets the load at every reset and
	// pays a fresh violation per burst; hints keep the entry pinned.
	p := newSynthProg()
	ld := p.NewInstr(ir.Load)
	ld.Dst, ld.A = 2, 0
	st := p.NewInstr(ir.Store)
	st.A, st.B = 0, 1
	const addr = 0x20000
	var epochs [][]trace.Event
	for i := 0; i < 200; i++ {
		var evs []trace.Event
		evs = append(evs, evFor(ld, addr, int64(i)))
		evs = append(evs, filler(p, 30)...)
		evs = append(evs, evFor(st, addr, int64(i+1)))
		epochs = append(epochs, evs)
	}
	marks := map[int]bool{ld.Origin: true}
	mach := DefaultMachine()
	mach.HWResetEpochs = 8

	plainH := Simulate(Input{Trace: synthTrace(p, epochs...),
		Policy: Policy{Name: "H", HWSync: true, CompilerMarks: marks}, Mach: mach})
	hinted := Simulate(Input{Trace: synthTrace(p, epochs...),
		Policy: Policy{Name: "H+hint", HWSync: true, CompilerMarks: marks, CompilerHints: true}, Mach: mach})
	if hinted.Violations >= plainH.Violations {
		t.Errorf("hints should cut post-reset violations: %d vs %d",
			hinted.Violations, plainH.Violations)
	}
}

func TestTimelineCollection(t *testing.T) {
	p := newSynthProg()
	const addr = 0x20000
	var epochs [][]trace.Event
	for i := 0; i < 12; i++ {
		var evs []trace.Event
		evs = append(evs, evFor(loadInstr(p), addr, int64(i)))
		evs = append(evs, filler(p, 25)...)
		evs = append(evs, evFor(storeInstr(p), addr, int64(i+1)))
		epochs = append(epochs, evs)
	}
	r := Simulate(Input{Trace: synthTrace(p, epochs...), Policy: PolicyU(), CollectTimeline: true})
	if len(r.Spans) != 12 {
		t.Fatalf("spans = %d, want 12", len(r.Spans))
	}
	squashed := 0
	for _, s := range r.Spans {
		if s.Commit < s.Start {
			t.Errorf("epoch %d: commit %d before start %d", s.Epoch, s.Commit, s.Start)
		}
		squashed += len(s.Squashes)
		for _, sq := range s.Squashes {
			if sq < s.Start || sq > s.Commit {
				t.Errorf("epoch %d: squash %d outside lifetime [%d,%d]", s.Epoch, sq, s.Start, s.Commit)
			}
		}
	}
	if int64(squashed) != r.Restarts {
		t.Errorf("span squashes %d != restarts %d", squashed, r.Restarts)
	}
	// Commits are in epoch order.
	for i := 1; i < len(r.Spans); i++ {
		if r.Spans[i].Commit < r.Spans[i-1].Commit {
			t.Error("commit order violated")
		}
	}

	txt := Timeline(r.Spans, 0, 10, 60)
	if !strings.Contains(txt, "e    0 cpu0") {
		t.Errorf("timeline rendering missing rows:\n%s", txt)
	}
	if !strings.Contains(txt, "■") {
		t.Error("timeline missing commit markers")
	}
	if squashed > 0 && !strings.Contains(txt, "x") {
		t.Error("timeline missing squash markers")
	}
}

func loadInstr(p *synthProg) *ir.Instr {
	in := p.NewInstr(ir.Load)
	in.Dst, in.A = 2, 0
	return in
}

func storeInstr(p *synthProg) *ir.Instr {
	in := p.NewInstr(ir.Store)
	in.A, in.B = 0, 1
	return in
}

func TestTimelineEmpty(t *testing.T) {
	if got := Timeline(nil, 0, 10, 60); !strings.Contains(got, "no epochs") {
		t.Errorf("empty timeline = %q", got)
	}
}
