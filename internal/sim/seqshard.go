package sim

// Sharded sequential-baseline timing.
//
// SimulateSequentialRegions walks the whole trace on one virtual CPU.
// Its only cross-unit state is the cache hierarchy: the register
// scoreboard is rebuilt per unit (runSequential starts a fresh run with
// frames[0].base == 0), and the dependence/synchronization machinery is
// inert in sequential mode (m.runs and m.mail stay nil). Timing is also
// translation-invariant — every readiness comparison shifts uniformly
// with the unit's start cycle — so a unit timed from cycle 0 takes
// exactly as many cycles as it would mid-stream.
//
// That licenses a two-phase decomposition:
//
//	Phase A (serial): walk every memory event in program order through
//	  the cache hierarchy, recording each access's latency. This
//	  preserves the exact LRU state evolution of the serial machine.
//	Phase B (parallel): time each unit (a sequential segment, or one
//	  region epoch) on its own lightweight machine that replays the
//	  recorded latencies instead of touching a cache, then merge the
//	  per-unit cycle counts in program order.
//
// Phase A touches one int32 per memory event; Phase B carries all the
// scoreboard work (issue-width packing, ALU/call latencies, frame
// stacks), which is where the time goes. The merged Result is
// bit-identical to the serial path's, which parallel_diff tests enforce
// across worker counts.

import (
	"context"

	"tlssync/internal/ir"
	"tlssync/internal/parallel"
	"tlssync/internal/trace"
)

// latencySource is where execLatency gets memory-access latencies: the
// live cache hierarchy on the serial paths, or a recorded replay when
// sharding the sequential baseline.
type latencySource interface {
	memLatency(cpu int, addr int64) int
}

func (h *hierarchy) memLatency(cpu int, addr int64) int {
	return h.latency(cpu, addr)
}

// replayLatencies feeds back latencies recorded by the Phase-A cache
// walk, in the same event order they were recorded.
type replayLatencies struct {
	lats []int32
	idx  int
}

func (r *replayLatencies) memLatency(int, int64) int {
	l := r.lats[r.idx]
	r.idx++
	return int(l)
}

// seqUnit is one independently-timeable slice of the trace: a whole
// sequential segment, or a single region epoch.
type seqUnit struct {
	events []trace.Event
	lats   []int32 // recorded latency per memory event, in order
	cycles int64   // filled by Phase B
}

func simulateSeqSharded(in Input) *Result {
	if in.Mach.CPUs == 0 {
		in.Mach = DefaultMachine()
	}

	// Cut the trace into units in program order.
	var units []*seqUnit
	for _, seg := range in.Trace.Segments {
		if seg.Region == nil {
			units = append(units, &seqUnit{events: seg.Seq})
			continue
		}
		for _, e := range seg.Region.Epochs {
			units = append(units, &seqUnit{events: e.Events})
		}
	}

	// Phase A: the serial machine's cache walk. Same hierarchy, same
	// single CPU, same access order (stepSequential consumes events
	// strictly in order, and only Load/LoadSync/Store touch the cache).
	hier := newHierarchy(in.Mach)
	code := in.Trace.Code
	for _, u := range units {
		for i := range u.events {
			switch code[u.events[i].SI].Op {
			case ir.Load, ir.LoadSync, ir.Store:
				u.lats = append(u.lats, int32(hier.latency(0, u.events[i].Addr)))
			}
		}
	}

	// Phase B: time every unit independently on a scoreboard-only
	// machine. No error path: fn is total, so Map can only fail via
	// panic, which it propagates.
	_ = parallel.Map(context.Background(), in.Workers, len(units), func(_ context.Context, i int) error {
		u := units[i]
		um := &machine{
			in:   in,
			cfg:  in.Mach,
			pol:  in.Policy,
			code: code,
			lat:  &replayLatencies{lats: u.lats},
			res: &Result{
				Policy:     in.Policy.Name,
				Machine:    in.Mach,
				Regions:    make(map[int]*RegionStats),
				ViolByKind: make(map[string]int64),
			},
		}
		um.runSequential(u.events)
		u.cycles = um.cycle
		return nil
	})

	// Merge in program order, replicating the serial path's accounting:
	// SeqCycles accrues only outside regions; region cycles and the
	// nominal one-CPU busy slots accrue per region.
	res := &Result{
		Policy:     in.Policy.Name,
		Machine:    in.Mach,
		Regions:    make(map[int]*RegionStats),
		ViolByKind: make(map[string]int64),
	}
	var cycle int64
	next := 0
	for _, seg := range in.Trace.Segments {
		if seg.Region == nil {
			res.SeqCycles += units[next].cycles
			cycle += units[next].cycles
			next++
			continue
		}
		rs, ok := res.Regions[seg.Region.RegionID]
		if !ok {
			rs = &RegionStats{RegionID: seg.Region.RegionID}
			res.Regions[seg.Region.RegionID] = rs
		}
		start := cycle
		for range seg.Region.Epochs {
			cycle += units[next].cycles
			next++
			rs.Epochs++
		}
		rs.Cycles += cycle - start
		rs.Slots.Busy += cycle - start // nominal: 1 CPU, bookkeeping only
	}
	res.TotalCycles = cycle
	return res
}
