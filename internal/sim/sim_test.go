package sim

import (
	"testing"

	"tlssync/internal/core"
	"tlssync/internal/memsync"
)

// build compiles src through the full pipeline.
func build(t testing.TB, src string) *core.Build {
	t.Helper()
	b, err := core.Compile(core.Config{Source: src, RefInput: []int64{1, 2, 3}, Seed: 5})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return b
}

func simU(t testing.TB, b *core.Build) *Result {
	t.Helper()
	tr, err := b.Trace(b.Base, b.Config.RefInput)
	if err != nil {
		t.Fatal(err)
	}
	return Simulate(Input{Trace: tr, Policy: PolicyU()})
}

func simPolicy(t testing.TB, b *core.Build, binary string, pol Policy) *Result {
	t.Helper()
	p := b.Base
	switch binary {
	case "ref":
		p = b.Ref
	case "train":
		p = b.Train
	}
	tr, err := b.Trace(p, b.Config.RefInput)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name == "B" || pol.CompilerMarks != nil {
		pol.CompilerMarks = memsync.SyncedLoadOrigins(b.Ref)
	}
	return Simulate(Input{Trace: tr, Policy: pol})
}

// Independent iterations: TLS should get near-linear speedup, no
// violations.
const independentSrc = `
var arr [4096]int;
var sink int;
func main() {
	var i int;
	parallel for i = 0; i < 1000; i = i + 1 {
		var v int = arr[(i * 173) % 4096];
		arr[(i * 173) % 4096] = v + i * i + (i << 3) + (i % 7);
	}
	print(arr[173]);
}
`

// Every epoch reads and writes g: serial dependence chain, maximal
// violations under plain speculation.
const dependentSrc = `
var g int;
var pad [512]int;
func main() {
	var i int;
	parallel for i = 0; i < 600; i = i + 1 {
		var a int = (i * 17) % 97;
		var b int = a * a + i;
		pad[(i * 31) % 512] = b;
		g = g + b % 13 + 1;
	}
	print(g);
}
`

func TestIndependentLoopFewViolations(t *testing.T) {
	b := build(t, independentSrc)
	r := simU(t, b)
	if r.Violations > 20 {
		t.Errorf("independent loop had %d violations", r.Violations)
	}
	slots := r.RegionSlots()
	if slots.Fail*5 > slots.Total() {
		t.Errorf("independent loop wasted %d/%d slots on fail", slots.Fail, slots.Total())
	}
	if r.RegionCycles() == 0 || slots.Busy == 0 {
		t.Fatal("no region activity simulated")
	}
}

func TestDependentLoopViolatesUnderU(t *testing.T) {
	b := build(t, dependentSrc)
	r := simU(t, b)
	if r.Violations < 50 {
		t.Errorf("dependent loop had only %d violations under U", r.Violations)
	}
	slots := r.RegionSlots()
	if slots.Fail == 0 {
		t.Error("no fail slots despite violations")
	}
}

func TestSequentialBaselineSpeedup(t *testing.T) {
	// Parallel independent loop must beat the 1-CPU sequential time.
	b := build(t, independentSrc)
	tr, err := b.Trace(b.Base, b.Config.RefInput)
	if err != nil {
		t.Fatal(err)
	}
	par := Simulate(Input{Trace: tr, Policy: PolicyU()})

	seqTr, err := b.Trace(b.Plain, b.Config.RefInput)
	if err != nil {
		t.Fatal(err)
	}
	seq := SimulateSequentialRegions(Input{Trace: seqTr})
	if seq.RegionCycles() == 0 {
		t.Fatal("no sequential region cycles")
	}
	speedup := float64(seq.RegionCycles()) / float64(par.RegionCycles())
	if speedup < 1.5 {
		t.Errorf("independent loop speedup = %.2f, want > 1.5", speedup)
	}
	if speedup > float64(par.Machine.CPUs)+0.5 {
		t.Errorf("speedup %.2f exceeds CPU count — accounting bug", speedup)
	}
}

func TestCompilerSyncBeatsUOnDependentLoop(t *testing.T) {
	b := build(t, dependentSrc)
	u := simU(t, b)
	c := simPolicy(t, b, "ref", PolicyC("C"))
	if c.Violations >= u.Violations {
		t.Errorf("C has %d violations, U has %d — sync should cut them", c.Violations, u.Violations)
	}
	cs, us := c.RegionSlots(), u.RegionSlots()
	if cs.Fail >= us.Fail {
		t.Errorf("C fail=%d >= U fail=%d", cs.Fail, us.Fail)
	}
	if c.RegionCycles() >= u.RegionCycles() {
		t.Errorf("C cycles=%d >= U cycles=%d on a serial-dependence loop",
			c.RegionCycles(), u.RegionCycles())
	}
	// Synchronization converts fail into sync stalls.
	if cs.Sync == 0 {
		t.Error("C shows no sync slots")
	}
}

func TestHWSyncReducesViolations(t *testing.T) {
	b := build(t, dependentSrc)
	u := simU(t, b)
	h := simPolicy(t, b, "base", PolicyH())
	if h.Violations >= u.Violations {
		t.Errorf("H violations=%d >= U violations=%d", h.Violations, u.Violations)
	}
	if h.HWSyncCycles == 0 {
		t.Error("H shows no hardware sync stalls")
	}
}

func TestPerfectMemoryEliminatesFailAndMemStalls(t *testing.T) {
	b := build(t, dependentSrc)
	o := simPolicy(t, b, "base", PolicyO())
	if o.Violations != 0 {
		t.Errorf("O had %d violations", o.Violations)
	}
	slots := o.RegionSlots()
	if slots.Fail != 0 {
		t.Errorf("O has fail slots: %d", slots.Fail)
	}
	if o.MemWaitCycles != 0 {
		t.Errorf("O has mem wait stalls: %d", o.MemWaitCycles)
	}
	// O is the upper bound: at least as fast as U.
	u := simU(t, b)
	if o.RegionCycles() > u.RegionCycles() {
		t.Errorf("O cycles=%d > U cycles=%d", o.RegionCycles(), u.RegionCycles())
	}
}

func TestOracleLoadSubset(t *testing.T) {
	b := build(t, dependentSrc)
	// Oracle on the hot loads (threshold 25% of epochs).
	hot := b.RefProfile.Regions[0].LoadsAboveThreshold(0.25)
	if len(hot) == 0 {
		t.Fatal("no hot loads found")
	}
	u := simU(t, b)
	tr, err := b.Trace(b.Base, b.Config.RefInput)
	if err != nil {
		t.Fatal(err)
	}
	or := Simulate(Input{Trace: tr, Policy: Policy{Name: "O25", OracleLoads: hot}})
	if or.Violations >= u.Violations {
		t.Errorf("oracle-25%% violations=%d >= U violations=%d", or.Violations, u.Violations)
	}
}

func TestEAndLBrackets(t *testing.T) {
	// E (free forwarding) should be no slower than C; L (stall until
	// oldest) should be no faster than E.
	b := build(t, dependentSrc)
	c := simPolicy(t, b, "ref", PolicyC("C"))
	e := simPolicy(t, b, "ref", PolicyE())
	l := simPolicy(t, b, "ref", PolicyL())
	if e.RegionCycles() > c.RegionCycles()*11/10 {
		t.Errorf("E cycles=%d much slower than C cycles=%d", e.RegionCycles(), c.RegionCycles())
	}
	if l.RegionCycles() < e.RegionCycles() {
		t.Errorf("L cycles=%d faster than E cycles=%d", l.RegionCycles(), e.RegionCycles())
	}
	if e.MemWaitCycles != 0 {
		t.Errorf("E has mem wait stalls: %d", e.MemWaitCycles)
	}
}

func TestPredictionMostlyIneffective(t *testing.T) {
	// The forwarded values here change every epoch (unpredictable): P
	// should be roughly like U, certainly not a large win.
	b := build(t, dependentSrc)
	u := simU(t, b)
	p := simPolicy(t, b, "base", PolicyP())
	if p.RegionCycles()*2 < u.RegionCycles() {
		t.Errorf("P cycles=%d suspiciously better than U=%d for unpredictable values",
			p.RegionCycles(), u.RegionCycles())
	}
}

func TestPredictablePredictionHelps(t *testing.T) {
	// A loop whose ONLY inter-epoch dependence carries a CONSTANT value:
	// last-value prediction should eliminate most violations once
	// confidence builds.
	src := `
var flag int;
var pad [2048]int;
var out [1024]int;
func main() {
	var i int;
	flag = 7;
	parallel for i = 0; i < 600; i = i + 1 {
		var w int = (i * 29) % 2039;
		pad[w] = pad[w] + i;
		out[i % 1024] = pad[w] + flag; // reads flag every epoch
		flag = 7;                      // rewrites the same value
	}
	var s int;
	for i = 0; i < 1024; i = i + 1 { s = s + out[i]; }
	print(s);
}
`
	b := build(t, src)
	u := simU(t, b)
	p := simPolicy(t, b, "base", PolicyP())
	if u.Violations == 0 {
		t.Skip("no violations to predict away")
	}
	if p.Violations >= u.Violations {
		t.Errorf("P violations=%d >= U violations=%d for constant value", p.Violations, u.Violations)
	}
}

func TestFalseSharingViolations(t *testing.T) {
	// Adjacent words in one cache line, no true dependence: violations
	// are pure false sharing. Hardware sync can fix; compiler (word-level
	// true deps) finds nothing to synchronize.
	src := `
var cells [4]int; // one 32-byte line
var out [1024]int;
func main() {
	var i int;
	parallel for i = 0; i < 600; i = i + 1 {
		var me int = i % 4;
		cells[me] = cells[me] + i;
		out[(i * 37) % 1024] = cells[me];
	}
	print(cells[0] + cells[1] + cells[2] + cells[3]);
}
`
	b := build(t, src)
	u := simU(t, b)
	if u.Violations < 30 {
		t.Errorf("false sharing produced only %d violations", u.Violations)
	}
	// The compiler found no frequent TRUE dependences (each epoch's slot
	// advances by 4, so self-dependences are at distance 4 — some may be
	// caught; the essential check is that hardware sync wins).
	h := simPolicy(t, b, "base", PolicyH())
	if h.Violations >= u.Violations {
		t.Errorf("H violations=%d >= U=%d on false sharing", h.Violations, u.Violations)
	}
}

func TestViolationBucketsClassify(t *testing.T) {
	b := build(t, dependentSrc)
	marks := memsync.SyncedLoadOrigins(b.Ref)
	if len(marks) == 0 {
		t.Fatal("no compiler marks")
	}
	tr, err := b.Trace(b.Base, b.Config.RefInput)
	if err != nil {
		t.Fatal(err)
	}
	pol := PolicyU()
	pol.CompilerMarks = marks
	r := Simulate(Input{Trace: tr, Policy: pol})
	var total int64
	for _, n := range r.ViolBuckets {
		total += n
	}
	if total == 0 {
		t.Fatal("no classified violations")
	}
	// The hot load is compiler-marked: compiler or both buckets dominate.
	covered := r.ViolBuckets[BucketCompiler] + r.ViolBuckets[BucketBoth]
	if covered*2 < total {
		t.Errorf("compiler-covered violations %d of %d — expected majority", covered, total)
	}
}

func TestSignalAddressBufferSmall(t *testing.T) {
	b := build(t, dependentSrc)
	c := simPolicy(t, b, "ref", PolicyC("C"))
	if c.SigBufPeak > 10 {
		t.Errorf("signal address buffer peaked at %d entries (paper: <= 10)", c.SigBufPeak)
	}
}

func TestDeterminism(t *testing.T) {
	b := build(t, dependentSrc)
	r1 := simU(t, b)
	r2 := simU(t, b)
	if r1.TotalCycles != r2.TotalCycles || r1.Violations != r2.Violations {
		t.Errorf("nondeterministic simulation: %v vs %v", r1, r2)
	}
}

func TestSlotConservation(t *testing.T) {
	// Region slots must equal CPUs x width x region cycles.
	b := build(t, dependentSrc)
	for _, pol := range []Policy{PolicyU(), PolicyO(), PolicyH(), PolicyP()} {
		r := simPolicy(t, b, "base", pol)
		slots := r.RegionSlots()
		want := r.RegionCycles() * int64(r.Machine.CPUs) * int64(r.Machine.IssueWidth)
		if slots.Total() != want {
			t.Errorf("%s: slots=%d, want %d (cycles=%d)", pol.Name, slots.Total(), want, r.RegionCycles())
		}
	}
	for _, pol := range []Policy{PolicyC("C"), PolicyE(), PolicyL(), PolicyB()} {
		r := simPolicy(t, b, "ref", pol)
		slots := r.RegionSlots()
		want := r.RegionCycles() * int64(r.Machine.CPUs) * int64(r.Machine.IssueWidth)
		if slots.Total() != want {
			t.Errorf("%s: slots=%d, want %d", pol.Name, slots.Total(), want)
		}
	}
}

func TestCommittedEpochsMatchTrace(t *testing.T) {
	b := build(t, dependentSrc)
	tr, err := b.Trace(b.Base, b.Config.RefInput)
	if err != nil {
		t.Fatal(err)
	}
	r := Simulate(Input{Trace: tr, Policy: PolicyU()})
	var epochs int64
	for _, rs := range r.Regions {
		epochs += rs.Epochs
	}
	if int(epochs) != tr.EpochCount() {
		t.Errorf("committed %d epochs, trace has %d", epochs, tr.EpochCount())
	}
}

func TestTable1Render(t *testing.T) {
	s := DefaultMachine().Table1()
	for _, want := range []string{"Issue Width", "32 KB", "1024 KB", "Crossbar"} {
		if !contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestCacheLRU(t *testing.T) {
	c := newCache(1, 2, 32) // one set, two ways
	if c.access(0) {
		t.Error("cold access hit")
	}
	if !c.access(0) {
		t.Error("warm access missed")
	}
	c.access(32) // second way
	if !c.access(0) || !c.access(32) {
		t.Error("both ways should be resident")
	}
	c.access(64) // evicts LRU (line 0)
	if c.access(0) {
		t.Error("line 0 should have been evicted")
	}
}

func TestHWTableLRUAndReset(t *testing.T) {
	tb := newHWTable(2, 3)
	tb.record(1)
	tb.record(2)
	if !tb.contains(1) || !tb.contains(2) {
		t.Fatal("entries missing")
	}
	tb.record(3) // evicts LRU
	if len(tb.lru) != 2 {
		t.Errorf("table size %d, want 2", len(tb.lru))
	}
	for i := 0; i < 3; i++ {
		tb.epochCommitted()
	}
	if len(tb.lru) != 0 {
		t.Error("table not reset after interval")
	}
}

func TestPredictor(t *testing.T) {
	p := newPredictor()
	if _, ok := p.predict(5, 0); ok {
		t.Error("cold predictor predicted")
	}
	// Confidence builds only after repeated identical values.
	p.update(5, 42, 0)
	if _, ok := p.predict(5, 1); ok {
		t.Error("predicted after a single observation")
	}
	for i := 0; i < predictConfidence; i++ {
		p.update(5, 42, i+1)
	}
	v, ok := p.predict(5, predictConfidence+1)
	if !ok || v != 42 {
		t.Errorf("predict = %d,%v, want 42,true", v, ok)
	}
	// A changed value destroys confidence.
	p.update(5, 43, predictConfidence+1)
	if _, ok := p.predict(5, predictConfidence+2); ok {
		t.Error("predicted immediately after value change")
	}
}
