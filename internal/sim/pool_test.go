package sim

import (
	"testing"

	"tlssync/internal/ir"
	"tlssync/internal/racedetect"
	"tlssync/internal/trace"
)

// Pool-contamination tests for the scoreboard pools, mirroring
// internal/interp/pool_test.go: dirty an object, recycle it, re-acquire
// it, and assert it is indistinguishable from a fresh allocation. This
// is the invariant that keeps simulation deterministic under pooling.

// dirtyRun fills every recyclable field of an epochRun with junk.
func dirtyRun(run *epochRun) {
	run.idx, run.gen, run.cpu = 7, 3, 5
	run.slots = Slots{Busy: 11, Fail: 13}
	run.finished = true
	run.finishCycle, run.lastComplete, run.stallUntil = 101, 102, 103
	run.stallSync, run.stallFail = true, true
	run.loadLines[0x1000] = loadMark{}
	run.storeLines[0x2000] = 9
	run.storeWords[0x3000] = true
	run.consumedGen = 4
	run.signaled[5] = true
	run.sigBuf[0x4000] = 6
	run.sigBufPeak = 7
	run.mispredicted, run.predictBan = true, true
	run.mispredictPCs = append(run.mispredictPCs, 42)
	run.trainings = append(run.trainings, pcVal{})
	run.scalarWait, run.memWait, run.hwWait = 1, 2, 3
	run.span = &EpochSpan{}
	run.frames = append(run.frames, getFrameSB(99, 3))
	run.frames[0].ready[7] = 1234
}

func TestRunPoolNoContamination(t *testing.T) {
	m := &machine{}
	run := m.newRun(&trace.Epoch{Index: 1}, 2)
	dirtyRun(run)
	putRun(run)

	got := m.newRun(&trace.Epoch{Index: 0}, 0)
	if got.idx != 0 || got.gen != 0 || got.cpu != 0 {
		t.Errorf("recycled run leaked position state: idx=%d gen=%d cpu=%d", got.idx, got.gen, got.cpu)
	}
	if got.slots != (Slots{}) {
		t.Errorf("recycled run leaked slot accounting: %+v", got.slots)
	}
	if got.finished || got.finishCycle != 0 || got.lastComplete != 0 || got.stallUntil != 0 || got.stallSync || got.stallFail {
		t.Error("recycled run leaked stall/finish state")
	}
	if len(got.loadLines) != 0 || len(got.storeLines) != 0 || len(got.storeWords) != 0 {
		t.Error("recycled run leaked dependence-tracking maps")
	}
	if got.consumedGen != -1 || len(got.signaled) != 0 || len(got.sigBuf) != 0 || got.sigBufPeak != 0 {
		t.Error("recycled run leaked synchronization state")
	}
	if got.mispredicted || got.predictBan || len(got.mispredictPCs) != 0 || len(got.trainings) != 0 {
		t.Error("recycled run leaked prediction state")
	}
	if got.scalarWait != 0 || got.memWait != 0 || got.hwWait != 0 {
		t.Error("recycled run leaked stall accounting")
	}
	if got.span != nil {
		t.Error("recycled run leaked its timeline span")
	}
	if len(got.frames) != 1 {
		t.Fatalf("recycled run has %d frames, want exactly the base frame", len(got.frames))
	}
	if f := got.frames[0]; len(f.ready) != 0 || f.base != 0 || f.callDst != ir.None {
		t.Errorf("recycled run's base frame leaked: ready=%v base=%d callDst=%v", f.ready, f.base, f.callDst)
	}
}

func TestFramePoolNoContamination(t *testing.T) {
	f := getFrameSB(50, 2)
	f.ready[1] = 99
	f.ready[2] = 100
	putFrameSB(f)

	got := getFrameSB(7, ir.None)
	if len(got.ready) != 0 {
		t.Errorf("recycled frame leaked register readiness: %v", got.ready)
	}
	if got.base != 7 || got.callDst != ir.None {
		t.Errorf("getFrameSB did not apply requested state: base=%d callDst=%v", got.base, got.callDst)
	}
}

// TestSimulateAllocBudget is the allocation-budget regression test for
// the simulator's scoreboard path: with the run and frame pools warm,
// re-simulating a fixed trace must stay within a small per-epoch
// allocation budget rather than reallocating five maps per epoch. See
// docs/perf.md for the budget rationale.
func TestSimulateAllocBudget(t *testing.T) {
	if racedetect.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	p := newSynthProg()
	epochs := make([][]trace.Event, 8)
	for i := range epochs {
		evs := filler(p, 50)
		evs = append(evs, mkEvent(p, ir.Store, 0x20000+int64(i)*256, int64(i), ir.None, 0, 1))
		epochs[i] = evs
	}
	tr := synthTrace(p, epochs...)
	run := func() { Simulate(Input{Trace: tr, Policy: PolicyU()}) }
	run() // warm the pools

	const budget = 120 // per simulation of 8 epochs: machine + result + pool misses
	allocs := testing.AllocsPerRun(50, run)
	if allocs > budget {
		t.Errorf("simulating 8 epochs allocates %.0f objects/run, budget %d — the scoreboard pools regressed (see docs/perf.md)", allocs, budget)
	}
}
