package lang

import "fmt"

// Parser is a recursive-descent / Pratt parser for MiniC.
type Parser struct {
	toks []Token
	pos  int
	errs []error
}

// Parse lexes and parses src into a File. It returns the first error
// encountered (lexical, syntactic), if any.
func Parse(src string) (*File, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	f := p.parseFile()
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	return f, nil
}

// MustParse parses src and panics on error. Intended for tests and for the
// embedded workload sources, which are fixed at build time.
func MustParse(src string) *File {
	f, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("MustParse: %v", err))
	}
	return f
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.advance(); return t }

func (p *Parser) advance() {
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
}

func (p *Parser) at(k Tok) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Tok) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) errorf(pos Pos, format string, args ...any) {
	p.errs = append(p.errs, Errf(pos, format, args...))
}

func (p *Parser) expect(k Tok) Token {
	t := p.cur()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t.Kind)
		// Do not advance past EOF; skip one token to make progress.
		if t.Kind != EOF {
			p.advance()
		}
		return Token{Kind: k, Pos: t.Pos}
	}
	p.advance()
	return t
}

func (p *Parser) parseFile() *File {
	f := &File{}
	for !p.at(EOF) && len(p.errs) < 10 {
		switch p.cur().Kind {
		case KwType:
			f.Types = append(f.Types, p.parseTypeDecl())
		case KwVar:
			f.Globals = append(f.Globals, p.parseVarDecl())
		case KwFunc:
			f.Funcs = append(f.Funcs, p.parseFuncDecl())
		default:
			p.errorf(p.cur().Pos, "expected declaration, found %s", p.cur().Kind)
			p.advance()
		}
	}
	return f
}

// type Name struct { field T; ... }
func (p *Parser) parseTypeDecl() *TypeDecl {
	pos := p.expect(KwType).Pos
	name := p.expect(IDENT)
	p.expect(KwStruct)
	p.expect(LBRACE)
	td := &TypeDecl{Name: name.Text, Pos: pos}
	for !p.at(RBRACE) && !p.at(EOF) {
		fname := p.expect(IDENT)
		ft := p.parseTypeExpr()
		p.expect(SEMI)
		td.Fields = append(td.Fields, FieldDecl{Name: fname.Text, T: ft, Pos: fname.Pos})
	}
	p.expect(RBRACE)
	return td
}

// var name T [= expr] ;
func (p *Parser) parseVarDecl() *VarDecl {
	pos := p.expect(KwVar).Pos
	name := p.expect(IDENT)
	t := p.parseTypeExpr()
	vd := &VarDecl{Name: name.Text, T: t, Pos: pos}
	if p.accept(ASSIGN) {
		vd.Init = p.parseExpr()
	}
	p.expect(SEMI)
	return vd
}

func (p *Parser) parseTypeExpr() TypeExpr {
	switch p.cur().Kind {
	case KwInt:
		p.advance()
		return IntTE{}
	case STAR:
		p.advance()
		return &PtrTE{Elem: p.parseTypeExpr()}
	case LBRACKET:
		p.advance()
		n := p.expect(INT)
		p.expect(RBRACKET)
		return &ArrayTE{N: n.Int, Elem: p.parseTypeExpr()}
	case IDENT:
		t := p.next()
		return &NamedTE{Name: t.Text, Pos: t.Pos}
	default:
		p.errorf(p.cur().Pos, "expected type, found %s", p.cur().Kind)
		p.advance()
		return IntTE{}
	}
}

// func name(a T, b T) [T] { ... }
func (p *Parser) parseFuncDecl() *FuncDecl {
	pos := p.expect(KwFunc).Pos
	name := p.expect(IDENT)
	p.expect(LPAREN)
	fd := &FuncDecl{Name: name.Text, Pos: pos}
	for !p.at(RPAREN) && !p.at(EOF) {
		if len(fd.Params) > 0 {
			p.expect(COMMA)
		}
		pname := p.expect(IDENT)
		pt := p.parseTypeExpr()
		fd.Params = append(fd.Params, Param{Name: pname.Text, T: pt, Pos: pname.Pos})
	}
	p.expect(RPAREN)
	if !p.at(LBRACE) {
		fd.Ret = p.parseTypeExpr()
	}
	fd.Body = p.parseBlock()
	return fd
}

func (p *Parser) parseBlock() *BlockStmt {
	pos := p.expect(LBRACE).Pos
	b := &BlockStmt{Pos: pos}
	for !p.at(RBRACE) && !p.at(EOF) {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expect(RBRACE)
	return b
}

func (p *Parser) parseStmt() Stmt {
	switch p.cur().Kind {
	case LBRACE:
		return p.parseBlock()
	case KwVar:
		return &VarStmt{Decl: p.parseVarDecl()}
	case KwIf:
		return p.parseIf()
	case KwWhile:
		pos := p.next().Pos
		cond := p.parseExpr()
		body := p.parseBlock()
		return &WhileStmt{Cond: cond, Body: body, Pos: pos}
	case KwFor:
		return p.parseFor(false)
	case KwParallel:
		pos := p.next().Pos
		if !p.at(KwFor) {
			p.errorf(pos, "expected 'for' after 'parallel'")
		}
		return p.parseFor(true)
	case KwReturn:
		pos := p.next().Pos
		var v Expr
		if !p.at(SEMI) {
			v = p.parseExpr()
		}
		p.expect(SEMI)
		return &ReturnStmt{Value: v, Pos: pos}
	case KwBreak:
		pos := p.next().Pos
		p.expect(SEMI)
		return &BreakStmt{Pos: pos}
	case KwContinue:
		pos := p.next().Pos
		p.expect(SEMI)
		return &ContinueStmt{Pos: pos}
	default:
		s := p.parseSimpleStmt()
		p.expect(SEMI)
		return s
	}
}

// parseSimpleStmt parses an assignment or expression statement without the
// trailing semicolon (shared by statement and for-clause positions).
func (p *Parser) parseSimpleStmt() Stmt {
	pos := p.cur().Pos
	e := p.parseExpr()
	if p.accept(ASSIGN) {
		rhs := p.parseExpr()
		return &AssignStmt{LHS: e, RHS: rhs, Pos: pos}
	}
	return &ExprStmt{X: e, Pos: pos}
}

func (p *Parser) parseIf() Stmt {
	pos := p.expect(KwIf).Pos
	cond := p.parseExpr()
	then := p.parseBlock()
	st := &IfStmt{Cond: cond, Then: then, Pos: pos}
	if p.accept(KwElse) {
		if p.at(KwIf) {
			st.Else = p.parseIf()
		} else {
			st.Else = p.parseBlock()
		}
	}
	return st
}

// for [init]; [cond]; [post] { body }
func (p *Parser) parseFor(parallel bool) Stmt {
	pos := p.expect(KwFor).Pos
	st := &ForStmt{Parallel: parallel, Pos: pos}
	if !p.at(SEMI) {
		if p.at(KwVar) {
			st.Init = &VarStmt{Decl: p.parseVarDecl()} // consumes its own ';'
		} else {
			st.Init = p.parseSimpleStmt()
			p.expect(SEMI)
		}
	} else {
		p.expect(SEMI)
	}
	if !p.at(SEMI) {
		st.Cond = p.parseExpr()
	}
	p.expect(SEMI)
	if !p.at(LBRACE) {
		st.Post = p.parseSimpleStmt()
	}
	st.Body = p.parseBlock()
	return st
}

// ---------------------------------------------------------------------------
// Expressions (Pratt)

// Binding powers; higher binds tighter.
const (
	precLor    = 1
	precLand   = 2
	precCmp    = 3
	precBitOr  = 4
	precBitXor = 5
	precBitAnd = 6
	precShift  = 7
	precAdd    = 8
	precMul    = 9
)

func binPrec(k Tok) (BinOp, int, bool) {
	switch k {
	case OROR:
		return BLor, precLor, true
	case ANDAND:
		return BLand, precLand, true
	case LT:
		return BLt, precCmp, true
	case LE:
		return BLe, precCmp, true
	case GT:
		return BGt, precCmp, true
	case GE:
		return BGe, precCmp, true
	case EQ:
		return BEq, precCmp, true
	case NE:
		return BNe, precCmp, true
	case OR:
		return BOr, precBitOr, true
	case XOR:
		return BXor, precBitXor, true
	case AMP:
		return BAnd, precBitAnd, true
	case SHL:
		return BShl, precShift, true
	case SHR:
		return BShr, precShift, true
	case PLUS:
		return BAdd, precAdd, true
	case MINUS:
		return BSub, precAdd, true
	case STAR:
		return BMul, precMul, true
	case SLASH:
		return BDiv, precMul, true
	case PCT:
		return BRem, precMul, true
	}
	return 0, 0, false
}

func (p *Parser) parseExpr() Expr { return p.parseBin(0) }

func (p *Parser) parseBin(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		op, prec, ok := binPrec(p.cur().Kind)
		if !ok || prec < minPrec {
			return lhs
		}
		pos := p.next().Pos
		rhs := p.parseBin(prec + 1)
		lhs = &Binary{exprBase: exprBase{Pos: pos}, Op: op, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() Expr {
	t := p.cur()
	switch t.Kind {
	case MINUS:
		p.advance()
		return &Unary{exprBase: exprBase{Pos: t.Pos}, Op: UNeg, X: p.parseUnary()}
	case BANG:
		p.advance()
		return &Unary{exprBase: exprBase{Pos: t.Pos}, Op: UNot, X: p.parseUnary()}
	case STAR:
		p.advance()
		return &Unary{exprBase: exprBase{Pos: t.Pos}, Op: UDeref, X: p.parseUnary()}
	case AMP:
		p.advance()
		return &Unary{exprBase: exprBase{Pos: t.Pos}, Op: UAddr, X: p.parseUnary()}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	e := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case DOT:
			p.advance()
			name := p.expect(IDENT)
			e = &FieldExpr{exprBase: exprBase{Pos: name.Pos}, X: e, Name: name.Text}
		case ARROW:
			p.advance()
			name := p.expect(IDENT)
			// p->f is sugar for (*p).f; the checker auto-derefs pointers
			// for DOT as well, so both forms resolve identically.
			e = &FieldExpr{exprBase: exprBase{Pos: name.Pos}, X: e, Name: name.Text}
		case LBRACKET:
			pos := p.next().Pos
			idx := p.parseExpr()
			p.expect(RBRACKET)
			e = &IndexExpr{exprBase: exprBase{Pos: pos}, X: e, I: idx}
		default:
			return e
		}
	}
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case INT:
		p.advance()
		return &IntLit{exprBase: exprBase{Pos: t.Pos}, Value: t.Int}
	case KwNil:
		p.advance()
		return &NilLit{exprBase: exprBase{Pos: t.Pos}}
	case LPAREN:
		p.advance()
		e := p.parseExpr()
		p.expect(RPAREN)
		return e
	case KwNew:
		p.advance()
		p.expect(LPAREN)
		te := p.parseTypeExpr()
		p.expect(RPAREN)
		return &New{exprBase: exprBase{Pos: t.Pos}, T: te}
	case IDENT:
		p.advance()
		if p.at(LPAREN) {
			p.advance()
			c := &Call{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}
			for !p.at(RPAREN) && !p.at(EOF) {
				if len(c.Args) > 0 {
					p.expect(COMMA)
				}
				c.Args = append(c.Args, p.parseExpr())
			}
			p.expect(RPAREN)
			return c
		}
		return &Ident{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}
	default:
		p.errorf(t.Pos, "expected expression, found %s", t.Kind)
		p.advance()
		return &IntLit{exprBase: exprBase{Pos: t.Pos}}
	}
}
