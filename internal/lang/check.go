package lang

import "fmt"

// Checked is the result of type-checking a File: resolved struct types,
// function signatures, and fully annotated expression types.
type Checked struct {
	File    *File
	Structs map[string]*StructType
	Funcs   map[string]*FuncDecl
	Globals map[string]*VarDecl

	// AddrTaken records locals and params whose address is taken anywhere;
	// lowering places these in memory (frame slots) instead of registers.
	// Keys are *VarDecl or *Param pointers.
	AddrTaken map[any]bool
}

type checker struct {
	c      *Checked
	errs   []error
	scopes []map[string]any // *VarDecl or *Param
	fn     *FuncDecl
}

// Check resolves and type-checks a parsed file.
func Check(f *File) (*Checked, error) {
	ck := &checker{c: &Checked{
		File:      f,
		Structs:   make(map[string]*StructType),
		Funcs:     make(map[string]*FuncDecl),
		Globals:   make(map[string]*VarDecl),
		AddrTaken: make(map[any]bool),
	}}
	ck.collect()
	ck.checkAll()
	if len(ck.errs) > 0 {
		return nil, ck.errs[0]
	}
	return ck.c, nil
}

// MustCheck parses and checks src, panicking on error. For tests and
// embedded workloads.
func MustCheck(src string) *Checked {
	f := MustParse(src)
	c, err := Check(f)
	if err != nil {
		panic(fmt.Sprintf("MustCheck: %v", err))
	}
	return c
}

func (ck *checker) errorf(pos Pos, format string, args ...any) {
	ck.errs = append(ck.errs, Errf(pos, format, args...))
}

// collect registers type, global and function names, then resolves struct
// layouts (struct fields may reference other structs by name, including
// self-referentially through pointers).
func (ck *checker) collect() {
	for _, td := range ck.c.File.Types {
		if _, dup := ck.c.Structs[td.Name]; dup {
			ck.errorf(td.Pos, "duplicate type %s", td.Name)
			continue
		}
		ck.c.Structs[td.Name] = &StructType{Name: td.Name}
	}
	// Resolve field types and compute layouts. Because structs may only
	// embed other structs by value non-cyclically, iterate until sizes
	// stabilize; direct cycles are rejected.
	for _, td := range ck.c.File.Types {
		st := ck.c.Structs[td.Name]
		var off int64
		for _, fd := range td.Fields {
			ft := ck.resolveType(fd.T, fd.Pos)
			if inner, ok := ft.(*StructType); ok && inner.Name == td.Name {
				ck.errorf(fd.Pos, "struct %s embeds itself", td.Name)
				continue
			}
			st.Fields = append(st.Fields, Field{Name: fd.Name, Type: ft, Offset: off})
			off += ft.Size()
		}
		st.size = off
		if st.size == 0 {
			st.size = WordSize // empty structs still occupy one word
		}
	}
	// Recompute offsets once more now that all struct sizes are known
	// (a field of struct type declared before its own decl was sized 0).
	for _, td := range ck.c.File.Types {
		st := ck.c.Structs[td.Name]
		var off int64
		for i := range st.Fields {
			st.Fields[i].Offset = off
			off += st.Fields[i].Type.Size()
		}
		st.size = off
		if st.size == 0 {
			st.size = WordSize
		}
	}
	for _, g := range ck.c.File.Globals {
		if _, dup := ck.c.Globals[g.Name]; dup {
			ck.errorf(g.Pos, "duplicate global %s", g.Name)
			continue
		}
		g.Type = ck.resolveType(g.T, g.Pos)
		ck.c.Globals[g.Name] = g
	}
	for _, fn := range ck.c.File.Funcs {
		if _, dup := ck.c.Funcs[fn.Name]; dup {
			ck.errorf(fn.Pos, "duplicate function %s", fn.Name)
			continue
		}
		if isBuiltin(fn.Name) {
			ck.errorf(fn.Pos, "cannot redefine builtin %s", fn.Name)
		}
		for i := range fn.Params {
			fn.Params[i].Type = ck.resolveType(fn.Params[i].T, fn.Params[i].Pos)
			if !isScalar(fn.Params[i].Type) {
				ck.errorf(fn.Params[i].Pos, "parameter %s must be int or pointer, got %s (pass aggregates by pointer)",
					fn.Params[i].Name, fn.Params[i].Type)
			}
		}
		if fn.Ret != nil {
			fn.RetType = ck.resolveType(fn.Ret, fn.Pos)
			if !isScalar(fn.RetType) {
				ck.errorf(fn.Pos, "function %s must return int or pointer, got %s", fn.Name, fn.RetType)
			}
		}
		ck.c.Funcs[fn.Name] = fn
	}
}

// isScalar reports whether t fits in one word (int or pointer).
func isScalar(t Type) bool {
	switch t.(type) {
	case IntType, *PtrType:
		return true
	}
	return false
}

func isBuiltin(name string) bool {
	switch name {
	case "rnd", "input", "print":
		return true
	}
	return false
}

func (ck *checker) resolveType(te TypeExpr, pos Pos) Type {
	switch t := te.(type) {
	case IntTE:
		return Int
	case *PtrTE:
		return &PtrType{Elem: ck.resolveType(t.Elem, pos)}
	case *ArrayTE:
		if t.N <= 0 {
			ck.errorf(pos, "array size must be positive, got %d", t.N)
		}
		return &ArrayType{N: t.N, Elem: ck.resolveType(t.Elem, pos)}
	case *NamedTE:
		if st, ok := ck.c.Structs[t.Name]; ok {
			return st
		}
		ck.errorf(t.Pos, "undefined type %s", t.Name)
		return Int
	}
	ck.errorf(pos, "bad type expression")
	return Int
}

func (ck *checker) checkAll() {
	for _, g := range ck.c.File.Globals {
		if g.Init != nil {
			t := ck.checkExpr(g.Init)
			if !assignable(g.Type, t, g.Init) {
				ck.errorf(g.Pos, "cannot initialize %s (%s) with %s", g.Name, g.Type, t)
			}
			if _, ok := g.Init.(*IntLit); !ok {
				if _, ok := g.Init.(*NilLit); !ok {
					ck.errorf(g.Pos, "global initializer must be a literal")
				}
			}
		}
	}
	for _, fn := range ck.c.File.Funcs {
		ck.checkFunc(fn)
	}
	if _, ok := ck.c.Funcs["main"]; !ok {
		ck.errs = append(ck.errs, fmt.Errorf("program has no main function"))
	}
}

func (ck *checker) push() { ck.scopes = append(ck.scopes, make(map[string]any)) }
func (ck *checker) pop()  { ck.scopes = ck.scopes[:len(ck.scopes)-1] }

func (ck *checker) declare(name string, d any, pos Pos) {
	top := ck.scopes[len(ck.scopes)-1]
	if _, dup := top[name]; dup {
		ck.errorf(pos, "redeclared in this block: %s", name)
	}
	top[name] = d
}

func (ck *checker) lookup(name string) any {
	for i := len(ck.scopes) - 1; i >= 0; i-- {
		if d, ok := ck.scopes[i][name]; ok {
			return d
		}
	}
	return nil
}

func (ck *checker) checkFunc(fn *FuncDecl) {
	ck.fn = fn
	ck.push()
	for i := range fn.Params {
		ck.declare(fn.Params[i].Name, &fn.Params[i], fn.Params[i].Pos)
	}
	ck.checkBlock(fn.Body)
	ck.pop()
	ck.fn = nil
}

func (ck *checker) checkBlock(b *BlockStmt) {
	ck.push()
	for _, s := range b.Stmts {
		ck.checkStmt(s)
	}
	ck.pop()
}

func (ck *checker) checkStmt(s Stmt) {
	switch st := s.(type) {
	case *BlockStmt:
		ck.checkBlock(st)
	case *VarStmt:
		d := st.Decl
		d.Type = ck.resolveType(d.T, d.Pos)
		if d.Init != nil {
			t := ck.checkExpr(d.Init)
			if !assignable(d.Type, t, d.Init) {
				ck.errorf(d.Pos, "cannot initialize %s (%s) with %s", d.Name, d.Type, t)
			}
		}
		ck.declare(d.Name, d, d.Pos)
	case *AssignStmt:
		lt := ck.checkExpr(st.LHS)
		if !isLvalue(st.LHS) {
			ck.errorf(st.Pos, "left side of = is not assignable")
		}
		rt := ck.checkExpr(st.RHS)
		if lt != nil && rt != nil && !assignable(lt, rt, st.RHS) {
			ck.errorf(st.Pos, "cannot assign %s to %s", rt, lt)
		}
		if _, isArr := lt.(*ArrayType); isArr {
			ck.errorf(st.Pos, "cannot assign whole arrays")
		}
		if _, isStruct := lt.(*StructType); isStruct {
			ck.errorf(st.Pos, "cannot assign whole structs; assign fields")
		}
	case *IfStmt:
		ck.wantInt(st.Cond)
		ck.checkBlock(st.Then)
		if st.Else != nil {
			ck.checkStmt(st.Else)
		}
	case *WhileStmt:
		ck.wantInt(st.Cond)
		ck.checkBlock(st.Body)
	case *ForStmt:
		ck.push()
		if st.Init != nil {
			ck.checkStmt(st.Init)
		}
		if st.Cond != nil {
			ck.wantInt(st.Cond)
		}
		if st.Post != nil {
			ck.checkStmt(st.Post)
		}
		ck.checkBlock(st.Body)
		ck.pop()
	case *ReturnStmt:
		if st.Value != nil {
			t := ck.checkExpr(st.Value)
			if ck.fn.RetType == nil {
				ck.errorf(st.Pos, "function %s has no return type", ck.fn.Name)
			} else if !assignable(ck.fn.RetType, t, st.Value) {
				ck.errorf(st.Pos, "cannot return %s from function returning %s", t, ck.fn.RetType)
			}
		} else if ck.fn.RetType != nil {
			ck.errorf(st.Pos, "missing return value in %s", ck.fn.Name)
		}
	case *BreakStmt, *ContinueStmt:
		// Loop nesting is validated structurally during lowering.
	case *ExprStmt:
		ck.checkExpr(st.X)
	}
}

func (ck *checker) wantInt(e Expr) {
	t := ck.checkExpr(e)
	if t == nil {
		return
	}
	if _, ok := t.(IntType); ok {
		return
	}
	if _, ok := t.(*PtrType); ok {
		return // pointers are truthy (non-nil test), as in C
	}
	ck.errorf(e.Position(), "condition must be int or pointer, got %s", t)
}

// assignable reports whether a value of type 'from' may be assigned to a
// location of type 'to'. nil literals are assignable to any pointer.
func assignable(to, from Type, fromExpr Expr) bool {
	if to == nil || from == nil {
		return true // earlier error; avoid cascades
	}
	if _, isNil := fromExpr.(*NilLit); isNil {
		_, toPtr := to.(*PtrType)
		return toPtr
	}
	return SameType(to, from)
}

func isLvalue(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return true
	case *Unary:
		return x.Op == UDeref
	case *FieldExpr:
		return true
	case *IndexExpr:
		return true
	}
	return false
}

func (ck *checker) checkExpr(e Expr) Type {
	switch x := e.(type) {
	case *IntLit:
		x.Typ = Int
	case *NilLit:
		x.Typ = &PtrType{Elem: Int} // refined by assignability checks
	case *Ident:
		if g, ok := ck.c.Globals[x.Name]; ok && ck.lookup(x.Name) == nil {
			x.Global = true
			x.Decl = g
			x.Typ = g.Type
			break
		}
		d := ck.lookup(x.Name)
		switch dd := d.(type) {
		case *VarDecl:
			x.Decl = dd
			x.Typ = dd.Type
		case *Param:
			x.Decl = dd
			x.Typ = dd.Type
		default:
			ck.errorf(x.Pos, "undefined: %s", x.Name)
			x.Typ = Int
		}
	case *Unary:
		t := ck.checkExpr(x.X)
		switch x.Op {
		case UNeg, UNot:
			if _, ok := t.(IntType); !ok {
				ck.errorf(x.Pos, "operand of %v must be int, got %s",
					map[UnOp]string{UNeg: "-", UNot: "!"}[x.Op], t)
			}
			x.Typ = Int
		case UDeref:
			if pt, ok := t.(*PtrType); ok {
				x.Typ = pt.Elem
			} else {
				ck.errorf(x.Pos, "cannot dereference %s", t)
				x.Typ = Int
			}
		case UAddr:
			if !isLvalue(x.X) {
				ck.errorf(x.Pos, "cannot take address of expression")
			}
			ck.markAddrTaken(x.X)
			x.Typ = &PtrType{Elem: t}
		}
	case *Binary:
		xt := ck.checkExpr(x.X)
		yt := ck.checkExpr(x.Y)
		switch x.Op {
		case BEq, BNe, BLt, BLe, BGt, BGe:
			// ints with ints, pointers with pointers (or nil).
			if !comparable2(xt, yt, x.X, x.Y) {
				ck.errorf(x.Pos, "invalid comparison: %s %s %s", xt, x.Op, yt)
			}
			x.Typ = Int
		case BLand, BLor:
			x.Typ = Int
		default:
			_, xi := xt.(IntType)
			_, yi := yt.(IntType)
			if !xi || !yi {
				ck.errorf(x.Pos, "arithmetic requires ints: %s %s %s (use indexing for pointer math)", xt, x.Op, yt)
			}
			x.Typ = Int
		}
	case *Call:
		switch x.Name {
		case "rnd":
			x.Builtin = "rnd"
			ck.checkArgs(x, 1)
			x.Typ = Int
		case "input":
			x.Builtin = "input"
			ck.checkArgs(x, 1)
			x.Typ = Int
		case "print":
			x.Builtin = "print"
			ck.checkArgs(x, 1)
			x.Typ = nil // void
		default:
			fn, ok := ck.c.Funcs[x.Name]
			if !ok {
				ck.errorf(x.Pos, "undefined function %s", x.Name)
				x.Typ = Int
				break
			}
			x.Decl = fn
			if len(x.Args) != len(fn.Params) {
				ck.errorf(x.Pos, "%s expects %d args, got %d", x.Name, len(fn.Params), len(x.Args))
			}
			for i, a := range x.Args {
				at := ck.checkExpr(a)
				if i < len(fn.Params) && !assignable(fn.Params[i].Type, at, a) {
					ck.errorf(a.Position(), "arg %d of %s: cannot use %s as %s",
						i+1, x.Name, at, fn.Params[i].Type)
				}
			}
			x.Typ = fn.RetType
		}
	case *New:
		t := ck.resolveType(x.T, x.Pos)
		x.Typ = &PtrType{Elem: t}
	case *FieldExpr:
		t := ck.checkExpr(x.X)
		if pt, ok := t.(*PtrType); ok {
			t = pt.Elem // auto-deref, both for '.' and '->'
		}
		st, ok := t.(*StructType)
		if !ok {
			ck.errorf(x.Pos, "field access on non-struct %s", t)
			x.Typ = Int
			break
		}
		f := st.FieldByName(x.Name)
		if f == nil {
			ck.errorf(x.Pos, "%s has no field %s", st.Name, x.Name)
			x.Typ = Int
			break
		}
		x.Field = f
		x.Typ = f.Type
	case *IndexExpr:
		t := ck.checkExpr(x.X)
		ck.wantIntIdx(x.I)
		switch tt := t.(type) {
		case *ArrayType:
			x.Typ = tt.Elem
		case *PtrType:
			x.Typ = tt.Elem // p[i] == *(p + i*sizeof(elem))
		default:
			ck.errorf(x.Pos, "cannot index %s", t)
			x.Typ = Int
		}
	}
	return e.Type()
}

func (ck *checker) wantIntIdx(e Expr) {
	t := ck.checkExpr(e)
	if t == nil {
		ck.errorf(e.Position(), "index must be int")
		return
	}
	if _, ok := t.(IntType); !ok {
		ck.errorf(e.Position(), "index must be int, got %s", t)
	}
}

func (ck *checker) checkArgs(c *Call, n int) {
	if len(c.Args) != n {
		ck.errorf(c.Pos, "%s expects %d arg(s), got %d", c.Name, n, len(c.Args))
	}
	for _, a := range c.Args {
		ck.checkExpr(a)
	}
}

func comparable2(xt, yt Type, xe, ye Expr) bool {
	_, xNil := xe.(*NilLit)
	_, yNil := ye.(*NilLit)
	_, xi := xt.(IntType)
	_, yi := yt.(IntType)
	if xi && yi {
		return true
	}
	_, xp := xt.(*PtrType)
	_, yp := yt.(*PtrType)
	if (xp || xNil) && (yp || yNil) {
		return true
	}
	return false
}

// markAddrTaken records that the base variable of an lvalue has its address
// exposed, forcing it into memory during lowering.
func (ck *checker) markAddrTaken(e Expr) {
	for {
		switch x := e.(type) {
		case *Ident:
			if !x.Global && x.Decl != nil {
				ck.c.AddrTaken[x.Decl] = true
			}
			return
		case *FieldExpr:
			// &s.f where s is a local struct: the local needs memory.
			// &p->f does not expose the pointer variable itself.
			if pt := x.X.Type(); pt != nil {
				if _, isPtr := pt.(*PtrType); isPtr {
					return
				}
			}
			e = x.X
		case *IndexExpr:
			if pt := x.X.Type(); pt != nil {
				if _, isPtr := pt.(*PtrType); isPtr {
					return
				}
			}
			e = x.X
		default:
			return
		}
	}
}
