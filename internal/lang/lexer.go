package lang

// Lexer turns MiniC source text into a stream of tokens. It supports
// line comments (// ...) and block comments (/* ... */).
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	err  error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Err returns the first lexical error encountered, if any.
func (lx *Lexer) Err() error { return lx.err }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			pos := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed && lx.err == nil {
				lx.err = Errf(pos, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// Next lexes and returns the next token. After an error or end of input it
// returns EOF tokens forever; check Err for the error.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) || lx.err != nil {
		return Token{Kind: EOF, Pos: pos}
	}
	c := lx.peek()
	switch {
	case isDigit(c):
		var v int64
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			v = v*10 + int64(lx.advance()-'0')
		}
		return Token{Kind: INT, Pos: pos, Int: v}
	case isAlpha(c):
		start := lx.off
		for lx.off < len(lx.src) && (isAlpha(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Pos: pos, Text: text}
		}
		return Token{Kind: IDENT, Pos: pos, Text: text}
	}
	lx.advance()
	two := func(next byte, yes, no Tok) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: yes, Pos: pos}
		}
		return Token{Kind: no, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: LPAREN, Pos: pos}
	case ')':
		return Token{Kind: RPAREN, Pos: pos}
	case '{':
		return Token{Kind: LBRACE, Pos: pos}
	case '}':
		return Token{Kind: RBRACE, Pos: pos}
	case '[':
		return Token{Kind: LBRACKET, Pos: pos}
	case ']':
		return Token{Kind: RBRACKET, Pos: pos}
	case ',':
		return Token{Kind: COMMA, Pos: pos}
	case ';':
		return Token{Kind: SEMI, Pos: pos}
	case '.':
		return Token{Kind: DOT, Pos: pos}
	case '+':
		return Token{Kind: PLUS, Pos: pos}
	case '*':
		return Token{Kind: STAR, Pos: pos}
	case '/':
		return Token{Kind: SLASH, Pos: pos}
	case '%':
		return Token{Kind: PCT, Pos: pos}
	case '^':
		return Token{Kind: XOR, Pos: pos}
	case '-':
		return two('>', ARROW, MINUS)
	case '=':
		return two('=', EQ, ASSIGN)
	case '!':
		return two('=', NE, BANG)
	case '<':
		if lx.peek() == '<' {
			lx.advance()
			return Token{Kind: SHL, Pos: pos}
		}
		return two('=', LE, LT)
	case '>':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: SHR, Pos: pos}
		}
		return two('=', GE, GT)
	case '&':
		return two('&', ANDAND, AMP)
	case '|':
		return two('|', OROR, OR)
	}
	if lx.err == nil {
		lx.err = Errf(pos, "unexpected character %q", string(c))
	}
	return Token{Kind: EOF, Pos: pos}
}

// LexAll lexes the entire input, returning all tokens up to and including
// the terminating EOF token.
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			break
		}
	}
	return toks, lx.Err()
}
