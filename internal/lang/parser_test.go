package lang

import (
	"strings"
	"testing"
)

const freelistSrc = `
type Elem struct {
	next *Elem;
	val  int;
}

var free_list *Elem;

func free_element(e *Elem) {
	e->next = free_list;
	free_list = e;
}

func use_element() *Elem {
	var e *Elem = free_list;
	free_list = e->next;
	return e;
}

func work() {
	if rnd(2) == 0 {
		use_element();
	}
}

func main() {
	var i int;
	parallel for i = 0; i < 100; i = i + 1 {
		free_element(new(Elem));
		work();
	}
}
`

func TestParseFreelist(t *testing.T) {
	f, err := Parse(freelistSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Types) != 1 || f.Types[0].Name != "Elem" {
		t.Fatalf("types: %+v", f.Types)
	}
	if len(f.Types[0].Fields) != 2 {
		t.Fatalf("Elem fields: %d, want 2", len(f.Types[0].Fields))
	}
	if len(f.Globals) != 1 || f.Globals[0].Name != "free_list" {
		t.Fatalf("globals: %+v", f.Globals)
	}
	if len(f.Funcs) != 4 {
		t.Fatalf("funcs: %d, want 4", len(f.Funcs))
	}
	// main's loop must be parallel.
	main := f.Funcs[3]
	if main.Name != "main" {
		t.Fatalf("last func is %s, want main", main.Name)
	}
	var forStmt *ForStmt
	for _, s := range main.Body.Stmts {
		if fs, ok := s.(*ForStmt); ok {
			forStmt = fs
		}
	}
	if forStmt == nil || !forStmt.Parallel {
		t.Fatal("main should contain a parallel for")
	}
}

func TestParsePrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"1 + 2 * 3", "(1 + (2 * 3))"},
		{"1 * 2 + 3", "((1 * 2) + 3)"},
		{"1 < 2 && 3 < 4", "((1 < 2) && (3 < 4))"},
		{"a || b && c", "(a || (b && c))"},
		{"1 + 2 < 3 + 4", "((1 + 2) < (3 + 4))"},
		{"1 << 2 + 0", "(1 << (2 + 0))"}, // as in C, + binds tighter than <<
		{"-a + b", "(-a + b)"},
		{"a & b | c", "((a & b) | c)"},
		{"a ^ b & c", "(a ^ (b & c))"},
		{"(1 + 2) * 3", "((1 + 2) * 3)"},
	}
	for _, c := range cases {
		f, err := Parse("func main() { x = " + c.src + "; }")
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		as := f.Funcs[0].Body.Stmts[0].(*AssignStmt)
		got := ExprString(as.RHS)
		if got != c.want {
			t.Errorf("%q: got %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParsePostfix(t *testing.T) {
	f, err := Parse("func main() { x = a->b.c[3]; }")
	if err != nil {
		t.Fatal(err)
	}
	as := f.Funcs[0].Body.Stmts[0].(*AssignStmt)
	if got := ExprString(as.RHS); got != "a.b.c[3]" {
		t.Errorf("got %s", got)
	}
}

func TestParseUnary(t *testing.T) {
	f, err := Parse("func main() { x = *p + &q - !r; }")
	if err != nil {
		t.Fatal(err)
	}
	as := f.Funcs[0].Body.Stmts[0].(*AssignStmt)
	if got := ExprString(as.RHS); got != "((*p + &q) - !r)" {
		t.Errorf("got %s", got)
	}
}

func TestParseForVariants(t *testing.T) {
	srcs := []string{
		"func main() { for ;; { break; } }",
		"func main() { var i int; for i = 0; i < 3; i = i + 1 { continue; } }",
		"func main() { for var i int = 0; i < 3; i = i + 1 { } }",
		"func main() { while 1 { break; } }",
	}
	for _, src := range srcs {
		if _, err := Parse(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestParseIfElseChain(t *testing.T) {
	src := `func main() { if a { } else if b { } else { } }`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := f.Funcs[0].Body.Stmts[0].(*IfStmt)
	elif, ok := ifs.Else.(*IfStmt)
	if !ok {
		t.Fatalf("else branch is %T, want *IfStmt", ifs.Else)
	}
	if _, ok := elif.Else.(*BlockStmt); !ok {
		t.Fatalf("final else is %T, want *BlockStmt", elif.Else)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"func main( {}",
		"func main() { x = ; }",
		"func main() { if { } }",
		"type T struct { x; }",
		"var x;",
		"func main() { return 1 }", // missing semicolon
		"garbage",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestParseTypeExprs(t *testing.T) {
	src := `
type T struct { a int; }
var a int;
var b *int;
var c [10]int;
var d *T;
var e [4]*T;
var f **int;
func main() { }
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{"int", "*int", "[10]int", "*T", "[4]*T", "**int"}
	for i, g := range f.Globals {
		if got := g.T.teString(); got != wants[i] {
			t.Errorf("global %s: got %s, want %s", g.Name, got, wants[i])
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := Parse("func main() {\n  x = ;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error should mention line 2: %v", err)
	}
}
