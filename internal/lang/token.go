// Package lang implements the MiniC frontend: a small C-like language used
// as the source language for the TLS compiler. MiniC has 64-bit integers,
// pointers, fixed-size arrays, named struct types, functions, and a
// `parallel for` loop marking candidate speculative regions.
//
// MiniC stands in for the C subset the original paper compiled with SUIF:
// it is rich enough to express pointer aliasing, linked data structures,
// and procedure call trees (everything the memory-synchronization pass
// cares about) while remaining small enough to interpret deterministically.
package lang

import "fmt"

// Tok identifies a lexical token kind.
type Tok int

// Token kinds.
const (
	EOF Tok = iota
	IDENT
	INT // integer literal

	// Punctuation.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	SEMI     // ;
	DOT      // .
	ARROW    // ->

	// Operators.
	ASSIGN // =
	PLUS   // +
	MINUS  // -
	STAR   // *
	SLASH  // /
	PCT    // %
	AMP    // &
	BANG   // !
	LT     // <
	GT     // >
	LE     // <=
	GE     // >=
	EQ     // ==
	NE     // !=
	ANDAND // &&
	OROR   // ||
	SHL    // <<
	SHR    // >>
	XOR    // ^
	OR     // |

	// Keywords.
	KwFunc
	KwVar
	KwType
	KwStruct
	KwInt
	KwIf
	KwElse
	KwWhile
	KwFor
	KwParallel
	KwReturn
	KwBreak
	KwContinue
	KwNew
	KwNil
)

var tokNames = map[Tok]string{
	EOF: "EOF", IDENT: "identifier", INT: "integer",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", COMMA: ",", SEMI: ";", DOT: ".", ARROW: "->",
	ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PCT: "%",
	AMP: "&", BANG: "!", LT: "<", GT: ">", LE: "<=", GE: ">=",
	EQ: "==", NE: "!=", ANDAND: "&&", OROR: "||", SHL: "<<", SHR: ">>",
	XOR: "^", OR: "|",
	KwFunc: "func", KwVar: "var", KwType: "type", KwStruct: "struct",
	KwInt: "int", KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for",
	KwParallel: "parallel", KwReturn: "return", KwBreak: "break",
	KwContinue: "continue", KwNew: "new", KwNil: "nil",
}

// String returns a human-readable name for the token kind.
func (t Tok) String() string {
	if s, ok := tokNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Tok(%d)", int(t))
}

var keywords = map[string]Tok{
	"func": KwFunc, "var": KwVar, "type": KwType, "struct": KwStruct,
	"int": KwInt, "if": KwIf, "else": KwElse, "while": KwWhile,
	"for": KwFor, "parallel": KwParallel, "return": KwReturn,
	"break": KwBreak, "continue": KwContinue, "new": KwNew, "nil": KwNil,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexed token with its position and, where relevant, its text
// or integer value.
type Token struct {
	Kind Tok
	Pos  Pos
	Text string // for IDENT
	Int  int64  // for INT
}

// Error is a frontend diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Errf constructs a positioned frontend error.
func Errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
