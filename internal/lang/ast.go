package lang

import (
	"fmt"
	"strings"
)

// WordSize is the size in bytes of every scalar slot (ints and pointers).
// All struct fields are word-aligned, so field offsets are multiples of 8;
// with a 32-byte cache line this yields 4 words per line, which the TLS
// simulator exploits to model false sharing.
const WordSize = 8

// ---------------------------------------------------------------------------
// Types

// Type is a resolved MiniC type.
type Type interface {
	String() string
	// Size returns the size of a value of this type in bytes.
	Size() int64
}

// IntType is the 64-bit integer type.
type IntType struct{}

func (IntType) String() string { return "int" }

// Size returns the byte size of an int.
func (IntType) Size() int64 { return WordSize }

// PtrType is a pointer to Elem.
type PtrType struct{ Elem Type }

func (p *PtrType) String() string { return "*" + p.Elem.String() }

// Size returns the byte size of a pointer.
func (p *PtrType) Size() int64 { return WordSize }

// ArrayType is a fixed-size array of N elements of Elem.
type ArrayType struct {
	N    int64
	Elem Type
}

func (a *ArrayType) String() string { return fmt.Sprintf("[%d]%s", a.N, a.Elem) }

// Size returns the byte size of the whole array.
func (a *ArrayType) Size() int64 { return a.N * a.Elem.Size() }

// Field is a resolved struct field with its byte offset.
type Field struct {
	Name   string
	Type   Type
	Offset int64
}

// StructType is a named struct type.
type StructType struct {
	Name   string
	Fields []Field
	size   int64
}

func (s *StructType) String() string { return s.Name }

// Size returns the byte size of the struct.
func (s *StructType) Size() int64 { return s.size }

// FieldByName returns the field with the given name, or nil.
func (s *StructType) FieldByName(name string) *Field {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// Int is the canonical int type instance.
var Int = IntType{}

// SameType reports structural type equality (struct types compare by name).
func SameType(a, b Type) bool {
	switch at := a.(type) {
	case IntType:
		_, ok := b.(IntType)
		return ok
	case *PtrType:
		bt, ok := b.(*PtrType)
		return ok && SameType(at.Elem, bt.Elem)
	case *ArrayType:
		bt, ok := b.(*ArrayType)
		return ok && at.N == bt.N && SameType(at.Elem, bt.Elem)
	case *StructType:
		bt, ok := b.(*StructType)
		return ok && at.Name == bt.Name
	}
	return false
}

// ---------------------------------------------------------------------------
// Type expressions (pre-resolution syntax)

// TypeExpr is an unresolved type as written in the source.
type TypeExpr interface {
	teString() string
}

// IntTE denotes the `int` type expression.
type IntTE struct{}

func (IntTE) teString() string { return "int" }

// PtrTE denotes a pointer type expression.
type PtrTE struct{ Elem TypeExpr }

func (p *PtrTE) teString() string { return "*" + p.Elem.teString() }

// ArrayTE denotes a fixed-size array type expression.
type ArrayTE struct {
	N    int64
	Elem TypeExpr
}

func (a *ArrayTE) teString() string { return fmt.Sprintf("[%d]%s", a.N, a.Elem.teString()) }

// NamedTE denotes a reference to a named (struct) type.
type NamedTE struct {
	Name string
	Pos  Pos
}

func (n *NamedTE) teString() string { return n.Name }

// ---------------------------------------------------------------------------
// Declarations

// File is a parsed MiniC source file.
type File struct {
	Types   []*TypeDecl
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// TypeDecl declares a named struct type.
type TypeDecl struct {
	Name   string
	Fields []FieldDecl
	Pos    Pos
}

// FieldDecl is one field in a struct declaration.
type FieldDecl struct {
	Name string
	T    TypeExpr
	Pos  Pos
}

// VarDecl declares a global or local variable, optionally initialized.
type VarDecl struct {
	Name string
	T    TypeExpr
	Init Expr // may be nil
	Pos  Pos

	Type Type // resolved by the checker
}

// Param is a function parameter.
type Param struct {
	Name string
	T    TypeExpr
	Pos  Pos

	Type Type // resolved by the checker
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    TypeExpr // nil for void
	Body   *BlockStmt
	Pos    Pos

	RetType Type // resolved; nil for void
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is a MiniC statement.
type Stmt interface{ stmt() }

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// VarStmt is a local variable declaration statement.
type VarStmt struct{ Decl *VarDecl }

// AssignStmt assigns RHS to the lvalue LHS.
type AssignStmt struct {
	LHS Expr
	RHS Expr
	Pos Pos
}

// IfStmt is an if/else statement (Else may be nil, a BlockStmt, or an IfStmt).
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt
	Pos  Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Pos  Pos
}

// ForStmt is a C-style for loop. Parallel marks `parallel for`, a candidate
// speculative region whose iterations become TLS epochs.
type ForStmt struct {
	Init     Stmt // may be nil (AssignStmt or VarStmt)
	Cond     Expr // may be nil
	Post     Stmt // may be nil
	Body     *BlockStmt
	Parallel bool
	Pos      Pos
}

// ReturnStmt returns from the current function.
type ReturnStmt struct {
	Value Expr // may be nil
	Pos   Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the next iteration of the innermost loop.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (*BlockStmt) stmt()    {}
func (*VarStmt) stmt()      {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ExprStmt) stmt()     {}

// ---------------------------------------------------------------------------
// Expressions

// Expr is a MiniC expression. After checking, Type() reports its type.
type Expr interface {
	expr()
	Position() Pos
	Type() Type
}

type exprBase struct {
	Pos Pos
	Typ Type
}

func (e *exprBase) expr()         {}
func (e *exprBase) Position() Pos { return e.Pos }

// Type returns the checked type of the expression (nil before checking).
func (e *exprBase) Type() Type { return e.Typ }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// NilLit is the nil pointer literal.
type NilLit struct{ exprBase }

// Ident references a variable (local, parameter, or global).
type Ident struct {
	exprBase
	Name string

	// Resolution results, filled in by the checker:
	Global bool // references a global variable
	Decl   any  // *VarDecl (local or global) or *Param
}

// UnOp enumerates unary operators.
type UnOp int

// Unary operators.
const (
	UNeg   UnOp = iota // -x
	UNot               // !x
	UDeref             // *p
	UAddr              // &lvalue
)

// Unary is a unary operation.
type Unary struct {
	exprBase
	Op UnOp
	X  Expr
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	BAdd BinOp = iota
	BSub
	BMul
	BDiv
	BRem
	BShl
	BShr
	BAnd // bitwise &
	BOr  // bitwise |
	BXor
	BLt
	BLe
	BGt
	BGe
	BEq
	BNe
	BLand // &&
	BLor  // ||
)

var binNames = map[BinOp]string{
	BAdd: "+", BSub: "-", BMul: "*", BDiv: "/", BRem: "%",
	BShl: "<<", BShr: ">>", BAnd: "&", BOr: "|", BXor: "^",
	BLt: "<", BLe: "<=", BGt: ">", BGe: ">=", BEq: "==", BNe: "!=",
	BLand: "&&", BLor: "||",
}

// String returns the operator's source spelling.
func (b BinOp) String() string { return binNames[b] }

// Binary is a binary operation.
type Binary struct {
	exprBase
	Op   BinOp
	X, Y Expr
}

// Call invokes a named function or builtin (rnd, input, print).
type Call struct {
	exprBase
	Name string
	Args []Expr

	Builtin string    // "", "rnd", "input", "print"
	Decl    *FuncDecl // resolved callee for non-builtins
}

// New allocates a zeroed value of type T from the arena and yields *T.
type New struct {
	exprBase
	T TypeExpr
}

// FieldExpr selects a struct field; `p->f` and `p.f` on pointers auto-deref.
type FieldExpr struct {
	exprBase
	X    Expr
	Name string

	Field *Field // resolved by the checker
}

// IndexExpr indexes an array or a pointer (scaled by element size).
type IndexExpr struct {
	exprBase
	X Expr
	I Expr
}

func (*IntLit) expr()    {}
func (*NilLit) expr()    {}
func (*Ident) expr()     {}
func (*Unary) expr()     {}
func (*Binary) expr()    {}
func (*Call) expr()      {}
func (*New) expr()       {}
func (*FieldExpr) expr() {}
func (*IndexExpr) expr() {}

// ---------------------------------------------------------------------------
// Pretty-printing (used by diagnostics, tests, and the freelist example)

// ExprString renders an expression roughly as source text.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", x.Value)
	case *NilLit:
		return "nil"
	case *Ident:
		return x.Name
	case *Unary:
		op := map[UnOp]string{UNeg: "-", UNot: "!", UDeref: "*", UAddr: "&"}[x.Op]
		return op + ExprString(x.X)
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.X), x.Op, ExprString(x.Y))
	case *Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", "))
	case *New:
		return fmt.Sprintf("new(%s)", x.T.teString())
	case *FieldExpr:
		return fmt.Sprintf("%s.%s", ExprString(x.X), x.Name)
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", ExprString(x.X), ExprString(x.I))
	}
	return "?"
}
