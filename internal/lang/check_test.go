package lang

import (
	"strings"
	"testing"
)

func TestCheckFreelist(t *testing.T) {
	f, err := Parse(freelistSrc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Check(f)
	if err != nil {
		t.Fatal(err)
	}
	elem := c.Structs["Elem"]
	if elem == nil {
		t.Fatal("missing Elem struct")
	}
	if elem.Size() != 16 {
		t.Errorf("Elem size = %d, want 16", elem.Size())
	}
	next := elem.FieldByName("next")
	val := elem.FieldByName("val")
	if next == nil || val == nil {
		t.Fatal("missing fields")
	}
	if next.Offset != 0 || val.Offset != 8 {
		t.Errorf("offsets next=%d val=%d, want 0, 8", next.Offset, val.Offset)
	}
	if _, ok := next.Type.(*PtrType); !ok {
		t.Errorf("next type = %s, want *Elem", next.Type)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{"undefined var", "func main() { x = 1; }", "undefined: x"},
		{"undefined func", "func main() { foo(); }", "undefined function foo"},
		{"undefined type", "var x Nope; func main() {}", "undefined type Nope"},
		{"no main", "func f() {}", "no main function"},
		{"dup global", "var x int; var x int; func main() {}", "duplicate global x"},
		{"dup func", "func f() {} func f() {} func main() {}", "duplicate function f"},
		{"dup type", "type T struct{} type T struct{} func main() {}", "duplicate type T"},
		{"redefine builtin", "func rnd(x int) int { return 0; } func main() {}", "builtin"},
		{"assign ptr to int", "var p *int; func main() { var x int; x = p; }", "cannot assign"},
		{"deref int", "func main() { var x int; x = *x; }", "cannot dereference"},
		{"bad field", "type T struct { a int; } func main() { var t T; t.b = 1; }", "no field b"},
		{"field on int", "func main() { var x int; x.f = 1; }", "non-struct"},
		{"index int", "func main() { var x int; x = x[0]; }", "cannot index"},
		{"arg count", "func f(a int) {} func main() { f(); }", "expects 1 args"},
		{"arg type", "func f(a *int) {} func main() { f(3); }", "cannot use int"},
		{"return type", "func f() *int { return 3; } func main() {}", "cannot return int"},
		{"missing return value", "func f() int { return; } func main() {}", "missing return value"},
		{"return in void", "func f() { return 3; } func main() {}", "no return type"},
		{"struct self-embed", "type T struct { t T; } func main() {}", "embeds itself"},
		{"neg array", "var a [0]int; func main() {}", "must be positive"},
		{"redeclare", "func main() { var x int; var x int; }", "redeclared"},
		{"whole struct assign", "type T struct { a int; } func main() { var a T; var b T; a = b; }", "whole structs"},
		{"non-lvalue assign", "func main() { 3 = 4; }", "not assignable"},
		{"addr of rvalue", "var p *int; func main() { p = &3; }", "cannot take address"},
		{"cmp ptr int", "var p *int; func main() { if p == 3 { } }", "invalid comparison"},
		{"ptr arithmetic", "var p *int; func main() { var x int; x = p + 1; }", "arithmetic requires ints"},
		{"rnd arity", "func main() { rnd(1, 2); }", "expects 1 arg"},
		{"global init expr", "var g int = 1 + 2; func main() {}", "must be a literal"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f, err := Parse(c.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err = Check(f)
			if err == nil {
				t.Fatalf("expected error containing %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

func TestCheckOK(t *testing.T) {
	cases := []struct{ name, src string }{
		{"nil compare", "var p *int; func main() { if p == nil { } }"},
		{"nil assign", "var p *int; func main() { p = nil; }"},
		{"ptr condition", "var p *int; func main() { if p { } while p { } }"},
		{"ptr index", "var p *int; func main() { var x int; x = p[3]; p[4] = x; }"},
		{"array of struct", "type T struct { a int; b int; } var arr [5]T; func main() { arr[2].b = 7; }"},
		{"nested struct", "type A struct { x int; } type B struct { a A; y int; } var b B; func main() { b.a.x = 1; }"},
		{"addr of elem", "var arr [5]int; var p *int; func main() { p = &arr[2]; }"},
		{"addr of global", "var g int; var p *int; func main() { p = &g; }"},
		{"shadow", "var x int; func main() { var x *int; x = nil; }"},
		{"builtin calls", "func main() { var x int; x = rnd(10) + input(0); print(x); }"},
		{"void call stmt", "func f() {} func main() { f(); }"},
		{"arrow and dot", "type T struct { v int; } func main() { var p *T; p = new(T); p.v = 1; p->v = 2; }"},
		{"deep ptr", "func main() { var pp **int; var p *int; pp = &p; *pp = nil; }"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f, err := Parse(c.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if _, err := Check(f); err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		})
	}
}

func TestAddrTaken(t *testing.T) {
	src := `
func main() {
	var a int;
	var b int;
	var p *int;
	p = &a;
	b = *p;
	print(b);
}
`
	c := MustCheck(src)
	// Exactly one local (a) should be address-taken.
	if len(c.AddrTaken) != 1 {
		t.Fatalf("AddrTaken has %d entries, want 1", len(c.AddrTaken))
	}
	for d := range c.AddrTaken {
		vd, ok := d.(*VarDecl)
		if !ok || vd.Name != "a" {
			t.Errorf("address-taken decl = %+v, want local a", d)
		}
	}
}

func TestAddrTakenViaPointerFieldIsNot(t *testing.T) {
	// &p->f does not expose p itself.
	src := `
type T struct { f int; }
func main() {
	var p *T;
	var q *int;
	p = new(T);
	q = &p->f;
	print(*q);
}
`
	c := MustCheck(src)
	if len(c.AddrTaken) != 0 {
		t.Fatalf("AddrTaken has %d entries, want 0", len(c.AddrTaken))
	}
}

func TestStructLayoutForwardRef(t *testing.T) {
	// B is declared after A references it by value; offsets must still be
	// computed with B's real size.
	src := `
type A struct { b B; tail int; }
type B struct { x int; y int; z int; }
func main() {}
`
	c := MustCheck(src)
	a := c.Structs["A"]
	if a.Size() != 32 {
		t.Errorf("A size = %d, want 32", a.Size())
	}
	tail := a.FieldByName("tail")
	if tail.Offset != 24 {
		t.Errorf("tail offset = %d, want 24", tail.Offset)
	}
}
