package lang

import "testing"

func kinds(toks []Token) []Tok {
	out := make([]Tok, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("x = a + 42; // comment\n y")
	if err != nil {
		t.Fatal(err)
	}
	want := []Tok{IDENT, ASSIGN, IDENT, PLUS, INT, SEMI, IDENT, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
	if toks[4].Int != 42 {
		t.Errorf("int literal: got %d, want 42", toks[4].Int)
	}
}

func TestLexOperators(t *testing.T) {
	cases := []struct {
		src  string
		want Tok
	}{
		{"==", EQ}, {"!=", NE}, {"<=", LE}, {">=", GE},
		{"<<", SHL}, {">>", SHR}, {"&&", ANDAND}, {"||", OROR},
		{"->", ARROW}, {"<", LT}, {">", GT}, {"=", ASSIGN},
		{"!", BANG}, {"&", AMP}, {"|", OR}, {"^", XOR},
		{"-", MINUS}, {"%", PCT},
	}
	for _, c := range cases {
		toks, err := LexAll(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if toks[0].Kind != c.want {
			t.Errorf("%q: got %s, want %s", c.src, toks[0].Kind, c.want)
		}
	}
}

func TestLexKeywords(t *testing.T) {
	toks, err := LexAll("func var type struct int if else while for parallel return break continue new nil")
	if err != nil {
		t.Fatal(err)
	}
	want := []Tok{KwFunc, KwVar, KwType, KwStruct, KwInt, KwIf, KwElse,
		KwWhile, KwFor, KwParallel, KwReturn, KwBreak, KwContinue, KwNew, KwNil, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := LexAll("a /* multi\nline */ b // trailing\nc")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 { // a b c EOF
		t.Fatalf("got %d tokens, want 4: %v", len(toks), kinds(toks))
	}
	if toks[2].Pos.Line != 3 {
		t.Errorf("token c on line %d, want 3", toks[2].Pos.Line)
	}
}

func TestLexUnterminatedComment(t *testing.T) {
	_, err := LexAll("a /* never closed")
	if err == nil {
		t.Fatal("expected error for unterminated comment")
	}
}

func TestLexBadChar(t *testing.T) {
	_, err := LexAll("a @ b")
	if err == nil {
		t.Fatal("expected error for bad character")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("ab\n  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) {
		t.Errorf("ab at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{2, 3}) {
		t.Errorf("cd at %v, want 2:3", toks[1].Pos)
	}
}
