package httpretry

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryable(t *testing.T) {
	for status, want := range map[int]bool{
		200: false, 201: false, 304: false,
		400: false, 404: false, 410: false,
		429: true, 500: true, 501: false, 502: true, 503: true, 504: true,
	} {
		if got := Retryable(status); got != want {
			t.Errorf("Retryable(%d) = %v, want %v", status, got, want)
		}
	}
}

func TestRetryAfter(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	for _, tc := range []struct {
		hdr  string
		want time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{"0", 0},
		{"-1", 0},
		{"soon", 0}, // HTTP-date form is deliberately unparsed
	} {
		if got := RetryAfter(mk(tc.hdr)); got != tc.want {
			t.Errorf("RetryAfter(%q) = %v, want %v", tc.hdr, got, tc.want)
		}
	}
	if got := RetryAfter(nil); got != 0 {
		t.Errorf("RetryAfter(nil) = %v, want 0", got)
	}
}

// TestGetHonorsRetryAfter: a 429 naming Retry-After: 1 makes the first
// backoff exactly 1s (not the 50ms exponential base).
func TestGetHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()

	var slept []time.Duration
	resp, res, err := Get(srv.Client(), srv.URL, Policy{
		Max:   3,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if res.Retries != 1 || res.Exhausted {
		t.Fatalf("result = %+v, want 1 retry, not exhausted", res)
	}
	if len(slept) != 1 || slept[0] != time.Second {
		t.Fatalf("slept %v, want exactly [1s] (the server's Retry-After)", slept)
	}
}

// TestGetExponentialBackoff: without Retry-After, delays double from
// Base and are clamped at Cap.
func TestGetExponentialBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	var slept []time.Duration
	resp, res, err := Get(srv.Client(), srv.URL, Policy{
		Max:   4,
		Base:  10 * time.Millisecond,
		Cap:   35 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if !res.Exhausted || res.Retries != 4 {
		t.Fatalf("result = %+v, want exhausted after 4 retries", res)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("final status = %d, want the last real answer (503)", resp.StatusCode)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 35 * time.Millisecond, 35 * time.Millisecond}
	if fmt.Sprint(slept) != fmt.Sprint(want) {
		t.Fatalf("slept %v, want %v (doubling from base, clamped at cap)", slept, want)
	}
}

// TestGetJitterScalesDelay: jitter multiplies the delay by 0.5+draw.
func TestGetJitterScalesDelay(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	}))
	defer srv.Close()

	var slept []time.Duration
	_, _, err := Get(srv.Client(), srv.URL, Policy{
		Max:    1,
		Base:   100 * time.Millisecond,
		Jitter: func() float64 { return 0.25 },
		Sleep:  func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 75*time.Millisecond {
		t.Fatalf("slept %v, want [75ms] (100ms × (0.5 + 0.25))", slept)
	}
}

// TestGetNoRetriesOnPermanentFailure: 4xx answers are final.
func TestGetNoRetriesOnPermanentFailure(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
	}))
	defer srv.Close()

	resp, res, err := Get(srv.Client(), srv.URL, Policy{
		Max:   5,
		Sleep: func(time.Duration) { t.Fatal("slept on a permanent failure") },
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if calls.Load() != 1 || res.Retries != 0 {
		t.Fatalf("calls = %d, retries = %d; want a single attempt", calls.Load(), res.Retries)
	}
}

// TestGetTransportFailureRetriesThenErrors: a dead server consumes the
// budget and returns the transport error, nil response.
func TestGetTransportFailureRetriesThenErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // nothing listens anymore

	var slept int
	resp, res, err := Get(http.DefaultClient, url, Policy{
		Max:   2,
		Base:  time.Millisecond,
		Sleep: func(time.Duration) { slept++ },
	})
	if err == nil {
		resp.Body.Close()
		t.Fatal("want a transport error from a dead server")
	}
	if resp != nil {
		t.Fatal("response must be nil on total transport failure")
	}
	if !res.Exhausted || res.Retries != 2 || slept != 2 {
		t.Fatalf("result = %+v with %d sleeps, want 2 retries then exhaustion", res, slept)
	}
}

// TestGetRecoversAcrossTransportFailure: a transport error on attempt
// one does not poison a later success.
func TestGetRecoversAcrossTransportFailure(t *testing.T) {
	// Occupy a port, kill it, then bring a real server up elsewhere and
	// proxy via a handler that fails once: simpler to express as a
	// handler that hijacks and slams the connection on the first call.
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close() // mid-request reset → transport error client-side
			return
		}
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	resp, res, err := Get(srv.Client(), srv.URL, Policy{
		Max:   2,
		Base:  time.Millisecond,
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || res.Retries != 1 || res.Exhausted {
		t.Fatalf("status %d, result %+v; want 200 after one retry", resp.StatusCode, res)
	}
}
