// Package httpretry is the client-side half of the service's load
// management contract. tlsd sheds with 429 + Retry-After when its
// admission queue is full, answers 503 while draining, and a cluster
// node answers 503 while peer views converge after a failure — all of
// which mean "come back shortly", not "the work failed". This package
// gives every HTTP client in the repo (tlsbench's daemon mode, the
// tlssim scenario fleet) one shared retry discipline: honor the
// server's Retry-After when it names one, otherwise back off
// exponentially with jitter, retry transient 5xx and transport
// failures, and give up after a bounded number of attempts so a truly
// dead service fails fast instead of hanging a fleet.
package httpretry

import (
	"net/http"
	"strconv"
	"time"
)

// Policy bounds one request's retry behavior.
type Policy struct {
	// Max is the number of retries after the first attempt (0: no
	// retries — Do degenerates to a single Client.Do).
	Max int
	// Base is the first backoff delay; each subsequent retry doubles it
	// (<=0: 50ms).
	Base time.Duration
	// Cap bounds a single backoff delay, including one named by a
	// Retry-After header (<=0: 2s).
	Cap time.Duration
	// Jitter, when non-nil, returns a uniform draw in [0,1) used to
	// spread retries (delay is scaled by 0.5+jitter). nil applies no
	// jitter — callers that need deterministic tests leave it unset.
	Jitter func() float64
	// Sleep replaces time.Sleep in tests (nil: time.Sleep).
	Sleep func(time.Duration)
}

// Retryable reports whether a response status is worth retrying:
// explicit shed/backpressure answers (429, 503) and the transient
// server failures a different moment — or a different node — may not
// reproduce (500, 502, 504). 4xx client errors and 501 are permanent.
func Retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusInternalServerError, http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// RetryAfter extracts a usable Retry-After delay from a response
// (seconds form only; the HTTP-date form is not worth parsing here).
// Returns 0 when absent or malformed.
func RetryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Result reports what one Get spent: how many retries ran and whether
// the budget was exhausted with the last answer still retryable.
type Result struct {
	Retries   int
	Exhausted bool
}

// Get issues a GET with retries under the policy. The caller owns the
// returned response body. A nil response with a nil error cannot
// happen: on total transport failure the last error is returned.
// Requests are GETs (idempotent by construction in this repo), so
// retrying a transport failure is always safe.
func Get(client *http.Client, url string, p Policy) (*http.Response, Result, error) {
	base := p.Base
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	cap := p.Cap
	if cap <= 0 {
		cap = 2 * time.Second
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}

	var res Result
	for attempt := 0; ; attempt++ {
		resp, err := client.Get(url)
		if err == nil && !Retryable(resp.StatusCode) {
			return resp, res, nil
		}
		if attempt >= p.Max {
			// Budget spent: hand back whatever the last attempt produced
			// so the caller can record the real failure mode.
			if err == nil {
				res.Exhausted = true
				return resp, res, nil
			}
			res.Exhausted = true
			return nil, res, err
		}
		// Backoff: the server's Retry-After wins when it names a delay,
		// otherwise exponential from base, either way capped and jittered.
		delay := base << attempt
		if err == nil {
			if ra := RetryAfter(resp); ra > 0 {
				delay = ra
			}
			resp.Body.Close()
		}
		if delay > cap {
			delay = cap
		}
		if p.Jitter != nil {
			delay = time.Duration(float64(delay) * (0.5 + p.Jitter()))
		}
		sleep(delay)
		res.Retries++
	}
}
