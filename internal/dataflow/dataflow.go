// Package dataflow provides bit-vector data-flow analyses over the IR.
// The TLS passes use register liveness to find loop-carried scalars
// (scalarsync) and to schedule signals, and a backward "may-store-later"
// style analysis (built on the same bitset type) for signal placement.
package dataflow

import (
	"math/bits"

	"tlssync/internal/ir"
)

// Bitset is a fixed-width bit vector.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (b Bitset) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether bit i is set.
func (b Bitset) Has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// OrInto ors src into b, reporting whether b changed.
func (b Bitset) OrInto(src Bitset) bool {
	changed := false
	for i := range b {
		nv := b[i] | src[i]
		if nv != b[i] {
			b[i] = nv
			changed = true
		}
	}
	return changed
}

// AndInto intersects src into b, reporting whether b changed.
func (b Bitset) AndInto(src Bitset) bool {
	changed := false
	for i := range b {
		nv := b[i] & src[i]
		if nv != b[i] {
			b[i] = nv
			changed = true
		}
	}
	return changed
}

// AndNot clears in b every bit set in mask.
func (b Bitset) AndNot(mask Bitset) {
	for i := range b {
		b[i] &^= mask[i]
	}
}

// Copy returns an independent copy.
func (b Bitset) Copy() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every set bit in ascending order.
func (b Bitset) ForEach(fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			fn(wi*64 + i)
			w &= w - 1
		}
	}
}

// Liveness holds per-block register liveness for a function.
type Liveness struct {
	F *ir.Func
	// In[b] is the set of registers live on entry to block b;
	// Out[b] on exit.
	In  map[*ir.Block]Bitset
	Out map[*ir.Block]Bitset
	// UEVar[b] (upward-exposed uses) and Kill[b] (defs) per block.
	UEVar map[*ir.Block]Bitset
	Kill  map[*ir.Block]Bitset
}

// ComputeLiveness runs backward liveness over f's registers.
func ComputeLiveness(f *ir.Func) *Liveness {
	lv := &Liveness{
		F:     f,
		In:    make(map[*ir.Block]Bitset, len(f.Blocks)),
		Out:   make(map[*ir.Block]Bitset, len(f.Blocks)),
		UEVar: make(map[*ir.Block]Bitset, len(f.Blocks)),
		Kill:  make(map[*ir.Block]Bitset, len(f.Blocks)),
	}
	n := f.NumRegs
	for _, b := range f.Blocks {
		ue, kill := NewBitset(n), NewBitset(n)
		for _, in := range b.Instrs {
			for _, u := range in.Uses() {
				if !kill.Has(int(u)) {
					ue.Set(int(u))
				}
			}
			if in.HasDst() {
				kill.Set(int(in.Dst))
			}
		}
		lv.UEVar[b], lv.Kill[b] = ue, kill
		lv.In[b], lv.Out[b] = NewBitset(n), NewBitset(n)
	}
	// Iterate to fixpoint: In = UEVar ∪ (Out − Kill); Out = ∪ In[succ].
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := lv.Out[b]
			for _, s := range b.Succs {
				if out.OrInto(lv.In[s]) {
					changed = true
				}
			}
			newIn := out.Copy()
			newIn.AndNot(lv.Kill[b])
			newIn.OrInto(lv.UEVar[b])
			if lv.In[b].OrInto(newIn) {
				changed = true
			}
		}
	}
	return lv
}

// LiveAt returns the set of registers live immediately before instruction
// index idx in block b.
func (lv *Liveness) LiveAt(b *ir.Block, idx int) Bitset {
	live := lv.Out[b].Copy()
	for i := len(b.Instrs) - 1; i >= idx; i-- {
		in := b.Instrs[i]
		if in.HasDst() {
			live.Clear(int(in.Dst))
		}
		for _, u := range in.Uses() {
			live.Set(int(u))
		}
	}
	return live
}

// DefinedIn returns the set of registers assigned anywhere in the given
// block set.
func DefinedIn(f *ir.Func, blocks map[*ir.Block]bool) Bitset {
	defs := NewBitset(f.NumRegs)
	for b := range blocks {
		for _, in := range b.Instrs {
			if in.HasDst() {
				defs.Set(int(in.Dst))
			}
		}
	}
	return defs
}
