package dataflow

import (
	"testing"
	"testing/quick"

	"tlssync/internal/cfg"
	"tlssync/internal/ir"
	"tlssync/internal/lang"
	"tlssync/internal/lower"
)

func compile(t testing.TB, src string) *ir.Program {
	t.Helper()
	c, err := lang.Check(lang.MustParse(src))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := lower.Lower(c)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Has(0) || !b.Has(64) || !b.Has(129) || b.Has(1) {
		t.Fatal("set/has broken")
	}
	if b.Count() != 3 {
		t.Errorf("count = %d, want 3", b.Count())
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 2 {
		t.Error("clear broken")
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 0 || got[1] != 129 {
		t.Errorf("ForEach = %v", got)
	}
}

func TestBitsetOrAndNot(t *testing.T) {
	a := NewBitset(64)
	b := NewBitset(64)
	a.Set(1)
	b.Set(2)
	if !a.OrInto(b) {
		t.Error("OrInto should report change")
	}
	if a.OrInto(b) {
		t.Error("second OrInto should not change")
	}
	if !a.Has(1) || !a.Has(2) {
		t.Error("or broken")
	}
	mask := NewBitset(64)
	mask.Set(1)
	a.AndNot(mask)
	if a.Has(1) || !a.Has(2) {
		t.Error("andnot broken")
	}
	c := a.Copy()
	c.Set(50)
	if a.Has(50) {
		t.Error("copy aliases original")
	}
}

func TestBitsetProperties(t *testing.T) {
	f := func(xs []uint8) bool {
		b := NewBitset(256)
		uniq := make(map[int]bool)
		for _, x := range xs {
			b.Set(int(x))
			uniq[int(x)] = true
		}
		if b.Count() != len(uniq) {
			return false
		}
		for i := range uniq {
			if !b.Has(i) {
				return false
			}
		}
		n := 0
		b.ForEach(func(int) { n++ })
		return n == len(uniq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLivenessLoopCarried(t *testing.T) {
	p := compile(t, `
var g int;
func main() {
	var i int;
	var s int;
	for i = 0; i < 10; i = i + 1 {
		s = s + i;
	}
	g = s;
}`)
	f := p.FuncMap["main"]
	lv := ComputeLiveness(f)
	loops := cfg.NaturalLoops(f)
	if len(loops) != 1 {
		t.Fatal("expected one loop")
	}
	header := loops[0].Header
	liveIn := lv.In[header]
	defs := DefinedIn(f, loops[0].Blocks)
	// Loop-carried registers: live into the header AND defined in the
	// loop. Both i and s qualify.
	carried := 0
	liveIn.ForEach(func(r int) {
		if defs.Has(r) {
			carried++
		}
	})
	if carried < 2 {
		t.Errorf("loop-carried regs = %d, want >= 2 (i and s)", carried)
	}
}

func TestLivenessDeadAfterLastUse(t *testing.T) {
	p := compile(t, `
func main() {
	var a int = 1;
	var b int = 2;
	print(a);
	print(b);
}`)
	f := p.FuncMap["main"]
	lv := ComputeLiveness(f)
	// At function exit nothing is live.
	last := f.Blocks[len(f.Blocks)-1]
	if lv.Out[last].Count() != 0 {
		t.Errorf("live-out at exit = %d regs", lv.Out[last].Count())
	}
}

func TestLiveAt(t *testing.T) {
	p := compile(t, `
func main() {
	var a int = 5;
	var b int = 7;
	print(a + b);
}`)
	f := p.FuncMap["main"]
	lv := ComputeLiveness(f)
	entry := f.Entry
	// Find the Bin (a+b) instruction; both operands must be live there.
	for i, in := range entry.Instrs {
		if in.Op == ir.Bin {
			live := lv.LiveAt(entry, i)
			if !live.Has(int(in.A)) || !live.Has(int(in.B)) {
				t.Error("operands not live at their use")
			}
		}
		if in.Op == ir.Print {
			live := lv.LiveAt(entry, i+1)
			if live.Has(int(in.A)) {
				t.Error("print operand live after last use")
			}
		}
	}
}
