package memsync

import (
	"strings"
	"testing"

	"tlssync/internal/ir"
	"tlssync/internal/regions"
	"tlssync/internal/verify"
)

// These tests pin down the storeless-path edge cases of nullsig.go —
// the backward may-store-later placement of conditional NULL signals —
// using the static verifier as the oracle: a transformed program whose
// NULL placement misses a storeless path would fail signal-release,
// and one whose placement is complete verifies clean. Each case also
// re-checks sensitivity by stripping the NULLs and asserting the
// oracle objects, so a silently NULL-free transformation cannot pass.

// oracle verifies the transformed program exactly as core.Compile does.
func oracle(t *testing.T, p *ir.Program) *verify.Report {
	t.Helper()
	return verify.Binary(p, regions.Regions(p, nil), verify.Options{CloneEnabled: true, Binary: "memsync-test"})
}

// stripNulls removes every conditional NULL signal, reporting how many
// were dropped.
func stripNulls(p *ir.Program) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if in.Op == ir.SignalMemNull {
					n++
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
	}
	return n
}

func checkOracle(t *testing.T, p *ir.Program, wantSensitive bool) {
	t.Helper()
	if rep := oracle(t, p); !rep.Clean() {
		t.Errorf("transformed program fails verification:\n%s", rep)
	}
	n := stripNulls(p)
	if !wantSensitive {
		if rep := oracle(t, p); !rep.Clean() {
			t.Errorf("every path stores, yet removing the %d NULL signals breaks verification:\n%s", n, rep)
		}
		return
	}
	if n == 0 {
		t.Fatal("no NULL signals to strip — placement silently skipped the storeless paths")
	}
	if rep := oracle(t, p); rep.Clean() {
		t.Errorf("oracle insensitive: program still verifies with all %d NULL signals removed", n)
	}
}

// TestNullSigNestedGuards stores the group only behind two nested
// conditions: every partially-taken path (outer taken, inner not; outer
// not taken) is storeless and needs a NULL.
func TestNullSigNestedGuards(t *testing.T) {
	src := `
var g int;
var acc int;
var work [256]int;
func main() {
	var i int;
	parallel for i = 0; i < 400; i = i + 1 {
		acc = acc + g;
		if i % 3 == 0 {
			if i % 5 == 0 {
				g = g + i;
			}
		}
		work[i % 256] = acc;
	}
	print(acc);
}
`
	p, res := pipeline(t, src, DefaultOptions())
	if len(res[0].Groups) == 0 {
		t.Fatal("no groups synchronized")
	}
	checkOracle(t, p, true)
}

// TestNullSigEmulatedContinue guards the store with an early-skip flag
// (MiniC has no continue statement; the flag plays its role): on
// "skipped" epochs the body falls straight through to the backedge.
func TestNullSigEmulatedContinue(t *testing.T) {
	src := `
var g int;
var acc int;
var work [256]int;
func main() {
	var i int;
	var skip int;
	parallel for i = 0; i < 400; i = i + 1 {
		skip = i % 2;
		acc = acc + g;
		if skip == 0 {
			work[i % 256] = acc;
			g = g + i;
		}
	}
	print(acc);
}
`
	p, res := pipeline(t, src, DefaultOptions())
	if len(res[0].Groups) == 0 {
		t.Fatal("no groups synchronized")
	}
	checkOracle(t, p, true)
}

// TestNullSigGuardedCalleeChain hides the store two calls deep, each
// level behind its own guard: the NULL must land on the storeless
// paths of the cloned callees, not just the region body.
func TestNullSigGuardedCalleeChain(t *testing.T) {
	src := `
var g int;
var acc int;
func inner(i int) {
	if i % 4 == 0 {
		g = g + i;
	}
}
func outer(i int) {
	if i % 2 == 0 {
		inner(i);
	}
}
func main() {
	var i int;
	parallel for i = 0; i < 400; i = i + 1 {
		acc = acc + g;
		outer(i);
	}
	print(acc);
}
`
	p, res := pipeline(t, src, DefaultOptions())
	if len(res[0].Groups) == 0 {
		t.Fatal("no groups synchronized")
	}
	if res[0].ClonesMade == 0 {
		t.Fatal("expected cloned callees")
	}
	// At least one NULL signal must sit inside a clone: the storeless
	// paths of inner/outer are only reachable through them.
	inClone := false
	for _, f := range p.Funcs {
		if !strings.Contains(f.Name, "$m") {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.SignalMemNull {
					inClone = true
				}
			}
		}
	}
	if !inClone {
		t.Error("no NULL signal inside any cloned callee")
	}
	checkOracle(t, p, true)
}

// TestNullSigBothBranchesStore stores the group on both sides of the
// branch: no path is storeless, so stripping whatever (redundant)
// NULLs exist must keep the program verifiable.
func TestNullSigBothBranchesStore(t *testing.T) {
	src := `
var g int;
var acc int;
func main() {
	var i int;
	parallel for i = 0; i < 400; i = i + 1 {
		acc = acc + g;
		if i % 2 == 0 {
			g = g + i;
		} else {
			g = g + 1;
		}
	}
	print(acc);
}
`
	p, res := pipeline(t, src, DefaultOptions())
	if len(res[0].Groups) == 0 {
		t.Fatal("no groups synchronized")
	}
	checkOracle(t, p, false)
}
