package memsync

import (
	"tlssync/internal/interp"
	"tlssync/internal/ir"
)

// NULL-signal placement (paper §2.2: "the producer epoch should still
// signal the consumer epoch by sending a NULL value in the address field,
// so that the consumer does not wait indefinitely").
//
// The placement is driven by a backward may-store-later analysis: within
// the epoch (and interprocedurally, via call-graph summaries of which
// functions may execute a group store), a NULL signal is inserted at the
// top of every *frontier* block — a block from which no store of the
// group can execute before the epoch ends, reachable from a block where
// one still could. This sends the NULL as soon as control flow has
// decided that no value will be produced, instead of at epoch end.
// NULL signals are conditional at runtime (the first signal of an epoch
// wins), so a path that already produced a real signal is unaffected.

// insertNullSignals places NULL signals for one group (syncID) in the
// region function's loop body and inside every may-store function.
func (tx *transformer) insertNullSignals(region *interp.Region, syncID int) {
	mayStoreFn := tx.mayStoreFuncs(syncID)

	// Region-function level, restricted to the loop body. The epoch ends
	// at the back edge into the header (or at a region exit), so the
	// analysis does not follow edges into the header.
	loop := region.Loop
	blockMay := func(b *ir.Block) bool {
		return blockStoresGroup(b, syncID, mayStoreFn, tx.prog)
	}
	inLoop := func(b *ir.Block) bool { return loop.Blocks[b] && b != loop.Header }
	mayFrom := backwardMayStore(region.Func, blockMay, inLoop)
	tx.placeFrontierNulls(region.Func, syncID, mayFrom, func(b *ir.Block) bool {
		return loop.Blocks[b] && b != loop.Header
	})

	// Callee level: every function that may store the group gets the same
	// treatment over its whole CFG (it is only called from inside epochs).
	// Program order, not map order: placeFrontierNulls allocates global
	// instruction IDs, so iterating mayStoreFn directly would let map
	// order leak into the IR bytes whenever a group is stored by two or
	// more callees.
	for _, fn := range tx.prog.Funcs {
		if !mayStoreFn[fn] || fn == region.Func {
			continue
		}
		all := func(b *ir.Block) bool { return true }
		fnMay := backwardMayStore(fn, func(b *ir.Block) bool {
			return blockStoresGroup(b, syncID, mayStoreFn, tx.prog)
		}, all)
		tx.placeFrontierNulls(fn, syncID, fnMay, all)
	}
}

// mayStoreFuncs computes the set of functions that may (transitively)
// execute a signal for the group: functions containing a SignalMem with
// this sync id, closed under "calls a may-store function".
func (tx *transformer) mayStoreFuncs(syncID int) map[*ir.Func]bool {
	out := make(map[*ir.Func]bool)
	for _, f := range tx.prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.SignalMem && in.Imm == int64(syncID) {
					out[f] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range tx.prog.Funcs {
			if out[f] {
				continue
			}
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op == ir.Call && out[tx.prog.FuncMap[in.Sym]] {
						out[f] = true
						changed = true
					}
				}
			}
		}
	}
	return out
}

// blockStoresGroup reports whether executing block b may produce a signal
// for the group, directly or through a call.
func blockStoresGroup(b *ir.Block, syncID int, mayStoreFn map[*ir.Func]bool, prog *ir.Program) bool {
	for _, in := range b.Instrs {
		switch in.Op {
		case ir.SignalMem:
			if in.Imm == int64(syncID) {
				return true
			}
		case ir.Call:
			if mayStoreFn[prog.FuncMap[in.Sym]] {
				return true
			}
		}
	}
	return false
}

// backwardMayStore computes, for each block satisfying scope, whether a
// group store may still execute from that block onward (following only
// in-scope successors).
func backwardMayStore(f *ir.Func, blockMay func(*ir.Block) bool, scope func(*ir.Block) bool) map[*ir.Block]bool {
	may := make(map[*ir.Block]bool)
	for changed := true; changed; {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			if !scope(b) || may[b] {
				continue
			}
			v := blockMay(b)
			if !v {
				for _, s := range b.Succs {
					if scope(s) && may[s] {
						v = true
						break
					}
				}
			}
			if v {
				may[b] = true
				changed = true
			}
		}
	}
	return may
}

// placeFrontierNulls inserts a conditional NULL signal at the top of each
// in-scope block where may-store-later just became false.
func (tx *transformer) placeFrontierNulls(f *ir.Func, syncID int, mayFrom map[*ir.Block]bool, scope func(*ir.Block) bool) {
	for _, b := range f.Blocks {
		if !scope(b) || mayFrom[b] {
			continue
		}
		frontier := false
		for _, p := range b.Preds {
			if scope(p) && mayFrom[p] {
				frontier = true
				break
			}
		}
		if !frontier {
			continue
		}
		sig := tx.prog.NewInstr(ir.SignalMemNull)
		sig.Imm = int64(syncID)
		b.Instrs = append([]*ir.Instr{sig}, b.Instrs...)
	}
}
