package memsync

import (
	"fmt"
	"strings"
	"testing"

	"tlssync/internal/ir"
)

// idFingerprint renders every instruction's position together with its
// ID/Origin pair. The printed IR deliberately omits IDs, but they are
// still part of the binary's identity: Origin keys dependence profiles
// and policy tables (sim.OracleLoads, the violation-history table), and
// verifier messages name IDs — so ID assignment must be reproducible.
func idFingerprint(p *ir.Program) string {
	var sb strings.Builder
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i, in := range b.Instrs {
				fmt.Fprintf(&sb, "%s b%d %d: %s id=%d origin=%d\n", f.Name, b.Index, i, in.Op, in.ID, in.Origin)
			}
		}
	}
	return sb.String()
}

// TestNullSigMultiCalleeDeterminism pins the D001-class bug tlslint
// caught in placeFrontierNulls' caller: when a sync group is stored by
// two or more callees, the per-callee NULL-placement pass allocates
// global instruction IDs, so iterating the may-store set in map order
// let map iteration order decide which callee's NULL signals got which
// IDs. The fix iterates tx.prog.Funcs (program order); this test
// re-runs the whole memsync pipeline on a two-callee-store program and
// asserts the full ID assignment is identical every time. Before the
// fix this flickers within a few repetitions (Go randomizes map order
// per range statement).
func TestNullSigMultiCalleeDeterminism(t *testing.T) {
	src := `
var g int;
var acc int;
var work [256]int;
func addEven(i int) {
	if i % 4 == 0 {
		g = g + i;
	}
}
func addOdd(i int) {
	if i % 3 == 0 {
		g = g + 2 * i;
	}
}
func main() {
	var i int;
	parallel for i = 0; i < 400; i = i + 1 {
		acc = acc + g;
		if i % 2 == 0 {
			addEven(i);
		} else {
			addOdd(i);
		}
		work[i % 256] = acc;
	}
	print(acc);
}
`
	p0, res := pipeline(t, src, DefaultOptions())
	if len(res[0].Groups) == 0 {
		t.Fatal("no groups synchronized — the program no longer exercises multi-callee stores")
	}
	nulls := 0
	for _, f := range p0.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.SignalMemNull {
					nulls++
				}
			}
		}
	}
	if nulls == 0 {
		t.Fatal("no NULL signals placed — the program no longer exercises placeFrontierNulls")
	}
	want := idFingerprint(p0) + p0.String()
	for rep := 1; rep <= 7; rep++ {
		p, _ := pipeline(t, src, DefaultOptions())
		if got := idFingerprint(p) + p.String(); got != want {
			t.Fatalf("rep %d: instruction ID assignment differs between identical compiles (map order leaked into NewInstr allocation)", rep)
		}
	}
}
