package memsync

import (
	"strings"
	"testing"

	"tlssync/internal/interp"
	"tlssync/internal/ir"
	"tlssync/internal/lang"
	"tlssync/internal/lower"
	"tlssync/internal/profile"
	"tlssync/internal/regions"
)

func compile(t testing.TB, src string) *ir.Program {
	t.Helper()
	c, err := lang.Check(lang.MustParse(src))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := lower.Lower(c)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

// pipeline profiles src, applies memsync, verifies the result and checks
// functional equivalence with the untransformed program. Returns the
// transformed program and results.
func pipeline(t *testing.T, src string, opts Options) (*ir.Program, []Result) {
	t.Helper()
	base := compile(t, src)
	baseTr, err := interp.Run(base, interp.Options{Seed: 11})
	if err != nil {
		t.Fatalf("base run: %v", err)
	}

	p := compile(t, src)
	regs := regions.Regions(p, nil)
	tr, err := interp.Run(p, interp.Options{Seed: 11, Regions: regs})
	if err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	prof := profile.Analyze(tr)

	results, err := Apply(p, regs, prof.Regions, opts)
	if err != nil {
		t.Fatalf("memsync: %v", err)
	}

	// Functional equivalence after transformation, executed with regions
	// active so the full synchronization protocol is exercised.
	regs2 := regions.Regions(p, nil)
	tr2, err := interp.Run(p, interp.Options{Seed: 11, Regions: regs2})
	if err != nil {
		t.Fatalf("transformed run: %v", err)
	}
	if len(tr2.Output) != len(baseTr.Output) {
		t.Fatalf("output length %d, want %d", len(tr2.Output), len(baseTr.Output))
	}
	for i := range tr2.Output {
		if tr2.Output[i] != baseTr.Output[i] {
			t.Fatalf("output[%d] = %d, want %d", i, tr2.Output[i], baseTr.Output[i])
		}
	}
	// And without regions (plain sequential semantics).
	tr3, err := interp.Run(p, interp.Options{Seed: 11})
	if err != nil {
		t.Fatalf("transformed sequential run: %v", err)
	}
	for i := range tr3.Output {
		if tr3.Output[i] != baseTr.Output[i] {
			t.Fatalf("sequential output[%d] = %d, want %d", i, tr3.Output[i], baseTr.Output[i])
		}
	}
	return p, results
}

func countOps(p *ir.Program, op ir.Op) int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == op {
					n++
				}
			}
		}
	}
	return n
}

const counterSrc = `
var g int;
func main() {
	var i int;
	parallel for i = 0; i < 300; i = i + 1 {
		g = g + 1;
	}
	print(g);
}
`

func TestSimpleCounterSynchronized(t *testing.T) {
	p, res := pipeline(t, counterSrc, DefaultOptions())
	if len(res) != 1 || len(res[0].Groups) != 1 {
		t.Fatalf("results: %+v", res)
	}
	if res[0].LoadsSync != 1 || res[0].StoresSync != 1 {
		t.Errorf("loads=%d stores=%d, want 1/1", res[0].LoadsSync, res[0].StoresSync)
	}
	if res[0].SkippedRefs != 0 {
		t.Errorf("skipped refs = %d", res[0].SkippedRefs)
	}
	for _, op := range []ir.Op{ir.WaitMemAddr, ir.CheckFwd, ir.WaitMemVal, ir.LoadSync, ir.SelectFwd, ir.SignalMem} {
		if countOps(p, op) != 1 {
			t.Errorf("%v count = %d, want 1", op, countOps(p, op))
		}
	}
	if p.NumMemSyncs != 1 {
		t.Errorf("NumMemSyncs = %d", p.NumMemSyncs)
	}
	// No cloning needed: refs are directly in the loop body.
	if res[0].ClonesMade != 0 {
		t.Errorf("clones = %d, want 0", res[0].ClonesMade)
	}
}

// The paper's Figure 4: a free list manipulated through procedures called
// from the parallelized loop. free_list is read and written every
// iteration through aliasing pointers.
const freelistSrc = `
type Elem struct {
	next *Elem;
	val  int;
}
var free_list *Elem;
var sum int;

func free_element(e *Elem) {
	e->next = free_list;
	free_list = e;
}

func use_element() *Elem {
	var e *Elem = free_list;
	if e != nil {
		free_list = e->next;
	}
	return e;
}

func work() {
	var e *Elem = use_element();
	if e != nil {
		sum = sum + e->val;
		free_element(e);
	}
}

func main() {
	var i int;
	free_element(new(Elem));
	parallel for i = 0; i < 400; i = i + 1 {
		var e *Elem = new(Elem);
		e->val = i;
		free_element(e);
		work();
	}
	print(sum);
}
`

func TestFreelistExample(t *testing.T) {
	p, res := pipeline(t, freelistSrc, DefaultOptions())
	r := res[0]
	if len(r.Groups) == 0 {
		t.Fatal("no groups synchronized")
	}
	if r.ClonesMade == 0 {
		t.Error("expected procedure cloning for call-path-specific sync")
	}
	if r.SkippedRefs != 0 {
		t.Errorf("skipped refs = %d", r.SkippedRefs)
	}
	// Cloned functions exist and originals survive.
	var cloneNames []string
	for _, f := range p.Funcs {
		if strings.Contains(f.Name, "$m") {
			cloneNames = append(cloneNames, f.Name)
		}
	}
	if len(cloneNames) != r.ClonesMade {
		t.Errorf("clone funcs = %d, result says %d", len(cloneNames), r.ClonesMade)
	}
	if p.FuncMap["free_element"] == nil || p.FuncMap["use_element"] == nil {
		t.Error("originals must survive cloning")
	}
	// Originals must contain no sync code (specialization).
	for _, name := range []string{"free_element", "use_element", "work"} {
		f := p.FuncMap[name]
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.LoadSync, ir.SignalMem, ir.WaitMemAddr:
					t.Errorf("sync op %v leaked into original %s", in.Op, name)
				}
			}
		}
	}
}

func TestCloningDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.Clone = false
	p, res := pipeline(t, freelistSrc, opts)
	if res[0].ClonesMade != 0 {
		t.Errorf("clones = %d, want 0", res[0].ClonesMade)
	}
	for _, f := range p.Funcs {
		if strings.Contains(f.Name, "$m") {
			t.Errorf("unexpected clone %s", f.Name)
		}
	}
	// Sync code now lives in the original procedures.
	if countOps(p, ir.LoadSync) == 0 {
		t.Error("no synchronized loads without cloning")
	}
}

func TestThresholdExcludesRareDeps(t *testing.T) {
	// cold is accessed in short bursts (two consecutive epochs out of
	// every 64), so its within-window dependence occurs in ~1.6% of
	// epochs: below the 5% threshold, above 0.5%.
	src := `
var hot int;
var cold int;
func main() {
	var i int;
	parallel for i = 0; i < 600; i = i + 1 {
		hot = hot + 1;
		if i % 64 < 2 {
			cold = cold + 1;
		}
	}
	print(hot + cold);
}
`
	p, res := pipeline(t, src, DefaultOptions())
	if len(res[0].Groups) != 1 {
		t.Fatalf("groups = %d, want 1 (hot only)", len(res[0].Groups))
	}
	if countOps(p, ir.LoadSync) != 1 {
		t.Errorf("synchronized loads = %d, want 1", countOps(p, ir.LoadSync))
	}

	// Lowering the threshold brings cold in.
	opts := DefaultOptions()
	opts.Threshold = 0.005
	_, res2 := pipeline(t, src, opts)
	if len(res2[0].Groups) != 2 {
		t.Errorf("low-threshold groups = %d, want 2", len(res2[0].Groups))
	}
}

func TestStaleForwardingCorrectness(t *testing.T) {
	// The producer usually stores g once (signaled); on rare epochs a
	// second, unsignaled store overwrites it after the signal — the
	// signal-address-buffer (stale) path. The consumer must then take the
	// memory value, not the forwarded one. Functional equivalence in
	// pipeline() verifies this.
	src := `
var g int;
var acc int;
func main() {
	var i int;
	parallel for i = 0; i < 300; i = i + 1 {
		acc = acc + g;
		g = i * 7;
		if i % 10 == 0 {
			g = i * 1000;
		}
	}
	print(acc);
}
`
	p, _ := pipeline(t, src, DefaultOptions())
	_ = p
}

func TestLocalOverwriteClearsUFF(t *testing.T) {
	// The consumer sometimes overwrites g before its synchronized load;
	// the load must then use the local (memory) value.
	src := `
var g int;
var acc int;
func main() {
	var i int;
	parallel for i = 0; i < 300; i = i + 1 {
		if i % 7 == 0 {
			g = 1000000 + i;
		}
		acc = acc + g;
		g = i;
	}
	print(acc);
}
`
	pipeline(t, src, DefaultOptions())
}

func TestPointerAliasedDependence(t *testing.T) {
	// The dependence flows through *p/*q where the pointers only
	// sometimes alias — the paper's Figure 1/3 scenario.
	src := `
var cells [16]int;
var acc int;
func main() {
	var i int;
	parallel for i = 0; i < 400; i = i + 1 {
		var q *int = &cells[0];
		var p *int = &cells[0];
		if i % 8 == 0 {
			p = &cells[3];
		}
		*q = i;
		acc = acc + *p;
	}
	print(acc);
}
`
	p, res := pipeline(t, src, DefaultOptions())
	if len(res[0].Groups) == 0 {
		t.Fatal("aliased dependence not synchronized")
	}
	// The consumer protocol must appear.
	if countOps(p, ir.CheckFwd) == 0 {
		t.Error("no checkfwd emitted")
	}
}

func TestSharedCloneAcrossRefs(t *testing.T) {
	// Two synchronized references inside the same callee must share one
	// clone (path-prefix sharing).
	src := `
var a int;
var b int;
func touch() {
	a = a + 1;
	b = b + 1;
}
func main() {
	var i int;
	parallel for i = 0; i < 300; i = i + 1 {
		touch();
	}
	print(a + b);
}
`
	p, res := pipeline(t, src, DefaultOptions())
	if res[0].ClonesMade != 1 {
		t.Errorf("clones = %d, want 1 (shared)", res[0].ClonesMade)
	}
	if len(res[0].Groups) != 2 {
		t.Errorf("groups = %d, want 2 (a and b separate)", len(res[0].Groups))
	}
	_ = p
}

func TestSyncedLoadOrigins(t *testing.T) {
	p, _ := pipeline(t, counterSrc, DefaultOptions())
	origins := SyncedLoadOrigins(p)
	if len(origins) != 1 {
		t.Fatalf("origins = %v, want 1 entry", origins)
	}
	// The origin must be a load in the pre-transform numbering: its ID
	// exists and the LoadSync inherits it.
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.LoadSync && !origins[in.Origin] {
					t.Error("LoadSync origin missing from set")
				}
			}
		}
	}
}

func TestSummaryRendering(t *testing.T) {
	_, res := pipeline(t, counterSrc, DefaultOptions())
	s := Summary(res[0])
	if !strings.Contains(s, "1 group(s)") || !strings.Contains(s, "sync0") {
		t.Errorf("summary: %s", s)
	}
}

func TestNoProfileNoChange(t *testing.T) {
	p := compile(t, counterSrc)
	regs := regions.Regions(p, nil)
	res, err := Apply(p, regs, map[int]*profile.RegionProfile{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Groups) != 0 {
		t.Errorf("unexpected transformation without profile: %+v", res)
	}
	if countOps(p, ir.LoadSync) != 0 {
		t.Error("loads synchronized without profile")
	}
}

func TestNullSignalsOnStorelessPaths(t *testing.T) {
	// The producer stores the group only on ~30% of epochs; the other
	// paths must carry an early NULL signal so the consumer never waits
	// for the whole producer epoch.
	src := `
var g int;
var acc int;
var work [256]int;
func main() {
	var i int;
	parallel for i = 0; i < 400; i = i + 1 {
		acc = acc + g;
		if i % 3 == 0 {
			g = g + i;
		}
		work[i % 256] = acc;
	}
	print(acc);
}
`
	p, res := pipeline(t, src, DefaultOptions())
	if len(res[0].Groups) == 0 {
		t.Fatal("no groups")
	}
	nulls := countOps(p, ir.SignalMemNull)
	if nulls == 0 {
		t.Fatal("no NULL signals placed for guarded store")
	}
	// NULL signals must live in the region function's loop (the storeless
	// branch), not at arbitrary places.
	main := p.FuncMap["main"]
	found := false
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.SignalMemNull {
				found = true
			}
		}
	}
	if !found {
		t.Error("NULL signal not in region function")
	}
}

func TestNullSignalsInCallees(t *testing.T) {
	// The store hides behind a conditional inside a callee: the callee's
	// clone must get a NULL signal on its storeless path.
	src := `
var g int;
var acc int;
func maybe(i int) {
	if i % 4 == 0 {
		g = g + i;
	}
}
func main() {
	var i int;
	parallel for i = 0; i < 400; i = i + 1 {
		acc = acc + g;
		maybe(i);
	}
	print(acc);
}
`
	p, res := pipeline(t, src, DefaultOptions())
	if res[0].ClonesMade == 0 {
		t.Fatal("expected cloning")
	}
	foundInClone := false
	for _, f := range p.Funcs {
		if !strings.Contains(f.Name, "$m") {
			continue
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.SignalMemNull {
					foundInClone = true
				}
			}
		}
	}
	if !foundInClone {
		t.Error("no NULL signal inside the cloned callee")
	}
}
