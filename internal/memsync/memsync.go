// Package memsync implements the paper's contribution: compiler-inserted
// synchronization for memory-resident value communication between
// speculative threads (§2.2–§2.3).
//
// Pipeline per region:
//
//  1. Take the profiled inter-epoch dependences and build the dependence
//     graph at the frequency threshold (default 5% of epochs); connected
//     components become groups (package depgraph).
//
//  2. Clone the procedures along each synchronized reference's call stack
//     so synchronization executes only on the profiled path (§2.3
//     "Cloning"). Clones are shared across references with a common path
//     prefix; call sites are retargeted to the clones.
//
//  3. Replace each synchronized load `r = load [a]` with the consumer
//     protocol:
//
//     fa = wait.ma s          ; forwarded address (stalls)
//     checkfwd s, fa, a       ; uff := (fa == a) and no stale forwarding
//     fv = wait.mv s          ; forwarded value
//     mv = load.sync s [a]    ; violation-immune when uff is set;
//     ; clears uff if locally overwritten
//     r  = select s, fv, mv   ; picks forwarded or memory value, resets uff
//
//  4. Insert `signal.m s, addr, val` immediately after each synchronized
//     store — as close to where the value is produced as possible, the
//     placement the paper's data-flow analysis targets. The producer-side
//     signal address buffer (modeled in the interpreter and the timing
//     simulator) restarts the consumer if a later store in the producer
//     epoch overwrites a forwarded address.
//
//  5. Place conditional NULL signals on storeless paths at the earliest
//     block from which no group store can execute (a backward
//     may-store-later analysis, interprocedural via call summaries; see
//     nullsig.go), so consumers of epochs that produce no value are
//     released as soon as control flow decides — the paper's "send a
//     NULL value in the address field" rule. A channel that was never
//     signaled at all falls back to an implicit NULL when the producer
//     finishes (a simulator rule; DESIGN.md §5).
package memsync

import (
	"fmt"
	"sort"

	"tlssync/internal/depgraph"
	"tlssync/internal/interp"
	"tlssync/internal/ir"
	"tlssync/internal/profile"
)

// Options configure the pass.
type Options struct {
	// Threshold is the minimum dependence frequency (fraction of epochs)
	// for synchronization; the paper determines 5% experimentally (Fig 6).
	Threshold float64

	// Clone enables call-path cloning. When disabled, synchronization is
	// inserted into the original procedures and therefore executes on
	// every call path — the over-synchronization the paper's cloning
	// avoids (ablation knob).
	Clone bool

	// D1Threshold thresholds group formation on distance-1 frequency
	// instead of the paper's distance-blind frequency (ablation knob,
	// DESIGN.md §5).
	D1Threshold bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options { return Options{Threshold: 0.05, Clone: true} }

// GroupInfo describes one synchronized group after transformation.
type GroupInfo struct {
	SyncID int
	Freq   float64
	Loads  []profile.Ref
	Stores []profile.Ref
}

// Result reports what the pass did to one region.
type Result struct {
	RegionID    int
	Groups      []GroupInfo
	ClonesMade  int
	LoadsSync   int // load sites rewritten to the consumer protocol
	StoresSync  int // store sites given producer signals
	SyncIDs     []int
	SkippedRefs int // references that could not be located (should be 0)
}

// Apply transforms prog in place, synchronizing the frequent
// memory-resident dependences of each region according to its profile.
// profiles maps region ID to its dependence profile.
func Apply(prog *ir.Program, regions []*interp.Region, profiles map[int]*profile.RegionProfile, opts Options) ([]Result, error) {
	var results []Result
	for _, r := range regions {
		rp := profiles[r.ID]
		if rp == nil {
			results = append(results, Result{RegionID: r.ID})
			continue
		}
		res, err := applyRegion(prog, r, rp, opts)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	if err := prog.Verify(); err != nil {
		return nil, fmt.Errorf("memsync: invalid IR after transformation: %w", err)
	}
	return results, nil
}

type transformer struct {
	prog   *ir.Program
	region *interp.Region
	opts   Options
	// clones maps a call-path prefix (within this region) to the name of
	// the specialized function that path now targets.
	clones     map[string]string
	clonesMade int
}

func applyRegion(prog *ir.Program, region *interp.Region, rp *profile.RegionProfile, opts Options) (Result, error) {
	res := Result{RegionID: region.ID}
	g := depgraph.BuildD(rp, opts.Threshold, opts.D1Threshold)
	if len(g.Groups) == 0 {
		return res, nil
	}
	tx := &transformer{prog: prog, region: region, opts: opts, clones: make(map[string]string)}

	for _, grp := range g.Groups {
		syncID := prog.NumMemSyncs
		prog.NumMemSyncs++
		info := GroupInfo{SyncID: syncID, Freq: grp.Freq, Loads: grp.Loads, Stores: grp.Stores}
		res.SyncIDs = append(res.SyncIDs, syncID)

		// When cloning is disabled, multiple refs may collapse onto the
		// same static instruction; transform each instruction once.
		doneLoads := make(map[*ir.Instr]bool)
		doneStores := make(map[*ir.Instr]bool)

		for _, ref := range grp.Loads {
			f, ins, err := tx.locate(ref)
			if err != nil {
				res.SkippedRefs++
				continue
			}
			for _, in := range ins {
				if !opts.Clone && doneLoads[in] {
					continue
				}
				doneLoads[in] = true
				if err := tx.rewriteLoad(f, in, syncID); err != nil {
					return res, err
				}
				res.LoadsSync++
			}
		}
		for _, ref := range grp.Stores {
			f, ins, err := tx.locate(ref)
			if err != nil {
				res.SkippedRefs++
				continue
			}
			for _, in := range ins {
				if !opts.Clone && doneStores[in] {
					continue
				}
				doneStores[in] = true
				if err := tx.insertSignal(f, in, syncID); err != nil {
					return res, err
				}
				res.StoresSync++
			}
		}
		// Storeless paths signal NULL as early as control flow allows.
		tx.insertNullSignals(region, syncID)
		res.Groups = append(res.Groups, info)
	}
	res.ClonesMade = tx.clonesMade
	return res, nil
}

// locate resolves a profiled reference to the function and the
// instructions that should be transformed, cloning procedures along the
// call path when enabled. Loop unrolling can duplicate both call sites
// and memory references within the region function (clones share the
// original's Origin), so every matching copy is retargeted/returned.
func (tx *transformer) locate(ref profile.Ref) (*ir.Func, []*ir.Instr, error) {
	f := tx.region.Func
	if tx.opts.Clone {
		prefix := fmt.Sprintf("r%d", tx.region.ID)
		for _, siteID := range ref.PathIDs() {
			sites := findInstrs(f, siteID)
			if len(sites) == 0 || sites[0].Op != ir.Call {
				return nil, nil, fmt.Errorf("memsync: call site %d not found in %s", siteID, f.Name)
			}
			prefix += fmt.Sprintf("-%d", siteID)
			cloneName, ok := tx.clones[prefix]
			if !ok {
				orig := tx.prog.FuncMap[sites[0].Sym]
				// Clone from the original (or an existing clone the site
				// already targets — sharing via the prefix map means the
				// site targets the right function already if seen).
				cloneName = fmt.Sprintf("%s$m%d", orig.Name, tx.clonesMade)
				tx.prog.CloneFunc(orig, cloneName)
				tx.clones[prefix] = cloneName
				tx.clonesMade++
			}
			for _, site := range sites {
				site.Sym = cloneName
			}
			f = tx.prog.FuncMap[cloneName]
		}
	} else {
		// Without cloning, walk the original callee chain.
		for _, siteID := range ref.PathIDs() {
			sites := findInstrs(f, siteID)
			if len(sites) == 0 || sites[0].Op != ir.Call {
				return nil, nil, fmt.Errorf("memsync: call site %d not found in %s", siteID, f.Name)
			}
			f = tx.prog.FuncMap[sites[0].Sym]
		}
	}
	ins := findInstrs(f, ref.Instr)
	if len(ins) == 0 {
		return nil, nil, fmt.Errorf("memsync: instruction %d not found in %s", ref.Instr, f.Name)
	}
	return f, ins, nil
}

// findInstrs locates every instruction with the given Origin ID in f
// (unrolling produces multiple copies sharing an Origin).
func findInstrs(f *ir.Func, origin int) []*ir.Instr {
	var out []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Origin == origin {
				out = append(out, in)
			}
		}
	}
	return out
}

// rewriteLoad replaces a Load with the five-instruction consumer protocol.
func (tx *transformer) rewriteLoad(f *ir.Func, load *ir.Instr, syncID int) error {
	if load.Op != ir.Load {
		if load.Op == ir.LoadSync {
			return fmt.Errorf("memsync: load %d already synchronized", load.Origin)
		}
		return fmt.Errorf("memsync: instruction %d is %v, not a load", load.Origin, load.Op)
	}
	b, idx := findPos(f, load)
	if b == nil {
		return fmt.Errorf("memsync: load %d not found in %s", load.Origin, f.Name)
	}
	fa, fv, mv := f.NewReg(), f.NewReg(), f.NewReg()
	s := int64(syncID)

	waitA := tx.prog.NewInstr(ir.WaitMemAddr)
	waitA.Dst, waitA.Imm, waitA.Pos = fa, s, load.Pos

	check := tx.prog.NewInstr(ir.CheckFwd)
	check.A, check.B, check.Imm, check.Pos = fa, load.A, s, load.Pos

	waitV := tx.prog.NewInstr(ir.WaitMemVal)
	waitV.Dst, waitV.Imm, waitV.Pos = fv, s, load.Pos

	ldSync := tx.prog.NewInstr(ir.LoadSync)
	ldSync.Dst, ldSync.A, ldSync.Imm, ldSync.Pos = mv, load.A, s, load.Pos
	// Keep lineage: the synchronized load stands for the original load in
	// later profiling and in the Figure 11 classification.
	ldSync.Origin = load.Origin

	sel := tx.prog.NewInstr(ir.SelectFwd)
	sel.Dst, sel.A, sel.B, sel.Imm, sel.Pos = load.Dst, fv, mv, s, load.Pos

	seq := []*ir.Instr{waitA, check, waitV, ldSync, sel}
	b.Instrs = append(b.Instrs[:idx], append(seq, b.Instrs[idx+1:]...)...)
	return nil
}

// insertSignal places `signal.m s, addr, val` immediately after the store.
func (tx *transformer) insertSignal(f *ir.Func, store *ir.Instr, syncID int) error {
	if store.Op != ir.Store {
		return fmt.Errorf("memsync: instruction %d is %v, not a store", store.Origin, store.Op)
	}
	b, idx := findPos(f, store)
	if b == nil {
		return fmt.Errorf("memsync: store %d not found in %s", store.Origin, f.Name)
	}
	sig := tx.prog.NewInstr(ir.SignalMem)
	sig.A, sig.B, sig.Imm, sig.Pos = store.A, store.B, int64(syncID), store.Pos
	b.Instrs = append(b.Instrs[:idx+1], append([]*ir.Instr{sig}, b.Instrs[idx+1:]...)...)
	return nil
}

func findPos(f *ir.Func, target *ir.Instr) (*ir.Block, int) {
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in == target {
				return b, i
			}
		}
	}
	return nil, 0
}

// SyncedLoadOrigins returns the Origin IDs of all loads synchronized in
// the program (used by the Figure 11 classification and the hybrid
// policies).
func SyncedLoadOrigins(prog *ir.Program) map[int]bool {
	out := make(map[int]bool)
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.LoadSync {
					out[in.Origin] = true
				}
			}
		}
	}
	return out
}

// Summary renders a compact description of the transformation for one
// region (used by cmd/tlsprof and the freelist example).
func Summary(res Result) string {
	s := fmt.Sprintf("region %d: %d group(s), %d load(s) synchronized, %d signal(s), %d clone(s)\n",
		res.RegionID, len(res.Groups), res.LoadsSync, res.StoresSync, res.ClonesMade)
	groups := append([]GroupInfo(nil), res.Groups...)
	sort.Slice(groups, func(i, j int) bool { return groups[i].SyncID < groups[j].SyncID })
	for _, g := range groups {
		s += fmt.Sprintf("  sync%d (freq %.1f%%): loads=%v stores=%v\n",
			g.SyncID, g.Freq*100, g.Loads, g.Stores)
	}
	return s
}
