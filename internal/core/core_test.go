package core

import (
	"strings"
	"testing"

	"tlssync/internal/ir"
	"tlssync/internal/regions"
	"tlssync/internal/sim"
)

func TestMultipleRegionsEndToEnd(t *testing.T) {
	// Two parallel loops with distinct hot dependences: both must be
	// selected, synchronized with distinct channels, and show up as
	// separate regions in the simulation.
	src := `
var a int;
var b int;
var work [2048]int;
var out [1024]int;
func main() {
	var i int;
	for i = 0; i < 2048; i = i + 1 { work[i] = i * 7 % 991; }
	parallel for i = 0; i < 200; i = i + 1 {
		var j int = 0;
		var acc int = 0;
		while j < 6 {
			acc = acc + work[(i * 17 + j * 41) % 2048];
			j = j + 1;
		}
		a = a + acc % 13;
		out[i % 1024] = acc;
	}
	parallel for i = 0; i < 200; i = i + 1 {
		var j int = 0;
		var acc int = 0;
		while j < 6 {
			acc = acc + work[(i * 29 + j * 67) % 2048];
			j = j + 1;
		}
		b = b + acc % 11;
		out[(i + 200) % 1024] = acc;
	}
	print(a + b);
}
`
	b, err := Compile(Config{Source: src, RefInput: []int64{1}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(regions.Accepted(b.Decisions)); got != 2 {
		t.Fatalf("accepted regions = %d, want 2", got)
	}
	// Both regions must be memory-synchronized, with distinct sync ids.
	seen := make(map[int]bool)
	syncedRegions := 0
	for _, info := range b.MemInfoRef {
		if len(info.SyncIDs) > 0 {
			syncedRegions++
		}
		for _, id := range info.SyncIDs {
			if seen[id] {
				t.Errorf("sync id %d reused across regions", id)
			}
			seen[id] = true
		}
	}
	if syncedRegions != 2 {
		t.Errorf("synchronized regions = %d, want 2", syncedRegions)
	}
	if err := b.CheckEquivalence([]int64{1}); err != nil {
		t.Fatal(err)
	}

	// Both regions appear in the simulation with improvements.
	tr, err := b.Trace(b.Ref, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Simulate(sim.Input{Trace: tr, Policy: sim.PolicyC("C")})
	if len(res.Regions) != 2 {
		t.Fatalf("simulated regions = %d, want 2", len(res.Regions))
	}
	trU, err := b.Trace(b.Base, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	resU := sim.Simulate(sim.Input{Trace: trU, Policy: sim.PolicyU()})
	for id := range res.Regions {
		if res.Regions[id].Cycles >= resU.Regions[id].Cycles {
			t.Errorf("region %d: C (%d cycles) did not beat U (%d)",
				id, res.Regions[id].Cycles, resU.Regions[id].Cycles)
		}
	}
}

func TestUnrollingComposesWithMemsync(t *testing.T) {
	// A tiny loop body (below the unroll target) carrying a hot
	// dependence: selection unrolls it, and memory synchronization must
	// still apply correctly to the unrolled copies.
	src := `
var g int;
func main() {
	var i int;
	parallel for i = 0; i < 797; i = i + 1 {
		g = g + i % 3;
	}
	print(g);
}
`
	b, err := Compile(Config{Source: src, RefInput: []int64{1}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	var unrolled bool
	for _, d := range b.Decisions {
		if d.Accepted && d.UnrollFactor > 1 {
			unrolled = true
		}
	}
	if !unrolled {
		t.Fatal("tiny loop was not unrolled")
	}
	// The unrolled copies multiply the static load sites; each profiled
	// copy gets its own synchronization.
	loads := 0
	for _, f := range b.Ref.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Op == ir.LoadSync {
					loads++
				}
			}
		}
	}
	if loads < 2 {
		t.Errorf("unrolled loop has %d synchronized loads, want >= 2 (one per copy)", loads)
	}
	if err := b.CheckEquivalence([]int64{1}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Compile(Config{Source: "not a program", RefInput: []int64{1}}); err == nil {
		t.Error("expected parse error")
	}
	if _, err := Compile(Config{Source: "func main() { x = 1; }", RefInput: []int64{1}}); err == nil {
		t.Error("expected check error")
	}
}

func TestVariantsShareGlobalLayout(t *testing.T) {
	src := `
var g int;
var h int;
func main() {
	var i int;
	parallel for i = 0; i < 100; i = i + 1 { g = g + 1; }
	print(g + h);
}
`
	b, err := Compile(Config{Source: src, RefInput: []int64{1}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*ir.Program{b.Plain, b.Base, b.Train, b.Ref} {
		if p.GlobalMap["g"].Addr != b.Plain.GlobalMap["g"].Addr {
			t.Error("global addresses differ across variants")
		}
	}
}

func TestBuildSummaryStrings(t *testing.T) {
	// The IR printer must render the transformed program without panics
	// and include the TLS ops.
	src := `
var g int;
var work [512]int;
func main() {
	var i int;
	parallel for i = 0; i < 100; i = i + 1 {
		var j int = 0;
		var acc int = 0;
		while j < 5 {
			acc = acc + work[(i * 13 + j * 29) % 512];
			j = j + 1;
		}
		g = g + acc % 7 + 1;
	}
	print(g);
}
`
	b, err := Compile(Config{Source: src, RefInput: []int64{1}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	txt := b.Ref.String()
	for _, want := range []string{"wait.ma", "wait.mv", "checkfwd", "load.sync", "select", "signal.m"} {
		if !strings.Contains(txt, want) {
			t.Errorf("transformed IR missing %q", want)
		}
	}
}
