// Package core is the end-to-end TLS compiler driver. It orchestrates the
// full pipeline of the paper's §3.1:
//
//  1. parse, check and lower MiniC to IR;
//  2. profile candidate loops and select speculative regions (coverage,
//     trip-count and epoch-size heuristics), unrolling small loops;
//  3. insert scalar synchronization for loop-carried register values
//     (prior work [32]), with forwarding-path scheduling;
//  4. profile inter-epoch memory dependences on the train and ref inputs;
//  5. produce memory-synchronized program variants — one per profiling
//     input — via the memsync pass (grouping, cloning, wait/signal).
//
// The Base variant (scalar sync only) is the paper's U configuration; the
// Train and Ref variants are its T and C configurations.
package core

import (
	"context"
	"fmt"
	"time"

	"tlssync/internal/interp"
	"tlssync/internal/ir"
	"tlssync/internal/lang"
	"tlssync/internal/lower"
	"tlssync/internal/memsync"
	"tlssync/internal/opt"
	"tlssync/internal/parallel"
	"tlssync/internal/profile"
	"tlssync/internal/regions"
	"tlssync/internal/scalarsync"
	"tlssync/internal/trace"
	"tlssync/internal/verify"
)

// Config configures a compilation.
type Config struct {
	// Source is the MiniC program text.
	Source string `json:"Source"`

	// TrainInput and RefInput are the two input vectors (the paper's
	// train and ref data sets). RefInput is required; TrainInput defaults
	// to RefInput.
	TrainInput []int64 `json:"TrainInput"`
	RefInput   []int64 `json:"RefInput"`

	// Seed seeds the deterministic PRNG for all runs.
	Seed uint64 `json:"Seed"`

	// Heuristics are the region-selection thresholds (zero value: paper
	// defaults).
	Heuristics regions.Heuristics `json:"Heuristics"`

	// NoScalarSchedule disables the critical-forwarding-path scheduling
	// of scalar signals (ablation knob; default on, as in the paper).
	NoScalarSchedule bool `json:"NoScalarSchedule"`

	// NoClone disables call-path cloning in the memsync pass (ablation
	// knob; default on, as in the paper).
	NoClone bool `json:"NoClone"`

	// Threshold overrides the memory-sync dependence-frequency threshold
	// (0 means the paper's 5%).
	Threshold float64 `json:"Threshold"`

	// Optimize enables the classical scalar optimizations (constant
	// folding, copy propagation, dead-code elimination) before profiling
	// and transformation — the role gcc -O3 played in the original
	// system. Off by default: the evaluation's workloads are calibrated
	// against unoptimized code, and every variant (including the
	// sequential baseline) must see the same instruction stream either
	// way.
	Optimize bool `json:"Optimize"`

	// MaxSteps bounds each functional run (0: interpreter default).
	MaxSteps int64 `json:"MaxSteps"`

	// Verify selects how the static synchronization verifier treats
	// each produced binary. The zero value is verify.ModeEnforce:
	// every compile fails closed if a binary carries a synchronization
	// soundness error. ModeWarn records findings without failing;
	// ModeOff skips verification.
	Verify verify.Mode `json:"Verify"`

	// Workers bounds the pipeline's internal parallelism (dependence
	// profiling, memsync variants, binary verification). 0 or 1 runs
	// the serial reference path. Workers changes wall-clock time only,
	// never any produced artifact, so it is excluded from the
	// JSON-marshaled form that content-addressed cache keys hash.
	Workers int `json:"-"`
}

func (c *Config) fill() {
	if c.Heuristics == (regions.Heuristics{}) {
		c.Heuristics = regions.Defaults()
	}
	if c.Threshold == 0 {
		c.Threshold = memsync.DefaultOptions().Threshold
	}
	if c.TrainInput == nil {
		c.TrainInput = c.RefInput
	}
}

func (c *Config) scalarOpts() scalarsync.Options {
	return scalarsync.Options{Schedule: !c.NoScalarSchedule}
}

func (c *Config) memOpts() memsync.Options {
	return memsync.Options{Threshold: c.Threshold, Clone: !c.NoClone}
}

// Build is a fully compiled program with its variants and profiles.
type Build struct {
	Config Config

	// Plain is the untransformed program (no unrolling, no
	// synchronization): the original sequential version all execution
	// times are normalized to.
	Plain *ir.Program

	// Base is the unrolled, scalar-synchronized program: the paper's
	// unsynchronized-memory baseline (U).
	Base *ir.Program

	// Train and Ref carry memory synchronization inserted from the
	// train-input and ref-input dependence profiles (the paper's T and C).
	Train *ir.Program
	Ref   *ir.Program

	Decisions    []regions.Decision
	ScalarInfo   []scalarsync.Result
	TrainProfile *profile.Profile
	RefProfile   *profile.Profile
	MemInfoTrain []memsync.Result
	MemInfoRef   []memsync.Result

	// VerifyReports holds the static synchronization-soundness report
	// of each produced binary, keyed "plain"/"base"/"train"/"ref"
	// (nil when Config.Verify is ModeOff).
	VerifyReports map[string]*verify.Report

	// StageTimes records wall-clock time per pipeline stage ("compile",
	// "profile") for observability; it never feeds back into artifacts.
	StageTimes map[string]time.Duration
}

// Compile runs the whole pipeline.
// Canonical returns the configuration with every default filled in —
// the exact form Compile stores into Build.Config. Content-addressed
// cache keys hash this form, so a key can be computed for a workload
// without compiling it.
func (c Config) Canonical() Config {
	c.fill()
	return c
}

func Compile(cfg Config) (*Build, error) {
	start := time.Now() //lint:ignore D001 StageTimes is observability only (excluded from artifacts and keys)
	cfg.fill()
	file, err := lang.Parse(cfg.Source)
	if err != nil {
		return nil, err
	}
	checked, err := lang.Check(file)
	if err != nil {
		return nil, err
	}
	b, err := compileChecked(checked, cfg)
	if err != nil {
		return nil, err
	}
	//lint:ignore D001 StageTimes is observability only (excluded from artifacts and keys)
	b.StageTimes["compile"] = time.Since(start) - b.StageTimes["profile"]
	return b, nil
}

func compileChecked(checked *lang.Checked, cfg Config) (*Build, error) {
	p0, err := lower.Lower(checked)
	if err != nil {
		return nil, err
	}
	b := &Build{Config: cfg, StageTimes: make(map[string]time.Duration)}
	if cfg.Optimize {
		// Optimize before the plain copy so the sequential baseline and
		// every parallel variant time the same instruction stream.
		opt.Optimize(p0)
		if err := p0.Verify(); err != nil {
			return nil, fmt.Errorf("after optimization: %w", err)
		}
	}
	// The plain copy is taken before unrolling so its block indices match
	// the region keys computed during selection.
	b.Plain = p0.DeepCopy()

	// Selection profiling: run with every candidate as a region.
	selStart := time.Now() //lint:ignore D001 StageTimes is observability only (excluded from artifacts and keys)
	selTrace, err := interp.Run(p0, interp.Options{
		Input: cfg.TrainInput, Seed: cfg.Seed, Regions: regions.Regions(p0, nil),
		MaxSteps: cfg.MaxSteps,
	})
	if err != nil {
		return nil, fmt.Errorf("selection profiling: %w", err)
	}
	selProf := profile.Analyze(selTrace)
	selTrace.Release() // the profile retains no event references
	//lint:ignore D001 StageTimes is observability only (excluded from artifacts and keys)
	b.StageTimes["profile"] += time.Since(selStart)
	b.Decisions = regions.Select(p0, selProf, cfg.Heuristics)
	if err := regions.ApplyUnrolling(p0, b.Decisions); err != nil {
		return nil, err
	}
	accepted := regions.Accepted(b.Decisions)

	// Scalar synchronization on the selected regions.
	regs := regions.Regions(p0, accepted)
	b.ScalarInfo = scalarsync.Apply(p0, regs, cfg.scalarOpts())
	if err := p0.Verify(); err != nil {
		return nil, fmt.Errorf("after scalarsync: %w", err)
	}
	b.Base = p0

	// Dependence profiling on the base binary, both inputs. The two
	// interpreter runs share nothing but read-only access to b.Base, so
	// they shard cleanly; lowest-index error selection keeps the serial
	// path's "train profiling" error precedence.
	profNames := [2]string{"train", "ref"}
	profInputs := [2][]int64{cfg.TrainInput, cfg.RefInput}
	depStart := time.Now() //lint:ignore D001 StageTimes is observability only (excluded from artifacts and keys)
	profs, err := parallel.MapVals(context.Background(), cfg.Workers, 2,
		func(_ context.Context, i int) (*profile.Profile, error) {
			p, err := b.DepProfile(profInputs[i])
			if err != nil {
				return nil, fmt.Errorf("%s profiling: %w", profNames[i], err)
			}
			return p, nil
		})
	if err != nil {
		return nil, err
	}
	b.TrainProfile, b.RefProfile = profs[0], profs[1]
	//lint:ignore D001 StageTimes is observability only (excluded from artifacts and keys)
	b.StageTimes["profile"] += time.Since(depStart)

	// Memory-synchronized variants: each works on its own deep copy of
	// the base binary, guided by its own profile.
	type msVariant struct {
		p    *ir.Program
		info []memsync.Result
	}
	msProfs := [2]*profile.Profile{b.TrainProfile, b.RefProfile}
	variants, err := parallel.MapVals(context.Background(), cfg.Workers, 2,
		func(_ context.Context, i int) (msVariant, error) {
			p := b.Base.DeepCopy()
			info, err := memsync.Apply(p, regions.Regions(p, accepted), msProfs[i].Regions, cfg.memOpts())
			if err != nil {
				return msVariant{}, fmt.Errorf("memsync (%s): %w", profNames[i], err)
			}
			return msVariant{p: p, info: info}, nil
		})
	if err != nil {
		return nil, err
	}
	b.Train, b.MemInfoTrain = variants[0].p, variants[0].info
	b.Ref, b.MemInfoRef = variants[1].p, variants[1].info
	if err := b.verifyBinaries(); err != nil {
		return nil, err
	}
	return b, nil
}

// verifyBinaries runs the static synchronization verifier over every
// binary the build produced, recording the reports and — under
// ModeEnforce — failing the compile on the first binary with errors.
func (b *Build) verifyBinaries() error {
	if b.Config.Verify == verify.ModeOff {
		return nil
	}
	bins := []struct {
		name string
		p    *ir.Program
	}{
		{"plain", b.Plain}, {"base", b.Base}, {"train", b.Train}, {"ref", b.Ref},
	}
	// The verifier is a pure analysis over one binary; run the four
	// binaries concurrently, then scan reports in the serial order so
	// the recorded reports and the enforce-mode error are identical to
	// the serial path's (on failure the later binaries' reports stay
	// unrecorded, exactly as if the loop had stopped there).
	reps, _ := parallel.MapVals(context.Background(), b.Config.Workers, len(bins),
		func(_ context.Context, i int) (*verify.Report, error) {
			return verify.Binary(bins[i].p, b.RegionsFor(bins[i].p), verify.Options{
				CloneEnabled: !b.Config.NoClone, Binary: bins[i].name,
			}), nil
		})
	b.VerifyReports = make(map[string]*verify.Report, 4)
	for i, bin := range bins {
		b.VerifyReports[bin.name] = reps[i]
		if b.Config.Verify == verify.ModeEnforce && !reps[i].Clean() {
			return fmt.Errorf("synchronization verification failed on the %s binary:\n%s", bin.name, reps[i])
		}
	}
	return nil
}

// AcceptedKeys returns the accepted region keys.
func (b *Build) AcceptedKeys() map[regions.Key]bool { return regions.Accepted(b.Decisions) }

// RegionsFor materializes the accepted regions of one of the build's
// program variants.
func (b *Build) RegionsFor(p *ir.Program) []*interp.Region {
	return regions.Regions(p, b.AcceptedKeys())
}

// DepProfile runs the base binary on the given input and returns its
// dependence/coverage profile.
func (b *Build) DepProfile(input []int64) (*profile.Profile, error) {
	tr, err := interp.Run(b.Base, interp.Options{
		Input: input, Seed: b.Config.Seed, Regions: b.RegionsFor(b.Base),
		MaxSteps: b.Config.MaxSteps,
	})
	if err != nil {
		return nil, err
	}
	prof := profile.Analyze(tr)
	tr.Release() // the profile retains no event references
	return prof, nil
}

// Trace produces the functional trace of one variant on the given input,
// with the accepted regions delimiting epochs.
func (b *Build) Trace(p *ir.Program, input []int64) (*trace.ProgramTrace, error) {
	return interp.Run(p, interp.Options{
		Input: input, Seed: b.Config.Seed, Regions: b.RegionsFor(p),
		MaxSteps: b.Config.MaxSteps,
	})
}

// CheckEquivalence verifies that all variants produce identical printed
// output on the given input — the pipeline-wide semantic-preservation
// invariant.
func (b *Build) CheckEquivalence(input []int64) error {
	var ref []int64
	for i, p := range []*ir.Program{b.Base, b.Train, b.Ref} {
		tr, err := b.Trace(p, input)
		if err != nil {
			return fmt.Errorf("variant %d: %w", i, err)
		}
		tr.Release() // only Output is read below; Release keeps it
		if i == 0 {
			ref = tr.Output
			continue
		}
		if len(tr.Output) != len(ref) {
			return fmt.Errorf("variant %d: output length %d != %d", i, len(tr.Output), len(ref))
		}
		for j := range ref {
			if tr.Output[j] != ref[j] {
				return fmt.Errorf("variant %d: output[%d] = %d, want %d", i, j, tr.Output[j], ref[j])
			}
		}
	}
	return nil
}
