package core_test

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"tlssync/internal/core"
	"tlssync/internal/memsync"
	"tlssync/internal/progen"
	"tlssync/internal/sim"
)

// The pipeline's byte-reproducibility invariant: the Workers knob may
// change wall-clock time only, never an artifact. This suite compiles
// generated programs at several worker counts and compares a
// fingerprint covering everything the pipeline emits — the four
// binaries' printed IR, region decisions, memsync summaries, verifier
// reports, the simulated results of every policy-relevant binary, and
// the sharded sequential baseline. Run it under -race to also catch
// unsynchronized sharing between the parallel stages.

// diffWorkerCounts are the counts compared against the serial path.
var diffWorkerCounts = []int{2, 8}

// diffConfig is the canonical compile configuration for seed programs.
func diffConfig(src string, workers int) core.Config {
	return core.Config{
		Source:     src,
		TrainInput: []int64{2, 7, 1},
		RefInput:   []int64{3, 1, 4, 1, 5},
		Seed:       42,
		MaxSteps:   2_000_000,
		Workers:    workers,
	}
}

// buildFingerprint renders every observable output of a compile (and
// of the simulations downstream of it) into one byte string.
func buildFingerprint(t *testing.T, cfg core.Config) string {
	t.Helper()
	var sb strings.Builder
	b, err := core.Compile(cfg)
	if err != nil {
		// Errors must be deterministic too (lowest-index selection).
		return "compile error: " + err.Error()
	}

	fmt.Fprintf(&sb, "== plain ==\n%s\n== base ==\n%s\n== train ==\n%s\n== ref ==\n%s\n",
		b.Plain, b.Base, b.Train, b.Ref)
	fmt.Fprintf(&sb, "== decisions ==\n%+v\n", b.Decisions)
	for _, r := range b.MemInfoTrain {
		fmt.Fprintf(&sb, "memsync train: %s\n", memsync.Summary(r))
	}
	for _, r := range b.MemInfoRef {
		fmt.Fprintf(&sb, "memsync ref: %s\n", memsync.Summary(r))
	}
	for _, name := range []string{"plain", "base", "train", "ref"} {
		if rep := b.VerifyReports[name]; rep != nil {
			fmt.Fprintf(&sb, "== verify %s ==\n%s\n", name, rep)
		}
	}

	// Downstream: trace each binary and simulate the policies that read
	// it, plus the (sharded) sequential baseline off the plain trace.
	plainTr, err := b.Trace(b.Plain, cfg.RefInput)
	if err != nil {
		t.Fatalf("plain trace: %v", err)
	}
	seq := sim.SimulateSequentialRegions(sim.Input{Trace: plainTr, Workers: cfg.Workers})
	sj, err := json.Marshal(seq)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&sb, "== seq ==\n%s\n", sj)

	for _, pc := range []struct {
		binary string
		pol    sim.Policy
	}{
		{"base", sim.PolicyU()},
		{"train", sim.PolicyC("T")},
		{"ref", sim.PolicyC("C")},
		{"ref", sim.PolicyE()},
	} {
		p := b.Base
		switch pc.binary {
		case "train":
			p = b.Train
		case "ref":
			p = b.Ref
		}
		tr, err := b.Trace(p, cfg.RefInput)
		if err != nil {
			t.Fatalf("%s trace: %v", pc.binary, err)
		}
		res := sim.Simulate(sim.Input{Trace: tr, Policy: pc.pol})
		rj, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "== sim %s/%s ==\n%s\n", pc.binary, pc.pol.Name, rj)
	}
	return sb.String()
}

func TestParallelDiffDeterministic(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 6
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			src := progen.Generate(uint64(seed), progen.DefaultConfig())
			want := buildFingerprint(t, diffConfig(src, 1))
			for _, workers := range diffWorkerCounts {
				got := buildFingerprint(t, diffConfig(src, workers))
				if got != want {
					t.Errorf("workers=%d: fingerprint diverged from -j1\n--- first difference ---\n%s",
						workers, firstDiff(want, got))
				}
			}
		})
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n-j1: %s\n-jN: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length differs: %d vs %d lines", len(al), len(bl))
}

// TestWorkersExcludedFromCanonicalConfig pins the store-key invariant:
// Workers must not appear in the JSON form that content-addressed cache
// keys hash, or -j1 and -jN would populate disjoint cache entries.
func TestWorkersExcludedFromCanonicalConfig(t *testing.T) {
	a, err := json.Marshal(diffConfig("func main() { print(1); }", 1).Canonical())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(diffConfig("func main() { print(1); }", 8).Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("Workers leaked into the canonical config JSON:\n%s\n%s", a, b)
	}
	if strings.Contains(string(a), "Workers") {
		t.Fatalf("canonical config JSON mentions Workers: %s", a)
	}
}
